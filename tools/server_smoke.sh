#!/usr/bin/env bash
# server_smoke.sh — end-to-end drill for the experiment server: boot it on
# an ephemeral port with a deliberately small memory budget, replay a mixed
# request stream at several concurrency levels with --verify (results must
# be bit-identical across levels), require that overload shedding engaged,
# then SIGINT the server and require a clean drain line and exit 0.
#
# Usage: tools/server_smoke.sh [BUILD_DIR] [REQUESTS] [CONCURRENCY]
set -u

BUILD_DIR="${1:-build}"
REQUESTS="${2:-120}"
CONCURRENCY="${3:-1,4,16}"
BUDGET_MB="${MLBENCH_SMOKE_BUDGET_MB:-96}"
MAX_QUEUE="${MLBENCH_SMOKE_MAX_QUEUE:-4}"
JSON="${MLBENCH_BENCH_JSON:-BENCH_server.json}"

SERVER="$BUILD_DIR/src/server/mlbench_server"
LOADGEN="$BUILD_DIR/tools/loadgen"
LOG="$(mktemp /tmp/mlbench_server_smoke.XXXXXX.log)"

fail() { echo "server_smoke: FAIL: $*" >&2; exit 1; }

[ -x "$SERVER" ] || fail "missing $SERVER (build first)"
[ -x "$LOADGEN" ] || fail "missing $LOADGEN (build first)"

"$SERVER" --port 0 --budget-mb "$BUDGET_MB" --max-queue "$MAX_QUEUE" \
  >"$LOG" 2>&1 &
SERVER_PID=$!
trap 'kill -9 $SERVER_PID 2>/dev/null; true' EXIT

# The server prints "mlbench_server listening on port N" once bound.
PORT=""
for _ in $(seq 1 100); do
  PORT=$(sed -n 's/^mlbench_server listening on port \([0-9]*\)$/\1/p' \
    "$LOG" | head -1)
  [ -n "$PORT" ] && break
  kill -0 "$SERVER_PID" 2>/dev/null || fail "server died at startup: $(cat "$LOG")"
  sleep 0.1
done
[ -n "$PORT" ] || fail "server never reported its port: $(cat "$LOG")"
echo "server_smoke: server pid=$SERVER_PID port=$PORT budget=${BUDGET_MB}MB queue=$MAX_QUEUE"

"$LOADGEN" --port "$PORT" --requests "$REQUESTS" \
  --concurrency "$CONCURRENCY" --verify --min-sheds 1 --json "$JSON"
LOADGEN_RC=$?
[ "$LOADGEN_RC" -eq 0 ] || fail "loadgen exited $LOADGEN_RC"

# Graceful drain: SIGINT, then the server must print its drain line and
# exit 0 on its own (no KILL needed).
kill -INT "$SERVER_PID"
SERVER_RC=-1
for _ in $(seq 1 200); do
  if ! kill -0 "$SERVER_PID" 2>/dev/null; then
    wait "$SERVER_PID"
    SERVER_RC=$?
    break
  fi
  sleep 0.1
done
trap - EXIT
[ "$SERVER_RC" -eq 0 ] || fail "server did not drain cleanly (rc=$SERVER_RC): $(tail -5 "$LOG")"
DRAIN_LINE=$(grep "drained cleanly" "$LOG") || fail "missing drain line: $(tail -5 "$LOG")"
# Zero malformed frames end to end: every response the server produced
# parsed, and every request it received framed correctly.
echo "$DRAIN_LINE" | grep -q "protocol_errors=0" \
  || fail "malformed frames on the wire: $DRAIN_LINE"

echo "server_smoke: PASS ($DRAIN_LINE)"
rm -f "$LOG"
