#!/usr/bin/env bash
# Diff-aware mlint wrapper: lints only the C++ files changed relative to a
# base ref and emits GitHub Actions ::error annotations so findings land
# inline on the PR diff. The *whole-tree* lint job remains the merge gate —
# this wrapper only improves how findings are surfaced, so it must never
# pass anything the full lint would fail.
#
# Usage: tools/mlint_changed.sh [base-ref]     (default: origin/main)
#   MLINT=path/to/mlint to override the binary location.
#
# The full tree is still indexed (--index-root) even though only changed
# files are linted: transitive parallel-region reachability needs the whole
# call graph, and a changed helper can pick up findings from an unchanged
# caller's parallel region.
set -euo pipefail

MLINT="${MLINT:-build/tools/mlint}"
BASE_REF="${1:-origin/main}"

if [ ! -x "$MLINT" ]; then
  echo "mlint_changed: $MLINT not found — build it first:" >&2
  echo "  cmake --build build --target mlint" >&2
  exit 2
fi

base="$(git merge-base "$BASE_REF" HEAD 2>/dev/null || true)"
if [ -z "$base" ]; then
  echo "mlint_changed: no merge base with $BASE_REF; skipping" >&2
  exit 0
fi

mapfile -t files < <(git diff --name-only --diff-filter=ACMR "$base" HEAD -- \
  'src/*.h' 'src/*.cc' 'tests/*.h' 'tests/*.cc' 'tools/*.h' 'tools/*.cc')
if [ "${#files[@]}" -eq 0 ]; then
  echo "mlint_changed: no C++ files changed relative to $BASE_REF"
  exit 0
fi

echo "mlint_changed: linting ${#files[@]} changed file(s) vs $BASE_REF" >&2
exec "$MLINT" --annotate --index-root=src --index-root=tests "${files[@]}"
