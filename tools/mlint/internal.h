#pragma once

#include <cstddef>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "mlint.h"

/// \file internal.h
/// Token-stream helpers shared by the lexical rules (mlint.cc), the pass-1
/// fact extractor (program.cc) and the autofixer (fix.cc). Everything here
/// is pure over a token vector: no filesystem, no global state.

namespace mlint::internal {

using Tokens = std::vector<Token>;

inline bool Is(const Tokens& t, std::size_t i, Token::Kind k,
               const char* text) {
  return i < t.size() && t[i].kind == k && t[i].text == text;
}
inline bool IsPunct(const Tokens& t, std::size_t i, const char* text) {
  return Is(t, i, Token::Kind::kPunct, text);
}
inline bool IsIdent(const Tokens& t, std::size_t i, const char* text) {
  return Is(t, i, Token::Kind::kIdent, text);
}
inline bool IsAnyIdent(const Tokens& t, std::size_t i) {
  return i < t.size() && t[i].kind == Token::Kind::kIdent;
}

inline std::string TrimWs(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  std::size_t e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

inline bool PathContains(const std::string& path, const char* needle) {
  return path.find(needle) != std::string::npos;
}

/// `i` points at '<'. Returns the index one past the matching '>', or
/// `fail` if the angle run is not template-like (hits ';', '{' or EOF).
inline std::size_t SkipAngles(const Tokens& t, std::size_t i,
                              std::size_t fail) {
  int depth = 0;
  for (std::size_t j = i; j < t.size(); ++j) {
    const std::string& x = t[j].text;
    if (t[j].kind == Token::Kind::kPunct) {
      if (x == "<") ++depth;
      else if (x == ">") {
        if (--depth == 0) return j + 1;
      } else if (x == ";" || x == "{" || x == "}") {
        return fail;
      }
    }
  }
  return fail;
}

/// `i` points at '('. Returns the index of the matching ')' or t.size().
inline std::size_t MatchParen(const Tokens& t, std::size_t i) {
  int depth = 0;
  for (std::size_t j = i; j < t.size(); ++j) {
    if (t[j].kind != Token::Kind::kPunct) continue;
    if (t[j].text == "(") ++depth;
    else if (t[j].text == ")" && --depth == 0) return j;
  }
  return t.size();
}

/// `i` points at '{'. Returns the index of the matching '}' or t.size().
inline std::size_t MatchBrace(const Tokens& t, std::size_t i) {
  int depth = 0;
  for (std::size_t j = i; j < t.size(); ++j) {
    if (t[j].kind != Token::Kind::kPunct) continue;
    if (t[j].text == "{") ++depth;
    else if (t[j].text == "}" && --depth == 0) return j;
  }
  return t.size();
}

/// `i` points at ']' scanning backwards; returns index of matching '['.
inline std::size_t MatchBracketBack(const Tokens& t, std::size_t i) {
  int depth = 0;
  for (std::size_t j = i + 1; j-- > 0;) {
    if (t[j].kind != Token::Kind::kPunct) continue;
    if (t[j].text == "]") ++depth;
    else if (t[j].text == "[" && --depth == 0) return j;
  }
  return 0;
}

struct LambdaBody {
  std::size_t intro;         // index of the introducer '['
  std::size_t begin;         // first token inside '{'
  std::size_t end;           // index of matching '}'
  std::size_t params_begin;  // first token inside '(' (== params_end if none)
  std::size_t params_end;    // index of the params ')'
};

/// Finds lambda bodies lexically inside token range [from, to): a '[' whose
/// previous token cannot end an expression (so it is a lambda-introducer,
/// not a subscript), its ']', optional (params), tokens up to '{'.
inline std::vector<LambdaBody> FindLambdas(const Tokens& t, std::size_t from,
                                           std::size_t to) {
  std::vector<LambdaBody> out;
  for (std::size_t i = from; i < to && i < t.size(); ++i) {
    if (!IsPunct(t, i, "[")) continue;
    if (i > 0) {
      const Token& p = t[i - 1];
      bool prev_ends_expr =
          p.kind == Token::Kind::kIdent || p.kind == Token::Kind::kNumber ||
          (p.kind == Token::Kind::kPunct &&
           (p.text == "]" || p.text == ")" || p.text == ">"));
      if (prev_ends_expr) continue;  // subscript, not a lambda introducer
    }
    // Capture list.
    int depth = 0;
    std::size_t j = i;
    for (; j < t.size(); ++j) {
      if (IsPunct(t, j, "[")) ++depth;
      else if (IsPunct(t, j, "]") && --depth == 0) break;
    }
    if (j >= t.size()) break;
    ++j;
    std::size_t params_begin = j, params_end = j;
    if (IsPunct(t, j, "(")) {
      params_begin = j + 1;
      params_end = MatchParen(t, j);
      j = params_end + 1;
    }
    // Skip mutable / noexcept / trailing return type up to '{'.
    while (j < t.size() && !IsPunct(t, j, "{") && !IsPunct(t, j, ";") &&
           !IsPunct(t, j, ")")) {
      ++j;
    }
    if (j >= t.size() || !IsPunct(t, j, "{")) continue;
    std::size_t close = MatchBrace(t, j);
    out.push_back(LambdaBody{i, j + 1, close, params_begin, params_end});
  }
  return out;
}

// ---------------------------------------------------------------------------
// Parallel-region detection
// ---------------------------------------------------------------------------

/// True when the call at `i` hands its callback arguments to a parallel
/// region: the exec entry points themselves, the Rel operators whose
/// row callbacks run inside the engine's chunked loop (member-call forms
/// only, so a local helper named Filter is not matched), and the ColExpr
/// factories whose payloads the columnar Project executes per chunk
/// (Fn lambdas; Expr takes a compiled program, matched for uniformity).
inline bool IsParallelCallee(const Tokens& t, std::size_t i) {
  if (t[i].kind != Token::Kind::kIdent) return false;
  const std::string& x = t[i].text;
  if (x == "ParallelFor" || x == "ParallelReduce") return true;
  if (x == "Filter" || x == "Project" || x == "RowFilter") {
    return i > 0 && (IsPunct(t, i - 1, ".") || IsPunct(t, i - 1, "->"));
  }
  if (x == "Fn" || x == "Expr") {
    return i >= 2 && IsPunct(t, i - 1, "::") && IsIdent(t, i - 2, "ColExpr");
  }
  return false;
}

/// One parallel-region body: a lambda handed to a parallel callee, or a
/// GatherBatch/SampleBatch override definition (the engines invoke those
/// hooks from inside their chunked loops).
struct ParallelRegion {
  LambdaBody body;
  std::string desc;       // "ParallelFor body", "GatherBatch override", ...
  int line = 0;           // line of the region's opening construct
  bool is_override = false;  // batched vertex/VG hook override
};

/// Collects the parallel-region bodies of a token stream. Call sites and
/// free functions sharing a hook's name do not match (an override
/// definition is the identifier, its parameter list, then qualifier
/// identifiers including `override` before '{').
inline std::vector<ParallelRegion> ParallelRegions(const Tokens& t) {
  std::vector<ParallelRegion> regions;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!IsParallelCallee(t, i)) continue;
    std::string desc = t[i].text == "Fn" || t[i].text == "Expr"
                           ? "ColExpr payload"
                           : t[i].text + " body";
    std::size_t j = i + 1;
    if (IsPunct(t, j, "<")) {
      j = SkipAngles(t, j, t.size());
      if (j == t.size()) continue;
    }
    if (!IsPunct(t, j, "(")) continue;
    std::size_t close = MatchParen(t, j);
    for (const LambdaBody& b : FindLambdas(t, j + 1, close)) {
      regions.push_back(ParallelRegion{b, desc, t[b.intro].line, false});
    }
  }
  // Batched vertex/VG hooks: the GAS engine calls GatherBatch once per
  // ParallelFor chunk, and the columnar VgApply calls SampleBatch once
  // for every invocation group at once — simulator charges inside either
  // body would interleave by scheduling or diverge from the per-edge /
  // per-tuple accounting of the scalar paths.
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!(IsIdent(t, i, "GatherBatch") || IsIdent(t, i, "SampleBatch"))) {
      continue;
    }
    if (!IsPunct(t, i + 1, "(")) continue;
    std::size_t close = MatchParen(t, i + 1);
    if (close >= t.size()) continue;
    std::size_t j = close + 1;
    bool has_override = false;
    while (j < t.size() && t[j].kind == Token::Kind::kIdent) {
      if (t[j].text == "override" || t[j].text == "final") has_override = true;
      ++j;
    }
    if (!has_override || !IsPunct(t, j, "{")) continue;
    regions.push_back(ParallelRegion{
        LambdaBody{i, j + 1, MatchBrace(t, j), i + 2, close},
        t[i].text + " override", t[i].line, true});
  }
  return regions;
}

// ---------------------------------------------------------------------------
// Hazard scanners (shared by lexical rules and pass-1 fact extraction)
// ---------------------------------------------------------------------------

/// An identifier starting with "Charge" or one of the allocator entry
/// points, immediately called.
inline bool IsChargeCall(const Tokens& t, std::size_t i) {
  if (t[i].kind != Token::Kind::kIdent) return false;
  const std::string& x = t[i].text;
  bool chargey = x.rfind("Charge", 0) == 0 || x == "Allocate" ||
                 x == "AllocateEverywhere" || x == "AllocateTransient" ||
                 x == "Free" || x == "FreeEverywhere";
  return chargey && IsPunct(t, i + 1, "(");
}

/// Phase/ledger finalization calls that must stay on the serial caller
/// side of every parallel loop.
inline bool IsLedgerOrderCall(const Tokens& t, std::size_t i) {
  if (t[i].kind != Token::Kind::kIdent) return false;
  const std::string& x = t[i].text;
  return (x == "EndPhase" || x == "CommitLedger" || x == "CommitLedgers") &&
         IsPunct(t, i + 1, "(");
}

/// Entropy-source uses in [from, to): std::random_device mentions and
/// calls to the C nondeterminism APIs (member calls are unrelated APIs).
inline std::vector<std::pair<int, std::string>> ScanEntropy(
    const Tokens& t, std::size_t from, std::size_t to) {
  std::vector<std::pair<int, std::string>> out;
  static const char* kBanned[] = {"rand", "srand", "time", "clock"};
  for (std::size_t i = from; i < to && i < t.size(); ++i) {
    if (t[i].kind != Token::Kind::kIdent) continue;
    if (t[i].text == "random_device") {
      out.emplace_back(t[i].line, t[i].text);
      continue;
    }
    for (const char* b : kBanned) {
      if (t[i].text != b) continue;
      if (!IsPunct(t, i + 1, "(")) continue;
      if (i > 0 && (IsPunct(t, i - 1, ".") || IsPunct(t, i - 1, "->"))) break;
      out.emplace_back(t[i].line, t[i].text);
      break;
    }
  }
  return out;
}

/// Simulator charge/alloc calls in [from, to).
inline std::vector<std::pair<int, std::string>> ScanCharges(
    const Tokens& t, std::size_t from, std::size_t to) {
  std::vector<std::pair<int, std::string>> out;
  for (std::size_t i = from; i < to && i < t.size(); ++i) {
    if (IsChargeCall(t, i)) out.emplace_back(t[i].line, t[i].text);
  }
  return out;
}

/// EndPhase / CommitLedger / CommitLedgers calls in [from, to).
inline std::vector<std::pair<int, std::string>> ScanLedgerOrder(
    const Tokens& t, std::size_t from, std::size_t to) {
  std::vector<std::pair<int, std::string>> out;
  for (std::size_t i = from; i < to && i < t.size(); ++i) {
    if (IsLedgerOrderCall(t, i)) out.emplace_back(t[i].line, t[i].text);
  }
  return out;
}

inline const std::set<std::string>& ThreadPrimitives() {
  static const std::set<std::string> kPrimitives = {
      "thread",       "jthread",       "mutex",
      "recursive_mutex", "shared_mutex", "timed_mutex",
      "condition_variable", "condition_variable_any",
      "atomic",       "atomic_flag",   "atomic_ref",
      "atomic_thread_fence", "atomic_signal_fence",
      "this_thread",  "stop_token",    "stop_source",
      "lock_guard",   "unique_lock",   "scoped_lock",
      "shared_lock",  "future",        "promise",
      "async",        "barrier",       "latch",
      "counting_semaphore", "binary_semaphore"};
  return kPrimitives;
}

/// The lock-free pool's spin/park vocabulary: cpu-relax intrinsics only
/// belong in src/exec/'s dispatch loops — anywhere else they signal a
/// hand-rolled spin lock.
inline const std::set<std::string>& SpinIntrinsics() {
  static const std::set<std::string> kSpin = {"__builtin_ia32_pause",
                                              "_mm_pause"};
  return kSpin;
}

/// Raw threading uses in [from, to): std:: primitives and spin
/// intrinsics. (Header includes are a file-level concern; the lexical
/// rule handles them.)
inline std::vector<std::pair<int, std::string>> ScanRawThread(
    const Tokens& t, std::size_t from, std::size_t to) {
  std::vector<std::pair<int, std::string>> out;
  for (std::size_t i = from; i < to && i < t.size(); ++i) {
    if (t[i].kind != Token::Kind::kIdent) continue;
    if (SpinIntrinsics().count(t[i].text) != 0) {
      out.emplace_back(t[i].line, t[i].text);
      continue;
    }
    if (t[i].text == "std" && IsPunct(t, i + 1, "::") &&
        IsAnyIdent(t, i + 2) && ThreadPrimitives().count(t[i + 2].text) != 0) {
      out.emplace_back(t[i].line, "std::" + t[i + 2].text);
    }
  }
  return out;
}

/// Keywords that can precede an identifier without declaring it.
inline bool IsNonTypeKeyword(const std::string& s) {
  static const std::set<std::string> kKeywords = {
      "return",   "if",     "while",  "else",   "case",  "goto",
      "new",      "delete", "throw",  "sizeof", "do",    "switch",
      "co_return", "co_await", "co_yield", "not", "and", "or"};
  return kKeywords.count(s) != 0;
}

/// Statement keywords that look like calls (`if (`, `for (`) plus other
/// identifiers that never name a repo function.
inline bool IsCallKeyword(const std::string& s) {
  static const std::set<std::string> kKeywords = {
      "if",       "for",      "while",     "switch",        "catch",
      "return",   "sizeof",   "alignof",   "decltype",      "static_assert",
      "new",      "delete",   "throw",     "noexcept",      "alignas",
      "typeid",   "assert",   "defined",   "co_await",      "co_return",
      "co_yield", "operator", "constexpr", "const", "static"};
  return kKeywords.count(s) != 0;
}

/// True when identifier `name` is declared inside token range [from, to):
/// some occurrence is preceded by a type-ish token (identifier, '>', '&',
/// '*', 'auto') and not part of a member access, or appears in a
/// structured binding.
inline bool DeclaredWithin(const Tokens& t, std::size_t from, std::size_t to,
                           const std::string& name) {
  for (std::size_t i = from; i < to; ++i) {
    if (!(t[i].kind == Token::Kind::kIdent && t[i].text == name)) continue;
    if (i == 0) continue;
    const Token& p = t[i - 1];
    bool typeish =
        (p.kind == Token::Kind::kIdent && !IsNonTypeKeyword(p.text)) ||
        (p.kind == Token::Kind::kPunct &&
         (p.text == ">" || p.text == "&" || p.text == "*"));
    if (!typeish) continue;
    if (p.kind == Token::Kind::kPunct && (p.text == "." || p.text == "->")) {
      continue;
    }
    return true;
  }
  // Structured-binding names: appear between '[' and ']' right after auto.
  for (std::size_t i = from; i + 1 < to; ++i) {
    if (!IsIdent(t, i, "auto")) continue;
    std::size_t j = i + 1;
    while (IsPunct(t, j, "&") || IsPunct(t, j, "*")) ++j;
    if (!IsPunct(t, j, "[")) continue;
    for (std::size_t k = j + 1; k < to && !IsPunct(t, k, "]"); ++k) {
      if (t[k].kind == Token::Kind::kIdent && t[k].text == name) return true;
    }
  }
  return false;
}

/// True when `name` appears as an identifier anywhere in [from, to) — used
/// for parameter-range membership (loose: type names count too, which only
/// exempts more).
inline bool IdentInRange(const Tokens& t, std::size_t from, std::size_t to,
                         const std::string& name) {
  for (std::size_t k = from; k < to && k < t.size(); ++k) {
    if (t[k].kind == Token::Kind::kIdent && t[k].text == name) return true;
  }
  return false;
}

/// `+=` accumulations in a body whose left-hand-side root is neither a
/// body-local declaration nor a parameter — scheduling-order hazards when
/// the body runs inside a parallel region. Returns (line, root-name).
inline std::vector<std::pair<int, std::string>> ScanNonlocalPlusEq(
    const Tokens& t, std::size_t body_begin, std::size_t body_end,
    std::size_t params_begin, std::size_t params_end) {
  std::vector<std::pair<int, std::string>> out;
  for (std::size_t i = body_begin; i < body_end && i < t.size(); ++i) {
    if (!IsPunct(t, i, "+=")) continue;
    // Walk the LHS chain backwards to its root identifier.
    std::size_t j = i;
    while (j > body_begin) {
      const Token& p = t[j - 1];
      if (p.kind == Token::Kind::kPunct && p.text == "]") {
        j = MatchBracketBack(t, j - 1);
        continue;
      }
      if (p.kind == Token::Kind::kIdent || p.kind == Token::Kind::kNumber) {
        --j;
        continue;
      }
      if (p.kind == Token::Kind::kPunct && (p.text == "." || p.text == "->")) {
        --j;
        continue;
      }
      break;
    }
    if (!IsAnyIdent(t, j)) continue;
    const std::string& root = t[j].text;
    if (DeclaredWithin(t, body_begin, body_end, root)) continue;
    if (IdentInRange(t, params_begin, params_end, root)) continue;
    out.emplace_back(t[i].line, root);
  }
  return out;
}

// ---------------------------------------------------------------------------
// RNG stream tracking (rule 8)
// ---------------------------------------------------------------------------

/// Names of variables declared with type `Rng` anywhere in the file
/// (locals, members, parameters). `stats::Rng rng(seed)` counts;
/// `stats::Rng Make(...)` { — a function returning Rng — does not.
inline std::set<std::string> CollectRngVars(const Tokens& t) {
  std::set<std::string> vars;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!IsIdent(t, i, "Rng")) continue;
    std::size_t j = i + 1;
    while (IsPunct(t, j, "&") || (IsPunct(t, j, "*"))) ++j;
    if (!IsAnyIdent(t, j)) continue;
    if (IsNonTypeKeyword(t[j].text)) continue;
    // `Rng Rng::Split(...)` / qualified definitions: not a variable.
    if (IsPunct(t, j + 1, "::")) continue;
    if (IsPunct(t, j + 1, "(")) {
      // Constructor-arg variable (`Rng rng(seed);`) vs function returning
      // Rng (`Rng Make(...) {` / `Rng Make(...);` at class scope). A
      // following '{' means a definition; treat everything else as a
      // variable — over-tracking only risks extra rule-8 findings on
      // functions *returning* fresh Rngs, which this repo spells as
      // constructor expressions instead.
      std::size_t close = MatchParen(t, j + 1);
      if (close < t.size() && IsPunct(t, close + 1, "{")) continue;
    }
    vars.insert(t[j].text);
  }
  return vars;
}

/// Uses of a tracked Rng variable inside a body that (a) is not declared
/// in the body, (b) is not one of the body's own parameters, and (c) is
/// not a `.Split(...)` substream derivation. Such a use shares one RNG
/// stream across chunks: draw order becomes scheduling-dependent.
inline std::vector<std::pair<int, std::string>> ScanRngUses(
    const Tokens& t, std::size_t body_begin, std::size_t body_end,
    std::size_t params_begin, std::size_t params_end,
    const std::set<std::string>& rng_vars) {
  std::vector<std::pair<int, std::string>> out;
  if (rng_vars.empty()) return out;
  for (std::size_t i = body_begin; i < body_end && i < t.size(); ++i) {
    if (t[i].kind != Token::Kind::kIdent || rng_vars.count(t[i].text) == 0) {
      continue;
    }
    const std::string& name = t[i].text;
    if (DeclaredWithin(t, body_begin, body_end, name)) continue;
    if (IdentInRange(t, params_begin, params_end, name)) continue;
    // The sanctioned derivation: rng.Split(chunk-stable index).
    if ((IsPunct(t, i + 1, ".") || IsPunct(t, i + 1, "->")) &&
        IsIdent(t, i + 2, "Split")) {
      continue;
    }
    out.emplace_back(t[i].line, name);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Unordered-container iteration sites (rule 2; shared with pass 1)
// ---------------------------------------------------------------------------

inline bool IsUnorderedName(const std::string& s) {
  return s == "unordered_map" || s == "unordered_set" ||
         s == "unordered_multimap" || s == "unordered_multiset";
}

/// File-level scan: (line, variable) pairs where an unordered container is
/// iterated (begin()/cbegin()/rbegin() or a range-for). Tracks variables
/// declared with unordered types and `using` aliases of them; `.end()`
/// sentinel compares and lookups stay quiet.
inline std::vector<std::pair<int, std::string>> UnorderedIterSites(
    const Tokens& t) {
  std::vector<std::pair<int, std::string>> out;
  // Pass A: names of variables/members declared with an unordered container
  // type, plus `using X = ...unordered_map<...>` aliases (and variables
  // declared with those aliases).
  std::set<std::string> aliases;
  std::set<std::string> vars;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != Token::Kind::kIdent) continue;
    if ((t[i].text == "using" || t[i].text == "typedef") &&
        IsAnyIdent(t, i + 1)) {
      if (t[i].text == "using" && IsPunct(t, i + 2, "=")) {
        std::string name = t[i + 1].text;
        for (std::size_t j = i + 3; j < t.size() && !IsPunct(t, j, ";"); ++j) {
          if (t[j].kind == Token::Kind::kIdent && IsUnorderedName(t[j].text)) {
            aliases.insert(name);
            break;
          }
        }
      }
      continue;
    }
    bool is_container_type =
        IsUnorderedName(t[i].text) || aliases.count(t[i].text) != 0;
    if (!is_container_type) continue;
    std::size_t j = i + 1;
    if (IsPunct(t, j, "<")) {
      j = SkipAngles(t, j, /*fail=*/t.size());
      if (j == t.size()) continue;
    } else if (aliases.count(t[i].text) == 0) {
      continue;  // bare `unordered_map` without template args: not a decl
    }
    // Declarator list: [*&]* name [, name ...] terminated by ; = { (
    while (j < t.size()) {
      while (IsPunct(t, j, "*") || IsPunct(t, j, "&")) ++j;
      if (!IsAnyIdent(t, j)) break;
      // `Type name(` is a function declarator returning the container —
      // the name is not a container variable.
      if (IsPunct(t, j + 1, "(")) break;
      vars.insert(t[j].text);
      if (IsPunct(t, j + 1, ",")) {
        j += 2;
        continue;
      }
      break;
    }
  }
  if (vars.empty()) return out;

  // Pass B: iterations.
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (IsAnyIdent(t, i) && vars.count(t[i].text) != 0 &&
        (IsPunct(t, i + 1, ".") || IsPunct(t, i + 1, "->")) &&
        IsAnyIdent(t, i + 2) && IsPunct(t, i + 3, "(")) {
      // `.end()` alone is a find-sentinel comparison, not an iteration;
      // every real traversal needs a begin.
      const std::string& m = t[i + 2].text;
      if (m == "begin" || m == "cbegin" || m == "rbegin") {
        out.emplace_back(t[i].line, t[i].text);
      }
      continue;
    }
    // Range-for whose sequence expression mentions a tracked container.
    if (IsIdent(t, i, "for") && IsPunct(t, i + 1, "(")) {
      std::size_t close = MatchParen(t, i + 1);
      std::size_t colon = t.size();
      int depth = 0;
      for (std::size_t j = i + 1; j < close; ++j) {
        if (IsPunct(t, j, "(")) ++depth;
        else if (IsPunct(t, j, ")")) --depth;
        else if (depth == 1 && IsPunct(t, j, ":")) {
          colon = j;
          break;
        }
      }
      if (colon == t.size()) continue;  // classic for loop
      for (std::size_t j = colon + 1; j < close; ++j) {
        if (IsAnyIdent(t, j) && vars.count(t[j].text) != 0) {
          out.emplace_back(t[i].line, t[j].text);
          break;
        }
      }
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Allowances
// ---------------------------------------------------------------------------

/// The (rule, line) pairs whose findings are suppressed in `file`:
/// allowances for known rules that carry a reason. When `bad_out` is
/// non-null, reasonless or unknown-rule allowances are appended to it as
/// `bad-suppression` findings (they suppress nothing).
std::set<std::pair<std::string, int>> ActiveAllowances(
    const SourceFile& file, const std::set<std::string>& known_rules,
    std::vector<Finding>* bad_out);

/// Appends a finding unless one with the same (rule, line) already exists;
/// on a duplicate, a non-empty chain upgrades the existing finding.
void AddFinding(std::vector<Finding>* out, const SourceFile& f,
                const std::string& rule, int line, std::string message,
                int col = 0, std::vector<std::string> chain = {});

/// JSON string-body escaping (shared by the reporters and the callgraph
/// dump).
std::string JsonEscape(const std::string& s);

}  // namespace mlint::internal
