#include "mlint.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <sstream>

#include "internal.h"

namespace mlint {

namespace {

using namespace internal;

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

std::string Trim(const std::string& s) { return TrimWs(s); }

/// Extracts mlint comments: allowances ("mlint: allow" + parenthesized rule
/// list + reason) and bare markers ("mlint: frozen-grain ...").
void ParseMlintComment(const std::string& comment, int comment_line,
                       bool comment_only_line,
                       std::vector<Allowance>* allowances,
                       std::vector<Marker>* markers) {
  const std::string marker = "mlint:";
  std::size_t at = comment.find(marker);
  if (at == std::string::npos) return;
  std::size_t p = at + marker.size();
  while (p < comment.size() && std::isspace(static_cast<unsigned char>(comment[p]))) ++p;
  const std::string allow = "allow(";
  if (comment.compare(p, allow.size(), allow) != 0) {
    // A non-allow marker: the first dash/underscore word after "mlint:".
    std::size_t q = p;
    while (q < comment.size() &&
           (IsIdentChar(comment[q]) || comment[q] == '-')) {
      ++q;
    }
    std::string name = comment.substr(p, q - p);
    if (!name.empty()) {
      Marker m;
      m.name = std::move(name);
      m.comment_line = comment_line;
      m.line = comment_only_line ? -1 : comment_line;
      markers->push_back(std::move(m));
    }
    return;
  }
  p += allow.size();
  std::size_t close = comment.find(')', p);
  if (close == std::string::npos) return;
  std::string rules = comment.substr(p, close - p);
  // Reason: everything after ')', minus leading separators (spaces, dashes,
  // em-dashes, colons).
  std::string reason = comment.substr(close + 1);
  std::size_t r = 0;
  while (r < reason.size() &&
         (std::isspace(static_cast<unsigned char>(reason[r])) ||
          reason[r] == '-' || reason[r] == ':' ||
          static_cast<unsigned char>(reason[r]) >= 0x80)) {
    ++r;
  }
  reason = Trim(reason.substr(r));

  std::stringstream ss(rules);
  std::string rule;
  while (std::getline(ss, rule, ',')) {
    Allowance a;
    a.rule = Trim(rule);
    a.reason = reason;
    a.comment_line = comment_line;
    // Comment-only lines cover the next code line; resolved after
    // tokenization (when code lines are known). Mark with line = -1.
    a.line = comment_only_line ? -1 : comment_line;
    if (!a.rule.empty()) allowances->push_back(std::move(a));
  }
}

}  // namespace

std::string SourceFile::Snippet(int line) const {
  if (line < 1 || static_cast<std::size_t>(line) > lines.size()) return "";
  return Trim(lines[static_cast<std::size_t>(line) - 1]);
}

// ---------------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------------

SourceFile Parse(std::string path, const std::string& content) {
  SourceFile f;
  f.path = std::move(path);
  f.is_header = f.path.size() >= 2 &&
                f.path.compare(f.path.size() - 2, 2, ".h") == 0;

  // Split raw lines for snippets.
  {
    std::stringstream ss(content);
    std::string line;
    while (std::getline(ss, line)) {
      if (!line.empty() && line.back() == '\r') line.pop_back();
      f.lines.push_back(line);
    }
  }

  const std::size_t n = content.size();
  std::size_t i = 0;
  int line = 1;
  int col = 1;
  bool line_has_token = false;  // any token seen on the current line

  auto advance = [&](std::size_t count) {
    for (std::size_t k = 0; k < count && i < n; ++k) {
      if (content[i] == '\n') {
        ++line;
        col = 1;
        line_has_token = false;
      } else {
        ++col;
      }
      ++i;
    }
  };

  while (i < n) {
    char c = content[i];
    // Whitespace.
    if (std::isspace(static_cast<unsigned char>(c))) {
      advance(1);
      continue;
    }
    // Line comment.
    if (c == '/' && i + 1 < n && content[i + 1] == '/') {
      std::size_t end = content.find('\n', i);
      if (end == std::string::npos) end = n;
      std::string body = content.substr(i + 2, end - i - 2);
      ParseMlintComment(body, line, /*comment_only_line=*/!line_has_token,
                        &f.allowances, &f.markers);
      advance(end - i);
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < n && content[i + 1] == '*') {
      std::size_t end = content.find("*/", i + 2);
      if (end == std::string::npos) end = n;
      std::string body = content.substr(i + 2, end - i - 2);
      ParseMlintComment(body, line, !line_has_token, &f.allowances,
                        &f.markers);
      advance((end == n ? n : end + 2) - i);
      continue;
    }
    // Preprocessor directive (only when '#' starts the logical line).
    if (c == '#' && !line_has_token) {
      int start_line = line;
      int start_col = col;
      std::string text;
      while (i < n) {
        std::size_t end = content.find('\n', i);
        if (end == std::string::npos) end = n;
        std::string chunk = content.substr(i, end - i);
        bool continued = !chunk.empty() && chunk.back() == '\\';
        if (continued) chunk.pop_back();
        text += chunk;
        advance(end - i + (end < n ? 1 : 0));
        if (!continued) break;
      }
      f.tokens.push_back(
          Token{Token::Kind::kPreproc, Trim(text), start_line, start_col});
      // The directive consumed its newline; the next line starts fresh.
      continue;
    }
    // String literal (including a minimal R"delim( ... )delim" raw form).
    if (c == 'R' && i + 1 < n && content[i + 1] == '"') {
      // Raw string: R"delim( ... )delim"
      std::size_t open = content.find('(', i + 2);
      if (open != std::string::npos) {
        std::string delim = content.substr(i + 2, open - i - 2);
        std::string closer = ")" + delim + "\"";
        std::size_t end = content.find(closer, open + 1);
        if (end == std::string::npos) end = n;
        else end += closer.size();
        advance(end - i);
        line_has_token = true;
        continue;
      }
    }
    if (c == '"' || c == '\'') {
      char quote = c;
      std::size_t j = i + 1;
      while (j < n && content[j] != quote) {
        if (content[j] == '\\' && j + 1 < n) ++j;
        ++j;
      }
      advance((j < n ? j + 1 : n) - i);
      line_has_token = true;
      continue;
    }
    // Identifier.
    if (IsIdentStart(c)) {
      std::size_t j = i;
      while (j < n && IsIdentChar(content[j])) ++j;
      f.tokens.push_back(
          Token{Token::Kind::kIdent, content.substr(i, j - i), line, col});
      line_has_token = true;
      advance(j - i);
      continue;
    }
    // Number.
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t j = i;
      while (j < n && (IsIdentChar(content[j]) || content[j] == '.' ||
                       ((content[j] == '+' || content[j] == '-') && j > i &&
                        (content[j - 1] == 'e' || content[j - 1] == 'E')))) {
        ++j;
      }
      f.tokens.push_back(
          Token{Token::Kind::kNumber, content.substr(i, j - i), line, col});
      line_has_token = true;
      advance(j - i);
      continue;
    }
    // Punctuation. Keep '::', '->' and '+=' glued (rules match on them);
    // everything else is a single char — '<' and '>' stay split so
    // template-angle matching can treat '>>' as two closers.
    std::string tok(1, c);
    if (i + 1 < n) {
      char d = content[i + 1];
      if ((c == ':' && d == ':') || (c == '-' && d == '>') ||
          (c == '+' && d == '=')) {
        tok += d;
      }
    }
    f.tokens.push_back(Token{Token::Kind::kPunct, tok, line, col});
    line_has_token = true;
    advance(tok.size());
  }

  // Resolve comment-only allowances/markers to the next code line.
  auto resolve = [&](int comment_line) {
    for (const auto& t : f.tokens) {
      if (t.line > comment_line) return t.line;
    }
    return comment_line;  // fallback: covers nothing real
  };
  for (auto& a : f.allowances) {
    if (a.line == -1) a.line = resolve(a.comment_line);
  }
  for (auto& m : f.markers) {
    if (m.line == -1) m.line = resolve(m.comment_line);
  }
  return f;
}

// ---------------------------------------------------------------------------
// Finding construction (shared with pass 2)
// ---------------------------------------------------------------------------

namespace internal {

void AddFinding(std::vector<Finding>* out, const SourceFile& f,
                const std::string& rule, int line, std::string message,
                int col, std::vector<std::string> chain) {
  // One finding per (rule, line): several triggers on one source line are
  // one hazard to a human. A chain-bearing duplicate upgrades the existing
  // finding so `--why` has something to print.
  for (auto& existing : *out) {
    if (existing.line == line && existing.rule == rule &&
        existing.path == f.path) {
      if (existing.chain.empty() && !chain.empty()) {
        existing.chain = std::move(chain);
      }
      if (existing.col == 0 && col != 0) existing.col = col;
      return;
    }
  }
  Finding fd;
  fd.rule = rule;
  fd.path = f.path;
  fd.line = line;
  fd.col = col;
  fd.message = std::move(message);
  fd.snippet = f.Snippet(line);
  fd.chain = std::move(chain);
  out->push_back(std::move(fd));
}

std::set<std::pair<std::string, int>> ActiveAllowances(
    const SourceFile& file, const std::set<std::string>& known_rules,
    std::vector<Finding>* bad_out) {
  std::set<std::pair<std::string, int>> active;
  for (const auto& a : file.allowances) {
    if (known_rules.count(a.rule) == 0) {
      if (bad_out != nullptr) {
        AddFinding(bad_out, file, "bad-suppression", a.comment_line,
                   "mlint: allow(" + a.rule + ") names an unknown rule");
      }
      continue;
    }
    if (a.reason.size() < 3) {
      if (bad_out != nullptr) {
        AddFinding(bad_out, file, "bad-suppression", a.comment_line,
                   "mlint: allow(" + a.rule +
                       ") has no reason — every suppression must argue why "
                       "the site is safe");
      }
      continue;
    }
    active.insert({a.rule, a.line});
  }
  return active;
}

}  // namespace internal

// ---------------------------------------------------------------------------
// Lexical rules
// ---------------------------------------------------------------------------

namespace {

void Add(std::vector<Finding>* out, const SourceFile& f, const char* rule,
         int line, std::string message, int col = 0) {
  AddFinding(out, f, rule, line, std::move(message), col);
}

// ---------------------------------------------------------------------------
// Rule 1: nondet-random
// ---------------------------------------------------------------------------

void CheckNondetRandom(const SourceFile& f, std::vector<Finding>* out) {
  if (PathContains(f.path, "src/stats/")) return;
  for (const auto& [line, tok] : ScanEntropy(f.tokens, 0, f.tokens.size())) {
    if (tok == "random_device") {
      Add(out, f, "nondet-random", line,
          "std::random_device is nondeterministic; seed a stats::Rng "
          "instead (only src/stats/ may touch entropy sources)");
    } else {
      Add(out, f, "nondet-random", line,
          "call to " + tok +
              "() draws nondeterministic state; results must be a pure "
              "function of the experiment seed — use stats::Rng");
    }
  }
}

// ---------------------------------------------------------------------------
// Rule 2: unordered-iter
// ---------------------------------------------------------------------------

void CheckUnorderedIter(const SourceFile& f, std::vector<Finding>* out) {
  for (const auto& [line, var] : UnorderedIterSites(f.tokens)) {
    Add(out, f, "unordered-iter", line,
        "iterating unordered container '" + var +
            "' — bucket order is implementation-defined and can leak "
            "into results/charges; emit in first-seen or sorted order");
  }
}

// ---------------------------------------------------------------------------
// Rule 3: charge-in-parallel
// ---------------------------------------------------------------------------

void CheckChargeInParallel(const SourceFile& f, std::vector<Finding>* out) {
  const Tokens& t = f.tokens;
  for (const ParallelRegion& region : ParallelRegions(t)) {
    bool has_ledger = false;
    for (std::size_t i = region.body.begin; i < region.body.end; ++i) {
      if (IsIdent(t, i, "ScopedLedger")) {
        has_ledger = true;
        break;
      }
    }
    if (has_ledger) continue;
    for (const auto& [line, name] :
         ScanCharges(t, region.body.begin, region.body.end)) {
      Add(out, f, "charge-in-parallel", line,
          "simulator charge '" + name +
              "' inside a ParallelFor/ParallelReduce body with no "
              "sim::ScopedLedger bound — charges would interleave by "
              "scheduling; record to a per-chunk ChargeLedger and commit "
              "in chunk-index order");
    }
  }
}

// ---------------------------------------------------------------------------
// Rule 5: naive-reduction
// ---------------------------------------------------------------------------

void CheckNaiveReduction(const SourceFile& f, std::vector<Finding>* out) {
  const Tokens& t = f.tokens;
  for (const ParallelRegion& region : ParallelRegions(t)) {
    // Lambda parameters are per-invocation state, not shared captures —
    // this is how ParallelReduce's ordered fold receives its accumulator.
    for (const auto& [line, root] :
         ScanNonlocalPlusEq(t, region.body.begin, region.body.end,
                            region.body.params_begin,
                            region.body.params_end)) {
      Add(out, f, "naive-reduction", line,
          "'" + root +
              " +=' inside a parallel region accumulates in scheduling "
              "order — use exec::ParallelReduce (chunk partials folded in "
              "index order) or linalg::blocked");
    }
  }
}

// ---------------------------------------------------------------------------
// Rule 4: raw-thread
// ---------------------------------------------------------------------------

void CheckRawThread(const SourceFile& f, std::vector<Finding>* out) {
  // src/exec/ implements parallelism; src/server/ is host-side plumbing
  // (sockets, admission condvars, session threads) that deliberately sits
  // outside the deterministic engine layer — both are scoped allowlists.
  if (PathContains(f.path, "src/exec/") ||
      PathContains(f.path, "src/server/")) {
    return;
  }
  const Tokens& t = f.tokens;
  static const std::set<std::string> kHeaders = {
      "<thread>",  "<mutex>",  "<atomic>", "<condition_variable>",
      "<future>",  "<shared_mutex>", "<barrier>", "<latch>",
      "<semaphore>", "<stop_token>"};
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind == Token::Kind::kPreproc) {
      for (const auto& h : kHeaders) {
        if (t[i].text.rfind("#include", 0) == 0 &&
            t[i].text.find(h) != std::string::npos) {
          Add(out, f, "raw-thread", t[i].line,
              "include of " + h +
                  " outside src/exec/ and src/server/ — engines must use the "
                  "mlbench::exec layer so charges and RNG streams stay "
                  "deterministic");
        }
      }
      continue;
    }
    if (t[i].kind == Token::Kind::kIdent &&
        SpinIntrinsics().count(t[i].text) != 0) {
      Add(out, f, "raw-thread", t[i].line,
          "cpu-relax intrinsic " + t[i].text +
              " outside src/exec/ and src/server/ — spin/park loops live in the exec "
              "dispatch layer; engines express parallelism through "
              "ParallelFor/ParallelReduce");
      continue;
    }
    if (IsIdent(t, i, "std") && IsPunct(t, i + 1, "::") &&
        IsAnyIdent(t, i + 2) && ThreadPrimitives().count(t[i + 2].text) != 0) {
      Add(out, f, "raw-thread", t[i].line,
          "raw std::" + t[i + 2].text +
              " outside src/exec/ and src/server/ — engines must use the mlbench::exec "
              "layer (ParallelFor/ParallelReduce + ChargeLedger) so "
              "results stay bit-identical at any thread count");
    }
  }
}

// ---------------------------------------------------------------------------
// Rule 7: ignored-status
// ---------------------------------------------------------------------------

/// Known Status-returning APIs whose result must be consumed. The compiler
/// already enforces `[[nodiscard]]` on common::Status itself (status.h);
/// this rule is the repo-side backstop — it catches discards in code that a
/// given configuration never compiles, and names the idiomatic fixes.
bool IsStatusReturningName(const std::string& s) {
  static const std::set<std::string> kStatusFns = {
      "Allocate",       "AllocateEverywhere", "AllocateSoft",
      "CommitLedger",   "Boot",               "RunSuperstep",
      "RunSweep",       "BroadcastClosure",   "SpillToDisk",
      // Experiment-server APIs (src/server/): dropping one of these on
      // the floor tears a frame or silently skips admission control.
      "WriteFrame",     "ReadFrame",          "Admit",

  };
  return kStatusFns.count(s) != 0;
}

void CheckIgnoredStatus(const SourceFile& f, std::vector<Finding>* out) {
  const Tokens& t = f.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != Token::Kind::kIdent ||
        !IsStatusReturningName(t[i].text) || !IsPunct(t, i + 1, "(")) {
      continue;
    }
    // The call's value must flow somewhere: the matching ')' directly
    // followed by ';' means a bare expression statement.
    std::size_t close = MatchParen(t, i + 1);
    if (close >= t.size() || !IsPunct(t, close + 1, ";")) continue;
    // Walk the receiver chain (sim_->Allocate, mlbench::sim::Foo) back to
    // its root: pairs of member/scope punctuation preceded by an
    // identifier. Anything else (return, =, a type name) ends the chain.
    std::size_t j = i;
    while (j >= 2 && t[j - 1].kind == Token::Kind::kPunct &&
           (t[j - 1].text == "." || t[j - 1].text == "->" ||
            t[j - 1].text == "::") &&
           t[j - 2].kind == Token::Kind::kIdent) {
      j -= 2;
    }
    // A statement boundary before the chain root means nothing consumes
    // the value. `(void)expr;` is the sanctioned explicit discard.
    bool stmt_start =
        j == 0 ||
        (t[j - 1].kind == Token::Kind::kPunct &&
         (t[j - 1].text == ";" || t[j - 1].text == "{" ||
          t[j - 1].text == "}" || t[j - 1].text == ")")) ||
        (t[j - 1].kind == Token::Kind::kIdent && t[j - 1].text == "else") ||
        t[j - 1].kind == Token::Kind::kPreproc;
    if (!stmt_start) continue;
    bool void_cast = j >= 3 && IsPunct(t, j - 3, "(") &&
                     IsIdent(t, j - 2, "void") && IsPunct(t, j - 1, ")");
    if (void_cast) continue;
    // The column of the chain root is where `--fix` inserts `(void)`.
    Add(out, f, "ignored-status", t[i].line,
        "result of Status-returning call '" + t[i].text +
            "(...)' is discarded — check it (MLBENCH_RETURN_NOT_OK / "
            "MLBENCH_CHECK) or cast to (void) with a comment arguing why "
            "failure is impossible here",
        t[j].col);
  }
}

// ---------------------------------------------------------------------------
// Rule 6: header-hygiene
// ---------------------------------------------------------------------------

void CheckHeaderHygiene(const SourceFile& f, std::vector<Finding>* out) {
  const Tokens& t = f.tokens;
  if (!f.is_header) return;
  bool guarded = false;
  // `#pragma once` anywhere, or the classic #ifndef/#define pair as the
  // first two directives.
  const Token* first_directive = nullptr;
  for (const auto& tok : t) {
    if (tok.kind != Token::Kind::kPreproc) continue;
    if (tok.text.rfind("#pragma", 0) == 0 &&
        tok.text.find("once") != std::string::npos) {
      guarded = true;
      break;
    }
    if (first_directive == nullptr) {
      first_directive = &tok;
      if (tok.text.rfind("#ifndef", 0) == 0) guarded = true;
    }
  }
  if (!guarded) {
    Add(out, f, "header-hygiene", 1,
        "header has no include guard — add `#pragma once`");
  }
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (IsIdent(t, i, "using") && IsIdent(t, i + 1, "namespace")) {
      Add(out, f, "header-hygiene", t[i].line,
          "`using namespace` at header scope leaks into every includer");
    }
  }
}

// ---------------------------------------------------------------------------
// Rule 8: rng-in-parallel
// ---------------------------------------------------------------------------

void CheckRngInParallel(const SourceFile& f, std::vector<Finding>* out) {
  if (PathContains(f.path, "src/stats/")) return;  // the RNG implementation
  const Tokens& t = f.tokens;
  const std::set<std::string> rng_vars = CollectRngVars(t);
  for (const ParallelRegion& region : ParallelRegions(t)) {
    for (const auto& [line, name] :
         ScanRngUses(t, region.body.begin, region.body.end,
                     region.body.params_begin, region.body.params_end,
                     rng_vars)) {
      Add(out, f, "rng-in-parallel", line,
          "shared RNG '" + name + "' used inside a " + region.desc +
              " — draw order becomes scheduling-dependent; derive a "
              "per-chunk substream with " + name +
              ".Split(chunk.index) and draw from that instead");
    }
  }
}

// ---------------------------------------------------------------------------
// Rule 9: ledger-order
// ---------------------------------------------------------------------------

void CheckLedgerOrder(const SourceFile& f, std::vector<Finding>* out) {
  if (PathContains(f.path, "src/sim/")) return;  // the ledger implementation
  const Tokens& t = f.tokens;
  for (const ParallelRegion& region : ParallelRegions(t)) {
    for (const auto& [line, name] :
         ScanLedgerOrder(t, region.body.begin, region.body.end)) {
      Add(out, f, "ledger-order", line,
          "'" + name + "' inside a " + region.desc +
              " — phase/ledger finalization must run on the serial caller "
              "side after the loop, committing per-chunk ledgers in "
              "chunk-index order");
    }
  }
}

// ---------------------------------------------------------------------------
// Rule 10: borrow-escape
// ---------------------------------------------------------------------------

/// True when `root` is declared inside the body with `static` storage (a
/// sink that outlives the call even though it is body-local).
bool StaticDeclaredWithin(const Tokens& t, std::size_t from, std::size_t to,
                          const std::string& root) {
  for (std::size_t i = from; i < to; ++i) {
    if (!(t[i].kind == Token::Kind::kIdent && t[i].text == root)) continue;
    // Scan back to the statement start looking for `static`.
    for (std::size_t j = i; j > from; --j) {
      const Token& p = t[j - 1];
      if (p.kind == Token::Kind::kPunct &&
          (p.text == ";" || p.text == "{" || p.text == "}")) {
        break;
      }
      if (p.kind == Token::Kind::kIdent && p.text == "static") return true;
    }
  }
  return false;
}

/// Walks the LHS/receiver chain ending just before `i` back to its root
/// identifier index, or t.size() when there is none.
std::size_t ChainRoot(const Tokens& t, std::size_t i, std::size_t lo) {
  std::size_t j = i;
  while (j > lo) {
    const Token& p = t[j - 1];
    if (p.kind == Token::Kind::kPunct && p.text == "]") {
      j = MatchBracketBack(t, j - 1);
      continue;
    }
    if (p.kind == Token::Kind::kIdent || p.kind == Token::Kind::kNumber) {
      --j;
      continue;
    }
    if (p.kind == Token::Kind::kPunct && (p.text == "." || p.text == "->")) {
      --j;
      continue;
    }
    break;
  }
  return IsAnyIdent(t, j) ? j : t.size();
}

void CheckBorrowEscape(const SourceFile& f, std::vector<Finding>* out) {
  const Tokens& t = f.tokens;
  for (const ParallelRegion& region : ParallelRegions(t)) {
    if (!region.is_override) continue;
    // Pointer parameters of the hook: the engine-owned neighbor spans and
    // borrow slots, valid only for the duration of this call.
    std::set<std::string> ptr_params;
    for (std::size_t i = region.body.params_begin;
         i + 1 < region.body.params_end; ++i) {
      if (IsPunct(t, i, "*") && IsAnyIdent(t, i + 1)) {
        ptr_params.insert(t[i + 1].text);
      }
    }
    if (ptr_params.empty()) continue;

    auto outlives = [&](const std::string& root) {
      if (root == "this") return true;
      bool local = DeclaredWithin(t, region.body.begin, region.body.end, root);
      if (local) {
        return StaticDeclaredWithin(t, region.body.begin, region.body.end,
                                    root);
      }
      if (IdentInRange(t, region.body.params_begin, region.body.params_end,
                       root)) {
        return false;  // writing through another argument: engine-owned slot
      }
      return true;  // member (x_ or implicit this->x), global, file-static
    };

    // An RHS/argument token range mentions a span pointer in escaping
    // position: the bare pointer or the address of one of its elements —
    // not a dereferenced element value.
    auto escaping_param = [&](std::size_t from,
                              std::size_t to) -> std::string {
      for (std::size_t k = from; k < to && k < t.size(); ++k) {
        if (t[k].kind != Token::Kind::kIdent ||
            ptr_params.count(t[k].text) == 0) {
          continue;
        }
        if (k > 0 && IsPunct(t, k - 1, "&")) return t[k].text;  // &p, &p[j]
        if (k > 0 && IsPunct(t, k - 1, "*")) continue;          // *p: a value
        if (IsPunct(t, k + 1, "[")) continue;                   // p[j]: a value
        if (IsPunct(t, k + 1, ".") || IsPunct(t, k + 1, "->")) continue;
        return t[k].text;  // the pointer itself
      }
      return "";
    };

    auto flag = [&](int line, const std::string& pname,
                    const std::string& sink) {
      Add(out, f, "borrow-escape", line,
          "span/borrow pointer '" + pname + "' (argument of this " +
              region.desc + ") stored into '" + sink +
              "', which outlives the call — neighbor spans and borrow "
              "slots are only valid for the current batch; copy the "
              "values instead");
    };

    for (std::size_t i = region.body.begin; i < region.body.end; ++i) {
      // Plain assignments `sink = ... p ...;` (skip comparisons and
      // compound operators: `==`, `!=`, `<=`, `>=` tokenize as two puncts).
      if (IsPunct(t, i, "=")) {
        if (IsPunct(t, i + 1, "=")) continue;
        if (i > 0 && t[i - 1].kind == Token::Kind::kPunct) {
          const std::string& p = t[i - 1].text;
          if (p == "=" || p == "!" || p == "<" || p == ">" || p == "-" ||
              p == "*" || p == "/" || p == "|" || p == "&" || p == "^" ||
              p == "%") {
            continue;
          }
        }
        std::size_t root = ChainRoot(t, i, region.body.begin);
        if (root == t.size() || !outlives(t[root].text)) continue;
        std::size_t stmt_end = i + 1;
        int depth = 0;
        while (stmt_end < region.body.end) {
          if (t[stmt_end].kind == Token::Kind::kPunct) {
            const std::string& x = t[stmt_end].text;
            if (x == "(" || x == "[" || x == "{") ++depth;
            else if (x == ")" || x == "]" || x == "}") --depth;
            else if (x == ";" && depth == 0) break;
          }
          ++stmt_end;
        }
        std::string pname = escaping_param(i + 1, stmt_end);
        if (!pname.empty()) flag(t[i].line, pname, t[root].text);
        continue;
      }
      // Container stores: sink.push_back(p) and friends.
      if (t[i].kind == Token::Kind::kIdent &&
          (t[i].text == "push_back" || t[i].text == "emplace_back" ||
           t[i].text == "insert" || t[i].text == "emplace" ||
           t[i].text == "push") &&
          IsPunct(t, i + 1, "(") && i > 0 &&
          (IsPunct(t, i - 1, ".") || IsPunct(t, i - 1, "->"))) {
        std::size_t root = ChainRoot(t, i - 1, region.body.begin);
        if (root == t.size() || !outlives(t[root].text)) continue;
        std::size_t close = MatchParen(t, i + 1);
        std::string pname = escaping_param(i + 2, close);
        if (!pname.empty()) flag(t[i].line, pname, t[root].text);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rule 11: frozen-grain
// ---------------------------------------------------------------------------

/// The documented golden-bearing grain sites. Chunk grain feeds ledger
/// commit order and per-chunk RNG substreams, so changing either value
/// shifts every golden the site backs; the paired marker records that the
/// author re-baked them on purpose.
struct GrainSite {
  const char* path_suffix;
  const char* ident;
  const char* value;
  const char* what;
};

const GrainSite kGrainSites[] = {
    {"src/reldb/rel.cc", "kRowGrain", "1024",
     "the reldb operator row grain (DESIGN.md §10)"},
    {"src/gas/engine.h", "kVertexGrain", "256",
     "the GAS sweep vertex grain (DESIGN.md §13)"},
};

void CheckFrozenGrain(const SourceFile& f, std::vector<Finding>* out) {
  const Tokens& t = f.tokens;
  for (const GrainSite& site : kGrainSites) {
    if (!PathContains(f.path, site.path_suffix)) continue;
    bool saw_decl = false;
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (!(t[i].kind == Token::Kind::kIdent && t[i].text == site.ident)) {
        continue;
      }
      if (!IsPunct(t, i + 1, "=") || IsPunct(t, i + 2, "=")) continue;
      saw_decl = true;
      bool matches = i + 2 < t.size() &&
                     t[i + 2].kind == Token::Kind::kNumber &&
                     t[i + 2].text == site.value &&
                     (i + 3 >= t.size() || IsPunct(t, i + 3, ";"));
      if (matches) continue;
      bool acknowledged = false;
      for (const Marker& m : f.markers) {
        if (m.name == "frozen-grain" && m.line == t[i].line) {
          acknowledged = true;
          break;
        }
      }
      if (acknowledged) continue;
      Add(out, f, "frozen-grain", t[i].line,
          std::string("frozen grain ") + site.ident + " no longer reads `" +
              site.ident + " = " + site.value + ";` — this value is " +
              site.what + " and is golden-bearing: chunk boundaries feed "
              "ledger commit order and RNG substreams. Re-bake the goldens "
              "and pair the edit with a `// mlint: frozen-grain` marker");
    }
    if (!saw_decl) {
      Add(out, f, "frozen-grain", 1,
          std::string("golden-bearing grain site ") + site.ident +
              " not found in " + site.path_suffix +
              " — the frozen declaration (`" + site.ident + " = " +
              site.value + ";`) must stay greppable for this lint and for "
              "the goldens it protects");
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Registry / driver
// ---------------------------------------------------------------------------

std::vector<RuleInfo> Rules() {
  return {
      {"nondet-random",
       "std::random_device / rand() / time() / clock() outside src/stats/"},
      {"unordered-iter",
       "iteration over std::unordered_{map,set} — order-dependence hazard"},
      {"charge-in-parallel",
       "ClusterSim charges in ParallelFor/Reduce bodies with no ScopedLedger"},
      {"raw-thread",
       "raw std::thread/mutex/atomic outside src/exec/ and src/server/"},
      {"naive-reduction",
       "captured `x +=` accumulation inside a parallel region"},
      {"header-hygiene",
       "missing include guard / `using namespace` at header scope"},
      {"ignored-status",
       "discarded result of a known Status-returning call"},
      {"rng-in-parallel",
       "shared Rng drawn inside a parallel region without a Split substream"},
      {"ledger-order",
       "EndPhase/CommitLedger(s) called inside a parallel region"},
      {"borrow-escape",
       "GatherBatch/SampleBatch span pointer stored into outliving state"},
      {"frozen-grain",
       "golden-bearing chunk grain edited without a frozen-grain marker"},
      {"bad-suppression",
       "mlint: allow(...) comment with no reason, or for an unknown rule"},
  };
}

void CheckFile(const SourceFile& file, std::vector<Finding>* out) {
  std::vector<Finding> raw;
  CheckNondetRandom(file, &raw);
  CheckUnorderedIter(file, &raw);
  CheckChargeInParallel(file, &raw);
  CheckRawThread(file, &raw);
  CheckNaiveReduction(file, &raw);
  CheckHeaderHygiene(file, &raw);
  CheckIgnoredStatus(file, &raw);
  CheckRngInParallel(file, &raw);
  CheckLedgerOrder(file, &raw);
  CheckBorrowEscape(file, &raw);
  CheckFrozenGrain(file, &raw);

  std::set<std::string> known;
  for (const auto& r : Rules()) known.insert(r.name);

  // Validate suppressions; reasonless or unknown-rule allowances are
  // findings themselves and suppress nothing.
  std::vector<Finding> bad;
  std::set<std::pair<std::string, int>> active =
      internal::ActiveAllowances(file, known, &bad);
  for (auto& fd : bad) raw.push_back(std::move(fd));

  for (auto& fd : raw) {
    if (active.count({fd.rule, fd.line}) != 0) continue;
    out->push_back(std::move(fd));
  }
}

int LintResult::NewCount() const {
  int n = 0;
  for (const auto& f : findings) n += f.baselined ? 0 : 1;
  return n;
}
int LintResult::BaselinedCount() const {
  return static_cast<int>(findings.size()) - NewCount();
}

// ---------------------------------------------------------------------------
// Baseline
// ---------------------------------------------------------------------------

std::string FindingKey(const Finding& f) {
  return f.rule + "|" + f.path + "|" + f.snippet;
}

std::multimap<std::string, int> ParseBaseline(const std::string& text) {
  std::multimap<std::string, int> out;
  std::stringstream ss(text);
  std::string line;
  int lineno = 0;
  while (std::getline(ss, line)) {
    ++lineno;
    std::string trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    out.emplace(trimmed, lineno);
  }
  return out;
}

int ApplyBaseline(const std::string& baseline_text, LintResult* result) {
  auto entries = ParseBaseline(baseline_text);
  for (auto& f : result->findings) {
    auto it = entries.find(FindingKey(f));
    if (it != entries.end()) {
      f.baselined = true;
      entries.erase(it);  // each entry absorbs one finding
    }
  }
  return static_cast<int>(entries.size());
}

// ---------------------------------------------------------------------------
// Reporters
// ---------------------------------------------------------------------------

std::string TextReport(const LintResult& result) {
  std::stringstream out;
  for (const auto& f : result.findings) {
    if (f.baselined) continue;
    out << f.path << ":" << f.line << ": [" << f.rule << "] " << f.message
        << "\n";
    if (!f.snippet.empty()) out << "    " << f.snippet << "\n";
    if (!f.chain.empty()) {
      out << "    reached from " << f.chain.front() << " (mlint --why="
          << f.path << ":" << f.line << " prints the chain)\n";
    }
  }
  out << "mlint: " << result.files_scanned << " files, "
      << result.findings.size() << " findings (" << result.NewCount()
      << " new, " << result.BaselinedCount() << " baselined)\n";
  return out.str();
}

namespace internal {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace internal

std::string JsonReport(const LintResult& result) {
  using internal::JsonEscape;
  std::stringstream out;
  out << "{\n  \"mlint_version\": 2,\n  \"files_scanned\": "
      << result.files_scanned << ",\n  \"summary\": {\"total\": "
      << result.findings.size() << ", \"new\": " << result.NewCount()
      << ", \"baselined\": " << result.BaselinedCount()
      << "},\n  \"findings\": [";
  bool first = true;
  for (const auto& f : result.findings) {
    out << (first ? "\n" : ",\n");
    first = false;
    out << "    {\"rule\": \"" << JsonEscape(f.rule) << "\", \"path\": \""
        << JsonEscape(f.path) << "\", \"line\": " << f.line
        << ", \"message\": \"" << JsonEscape(f.message)
        << "\", \"snippet\": \"" << JsonEscape(f.snippet)
        << "\", \"baselined\": " << (f.baselined ? "true" : "false")
        << ", \"chain\": [";
    for (std::size_t i = 0; i < f.chain.size(); ++i) {
      out << (i == 0 ? "" : ", ") << "\"" << JsonEscape(f.chain[i]) << "\"";
    }
    out << "]}";
  }
  out << (first ? "" : "\n  ") << "]\n}\n";
  return out.str();
}

namespace {

/// GitHub Actions workflow-command escaping for the message payload.
std::string GhaEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '%': out += "%25"; break;
      case '\r': out += "%0D"; break;
      case '\n': out += "%0A"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace

std::string GithubAnnotations(const LintResult& result) {
  std::stringstream out;
  for (const auto& f : result.findings) {
    if (f.baselined) continue;
    out << "::error file=" << f.path << ",line=" << f.line
        << ",title=mlint " << f.rule << "::" << GhaEscape(f.message) << "\n";
  }
  return out.str();
}

std::string WhyReport(const LintResult& result, const std::string& spec) {
  std::stringstream out;
  int matched = 0;
  for (const auto& f : result.findings) {
    const std::string key =
        f.rule + "|" + f.path + ":" + std::to_string(f.line);
    if (!(spec == f.rule || spec == f.path ||
          spec == f.path + ":" + std::to_string(f.line) ||
          key.find(spec) != std::string::npos)) {
      continue;
    }
    ++matched;
    out << f.path << ":" << f.line << ": [" << f.rule << "] " << f.message
        << (f.baselined ? " (baselined)" : "") << "\n";
    if (f.chain.empty()) {
      out << "  why: lexical finding on this line (no call-graph hops)\n";
    } else {
      for (std::size_t i = 0; i < f.chain.size(); ++i) {
        out << (i == 0 ? "  why: " : "       ") << f.chain[i] << "\n";
      }
    }
  }
  if (matched == 0) {
    out << "mlint --why: no finding matches '" << spec << "'\n";
  }
  return out.str();
}

}  // namespace mlint
