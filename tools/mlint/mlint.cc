#include "mlint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <functional>
#include <sstream>

namespace mlint {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

std::string Trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  std::size_t e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

/// Extracts an allowance ("mlint: allow" + parenthesized rule list + reason).
void ParseAllowComment(const std::string& comment, int comment_line,
                       bool comment_only_line,
                       std::vector<Allowance>* allowances) {
  const std::string marker = "mlint:";
  std::size_t at = comment.find(marker);
  if (at == std::string::npos) return;
  std::size_t p = at + marker.size();
  while (p < comment.size() && std::isspace(static_cast<unsigned char>(comment[p]))) ++p;
  const std::string allow = "allow(";
  if (comment.compare(p, allow.size(), allow) != 0) return;
  p += allow.size();
  std::size_t close = comment.find(')', p);
  if (close == std::string::npos) return;
  std::string rules = comment.substr(p, close - p);
  // Reason: everything after ')', minus leading separators (spaces, dashes,
  // em-dashes, colons).
  std::string reason = comment.substr(close + 1);
  std::size_t r = 0;
  while (r < reason.size() &&
         (std::isspace(static_cast<unsigned char>(reason[r])) ||
          reason[r] == '-' || reason[r] == ':' ||
          static_cast<unsigned char>(reason[r]) >= 0x80)) {
    ++r;
  }
  reason = Trim(reason.substr(r));

  std::stringstream ss(rules);
  std::string rule;
  while (std::getline(ss, rule, ',')) {
    Allowance a;
    a.rule = Trim(rule);
    a.reason = reason;
    a.comment_line = comment_line;
    // Comment-only lines cover the next code line; resolved after
    // tokenization (when code lines are known). Mark with line = -1.
    a.line = comment_only_line ? -1 : comment_line;
    if (!a.rule.empty()) allowances->push_back(std::move(a));
  }
}

}  // namespace

std::string SourceFile::Snippet(int line) const {
  if (line < 1 || static_cast<std::size_t>(line) > lines.size()) return "";
  return Trim(lines[static_cast<std::size_t>(line) - 1]);
}

// ---------------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------------

SourceFile Parse(std::string path, const std::string& content) {
  SourceFile f;
  f.path = std::move(path);
  f.is_header = f.path.size() >= 2 &&
                f.path.compare(f.path.size() - 2, 2, ".h") == 0;

  // Split raw lines for snippets.
  {
    std::stringstream ss(content);
    std::string line;
    while (std::getline(ss, line)) {
      if (!line.empty() && line.back() == '\r') line.pop_back();
      f.lines.push_back(line);
    }
  }

  const std::size_t n = content.size();
  std::size_t i = 0;
  int line = 1;
  bool line_has_token = false;  // any token seen on the current line

  auto advance = [&](std::size_t count) {
    for (std::size_t k = 0; k < count && i < n; ++k) {
      if (content[i] == '\n') {
        ++line;
        line_has_token = false;
      }
      ++i;
    }
  };

  while (i < n) {
    char c = content[i];
    // Whitespace.
    if (std::isspace(static_cast<unsigned char>(c))) {
      advance(1);
      continue;
    }
    // Line comment.
    if (c == '/' && i + 1 < n && content[i + 1] == '/') {
      std::size_t end = content.find('\n', i);
      if (end == std::string::npos) end = n;
      std::string body = content.substr(i + 2, end - i - 2);
      ParseAllowComment(body, line, /*comment_only_line=*/!line_has_token,
                        &f.allowances);
      advance(end - i);
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < n && content[i + 1] == '*') {
      std::size_t end = content.find("*/", i + 2);
      if (end == std::string::npos) end = n;
      std::string body = content.substr(i + 2, end - i - 2);
      ParseAllowComment(body, line, !line_has_token, &f.allowances);
      advance((end == n ? n : end + 2) - i);
      continue;
    }
    // Preprocessor directive (only when '#' starts the logical line).
    if (c == '#' && !line_has_token) {
      int start_line = line;
      std::string text;
      while (i < n) {
        std::size_t end = content.find('\n', i);
        if (end == std::string::npos) end = n;
        std::string chunk = content.substr(i, end - i);
        bool continued = !chunk.empty() && chunk.back() == '\\';
        if (continued) chunk.pop_back();
        text += chunk;
        advance(end - i + (end < n ? 1 : 0));
        if (!continued) break;
      }
      f.tokens.push_back(Token{Token::Kind::kPreproc, Trim(text), start_line});
      // The directive consumed its newline; the next line starts fresh.
      continue;
    }
    // String literal (including a minimal R"delim( ... )delim" raw form).
    if (c == 'R' && i + 1 < n && content[i + 1] == '"') {
      // Raw string: R"delim( ... )delim"
      std::size_t open = content.find('(', i + 2);
      if (open != std::string::npos) {
        std::string delim = content.substr(i + 2, open - i - 2);
        std::string closer = ")" + delim + "\"";
        std::size_t end = content.find(closer, open + 1);
        if (end == std::string::npos) end = n;
        else end += closer.size();
        advance(end - i);
        line_has_token = true;
        continue;
      }
    }
    if (c == '"' || c == '\'') {
      char quote = c;
      std::size_t j = i + 1;
      while (j < n && content[j] != quote) {
        if (content[j] == '\\' && j + 1 < n) ++j;
        ++j;
      }
      advance((j < n ? j + 1 : n) - i);
      line_has_token = true;
      continue;
    }
    // Identifier.
    if (IsIdentStart(c)) {
      std::size_t j = i;
      while (j < n && IsIdentChar(content[j])) ++j;
      f.tokens.push_back(
          Token{Token::Kind::kIdent, content.substr(i, j - i), line});
      line_has_token = true;
      advance(j - i);
      continue;
    }
    // Number.
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t j = i;
      while (j < n && (IsIdentChar(content[j]) || content[j] == '.' ||
                       ((content[j] == '+' || content[j] == '-') && j > i &&
                        (content[j - 1] == 'e' || content[j - 1] == 'E')))) {
        ++j;
      }
      f.tokens.push_back(
          Token{Token::Kind::kNumber, content.substr(i, j - i), line});
      line_has_token = true;
      advance(j - i);
      continue;
    }
    // Punctuation. Keep '::', '->' and '+=' glued (rules match on them);
    // everything else is a single char — '<' and '>' stay split so
    // template-angle matching can treat '>>' as two closers.
    std::string tok(1, c);
    if (i + 1 < n) {
      char d = content[i + 1];
      if ((c == ':' && d == ':') || (c == '-' && d == '>') ||
          (c == '+' && d == '=')) {
        tok += d;
      }
    }
    f.tokens.push_back(Token{Token::Kind::kPunct, tok, line});
    line_has_token = true;
    advance(tok.size());
  }

  // Resolve comment-only allowances to the next line carrying a token.
  for (auto& a : f.allowances) {
    if (a.line != -1) continue;
    a.line = a.comment_line;  // fallback: covers nothing real
    for (const auto& t : f.tokens) {
      if (t.line > a.comment_line) {
        a.line = t.line;
        break;
      }
    }
  }
  return f;
}

// ---------------------------------------------------------------------------
// Token helpers shared by rules
// ---------------------------------------------------------------------------

namespace {

using Tokens = std::vector<Token>;

bool Is(const Tokens& t, std::size_t i, Token::Kind k, const char* text) {
  return i < t.size() && t[i].kind == k && t[i].text == text;
}
bool IsPunct(const Tokens& t, std::size_t i, const char* text) {
  return Is(t, i, Token::Kind::kPunct, text);
}
bool IsIdent(const Tokens& t, std::size_t i, const char* text) {
  return Is(t, i, Token::Kind::kIdent, text);
}
bool IsAnyIdent(const Tokens& t, std::size_t i) {
  return i < t.size() && t[i].kind == Token::Kind::kIdent;
}

/// `i` points at '<'. Returns the index one past the matching '>', or
/// `fail` if the angle run is not template-like (hits ';', '{' or EOF).
std::size_t SkipAngles(const Tokens& t, std::size_t i, std::size_t fail) {
  int depth = 0;
  for (std::size_t j = i; j < t.size(); ++j) {
    const std::string& x = t[j].text;
    if (t[j].kind == Token::Kind::kPunct) {
      if (x == "<") ++depth;
      else if (x == ">") {
        if (--depth == 0) return j + 1;
      } else if (x == ";" || x == "{" || x == "}") {
        return fail;
      }
    }
  }
  return fail;
}

/// `i` points at '('. Returns the index of the matching ')' or t.size().
std::size_t MatchParen(const Tokens& t, std::size_t i) {
  int depth = 0;
  for (std::size_t j = i; j < t.size(); ++j) {
    if (t[j].kind != Token::Kind::kPunct) continue;
    if (t[j].text == "(") ++depth;
    else if (t[j].text == ")" && --depth == 0) return j;
  }
  return t.size();
}

/// `i` points at '{'. Returns the index of the matching '}' or t.size().
std::size_t MatchBrace(const Tokens& t, std::size_t i) {
  int depth = 0;
  for (std::size_t j = i; j < t.size(); ++j) {
    if (t[j].kind != Token::Kind::kPunct) continue;
    if (t[j].text == "{") ++depth;
    else if (t[j].text == "}" && --depth == 0) return j;
  }
  return t.size();
}

/// `i` points at ']' scanning backwards; returns index of matching '['.
std::size_t MatchBracketBack(const Tokens& t, std::size_t i) {
  int depth = 0;
  for (std::size_t j = i + 1; j-- > 0;) {
    if (t[j].kind != Token::Kind::kPunct) continue;
    if (t[j].text == "]") ++depth;
    else if (t[j].text == "[" && --depth == 0) return j;
  }
  return 0;
}

struct LambdaBody {
  std::size_t begin;        // first token inside '{'
  std::size_t end;          // index of matching '}'
  std::size_t params_begin; // first token inside '(' (== params_end if none)
  std::size_t params_end;   // index of the params ')'
};

/// Finds lambda bodies lexically inside token range [from, to): a '[' whose
/// previous token cannot end an expression (so it is a lambda-introducer,
/// not a subscript), its ']' , optional (params), tokens up to '{'.
std::vector<LambdaBody> FindLambdas(const Tokens& t, std::size_t from,
                                    std::size_t to) {
  std::vector<LambdaBody> out;
  for (std::size_t i = from; i < to && i < t.size(); ++i) {
    if (!IsPunct(t, i, "[")) continue;
    if (i > 0) {
      const Token& p = t[i - 1];
      bool prev_ends_expr =
          p.kind == Token::Kind::kIdent || p.kind == Token::Kind::kNumber ||
          (p.kind == Token::Kind::kPunct &&
           (p.text == "]" || p.text == ")" || p.text == ">"));
      if (prev_ends_expr) continue;  // subscript, not a lambda introducer
    }
    // Capture list.
    int depth = 0;
    std::size_t j = i;
    for (; j < t.size(); ++j) {
      if (IsPunct(t, j, "[")) ++depth;
      else if (IsPunct(t, j, "]") && --depth == 0) break;
    }
    if (j >= t.size()) break;
    ++j;
    std::size_t params_begin = j, params_end = j;
    if (IsPunct(t, j, "(")) {
      params_begin = j + 1;
      params_end = MatchParen(t, j);
      j = params_end + 1;
    }
    // Skip mutable / noexcept / trailing return type up to '{'.
    while (j < t.size() && !IsPunct(t, j, "{") && !IsPunct(t, j, ";") &&
           !IsPunct(t, j, ")")) {
      ++j;
    }
    if (j >= t.size() || !IsPunct(t, j, "{")) continue;
    std::size_t close = MatchBrace(t, j);
    out.push_back(LambdaBody{j + 1, close, params_begin, params_end});
  }
  return out;
}

bool PathContains(const std::string& path, const char* needle) {
  return path.find(needle) != std::string::npos;
}

void Add(std::vector<Finding>* out, const SourceFile& f, const char* rule,
         int line, std::string message) {
  // One finding per (rule, line): several triggers on one source line are
  // one hazard to a human.
  for (const auto& existing : *out) {
    if (existing.line == line && existing.rule == rule) return;
  }
  Finding fd;
  fd.rule = rule;
  fd.path = f.path;
  fd.line = line;
  fd.message = std::move(message);
  fd.snippet = f.Snippet(line);
  out->push_back(std::move(fd));
}

// ---------------------------------------------------------------------------
// Rule 1: nondet-random
// ---------------------------------------------------------------------------

void CheckNondetRandom(const SourceFile& f, std::vector<Finding>* out) {
  if (PathContains(f.path, "src/stats/")) return;
  const Tokens& t = f.tokens;
  static const char* kBanned[] = {"rand", "srand", "time", "clock"};
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != Token::Kind::kIdent) continue;
    if (t[i].text == "random_device") {
      Add(out, f, "nondet-random", t[i].line,
          "std::random_device is nondeterministic; seed a stats::Rng "
          "instead (only src/stats/ may touch entropy sources)");
      continue;
    }
    for (const char* b : kBanned) {
      if (t[i].text != b) continue;
      if (!IsPunct(t, i + 1, "(")) continue;
      // Member calls (x.time(), x->clock()) are unrelated APIs.
      if (i > 0 && (IsPunct(t, i - 1, ".") || IsPunct(t, i - 1, "->"))) break;
      Add(out, f, "nondet-random", t[i].line,
          std::string("call to ") + b +
              "() draws nondeterministic state; results must be a pure "
              "function of the experiment seed — use stats::Rng");
      break;
    }
  }
}

// ---------------------------------------------------------------------------
// Rule 2: unordered-iter
// ---------------------------------------------------------------------------

bool IsUnorderedName(const std::string& s) {
  return s == "unordered_map" || s == "unordered_set" ||
         s == "unordered_multimap" || s == "unordered_multiset";
}

void CheckUnorderedIter(const SourceFile& f, std::vector<Finding>* out) {
  const Tokens& t = f.tokens;

  // Pass A: names of variables/members declared with an unordered container
  // type, plus `using X = ...unordered_map<...>` aliases (and variables
  // declared with those aliases).
  std::set<std::string> aliases;
  std::set<std::string> vars;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != Token::Kind::kIdent) continue;
    // Alias definitions.
    if ((t[i].text == "using" || t[i].text == "typedef") && IsAnyIdent(t, i + 1)) {
      if (t[i].text == "using" && IsPunct(t, i + 2, "=")) {
        std::string name = t[i + 1].text;
        for (std::size_t j = i + 3; j < t.size() && !IsPunct(t, j, ";"); ++j) {
          if (t[j].kind == Token::Kind::kIdent &&
              IsUnorderedName(t[j].text)) {
            aliases.insert(name);
            break;
          }
        }
      }
      continue;
    }
    bool is_container_type =
        IsUnorderedName(t[i].text) || aliases.count(t[i].text) != 0;
    if (!is_container_type) continue;
    // Skip qualified-name *prefixes* (std:: already sits before us; fine).
    std::size_t j = i + 1;
    if (IsPunct(t, j, "<")) {
      j = SkipAngles(t, j, /*fail=*/t.size());
      if (j == t.size()) continue;
    } else if (aliases.count(t[i].text) == 0) {
      continue;  // bare `unordered_map` without template args: not a decl
    }
    // Declarator list: [*&]* name [, name ...] terminated by ; = { (
    while (j < t.size()) {
      while (IsPunct(t, j, "*") || IsPunct(t, j, "&")) ++j;
      if (!IsAnyIdent(t, j)) break;
      // `Type name(` is a function declarator returning the container —
      // the name is not a container variable.
      if (IsPunct(t, j + 1, "(")) break;
      vars.insert(t[j].text);
      if (IsPunct(t, j + 1, ",")) {
        j += 2;
        continue;
      }
      break;
    }
  }
  if (vars.empty()) return;

  // Pass B: iterations.
  for (std::size_t i = 0; i < t.size(); ++i) {
    // x.begin() / x.end() / x.cbegin() / x.cend()
    if (IsAnyIdent(t, i) && vars.count(t[i].text) != 0 &&
        (IsPunct(t, i + 1, ".") || IsPunct(t, i + 1, "->")) &&
        IsAnyIdent(t, i + 2) && IsPunct(t, i + 3, "(")) {
      // `.end()` alone is a find-sentinel comparison, not an iteration;
      // every real traversal needs a begin.
      const std::string& m = t[i + 2].text;
      if (m == "begin" || m == "cbegin" || m == "rbegin") {
        Add(out, f, "unordered-iter", t[i].line,
            "iterating unordered container '" + t[i].text +
                "' — bucket order is implementation-defined and can leak "
                "into results/charges; emit in first-seen or sorted order");
      }
      continue;
    }
    // Range-for whose sequence expression mentions a tracked container.
    if (IsIdent(t, i, "for") && IsPunct(t, i + 1, "(")) {
      std::size_t close = MatchParen(t, i + 1);
      std::size_t colon = t.size();
      int depth = 0;
      for (std::size_t j = i + 1; j < close; ++j) {
        if (IsPunct(t, j, "(")) ++depth;
        else if (IsPunct(t, j, ")")) --depth;
        else if (depth == 1 && IsPunct(t, j, ":")) {
          colon = j;
          break;
        }
      }
      if (colon == t.size()) continue;  // classic for loop
      for (std::size_t j = colon + 1; j < close; ++j) {
        if (IsAnyIdent(t, j) && vars.count(t[j].text) != 0) {
          Add(out, f, "unordered-iter", t[i].line,
              "range-for over unordered container '" + t[j].text +
                  "' — bucket order is implementation-defined and can leak "
                  "into results/charges; emit in first-seen or sorted order");
          break;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rules 3 & 5 share the lexical parallel-region scan.
// ---------------------------------------------------------------------------

bool IsChargeCall(const Tokens& t, std::size_t i) {
  if (t[i].kind != Token::Kind::kIdent) return false;
  const std::string& x = t[i].text;
  bool chargey = x.rfind("Charge", 0) == 0 || x == "Allocate" ||
                 x == "AllocateEverywhere" || x == "AllocateTransient" ||
                 x == "Free" || x == "FreeEverywhere";
  return chargey && IsPunct(t, i + 1, "(");
}

/// True when the call at `i` hands its callback arguments to a parallel
/// region: the exec entry points themselves, the Rel operators whose
/// row callbacks run inside the engine's chunked loop (member-call forms
/// only, so a local helper named Filter is not matched), and the ColExpr
/// factories whose payloads the columnar Project executes per chunk
/// (Fn lambdas; Expr takes a compiled program, matched for uniformity).
bool IsParallelCallee(const Tokens& t, std::size_t i) {
  if (t[i].kind != Token::Kind::kIdent) return false;
  const std::string& x = t[i].text;
  if (x == "ParallelFor" || x == "ParallelReduce") return true;
  if (x == "Filter" || x == "Project" || x == "RowFilter") {
    return i > 0 && (IsPunct(t, i - 1, ".") || IsPunct(t, i - 1, "->"));
  }
  if (x == "Fn" || x == "Expr") {
    return i >= 2 && IsPunct(t, i - 1, "::") && IsIdent(t, i - 2, "ColExpr");
  }
  return false;
}

/// Collects the parallel-region lambda bodies: arguments of lexical
/// exec::ParallelFor / exec::ParallelReduce call expressions and of the
/// engine operators that run their callbacks under those loops, plus the
/// batched vertex/VG hook overrides (see below).
std::vector<LambdaBody> ParallelLambdas(const Tokens& t) {
  std::vector<LambdaBody> bodies;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!IsParallelCallee(t, i)) continue;
    std::size_t j = i + 1;
    if (IsPunct(t, j, "<")) {
      j = SkipAngles(t, j, t.size());
      if (j == t.size()) continue;
    }
    if (!IsPunct(t, j, "(")) continue;
    std::size_t close = MatchParen(t, j);
    auto inner = FindLambdas(t, j + 1, close);
    bodies.insert(bodies.end(), inner.begin(), inner.end());
  }
  // Batched vertex/VG hooks: the GAS engine calls GatherBatch once per
  // ParallelFor chunk, and the columnar VgApply calls SampleBatch once
  // for every invocation group at once — simulator charges inside either
  // body would interleave by scheduling or diverge from the per-edge /
  // per-tuple accounting of the scalar paths. An override definition is
  // the identifier, its parameter list, then qualifier identifiers
  // including `override` before '{'; call sites and free functions that
  // share the name don't match.
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!(IsIdent(t, i, "GatherBatch") || IsIdent(t, i, "SampleBatch"))) {
      continue;
    }
    if (!IsPunct(t, i + 1, "(")) continue;
    std::size_t close = MatchParen(t, i + 1);
    if (close >= t.size()) continue;
    std::size_t j = close + 1;
    bool has_override = false;
    while (j < t.size() && t[j].kind == Token::Kind::kIdent) {
      if (t[j].text == "override" || t[j].text == "final") has_override = true;
      ++j;
    }
    if (!has_override || !IsPunct(t, j, "{")) continue;
    bodies.push_back(LambdaBody{j + 1, MatchBrace(t, j), i + 2, close});
  }
  return bodies;
}

void CheckChargeInParallel(const SourceFile& f, std::vector<Finding>* out) {
  const Tokens& t = f.tokens;
  for (const LambdaBody& body : ParallelLambdas(t)) {
    bool has_ledger = false;
    for (std::size_t i = body.begin; i < body.end; ++i) {
      if (IsIdent(t, i, "ScopedLedger")) {
        has_ledger = true;
        break;
      }
    }
    if (has_ledger) continue;
    for (std::size_t i = body.begin; i < body.end; ++i) {
      if (IsChargeCall(t, i)) {
        Add(out, f, "charge-in-parallel", t[i].line,
            "simulator charge '" + t[i].text +
                "' inside a ParallelFor/ParallelReduce body with no "
                "sim::ScopedLedger bound — charges would interleave by "
                "scheduling; record to a per-chunk ChargeLedger and commit "
                "in chunk-index order");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rule 5: naive-reduction
// ---------------------------------------------------------------------------

/// Keywords that can precede an identifier without declaring it.
bool IsNonTypeKeyword(const std::string& s) {
  static const std::set<std::string> kKeywords = {
      "return",   "if",     "while",  "else",   "case",  "goto",
      "new",      "delete", "throw",  "sizeof", "do",    "switch",
      "co_return", "co_await", "co_yield", "not", "and", "or"};
  return kKeywords.count(s) != 0;
}

/// True when identifier `name` is declared inside token range [from, to):
/// some occurrence is preceded by a type-ish token (identifier, '>', '&',
/// '*', 'auto') and not part of a member access.
bool DeclaredWithin(const Tokens& t, std::size_t from, std::size_t to,
                    const std::string& name) {
  for (std::size_t i = from; i < to; ++i) {
    if (!(t[i].kind == Token::Kind::kIdent && t[i].text == name)) continue;
    if (i == 0) continue;
    const Token& p = t[i - 1];
    bool typeish =
        (p.kind == Token::Kind::kIdent && !IsNonTypeKeyword(p.text)) ||
        (p.kind == Token::Kind::kPunct &&
         (p.text == ">" || p.text == "&" || p.text == "*"));
    if (!typeish) continue;
    if (p.kind == Token::Kind::kPunct && (p.text == "." || p.text == "->")) {
      continue;
    }
    // Structured bindings: `auto [a, b]` / `auto& [a, b]`.
    return true;
  }
  // Structured-binding names: appear between '[' and ']' right after auto.
  for (std::size_t i = from; i + 1 < to; ++i) {
    if (!IsIdent(t, i, "auto")) continue;
    std::size_t j = i + 1;
    while (IsPunct(t, j, "&") || IsPunct(t, j, "*")) ++j;
    if (!IsPunct(t, j, "[")) continue;
    for (std::size_t k = j + 1; k < to && !IsPunct(t, k, "]"); ++k) {
      if (t[k].kind == Token::Kind::kIdent && t[k].text == name) return true;
    }
  }
  return false;
}

void CheckNaiveReduction(const SourceFile& f, std::vector<Finding>* out) {
  const Tokens& t = f.tokens;
  for (const LambdaBody& body : ParallelLambdas(t)) {
    for (std::size_t i = body.begin; i < body.end; ++i) {
      if (!IsPunct(t, i, "+=")) continue;
      // Walk the LHS chain backwards to its root identifier.
      std::size_t j = i;
      while (j > body.begin) {
        const Token& p = t[j - 1];
        if (p.kind == Token::Kind::kPunct && p.text == "]") {
          j = MatchBracketBack(t, j - 1);
          continue;
        }
        if (p.kind == Token::Kind::kIdent || p.kind == Token::Kind::kNumber) {
          --j;
          continue;
        }
        if (p.kind == Token::Kind::kPunct &&
            (p.text == "." || p.text == "->")) {
          --j;
          continue;
        }
        break;
      }
      if (!IsAnyIdent(t, j)) continue;
      const std::string& root = t[j].text;
      if (DeclaredWithin(t, body.begin, body.end, root)) continue;
      // Lambda parameters are per-invocation state, not shared captures —
      // this is how ParallelReduce's ordered fold receives its accumulator.
      bool is_param = false;
      for (std::size_t k = body.params_begin; k < body.params_end; ++k) {
        if (t[k].kind == Token::Kind::kIdent && t[k].text == root) {
          is_param = true;
          break;
        }
      }
      if (is_param) continue;
      Add(out, f, "naive-reduction", t[i].line,
          "'" + root +
              " +=' inside a parallel region accumulates in scheduling "
              "order — use exec::ParallelReduce (chunk partials folded in "
              "index order) or linalg::blocked");
    }
  }
}

// ---------------------------------------------------------------------------
// Rule 4: raw-thread
// ---------------------------------------------------------------------------

void CheckRawThread(const SourceFile& f, std::vector<Finding>* out) {
  if (PathContains(f.path, "src/exec/")) return;
  const Tokens& t = f.tokens;
  static const std::set<std::string> kPrimitives = {
      "thread",       "jthread",       "mutex",
      "recursive_mutex", "shared_mutex", "timed_mutex",
      "condition_variable", "condition_variable_any",
      "atomic",       "atomic_flag",   "atomic_ref",
      "atomic_thread_fence", "atomic_signal_fence",
      "this_thread",  "stop_token",    "stop_source",
      "lock_guard",   "unique_lock",   "scoped_lock",
      "shared_lock",  "future",        "promise",
      "async",        "barrier",       "latch",
      "counting_semaphore", "binary_semaphore"};
  // The lock-free pool's spin/park vocabulary: cpu-relax intrinsics only
  // belong in src/exec/'s dispatch loops — anywhere else they signal a
  // hand-rolled spin lock.
  static const std::set<std::string> kSpinIntrinsics = {
      "__builtin_ia32_pause", "_mm_pause"};
  static const std::set<std::string> kHeaders = {
      "<thread>",  "<mutex>",  "<atomic>", "<condition_variable>",
      "<future>",  "<shared_mutex>", "<barrier>", "<latch>",
      "<semaphore>", "<stop_token>"};
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind == Token::Kind::kPreproc) {
      for (const auto& h : kHeaders) {
        if (t[i].text.rfind("#include", 0) == 0 &&
            t[i].text.find(h) != std::string::npos) {
          Add(out, f, "raw-thread", t[i].line,
              "include of " + h +
                  " outside src/exec/ — engines must use the "
                  "mlbench::exec layer so charges and RNG streams stay "
                  "deterministic");
        }
      }
      continue;
    }
    if (t[i].kind == Token::Kind::kIdent &&
        kSpinIntrinsics.count(t[i].text) != 0) {
      Add(out, f, "raw-thread", t[i].line,
          "cpu-relax intrinsic " + t[i].text +
              " outside src/exec/ — spin/park loops live in the exec "
              "dispatch layer; engines express parallelism through "
              "ParallelFor/ParallelReduce");
      continue;
    }
    if (IsIdent(t, i, "std") && IsPunct(t, i + 1, "::") &&
        IsAnyIdent(t, i + 2) && kPrimitives.count(t[i + 2].text) != 0) {
      Add(out, f, "raw-thread", t[i].line,
          "raw std::" + t[i + 2].text +
              " outside src/exec/ — engines must use the mlbench::exec "
              "layer (ParallelFor/ParallelReduce + ChargeLedger) so "
              "results stay bit-identical at any thread count");
    }
  }
}

// ---------------------------------------------------------------------------
// Rule 7: ignored-status
// ---------------------------------------------------------------------------

/// Known Status-returning APIs whose result must be consumed. The compiler
/// already enforces `[[nodiscard]]` on common::Status itself (status.h);
/// this rule is the repo-side backstop — it catches discards in code that a
/// given configuration never compiles, and names the idiomatic fixes.
bool IsStatusReturningName(const std::string& s) {
  static const std::set<std::string> kStatusFns = {
      "Allocate",       "AllocateEverywhere", "AllocateSoft",
      "CommitLedger",   "Boot",               "RunSuperstep",
      "RunSweep",       "BroadcastClosure",   "SpillToDisk",
  };
  return kStatusFns.count(s) != 0;
}

void CheckIgnoredStatus(const SourceFile& f, std::vector<Finding>* out) {
  const Tokens& t = f.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != Token::Kind::kIdent ||
        !IsStatusReturningName(t[i].text) || !IsPunct(t, i + 1, "(")) {
      continue;
    }
    // The call's value must flow somewhere: the matching ')' directly
    // followed by ';' means a bare expression statement.
    std::size_t close = MatchParen(t, i + 1);
    if (close >= t.size() || !IsPunct(t, close + 1, ";")) continue;
    // Walk the receiver chain (sim_->Allocate, mlbench::sim::Foo) back to
    // its root: pairs of member/scope punctuation preceded by an
    // identifier. Anything else (return, =, a type name) ends the chain.
    std::size_t j = i;
    while (j >= 2 && t[j - 1].kind == Token::Kind::kPunct &&
           (t[j - 1].text == "." || t[j - 1].text == "->" ||
            t[j - 1].text == "::") &&
           t[j - 2].kind == Token::Kind::kIdent) {
      j -= 2;
    }
    // A statement boundary before the chain root means nothing consumes
    // the value. `(void)expr;` is the sanctioned explicit discard.
    bool stmt_start =
        j == 0 ||
        (t[j - 1].kind == Token::Kind::kPunct &&
         (t[j - 1].text == ";" || t[j - 1].text == "{" ||
          t[j - 1].text == "}" || t[j - 1].text == ")")) ||
        (t[j - 1].kind == Token::Kind::kIdent && t[j - 1].text == "else") ||
        t[j - 1].kind == Token::Kind::kPreproc;
    if (!stmt_start) continue;
    bool void_cast = j >= 3 && IsPunct(t, j - 3, "(") &&
                     IsIdent(t, j - 2, "void") && IsPunct(t, j - 1, ")");
    if (void_cast) continue;
    Add(out, f, "ignored-status", t[i].line,
        "result of Status-returning call '" + t[i].text +
            "(...)' is discarded — check it (MLBENCH_RETURN_NOT_OK / "
            "MLBENCH_CHECK) or cast to (void) with a comment arguing why "
            "failure is impossible here");
  }
}

// ---------------------------------------------------------------------------
// Rule 6: header-hygiene
// ---------------------------------------------------------------------------

void CheckHeaderHygiene(const SourceFile& f, std::vector<Finding>* out) {
  const Tokens& t = f.tokens;
  if (f.is_header) {
    bool guarded = false;
    // `#pragma once` anywhere, or the classic #ifndef/#define pair as the
    // first two directives.
    const Token* first_directive = nullptr;
    for (const auto& tok : t) {
      if (tok.kind != Token::Kind::kPreproc) continue;
      if (tok.text.rfind("#pragma", 0) == 0 &&
          tok.text.find("once") != std::string::npos) {
        guarded = true;
        break;
      }
      if (first_directive == nullptr) {
        first_directive = &tok;
        if (tok.text.rfind("#ifndef", 0) == 0) guarded = true;
      }
    }
    if (!guarded) {
      Add(out, f, "header-hygiene", 1,
          "header has no include guard — add `#pragma once`");
    }
  }
  if (!f.is_header) return;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (IsIdent(t, i, "using") && IsIdent(t, i + 1, "namespace")) {
      Add(out, f, "header-hygiene", t[i].line,
          "`using namespace` at header scope leaks into every includer");
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Registry / driver
// ---------------------------------------------------------------------------

std::vector<RuleInfo> Rules() {
  return {
      {"nondet-random",
       "std::random_device / rand() / time() / clock() outside src/stats/"},
      {"unordered-iter",
       "iteration over std::unordered_{map,set} — order-dependence hazard"},
      {"charge-in-parallel",
       "ClusterSim charges in ParallelFor/Reduce bodies with no ScopedLedger"},
      {"raw-thread",
       "raw std::thread/mutex/atomic outside src/exec/"},
      {"naive-reduction",
       "captured `x +=` accumulation inside a parallel region"},
      {"header-hygiene",
       "missing include guard / `using namespace` at header scope"},
      {"ignored-status",
       "discarded result of a known Status-returning call"},
      {"bad-suppression",
       "mlint: allow(...) comment with no reason, or for an unknown rule"},
  };
}

void CheckFile(const SourceFile& file, std::vector<Finding>* out) {
  std::vector<Finding> raw;
  CheckNondetRandom(file, &raw);
  CheckUnorderedIter(file, &raw);
  CheckChargeInParallel(file, &raw);
  CheckRawThread(file, &raw);
  CheckNaiveReduction(file, &raw);
  CheckHeaderHygiene(file, &raw);
  CheckIgnoredStatus(file, &raw);

  std::set<std::string> known;
  for (const auto& r : Rules()) known.insert(r.name);

  // Validate suppressions; reasonless or unknown-rule allowances are
  // findings themselves and suppress nothing.
  std::set<std::pair<std::string, int>> active;  // (rule, line)
  for (const auto& a : file.allowances) {
    if (known.count(a.rule) == 0) {
      Finding fd;
      fd.rule = "bad-suppression";
      fd.path = file.path;
      fd.line = a.comment_line;
      fd.message = "mlint: allow(" + a.rule + ") names an unknown rule";
      fd.snippet = file.Snippet(a.comment_line);
      raw.push_back(std::move(fd));
      continue;
    }
    if (a.reason.size() < 3) {
      Finding fd;
      fd.rule = "bad-suppression";
      fd.path = file.path;
      fd.line = a.comment_line;
      fd.message = "mlint: allow(" + a.rule +
                   ") has no reason — every suppression must argue why the "
                   "site is safe";
      fd.snippet = file.Snippet(a.comment_line);
      raw.push_back(std::move(fd));
      continue;
    }
    active.insert({a.rule, a.line});
  }

  for (auto& fd : raw) {
    if (active.count({fd.rule, fd.line}) != 0) continue;
    out->push_back(std::move(fd));
  }
}

int LintResult::NewCount() const {
  int n = 0;
  for (const auto& f : findings) n += f.baselined ? 0 : 1;
  return n;
}
int LintResult::BaselinedCount() const {
  return static_cast<int>(findings.size()) - NewCount();
}

LintResult LintContent(const std::string& path, const std::string& content) {
  LintResult r;
  r.files_scanned = 1;
  SourceFile f = Parse(path, content);
  CheckFile(f, &r.findings);
  return r;
}

namespace {

bool LintableFile(const std::filesystem::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".cc";
}

bool SkippableDir(const std::filesystem::path& p) {
  const std::string name = p.filename().string();
  return name.rfind("build", 0) == 0 || (!name.empty() && name[0] == '.');
}

}  // namespace

LintResult LintPaths(const std::vector<std::string>& paths) {
  namespace fs = std::filesystem;
  LintResult r;
  std::vector<std::string> files;
  for (const auto& p : paths) {
    std::error_code ec;
    if (fs::is_directory(p, ec)) {
      fs::recursive_directory_iterator it(p, ec), end;
      for (; it != end; it.increment(ec)) {
        if (it->is_directory() && SkippableDir(it->path())) {
          it.disable_recursion_pending();
          continue;
        }
        if (it->is_regular_file() && LintableFile(it->path())) {
          files.push_back(it->path().generic_string());
        }
      }
    } else if (fs::exists(p, ec)) {
      files.push_back(p);
    }
  }
  std::sort(files.begin(), files.end());
  for (const auto& path : files) {
    std::ifstream in(path);
    if (!in) continue;
    std::stringstream ss;
    ss << in.rdbuf();
    SourceFile f = Parse(path, ss.str());
    CheckFile(f, &r.findings);
    ++r.files_scanned;
  }
  std::stable_sort(r.findings.begin(), r.findings.end(),
                   [](const Finding& a, const Finding& b) {
                     if (a.path != b.path) return a.path < b.path;
                     return a.line < b.line;
                   });
  return r;
}

// ---------------------------------------------------------------------------
// Baseline
// ---------------------------------------------------------------------------

std::string FindingKey(const Finding& f) {
  return f.rule + "|" + f.path + "|" + f.snippet;
}

std::multimap<std::string, int> ParseBaseline(const std::string& text) {
  std::multimap<std::string, int> out;
  std::stringstream ss(text);
  std::string line;
  int lineno = 0;
  while (std::getline(ss, line)) {
    ++lineno;
    std::string trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    out.emplace(trimmed, lineno);
  }
  return out;
}

int ApplyBaseline(const std::string& baseline_text, LintResult* result) {
  auto entries = ParseBaseline(baseline_text);
  for (auto& f : result->findings) {
    auto it = entries.find(FindingKey(f));
    if (it != entries.end()) {
      f.baselined = true;
      entries.erase(it);  // each entry absorbs one finding
    }
  }
  return static_cast<int>(entries.size());
}

// ---------------------------------------------------------------------------
// Reporters
// ---------------------------------------------------------------------------

std::string TextReport(const LintResult& result) {
  std::stringstream out;
  for (const auto& f : result.findings) {
    if (f.baselined) continue;
    out << f.path << ":" << f.line << ": [" << f.rule << "] " << f.message
        << "\n";
    if (!f.snippet.empty()) out << "    " << f.snippet << "\n";
  }
  out << "mlint: " << result.files_scanned << " files, "
      << result.findings.size() << " findings (" << result.NewCount()
      << " new, " << result.BaselinedCount() << " baselined)\n";
  return out.str();
}

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string JsonReport(const LintResult& result) {
  std::stringstream out;
  out << "{\n  \"mlint_version\": 1,\n  \"files_scanned\": "
      << result.files_scanned << ",\n  \"summary\": {\"total\": "
      << result.findings.size() << ", \"new\": " << result.NewCount()
      << ", \"baselined\": " << result.BaselinedCount()
      << "},\n  \"findings\": [";
  bool first = true;
  for (const auto& f : result.findings) {
    out << (first ? "\n" : ",\n");
    first = false;
    out << "    {\"rule\": \"" << JsonEscape(f.rule) << "\", \"path\": \""
        << JsonEscape(f.path) << "\", \"line\": " << f.line
        << ", \"message\": \"" << JsonEscape(f.message)
        << "\", \"snippet\": \"" << JsonEscape(f.snippet)
        << "\", \"baselined\": " << (f.baselined ? "true" : "false") << "}";
  }
  out << (first ? "" : "\n  ") << "]\n}\n";
  return out.str();
}

}  // namespace mlint
