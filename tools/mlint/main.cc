#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "mlint.h"

/// mlint CLI.
///
///   mlint [options] <path>...          lint files / directories
///   --baseline=FILE    subtract a baseline ('.mlint-baseline' in the
///                      current directory is picked up automatically)
///   --no-baseline      ignore any baseline file
///   --json=FILE        also write the JSON report ('-' for stdout)
///   --list-rules       print the rule registry and exit
///
/// Exit code: 0 when every finding is baselined or suppressed, 1 on new
/// findings, 2 on usage errors.

namespace {

int Usage() {
  std::cerr
      << "usage: mlint [--baseline=FILE|--no-baseline] [--json=FILE] "
         "[--list-rules] <path>...\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  std::string baseline_path;
  std::string json_path;
  bool no_baseline = false;
  bool list_rules = false;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--baseline=", 0) == 0) {
      baseline_path = arg.substr(11);
    } else if (arg == "--no-baseline") {
      no_baseline = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg == "--list-rules") {
      list_rules = true;
    } else if (arg == "-h" || arg == "--help") {
      Usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "mlint: unknown option " << arg << "\n";
      return Usage();
    } else {
      paths.push_back(arg);
    }
  }

  if (list_rules) {
    for (const auto& r : mlint::Rules()) {
      std::cout << r.name << "\n    " << r.summary << "\n";
    }
    return 0;
  }
  if (paths.empty()) return Usage();

  mlint::LintResult result = mlint::LintPaths(paths);

  if (!no_baseline) {
    if (baseline_path.empty() &&
        std::filesystem::exists(".mlint-baseline")) {
      baseline_path = ".mlint-baseline";
    }
    if (!baseline_path.empty()) {
      std::ifstream in(baseline_path);
      if (!in) {
        std::cerr << "mlint: cannot read baseline " << baseline_path << "\n";
        return 2;
      }
      std::stringstream ss;
      ss << in.rdbuf();
      int stale = mlint::ApplyBaseline(ss.str(), &result);
      if (stale > 0) {
        std::cerr << "mlint: " << stale << " stale baseline entr"
                  << (stale == 1 ? "y" : "ies") << " in " << baseline_path
                  << " matched nothing — delete them\n";
      }
    }
  }

  if (!json_path.empty()) {
    std::string json = mlint::JsonReport(result);
    if (json_path == "-") {
      std::cout << json;
    } else {
      std::ofstream out(json_path);
      out << json;
    }
  }

  std::cout << mlint::TextReport(result);
  return result.NewCount() > 0 ? 1 : 0;
}
