#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "mlint.h"

/// mlint CLI.
///
///   mlint [options] <path>...          lint files / directories
///   --baseline=FILE    subtract a baseline ('.mlint-baseline' in the
///                      current directory is picked up automatically)
///   --no-baseline      ignore any baseline file
///   --json=FILE        also write the JSON report ('-' for stdout)
///   --callgraph=FILE   write the call-graph dump ('-' for stdout)
///   --why=SPEC         print reachability chains for findings matching
///                      SPEC (a rule name, "path:line", or any substring
///                      of "rule|path:line"); also `--why SPEC`
///   --index-root=PATH  extra paths indexed for the call graph but not
///                      linted (repeatable; positional paths are both)
///   --index-cache=FILE load/save pass-1 facts keyed on content hashes
///   --fix              apply mechanical fixes in place (ignored-status,
///                      reasonless suppressions, unordered-iter scaffolds)
///   --dry-run          with --fix: print the diff, write nothing
///   --annotate         emit GitHub Actions ::error annotations instead of
///                      the text report
///   --list-rules       print the rule registry and exit
///
/// Exit code: 0 when every finding is baselined or suppressed, 1 on new
/// findings, 2 on usage errors.

namespace {

int Usage() {
  std::cerr << "usage: mlint [--baseline=FILE|--no-baseline] [--json=FILE]\n"
               "             [--callgraph=FILE] [--why=SPEC] "
               "[--index-root=PATH]...\n"
               "             [--index-cache=FILE] [--fix [--dry-run]] "
               "[--annotate]\n"
               "             [--list-rules] <path>...\n";
  return 2;
}

bool WriteOut(const std::string& dest, const std::string& payload) {
  if (dest == "-") {
    std::cout << payload;
    return true;
  }
  std::ofstream out(dest, std::ios::trunc);
  if (!out) return false;
  out << payload;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  std::vector<std::string> index_roots;
  std::string baseline_path;
  std::string json_path;
  std::string callgraph_path;
  std::string why_spec;
  std::string index_cache;
  bool no_baseline = false;
  bool list_rules = false;
  bool fix = false;
  bool dry_run = false;
  bool annotate = false;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--baseline=", 0) == 0) {
      baseline_path = arg.substr(11);
    } else if (arg == "--no-baseline") {
      no_baseline = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg.rfind("--callgraph=", 0) == 0) {
      callgraph_path = arg.substr(12);
    } else if (arg.rfind("--why=", 0) == 0) {
      why_spec = arg.substr(6);
    } else if (arg == "--why" && i + 1 < argc) {
      why_spec = argv[++i];
    } else if (arg.rfind("--index-root=", 0) == 0) {
      index_roots.push_back(arg.substr(13));
    } else if (arg.rfind("--index-cache=", 0) == 0) {
      index_cache = arg.substr(14);
    } else if (arg == "--fix") {
      fix = true;
    } else if (arg == "--dry-run") {
      dry_run = true;
    } else if (arg == "--annotate") {
      annotate = true;
    } else if (arg == "--list-rules") {
      list_rules = true;
    } else if (arg == "-h" || arg == "--help") {
      Usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "mlint: unknown option " << arg << "\n";
      return Usage();
    } else {
      paths.push_back(arg);
    }
  }

  if (list_rules) {
    for (const auto& r : mlint::Rules()) {
      std::cout << r.name << "\n    " << r.summary << "\n";
    }
    return 0;
  }
  if (paths.empty()) return Usage();

  mlint::LintOptions options;
  options.lint_paths = paths;
  options.index_paths = paths;
  options.index_paths.insert(options.index_paths.end(), index_roots.begin(),
                             index_roots.end());
  options.index_cache = index_cache;

  std::string callgraph;
  mlint::LintResult result = mlint::LintProgram(
      options, callgraph_path.empty() ? nullptr : &callgraph);

  if (!callgraph_path.empty() && !WriteOut(callgraph_path, callgraph)) {
    std::cerr << "mlint: cannot write callgraph " << callgraph_path << "\n";
    return 2;
  }

  if (!no_baseline) {
    if (baseline_path.empty() &&
        std::filesystem::exists(".mlint-baseline")) {
      baseline_path = ".mlint-baseline";
    }
    if (!baseline_path.empty()) {
      std::ifstream in(baseline_path);
      if (!in) {
        std::cerr << "mlint: cannot read baseline " << baseline_path << "\n";
        return 2;
      }
      std::stringstream ss;
      ss << in.rdbuf();
      int stale = mlint::ApplyBaseline(ss.str(), &result);
      if (stale > 0) {
        std::cerr << "mlint: " << stale << " stale baseline entr"
                  << (stale == 1 ? "y" : "ies") << " in " << baseline_path
                  << " matched nothing — delete them\n";
      }
    }
  }

  if (fix) {
    std::set<std::string> files;
    for (const auto& f : result.findings) {
      if (!f.baselined) files.insert(f.path);
    }
    int total_edits = 0;
    for (const auto& path : files) {
      std::ifstream in(path);
      if (!in) continue;
      std::stringstream ss;
      ss << in.rdbuf();
      const std::string before = ss.str();
      int edits = 0;
      const std::string after =
          mlint::FixContent(path, before, result.findings, &edits);
      if (edits == 0) continue;
      total_edits += edits;
      if (dry_run) {
        std::cout << mlint::FixDiff(path, before, after);
      } else {
        std::ofstream out(path, std::ios::trunc);
        if (!out) {
          std::cerr << "mlint: cannot write " << path << "\n";
          return 2;
        }
        out << after;
      }
    }
    std::cerr << "mlint --fix: " << total_edits << " mechanical edit"
              << (total_edits == 1 ? "" : "s")
              << (dry_run ? " (dry run, nothing written)" : " applied")
              << "; semantic rules are never auto-fixed\n";
    // Findings were computed pre-fix; rerun for the authoritative state.
    if (!dry_run) return 0;
  }

  if (!json_path.empty() && !WriteOut(json_path, mlint::JsonReport(result))) {
    std::cerr << "mlint: cannot write json " << json_path << "\n";
    return 2;
  }

  if (!why_spec.empty()) {
    std::cout << mlint::WhyReport(result, why_spec);
    return result.NewCount() > 0 ? 1 : 0;
  }

  if (annotate) {
    std::cout << mlint::GithubAnnotations(result);
    std::cerr << "mlint: " << result.NewCount() << " new finding"
              << (result.NewCount() == 1 ? "" : "s") << " across "
              << result.files_scanned << " files\n";
  } else {
    std::cout << mlint::TextReport(result);
  }
  return result.NewCount() > 0 ? 1 : 0;
}
