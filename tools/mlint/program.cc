#include <algorithm>
#include <deque>
#include <filesystem>
#include <fstream>
#include <functional>
#include <map>
#include <optional>
#include <sstream>

#include "internal.h"
#include "mlint.h"

/// \file program.cc
/// Pass 1 (per-file fact extraction + the content-keyed index cache) and
/// pass 2 (call-graph linking, parallel-region reachability, transitive
/// findings) of the whole-program analyzer, plus the driving entry points
/// LintProgram / LintSources / LintContent / LintPaths.

namespace mlint {

namespace {

using namespace internal;

// ---------------------------------------------------------------------------
// Pass 1: fact extraction
// ---------------------------------------------------------------------------

/// Member-call resolution is receiver-blind, so a method mutating its own
/// members would be flagged even when every call site passes a chunk-local
/// receiver. Rules whose hazard is "mutating reachable shared state"
/// (naive-reduction, rng-in-parallel) are therefore only recorded for free
/// functions and lambda-locals, where a non-local root really is shared.
bool RuleNeedsSharedRoot(const std::string& rule) {
  return rule == "naive-reduction" || rule == "rng-in-parallel";
}

/// Per-directory hazard exemptions, mirroring the lexical rules' path
/// carve-outs. src/exec/ implements parallelism itself: nothing inside it
/// is a finding when reached from a parallel region (and its calls are not
/// followed — the pool's dispatch plumbing is not a user call chain).
/// src/sim/ implements the ledger protocol (ScopedLedger redirects its
/// mutations); src/stats/ implements the RNG.
bool HazardExempt(const std::string& path, const std::string& rule) {
  if (PathContains(path, "src/exec/")) return true;
  // src/server/ is the host-side experiment server: sockets, session
  // threads, and admission condvars are its job, not a hazard leaking into
  // engine code. Scoped to raw-thread only — its arithmetic still follows
  // every other rule.
  if (PathContains(path, "src/server/")) return rule == "raw-thread";
  if (PathContains(path, "src/sim/")) {
    return rule == "charge-in-parallel" || rule == "naive-reduction" ||
           rule == "ledger-order";
  }
  if (PathContains(path, "src/stats/")) {
    return rule == "rng-in-parallel" || rule == "naive-reduction" ||
           rule == "nondet-random";
  }
  return false;
}

/// Collects the call sites in token range [from, to): `name(` not preceded
/// by member/scope punctuation into std, not a statement keyword.
std::vector<CallSite> CollectCalls(const Tokens& t, std::size_t from,
                                   std::size_t to) {
  std::vector<CallSite> calls;
  for (std::size_t i = from; i < to && i < t.size(); ++i) {
    if (t[i].kind != Token::Kind::kIdent || !IsPunct(t, i + 1, "(")) continue;
    if (IsCallKeyword(t[i].text)) continue;
    bool member =
        i > 0 && (IsPunct(t, i - 1, ".") || IsPunct(t, i - 1, "->"));
    if (i > 0 && IsPunct(t, i - 1, "::")) {
      // Qualified call: walk the qualifier chain back to its root and skip
      // the std:: namespace (std::sort must not match a repo fn `sort`).
      std::size_t j = i;
      while (j >= 2 && IsPunct(t, j - 1, "::") && IsAnyIdent(t, j - 2)) {
        j -= 2;
      }
      if (IsAnyIdent(t, j) && t[j].text == "std") continue;
    }
    CallSite cs;
    cs.name = t[i].text;
    cs.member = member;
    cs.line = t[i].line;
    calls.push_back(std::move(cs));
  }
  return calls;
}

bool RangeHasIdent(const Tokens& t, std::size_t from, std::size_t to,
                   const char* name) {
  for (std::size_t i = from; i < to && i < t.size(); ++i) {
    if (t[i].kind == Token::Kind::kIdent && t[i].text == name) return true;
  }
  return false;
}

/// Records the hazards of one body range onto `fn`-style facts, applying
/// inline allowances (already resolved to (rule, line) pairs) and the
/// path/kind gating above. `shared_root_ok` is false for methods.
void CollectHazards(const SourceFile& f, std::size_t begin, std::size_t end,
                    std::size_t params_begin, std::size_t params_end,
                    bool shared_root_ok,
                    const std::set<std::string>& rng_vars,
                    const std::set<std::pair<std::string, int>>& allowed,
                    std::vector<HazardSite>* out) {
  const Tokens& t = f.tokens;
  auto add = [&](const std::string& rule, int line, std::string token) {
    if (HazardExempt(f.path, rule)) return;
    if (!shared_root_ok && RuleNeedsSharedRoot(rule)) return;
    if (allowed.count({rule, line}) != 0) return;
    for (const auto& h : *out) {
      if (h.rule == rule && h.line == line) return;
    }
    HazardSite h;
    h.rule = rule;
    h.line = line;
    h.token = std::move(token);
    h.snippet = f.Snippet(line);
    out->push_back(std::move(h));
  };

  for (const auto& [line, tok] : ScanEntropy(t, begin, end)) {
    if (PathContains(f.path, "src/stats/")) break;
    add("nondet-random", line, tok);
  }
  for (const auto& [line, tok] : ScanCharges(t, begin, end)) {
    add("charge-in-parallel", line, tok);
  }
  for (const auto& [line, tok] : ScanLedgerOrder(t, begin, end)) {
    add("ledger-order", line, tok);
  }
  for (const auto& [line, tok] : ScanRawThread(t, begin, end)) {
    if (PathContains(f.path, "src/exec/") ||
        PathContains(f.path, "src/server/")) {
      break;
    }
    add("raw-thread", line, tok);
  }
  for (const auto& [line, root] :
       ScanNonlocalPlusEq(t, begin, end, params_begin, params_end)) {
    add("naive-reduction", line, root);
  }
  for (const auto& [line, name] :
       ScanRngUses(t, begin, end, params_begin, params_end, rng_vars)) {
    add("rng-in-parallel", line, name);
  }
  for (const auto& [line, var] : UnorderedIterSites(t)) {
    // File-level scan; keep only sites inside this body.
    bool inside = false;
    for (std::size_t i = begin; i < end && i < t.size(); ++i) {
      if (t[i].line == line) {
        inside = true;
        break;
      }
    }
    if (inside) add("unordered-iter", line, var);
  }
}

std::vector<std::string> ParamIdents(const Tokens& t, std::size_t from,
                                     std::size_t to) {
  std::vector<std::string> out;
  for (std::size_t i = from; i < to && i < t.size(); ++i) {
    if (t[i].kind == Token::Kind::kIdent) out.push_back(t[i].text);
  }
  return out;
}

}  // namespace

std::uint64_t ContentHash(const std::string& content) {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a 64
  for (unsigned char c : content) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

FileFacts ExtractFacts(const SourceFile& f) {
  FileFacts facts;
  facts.path = f.path;
  const Tokens& t = f.tokens;

  std::set<std::string> known_rules;
  for (const auto& r : Rules()) known_rules.insert(r.name);
  const std::set<std::pair<std::string, int>> allowed =
      ActiveAllowances(f, known_rules, nullptr);
  const std::set<std::string> rng_vars = CollectRngVars(t);

  // src/exec/ implements the parallel layer: its internals are neither
  // hazards nor user call chains (following pool.Run edges would drag every
  // same-named method in the repo into "parallel-reachable").
  const bool exec_internal = PathContains(f.path, "src/exec/");

  // Includes (quoted operands only; system headers never carry rules).
  for (const auto& tok : t) {
    if (tok.kind != Token::Kind::kPreproc) continue;
    if (tok.text.rfind("#include", 0) != 0) continue;
    std::size_t q1 = tok.text.find('"');
    if (q1 == std::string::npos) continue;
    std::size_t q2 = tok.text.find('"', q1 + 1);
    if (q2 == std::string::npos) continue;
    facts.includes.push_back(tok.text.substr(q1 + 1, q2 - q1 - 1));
  }

  // Function and class definitions: one linear scan with a scope stack;
  // function bodies are skipped wholesale so their statements can never be
  // mistaken for nested definitions.
  struct Frame {
    std::size_t close;
    bool is_class;
  };
  std::vector<Frame> stack;
  auto in_class = [&]() {
    for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
      if (it->is_class) return true;
    }
    return false;
  };

  for (std::size_t i = 0; i < t.size(); ++i) {
    while (!stack.empty() && i >= stack.back().close) stack.pop_back();
    if (t[i].kind == Token::Kind::kPreproc) continue;
    if (t[i].kind != Token::Kind::kIdent) continue;
    const std::string& word = t[i].text;

    if (word == "namespace") {
      std::size_t j = i + 1;
      while (IsAnyIdent(t, j) || IsPunct(t, j, "::")) ++j;
      if (IsPunct(t, j, "{")) {
        stack.push_back(Frame{MatchBrace(t, j), false});
        i = j;  // scan inside
      }
      continue;
    }
    if (word == "enum") {
      // `enum [class|struct] Name [: type] { ... };` — skip the body so
      // enumerator initializers are not scanned as definitions.
      std::size_t j = i + 1;
      while (j < t.size() && !IsPunct(t, j, "{") && !IsPunct(t, j, ";")) ++j;
      if (IsPunct(t, j, "{")) i = MatchBrace(t, j);
      continue;
    }
    if (word == "class" || word == "struct") {
      std::size_t j = i + 1;
      std::string name;
      if (IsAnyIdent(t, j)) {
        name = t[j].text;
        ++j;
      }
      if (IsPunct(t, j, "<")) {  // explicit specialization name
        j = SkipAngles(t, j, t.size());
        if (j == t.size()) continue;
      }
      if (IsIdent(t, j, "final")) ++j;
      bool is_def = false;
      if (IsPunct(t, j, "{")) {
        is_def = true;
      } else if (IsPunct(t, j, ":")) {
        // Base clause: idents/commas/angles up to '{'. A '(' or ';' means
        // this was not a class-head after all (e.g. `template <class T>`).
        for (++j; j < t.size(); ++j) {
          if (IsPunct(t, j, "{")) {
            is_def = true;
            break;
          }
          if (IsPunct(t, j, "(") || IsPunct(t, j, ";")) break;
          if (IsPunct(t, j, "<")) {
            j = SkipAngles(t, j, t.size());
            if (j == t.size()) break;
            --j;
          }
        }
      }
      if (is_def) {
        if (!name.empty()) facts.classes.push_back(name);
        stack.push_back(Frame{MatchBrace(t, j), true});
        i = j;  // scan inside for methods
      }
      continue;
    }

    // Function definition candidate: `name (` with a plausible declarator
    // tail `) [quals] [-> type] [: ctor-inits] {`.
    if (!IsPunct(t, i + 1, "(")) continue;
    if (IsCallKeyword(word) || IsNonTypeKeyword(word)) continue;
    if (i > 0 && (IsPunct(t, i - 1, ".") || IsPunct(t, i - 1, "->") ||
                  IsPunct(t, i - 1, "~"))) {
      continue;  // member call or destructor
    }
    std::size_t close = MatchParen(t, i + 1);
    if (close >= t.size()) continue;
    // Scan from ')' to '{' (definition), ';'/'=' (declaration / deleted),
    // anything structural (another unbalanced ')') aborts.
    std::size_t j = close + 1;
    bool is_def = false;
    for (int guard = 0; j < t.size() && guard < 4096; ++guard) {
      if (IsPunct(t, j, "{")) {
        is_def = true;
        break;
      }
      if (IsPunct(t, j, ";") || IsPunct(t, j, "=") || IsPunct(t, j, ")") ||
          IsPunct(t, j, ",") || IsPunct(t, j, "}")) {
        break;
      }
      if (IsPunct(t, j, "(")) {
        j = MatchParen(t, j) + 1;  // noexcept(...), ctor-init args
        continue;
      }
      if (IsPunct(t, j, "<")) {
        std::size_t skipped = SkipAngles(t, j, t.size());
        if (skipped == t.size()) break;
        j = skipped;
        continue;
      }
      ++j;
    }
    if (!is_def) continue;
    std::size_t body_open = j;
    std::size_t body_close = MatchBrace(t, body_open);

    FunctionFacts fn;
    fn.name = word;
    fn.line = t[i].line;
    fn.kind = in_class() ? FunctionFacts::Kind::kMethod
                         : FunctionFacts::Kind::kFree;
    // Out-of-line qualifier: `A::B::name(`.
    {
      std::size_t q = i;
      std::vector<std::string> quals;
      while (q >= 2 && IsPunct(t, q - 1, "::") && IsAnyIdent(t, q - 2)) {
        quals.push_back(t[q - 2].text);
        q -= 2;
      }
      for (auto it = quals.rbegin(); it != quals.rend(); ++it) {
        fn.qualifier += (fn.qualifier.empty() ? "" : "::") + *it;
      }
    }
    if (!exec_internal) {
      fn.params = ParamIdents(t, i + 2, close);
      fn.binds_scoped_ledger =
          RangeHasIdent(t, body_open + 1, body_close, "ScopedLedger");
      fn.calls = CollectCalls(t, body_open + 1, body_close);
      // Out-of-line `A::B::name` definitions are methods too: their
      // receiver is unknowable at a call site, so the shared-root rules
      // must not fire on their member mutations.
      bool method_like = fn.kind == FunctionFacts::Kind::kMethod ||
                         !fn.qualifier.empty();
      CollectHazards(f, body_open + 1, body_close, i + 2, close,
                     /*shared_root_ok=*/!method_like, rng_vars, allowed,
                     &fn.hazards);
    }
    facts.functions.push_back(std::move(fn));
    i = body_close;  // never scan a body for nested definitions
  }

  // Lambda-to-local bindings: `auto name = [...](...) {...};` anywhere.
  // File-scoped and resolved in preference to (exclusively shadowing) a
  // same-named free function.
  for (const LambdaBody& b : FindLambdas(t, 0, t.size())) {
    if (b.intro < 2 || !IsPunct(t, b.intro - 1, "=")) continue;
    if (!IsAnyIdent(t, b.intro - 2)) continue;
    std::size_t name_idx = b.intro - 2;
    bool auto_decl =
        (name_idx >= 1 && IsIdent(t, name_idx - 1, "auto")) ||
        (name_idx >= 2 && IsIdent(t, name_idx - 2, "auto"));  // const auto
    if (!auto_decl) continue;
    FunctionFacts fn;
    fn.kind = FunctionFacts::Kind::kLambdaLocal;
    fn.name = t[name_idx].text;
    fn.line = t[name_idx].line;
    if (!exec_internal) {
      fn.params = ParamIdents(t, b.params_begin, b.params_end);
      fn.binds_scoped_ledger = RangeHasIdent(t, b.begin, b.end, "ScopedLedger");
      fn.calls = CollectCalls(t, b.begin, b.end);
      CollectHazards(f, b.begin, b.end, b.params_begin, b.params_end,
                     /*shared_root_ok=*/true, rng_vars, allowed, &fn.hazards);
    }
    facts.functions.push_back(std::move(fn));
  }

  // Parallel-region roots.
  for (const ParallelRegion& region : ParallelRegions(t)) {
    RootFacts root;
    root.desc = region.desc;
    root.line = region.line;
    root.binds_scoped_ledger =
        RangeHasIdent(t, region.body.begin, region.body.end, "ScopedLedger");
    root.calls = CollectCalls(t, region.body.begin, region.body.end);
    facts.roots.push_back(std::move(root));
  }
  return facts;
}

// ---------------------------------------------------------------------------
// Index cache (text; content-hash keyed, so staleness costs time not truth)
// ---------------------------------------------------------------------------

namespace {
constexpr const char* kCacheHeader = "mlint-index 1";
}

std::string SerializeFacts(const std::vector<FileFacts>& facts) {
  std::stringstream out;
  out << kCacheHeader << "\n";
  for (const FileFacts& f : facts) {
    out << "F " << f.content_hash << " " << f.path << "\n";
    for (const auto& c : f.classes) out << "C " << c << "\n";
    for (const auto& inc : f.includes) out << "I " << inc << "\n";
    auto emit_calls = [&](const std::vector<CallSite>& calls) {
      for (const auto& cs : calls) {
        out << "S " << (cs.member ? 1 : 0) << " " << cs.line << " "
            << cs.name << "\n";
      }
    };
    auto emit_hazards = [&](const std::vector<HazardSite>& hazards) {
      for (const auto& h : hazards) {
        out << "H " << h.rule << " " << h.line << " " << h.token << " "
            << h.snippet << "\n";
      }
    };
    for (const auto& fn : f.functions) {
      out << "D " << static_cast<int>(fn.kind) << " " << fn.line << " "
          << (fn.binds_scoped_ledger ? 1 : 0) << " " << fn.name << " "
          << (fn.qualifier.empty() ? "-" : fn.qualifier) << "\n";
      for (const auto& p : fn.params) out << "P " << p << "\n";
      emit_calls(fn.calls);
      emit_hazards(fn.hazards);
    }
    for (const auto& r : f.roots) {
      out << "R " << r.line << " " << (r.binds_scoped_ledger ? 1 : 0) << " "
          << r.desc << "\n";
      emit_calls(r.calls);
      emit_hazards({});
    }
  }
  return out.str();
}

std::map<std::string, FileFacts> ParseFactsCache(const std::string& text) {
  std::map<std::string, FileFacts> out;
  std::stringstream ss(text);
  std::string line;
  if (!std::getline(ss, line) || TrimWs(line) != kCacheHeader) return out;
  FileFacts* cur = nullptr;
  FunctionFacts* cur_fn = nullptr;
  RootFacts* cur_root = nullptr;
  while (std::getline(ss, line)) {
    if (line.size() < 2) continue;
    char tag = line[0];
    std::stringstream ls(line.substr(2));
    switch (tag) {
      case 'F': {
        FileFacts f;
        ls >> f.content_hash;
        std::getline(ls, f.path);
        f.path = TrimWs(f.path);
        if (f.path.empty()) return {};
        cur = &(out[f.path] = std::move(f));
        cur_fn = nullptr;
        cur_root = nullptr;
        break;
      }
      case 'C':
        if (cur) cur->classes.push_back(TrimWs(line.substr(2)));
        break;
      case 'I':
        if (cur) cur->includes.push_back(TrimWs(line.substr(2)));
        break;
      case 'D': {
        if (!cur) break;
        FunctionFacts fn;
        int kind = 0, ledger = 0;
        ls >> kind >> fn.line >> ledger >> fn.name >> fn.qualifier;
        fn.kind = static_cast<FunctionFacts::Kind>(kind);
        fn.binds_scoped_ledger = ledger != 0;
        if (fn.qualifier == "-") fn.qualifier.clear();
        cur->functions.push_back(std::move(fn));
        cur_fn = &cur->functions.back();
        cur_root = nullptr;
        break;
      }
      case 'R': {
        if (!cur) break;
        RootFacts r;
        int ledger = 0;
        ls >> r.line >> ledger;
        r.binds_scoped_ledger = ledger != 0;
        std::getline(ls, r.desc);
        r.desc = TrimWs(r.desc);
        cur->roots.push_back(std::move(r));
        cur_root = &cur->roots.back();
        cur_fn = nullptr;
        break;
      }
      case 'P':
        if (cur_fn) cur_fn->params.push_back(TrimWs(line.substr(2)));
        break;
      case 'S': {
        CallSite cs;
        int member = 0;
        ls >> member >> cs.line >> cs.name;
        cs.member = member != 0;
        if (cur_fn) cur_fn->calls.push_back(std::move(cs));
        else if (cur_root) cur_root->calls.push_back(std::move(cs));
        break;
      }
      case 'H': {
        if (!cur_fn) break;
        HazardSite h;
        ls >> h.rule >> h.line >> h.token;
        std::getline(ls, h.snippet);
        h.snippet = TrimWs(h.snippet);
        cur_fn->hazards.push_back(std::move(h));
        break;
      }
      default:
        break;
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Pass 2: linking + reachability
// ---------------------------------------------------------------------------

namespace {

/// Member calls resolve by bare name across every class, so hub names
/// (Run, Add, ...) could drag unrelated methods into "parallel-reachable".
/// A member call with more candidate methods than this is treated as
/// unresolvable — the receiver-type information a token stream cannot
/// carry. Plain calls are not capped: free-function names are unique in
/// practice, and the miss would be silent.
constexpr std::size_t kMemberFanoutCap = 4;

struct FnRef {
  const FileFacts* file;
  const FunctionFacts* fn;
};

std::string TransitiveMessage(const HazardSite& h, const std::string& fn) {
  const std::string where = "'" + fn + "'";
  if (h.rule == "nondet-random") {
    return "'" + h.token + "' in " + where +
           " runs inside a parallel region — entropy must be a pure "
           "function of the experiment seed; thread a per-chunk stats::Rng "
           "substream through instead";
  }
  if (h.rule == "charge-in-parallel") {
    return "simulator charge '" + h.token + "' in " + where +
           " is reachable from a parallel region with no ScopedLedger on "
           "the path — record to the chunk's ChargeLedger and commit in "
           "chunk-index order";
  }
  if (h.rule == "naive-reduction") {
    return "'" + h.token + " +=' in " + where +
           " accumulates into shared state from inside a parallel region — "
           "fold per-chunk partials in index order instead";
  }
  if (h.rule == "raw-thread") {
    return "raw threading '" + h.token + "' in " + where +
           " is reachable from a parallel region — only src/exec/ and "
           "src/server/ may touch std threading primitives";
  }
  if (h.rule == "rng-in-parallel") {
    return "shared RNG '" + h.token + "' drawn in " + where +
           " from inside a parallel region — derive a per-chunk substream "
           "with Split() at the chunk boundary";
  }
  if (h.rule == "ledger-order") {
    return "'" + h.token + "' in " + where +
           " is reachable from a parallel region — phase/ledger "
           "finalization must run caller-side, after the loop";
  }
  if (h.rule == "unordered-iter") {
    return "iterating unordered container '" + h.token + "' in " + where +
           " from inside a parallel region — bucket order leaks scheduling "
           "into results";
  }
  return "'" + h.token + "' in " + where + " reachable from a parallel region";
}

void EmitTransitive(std::vector<Finding>* findings, const FileFacts& file,
                    const HazardSite& h, const std::string& fn_name,
                    std::vector<std::string> chain) {
  chain.push_back(file.path + ":" + std::to_string(h.line) + ": hazard `" +
                  h.snippet + "`");
  for (auto& existing : *findings) {
    if (existing.rule == h.rule && existing.path == file.path &&
        existing.line == h.line) {
      if (existing.chain.empty()) existing.chain = std::move(chain);
      return;
    }
  }
  Finding fd;
  fd.rule = h.rule;
  fd.path = file.path;
  fd.line = h.line;
  fd.message = TransitiveMessage(h, fn_name);
  fd.snippet = h.snippet;
  fd.chain = std::move(chain);
  findings->push_back(std::move(fd));
}

struct Linker {
  std::set<std::string> classes;
  std::map<std::string, std::vector<FnRef>> by_name;  // non-lambda defs
  std::map<std::pair<std::string, std::string>, FnRef> lambda_locals;
  std::map<const FunctionFacts*, bool> effective_method;

  explicit Linker(const std::map<std::string, FileFacts>& facts) {
    for (const auto& [path, f] : facts) {
      for (const auto& c : f.classes) classes.insert(c);
    }
    for (const auto& [path, f] : facts) {
      for (const auto& fn : f.functions) {
        FnRef ref{&f, &fn};
        if (fn.kind == FunctionFacts::Kind::kLambdaLocal) {
          lambda_locals[{path, fn.name}] = ref;
          continue;
        }
        bool method = fn.kind == FunctionFacts::Kind::kMethod;
        if (!method && !fn.qualifier.empty()) {
          // Out-of-line A::B::name — a method when the last qualifier
          // segment names a known class.
          std::size_t sep = fn.qualifier.rfind("::");
          std::string last = sep == std::string::npos
                                 ? fn.qualifier
                                 : fn.qualifier.substr(sep + 2);
          method = classes.count(last) != 0;
        }
        effective_method[&fn] = method;
        by_name[fn.name].push_back(ref);
      }
    }
  }

  std::vector<FnRef> Resolve(const std::string& caller_path,
                             const CallSite& cs) const {
    if (!cs.member) {
      auto it = lambda_locals.find({caller_path, cs.name});
      if (it != lambda_locals.end()) return {it->second};
    }
    auto it = by_name.find(cs.name);
    if (it == by_name.end()) return {};
    if (!cs.member) return it->second;
    std::vector<FnRef> methods;
    for (const FnRef& ref : it->second) {
      if (effective_method.at(ref.fn)) methods.push_back(ref);
    }
    if (methods.size() > kMemberFanoutCap) return {};
    return methods;
  }
};

/// BFS from every parallel-region root; emits transitive findings for
/// hazards inside reachable functions whose file is in the lint set.
/// `ledgered` tracks whether a ScopedLedger is bound somewhere on the
/// path (root or intermediate) — charge-in-parallel is gated on it.
void TransitivePass(const std::map<std::string, FileFacts>& facts,
                    const std::set<std::string>& lint_set,
                    std::vector<Finding>* findings,
                    std::map<const FunctionFacts*, bool>* reachable_out) {
  Linker linker(facts);

  struct Item {
    FnRef ref;
    bool ledgered;
    std::vector<std::string> chain;
  };
  std::deque<Item> queue;
  // visited bit 1: visited with ledgered=true; bit 2: ledgered=false.
  std::map<const FunctionFacts*, int> visited;

  for (const auto& [path, f] : facts) {
    for (const auto& root : f.roots) {
      std::vector<std::string> base = {path + ":" + std::to_string(root.line) +
                                       ": parallel region (" + root.desc +
                                       ")"};
      for (const auto& cs : root.calls) {
        for (const FnRef& ref : linker.Resolve(path, cs)) {
          auto chain = base;
          chain.push_back(path + ":" + std::to_string(cs.line) + ": calls " +
                          cs.name + "(...)");
          queue.push_back(Item{ref, root.binds_scoped_ledger,
                               std::move(chain)});
        }
      }
    }
  }

  while (!queue.empty()) {
    Item item = std::move(queue.front());
    queue.pop_front();
    const FunctionFacts* fn = item.ref.fn;
    const bool ledgered = item.ledgered || fn->binds_scoped_ledger;
    const int bit = ledgered ? 1 : 2;
    int& mask = visited[fn];
    if ((mask & bit) != 0) continue;
    mask |= bit;
    if (reachable_out != nullptr) (*reachable_out)[fn] = true;

    if (lint_set.count(item.ref.file->path) != 0) {
      for (const auto& h : fn->hazards) {
        if (h.rule == "charge-in-parallel" && ledgered) continue;
        EmitTransitive(findings, *item.ref.file, h, fn->name, item.chain);
      }
    }
    for (const auto& cs : fn->calls) {
      for (const FnRef& ref : linker.Resolve(item.ref.file->path, cs)) {
        auto chain = item.chain;
        chain.push_back(item.ref.file->path + ":" +
                        std::to_string(cs.line) + ": calls " + cs.name +
                        "(...)");
        queue.push_back(Item{ref, ledgered, std::move(chain)});
      }
    }
  }
}

std::string CallgraphJson(const std::map<std::string, FileFacts>& facts,
                          const std::map<const FunctionFacts*, bool>& reach) {
  using internal::JsonEscape;
  std::stringstream out;
  out << "{\n  \"mlint_callgraph\": 1,\n  \"roots\": [";
  bool first = true;
  for (const auto& [path, f] : facts) {
    for (const auto& r : f.roots) {
      out << (first ? "\n" : ",\n") << "    {\"file\": \"" << JsonEscape(path)
          << "\", \"line\": " << r.line << ", \"desc\": \""
          << JsonEscape(r.desc) << "\", \"scoped_ledger\": "
          << (r.binds_scoped_ledger ? "true" : "false") << "}";
      first = false;
    }
  }
  out << (first ? "" : "\n  ") << "],\n  \"functions\": [";
  first = true;
  static const char* kKinds[] = {"free", "method", "lambda-local"};
  for (const auto& [path, f] : facts) {
    for (const auto& fn : f.functions) {
      out << (first ? "\n" : ",\n") << "    {\"name\": \""
          << JsonEscape(fn.name) << "\", \"qualifier\": \""
          << JsonEscape(fn.qualifier) << "\", \"kind\": \""
          << kKinds[static_cast<int>(fn.kind)] << "\", \"file\": \""
          << JsonEscape(path) << "\", \"line\": " << fn.line
          << ", \"parallel_reachable\": "
          << (reach.count(&fn) != 0 ? "true" : "false") << ", \"calls\": [";
      for (std::size_t i = 0; i < fn.calls.size(); ++i) {
        out << (i == 0 ? "" : ", ") << "{\"name\": \""
            << JsonEscape(fn.calls[i].name) << "\", \"member\": "
            << (fn.calls[i].member ? "true" : "false") << ", \"line\": "
            << fn.calls[i].line << "}";
      }
      out << "]}";
      first = false;
    }
  }
  out << (first ? "" : "\n  ") << "]\n}\n";
  return out.str();
}

// ---------------------------------------------------------------------------
// Driving
// ---------------------------------------------------------------------------

bool LintableFile(const std::filesystem::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".cc";
}

bool SkippableDir(const std::filesystem::path& p) {
  const std::string name = p.filename().string();
  return name.rfind("build", 0) == 0 || (!name.empty() && name[0] == '.');
}

std::vector<std::string> EnumerateFiles(
    const std::vector<std::string>& paths) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  for (const auto& p : paths) {
    std::error_code ec;
    if (fs::is_directory(p, ec)) {
      fs::recursive_directory_iterator it(p, ec), end;
      for (; it != end; it.increment(ec)) {
        if (it->is_directory() && SkippableDir(it->path())) {
          it.disable_recursion_pending();
          continue;
        }
        if (it->is_regular_file() && LintableFile(it->path())) {
          files.push_back(it->path().generic_string());
        }
      }
    } else if (fs::exists(p, ec)) {
      files.push_back(p);
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  return files;
}

/// The shared core: `contents` maps every indexed path to its source,
/// `lint` is the subset to report on. `resolver` turns (includer, operand)
/// into a loadable path or "".
LintResult RunAnalysis(
    std::map<std::string, std::string> contents, std::set<std::string> lint,
    bool expand_includes,
    const std::function<std::string(const std::string&, const std::string&)>&
        resolver,
    const std::function<bool(const std::string&, std::string*)>& loader,
    const std::map<std::string, FileFacts>& cache,
    std::string* cache_out, std::string* callgraph_json) {
  LintResult r;
  std::map<std::string, FileFacts> facts;
  std::map<std::string, SourceFile> parsed;

  auto ensure_facts = [&](const std::string& path) -> const FileFacts& {
    auto it = facts.find(path);
    if (it != facts.end()) return it->second;
    const std::string& content = contents.at(path);
    const std::uint64_t hash = ContentHash(content);
    auto cached = cache.find(path);
    if (cached != cache.end() && cached->second.content_hash == hash &&
        lint.count(path) == 0) {
      return facts.emplace(path, cached->second).first->second;
    }
    SourceFile f = Parse(path, content);
    FileFacts ff = ExtractFacts(f);
    ff.content_hash = hash;
    parsed.emplace(path, std::move(f));
    return facts.emplace(path, std::move(ff)).first->second;
  };

  for (const auto& [path, content] : contents) ensure_facts(path);

  // Include-graph expansion of the lint set: a header reachable from a
  // linted file is linted too, even when nothing compiles it directly.
  if (expand_includes) {
    std::deque<std::string> work(lint.begin(), lint.end());
    while (!work.empty()) {
      std::string path = std::move(work.front());
      work.pop_front();
      // ensure_facts requires contents; guaranteed for worklist entries.
      std::vector<std::string> includes = ensure_facts(path).includes;
      for (const auto& inc : includes) {
        std::string resolved = resolver(path, inc);
        if (resolved.empty() || lint.count(resolved) != 0) continue;
        if (contents.count(resolved) == 0) {
          std::string content;
          if (!loader(resolved, &content)) continue;
          contents.emplace(resolved, std::move(content));
        }
        lint.insert(resolved);
        work.push_back(resolved);
      }
    }
  }

  // Lexical pass over the lint set.
  for (const auto& path : lint) {
    auto it = parsed.find(path);
    if (it == parsed.end()) {
      it = parsed.emplace(path, Parse(path, contents.at(path))).first;
    }
    CheckFile(it->second, &r.findings);
  }
  r.files_scanned = static_cast<int>(lint.size());

  // Transitive pass over the whole index.
  std::map<const FunctionFacts*, bool> reachable;
  TransitivePass(facts, lint, &r.findings,
                 callgraph_json != nullptr ? &reachable : nullptr);
  if (callgraph_json != nullptr) {
    *callgraph_json = CallgraphJson(facts, reachable);
  }

  std::stable_sort(r.findings.begin(), r.findings.end(),
                   [](const Finding& a, const Finding& b) {
                     if (a.path != b.path) return a.path < b.path;
                     return a.line < b.line;
                   });

  if (cache_out != nullptr) {
    std::vector<FileFacts> all;
    all.reserve(facts.size());
    for (auto& [path, f] : facts) all.push_back(std::move(f));
    *cache_out = SerializeFacts(all);
  }
  return r;
}

std::string DirName(const std::string& path) {
  std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? std::string() : path.substr(0, slash);
}

std::string NormalizePath(const std::string& p) {
  return std::filesystem::path(p).lexically_normal().generic_string();
}

}  // namespace

LintResult LintProgram(const LintOptions& options,
                       std::string* callgraph_json) {
  namespace fs = std::filesystem;
  auto loader = [](const std::string& path, std::string* out) {
    std::ifstream in(path);
    if (!in) return false;
    std::stringstream ss;
    ss << in.rdbuf();
    *out = ss.str();
    return true;
  };

  std::map<std::string, std::string> contents;
  auto load_all = [&](const std::vector<std::string>& paths,
                      std::set<std::string>* collect) {
    for (const auto& path : EnumerateFiles(paths)) {
      std::string norm = NormalizePath(path);
      if (contents.count(norm) == 0) {
        std::string content;
        if (!loader(norm, &content)) continue;
        contents.emplace(norm, std::move(content));
      }
      if (collect != nullptr) collect->insert(norm);
    }
  };

  std::set<std::string> lint;
  load_all(options.index_paths, nullptr);
  load_all(options.lint_paths.empty() ? options.index_paths
                                      : options.lint_paths,
           &lint);

  auto resolver = [&](const std::string& includer,
                      const std::string& operand) -> std::string {
    std::string dir = DirName(includer);
    const std::string candidates[] = {
        dir.empty() ? operand : dir + "/" + operand,
        "src/" + operand,
        operand,
    };
    for (const auto& c : candidates) {
      std::string norm = NormalizePath(c);
      if (PathContains(norm, "build")) continue;
      std::error_code ec;
      if (contents.count(norm) != 0 || fs::is_regular_file(norm, ec)) {
        return norm;
      }
    }
    return "";
  };

  std::map<std::string, FileFacts> cache;
  if (!options.index_cache.empty()) {
    std::string text;
    if (loader(options.index_cache, &text)) cache = ParseFactsCache(text);
  }
  std::string cache_out;
  LintResult r = RunAnalysis(
      std::move(contents), std::move(lint), options.expand_includes, resolver,
      loader, cache, options.index_cache.empty() ? nullptr : &cache_out,
      callgraph_json);
  if (!options.index_cache.empty()) {
    std::ofstream out(options.index_cache, std::ios::trunc);
    if (out) out << cache_out;
  }
  return r;
}

LintResult LintSources(
    const std::vector<std::pair<std::string, std::string>>& sources,
    std::string* callgraph_json) {
  std::map<std::string, std::string> contents;
  std::set<std::string> lint;
  for (const auto& [path, content] : sources) {
    contents[path] = content;
    lint.insert(path);
  }
  auto resolver = [&contents](const std::string& includer,
                              const std::string& operand) -> std::string {
    std::string dir = DirName(includer);
    const std::string candidates[] = {
        dir.empty() ? operand : dir + "/" + operand,
        "src/" + operand,
        operand,
    };
    for (const auto& c : candidates) {
      if (contents.count(c) != 0) return c;
    }
    return "";
  };
  auto loader = [](const std::string&, std::string*) { return false; };
  return RunAnalysis(std::move(contents), std::move(lint),
                     /*expand_includes=*/true, resolver, loader, {}, nullptr,
                     callgraph_json);
}

LintResult LintContent(const std::string& path, const std::string& content) {
  return LintSources({{path, content}});
}

LintResult LintPaths(const std::vector<std::string>& paths) {
  LintOptions options;
  options.index_paths = paths;
  return LintProgram(options);
}

}  // namespace mlint
