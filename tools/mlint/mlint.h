#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

/// \file mlint.h
/// mlint — the repo-specific determinism & accounting linter.
///
/// Every number this repository reports rests on invariants the compiler
/// cannot check: simulated charges, RNG streams and peak-RAM ledgers must be
/// bit-identical across thread counts and engine representations. mlint
/// makes those invariants machine-checked: it tokenizes each source file
/// (comments and string/char literals stripped, so fixture snippets and
/// docs never trigger rules), runs a registry of repo-specific rules over
/// the token stream, honors inline
///     `// mlint: allow <rule-list> — <reason>` (rule list in parens)
/// suppressions (the reason is mandatory; a bare allow() is itself a
/// finding), subtracts a checked-in baseline, and reports the rest as text
/// or JSON. See DESIGN.md §11 for the rule-by-rule rationale.

namespace mlint {

// ---------------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------------

struct Token {
  enum class Kind : std::uint8_t {
    kIdent,    // identifiers and keywords
    kNumber,   // numeric literals
    kPunct,    // operators / punctuation (mostly single chars; ::, ->, +=)
    kPreproc,  // one whole preprocessor directive, continuations folded
  };
  Kind kind;
  std::string text;
  int line;  // 1-based line of the token's first character
};

/// One inline suppression comment. `line` is the source line the allowance
/// applies to: a trailing comment covers its own line, a comment-only line
/// covers the next line that carries code.
struct Allowance {
  std::string rule;   // rule name inside allow(...)
  std::string reason; // free text after the closing paren; may be empty
  int line;           // effective line the allowance covers
  int comment_line;   // line the comment itself sits on
};

struct SourceFile {
  std::string path;
  bool is_header = false;
  std::vector<std::string> lines;  // raw source, for snippets
  std::vector<Token> tokens;
  std::vector<Allowance> allowances;

  /// Raw line `line` (1-based), trimmed; empty string when out of range.
  std::string Snippet(int line) const;
};

/// Tokenizes `content` as C++ source. Never fails: unterminated literals
/// and comments are closed at end of file.
SourceFile Parse(std::string path, const std::string& content);

// ---------------------------------------------------------------------------
// Findings and rules
// ---------------------------------------------------------------------------

struct Finding {
  std::string rule;
  std::string path;
  int line = 0;
  std::string message;
  std::string snippet;
  bool baselined = false;
};

struct RuleInfo {
  std::string name;
  std::string summary;
};

/// Names and one-line summaries of every registered rule, in check order.
std::vector<RuleInfo> Rules();

/// Runs every rule over one parsed file, applies inline allowances, and
/// appends surviving findings (bad suppressions included) to `out`.
void CheckFile(const SourceFile& file, std::vector<Finding>* out);

// ---------------------------------------------------------------------------
// Driving
// ---------------------------------------------------------------------------

struct LintResult {
  std::vector<Finding> findings;  // stable order: path, then line
  int files_scanned = 0;

  int NewCount() const;        // findings not matched by the baseline
  int BaselinedCount() const;
};

/// Lints in-memory content; the unit the tests drive.
LintResult LintContent(const std::string& path, const std::string& content);

/// Lints files and directories (recursing into *.h / *.cc, skipping any
/// directory whose name starts with "build" or ".").
LintResult LintPaths(const std::vector<std::string>& paths);

// ---------------------------------------------------------------------------
// Baseline
// ---------------------------------------------------------------------------
//
// The baseline file grandfathers known findings so the lint gate can be
// enabled before every legacy site is fixed. One entry per line:
//
//     <rule>|<path>|<trimmed source line>
//
// '#' starts a comment. Matching is by content, not line number, so
// unrelated edits do not invalidate entries; each entry absorbs at most one
// finding (duplicates need duplicate entries). The goal state — and the
// state this repo ships in — is an empty baseline.

/// Identity of a finding for baseline matching.
std::string FindingKey(const Finding& f);

/// Parses baseline text into a multiset of finding keys.
std::multimap<std::string, int> ParseBaseline(const std::string& text);

/// Marks findings present in the baseline; returns the number of stale
/// baseline entries (entries that matched nothing — candidates to delete).
int ApplyBaseline(const std::string& baseline_text, LintResult* result);

// ---------------------------------------------------------------------------
// Reporters
// ---------------------------------------------------------------------------

/// Human-readable report: one `path:line: [rule] message` per finding plus
/// a summary line.
std::string TextReport(const LintResult& result);

/// Machine-readable report. Schema (stable, checked by mlint_test):
///   {"mlint_version": 1,
///    "files_scanned": N,
///    "summary": {"total": N, "new": N, "baselined": N},
///    "findings": [{"rule": "...", "path": "...", "line": N,
///                  "message": "...", "snippet": "...",
///                  "baselined": false}, ...]}
std::string JsonReport(const LintResult& result);

}  // namespace mlint
