#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

/// \file mlint.h
/// mlint — the repo-specific determinism & accounting linter.
///
/// Every number this repository reports rests on invariants the compiler
/// cannot check: simulated charges, RNG streams and peak-RAM ledgers must be
/// bit-identical across thread counts and engine representations. mlint
/// makes those invariants machine-checked.
///
/// The analyzer runs in two passes (DESIGN.md §11):
///
///   Pass 1 — per file: tokenize (comments and string/char literals
///   stripped, so fixture snippets and docs never trigger rules), extract
///   *facts*: function definitions (free functions, methods by qualified
///   name, lambda-to-local bindings), their call sites, their hazard sites
///   (entropy sources, simulator charges, ledger commits, raw threading,
///   non-local `+=` roots, shared-RNG draws, unordered iterations), the
///   include edges, and the parallel-region roots (ParallelFor /
///   ParallelReduce / Rel-operator / ColExpr lambdas and GatherBatch /
///   SampleBatch overrides).
///
///   Pass 2 — whole program: link the facts into a conservative call graph,
///   compute transitive reachability from every parallel-region root, and
///   evaluate the parallel-region rules against every *reachable* function
///   body — so hoisting a violation into a named helper no longer escapes
///   the lint. Each transitive finding carries the reachability chain that
///   proves it (`--why`).
///
/// Lexical (single-file) rules, inline
///     `// mlint: allow(<rule-list>) — <reason>`
/// suppressions (the reason is mandatory; a bare allow() is itself a
/// finding), the content-keyed baseline, and the text/JSON reporters ride
/// on top unchanged.

namespace mlint {

// ---------------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------------

struct Token {
  enum class Kind : std::uint8_t {
    kIdent,    // identifiers and keywords
    kNumber,   // numeric literals
    kPunct,    // operators / punctuation (mostly single chars; ::, ->, +=)
    kPreproc,  // one whole preprocessor directive, continuations folded
  };
  Kind kind;
  std::string text;
  int line;  // 1-based line of the token's first character
  int col;   // 1-based column of the token's first character
};

/// One inline suppression comment. `line` is the source line the allowance
/// applies to: a trailing comment covers its own line, a comment-only line
/// covers the next line that carries code.
struct Allowance {
  std::string rule;   // rule name inside allow(...)
  std::string reason; // free text after the closing paren; may be empty
  int line;           // effective line the allowance covers
  int comment_line;   // line the comment itself sits on
};

/// One non-suppression mlint marker comment (`// mlint: <marker> ...`),
/// e.g. `// mlint: frozen-grain — regolden PR-NN`. Line resolution follows
/// the allowance rules (trailing covers its line, standalone the next).
struct Marker {
  std::string name;  // marker keyword, e.g. "frozen-grain"
  int line;
  int comment_line;
};

struct SourceFile {
  std::string path;
  bool is_header = false;
  std::vector<std::string> lines;  // raw source, for snippets
  std::vector<Token> tokens;
  std::vector<Allowance> allowances;
  std::vector<Marker> markers;

  /// Raw line `line` (1-based), trimmed; empty string when out of range.
  std::string Snippet(int line) const;
};

/// Tokenizes `content` as C++ source. Never fails: unterminated literals
/// and comments are closed at end of file.
SourceFile Parse(std::string path, const std::string& content);

// ---------------------------------------------------------------------------
// Findings and rules
// ---------------------------------------------------------------------------

struct Finding {
  std::string rule;
  std::string path;
  int line = 0;
  int col = 0;  // 1-based column of the fixable site (0 = unknown)
  std::string message;
  std::string snippet;
  bool baselined = false;
  /// For transitive findings: the reachability chain proving the site runs
  /// inside a parallel region. Entry 0 is the parallel-region root, middle
  /// entries are call sites, the last entry is the hazard itself. Each
  /// entry is "path:line: text". Empty for lexical findings.
  std::vector<std::string> chain;
};

struct RuleInfo {
  std::string name;
  std::string summary;
};

/// Names and one-line summaries of every registered rule, in check order.
std::vector<RuleInfo> Rules();

/// Runs every *lexical* rule over one parsed file, applies inline
/// allowances, and appends surviving findings (bad suppressions included)
/// to `out`. Transitive (call-graph) findings come from LintProgram /
/// LintSources, which call this per linted file and then add pass-2 results.
void CheckFile(const SourceFile& file, std::vector<Finding>* out);

// ---------------------------------------------------------------------------
// Pass-1 facts (public so the index cache and tests can drive them)
// ---------------------------------------------------------------------------

/// A call site inside a function or parallel-region body.
struct CallSite {
  std::string name;    // base (unqualified) callee name
  bool member = false; // x.f(...) / x->f(...) form
  int line = 0;
};

/// A rule hazard recorded inside a function body. `rule` is the rule the
/// hazard maps to when the body turns out to be parallel-reachable.
/// Allowances are already applied (suppressed hazards are never recorded),
/// so cached facts stay correct without re-reading the source.
struct HazardSite {
  std::string rule;
  int line = 0;
  std::string token;    // the offending identifier, for messages
  std::string snippet;  // trimmed source line, for baseline keys
};

/// One function definition (or lambda bound to a local variable).
struct FunctionFacts {
  enum class Kind : std::uint8_t { kFree, kMethod, kLambdaLocal };
  Kind kind = Kind::kFree;
  std::string name;       // base name
  std::string qualifier;  // "A::B" for out-of-line A::B::name, else ""
  int line = 0;
  bool binds_scoped_ledger = false;  // body mentions sim::ScopedLedger
  std::vector<std::string> params;   // identifiers in the parameter list
  std::vector<CallSite> calls;
  std::vector<HazardSite> hazards;
};

/// A parallel-region root: the body handed to ParallelFor/ParallelReduce/
/// a Rel operator/ColExpr factory, or a GatherBatch/SampleBatch override.
struct RootFacts {
  std::string desc;  // e.g. "ParallelFor body", "GatherBatch override"
  int line = 0;
  bool binds_scoped_ledger = false;
  std::vector<CallSite> calls;
};

/// Everything pass 2 needs to know about one file. Derivable from the
/// parsed source (ExtractFacts) or from the index cache when the content
/// hash matches.
struct FileFacts {
  std::string path;
  std::uint64_t content_hash = 0;
  std::vector<std::string> classes;   // class/struct names defined here
  std::vector<std::string> includes;  // raw "quoted" include operands
  std::vector<FunctionFacts> functions;
  std::vector<RootFacts> roots;
};

/// FNV-1a 64 over the raw bytes; the cache key.
std::uint64_t ContentHash(const std::string& content);

/// Pass 1 for one file.
FileFacts ExtractFacts(const SourceFile& file);

/// Serializes facts for the index cache (text, one record per line).
std::string SerializeFacts(const std::vector<FileFacts>& facts);

/// Parses a cache blob; returns facts keyed by path. Unknown or malformed
/// records are skipped (the caller falls back to re-extraction).
std::map<std::string, FileFacts> ParseFactsCache(const std::string& text);

// ---------------------------------------------------------------------------
// Driving
// ---------------------------------------------------------------------------

struct LintResult {
  std::vector<Finding> findings;  // stable order: path, then line
  int files_scanned = 0;

  int NewCount() const;        // findings not matched by the baseline
  int BaselinedCount() const;
};

struct LintOptions {
  /// Files/directories that build the symbol index (the whole program).
  /// Directories recurse into *.h / *.cc, skipping "build*" and dotted
  /// directories.
  std::vector<std::string> index_paths;
  /// Subset to report findings for. Empty means "everything indexed".
  std::vector<std::string> lint_paths;
  /// Index-cache file to load/save pass-1 facts ("" = no cache). Entries
  /// are keyed on each file's content hash, so a stale cache can only cost
  /// time, never correctness.
  std::string index_cache;
  /// Expand the lint set with headers reachable through the include graph
  /// (quoted includes resolved against the including file, then src/).
  /// Closes the header-hygiene blind spot: a header only ever included
  /// transitively still gets linted when its includer is.
  bool expand_includes = true;
};

/// Whole-program lint over the filesystem. When `callgraph_json` is
/// non-null it receives the call-graph dump (functions, edges,
/// parallel-reachability marks).
LintResult LintProgram(const LintOptions& options,
                       std::string* callgraph_json = nullptr);

/// Whole-program lint over in-memory sources (path, content) — the unit
/// the tests drive. Every source is both indexed and linted.
LintResult LintSources(
    const std::vector<std::pair<std::string, std::string>>& sources,
    std::string* callgraph_json = nullptr);

/// Lints one in-memory file (lexical + same-file transitive analysis).
LintResult LintContent(const std::string& path, const std::string& content);

/// Lints files and directories; equivalent to LintProgram with
/// index == lint == paths and no cache.
LintResult LintPaths(const std::vector<std::string>& paths);

// ---------------------------------------------------------------------------
// Autofixer
// ---------------------------------------------------------------------------
//
// `mlint --fix` repairs the *mechanical* rules only: it inserts `(void)`
// casts for ignored-status, appends a reason stub to reasonless
// suppressions, and drops a sort-keys scaffold comment above
// unordered-iter emission sites. Parallel-region semantic rules
// (charge-in-parallel, rng-in-parallel, ledger-order, borrow-escape,
// naive-reduction, frozen-grain, nondet-random, raw-thread) are never
// auto-edited: their fixes change program semantics and need a human.

/// Rewrites `content` applying fixes for `findings` that belong to `path`.
/// Returns the fixed content; `*edits` receives the number of lines
/// changed. Idempotent: already-fixed sites are left alone.
std::string FixContent(const std::string& path, const std::string& content,
                       const std::vector<Finding>& findings, int* edits);

/// Unified-diff-style rendering of FixContent's changes for --fix
/// --dry-run.
std::string FixDiff(const std::string& path, const std::string& before,
                    const std::string& after);

// ---------------------------------------------------------------------------
// Baseline
// ---------------------------------------------------------------------------
//
// The baseline file grandfathers known findings so the lint gate can be
// enabled before every legacy site is fixed. One entry per line:
//
//     <rule>|<path>|<trimmed source line>
//
// '#' starts a comment. Matching is by content, not line number, so
// unrelated edits do not invalidate entries; each entry absorbs at most one
// finding (duplicates need duplicate entries). The goal state — and the
// state this repo ships in — is an empty baseline.

/// Identity of a finding for baseline matching.
std::string FindingKey(const Finding& f);

/// Parses baseline text into a multiset of finding keys.
std::multimap<std::string, int> ParseBaseline(const std::string& text);

/// Marks findings present in the baseline; returns the number of stale
/// baseline entries (entries that matched nothing — candidates to delete).
int ApplyBaseline(const std::string& baseline_text, LintResult* result);

// ---------------------------------------------------------------------------
// Reporters
// ---------------------------------------------------------------------------

/// Human-readable report: one `path:line: [rule] message` per finding plus
/// a summary line. Transitive findings print a one-line `via` hint; the
/// full chain is `--why` / JSON territory.
std::string TextReport(const LintResult& result);

/// Machine-readable report. Schema (stable, checked by mlint_test):
///   {"mlint_version": 2,
///    "files_scanned": N,
///    "summary": {"total": N, "new": N, "baselined": N},
///    "findings": [{"rule": "...", "path": "...", "line": N,
///                  "message": "...", "snippet": "...",
///                  "baselined": false, "chain": ["...", ...]}, ...]}
std::string JsonReport(const LintResult& result);

/// GitHub Actions annotations: one `::error file=...,line=...::...` line
/// per new finding (what tools/mlint_changed.sh pipes onto PRs).
std::string GithubAnnotations(const LintResult& result);

/// The reachability chains for findings matching `spec` (a rule name, a
/// "path:line", or any substring of "rule|path:line"). Lexical findings
/// report themselves as single-step chains.
std::string WhyReport(const LintResult& result, const std::string& spec);

}  // namespace mlint
