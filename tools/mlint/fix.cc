#include <algorithm>
#include <sstream>
#include <vector>

#include "internal.h"
#include "mlint.h"

/// \file fix.cc
/// `mlint --fix`: mechanical repairs only. Rules whose fix is semantic
/// (everything parallel-region related) are never touched — inserting a
/// ledger or re-deriving an RNG stream changes program behavior and needs
/// a human who re-bakes goldens.

namespace mlint {

namespace {

constexpr const char* kFixTag = "TODO(mlint --fix)";

std::vector<std::string> SplitLines(const std::string& s, bool* trailing_nl) {
  std::vector<std::string> lines;
  std::string cur;
  for (char c : s) {
    if (c == '\n') {
      lines.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  *trailing_nl = s.empty() || s.back() == '\n';
  if (!cur.empty()) lines.push_back(cur);
  return lines;
}

std::string LeadingWs(const std::string& line) {
  std::size_t i = 0;
  while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
  return line.substr(0, i);
}

}  // namespace

std::string FixContent(const std::string& path, const std::string& content,
                       const std::vector<Finding>& findings, int* edits) {
  bool trailing_nl = false;
  std::vector<std::string> lines = SplitLines(content, &trailing_nl);
  int count = 0;

  // Apply bottom-up so scaffold insertions never shift pending line
  // numbers.
  std::vector<const Finding*> mine;
  for (const auto& f : findings) {
    if (f.path == path && !f.baselined) mine.push_back(&f);
  }
  std::sort(mine.begin(), mine.end(), [](const Finding* a, const Finding* b) {
    return a->line > b->line;
  });

  for (const Finding* f : mine) {
    if (f->line < 1 || static_cast<std::size_t>(f->line) > lines.size()) {
      continue;
    }
    std::string& line = lines[static_cast<std::size_t>(f->line) - 1];

    if (f->rule == "ignored-status") {
      // Insert `(void)` at the statement root's column; the site is then a
      // sanctioned explicit discard (pair it with a comment arguing why).
      if (f->col < 1 || static_cast<std::size_t>(f->col) > line.size() + 1) {
        continue;
      }
      if (line.find("(void)") != std::string::npos) continue;  // idempotent
      line.insert(static_cast<std::size_t>(f->col) - 1, "(void)");
      ++count;
      continue;
    }

    if (f->rule == "bad-suppression" &&
        f->message.find("has no reason") != std::string::npos) {
      if (line.find(kFixTag) != std::string::npos) continue;
      line += std::string(" — ") + kFixTag +
              ": justify why this site is safe, or delete the allowance";
      ++count;
      continue;
    }

    if (f->rule == "unordered-iter") {
      // Drop a scaffold above the emission site; the sort itself is the
      // author's call (key type, comparator, first-seen slot indices).
      const std::string indent = LeadingWs(line);
      // Idempotence: walk the contiguous comment block above looking for a
      // previously planted scaffold.
      bool already = false;
      for (int up = f->line - 1; up >= 1; --up) {
        const std::string& prev = lines[static_cast<std::size_t>(up) - 1];
        if (internal::TrimWs(prev).rfind("//", 0) != 0) break;
        if (prev.find(kFixTag) != std::string::npos) {
          already = true;
          break;
        }
      }
      if (already) continue;
      std::vector<std::string> scaffold = {
          indent + "// " + kFixTag + ": iteration order leaks here — collect",
          indent + "// the keys, sort them (or use first-seen slot indices),",
          indent + "// then emit in that order. See DESIGN.md §11.",
      };
      lines.insert(lines.begin() + (f->line - 1), scaffold.begin(),
                   scaffold.end());
      ++count;
      continue;
    }
  }

  if (edits != nullptr) *edits = count;
  std::string out;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    out += lines[i];
    if (i + 1 < lines.size() || trailing_nl) out += "\n";
  }
  return out;
}

std::string FixDiff(const std::string& path, const std::string& before,
                    const std::string& after) {
  bool nl = false;
  std::vector<std::string> a = SplitLines(before, &nl);
  std::vector<std::string> b = SplitLines(after, &nl);
  std::stringstream out;
  out << "--- " << path << "\n+++ " << path << " (fixed)\n";
  std::size_t i = 0, j = 0;
  while (i < a.size() || j < b.size()) {
    if (i < a.size() && j < b.size() && a[i] == b[j]) {
      ++i;
      ++j;
      continue;
    }
    // Insertions first (the fixer only inserts or rewrites single lines):
    // if a nearby `after` line re-syncs with the current `before` line,
    // everything up to it was inserted.
    bool resynced = false;
    for (std::size_t d = 1; d <= 4 && j + d <= b.size(); ++d) {
      if (i < a.size() && j + d < b.size() && a[i] == b[j + d]) {
        out << "@@ " << path << ":" << (j + 1) << " @@\n";
        for (std::size_t k = 0; k < d; ++k) out << "+" << b[j + k] << "\n";
        j += d;
        resynced = true;
        break;
      }
    }
    if (resynced) continue;
    out << "@@ " << path << ":" << (j + 1) << " @@\n";
    if (i < a.size()) out << "-" << a[i++] << "\n";
    if (j < b.size()) out << "+" << b[j++] << "\n";
  }
  return out.str();
}

}  // namespace mlint
