// loadgen: replay a deterministic mixed request stream against a running
// mlbench_server at one or more concurrency levels, and report
// throughput, latency percentiles, shed/reject counts, and digest
// determinism to BENCH_server.json.
//
//   loadgen --port P [--requests N] [--concurrency 1,4,16] [--seed S]
//           [--deadline-ms D] [--verify] [--min-sheds K] [--json PATH]
//           [--sql-every M] [--progress-every M]
//
// The request list is a pure function of (--seed, index): every
// concurrency level replays the *same* requests, so with --verify the
// tool asserts that a request completed at 16 concurrent sessions
// returns bit-for-bit the digest it returns serially — the server's
// session-isolation guarantee, checked end to end over the wire.
// --min-sheds K fails the run unless at least K requests were load-shed
// (ResourceExhausted / DeadlineExceeded), for overload-drill CI jobs
// that must prove shedding actually engaged.
//
// Chaos: MLBENCH_FAULT_SEED + MLBENCH_FAULT_CONNDROP / _SLOWCLIENT make
// the embedded clients drop connections and stall reads on a
// deterministic schedule (see sim/faults.h), exercising the server's
// teardown paths while --verify still holds.

#include <atomic>
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "server/client.h"
#include "server/protocol.h"
#include "sim/faults.h"

namespace {

using mlbench::server::Client;
using mlbench::server::ClientOptions;
using mlbench::server::ExperimentRequest;
using mlbench::server::ResultMsg;
using mlbench::server::SqlRequest;

struct Args {
  int port = 0;
  int requests = 200;
  std::vector<int> concurrency = {1, 4, 16};
  std::uint64_t seed = 2014;
  std::int64_t deadline_ms = 0;
  bool verify = false;
  std::int64_t min_sheds = 0;
  std::string json = "BENCH_server.json";
  int sql_every = 5;       ///< every M-th request is SQL (0 = never)
  int progress_every = 7;  ///< every M-th experiment streams progress
};

const char* FlagValue(int argc, char** argv, const char* flag) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return argv[i + 1];
  }
  return nullptr;
}

bool HasFlag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

Args ParseArgs(int argc, char** argv) {
  Args args;
  if (const char* v = FlagValue(argc, argv, "--port")) args.port = std::atoi(v);
  if (const char* v = FlagValue(argc, argv, "--requests")) {
    args.requests = std::atoi(v);
  }
  if (const char* v = FlagValue(argc, argv, "--concurrency")) {
    args.concurrency.clear();
    for (const char* p = v; *p != '\0';) {
      args.concurrency.push_back(std::atoi(p));
      while (*p != '\0' && *p != ',') ++p;
      if (*p == ',') ++p;
    }
  }
  if (const char* v = FlagValue(argc, argv, "--seed")) {
    args.seed = std::strtoull(v, nullptr, 10);
  }
  if (const char* v = FlagValue(argc, argv, "--deadline-ms")) {
    args.deadline_ms = std::atoll(v);
  }
  if (const char* v = FlagValue(argc, argv, "--min-sheds")) {
    args.min_sheds = std::atoll(v);
  }
  if (const char* v = FlagValue(argc, argv, "--json")) args.json = v;
  if (const char* v = FlagValue(argc, argv, "--sql-every")) {
    args.sql_every = std::atoi(v);
  }
  if (const char* v = FlagValue(argc, argv, "--progress-every")) {
    args.progress_every = std::atoi(v);
  }
  args.verify = HasFlag(argc, argv, "--verify");
  if (const char* env = std::getenv("MLBENCH_BENCH_JSON")) args.json = env;
  return args;
}

// ---- Deterministic request stream ------------------------------------------

constexpr std::uint64_t kMixTag = 0x10ad;

bool IsSqlRequest(const Args& args, int index) {
  return args.sql_every > 0 && index % args.sql_every == args.sql_every - 1;
}

SqlRequest MakeSql(const Args& args, int index) {
  static const char* kStatements[] = {
      "SELECT grp, COUNT(id) AS n, AVG(val) AS mean FROM data GROUP BY grp",
      "SELECT id, val FROM data WHERE grp = 3",
      "SELECT val * 2 + 1 AS v, id FROM data WHERE id < 32",
      "SELECT grp, MAX(val) AS hi, MIN(val) AS lo FROM data GROUP BY grp",
  };
  double u = mlbench::sim::HashChance(args.seed, kMixTag, index);
  SqlRequest req;
  req.id = static_cast<std::uint64_t>(index);
  req.seed = args.seed ^ static_cast<std::uint64_t>(index);
  req.rows = 64 + (index % 4) * 32;
  req.deadline_ms = args.deadline_ms;
  req.sql = kStatements[static_cast<int>(u * 4.0) % 4];
  return req;
}

ExperimentRequest MakeExperiment(const Args& args, int index) {
  static const char* kWorkloads[] = {"gmm", "lasso", "hmm", "lda",
                                     "imputation"};
  static const char* kPlatforms[] = {"dataflow", "reldb", "gas", "bsp"};
  // Small-but-healthy actual samples: the stream's point is concurrency,
  // not scale, but gmm/imputation posteriors need ~200 points per machine
  // before their inverse-Wishart scale matrices are reliably PD (smaller
  // samples still work — they become deterministic Fail cells).
  static const long long kActual[] = {200, 40, 12, 10, 200};
  double u1 = mlbench::sim::HashChance(args.seed, kMixTag + 1, index);
  double u2 = mlbench::sim::HashChance(args.seed, kMixTag + 2, index);
  int w = static_cast<int>(u1 * 5.0) % 5;
  ExperimentRequest req;
  req.id = static_cast<std::uint64_t>(index);
  req.workload = kWorkloads[w];
  req.platform = kPlatforms[static_cast<int>(u2 * 4.0) % 4];
  req.machines = 2 + (index % 3);
  req.iterations = 2;
  req.seed = args.seed ^ static_cast<std::uint64_t>(index);
  req.actual_per_machine = kActual[w];
  req.deadline_ms = args.deadline_ms;
  req.want_progress =
      args.progress_every > 0 && index % args.progress_every == 0;
  return req;
}

// ---- One concurrency level --------------------------------------------------

struct LevelResult {
  int concurrency = 0;
  int requests = 0;
  int ok = 0;
  int failed_cells = 0;  ///< kResult with a non-OK simulated status
  int errors = 0;        ///< terminal kError (after retries)
  std::int64_t sheds = 0;
  std::int64_t deadlines = 0;
  std::int64_t retries = 0;
  std::int64_t reconnects = 0;
  std::int64_t chaos_conn_drops = 0;
  std::int64_t chaos_slow_reads = 0;
  double wall_seconds = 0;
  double p50_ms = 0, p95_ms = 0, p99_ms = 0, max_ms = 0;
  /// index -> digest for every request that returned a kResult.
  std::map<int, std::uint64_t> digests;
};

double Percentile(std::vector<double>* sorted_ms, double q) {
  if (sorted_ms->empty()) return 0;
  std::size_t at = static_cast<std::size_t>(
      q * static_cast<double>(sorted_ms->size() - 1) + 0.5);
  return (*sorted_ms)[std::min(at, sorted_ms->size() - 1)];
}

LevelResult RunLevel(const Args& args, int concurrency) {
  LevelResult level;
  level.concurrency = concurrency;
  level.requests = args.requests;

  std::atomic<int> next{0};
  std::mutex mu;  // guards latencies + digests + counters below
  std::vector<double> latencies_ms;
  mlbench::sim::FaultSpec chaos = mlbench::sim::FaultSpec::FromEnv();

  auto worker = [&] {
    ClientOptions copts;
    copts.port = args.port;
    copts.chaos = chaos;
    Client client(copts);
    for (;;) {
      int index = next.fetch_add(1);
      if (index >= args.requests) break;
      auto start = std::chrono::steady_clock::now();
      mlbench::Result<ResultMsg> res = [&]() -> mlbench::Result<ResultMsg> {
        if (IsSqlRequest(args, index)) {
          return client.RunSql(MakeSql(args, index));
        }
        return client.RunExperiment(MakeExperiment(args, index));
      }();
      double ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - start)
                      .count();
      std::lock_guard<std::mutex> lock(mu);
      latencies_ms.push_back(ms);
      if (res.ok()) {
        level.digests[index] = res->digest;
        if (res->code == mlbench::StatusCode::kOk) {
          ++level.ok;
        } else {
          ++level.failed_cells;  // a legitimate simulated "Fail" cell
        }
      } else {
        ++level.errors;
      }
    }
    std::lock_guard<std::mutex> lock(mu);
    level.sheds += client.stats().sheds_seen;
    level.deadlines += client.stats().deadlines_seen;
    level.retries += client.stats().retries;
    level.reconnects += client.stats().reconnects;
    level.chaos_conn_drops += client.stats().chaos_conn_drops;
    level.chaos_slow_reads += client.stats().chaos_slow_reads;
  };

  auto wall_start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(concurrency));
  for (int i = 0; i < concurrency; ++i) threads.emplace_back(worker);
  for (auto& t : threads) t.join();
  level.wall_seconds = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - wall_start)
                           .count();

  std::sort(latencies_ms.begin(), latencies_ms.end());
  level.p50_ms = Percentile(&latencies_ms, 0.50);
  level.p95_ms = Percentile(&latencies_ms, 0.95);
  level.p99_ms = Percentile(&latencies_ms, 0.99);
  level.max_ms = latencies_ms.empty() ? 0 : latencies_ms.back();
  return level;
}

void WriteJson(const Args& args, const std::vector<LevelResult>& levels,
               int verify_mismatches, int verify_compared) {
  std::FILE* f = std::fopen(args.json.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "loadgen: cannot open %s\n", args.json.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"requests\": %d,\n  \"seed\": %llu,\n",
               args.requests, static_cast<unsigned long long>(args.seed));
  std::fprintf(f, "  \"deadline_ms\": %lld,\n",
               static_cast<long long>(args.deadline_ms));
  std::fprintf(f, "  \"levels\": [\n");
  for (std::size_t i = 0; i < levels.size(); ++i) {
    const LevelResult& l = levels[i];
    std::fprintf(
        f,
        "    {\"concurrency\": %d, \"wall_seconds\": %.3f, "
        "\"throughput_rps\": %.2f, \"ok\": %d, \"failed_cells\": %d, "
        "\"errors\": %d, \"sheds\": %lld, \"deadline_sheds\": %lld, "
        "\"retries\": %lld, \"reconnects\": %lld, "
        "\"chaos_conn_drops\": %lld, \"chaos_slow_reads\": %lld, "
        "\"latency_ms\": {\"p50\": %.2f, \"p95\": %.2f, \"p99\": %.2f, "
        "\"max\": %.2f}}%s\n",
        l.concurrency, l.wall_seconds,
        l.wall_seconds > 0 ? static_cast<double>(l.requests) / l.wall_seconds
                           : 0.0,
        l.ok, l.failed_cells, l.errors, static_cast<long long>(l.sheds),
        static_cast<long long>(l.deadlines),
        static_cast<long long>(l.retries),
        static_cast<long long>(l.reconnects),
        static_cast<long long>(l.chaos_conn_drops),
        static_cast<long long>(l.chaos_slow_reads), l.p50_ms, l.p95_ms,
        l.p99_ms, l.max_ms, i + 1 < levels.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f,
               "  \"verify\": {\"enabled\": %s, \"compared\": %d, "
               "\"mismatches\": %d}\n}\n",
               args.verify ? "true" : "false", verify_compared,
               verify_mismatches);
  std::fclose(f);
  std::printf("loadgen: wrote %s\n", args.json.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  Args args = ParseArgs(argc, argv);
  if (args.port <= 0) {
    std::fprintf(stderr, "loadgen: --port is required\n");
    return 2;
  }

  // Wait for the server to come up (fresh spawn in scripts).
  {
    ClientOptions copts;
    copts.port = args.port;
    Client probe(copts);
    bool up = false;
    for (int i = 0; i < 100; ++i) {
      if (probe.Ping().ok()) {
        up = true;
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    if (!up) {
      std::fprintf(stderr, "loadgen: no server on port %d\n", args.port);
      return 2;
    }
  }

  std::vector<LevelResult> levels;
  for (int concurrency : args.concurrency) {
    if (concurrency < 1) continue;
    LevelResult level = RunLevel(args, concurrency);
    std::printf(
        "loadgen: concurrency=%d wall=%.2fs rps=%.1f ok=%d failed=%d "
        "errors=%d sheds=%lld deadline_sheds=%lld retries=%lld p50=%.1fms "
        "p95=%.1fms p99=%.1fms\n",
        level.concurrency, level.wall_seconds,
        level.wall_seconds > 0
            ? static_cast<double>(level.requests) / level.wall_seconds
            : 0.0,
        level.ok, level.failed_cells, level.errors,
        static_cast<long long>(level.sheds),
        static_cast<long long>(level.deadlines),
        static_cast<long long>(level.retries), level.p50_ms, level.p95_ms,
        level.p99_ms);
    levels.push_back(std::move(level));
  }

  // Determinism check: a request index that completed at several levels
  // must have one digest — session isolation means result bits depend on
  // the request alone, not on what ran beside it.
  int mismatches = 0;
  int compared = 0;
  if (args.verify && levels.size() > 1) {
    const LevelResult& base = levels.front();
    for (std::size_t i = 1; i < levels.size(); ++i) {
      for (const auto& [index, digest] : levels[i].digests) {
        auto it = base.digests.find(index);
        if (it == base.digests.end()) continue;
        ++compared;
        if (it->second != digest) {
          ++mismatches;
          std::fprintf(stderr,
                       "loadgen: DIGEST MISMATCH request %d: %016llx "
                       "(concurrency %d) vs %016llx (concurrency %d)\n",
                       index,
                       static_cast<unsigned long long>(it->second),
                       base.concurrency,
                       static_cast<unsigned long long>(digest),
                       levels[i].concurrency);
        }
      }
    }
    std::printf("loadgen: verify compared=%d mismatches=%d\n", compared,
                mismatches);
    if (compared == 0) {
      // Zero comparisons means the base level completed nothing (dead
      // server, total shed) — that must not read as a determinism PASS.
      std::fprintf(stderr,
                   "loadgen: verify had nothing to compare — no request "
                   "completed at multiple levels\n");
      ++mismatches;
    }
  }

  WriteJson(args, levels, mismatches, compared);

  std::int64_t total_sheds = 0;
  for (const auto& level : levels) {
    total_sheds += level.sheds + level.deadlines;
  }
  if (args.min_sheds > 0 && total_sheds < args.min_sheds) {
    std::fprintf(stderr,
                 "loadgen: expected >= %lld sheds, saw %lld — overload "
                 "drill did not engage admission control\n",
                 static_cast<long long>(args.min_sheds),
                 static_cast<long long>(total_sheds));
    return 1;
  }
  if (mismatches > 0) return 1;
  std::printf("loadgen: PASS\n");
  return 0;
}
