#!/usr/bin/env python3
"""Gate on the thread-scaling entries in BENCH_engines.json.

bench_json.h emits, for every benchmark with a "threads" axis, one
scaling entry per threads:N (N > 1) variant paired with its threads:1
twin:

    {"name": "BM_BspSuperstep/vertices:10000", "threads": 4,
     "serial_ns_per_op": ..., "parallel_ns_per_op": ..., "speedup": ...}

Kernel-speedup entries (naive_ns_per_op / kernel_ns_per_op) share the
same "speedups" array; scaling entries are the ones that carry a
"threads" field.

Two gates:

  1. No-regression floor: every scaling entry with threads <= host_cores
     must hit speedup >= FLOOR (default 0.95).  Parallel dispatch is
     allowed to be a wash, never a slowdown — if threads:4 is slower
     than threads:1 on a 4-core host the dispatch layer is burning
     cycles.  Oversubscribed rows (threads > host_cores, e.g. threads:4
     on a 1-core dev box) are report-only: there the row measures
     scheduler contention, not dispatch quality.

  2. Scaling floor (only when the producing host can scale): on hosts
     with host_cores >= MIN_CORES (default 4), the large BSP/GAS rows
     must show real multicore wins: speedup >= STRONG (default 2.5) on
     every name matching one of the STRONG_PATTERNS.  On smaller hosts
     this gate is skipped with a notice, since "no speedup" there means
     "no cores", not "no scaling".

Usage: tools/check_scaling.py [BENCH_engines.json]
Exit code 0 = all gates pass, 1 = regression, 2 = bad input.
"""

import json
import sys

FLOOR = 0.95
STRONG = 2.5
MIN_CORES = 4
STRONG_PATTERNS = (
    "BM_BspSuperstep/vertices:10000",
    "BM_GasSweep/vertices:10000",
)


def main(argv):
    path = argv[1] if len(argv) > 1 else "BENCH_engines.json"
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as err:
        print(f"check_scaling: cannot read {path}: {err}", file=sys.stderr)
        return 2

    host_cores = int(doc.get("host_cores", 1))
    scaling = [s for s in doc.get("speedups", []) if "threads" in s]
    if not scaling:
        print(f"check_scaling: {path} has no thread-scaling entries",
              file=sys.stderr)
        return 2

    failures = []
    oversubscribed = 0
    for entry in scaling:
        name = entry["name"]
        threads = entry["threads"]
        speedup = entry["speedup"]
        label = f"{name} @ threads:{threads}"
        if threads > host_cores:
            verdict = "info"
            oversubscribed += 1
        elif speedup < FLOOR:
            failures.append(
                f"{label}: speedup {speedup:.3f} < no-regression floor "
                f"{FLOOR}")
            verdict = "FAIL"
        else:
            verdict = "ok"
        print(f"  {verdict:4s} {label}: {speedup:.3f}x "
              f"({entry['serial_ns_per_op']:.0f} -> "
              f"{entry['parallel_ns_per_op']:.0f} ns/op)")
    if oversubscribed:
        print(f"  note: {oversubscribed} row(s) oversubscribed "
              f"(threads > host_cores={host_cores}); reported but not gated")

    strong_rows = [s for s in scaling
                   if s["name"] in STRONG_PATTERNS and s["threads"] >= MIN_CORES]
    if host_cores >= MIN_CORES:
        if not strong_rows:
            failures.append(
                f"no threads:{MIN_CORES}+ rows found for the strong-scaling "
                f"names {STRONG_PATTERNS} — did the bench run with "
                f"MLBENCH_BENCH_THREADS={MIN_CORES}?")
        for entry in strong_rows:
            if entry["speedup"] < STRONG:
                failures.append(
                    f"{entry['name']} @ threads:{entry['threads']}: speedup "
                    f"{entry['speedup']:.3f} < strong-scaling floor {STRONG}")
    else:
        print(f"  note: host_cores={host_cores} < {MIN_CORES}; "
              f"strong-scaling floor ({STRONG}x) skipped — a starved host "
              f"cannot show multicore wins")

    if failures:
        print(f"check_scaling: {len(failures)} gate failure(s):",
              file=sys.stderr)
        for f_ in failures:
            print(f"  - {f_}", file=sys.stderr)
        return 1
    print(f"check_scaling: {len(scaling)} scaling entries pass "
          f"(host_cores={host_cores})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
