// The paper's SimSQL code, run as SQL. Section 5.2 presents the GMM's
// random tables in SimSQL's dialect; this example executes those snippets
// (lightly normalized) through the relational engine's SQL front end:
// hyperparameter views, the Dirichlet-VG initialization of clus_prob[0],
// and the recursive clus_prob[i] definition driven for several iterations.
//
//   $ ./build/examples/simsql_queries

#include <cstdio>

#include "common/str_format.h"
#include "reldb/sql.h"
#include "reldb/vg_library.h"
#include "sim/cluster_sim.h"
#include "stats/rng.h"

int main() {
  using namespace mlbench;
  using namespace mlbench::reldb;

  sim::ClusterSim sim(sim::Ec2M2XLargeCluster(5));
  Database db(&sim, {}, 2014);
  SqlContext ctx(&db);
  DirichletVg diri("clus_id", "pi_prior");
  DirichletVg diri_rec("clus_id", "diri_para");
  ctx.RegisterVg("Dirichlet", &diri);

  // data(data_id, dim_id, data_val) and cluster(clus_id, pi_prior),
  // 200 points x 4 dims standing for 10M points/machine.
  stats::Rng rng(1);
  Table data(Schema{"data_id", "dim_id", "data_val"}, 5e7 / 200.0);
  for (std::int64_t p = 0; p < 200; ++p) {
    for (std::int64_t d = 0; d < 4; ++d) {
      data.Append(Tuple{p, d, rng.NextDouble() * 10.0});
    }
  }
  db.Put("data", std::move(data));
  Table cluster(Schema{"clus_id", "pi_prior"}, 1.0);
  for (std::int64_t k = 0; k < 10; ++k) cluster.Append(Tuple{k, 1.0});
  db.Put("cluster", std::move(cluster));
  Table members(Schema{"data_id", "clus_id"}, 5e7 / 200.0);
  for (std::int64_t p = 0; p < 200; ++p) members.Append(Tuple{p, p % 10});
  db.Put("membership[0]", std::move(members));

  // Section 5.2: "the vector mu_o is computed as the mean of the data set".
  auto mean = ctx.Execute(
      "CREATE VIEW mean_prior (dim_id, dim_val) AS "
      "SELECT dim_id, AVG(data_val) "
      "FROM data "
      "GROUP BY dim_id");
  std::printf("mean_prior: %s (%zu rows)\n",
              mean.ok() ? "ok" : mean.status().ToString().c_str(),
              mean.ok() ? mean->actual_rows() : 0);

  // Section 5.2's initialization of clus_prob[0], nearly verbatim.
  auto init = ctx.Execute(
      "CREATE TABLE clus_prob[0] (clus_id, prob) AS "
      "WITH diri_res AS Dirichlet "
      "    (SELECT clus_id, pi_prior FROM cluster) "
      "SELECT diri_res.out_id, diri_res.prob "
      "FROM diri_res");
  std::printf("clus_prob[0]: %s\n",
              init.ok() ? "ok" : init.status().ToString().c_str());

  // Section 5.2's recursive definition, iterated.
  ctx.RegisterVg("Dirichlet", &diri_rec);
  const std::string recursive =
      "CREATE TABLE clus_prob[i] (clus_id, prob) AS "
      "WITH diri_res AS Dirichlet "
      "  (SELECT cmem.clus_id, COUNT(*) + clus.pi_prior AS diri_para "
      "   FROM membership[i-1] cmem, cluster clus "
      "   WHERE cmem.clus_id = clus.clus_id "
      "   GROUP BY cmem.clus_id) "
      "SELECT diri_res.out_id, diri_res.prob "
      "FROM diri_res";
  for (int i = 1; i <= 3; ++i) {
    double before = sim.elapsed_seconds();
    auto r = ctx.Execute(SqlContext::BindIteration(recursive, i));
    if (!r.ok()) {
      std::printf("iteration %d failed: %s\n", i,
                  r.status().ToString().c_str());
      return 1;
    }
    // Memberships would be refreshed by the multinomial_membership VG in
    // the full simulation; here we reuse them to exercise the recursion.
    db.Put(Database::Versioned("membership", i),
           *db.Get(Database::Versioned("membership", i - 1)));
    std::printf("clus_prob[%d]: %zu rows, simulated %s\n", i,
                r->actual_rows(),
                FormatDuration(sim.elapsed_seconds() - before).c_str());
  }
  std::printf(
      "\nEach statement compiles to MapReduce jobs on the simulated fleet\n"
      "(SimSQL 0.1 semantics); clus_prob probabilities sum to 1 per copy.\n");
  return 0;
}
