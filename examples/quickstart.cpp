// Quickstart: run one benchmark task (the Gaussian mixture model) on one
// platform (the Spark-like dataflow engine) and print what the paper's
// tables report -- initialization time, per-iteration time, and the
// learned model -- next to the ground truth.
//
//   $ ./build/examples/quickstart

#include <cstdio>

#include "common/str_format.h"
#include "core/gmm_dataflow.h"
#include "core/workloads.h"

int main() {
  using namespace mlbench;
  using namespace mlbench::core;

  // Configure the experiment: the paper's 10-d GMM on 5 machines, with
  // 10M logical points per machine represented by a 2,000-point sample.
  GmmExperiment exp;
  exp.config.machines = 5;
  exp.config.iterations = 40;
  exp.dim = 3;  // keep the quickstart small
  exp.k = 2;
  exp.config.data.logical_per_machine = 10e6;
  exp.config.data.actual_per_machine = 1000;
  exp.config.seed = 99;
  exp.language = sim::Language::kPython;

  std::printf("Running the GMM Gibbs sampler on the dataflow engine...\n");
  models::GmmParams model;
  RunResult result = RunGmmDataflow(exp, &model);
  if (!result.ok()) {
    std::printf("run failed: %s\n", result.status.ToString().c_str());
    return 1;
  }

  std::printf("simulated init time:      %s\n",
              FormatDuration(result.init_seconds).c_str());
  std::printf("simulated per iteration:  %s\n",
              FormatDuration(result.avg_iteration_seconds()).c_str());

  GmmDataGen gen(exp.config.seed, exp.k, exp.dim);
  std::printf("\n%-28s %-28s\n", "true component means", "learned means");
  for (std::size_t c = 0; c < exp.k; ++c) {
    std::printf("(%6.2f %6.2f %6.2f)        (%6.2f %6.2f %6.2f)  pi=%.2f\n",
                gen.true_means()[c][0], gen.true_means()[c][1],
                gen.true_means()[c][2], model.mu[c][0], model.mu[c][1],
                model.mu[c][2], model.pi[c]);
  }
  std::printf(
      "\n(learned means match the true means up to component order)\n");
  return 0;
}
