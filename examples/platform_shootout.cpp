// Platform shootout: one model (the 10-d GMM at full paper scale), all
// four platforms, one table -- the fastest way to see the benchmark's
// central finding. Equivalent to one column of Figure 1(a)/(c).
//
//   $ ./build/examples/platform_shootout [machines]

#include <cstdio>
#include <cstdlib>

#include "common/str_format.h"
#include "core/gmm_bsp.h"
#include "core/gmm_dataflow.h"
#include "core/gmm_gas.h"
#include "core/gmm_reldb.h"

int main(int argc, char** argv) {
  using namespace mlbench;
  using namespace mlbench::core;
  int machines = argc > 1 ? std::atoi(argv[1]) : 5;

  auto make = [&](bool super, sim::Language lang) {
    GmmExperiment exp;
    exp.config.machines = machines;
    exp.config.iterations = 3;
    exp.super_vertex = super;
    exp.language = lang;
    exp.config.data.logical_per_machine = 10e6;
    exp.config.data.actual_per_machine = machines >= 50 ? 500 : 2000;
    return exp;
  };

  std::printf("GMM, 10 dimensions, %d machines, 10M points/machine:\n\n",
              machines);
  std::printf("%-36s %-18s %s\n", "implementation", "per iteration",
              "init");
  struct Row {
    const char* name;
    RunResult (*runner)(const GmmExperiment&, models::GmmParams*);
    bool super;
    sim::Language lang;
  };
  for (Row row :
       {Row{"Spark (Python)", &RunGmmDataflow, false,
            sim::Language::kPython},
        Row{"Spark (Java)", &RunGmmDataflow, false, sim::Language::kJava},
        Row{"SimSQL", &RunGmmRelDb, false, sim::Language::kJava},
        Row{"SimSQL (super vertex)", &RunGmmRelDb, true,
            sim::Language::kJava},
        Row{"GraphLab (naive -- paper: Fail)", &RunGmmGas, false,
            sim::Language::kCpp},
        Row{"GraphLab (super vertex)", &RunGmmGas, true,
            sim::Language::kCpp},
        Row{"Giraph", &RunGmmBsp, false, sim::Language::kJava},
        Row{"Giraph (super vertex)", &RunGmmBsp, true,
            sim::Language::kJava}}) {
    RunResult r = row.runner(make(row.super, row.lang), nullptr);
    if (r.ok()) {
      std::printf("%-36s %-18s %s\n", row.name,
                  FormatDuration(r.avg_iteration_seconds()).c_str(),
                  FormatDuration(r.init_seconds).c_str());
    } else {
      std::printf("%-36s Fail (%s)\n", row.name,
                  StatusCodeName(r.status.code()));
    }
  }
  return 0;
}
