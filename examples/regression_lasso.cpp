// Bayesian Lasso regression across all four platforms: the same Gibbs
// chain (tau, beta, sigma^2) orchestrated by the dataflow, relational,
// GAS, and BSP engines. Prints each platform's recovered coefficients for
// the non-zero signal entries and its simulated cluster cost -- a compact
// version of the paper's Figure 2 story.
//
//   $ ./build/examples/regression_lasso

#include <cmath>
#include <cstdio>

#include "common/str_format.h"
#include "core/lasso_bsp.h"
#include "core/lasso_dataflow.h"
#include "core/lasso_gas.h"
#include "core/lasso_reldb.h"
#include "core/workloads.h"

int main() {
  using namespace mlbench;
  using namespace mlbench::core;

  LassoExperiment exp;
  exp.config.machines = 5;
  exp.config.iterations = 30;
  exp.p = 10;  // small p so the output is readable
  exp.config.data.logical_per_machine = 1e5;
  exp.config.data.actual_per_machine = 150;
  exp.supers_per_machine = 10;

  LassoDataGen gen(exp.config.seed, exp.p);
  std::printf("true beta: ");
  for (std::size_t j = 0; j < exp.p; ++j) {
    std::printf("%6.2f", gen.true_beta()[j]);
  }
  std::printf("\n\n");

  struct Row {
    const char* name;
    RunResult (*runner)(const LassoExperiment&, models::LassoState*);
    bool super;
  };
  for (Row row : {Row{"Spark (dataflow)", &RunLassoDataflow, false},
                  Row{"SimSQL (relational)", &RunLassoRelDb, false},
                  Row{"GraphLab (GAS)", &RunLassoGas, true},
                  Row{"Giraph (BSP)", &RunLassoBsp, true}}) {
    LassoExperiment cfg = exp;
    cfg.super_vertex = row.super;
    models::LassoState state;
    RunResult r = row.runner(cfg, &state);
    if (!r.ok()) {
      std::printf("%-20s FAILED: %s\n", row.name,
                  r.status.ToString().c_str());
      continue;
    }
    std::printf("%-20s beta_hat: ", row.name);
    for (std::size_t j = 0; j < cfg.p; ++j) {
      std::printf("%6.2f", state.beta[j]);
    }
    std::printf("   [init %s, %s/iter]\n",
                FormatDuration(r.init_seconds).c_str(),
                FormatDuration(r.avg_iteration_seconds()).c_str());
  }
  std::printf(
      "\nEvery platform runs the same chain; the simulated costs differ\n"
      "the way Figure 2 of the paper reports (SimSQL pays hours of\n"
      "initialization for its tuple-at-a-time Gram matrix).\n");
  return 0;
}
