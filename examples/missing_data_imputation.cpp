// Missing-data imputation (paper Section 9): censor ~50% of the values of
// a mixture data set, run the GMM+imputation Gibbs sampler, and measure
// how much better the conditional-normal imputations are than zero-fill.
//
//   $ ./build/examples/missing_data_imputation

#include <cmath>
#include <cstdio>

#include "common/str_format.h"
#include "core/gmm_dataflow.h"
#include "core/workloads.h"
#include "models/imputation.h"

int main() {
  using namespace mlbench;
  using namespace mlbench::models;

  // ---- Part 1: the imputation math on known ground truth ---------------
  stats::Rng rng(11);
  Vector mu{2.0, -1.0, 4.0};
  Matrix sigma = Matrix::Identity(3);
  sigma(0, 1) = sigma(1, 0) = 0.8;  // correlated coordinates help imputation
  double rmse_imputed = 0, rmse_zero = 0;
  int n_missing = 0;
  for (int i = 0; i < 5000; ++i) {
    auto truth = stats::SampleMultivariateNormal(rng, mu, sigma);
    CensoredPoint cp = Censor(rng, *truth, 0.5);
    CensoredPoint zero_filled = cp;
    if (!ImputeMissing(rng, mu, sigma, &cp).ok()) continue;
    for (std::size_t d = 0; d < 3; ++d) {
      if (!cp.missing[d]) continue;
      rmse_imputed += std::pow(cp.x[d] - (*truth)[d], 2);
      rmse_zero += std::pow(zero_filled.x[d] - (*truth)[d], 2);
      ++n_missing;
    }
  }
  std::printf("conditional-normal imputation RMSE: %.3f\n",
              std::sqrt(rmse_imputed / n_missing));
  std::printf("zero-fill RMSE:                     %.3f\n\n",
              std::sqrt(rmse_zero / n_missing));

  // ---- Part 2: the full platform run (Figure 5's Spark row) ------------
  core::GmmExperiment exp;
  exp.config.machines = 5;
  exp.config.iterations = 3;
  exp.imputation = true;
  exp.config.data.logical_per_machine = 10e6;
  exp.config.data.actual_per_machine = 1000;
  std::printf(
      "Running GMM+imputation on the dataflow engine at paper scale\n"
      "(10M points/machine, ~50%% of values censored)...\n");
  auto r = core::RunGmmDataflow(exp, nullptr);
  if (!r.ok()) {
    std::printf("failed: %s\n", r.status.ToString().c_str());
    return 1;
  }
  std::printf(
      "simulated per-iteration %s (paper: 1:22:48 -- the changing data\n"
      "cannot be cached, so Spark re-reads it every iteration)\n",
      FormatDuration(r.avg_iteration_seconds()).c_str());
  return 0;
}
