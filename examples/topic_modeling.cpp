// Topic modeling end to end: build a small corpus with *known* topic
// structure (two disjoint vocabularies), run the non-collapsed LDA Gibbs
// sampler through the shared model library, and show that the learned
// topics separate the vocabularies -- then run the same model through a
// full platform implementation (SimSQL-style) at paper scale and print
// the simulated cluster cost.
//
//   $ ./build/examples/topic_modeling

#include <cstdio>

#include "common/str_format.h"
#include "core/lda_reldb.h"
#include "models/lda.h"

int main() {
  using namespace mlbench;
  using namespace mlbench::models;

  // ---- Part 1: the model itself, on a corpus with planted topics --------
  stats::Rng rng(7);
  LdaHyper hyper{2, 12, 0.5, 0.1};
  // Topic A uses words 0-5, topic B uses words 6-11.
  std::vector<LdaDocument> docs(60);
  for (std::size_t j = 0; j < docs.size(); ++j) {
    int topic = static_cast<int>(j % 2);
    for (int w = 0; w < 40; ++w) {
      docs[j].words.push_back(
          static_cast<std::uint32_t>(topic * 6 + rng.NextBounded(6)));
    }
    InitLdaDocument(rng, hyper, &docs[j]);
  }
  LdaParams params = SampleLdaPrior(rng, hyper);
  for (int iter = 0; iter < 50; ++iter) {
    LdaCounts counts(hyper.topics, hyper.vocab);
    for (auto& doc : docs) {
      ResampleLdaDocument(rng, hyper, params, &doc, &counts);
    }
    params = SampleLdaPosterior(rng, hyper, counts);
  }
  std::printf("learned topic-word distributions (phi):\n");
  for (std::size_t t = 0; t < hyper.topics; ++t) {
    std::printf("  topic %zu:", t);
    for (std::size_t w = 0; w < hyper.vocab; ++w) {
      std::printf(" %.2f", params.phi[t][w]);
    }
    std::printf("\n");
  }
  std::printf("(each topic concentrates on one half of the vocabulary)\n\n");

  // ---- Part 2: the same sampler at paper scale on a platform ------------
  core::LdaExperiment exp;
  exp.config.machines = 5;
  exp.config.iterations = 2;
  exp.granularity = core::TextGranularity::kSuperVertex;
  exp.config.data.actual_per_machine = 20;
  std::printf(
      "Running super-vertex LDA on the SimSQL-style engine at paper scale\n"
      "(2.5M docs/machine, 100 topics, 10k vocabulary, 5 machines)...\n");
  auto r = core::RunLdaRelDb(exp, nullptr);
  if (!r.ok()) {
    std::printf("failed: %s\n", r.status.ToString().c_str());
    return 1;
  }
  std::printf("simulated init %s, per-iteration %s (paper: 1:00:17)\n",
              FormatDuration(r.init_seconds).c_str(),
              FormatDuration(r.avg_iteration_seconds()).c_str());
  return 0;
}
