#pragma once

#include <cstdint>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "exec/parallel_for.h"
#include "gas/graph.h"
#include "sim/cluster_sim.h"
#include "sim/cost_profile.h"
#include "sim/faults.h"

/// \file engine.h
/// The GraphLab-like gather-apply-scatter engine (paper Section 4.3).
///
/// The engine is pull-based and asynchronous: each vertex gathers views of
/// its neighbors, folds them, applies an update, and signals. Two modeled
/// behaviours define it (both straight from the paper):
///
///  * During a sweep the engine simultaneously materializes, for every
///    active vertex, the gathered copies of its neighbors' views ("GraphLab
///    seems to simultaneously materialize one 50KB copy of the model for
///    each data point, which quickly exhausts the available memory").
///    Gather views are charged against the host machine's RAM; naive codes
///    fail exactly the way the paper's did, and super-vertex codes fit.
///
///  * Asynchronous execution has no barrier; a sweep costs total work
///    divided by the cluster's cores at an async utilization factor.
///
/// Boot-up of large clusters is unreliable (footnote to Fig. 1(b)): Boot()
/// fails above GasCosts::max_bootable_machines.

namespace mlbench::gas {

/// Process-wide default for batched gather dispatch (DESIGN.md §14).
/// Batched is on unless MLBENCH_GAS_SCALAR is set in the environment;
/// tests and benches flip it programmatically via SetDefaultBatchedGather.
/// Inline-function statics are a single instance across TUs, mirroring
/// the reldb Database knob pattern.
inline bool& BatchedGatherDefaultFlag() {
  static bool flag = std::getenv("MLBENCH_GAS_SCALAR") == nullptr;
  return flag;
}
inline bool DefaultBatchedGather() { return BatchedGatherDefaultFlag(); }
inline void SetDefaultBatchedGather(bool on) {
  BatchedGatherDefaultFlag() = on;
}

/// User program: gather a value from each neighbor, fold, apply.
///
/// `VData` is the vertex payload (typically a variant over the model's
/// vertex kinds); `GatherT` is the folded gather type.
template <typename VData, typename GatherT>
class GasProgram {
 public:
  virtual ~GasProgram() = default;

  /// Extracts the neighbor's contribution to `center`'s gather.
  virtual GatherT Gather(const typename Graph<VData>::Vertex& center,
                         const typename Graph<VData>::Vertex& neighbor) = 0;

  /// Folds two gather values (commutative + associative).
  virtual GatherT Merge(GatherT a, const GatherT& b) = 0;

  /// Batched gather: fill `out[0..count)` for one contiguous span of
  /// `center`'s edges (`neighbors` points into the graph's CSR image, in
  /// edge order). The engine left-folds the filled elements with `Merge`
  /// in edge order exactly as it folds per-edge `Gather` results, so the
  /// contract is: the fold over `out` must be bit-identical to the fold
  /// over per-edge gathers. The default keeps programs working unported.
  ///
  /// Overrides may pre-aggregate a span's content into its first element
  /// and leave the rest as `Merge` identities — but only content whose
  /// fold is placement/overwrite (model rows) or touches each position at
  /// most once over the whole neighborhood (one-hot scatters): 0 + x is
  /// bitwise x for the non-negative values flowing here. Additive content
  /// (counts, sufficient statistics, residuals) must stay per-edge, since
  /// pre-folding a chunk changes the FP association of the global fold.
  /// Elements past the first may also *share* immutable state (e.g. a
  /// neighbor's exported shared_ptr): the engine fold only ever mutates
  /// the accumulator it moved out of the very first element, and reads
  /// every later element const.
  ///
  /// This and SampleBatch bodies run inside engine worker chunks; mlint
  /// treats them as parallel callees (no sim charges inside).
  virtual void GatherBatch(const typename Graph<VData>::Vertex& center,
                           const Graph<VData>& graph,
                           const std::size_t* neighbors, std::size_t count,
                           GatherT* out) {
    for (std::size_t j = 0; j < count; ++j) {
      out[j] = Gather(center, graph.vertex(neighbors[j]));
    }
  }

  /// Updates the center vertex from its folded gather.
  virtual void Apply(typename Graph<VData>::Vertex& center,
                     const GatherT& total) = 0;

  /// Declared numeric work: FLOPs per logical gather edge.
  virtual double GatherFlopsPerEdge() const { return 0; }
  /// Declared numeric work: FLOPs per logical vertex apply.
  virtual double ApplyFlopsPerVertex() const { return 0; }
};

template <typename VData>
class GasEngine {
 public:
  GasEngine(sim::ClusterSim* sim, Graph<VData>* graph, sim::GasCosts costs = {})
      : sim_(sim), graph_(graph), costs_(costs) {}

  sim::ClusterSim& sim() { return *sim_; }
  Graph<VData>& graph() { return *graph_; }
  const sim::GasCosts& costs() const { return costs_; }

  /// Whether sweeps dispatch gathers in chunks (GatherBatch) or per edge
  /// (Gather). Defaults from the process-wide MLBENCH_GAS_SCALAR knob.
  bool batched() const { return batched_; }
  void set_batched(bool on) { batched_ = on; }

  /// GraphLab-style snapshotting: every `n` sweeps each machine writes its
  /// graph partition to distributed storage. On a machine crash the job
  /// restarts — the cluster re-ingests the graph (from the snapshot if one
  /// exists, from the raw input otherwise) and replays the sweeps since.
  /// `n` <= 0 (the default) disables snapshot writes, GraphLab's default
  /// configuration: a crash then loses all sweeps run so far.
  void SetSnapshotInterval(int n) { snapshot_interval_ = n; }

  /// Starts the engine: checks cluster bootability and pins the graph
  /// (vertex state + adjacency) in cluster RAM.
  Status Boot() {
    if (sim_->machines() > costs_.max_bootable_machines) {
      return Status::FailedPrecondition(
          "GraphLab would not boot at " + std::to_string(sim_->machines()) +
          " machines (max observed bootable: " +
          std::to_string(costs_.max_bootable_machines) + ")");
    }
    graph_->EnsurePlacement(sim_->machines());
    sim_->BeginPhase("gas:boot");
    std::vector<double> machine_bytes(sim_->machines(), 0.0);
    Status st;
    for (std::size_t i = 0; i < graph_->size() && st.ok(); ++i) {
      const auto& v = graph_->vertex(i);
      double bytes = v.scale * (v.state_bytes +
                                16.0 * static_cast<double>(v.out.size()));
      int m = graph_->MachineOf(i, sim_->machines());
      st = sim_->Allocate(m, bytes, "graph storage");
      if (st.ok()) {
        machine_bytes[m] += bytes;
        graph_bytes_ += bytes;
      }
    }
    for (int m = 0; m < sim_->machines(); ++m) {
      sim_->ChargeCpu(m, machine_bytes[m] / costs_.ingest_bytes_per_sec);
    }
    sim_->EndPhase();
    if (!st.ok()) {
      for (int m = 0; m < sim_->machines(); ++m) {
        sim_->Free(m, machine_bytes[m]);
      }
      graph_bytes_ = 0;
      return st;
    }
    machine_graph_bytes_ = std::move(machine_bytes);
    wall_since_snapshot_.clear();
    booted_ = true;
    return Status::OK();
  }

  /// Releases the graph from cluster RAM.
  void Shutdown() {
    if (!booted_) return;
    for (std::size_t i = 0; i < graph_->size(); ++i) {
      const auto& v = graph_->vertex(i);
      double bytes = v.scale * (v.state_bytes +
                                16.0 * static_cast<double>(v.out.size()));
      sim_->Free(graph_->MachineOf(i, sim_->machines()), bytes);
    }
    booted_ = false;
  }

  /// One full gather-apply-scatter sweep over every vertex.
  template <typename GatherT>
  Status RunSweep(GasProgram<VData, GatherT>& program,
                  const std::string& name = "sweep") {
    MLBENCH_CHECK_MSG(booted_, "engine not booted");
    const int machines = sim_->machines();
    // Build the placement memo from this serial section: the phase-1
    // reduce below calls MachineOf per vertex *and* per edge from worker
    // chunks, and the memo must not be built racily from inside them.
    graph_->EnsurePlacement(machines);
    sim_->BeginPhase("gas:" + name);
    sim_->ChargeFixed(costs_.sweep_launch_s);

    // Snapshot write: every machine flushes its graph partition to
    // distributed storage inside the sweep (GraphLab stops the world to
    // snapshot). Sweep 0's snapshot doubles as the initial consistent
    // image. Charged whenever snapshotting is on, faults or not — the
    // overhead-vs-interval tradeoff is part of the fault model.
    const std::int64_t unit = sweep_index_++;
    if (snapshot_interval_ > 0 && unit % snapshot_interval_ == 0) {
      for (int m = 0; m < machines; ++m) {
        sim_->ChargeCpu(m, machine_graph_bytes_[m] /
                               sim_->spec().machine.disk_bytes_per_sec);
      }
      wall_since_snapshot_.clear();
    }

    // Fault schedule for this sweep. GraphLab has no speculative
    // execution and no per-task retry inside a sweep: a straggler simply
    // holds the async engine's locks longer, a failed view transfer is
    // retried by the RPC layer, and a machine crash kills the whole job
    // (recovery is charged after the sweep completes, below).
    sim::FaultInjector* inj = sim_->faults();
    const bool faults_on = inj != nullptr && inj->active();
    int worst_crash = 0;
    int crash_machine = -1;
    if (faults_on) {
      const sim::FaultPlan& plan = inj->plan();
      const sim::RetryPolicy& retry = inj->retry();
      for (int m = 0; m < machines; ++m) {
        if (int crashes = plan.CrashCountAt(unit, m); crashes > 0) {
          if (retry.Exhausted(crashes)) {
            sim_->EndPhase();
            return Status::Unavailable(
                "machine " + std::to_string(m) + " failed " +
                std::to_string(crashes) + " restarts of GAS sweep " +
                std::to_string(unit));
          }
          if (crashes > worst_crash) {
            worst_crash = crashes;
            crash_machine = m;
          }
        }
        if (double f = plan.StragglerFactorAt(unit, m); f > 1.0) {
          sim_->ScalePhaseCpu(m, f);
          inj->RecordRecovery(
              {sim::FaultKind::kStraggler, "gas:sweep", unit, m, 0.0});
        }
        if (int sends = plan.SendFailureCountAt(unit, m); sends > 0) {
          if (retry.Exhausted(sends)) {
            sim_->EndPhase();
            return Status::Unavailable(
                "machine " + std::to_string(m) + " view transfer failed " +
                std::to_string(sends) + " attempts in GAS sweep " +
                std::to_string(unit));
          }
          sim_->ScalePhaseNet(m, 1.0 + static_cast<double>(sends));
          double backoff = retry.BackoffSeconds(sends);
          sim_->ChargeFixed(backoff);
          inj->RecordRecovery(
              {sim::FaultKind::kSendFailure, "gas:sweep", unit, m, backoff});
        }
      }
    }

    // Phase 1 of the model: the engine activates all vertices and
    // materializes their gather views concurrently.
    // Two observed materialization behaviours drive GraphLab's failures:
    //  * scaled data vertices keep a per-logical-vertex gather cache (the
    //    paper's GMM: "one 50KB copy of the model for each data point");
    //  * model-sized (scale-1) vertices' machines buffer every remote
    //    exporter's arriving view before folding (the paper's HMM: counts
    //    "arrive at a state vertex from each of the 10,000 super
    //    vertices" and 100 GB materializes).
    // Pure accounting, so it runs as a chunked reduction over vertices:
    // per-chunk partials fold in chunk-index order, making the totals a
    // function of the chunking (fixed by kVertexGrain) and never of the
    // thread count.
    struct Residency {
      std::vector<double> view_bytes;
      double total_core_s = 0;
      double net_bytes_total = 0;
    };
    Residency res = exec::ParallelReduce<Residency>(
        static_cast<std::int64_t>(graph_->size()), kVertexGrain,
        Residency{std::vector<double>(machines, 0.0), 0, 0},
        [&](const exec::Chunk& chunk) {
          Residency part{std::vector<double>(machines, 0.0), 0, 0};
          std::vector<bool> touched(machines, false);
          for (std::int64_t c = chunk.begin; c < chunk.end; ++c) {
            std::size_t i = static_cast<std::size_t>(c);
            const auto& v = graph_->vertex(i);
            int home = graph_->MachineOf(i, machines);
            double in_view = 0;
            for (std::size_t nidx : v.out) {
              const auto& nbr = graph_->vertex(nidx);
              in_view += nbr.export_bytes * nbr.scale;
              part.total_core_s += costs_.per_gather_edge_s * v.scale * nbr.scale;
            }
            if (v.scale > 1.0) {
              // Per-logical-consumer gather cache.
              part.view_bytes[home] += costs_.gather_residency * in_view * v.scale;
            }
            part.total_core_s += costs_.per_apply_s * v.scale;
            // Exporter side: this vertex's view ships once per machine
            // hosting neighbors (mirror replication) and is buffered there
            // when the consumer is a scale-1 vertex.
            std::fill(touched.begin(), touched.end(), false);
            int remote = 0;
            for (std::size_t nidx : v.out) {
              int nm = graph_->MachineOf(nidx, machines);
              if (nm != home && !touched[nm]) {
                touched[nm] = true;
                ++remote;
              }
            }
            part.net_bytes_total += v.export_bytes * remote;
          }
          return part;
        },
        [&](Residency acc, Residency part) {
          for (int m = 0; m < machines; ++m) {
            acc.view_bytes[m] += part.view_bytes[m];
          }
          acc.total_core_s += part.total_core_s;
          acc.net_bytes_total += part.net_bytes_total;
          return acc;
        });
    std::vector<double> view_bytes = std::move(res.view_bytes);
    double total_core_s = res.total_core_s;
    double net_bytes_total = res.net_bytes_total;
    // Arriving-view buffers at machines hosting scale-1 consumers: every
    // exporter's logical views land once per such machine.
    {
      std::vector<bool> hosts_model_consumer(machines, false);
      for (std::size_t i = 0; i < graph_->size(); ++i) {
        const auto& v = graph_->vertex(i);
        if (v.scale <= 1.0 && !v.out.empty()) {
          hosts_model_consumer[graph_->MachineOf(i, machines)] = true;
        }
      }
      for (std::size_t i = 0; i < graph_->size(); ++i) {
        const auto& v = graph_->vertex(i);
        if (v.scale <= 1.0) continue;  // exporters: scaled data vertices
        bool consumer_is_model = false;
        for (std::size_t nidx : v.out) {
          if (graph_->vertex(nidx).scale <= 1.0) {
            consumer_is_model = true;
            break;
          }
        }
        if (!consumer_is_model) continue;
        for (int m = 0; m < machines; ++m) {
          if (hosts_model_consumer[m]) {
            view_bytes[m] +=
                costs_.gather_residency * v.export_bytes * v.scale;
          }
        }
      }
    }
    for (int m = 0; m < machines; ++m) {
      Status st = sim_->Allocate(m, view_bytes[m], "gather views");
      if (!st.ok()) {
        for (int r = 0; r < m; ++r) sim_->Free(r, view_bytes[r]);
        sim_->EndPhase();
        return st;
      }
    }

    // Phase 2: actually run the user program on the actual vertices.
    //
    // The outer vertex loop stays serial on purpose: GraphLab's engine (and
    // our programs, e.g. the GMM where cluster vertices must Apply before
    // data vertices gather the fresh model) relies on the Gauss-Seidel
    // sweep order. Host parallelism goes *inside* a vertex instead: when a
    // vertex has many edges (the super-vertex / hub layouts that dominate
    // sweep time), its gathers — pure reads of two vertices — are
    // materialized across the pool into an edge-indexed buffer, then folded
    // serially in edge order. The fold order matches the streaming serial
    // loop exactly, so results are bit-identical at any thread count.
    //
    // Dispatch granularity is the only difference between the two host
    // paths: batched (the default) issues one GatherBatch virtual call per
    // edge chunk over the graph's CSR spans; scalar (MLBENCH_GAS_SCALAR=1
    // or set_batched(false)) issues one Gather virtual call per edge. The
    // GatherBatch contract (see GasProgram) makes the folded results
    // bit-identical between the two.
    double flops = 0;
    // The per-vertex gather buffer is leased from the thread-local scratch
    // pool: it grows to the widest neighborhood once and is reused across
    // vertices *and* sweeps (the old function-local vector re-grew every
    // sweep).
    exec::ScratchVec<GatherT> gathered_lease;
    std::vector<GatherT>& gathered = gathered_lease.get();
    for (std::size_t i = 0; i < graph_->size(); ++i) {
      auto& v = graph_->vertex(i);
      if (v.out.empty()) continue;
      const typename Graph<VData>::NeighborSpan nbrs = graph_->Neighbors(i);
      const std::int64_t n_edges = static_cast<std::int64_t>(nbrs.count);
      // Edge-chunk grain via the deterministic policy (pure in the edge
      // count). Grain changes cannot perturb results here: the scalar
      // path folds individual `gathered` elements in edge order whatever
      // the chunking, and GatherBatch's contract (see GasProgram) makes
      // any span decomposition fold bit-identically to the per-edge one
      // (vertex_batch_test pins that equivalence).
      const std::int64_t edge_grain =
          exec::GrainFor(n_edges, exec::CostHint::kNormal);
      GatherT acc{};
      if (n_edges >= kEdgeParallelThreshold) {
        gathered.clear();
        gathered.resize(static_cast<std::size_t>(n_edges));
        exec::ParallelFor(n_edges, edge_grain, [&](const exec::Chunk& chunk) {
          if (batched_) {
            program.GatherBatch(
                v, *graph_, nbrs.idx + chunk.begin,
                static_cast<std::size_t>(chunk.end - chunk.begin),
                gathered.data() + chunk.begin);
          } else {
            for (std::int64_t e = chunk.begin; e < chunk.end; ++e) {
              std::size_t j = static_cast<std::size_t>(e);
              gathered[j] = program.Gather(v, graph_->vertex(nbrs.idx[j]));
            }
          }
        });
        acc = std::move(gathered[0]);
        for (std::size_t j = 1; j < gathered.size(); ++j) {
          acc = program.Merge(std::move(acc), gathered[j]);
        }
      } else if (batched_) {
        // One batch spanning the whole (small) neighborhood; materialize
        // then fold — identical order to the streaming loop below because
        // gathers are pure and the fold is the same left fold.
        gathered.clear();
        gathered.resize(static_cast<std::size_t>(n_edges));
        program.GatherBatch(v, *graph_, nbrs.idx, nbrs.count,
                            gathered.data());
        acc = std::move(gathered[0]);
        for (std::size_t j = 1; j < gathered.size(); ++j) {
          acc = program.Merge(std::move(acc), gathered[j]);
        }
      } else {
        bool first = true;
        for (std::size_t nidx : v.out) {
          GatherT g = program.Gather(v, graph_->vertex(nidx));
          if (first) {
            acc = std::move(g);
            first = false;
          } else {
            acc = program.Merge(std::move(acc), g);
          }
        }
      }
      program.Apply(v, acc);
      // Flops accounting streams the CSR scale array instead of re-walking
      // the neighbor vertex structs a second time. Hoisting the per-edge
      // common factor is exact (the scalar loop evaluated the same
      // left-associated product), and the per-edge additions happen in the
      // same order — charges are bit-identical. A factored per-vertex
      // scale *sum* would not be: sum(cv * s_j) != cv * sum(s_j) in
      // floating point.
      const double cv = program.GatherFlopsPerEdge() * v.scale;
      for (std::size_t j = 0; j < nbrs.count; ++j) {
        flops += cv * nbrs.scale[j];
      }
      flops += program.ApplyFlopsPerVertex() * v.scale;
    }
    total_core_s += flops * sim::CppModel().flop_s;

    // Asynchronous execution: no barrier, utilization-scaled cores --
    // bounded by the number of vertices (a vertex's apply is sequential,
    // so very coarse super-vertex graphs cannot use every core). The
    // logical-vertex total is memoized per graph version: scales are
    // fixed at AddVertex (the CSR's invariant), and reusing the one
    // serial fold is bit-identical to recomputing it.
    if (logical_vertices_version_ != graph_->version() + 1) {
      double sum = 0;
      for (std::size_t i = 0; i < graph_->size(); ++i) {
        sum += graph_->vertex(i).scale;
      }
      logical_vertices_cache_ = sum;
      logical_vertices_version_ = graph_->version() + 1;
    }
    const double logical_vertices = logical_vertices_cache_;
    double usable =
        std::min<double>(sim_->spec().total_cores(), logical_vertices);
    sim_->ChargeCpuAllMachines(total_core_s /
                               (usable * costs_.async_core_utilization));
    for (int m = 0; m < machines; ++m) {
      sim_->ChargeNetwork(m, net_bytes_total / machines);
    }
    for (int m = 0; m < machines; ++m) sim_->Free(m, view_bytes[m]);
    double wall = sim_->EndPhase();
    wall_since_snapshot_.push_back(wall);

    // Crash recovery: GraphLab aborts the whole job when a machine dies.
    // The restart re-ingests the graph on every machine (from the last
    // snapshot if snapshotting is on, from the raw input otherwise) and
    // replays the sweeps since that snapshot. Recovery is charge-only: it
    // never re-runs user code, so RNG draws and results are untouched.
    if (faults_on && worst_crash > 0) {
      sim_->BeginPhase("gas:recovery");
      sim_->ChargeFixed(inj->retry().BackoffSeconds(worst_crash));
      for (int m = 0; m < machines; ++m) {
        sim_->ChargeCpu(m, machine_graph_bytes_[m] /
                               costs_.ingest_bytes_per_sec);
      }
      double replay = 0;
      for (double w : wall_since_snapshot_) replay += w;
      sim_->ChargeFixed(replay * worst_crash);
      double rt = sim_->EndPhase();
      inj->RecordRecovery(
          {sim::FaultKind::kCrash, "gas:sweep", unit, crash_machine, rt});
    }
    return Status::OK();
  }

  /// GraphLab's map_reduce_vertices: folds a value over all vertices
  /// (used by the Lasso code to compute invariant statistics up front).
  /// Runs serially: callers pass side-effecting map functions whose
  /// evaluation order is observable, so the fold must stay sequential.
  template <typename T, typename MapFn, typename ReduceFn>
  T MapReduceVertices(MapFn map, ReduceFn reduce, T init,
                      double flops_per_vertex = 0,
                      const std::string& name = "map_reduce_vertices") {
    sim_->BeginPhase("gas:" + name);
    sim_->ChargeFixed(costs_.sweep_launch_s);
    T acc = std::move(init);
    double total_core_s = 0;
    for (std::size_t i = 0; i < graph_->size(); ++i) {
      const auto& v = graph_->vertex(i);
      acc = reduce(std::move(acc), map(v));
      total_core_s += v.scale * (costs_.per_apply_s +
                                 flops_per_vertex * sim::CppModel().flop_s);
    }
    sim_->ChargeParallelCpu(total_core_s / costs_.async_core_utilization);
    sim_->EndPhase();
    return acc;
  }

  /// GraphLab's transform_vertices: in-place update of every vertex. The
  /// transform touches only its own vertex, so chunks run across the host
  /// pool; per-chunk core-second partials fold in chunk-index order.
  template <typename Fn>
  void TransformVertices(Fn fn, double flops_per_vertex = 0,
                         const std::string& name = "transform_vertices") {
    sim_->BeginPhase("gas:" + name);
    sim_->ChargeFixed(costs_.sweep_launch_s);
    double total_core_s = exec::ParallelReduce<double>(
        static_cast<std::int64_t>(graph_->size()), kVertexGrain, 0.0,
        [&](const exec::Chunk& chunk) {
          double part = 0;
          for (std::int64_t c = chunk.begin; c < chunk.end; ++c) {
            auto& v = graph_->vertex(static_cast<std::size_t>(c));
            fn(v);
            part += v.scale * (costs_.per_apply_s +
                               flops_per_vertex * sim::CppModel().flop_s);
          }
          return part;
        },
        [](double acc, double part) { return acc + part; });
    sim_->ChargeParallelCpu(total_core_s / costs_.async_core_utilization);
    sim_->EndPhase();
  }

  bool booted() const { return booted_; }

 private:
  /// Vertices per accounting / transform chunk (pure function of the
  /// vertex count — never of the thread count). FROZEN: the residency and
  /// transform reductions fold per-chunk floating-point partials in
  /// chunk-index order, so their results are a function of this chunking;
  /// the fault-parity goldens were recorded against it. Do not switch
  /// these loops to GrainFor without re-deriving the goldens.
  static constexpr std::int64_t kVertexGrain = 256;
  /// Minimum edge count before a vertex's gathers fan out across the
  /// pool. The edge-chunk grain itself comes from exec::GrainFor (safe:
  /// see the sweep loop comment).
  static constexpr std::int64_t kEdgeParallelThreshold = 512;

  sim::ClusterSim* sim_;
  Graph<VData>* graph_;
  sim::GasCosts costs_;
  bool batched_ = DefaultBatchedGather();
  bool booted_ = false;
  double graph_bytes_ = 0;
  /// Sweeps between snapshot writes; <= 0 disables snapshotting.
  int snapshot_interval_ = 0;
  /// Fault-schedule unit of the next sweep (counts every RunSweep call).
  std::int64_t sweep_index_ = 0;
  /// Graph-partition bytes per machine (snapshot write / reload charges).
  std::vector<double> machine_graph_bytes_;
  /// Wall time of each sweep since the last snapshot: the replay cost a
  /// crash pays on restart.
  std::vector<double> wall_since_snapshot_;
  /// Memoized sum of vertex scales, keyed on graph version + 1 (0 =
  /// unset); see RunSweep.
  double logical_vertices_cache_ = 0;
  std::uint64_t logical_vertices_version_ = 0;
};

}  // namespace mlbench::gas
