#pragma once

#include <cstdint>
#include <vector>

#include "common/logging.h"

/// \file graph.h
/// Distributed graph storage for the GraphLab-like GAS engine (paper
/// Section 4.3).
///
/// Vertices carry user data plus two accounting fields: `scale` (logical
/// vertices represented by this actual vertex — data vertices are sampled,
/// model vertices are exact) and `export_bytes` (the size of the view this
/// vertex exposes to neighbors during gather, which drives GraphLab's
/// memory behaviour). Vertices are hash-placed on machines; the resulting
/// imbalance for small vertex classes (20 HMM state vertices over 20
/// machines) is part of what the simulation reproduces.

namespace mlbench::gas {

using VertexId = std::int64_t;

template <typename VData>
class Graph {
 public:
  struct Vertex {
    VertexId id;
    VData data;
    /// Logical vertices this actual vertex stands for.
    double scale = 1.0;
    /// Bytes of the view exported to gathering neighbors (per logical
    /// vertex).
    double export_bytes = 64;
    /// Resident bytes of the vertex's own state (per logical vertex).
    double state_bytes = 64;
    std::vector<std::size_t> out;  ///< indices of neighbors (undirected)
  };

  /// Adds a vertex; ids must be unique and are assigned by the caller.
  std::size_t AddVertex(VertexId id, VData data, double scale,
                        double state_bytes, double export_bytes) {
    Vertex v;
    v.id = id;
    v.data = std::move(data);
    v.scale = scale;
    v.state_bytes = state_bytes;
    v.export_bytes = export_bytes;
    vertices_.push_back(std::move(v));
    return vertices_.size() - 1;
  }

  /// Adds an undirected edge between vertex slots `a` and `b`.
  void AddEdge(std::size_t a, std::size_t b) {
    MLBENCH_CHECK(a < vertices_.size() && b < vertices_.size());
    vertices_[a].out.push_back(b);
    vertices_[b].out.push_back(a);
  }

  std::size_t size() const { return vertices_.size(); }
  Vertex& vertex(std::size_t i) { return vertices_[i]; }
  const Vertex& vertex(std::size_t i) const { return vertices_[i]; }
  std::vector<Vertex>& vertices() { return vertices_; }
  const std::vector<Vertex>& vertices() const { return vertices_; }

  /// Machine hosting vertex slot `i` under hash placement.
  int MachineOf(std::size_t i, int machines) const {
    std::uint64_t h = static_cast<std::uint64_t>(vertices_[i].id) *
                      0x9E3779B97F4A7C15ULL;
    h ^= h >> 29;
    return static_cast<int>(h % static_cast<std::uint64_t>(machines));
  }

 private:
  std::vector<Vertex> vertices_;
};

}  // namespace mlbench::gas
