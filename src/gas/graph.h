#pragma once

#include <cstdint>
#include <vector>

#include "common/logging.h"

/// \file graph.h
/// Distributed graph storage for the GraphLab-like GAS engine (paper
/// Section 4.3).
///
/// Vertices carry user data plus two accounting fields: `scale` (logical
/// vertices represented by this actual vertex — data vertices are sampled,
/// model vertices are exact) and `export_bytes` (the size of the view this
/// vertex exposes to neighbors during gather, which drives GraphLab's
/// memory behaviour). Vertices are hash-placed on machines; the resulting
/// imbalance for small vertex classes (20 HMM state vertices over 20
/// machines) is part of what the simulation reproduces.
///
/// Alongside the per-vertex adjacency lists the graph keeps a lazily built
/// CSR image of them (flat neighbor indices plus a parallel array of the
/// neighbors' logical scales, both in per-vertex edge order). The engine's
/// batched sweep hands contiguous spans of it to `GasProgram::GatherBatch`
/// and streams the scale array for flops accounting instead of re-walking
/// the vertex structs. The image is invalidated by any graph mutation
/// (AddVertex / AddEdge) and rebuilt on next use; vertex *data* mutations
/// (what Apply and TransformVertices do) never touch it. Vertex scales are
/// fixed at AddVertex time by every driver, so the cached scale copies
/// stay valid for the life of the topology.

namespace mlbench::gas {

using VertexId = std::int64_t;

template <typename VData>
class Graph {
 public:
  struct Vertex {
    VertexId id;
    VData data;
    /// Logical vertices this actual vertex stands for.
    double scale = 1.0;
    /// Bytes of the view exported to gathering neighbors (per logical
    /// vertex).
    double export_bytes = 64;
    /// Resident bytes of the vertex's own state (per logical vertex).
    double state_bytes = 64;
    std::vector<std::size_t> out;  ///< indices of neighbors (undirected)
  };

  /// Contiguous view of one vertex's neighborhood in the CSR image:
  /// neighbor slot indices and the matching neighbor scales, both in the
  /// vertex's edge order. Pointers stay valid until the next mutation.
  struct NeighborSpan {
    const std::size_t* idx = nullptr;
    const double* scale = nullptr;
    std::size_t count = 0;
  };

  /// Adds a vertex; ids must be unique and are assigned by the caller.
  std::size_t AddVertex(VertexId id, VData data, double scale,
                        double state_bytes, double export_bytes) {
    Vertex v;
    v.id = id;
    v.data = std::move(data);
    v.scale = scale;
    v.state_bytes = state_bytes;
    v.export_bytes = export_bytes;
    vertices_.push_back(std::move(v));
    csr_valid_ = false;
    ++version_;
    return vertices_.size() - 1;
  }

  /// Adds an undirected edge between vertex slots `a` and `b`.
  void AddEdge(std::size_t a, std::size_t b) {
    MLBENCH_CHECK(a < vertices_.size() && b < vertices_.size());
    vertices_[a].out.push_back(b);
    vertices_[b].out.push_back(a);
    csr_valid_ = false;
    ++version_;
  }

  /// Bumped by every structural mutation (AddVertex / AddEdge). Engines
  /// key topology-derived caches on it; like the CSR's cached neighbor
  /// scales, such caches may also rely on `scale` (fixed at AddVertex by
  /// every driver) but must not depend on mutable accounting fields
  /// (export_bytes / state_bytes), which tests tweak in place.
  std::uint64_t version() const { return version_; }

  /// CSR view of vertex `i`'s adjacency, (re)building the flat image if a
  /// mutation invalidated it. Not thread-safe against the first call —
  /// the engine triggers the build from its serial sweep loop before any
  /// spans cross into worker chunks.
  NeighborSpan Neighbors(std::size_t i) const {
    if (!csr_valid_) BuildCsr();
    std::size_t begin = csr_offsets_[i];
    return {csr_adj_.data() + begin, csr_nbr_scale_.data() + begin,
            csr_offsets_[i + 1] - begin};
  }

  std::size_t size() const { return vertices_.size(); }
  Vertex& vertex(std::size_t i) { return vertices_[i]; }
  const Vertex& vertex(std::size_t i) const { return vertices_[i]; }
  std::vector<Vertex>& vertices() { return vertices_; }
  const std::vector<Vertex>& vertices() const { return vertices_; }

  /// Machine hosting vertex slot `i` under hash placement. Served from
  /// the memoized placement table when EnsurePlacement(machines) has been
  /// called for this topology; the hash only runs otherwise.
  int MachineOf(std::size_t i, int machines) const {
    if (placement_machines_ == machines &&
        placement_.size() == vertices_.size()) {
      return placement_[i];
    }
    return HashMachine(i, machines);
  }

  /// Builds (or refreshes) the placement memo for `machines`. Ids are
  /// immutable, so the table stays valid until a vertex is added or the
  /// machine count changes. Call from serial code only — the engines
  /// build it at sweep start, before MachineOf races across worker
  /// chunks, exactly like the CSR build.
  void EnsurePlacement(int machines) const {
    if (placement_machines_ == machines &&
        placement_.size() == vertices_.size()) {
      return;
    }
    placement_.resize(vertices_.size());
    for (std::size_t i = 0; i < vertices_.size(); ++i) {
      placement_[i] = HashMachine(i, machines);
    }
    placement_machines_ = machines;
  }

 private:
  int HashMachine(std::size_t i, int machines) const {
    std::uint64_t h = static_cast<std::uint64_t>(vertices_[i].id) *
                      0x9E3779B97F4A7C15ULL;
    h ^= h >> 29;
    return static_cast<int>(h % static_cast<std::uint64_t>(machines));
  }
  void BuildCsr() const {
    csr_offsets_.assign(vertices_.size() + 1, 0);
    std::size_t edges = 0;
    for (std::size_t i = 0; i < vertices_.size(); ++i) {
      csr_offsets_[i] = edges;
      edges += vertices_[i].out.size();
    }
    csr_offsets_[vertices_.size()] = edges;
    csr_adj_.resize(edges);
    csr_nbr_scale_.resize(edges);
    for (std::size_t i = 0; i < vertices_.size(); ++i) {
      std::size_t at = csr_offsets_[i];
      for (std::size_t nidx : vertices_[i].out) {
        csr_adj_[at] = nidx;
        csr_nbr_scale_[at] = vertices_[nidx].scale;
        ++at;
      }
    }
    csr_valid_ = true;
  }

  std::vector<Vertex> vertices_;
  std::uint64_t version_ = 0;
  // Lazily built CSR image of the adjacency lists (see file comment).
  mutable std::vector<std::size_t> csr_offsets_;
  mutable std::vector<std::size_t> csr_adj_;
  mutable std::vector<double> csr_nbr_scale_;
  mutable bool csr_valid_ = false;
  // Memoized hash placement (see EnsurePlacement).
  mutable std::vector<int> placement_;
  mutable int placement_machines_ = 0;
};

}  // namespace mlbench::gas
