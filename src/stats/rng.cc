#include "stats/rng.h"

namespace mlbench::stats {

namespace {

std::uint64_t SplitMix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
}

std::uint64_t Rng::NextU64() {
  const std::uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

std::uint64_t Rng::NextBounded(std::uint64_t bound) {
  if (bound == 0) return 0;
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    std::uint64_t r = NextU64();
    if (r >= threshold) return r % bound;
  }
}

Rng Rng::Split(std::uint64_t index) const {
  // Mix the base seed with the stream index through splitmix to decorrelate.
  std::uint64_t x = seed_ ^ (0xA3EC647659359ACDULL * (index + 1));
  std::uint64_t derived = SplitMix64(x);
  return Rng(derived);
}

}  // namespace mlbench::stats
