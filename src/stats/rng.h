#pragma once

#include <cstdint>

/// \file rng.h
/// Deterministic pseudo-random number generation.
///
/// All randomness in the benchmark flows through Rng (xoshiro256++ seeded
/// via splitmix64). Engines give each partition / vertex its own stream via
/// Split(), so results are independent of execution order and thread count.

namespace mlbench::stats {

class Rng {
 public:
  /// Seeds the generator; equal seeds yield equal streams.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit value.
  std::uint64_t NextU64();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform integer in [0, bound) with rejection to avoid modulo bias.
  std::uint64_t NextBounded(std::uint64_t bound);

  /// Derives an independent stream for logical substream `index`.
  ///
  /// Split streams are stable: Split(i) depends only on this generator's
  /// seed and i, not on how many values have been drawn.
  Rng Split(std::uint64_t index) const;

 private:
  std::uint64_t s_[4];
  std::uint64_t seed_;
};

}  // namespace mlbench::stats
