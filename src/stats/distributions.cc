#include "stats/distributions.h"

#include <cmath>
#include <numbers>

#include "common/logging.h"

namespace mlbench::stats {

double SampleStandardNormal(Rng& rng) {
  // Box-Muller; draw u1 away from zero to keep log finite.
  double u1;
  do {
    u1 = rng.NextDouble();
  } while (u1 <= 0.0);
  double u2 = rng.NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

double SampleNormal(Rng& rng, double mean, double stddev) {
  return mean + stddev * SampleStandardNormal(rng);
}

double SampleGamma(Rng& rng, double shape, double scale) {
  MLBENCH_CHECK_MSG(shape > 0 && scale > 0, "gamma parameters must be > 0");
  if (shape < 1.0) {
    // Boost to shape+1 and apply the standard power correction.
    double u;
    do {
      u = rng.NextDouble();
    } while (u <= 0.0);
    return SampleGamma(rng, shape + 1.0, scale) * std::pow(u, 1.0 / shape);
  }
  // Marsaglia-Tsang squeeze method.
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x = SampleStandardNormal(rng);
    double v = 1.0 + c * x;
    if (v <= 0.0) continue;
    v = v * v * v;
    double u = rng.NextDouble();
    if (u < 1.0 - 0.0331 * x * x * x * x) return scale * d * v;
    if (u > 0.0 &&
        std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return scale * d * v;
    }
  }
}

double SampleInverseGamma(Rng& rng, double shape, double rate) {
  return rate / SampleGamma(rng, shape, 1.0);
}

double SampleBeta(Rng& rng, double a, double b) {
  double x = SampleGamma(rng, a, 1.0);
  double y = SampleGamma(rng, b, 1.0);
  if (x + y > 0.0) return x / (x + y);
  // Both Gamma draws underflowed to zero (tiny shapes): redo the draw in
  // log space. For shape < 1 the sampler computes G_shape as
  // G_{shape+1} * U^{1/shape}, so log G_shape = log G_{shape+1} +
  // log(U)/shape stays finite where the linear-space product flushes to
  // zero.
  auto log_gamma_draw = [&rng](double shape) {
    double u;
    do {
      u = rng.NextDouble();
    } while (u <= 0.0);
    double boosted = shape < 1.0 ? shape + 1.0 : shape;
    double lg = std::log(SampleGamma(rng, boosted, 1.0));
    if (shape < 1.0) lg += std::log(u) / shape;
    return lg;
  };
  double lx = log_gamma_draw(a);
  double ly = log_gamma_draw(b);
  // x / (x + y) = 1 / (1 + exp(ly - lx)), stable at both extremes.
  return 1.0 / (1.0 + std::exp(ly - lx));
}

double SampleExponential(Rng& rng, double rate) {
  double u;
  do {
    u = rng.NextDouble();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

double SampleInverseGaussian(Rng& rng, double mu, double lambda) {
  MLBENCH_CHECK_MSG(mu > 0 && lambda > 0, "inverse-Gaussian params must be > 0");
  double nu = SampleStandardNormal(rng);
  double y = nu * nu;
  double x = mu + (mu * mu * y) / (2.0 * lambda) -
             (mu / (2.0 * lambda)) *
                 std::sqrt(4.0 * mu * lambda * y + mu * mu * y * y);
  double u = rng.NextDouble();
  if (u <= mu / (mu + x)) return x;
  return mu * mu / x;
}

double NormalLogPdf(double x, double mean, double stddev) {
  double z = (x - mean) / stddev;
  return -0.5 * z * z - std::log(stddev) -
         0.5 * std::log(2.0 * std::numbers::pi);
}

std::size_t SampleCategorical(Rng& rng, const Vector& weights) {
  double total = 0;
  for (double w : weights) total += w;
  MLBENCH_CHECK_MSG(total > 0, "categorical weights must have positive sum");
  double u = rng.NextDouble() * total;
  double acc = 0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (u < acc) return i;
  }
  return weights.size() - 1;
}

std::size_t SampleCategorical(Rng& rng, const std::vector<double>& weights) {
  return SampleCategorical(rng, Vector(weights));
}

std::vector<std::uint64_t> SampleMultinomial(Rng& rng,
                                             const std::vector<double>& probs,
                                             std::uint64_t trials) {
  std::vector<std::uint64_t> counts(probs.size(), 0);
  Vector w(probs);
  for (std::uint64_t t = 0; t < trials; ++t) ++counts[SampleCategorical(rng, w)];
  return counts;
}

AliasTable::AliasTable(const std::vector<double>& weights) {
  Rebuild(weights);
}

void AliasTable::Rebuild(const std::vector<double>& weights) {
  const std::size_t n = weights.size();
  MLBENCH_CHECK(n > 0);
  prob_.assign(n, 0.0);
  alias_.assign(n, 0);
  double total = 0;
  for (double w : weights) {
    MLBENCH_CHECK_MSG(w >= 0, "alias weights must be non-negative");
    total += w;
  }
  MLBENCH_CHECK_MSG(total > 0, "alias weights must have positive sum");

  scaled_.resize(n);
  for (std::size_t i = 0; i < n; ++i) scaled_[i] = weights[i] * n / total;

  small_.clear();
  large_.clear();
  for (std::size_t i = 0; i < n; ++i) {
    (scaled_[i] < 1.0 ? small_ : large_)
        .push_back(static_cast<std::uint32_t>(i));
  }
  while (!small_.empty() && !large_.empty()) {
    std::uint32_t s = small_.back();
    small_.pop_back();
    std::uint32_t l = large_.back();
    large_.pop_back();
    prob_[s] = scaled_[s];
    alias_[s] = l;
    scaled_[l] = scaled_[l] + scaled_[s] - 1.0;
    (scaled_[l] < 1.0 ? small_ : large_).push_back(l);
  }
  for (std::uint32_t i : large_) prob_[i] = 1.0;
  for (std::uint32_t i : small_) prob_[i] = 1.0;
}

std::size_t AliasTable::Sample(Rng& rng) const {
  std::size_t i = rng.NextBounded(prob_.size());
  return rng.NextDouble() < prob_[i] ? i : alias_[i];
}

void AliasTable::SampleBatch(Rng& rng, std::uint32_t* out,
                             std::size_t n) const {
  const std::size_t size = prob_.size();
  const double* prob = prob_.data();
  const std::uint32_t* alias = alias_.data();
  for (std::size_t j = 0; j < n; ++j) {
    std::size_t i = rng.NextBounded(size);
    out[j] = rng.NextDouble() < prob[i]
                 ? static_cast<std::uint32_t>(i)
                 : alias[i];
  }
}

std::vector<double> ZipfWeights(std::size_t n, double s) {
  std::vector<double> w(n);
  for (std::size_t k = 0; k < n; ++k) {
    w[k] = std::pow(static_cast<double>(k + 1), -s);
  }
  return w;
}

Vector SampleDirichlet(Rng& rng, const Vector& alpha) {
  Vector g(alpha.size());
  SampleDirichlet(rng, alpha.data(), alpha.size(), g.data());
  return g;
}

void SampleDirichlet(Rng& rng, const double* alpha, std::size_t n,
                     double* out) {
  double sum = 0;
  for (std::size_t i = 0; i < n; ++i) {
    MLBENCH_CHECK_MSG(alpha[i] > 0, "Dirichlet concentration must be > 0");
    out[i] = SampleGamma(rng, alpha[i], 1.0);
    sum += out[i];
  }
  if (sum <= 0) {
    // Degenerate underflow: fall back to uniform.
    double u = 1.0 / static_cast<double>(n);
    for (std::size_t i = 0; i < n; ++i) out[i] = u;
    return;
  }
  for (std::size_t i = 0; i < n; ++i) out[i] /= sum;
}

Result<Vector> SampleMultivariateNormal(Rng& rng, const Vector& mean,
                                        const Matrix& cov) {
  MLBENCH_ASSIGN_OR_RETURN(Matrix l, linalg::Cholesky(cov));
  return SampleMultivariateNormalChol(rng, mean, l);
}

Vector SampleMultivariateNormalChol(Rng& rng, const Vector& mean,
                                    const Matrix& chol_cov) {
  const std::size_t d = mean.size();
  Vector z(d);
  for (std::size_t i = 0; i < d; ++i) z[i] = SampleStandardNormal(rng);
  Vector x = mean;
  for (std::size_t r = 0; r < d; ++r) {
    double s = 0;
    for (std::size_t c = 0; c <= r; ++c) s += chol_cov(r, c) * z[c];
    x[r] += s;
  }
  return x;
}

Result<Matrix> SampleWishart(Rng& rng, double dof, const Matrix& scale) {
  const std::size_t d = scale.rows();
  if (dof < static_cast<double>(d)) {
    return Status::InvalidArgument("Wishart dof must be >= dimension");
  }
  MLBENCH_ASSIGN_OR_RETURN(Matrix l, linalg::Cholesky(scale));
  // Bartlett: A lower-triangular with chi draws on the diagonal.
  Matrix a(d, d);
  for (std::size_t i = 0; i < d; ++i) {
    a(i, i) = std::sqrt(
        SampleGamma(rng, 0.5 * (dof - static_cast<double>(i)), 2.0));
    for (std::size_t j = 0; j < i; ++j) a(i, j) = SampleStandardNormal(rng);
  }
  Matrix la = linalg::MatMul(l, a);
  return linalg::MatMul(la, la.Transposed());
}

Result<Matrix> SampleInverseWishart(Rng& rng, double dof,
                                    const Matrix& scale) {
  MLBENCH_ASSIGN_OR_RETURN(Matrix scale_inv, linalg::InverseSpd(scale));
  MLBENCH_ASSIGN_OR_RETURN(Matrix w, SampleWishart(rng, dof, scale_inv));
  return linalg::InverseSpd(w);
}

Result<double> MultivariateNormalLogPdf(const Vector& x, const Vector& mean,
                                        const Matrix& cov) {
  const std::size_t d = x.size();
  MLBENCH_ASSIGN_OR_RETURN(Matrix l, linalg::Cholesky(cov));
  Vector diff = x - mean;
  Vector y = linalg::ForwardSubstitute(l, diff);
  double mahal = linalg::Dot(y, y);
  double logdet = 0;
  for (std::size_t i = 0; i < d; ++i) logdet += std::log(l(i, i));
  logdet *= 2.0;
  return -0.5 * (mahal + logdet +
                 static_cast<double>(d) * std::log(2.0 * std::numbers::pi));
}

}  // namespace mlbench::stats
