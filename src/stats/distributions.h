#pragma once

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"
#include "stats/rng.h"

/// \file distributions.h
/// Samplers and densities for every distribution used by the five MCMC
/// simulations in the benchmark: Normal / multivariate Normal, Gamma,
/// inverse-Gamma, Beta, Dirichlet, Categorical / Multinomial, Wishart /
/// inverse-Wishart, inverse-Gaussian, and Zipf (for the synthetic corpus).
///
/// Samplers with parameter-validity or SPD requirements return Result<>;
/// the simple ones are plain functions.

namespace mlbench::stats {

using linalg::Matrix;
using linalg::Vector;

// ---------------------------------------------------------------------------
// Scalar distributions
// ---------------------------------------------------------------------------

/// Standard normal draw (Box-Muller, one value per call).
double SampleStandardNormal(Rng& rng);

/// Normal(mean, stddev^2) draw.
double SampleNormal(Rng& rng, double mean, double stddev);

/// Gamma(shape, scale) draw via Marsaglia-Tsang; shape > 0, scale > 0.
double SampleGamma(Rng& rng, double shape, double scale);

/// InverseGamma(shape, rate): X such that 1/X ~ Gamma(shape, 1/rate).
/// Parameterized so that E[X] = rate / (shape - 1) for shape > 1.
double SampleInverseGamma(Rng& rng, double shape, double rate);

/// Beta(a, b) draw.
double SampleBeta(Rng& rng, double a, double b);

/// Exponential(rate) draw.
double SampleExponential(Rng& rng, double rate);

/// InverseGaussian(mu, lambda) draw (Michael-Schucany-Haas).
double SampleInverseGaussian(Rng& rng, double mu, double lambda);

/// Log-density of Normal(mean, stddev^2) at x.
double NormalLogPdf(double x, double mean, double stddev);

// ---------------------------------------------------------------------------
// Discrete distributions
// ---------------------------------------------------------------------------

/// Draws an index in [0, w.size()) with probability proportional to w[i].
/// Weights must be non-negative with a positive sum.
std::size_t SampleCategorical(Rng& rng, const Vector& weights);
std::size_t SampleCategorical(Rng& rng, const std::vector<double>& weights);

/// Draws counts of `trials` categorical draws over `probs` (Multinomial).
std::vector<std::uint64_t> SampleMultinomial(Rng& rng,
                                             const std::vector<double>& probs,
                                             std::uint64_t trials);

/// Walker alias table for O(1) repeated categorical sampling over a fixed
/// weight vector; used by the synthetic corpus generator (Zipf over a
/// 10,000-word dictionary).
class AliasTable {
 public:
  /// Builds the table; weights must be non-negative with positive sum.
  explicit AliasTable(const std::vector<double>& weights);

  /// Rebuilds the table for a new weight vector, reusing the existing
  /// buffers (no steady-state allocation once capacities have grown).
  void Rebuild(const std::vector<double>& weights);

  /// Draws an index in [0, size()).
  std::size_t Sample(Rng& rng) const;

  /// Draws `n` indices into out[0..n), identical to n Sample() calls.
  void SampleBatch(Rng& rng, std::uint32_t* out, std::size_t n) const;

  std::size_t size() const { return prob_.size(); }

 private:
  std::vector<double> prob_;
  std::vector<std::uint32_t> alias_;
  // Rebuild worklists, kept as members so refills are allocation-free.
  std::vector<double> scaled_;
  std::vector<std::uint32_t> small_, large_;
};

/// Zipf(s) weights over [1, n]: w_k proportional to k^-s.
std::vector<double> ZipfWeights(std::size_t n, double s);

// ---------------------------------------------------------------------------
// Vector / matrix distributions
// ---------------------------------------------------------------------------

/// Dirichlet(alpha) draw; every alpha[i] must be > 0.
Vector SampleDirichlet(Rng& rng, const Vector& alpha);

/// In-place Dirichlet(alpha) draw into out[0..n): the same draw sequence
/// and values as the Vector overload, without allocating. `alpha` and
/// `out` may alias.
void SampleDirichlet(Rng& rng, const double* alpha, std::size_t n,
                     double* out);

/// Multivariate Normal(mean, cov) draw; cov must be SPD.
Result<Vector> SampleMultivariateNormal(Rng& rng, const Vector& mean,
                                        const Matrix& cov);

/// Multivariate Normal draw given a precomputed Cholesky factor of the
/// covariance (mean + L z). Useful when many draws share one covariance.
Vector SampleMultivariateNormalChol(Rng& rng, const Vector& mean,
                                    const Matrix& chol_cov);

/// Wishart(dof, scale) draw via Bartlett decomposition.
/// Requires dof >= dimension and SPD scale.
Result<Matrix> SampleWishart(Rng& rng, double dof, const Matrix& scale);

/// InverseWishart(dof, scale): X such that X^-1 ~ Wishart(dof, scale^-1).
Result<Matrix> SampleInverseWishart(Rng& rng, double dof, const Matrix& scale);

/// Log-density of MultivariateNormal(mean, cov) at x (cov SPD).
Result<double> MultivariateNormalLogPdf(const Vector& x, const Vector& mean,
                                        const Matrix& cov);

}  // namespace mlbench::stats
