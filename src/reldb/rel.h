#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "reldb/database.h"
#include "reldb/table.h"
#include "reldb/vg_function.h"

/// \file rel.h
/// Eager relational operators over Database tables.
///
/// A Rel wraps an intermediate relation flowing through a query. Operators
/// execute immediately on the actual rows and charge the simulated cluster
/// for the logical work: per-tuple operator costs, shuffle traffic and an
/// extra MapReduce job for every wide operator (join / group-by), and
/// storage I/O for every materialization boundary — the cost structure of
/// SimSQL-on-Hadoop the paper measures.
///
/// Usage follows the SQL structure of the paper's codes:
///
///   db.BeginQuery("clus_prob[i]");
///   auto cmem = Rel::Scan(db, Database::Versioned("membership", i - 1))
///                   .GroupBy({"clus_id"}, {{AggOp::kCount, "", "count"}}, 1);
///   auto para = cmem.HashJoin(Rel::Scan(db, "cluster"),
///                             {"clus_id"}, {"clus_id"}, 1);
///   para.Project(...).VgApply(dirichlet, {}, 1)
///       .Materialize(Database::Versioned("clus_prob", i));
///   db.EndQuery();

namespace mlbench::reldb {

/// Aggregate operators for GroupBy.
enum class AggOp { kSum, kCount, kAvg, kMin, kMax };

struct Agg {
  AggOp op;
  std::string col;       ///< input column (ignored for kCount)
  std::string out_name;  ///< output column name
};

class Rel {
 public:
  /// Reads a stored table, charging the storage scan.
  static Rel Scan(Database& db, const std::string& name);

  /// Wraps a freshly built in-flight table without a read charge.
  static Rel FromTable(Database& db, Table table);

  const Table& table() const { return *table_; }
  const Schema& schema() const { return table_->schema(); }
  double scale() const { return table_->scale(); }
  double logical_rows() const { return table_->logical_rows(); }

  /// Keeps rows satisfying `pred` (narrow, pipelined).
  Rel Filter(const std::function<bool(const Tuple&)>& pred) const;

  /// Rewrites every row through `fn` into `out_schema` (narrow, pipelined).
  Rel Project(Schema out_schema,
              const std::function<Tuple(const Tuple&)>& fn) const;

  /// Hash equi-join. Output columns are the left schema followed by the
  /// right schema's non-key columns. `out_scale` gives the logical rows
  /// each actual output row stands for. By default the join is a wide
  /// operator (one more MR job, shuffles both inputs, materializes its
  /// output); `co_partitioned = true` models a map-side join of inputs
  /// already hashed on the key, which pipelines into the consumer.
  Rel HashJoin(const Rel& right, const std::vector<std::string>& left_keys,
               const std::vector<std::string>& right_keys, double out_scale,
               bool co_partitioned = false) const;

  /// Hash aggregation (wide: one MR job). Output columns are the keys
  /// followed by one column per aggregate.
  Rel GroupBy(const std::vector<std::string>& keys,
              const std::vector<Agg>& aggs, double out_scale) const;

  /// Applies a VG function once per distinct value of `group_cols`
  /// (empty = one invocation over the whole input). VG functions run in
  /// C++; `flops_per_out_tuple` declares their numeric work. Narrow.
  Rel VgApply(VgFunction& vg, const std::vector<std::string>& group_cols,
              double out_scale, double flops_per_out_tuple = 0) const;

  /// Concatenates two relations with identical schemas (narrow).
  Rel Union(const Rel& other) const;

  /// Writes this relation into the database under `name`, charging the
  /// materialization write.
  void Materialize(const std::string& name) const;

 private:
  Rel(Database* db, std::shared_ptr<Table> t) : db_(db), table_(std::move(t)) {}

  /// Charges per-tuple CPU across the cluster for `logical` tuples.
  void ChargeTuples(double logical, double per_tuple_s) const;
  /// Charges cluster-wide storage I/O of `bytes` logical bytes.
  void ChargeIo(double bytes) const;
  /// Charges a shuffle of `bytes` logical bytes across the cluster.
  void ChargeShuffle(double bytes) const;

  double TableBytes(const Table& t) const {
    return t.logical_rows() * db_->TupleBytes(t.schema().size());
  }

  Database* db_;
  std::shared_ptr<Table> table_;
};

}  // namespace mlbench::reldb
