#pragma once

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "reldb/column_batch.h"
#include "reldb/database.h"
#include "reldb/expr_vm.h"
#include "reldb/table.h"
#include "reldb/vg_function.h"

/// \file rel.h
/// Eager relational operators over Database tables.
///
/// A Rel wraps an intermediate relation flowing through a query. Operators
/// execute immediately on the actual rows and charge the simulated cluster
/// for the logical work: per-tuple operator costs, shuffle traffic and an
/// extra MapReduce job for every wide operator (join / group-by), and
/// storage I/O for every materialization boundary — the cost structure of
/// SimSQL-on-Hadoop the paper measures.
///
/// Host execution has two interchangeable engines. The row engine walks
/// vector<Tuple> directly; the columnar engine (default, see
/// Database::columnar()) runs the same operators over ColumnBatch — typed
/// contiguous arrays, selection-vector filters, index-gather projects, and
/// join/group-by hash tables keyed on packed fixed-width integers. Both
/// engines charge the simulator from logical row counts and schema widths
/// only (never from the host representation), commit host-parallel chunks
/// in chunk-index order, and invoke VG functions serially in first-seen
/// group order against the shared RNG stream — so results, draw streams
/// and simulated charges are bit-identical between engines and across
/// MLBENCH_THREADS settings. A relation whose column mixes int and double
/// values cannot be typed; those operators fall back to the row engine.
///
/// Usage follows the SQL structure of the paper's codes:
///
///   db.BeginQuery("clus_prob[i]");
///   auto cmem = Rel::Scan(db, Database::Versioned("membership", i - 1))
///                   .GroupBy({"clus_id"}, {{AggOp::kCount, "", "count"}}, 1);
///   auto para = cmem.HashJoin(Rel::Scan(db, "cluster"),
///                             {"clus_id"}, {"clus_id"}, 1);
///   para.Project(...).VgApply(dirichlet, {}, 1)
///       .Materialize(Database::Versioned("clus_prob", i));
///   db.EndQuery();

namespace mlbench::reldb {

/// Aggregate operators for GroupBy.
enum class AggOp { kSum, kCount, kAvg, kMin, kMax };

struct Agg {
  AggOp op;
  std::string col;       ///< input column (ignored for kCount)
  std::string out_name;  ///< output column name
};

/// One output column of a structured Project: a passthrough of an input
/// column, a constant, a compiled ScalarExpr, or an opaque computed double
/// lambda. Structured projects let the columnar engine share passthrough
/// columns zero-copy and fill constant/computed columns without touching
/// row storage; the row engine evaluates them per row with identical
/// results. Prefer ColExpr::Expr for computed columns — compiled programs
/// run batch-fused through the bytecode VM (expr_vm.h); ColExpr::Fn stays
/// as the fallback for expressions outside the ScalarExpr vocabulary and
/// always pays the per-row interpretation price.
struct ColExpr {
  int src = -1;           ///< passthrough input column (when >= 0)
  bool is_const = false;  ///< emit `constant` for every row
  Value constant = std::int64_t{0};
  std::shared_ptr<const ExprProgram> prog;  ///< compiled double column
  std::function<double(const Tuple&)> fn;   ///< opaque computed column

  static ColExpr Col(std::size_t idx) {
    ColExpr e;
    e.src = static_cast<int>(idx);
    return e;
  }
  static ColExpr Const(Value v) {
    ColExpr e;
    e.is_const = true;
    e.constant = v;
    return e;
  }
  static ColExpr Expr(const ScalarExpr& expr) {
    ColExpr e;
    e.prog = std::make_shared<const ExprProgram>(ExprProgram::Compile(expr));
    return e;
  }
  static ColExpr Fn(std::function<double(const Tuple&)> f) {
    ColExpr e;
    e.fn = std::move(f);
    return e;
  }
};

class Rel {
 public:
  /// Reads a stored table, charging the storage scan.
  static Rel Scan(Database& db, const std::string& name);

  /// Wraps a freshly built in-flight table without a read charge.
  static Rel FromTable(Database& db, Table table);

  /// Row form of this relation (materialized from the columnar form on
  /// first use, then cached).
  const Table& table() const { return *EnsureTable(); }

  const Schema& schema() const {
    return batch_ ? batch_->schema() : table_->schema();
  }
  double scale() const { return batch_ ? batch_->scale() : table_->scale(); }
  double logical_rows() const {
    return batch_ ? batch_->logical_rows() : table_->logical_rows();
  }
  /// True when this relation currently holds a columnar batch (parity
  /// tests assert the columnar engine actually engaged).
  bool columnar() const { return batch_ != nullptr; }

  /// Keeps rows satisfying `pred` (narrow, pipelined).
  Rel Filter(const std::function<bool(const Tuple&)>& pred) const;

  /// Keeps rows where the compiled predicate is non-zero. Same semantics
  /// and charges as the lambda form, but the columnar engine runs the
  /// bytecode VM batch-fused over the typed arrays (one dispatch per
  /// opcode per chunk) instead of materializing a Tuple per row.
  Rel Filter(const ScalarExpr& pred) const;

  /// The identity filter: keeps every row, charging exactly what a
  /// Filter whose predicate returns true charges. Used where the paper's
  /// plan scans a relation without dropping anything; shares the input
  /// representation zero-copy on both engines.
  Rel FilterAll() const;

  /// Keeps rows whose integer column `col` is one of `values`. Same
  /// semantics and charges as Filter with an AsInt membership predicate,
  /// but the columnar engine scans the typed array directly.
  Rel FilterIntIn(const std::string& col,
                  const std::vector<std::int64_t>& values) const;

  /// Rewrites every row through `fn` into `out_schema` (narrow, pipelined).
  Rel Project(Schema out_schema,
              const std::function<Tuple(const Tuple&)>& fn) const;

  /// Structured project: one ColExpr per output column (narrow, pipelined).
  Rel Project(Schema out_schema, const std::vector<ColExpr>& exprs) const;

  /// Renames columns without touching data (an identity Project; same
  /// charges). The columnar engine shares all column storage zero-copy.
  Rel Renamed(Schema out_schema) const;

  /// Hash equi-join. Output columns are the left schema followed by the
  /// right schema's non-key columns. `out_scale` gives the logical rows
  /// each actual output row stands for. By default the join is a wide
  /// operator (one more MR job, shuffles both inputs, materializes its
  /// output); `co_partitioned = true` models a map-side join of inputs
  /// already hashed on the key, which pipelines into the consumer.
  Rel HashJoin(const Rel& right, const std::vector<std::string>& left_keys,
               const std::vector<std::string>& right_keys, double out_scale,
               bool co_partitioned = false) const;

  /// Hash aggregation (wide: one MR job). Output columns are the keys
  /// followed by one column per aggregate.
  Rel GroupBy(const std::vector<std::string>& keys,
              const std::vector<Agg>& aggs, double out_scale) const;

  /// Applies a VG function once per distinct value of `group_cols`
  /// (empty = one invocation over the whole input). VG functions run in
  /// C++; `flops_per_out_tuple` declares their numeric work. Narrow.
  Rel VgApply(VgFunction& vg, const std::vector<std::string>& group_cols,
              double out_scale, double flops_per_out_tuple = 0) const;

  /// Concatenates two relations with identical schemas (narrow).
  Rel Union(const Rel& other) const;

  /// Writes this relation into the database under `name`, charging the
  /// materialization write.
  void Materialize(const std::string& name) const;

 private:
  Rel(Database* db, std::shared_ptr<Table> t) : db_(db), table_(std::move(t)) {}
  Rel(Database* db, std::shared_ptr<const ColumnBatch> b)
      : db_(db), batch_(std::move(b)) {}

  /// Lazily materializes (and caches) the row form.
  const Table* EnsureTable() const;
  /// Lazily converts (and caches) the columnar form; false when a column
  /// mixes value types (the failure is cached too).
  bool EnsureBatch() const;
  /// Whether this operator invocation should run columnar.
  bool UseColumnar() const { return db_->columnar() && EnsureBatch(); }

  /// Row-engine filter body shared by Filter and fallbacks (no charges).
  Rel RowFilter(const std::function<bool(const Tuple&)>& pred) const;

  /// Charges per-tuple CPU across the cluster for `logical` tuples.
  void ChargeTuples(double logical, double per_tuple_s) const;
  /// Charges cluster-wide storage I/O of `bytes` logical bytes.
  void ChargeIo(double bytes) const;
  /// Charges a shuffle of `bytes` logical bytes across the cluster.
  void ChargeShuffle(double bytes) const;

  /// Logical stored bytes of this relation — a function of logical rows
  /// and schema width only, never of the host representation, so charges
  /// match between engines.
  double SelfBytes() const {
    return logical_rows() * db_->TupleBytes(schema().size());
  }

  Database* db_;
  mutable std::shared_ptr<Table> table_;
  mutable std::shared_ptr<const ColumnBatch> batch_;
  mutable bool batch_failed_ = false;
};

}  // namespace mlbench::reldb
