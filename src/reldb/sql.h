#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "reldb/database.h"
#include "reldb/rel.h"
#include "reldb/vg_function.h"

/// \file sql.h
/// A SQL front end for the relational engine, covering the dialect the
/// paper's SimSQL codes are written in (Sections 5.2, 6.2, 7.2):
///
///   CREATE TABLE clus_prob_0 (clus_id, prob) AS
///   WITH diri_res AS Dirichlet
///       (SELECT clus_id, pi_prior FROM cluster)
///   SELECT diri_res.out_id, diri_res.prob
///   FROM diri_res;
///
///   CREATE VIEW mean_prior (dim_id, dim_val) AS
///   SELECT dim_id, AVG(data_val) FROM data GROUP BY dim_id;
///
/// Supported: SELECT lists with arithmetic expressions and aliases,
/// multi-table FROM with WHERE equi-join predicates (compiled to hash
/// joins) and comparison filters, GROUP BY with COUNT/SUM/AVG/MIN/MAX,
/// WITH <alias> AS <VgFunction>(<subquery>) [PER (cols)] invocations, and
/// CREATE TABLE/VIEW ... AS. Iteration-versioned names use the bracket
/// convention: "membership[i]" with the iteration bound via
/// BindIteration().
///
/// Logical-scale hints: a query can carry "/*+ scale(N) */" after SELECT
/// to declare the logical rows each output row stands for (the engine
/// cannot infer paper-scale cardinalities from syntax). Defaults: scans
/// inherit the stored table's scale, joins take the max input scale,
/// GROUP BY outputs scale 1 (model-sized aggregates).

namespace mlbench::reldb {

/// Execution context: the database plus the registered VG functions.
class SqlContext {
 public:
  explicit SqlContext(Database* db) : db_(db) {}

  Database& db() { return *db_; }

  /// Registers a VG function under the name used in queries
  /// (e.g. "Dirichlet"). The function must outlive the context.
  void RegisterVg(const std::string& name, VgFunction* vg) {
    vgs_[name] = vg;
  }

  VgFunction* FindVg(const std::string& name) const {
    auto it = vgs_.find(name);
    return it == vgs_.end() ? nullptr : it->second;
  }

  /// Executes one statement (SELECT / CREATE TABLE AS / CREATE VIEW AS).
  /// For SELECT, returns the result table; for CREATE, stores it and
  /// returns a copy. Opens and closes its own query phase.
  Result<Table> Execute(const std::string& sql);

  /// Replaces the iteration placeholders "[i]", "[i-1]", "[i+1]" in a
  /// query template with concrete versions for iteration `i`
  /// ("name[i-1]" -> "name[3]" when i = 4), matching the paper's
  /// recursively defined random tables.
  static std::string BindIteration(const std::string& sql_template, int i);

 private:
  Database* db_;
  std::map<std::string, VgFunction*> vgs_;
};

}  // namespace mlbench::reldb
