#pragma once

#include <string>
#include <vector>

#include "reldb/value.h"
#include "stats/rng.h"

/// \file vg_function.h
/// Variable-generation (VG) functions: SimSQL's randomized table-valued
/// user-defined functions (paper Section 4.2). A VG function is invoked
/// once per parameter group; each invocation consumes the group's parameter
/// tuples and emits output tuples. SimSQL's VG functions are written in
/// C++ and called from the Java engine — the per-tuple boundary-crossing
/// cost is modeled in RelDbCosts::vg_tuple_s.

namespace mlbench::reldb {

class VgFunction {
 public:
  virtual ~VgFunction() = default;

  /// Diagnostic name ("Dirichlet", "multinomial_membership", ...).
  virtual std::string name() const = 0;

  /// Schema of the tuples this function emits.
  virtual Schema output_schema() const = 0;

  /// Called by VgApply exactly once, before the first Sample invocation,
  /// with the parameter schema every invocation will use. Implementations
  /// cache column indices here so Sample never pays a per-invocation
  /// Schema::IndexOf string scan.
  virtual void BindSchema(const Schema& schema) { (void)schema; }

  /// One invocation: consumes the parameter tuples of a group (with the
  /// group's input schema) and appends output tuples.
  virtual void Sample(const std::vector<Tuple>& params, const Schema& schema,
                      stats::Rng& rng, std::vector<Tuple>* out) = 0;
};

}  // namespace mlbench::reldb
