#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "reldb/column_batch.h"
#include "reldb/value.h"
#include "stats/rng.h"

/// \file vg_function.h
/// Variable-generation (VG) functions: SimSQL's randomized table-valued
/// user-defined functions (paper Section 4.2). A VG function is invoked
/// once per parameter group; each invocation consumes the group's parameter
/// tuples and emits output tuples. SimSQL's VG functions are written in
/// C++ and called from the Java engine — the per-tuple boundary-crossing
/// cost is modeled in RelDbCosts::vg_tuple_s.
///
/// Two execution surfaces (DESIGN.md §14): the tuple-at-a-time Sample and
/// the columnar SampleBatch, which receives every invocation group of one
/// VgApply as contiguous column spans of a group-sorted ColumnBatch. The
/// SampleBatch default falls back to Sample per group, so functions opt in
/// incrementally; ported functions must consume the shared RNG in exactly
/// the per-group order the tuple path does, which is what keeps batched
/// and scalar runs bit-identical.

namespace mlbench::reldb {

/// Result sink of one SampleBatch call (all groups of one VgApply).
/// Functions emit either typed columns (set `columnar`, fill `cols` to the
/// output schema, all groups concatenated in group order) or row tuples in
/// `rows` (what the fallback default does); VgApply moves either form into
/// the operator output without another copy.
struct VgBatchOut {
  std::vector<ColumnBatch::Column> cols;
  std::vector<Tuple> rows;
  bool columnar = false;
};

class VgFunction {
 public:
  virtual ~VgFunction() = default;

  /// Diagnostic name ("Dirichlet", "multinomial_membership", ...).
  virtual std::string name() const = 0;

  /// Schema of the tuples this function emits.
  virtual Schema output_schema() const = 0;

  /// Called by VgApply exactly once, before the first Sample invocation,
  /// with the parameter schema every invocation will use. Implementations
  /// cache column indices here so Sample never pays a per-invocation
  /// Schema::IndexOf string scan.
  virtual void BindSchema(const Schema& schema) { (void)schema; }

  /// One invocation: consumes the parameter tuples of a group (with the
  /// group's input schema) and appends output tuples.
  virtual void Sample(const std::vector<Tuple>& params, const Schema& schema,
                      stats::Rng& rng, std::vector<Tuple>* out) = 0;

  /// Expected output rows per invocation, given the mean parameter rows
  /// per group of this VgApply; used to presize the operator output
  /// before the sample loop. A hint only — emitting more or fewer rows is
  /// always correct.
  virtual std::size_t OutRowsHint(std::size_t mean_group_rows) const {
    return mean_group_rows;
  }

  /// Batched invocation: `params` holds every group's parameter rows,
  /// group-sorted so group g occupies rows [group_offsets[g],
  /// group_offsets[g+1]) (first-seen group order, original row order
  /// within each group — the exact sequence the tuple path feeds Sample).
  /// The default materializes each group and delegates to Sample, reusing
  /// one scratch tuple vector across groups.
  virtual void SampleBatch(const ColumnBatch& params,
                           const std::vector<std::uint32_t>& group_offsets,
                           stats::Rng& rng, VgBatchOut* out) {
    std::vector<Tuple> group;
    for (std::size_t g = 0; g + 1 < group_offsets.size(); ++g) {
      group.resize(group_offsets[g + 1] - group_offsets[g]);
      for (std::size_t j = 0; j < group.size(); ++j) {
        params.MaterializeRow(group_offsets[g] + j, &group[j]);
      }
      Sample(group, params.schema(), rng, &out->rows);
    }
  }
};

}  // namespace mlbench::reldb
