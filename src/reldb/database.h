#pragma once

#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>

#include <algorithm>

#include "common/status.h"
#include "reldb/column_batch.h"
#include "reldb/table.h"
#include "sim/cluster_sim.h"
#include "sim/cost_profile.h"
#include "sim/faults.h"

/// \file database.h
/// The SimSQL-like distributed relational database (paper Section 4.2).
///
/// Queries execute eagerly through Rel (see rel.h); the database stores the
/// named (and iteration-versioned) tables between queries. Execution is
/// modeled after SimSQL 0.1: every query compiles to one or more Hadoop
/// MapReduce jobs (one per wide operator), tables are materialized to
/// replicated storage between jobs, and nothing is pinned in RAM — which is
/// why this engine can be slow but never runs out of memory.
///
/// Each stored table keeps up to two host representations of the same
/// logical relation: the row form (Table) and the columnar form
/// (ColumnBatch). The columnar engine (the default; see columnar()) scans
/// the cached batch and never touches rows; the forms are converted lazily
/// and the conversion is exact, so simulated charges and query results are
/// bit-identical whichever representation executes.

namespace mlbench::reldb {

class Database {
 public:
  Database(sim::ClusterSim* sim, sim::RelDbCosts costs = {},
           std::uint64_t seed = 1)
      : sim_(sim), costs_(costs), rng_(seed), columnar_(DefaultColumnar()),
        expr_vm_(DefaultExprVm()), vg_batch_(DefaultVgBatch()) {}

  sim::ClusterSim& sim() { return *sim_; }
  const sim::RelDbCosts& costs() const { return costs_; }
  stats::Rng& rng() { return rng_; }

  // ---- Engine selection ----------------------------------------------------

  /// Process-wide default for new Database instances. Columnar execution is
  /// on unless the MLBENCH_RELDB_ROWS environment variable forces the row
  /// engine (the bit-identical baseline).
  static bool DefaultColumnar() { return DefaultColumnarFlag(); }
  static void SetDefaultColumnar(bool on) { DefaultColumnarFlag() = on; }

  /// Whether Rel operators on this database run over ColumnBatch (true) or
  /// row Tables. Either way results and charges are bit-identical; the
  /// switch exists for the row-vs-columnar parity suite and benchmarks.
  bool columnar() const { return columnar_; }
  void set_columnar(bool on) { columnar_ = on; }

  /// Process-wide default for the expression bytecode VM (expr_vm.h).
  /// Compiled evaluation is on unless the MLBENCH_RELDB_INTERP environment
  /// variable restores the tree-walking interpreter (the bit-identical
  /// parity baseline).
  static bool DefaultExprVm() { return DefaultExprVmFlag(); }
  static void SetDefaultExprVm(bool on) { DefaultExprVmFlag() = on; }

  /// Whether compiled expressions (Filter(ScalarExpr), ColExpr::Expr,
  /// FilterIntIn) evaluate through the batch-fused bytecode VM (true) or
  /// the per-row interpreter. Either way results, charges, RNG streams and
  /// selection orders are bit-identical; the switch exists for the
  /// VM-vs-interpreter parity suite and benchmarks.
  bool expr_vm() const { return expr_vm_; }
  void set_expr_vm(bool on) { expr_vm_ = on; }

  /// Process-wide default for columnar VG-function execution (DESIGN.md
  /// §14). Batched is on unless the MLBENCH_VG_TUPLES environment variable
  /// restores the tuple-at-a-time path (the bit-identical parity baseline).
  static bool DefaultVgBatch() { return DefaultVgBatchFlag(); }
  static void SetDefaultVgBatch(bool on) { DefaultVgBatchFlag() = on; }

  /// Whether VgApply feeds VG functions group-sorted column spans through
  /// VgFunction::SampleBatch (true) or materializes per-group Tuple
  /// vectors for Sample. Either way results, charges and RNG streams are
  /// bit-identical; the switch exists for the VG parity suite and
  /// benchmarks.
  bool vg_batch() const { return vg_batch_; }
  void set_vg_batch(bool on) { vg_batch_ = on; }

  /// Bytes of one materialized tuple with `cols` columns.
  double TupleBytes(std::size_t cols) const {
    return costs_.tuple_bytes + 8.0 * static_cast<double>(cols);
  }

  bool Exists(const std::string& name) const {
    return tables_.contains(name);
  }

  /// Registers (or replaces) a stored table from its row form.
  void Put(const std::string& name, Table table) {
    tables_[name] =
        StoredTable{std::make_shared<Table>(std::move(table)), nullptr, false};
  }

  /// Registers (or replaces) a stored table from its columnar form; the row
  /// form (if supplied) is kept so a later Get needs no conversion.
  void PutBatch(const std::string& name,
                std::shared_ptr<const ColumnBatch> cols,
                std::shared_ptr<Table> rows = nullptr) {
    tables_[name] = StoredTable{std::move(rows), std::move(cols), false};
  }

  /// Fetches a stored table's row form; the table must exist. The caller
  /// may mutate the rows in place (the imputation driver rewrites stored
  /// values), so any cached columnar form is dropped here and rebuilt from
  /// the rows on the next columnar scan.
  std::shared_ptr<Table> Get(const std::string& name) {
    StoredTable& st = Lookup(name);
    if (st.rows == nullptr) {
      st.rows = std::make_shared<Table>(st.cols->ToTable());
    }
    st.cols = nullptr;
    st.cols_failed = false;
    return st.rows;
  }

  /// Fetches (converting and caching if needed) a stored table's columnar
  /// form. Returns nullptr when the table cannot be typed (a column mixes
  /// int and double values) — the caller must stay on the row path.
  std::shared_ptr<const ColumnBatch> GetColumnar(const std::string& name) {
    StoredTable& st = Lookup(name);
    if (st.cols == nullptr && !st.cols_failed) {
      auto batch = ColumnBatch::FromTable(*st.rows);
      if (batch.has_value()) {
        st.cols = std::make_shared<const ColumnBatch>(std::move(*batch));
      } else {
        st.cols_failed = true;
      }
    }
    return st.cols;
  }

  void Drop(const std::string& name) { tables_.erase(name); }

  /// Drops every version of `base` older than iteration `keep_from`;
  /// SimSQL garbage-collects old versions of recursively defined tables.
  void DropVersionsBefore(const std::string& base, int keep_from) {
    for (int i = 0; i < keep_from; ++i) tables_.erase(Versioned(base, i));
  }

  /// "name[i]" — the iteration-versioned table naming of SimSQL's
  /// recursive SQL dialect.
  static std::string Versioned(const std::string& base, int iteration) {
    return base + "[" + std::to_string(iteration) + "]";
  }

  // ---- Query bracket -------------------------------------------------------
  //
  // Every query runs at least one MapReduce job; wide operators inside the
  // query add one job each (charged by Rel).

  /// Opens a query phase and charges the first job's launch.
  void BeginQuery(const std::string& name) {
    sim_->BeginPhase("reldb:" + name);
    ChargeExtraJob();
  }

  /// Charges one additional MR job inside the current query. Every MR job
  /// (initial or extra) is one fault-schedule unit: Hadoop's recovery
  /// story — failed-task re-execution, speculative backup tasks for
  /// stragglers, shuffle retries — is applied per job.
  void ChargeExtraJob() {
    sim_->ChargeFixed(costs_.mr_job_launch_s +
                      costs_.mr_job_per_machine_s * sim_->machines());
    ApplyJobFaults();
  }

  /// Closes the query phase; returns its simulated wall time.
  double EndQuery() { return sim_->EndPhase(); }

  /// Latched permanent simulated failure (a machine crashed more times
  /// than the retry budget allows, or the shuffle never got through).
  /// Drivers abort the run with this status; the memory ledger stays
  /// consistent because reldb never pins RAM.
  const Status& fault_status() const { return fault_status_; }

 private:
  /// Hadoop-faithful recovery for MR job `job_index_` (then advances it).
  /// Serial by construction: jobs are launched from driver / operator
  /// code, never inside a parallel chunk.
  void ApplyJobFaults() {
    const std::int64_t job = job_index_++;
    sim::FaultInjector* inj = sim_->faults();
    if (inj == nullptr || !inj->active() || !fault_status_.ok()) return;
    const sim::FaultPlan& plan = inj->plan();
    const sim::RetryPolicy& retry = inj->retry();
    for (int m = 0; m < sim_->machines(); ++m) {
      if (int crashes = plan.CrashCountAt(job, m); crashes > 0) {
        if (retry.Exhausted(crashes)) {
          fault_status_ = Status::Unavailable(
              "machine " + std::to_string(m) + " failed " +
              std::to_string(crashes) + " attempts of MR job " +
              std::to_string(job));
          return;
        }
        // The JobTracker reschedules the dead machine's map/reduce tasks;
        // each failed attempt re-executes that machine's share of the job
        // from its replicated inputs, plus detection/backoff time.
        sim_->ScalePhaseCpu(m, 1.0 + static_cast<double>(crashes));
        double backoff = retry.BackoffSeconds(crashes);
        sim_->ChargeFixed(backoff);
        inj->RecordRecovery({sim::FaultKind::kCrash, "reldb:job", job, m,
                             backoff});
      }
      if (double f = plan.StragglerFactorAt(job, m); f > 1.0) {
        // Speculative execution: a backup copy of the slow machine's
        // tasks launches on a neighbor; the stage finishes when either
        // copy does, capping the effective slow-down at 2x.
        sim_->ScalePhaseCpu(m, std::min(f, 2.0));
        sim_->MirrorPhaseCpu(m, (m + 1) % sim_->machines(), 1.0);
        inj->RecordRecovery(
            {sim::FaultKind::kStraggler, "reldb:job", job, m, 0.0});
      }
      if (int sends = plan.SendFailureCountAt(job, m); sends > 0) {
        if (retry.Exhausted(sends)) {
          fault_status_ = Status::Unavailable(
              "machine " + std::to_string(m) + " shuffle failed " +
              std::to_string(sends) + " attempts in MR job " +
              std::to_string(job));
          return;
        }
        // Failed shuffle fetches re-transfer this machine's map output.
        sim_->ScalePhaseNet(m, 1.0 + static_cast<double>(sends));
        double backoff = retry.BackoffSeconds(sends);
        sim_->ChargeFixed(backoff);
        inj->RecordRecovery({sim::FaultKind::kSendFailure, "reldb:job", job,
                             m, backoff});
      }
    }
  }

  /// One stored relation in up to two host forms. Invariant: at least one
  /// of rows/cols is non-null; cols_failed records that a conversion from
  /// the current rows was attempted and the table is type-mixed.
  struct StoredTable {
    std::shared_ptr<Table> rows;
    std::shared_ptr<const ColumnBatch> cols;
    bool cols_failed = false;
  };

  StoredTable& Lookup(const std::string& name) {
    auto it = tables_.find(name);
    MLBENCH_CHECK_MSG(it != tables_.end(),
                      ("no such table: " + name).c_str());
    return it->second;
  }

  static bool& DefaultColumnarFlag() {
    static bool flag = std::getenv("MLBENCH_RELDB_ROWS") == nullptr;
    return flag;
  }

  static bool& DefaultExprVmFlag() {
    static bool flag = std::getenv("MLBENCH_RELDB_INTERP") == nullptr;
    return flag;
  }

  static bool& DefaultVgBatchFlag() {
    static bool flag = std::getenv("MLBENCH_VG_TUPLES") == nullptr;
    return flag;
  }

  sim::ClusterSim* sim_;
  sim::RelDbCosts costs_;
  stats::Rng rng_;
  bool columnar_;
  bool expr_vm_;
  bool vg_batch_;
  std::unordered_map<std::string, StoredTable> tables_;
  std::int64_t job_index_ = 0;
  Status fault_status_ = Status::OK();
};

}  // namespace mlbench::reldb
