#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>

#include "common/status.h"
#include "reldb/table.h"
#include "sim/cluster_sim.h"
#include "sim/cost_profile.h"

/// \file database.h
/// The SimSQL-like distributed relational database (paper Section 4.2).
///
/// Queries execute eagerly through Rel (see rel.h); the database stores the
/// named (and iteration-versioned) tables between queries. Execution is
/// modeled after SimSQL 0.1: every query compiles to one or more Hadoop
/// MapReduce jobs (one per wide operator), tables are materialized to
/// replicated storage between jobs, and nothing is pinned in RAM — which is
/// why this engine can be slow but never runs out of memory.

namespace mlbench::reldb {

class Database {
 public:
  Database(sim::ClusterSim* sim, sim::RelDbCosts costs = {},
           std::uint64_t seed = 1)
      : sim_(sim), costs_(costs), rng_(seed) {}

  sim::ClusterSim& sim() { return *sim_; }
  const sim::RelDbCosts& costs() const { return costs_; }
  stats::Rng& rng() { return rng_; }

  /// Bytes of one materialized tuple with `cols` columns.
  double TupleBytes(std::size_t cols) const {
    return costs_.tuple_bytes + 8.0 * static_cast<double>(cols);
  }

  bool Exists(const std::string& name) const {
    return tables_.contains(name);
  }

  /// Registers (or replaces) a stored table.
  void Put(const std::string& name, Table table) {
    tables_[name] = std::make_shared<Table>(std::move(table));
  }

  /// Fetches a stored table; the table must exist.
  std::shared_ptr<Table> Get(const std::string& name) const {
    auto it = tables_.find(name);
    MLBENCH_CHECK_MSG(it != tables_.end(),
                      ("no such table: " + name).c_str());
    return it->second;
  }

  void Drop(const std::string& name) { tables_.erase(name); }

  /// Drops every version of `base` older than iteration `keep_from`;
  /// SimSQL garbage-collects old versions of recursively defined tables.
  void DropVersionsBefore(const std::string& base, int keep_from) {
    for (int i = 0; i < keep_from; ++i) tables_.erase(Versioned(base, i));
  }

  /// "name[i]" — the iteration-versioned table naming of SimSQL's
  /// recursive SQL dialect.
  static std::string Versioned(const std::string& base, int iteration) {
    return base + "[" + std::to_string(iteration) + "]";
  }

  // ---- Query bracket -------------------------------------------------------
  //
  // Every query runs at least one MapReduce job; wide operators inside the
  // query add one job each (charged by Rel).

  /// Opens a query phase and charges the first job's launch.
  void BeginQuery(const std::string& name) {
    sim_->BeginPhase("reldb:" + name);
    ChargeExtraJob();
  }

  /// Charges one additional MR job inside the current query.
  void ChargeExtraJob() {
    sim_->ChargeFixed(costs_.mr_job_launch_s +
                      costs_.mr_job_per_machine_s * sim_->machines());
  }

  /// Closes the query phase; returns its simulated wall time.
  double EndQuery() { return sim_->EndPhase(); }

 private:
  sim::ClusterSim* sim_;
  sim::RelDbCosts costs_;
  stats::Rng rng_;
  std::unordered_map<std::string, std::shared_ptr<Table>> tables_;
};

}  // namespace mlbench::reldb
