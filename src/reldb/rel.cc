#include "reldb/rel.h"

#include <algorithm>
#include <limits>
#include <unordered_map>
#include <unordered_set>

#include "exec/parallel_for.h"

namespace mlbench::reldb {

namespace {

/// FROZEN grain for GroupBy's row chunking. GroupBy folds per-chunk Acc
/// partials (floating-point sums) in chunk-index order, so its numeric
/// results depend on the chunk structure itself; fault-parity goldens were
/// recorded against 1024-row chunks. Do not switch GroupBy to
/// exec::GrainFor without re-deriving every golden that flows through an
/// aggregate. The other operator loops (filters, projects, join probes)
/// only stitch chunk outputs back in chunk = row order — they are
/// grain-invariant and pick their grain with exec::GrainFor below.
constexpr std::int64_t kRowGrain = 1024;

using Column = ColumnBatch::Column;

/// Gathers the selected rows of `in` (per-chunk selection vectors, already
/// in chunk-index order) into fresh typed columns. Each chunk writes a
/// disjoint output range, so the fill parallelizes freely.
std::vector<Column> GatherColumns(
    const ColumnBatch& in,
    const std::vector<std::vector<std::uint32_t>>& sel) {
  std::vector<std::size_t> offsets(sel.size() + 1, 0);
  for (std::size_t p = 0; p < sel.size(); ++p) {
    offsets[p + 1] = offsets[p] + sel[p].size();
  }
  const std::size_t total = offsets.back();
  std::vector<Column> out;
  out.reserve(in.num_cols());
  for (std::size_t c = 0; c < in.num_cols(); ++c) {
    out.push_back(Column::Sized(in.col(c).type, total));
  }
  exec::ParallelFor(
      static_cast<std::int64_t>(sel.size()), 1, [&](const exec::Chunk& ch) {
        for (std::int64_t p = ch.begin; p < ch.end; ++p) {
          const auto& rows = sel[static_cast<std::size_t>(p)];
          const std::size_t off = offsets[static_cast<std::size_t>(p)];
          for (std::size_t c = 0; c < in.num_cols(); ++c) {
            const Column& src = in.col(c);
            Column& dst = out[c];
            if (src.type == ColType::kInt) {
              for (std::size_t j = 0; j < rows.size(); ++j) {
                dst.ints[off + j] = src.ints[rows[j]];
              }
            } else {
              for (std::size_t j = 0; j < rows.size(); ++j) {
                dst.doubles[off + j] = src.doubles[rows[j]];
              }
            }
          }
        }
      });
  return out;
}

}  // namespace

const Table* Rel::EnsureTable() const {
  if (table_ == nullptr) {
    table_ = std::make_shared<Table>(batch_->ToTable());
  }
  return table_.get();
}

bool Rel::EnsureBatch() const {
  if (batch_ != nullptr) return true;
  if (batch_failed_) return false;
  auto batch = ColumnBatch::FromTable(*table_);
  if (!batch.has_value()) {
    batch_failed_ = true;
    return false;
  }
  batch_ = std::make_shared<const ColumnBatch>(std::move(*batch));
  return true;
}

Rel Rel::Scan(Database& db, const std::string& name) {
  std::shared_ptr<const ColumnBatch> batch;
  if (db.columnar()) batch = db.GetColumnar(name);
  Rel r = batch != nullptr ? Rel(&db, std::move(batch)) : Rel(&db, db.Get(name));
  if (r.batch_ == nullptr && db.columnar()) r.batch_failed_ = true;
  // Map phase reads the stored table from replicated storage.
  r.ChargeIo(r.SelfBytes());
  r.ChargeTuples(r.logical_rows(), db.costs().per_tuple_s);
  return r;
}

Rel Rel::FromTable(Database& db, Table table) {
  return Rel(&db, std::make_shared<Table>(std::move(table)));
}

void Rel::ChargeTuples(double logical, double per_tuple_s) const {
  db_->sim().ChargeParallelCpu(logical * per_tuple_s);
}

void Rel::ChargeIo(double bytes) const {
  // Storage scan/write is disk-bound: each machine streams its share.
  double per_machine = bytes / db_->sim().machines();
  db_->sim().ChargeCpuAllMachines(per_machine *
                                  db_->costs().materialize_byte_s);
}

void Rel::ChargeShuffle(double bytes) const {
  int m = db_->sim().machines();
  double per_machine = bytes / m * (1.0 - 1.0 / m);
  for (int i = 0; i < m; ++i) db_->sim().ChargeNetwork(i, per_machine);
}

Rel Rel::RowFilter(const std::function<bool(const Tuple&)>& pred) const {
  const Table& in = *EnsureTable();
  const auto& rows = in.rows();
  const std::int64_t n = static_cast<std::int64_t>(rows.size());
  const std::int64_t grain = exec::GrainFor(n, exec::CostHint::kNormal);
  exec::ScratchVec<std::vector<Tuple>> parts_lease;
  std::vector<std::vector<Tuple>>& parts = *parts_lease;
  parts.resize(static_cast<std::size_t>(exec::NumChunks(n, grain)));
  for (auto& part : parts) part.clear();
  exec::ParallelFor(n, grain, [&](const exec::Chunk& chunk) {
    auto& out = parts[static_cast<std::size_t>(chunk.index)];
    for (std::int64_t i = chunk.begin; i < chunk.end; ++i) {
      const auto& row = rows[static_cast<std::size_t>(i)];
      if (pred(row)) out.push_back(row);
    }
  });
  Table out(in.schema(), in.scale());
  for (auto& part : parts) {
    for (auto& row : part) out.Append(std::move(row));
  }
  return Rel(db_, std::make_shared<Table>(std::move(out)));
}

Rel Rel::Filter(const std::function<bool(const Tuple&)>& pred) const {
  ChargeTuples(logical_rows(), db_->costs().per_tuple_s);
  if (UseColumnar()) {
    const ColumnBatch& in = *batch_;
    const std::int64_t n = static_cast<std::int64_t>(in.num_rows());
    const std::int64_t grain = exec::GrainFor(n, exec::CostHint::kNormal);
    exec::ScratchVec<std::vector<std::uint32_t>> sel_lease;
    std::vector<std::vector<std::uint32_t>>& sel = *sel_lease;
    sel.resize(static_cast<std::size_t>(exec::NumChunks(n, grain)));
    for (auto& keep : sel) keep.clear();
    exec::ParallelFor(n, grain, [&](const exec::Chunk& chunk) {
      auto& keep = sel[static_cast<std::size_t>(chunk.index)];
      Tuple scratch;
      for (std::int64_t i = chunk.begin; i < chunk.end; ++i) {
        in.MaterializeRow(static_cast<std::size_t>(i), &scratch);
        if (pred(scratch)) keep.push_back(static_cast<std::uint32_t>(i));
      }
    });
    return Rel(db_, std::make_shared<const ColumnBatch>(
                        in.schema(), GatherColumns(in, sel), in.scale()));
  }
  return RowFilter(pred);
}

Rel Rel::Filter(const ScalarExpr& pred) const {
  ChargeTuples(logical_rows(), db_->costs().per_tuple_s);
  const ExprProgram prog = ExprProgram::Compile(pred);
  if (UseColumnar()) {
    const ColumnBatch& in = *batch_;
    const std::int64_t n = static_cast<std::int64_t>(in.num_rows());
    const std::int64_t grain = exec::GrainFor(n, exec::CostHint::kNormal);
    exec::ScratchVec<std::vector<std::uint32_t>> sel_lease;
    std::vector<std::vector<std::uint32_t>>& sel = *sel_lease;
    sel.resize(static_cast<std::size_t>(exec::NumChunks(n, grain)));
    for (auto& keep : sel) keep.clear();
    if (db_->expr_vm()) {
      // Batch-fused VM: one dispatch per opcode per chunk, straight off
      // the typed arrays.
      exec::ParallelFor(n, grain, [&](const exec::Chunk& chunk) {
        ExprProgram::Scratch scratch;
        prog.SelectBatch(in, chunk.begin, chunk.end,
                         &sel[static_cast<std::size_t>(chunk.index)],
                         &scratch);
      });
    } else {
      // MLBENCH_RELDB_INTERP parity baseline: the pre-VM shape — a Tuple
      // materialized per row and the program interpreted over it.
      exec::ParallelFor(n, grain, [&](const exec::Chunk& chunk) {
        auto& keep = sel[static_cast<std::size_t>(chunk.index)];
        Tuple scratch;
        for (std::int64_t i = chunk.begin; i < chunk.end; ++i) {
          in.MaterializeRow(static_cast<std::size_t>(i), &scratch);
          if (prog.EvalRowPred(scratch)) {
            keep.push_back(static_cast<std::uint32_t>(i));
          }
        }
      });
    }
    return Rel(db_, std::make_shared<const ColumnBatch>(
                        in.schema(), GatherColumns(in, sel), in.scale()));
  }
  return RowFilter(
      [&prog](const Tuple& t) { return prog.EvalRowPred(t); });
}

Rel Rel::FilterAll() const {
  // Same charge as a Filter that keeps everything; the output is the
  // input relation, so both engines share its representation zero-copy
  // (operators never mutate their inputs).
  ChargeTuples(logical_rows(), db_->costs().per_tuple_s);
  if (UseColumnar()) return Rel(db_, batch_);
  EnsureTable();
  return Rel(db_, table_);
}

Rel Rel::FilterIntIn(const std::string& col,
                     const std::vector<std::int64_t>& values) const {
  ChargeTuples(logical_rows(), db_->costs().per_tuple_s);
  const std::size_t c = schema().IndexOf(col);
  if (UseColumnar() && batch_->col(c).type == ColType::kInt) {
    const ColumnBatch& in = *batch_;
    const std::int64_t n = static_cast<std::int64_t>(in.num_rows());
    const std::int64_t grain = exec::GrainFor(n, exec::CostHint::kNormal);
    exec::ScratchVec<std::vector<std::uint32_t>> sel_lease;
    std::vector<std::vector<std::uint32_t>>& sel = *sel_lease;
    sel.resize(static_cast<std::size_t>(exec::NumChunks(n, grain)));
    for (auto& keep : sel) keep.clear();
    if (db_->expr_vm()) {
      const ExprProgram prog =
          ExprProgram::Compile(ScalarExpr::IntIn(c, values));
      exec::ParallelFor(n, grain, [&](const exec::Chunk& chunk) {
        ExprProgram::Scratch scratch;
        prog.SelectBatch(in, chunk.begin, chunk.end,
                         &sel[static_cast<std::size_t>(chunk.index)],
                         &scratch);
      });
    } else {
      const auto& ints = in.col(c).ints;
      exec::ParallelFor(n, grain, [&](const exec::Chunk& chunk) {
        auto& keep = sel[static_cast<std::size_t>(chunk.index)];
        for (std::int64_t i = chunk.begin; i < chunk.end; ++i) {
          const std::int64_t v = ints[static_cast<std::size_t>(i)];
          for (std::int64_t want : values) {
            if (v == want) {
              keep.push_back(static_cast<std::uint32_t>(i));
              break;
            }
          }
        }
      });
    }
    return Rel(db_, std::make_shared<const ColumnBatch>(
                        in.schema(), GatherColumns(in, sel), in.scale()));
  }
  return RowFilter([c, &values](const Tuple& t) {
    const std::int64_t v = AsInt(t[c]);
    for (std::int64_t want : values) {
      if (v == want) return true;
    }
    return false;
  });
}

Rel Rel::Project(Schema out_schema,
                 const std::function<Tuple(const Tuple&)>& fn) const {
  ChargeTuples(logical_rows(), db_->costs().per_tuple_s);
  if (UseColumnar()) {
    // Generic projects compute arbitrary tuples, so the output is row-form;
    // rows bridge through a per-chunk scratch tuple without materializing
    // the whole input table. The next operator re-types the output.
    const ColumnBatch& in = *batch_;
    const std::int64_t n = static_cast<std::int64_t>(in.num_rows());
    const std::int64_t grain = exec::GrainFor(n, exec::CostHint::kNormal);
    exec::ScratchVec<std::vector<Tuple>> parts_lease;
    std::vector<std::vector<Tuple>>& parts = *parts_lease;
    parts.resize(static_cast<std::size_t>(exec::NumChunks(n, grain)));
    for (auto& part : parts) part.clear();
    exec::ParallelFor(n, grain, [&](const exec::Chunk& chunk) {
      auto& out = parts[static_cast<std::size_t>(chunk.index)];
      out.reserve(static_cast<std::size_t>(chunk.end - chunk.begin));
      Tuple scratch;
      for (std::int64_t i = chunk.begin; i < chunk.end; ++i) {
        in.MaterializeRow(static_cast<std::size_t>(i), &scratch);
        out.push_back(fn(scratch));
      }
    });
    Table out(std::move(out_schema), in.scale());
    out.Reserve(static_cast<std::size_t>(n));
    for (auto& part : parts) {
      for (auto& row : part) out.Append(std::move(row));
    }
    return Rel(db_, std::make_shared<Table>(std::move(out)));
  }
  const Table& tin = *EnsureTable();
  const auto& rows = tin.rows();
  const std::int64_t n = static_cast<std::int64_t>(rows.size());
  const std::int64_t grain = exec::GrainFor(n, exec::CostHint::kNormal);
  exec::ScratchVec<std::vector<Tuple>> parts_lease;
  std::vector<std::vector<Tuple>>& parts = *parts_lease;
  parts.resize(static_cast<std::size_t>(exec::NumChunks(n, grain)));
  for (auto& part : parts) part.clear();
  exec::ParallelFor(n, grain, [&](const exec::Chunk& chunk) {
    auto& out = parts[static_cast<std::size_t>(chunk.index)];
    out.reserve(static_cast<std::size_t>(chunk.end - chunk.begin));
    for (std::int64_t i = chunk.begin; i < chunk.end; ++i) {
      out.push_back(fn(rows[static_cast<std::size_t>(i)]));
    }
  });
  Table out(std::move(out_schema), tin.scale());
  for (auto& part : parts) {
    for (auto& row : part) out.Append(std::move(row));
  }
  return Rel(db_, std::make_shared<Table>(std::move(out)));
}

Rel Rel::Project(Schema out_schema, const std::vector<ColExpr>& exprs) const {
  ChargeTuples(logical_rows(), db_->costs().per_tuple_s);
  if (UseColumnar()) {
    const ColumnBatch& in = *batch_;
    const std::size_t n = in.num_rows();
    std::vector<std::shared_ptr<const Column>> out_cols(exprs.size());
    std::vector<std::size_t> fn_slots;
    for (std::size_t e = 0; e < exprs.size(); ++e) {
      if (exprs[e].src >= 0) {
        out_cols[e] = in.col_ptr(static_cast<std::size_t>(exprs[e].src));
      } else if (exprs[e].is_const) {
        const Value& v = exprs[e].constant;
        Column c = std::holds_alternative<std::int64_t>(v)
                       ? Column::Ints(std::vector<std::int64_t>(
                             n, std::get<std::int64_t>(v)))
                       : Column::Doubles(
                             std::vector<double>(n, std::get<double>(v)));
        out_cols[e] = std::make_shared<const Column>(std::move(c));
      } else {
        fn_slots.push_back(e);
      }
    }
    if (!fn_slots.empty()) {
      std::vector<std::vector<double>> computed(fn_slots.size(),
                                                std::vector<double>(n));
      // Compiled slots run batch-fused through the VM; opaque lambda slots
      // (and compiled slots under MLBENCH_RELDB_INTERP) share one
      // materialized scratch Tuple per row, exactly the pre-VM shape.
      const bool vm = db_->expr_vm();
      std::vector<std::size_t> row_slots;
      for (std::size_t s = 0; s < fn_slots.size(); ++s) {
        if (!(vm && exprs[fn_slots[s]].prog != nullptr)) row_slots.push_back(s);
      }
      exec::ParallelFor(
          static_cast<std::int64_t>(n),
          exec::GrainFor(static_cast<std::int64_t>(n),
                         exec::CostHint::kNormal),
          [&](const exec::Chunk& chunk) {
            ExprProgram::Scratch scratch;
            for (std::size_t s = 0; s < fn_slots.size(); ++s) {
              const ColExpr& e = exprs[fn_slots[s]];
              if (vm && e.prog != nullptr) {
                e.prog->EvalBatch(
                    in, chunk.begin, chunk.end,
                    computed[s].data() + static_cast<std::size_t>(chunk.begin),
                    &scratch);
              }
            }
            if (!row_slots.empty()) {
              Tuple row;
              for (std::int64_t i = chunk.begin; i < chunk.end; ++i) {
                in.MaterializeRow(static_cast<std::size_t>(i), &row);
                for (std::size_t s : row_slots) {
                  const ColExpr& e = exprs[fn_slots[s]];
                  computed[s][static_cast<std::size_t>(i)] =
                      e.prog != nullptr ? e.prog->EvalRow(row) : e.fn(row);
                }
              }
            }
          });
      for (std::size_t s = 0; s < fn_slots.size(); ++s) {
        out_cols[fn_slots[s]] = std::make_shared<const Column>(
            Column::Doubles(std::move(computed[s])));
      }
    }
    return Rel(db_, std::make_shared<const ColumnBatch>(
                        std::move(out_schema), std::move(out_cols),
                        in.scale()));
  }
  const Table& tin = *EnsureTable();
  const auto& rows = tin.rows();
  const std::int64_t n = static_cast<std::int64_t>(rows.size());
  const std::int64_t grain = exec::GrainFor(n, exec::CostHint::kNormal);
  exec::ScratchVec<std::vector<Tuple>> parts_lease;
  std::vector<std::vector<Tuple>>& parts = *parts_lease;
  parts.resize(static_cast<std::size_t>(exec::NumChunks(n, grain)));
  for (auto& part : parts) part.clear();
  exec::ParallelFor(n, grain, [&](const exec::Chunk& chunk) {
    auto& out = parts[static_cast<std::size_t>(chunk.index)];
    out.reserve(static_cast<std::size_t>(chunk.end - chunk.begin));
    for (std::int64_t i = chunk.begin; i < chunk.end; ++i) {
      const Tuple& row = rows[static_cast<std::size_t>(i)];
      Tuple out_row;
      out_row.reserve(exprs.size());
      for (const auto& e : exprs) {
        if (e.src >= 0) {
          out_row.push_back(row[static_cast<std::size_t>(e.src)]);
        } else if (e.is_const) {
          out_row.push_back(e.constant);
        } else if (e.prog != nullptr) {
          out_row.emplace_back(e.prog->EvalRow(row));
        } else {
          out_row.emplace_back(e.fn(row));
        }
      }
      out.push_back(std::move(out_row));
    }
  });
  Table out(std::move(out_schema), tin.scale());
  out.Reserve(static_cast<std::size_t>(n));
  for (auto& part : parts) {
    for (auto& row : part) out.Append(std::move(row));
  }
  return Rel(db_, std::make_shared<Table>(std::move(out)));
}

Rel Rel::Renamed(Schema out_schema) const {
  ChargeTuples(logical_rows(), db_->costs().per_tuple_s);
  if (UseColumnar()) {
    return Rel(db_, std::make_shared<const ColumnBatch>(batch_->WithSchema(
                        std::move(out_schema), batch_->scale())));
  }
  const Table& tin = *EnsureTable();
  Table out(std::move(out_schema), tin.scale());
  out.rows() = tin.rows();
  return Rel(db_, std::make_shared<Table>(std::move(out)));
}

Rel Rel::HashJoin(const Rel& right, const std::vector<std::string>& left_keys,
                  const std::vector<std::string>& right_keys, double out_scale,
                  bool co_partitioned) const {
  if (!co_partitioned) {
    // Wide operator: one more MR job; both inputs shuffle by key and the
    // output is materialized for the next job.
    db_->ChargeExtraJob();
    ChargeShuffle(SelfBytes() + right.SelfBytes());
  }
  ChargeTuples(logical_rows() + right.logical_rows(),
               db_->costs().join_tuple_s);

  auto lidx = ResolveAll(schema(), left_keys);
  auto ridx = ResolveAll(right.schema(), right_keys);
  MLBENCH_CHECK(lidx.size() == ridx.size());

  // Output schema: all left columns, then right's non-key columns.
  std::vector<std::string> out_cols = schema().columns();
  std::vector<std::size_t> right_keep;
  for (std::size_t c = 0; c < right.schema().size(); ++c) {
    if (std::find(ridx.begin(), ridx.end(), c) == ridx.end()) {
      right_keep.push_back(c);
      out_cols.push_back(right.schema().name(c));
    }
  }
  Schema out_schema(std::move(out_cols));

  const bool packed = UseColumnar() && right.UseColumnar() &&
                      CanPackKeys(*batch_, lidx) &&
                      CanPackKeys(*right.batch_, ridx);
  Rel result(db_, std::shared_ptr<Table>(nullptr));
  if (packed) {
    const ColumnBatch& lb = *batch_;
    const ColumnBatch& rb = *right.batch_;
    // Build over the left in scan order: match lists keep left insertion
    // order, exactly like the row engine's pointer lists.
    std::unordered_map<PackedKey, std::vector<std::uint32_t>, PackedKeyHash>
        build;
    build.reserve(lb.num_rows());
    for (std::size_t r = 0; r < lb.num_rows(); ++r) {
      build[PackRowKey(lb, lidx, r)].push_back(static_cast<std::uint32_t>(r));
    }
    struct Pair {
      std::uint32_t l, r;
    };
    const std::int64_t n = static_cast<std::int64_t>(rb.num_rows());
    const std::int64_t grain = exec::GrainFor(n, exec::CostHint::kNormal);
    exec::ScratchVec<std::vector<Pair>> parts_lease;
    std::vector<std::vector<Pair>>& parts = *parts_lease;
    parts.resize(static_cast<std::size_t>(exec::NumChunks(n, grain)));
    for (auto& part : parts) part.clear();
    exec::ParallelFor(n, grain, [&](const exec::Chunk& chunk) {
      auto& local = parts[static_cast<std::size_t>(chunk.index)];
      for (std::int64_t i = chunk.begin; i < chunk.end; ++i) {
        auto it = build.find(PackRowKey(rb, ridx, static_cast<std::size_t>(i)));
        if (it == build.end()) continue;
        for (std::uint32_t l : it->second) {
          local.push_back(Pair{l, static_cast<std::uint32_t>(i)});
        }
      }
    });
    std::vector<std::size_t> offsets(parts.size() + 1, 0);
    for (std::size_t p = 0; p < parts.size(); ++p) {
      offsets[p + 1] = offsets[p] + parts[p].size();
    }
    const std::size_t total = offsets.back();
    std::vector<Column> cols;
    cols.reserve(lb.num_cols() + right_keep.size());
    for (std::size_t c = 0; c < lb.num_cols(); ++c) {
      cols.push_back(Column::Sized(lb.col(c).type, total));
    }
    for (std::size_t c : right_keep) {
      cols.push_back(Column::Sized(rb.col(c).type, total));
    }
    exec::ParallelFor(
        static_cast<std::int64_t>(parts.size()), 1,
        [&](const exec::Chunk& ch) {
          for (std::int64_t p = ch.begin; p < ch.end; ++p) {
            const auto& local = parts[static_cast<std::size_t>(p)];
            const std::size_t off = offsets[static_cast<std::size_t>(p)];
            for (std::size_t c = 0; c < lb.num_cols(); ++c) {
              const Column& src = lb.col(c);
              Column& dst = cols[c];
              if (src.type == ColType::kInt) {
                for (std::size_t j = 0; j < local.size(); ++j) {
                  dst.ints[off + j] = src.ints[local[j].l];
                }
              } else {
                for (std::size_t j = 0; j < local.size(); ++j) {
                  dst.doubles[off + j] = src.doubles[local[j].l];
                }
              }
            }
            for (std::size_t k = 0; k < right_keep.size(); ++k) {
              const Column& src = rb.col(right_keep[k]);
              Column& dst = cols[lb.num_cols() + k];
              if (src.type == ColType::kInt) {
                for (std::size_t j = 0; j < local.size(); ++j) {
                  dst.ints[off + j] = src.ints[local[j].r];
                }
              } else {
                for (std::size_t j = 0; j < local.size(); ++j) {
                  dst.doubles[off + j] = src.doubles[local[j].r];
                }
              }
            }
          }
        });
    result = Rel(db_, std::make_shared<const ColumnBatch>(
                          std::move(out_schema), std::move(cols), out_scale));
  } else {
    Table out(std::move(out_schema), out_scale);
    std::unordered_map<Tuple, std::vector<const Tuple*>, TupleHash, TupleEq>
        build;
    for (const auto& row : EnsureTable()->rows()) {
      build[KeyOf(row, lidx)].push_back(&row);
    }
    // Probe side fans out across the host pool: the build map is read-only
    // here, and per-chunk outputs concatenate in chunk order, matching the
    // serial probe's row order exactly.
    const auto& rrows = right.table().rows();
    const std::int64_t n = static_cast<std::int64_t>(rrows.size());
    const std::int64_t grain = exec::GrainFor(n, exec::CostHint::kNormal);
    exec::ScratchVec<std::vector<Tuple>> parts_lease;
    std::vector<std::vector<Tuple>>& parts = *parts_lease;
    parts.resize(static_cast<std::size_t>(exec::NumChunks(n, grain)));
    for (auto& part : parts) part.clear();
    exec::ParallelFor(n, grain, [&](const exec::Chunk& chunk) {
      auto& local = parts[static_cast<std::size_t>(chunk.index)];
      for (std::int64_t i = chunk.begin; i < chunk.end; ++i) {
        const auto& rrow = rrows[static_cast<std::size_t>(i)];
        auto it = build.find(KeyOf(rrow, ridx));
        if (it == build.end()) continue;
        for (const Tuple* lrow : it->second) {
          Tuple joined = *lrow;
          for (std::size_t c : right_keep) joined.push_back(rrow[c]);
          local.push_back(std::move(joined));
        }
      }
    });
    for (auto& part : parts) {
      for (auto& row : part) out.Append(std::move(row));
    }
    result = Rel(db_, std::make_shared<Table>(std::move(out)));
  }
  if (!co_partitioned) {
    result.ChargeIo(result.SelfBytes() * 2.0);  // write+read
  }
  return result;
}

Rel Rel::GroupBy(const std::vector<std::string>& keys,
                 const std::vector<Agg>& aggs, double out_scale) const {
  db_->ChargeExtraJob();
  ChargeTuples(logical_rows(), db_->costs().group_by_tuple_s);

  auto kidx = ResolveAll(schema(), keys);
  std::vector<std::size_t> aidx;
  for (const auto& a : aggs) {
    aidx.push_back(a.op == AggOp::kCount ? 0 : schema().IndexOf(a.col));
  }
  const std::size_t naggs = aggs.size();

  struct Acc {
    double sum = 0;
    double count = 0;
    double min = std::numeric_limits<double>::infinity();
    double max = -std::numeric_limits<double>::infinity();
  };

  std::vector<std::string> out_cols = keys;
  for (const auto& a : aggs) out_cols.push_back(a.out_name);
  Schema out_schema(std::move(out_cols));

  // Each chunk aggregates its row range into a private map (recording key
  // first-occurrence order); chunk partials then fold in chunk-index
  // order. The chunking is a pure function of the row count, so both the
  // accumulators and the output's key order are identical at any thread
  // count — and identical between the packed and row paths, because chunks
  // are contiguous row ranges in both.
  if (UseColumnar() && CanPackKeys(*batch_, kidx)) {
    const ColumnBatch& in = *batch_;
    struct ChunkGroups {
      std::unordered_map<PackedKey, std::uint32_t, PackedKeyHash> slots;
      std::vector<PackedKey> order;
      std::vector<Acc> accs;  // slot-major: accs[slot * naggs + a]
    };
    const std::int64_t n = static_cast<std::int64_t>(in.num_rows());
    std::vector<ChunkGroups> parts(
        static_cast<std::size_t>(exec::NumChunks(n, kRowGrain)));
    exec::ParallelFor(n, kRowGrain, [&](const exec::Chunk& chunk) {
      auto& local = parts[static_cast<std::size_t>(chunk.index)];
      for (std::int64_t i = chunk.begin; i < chunk.end; ++i) {
        const std::size_t r = static_cast<std::size_t>(i);
        PackedKey key = PackRowKey(in, kidx, r);
        auto [it, inserted] = local.slots.try_emplace(
            key, static_cast<std::uint32_t>(local.order.size()));
        if (inserted) {
          local.order.push_back(key);
          local.accs.resize(local.accs.size() + naggs);
        }
        Acc* accs = &local.accs[it->second * naggs];
        for (std::size_t a = 0; a < naggs; ++a) {
          double v = aggs[a].op == AggOp::kCount
                         ? 1.0
                         : in.col(aidx[a]).AsDoubleAt(r);
          accs[a].sum += v;
          accs[a].count += 1;
          accs[a].min = std::min(accs[a].min, v);
          accs[a].max = std::max(accs[a].max, v);
        }
      }
    });
    std::unordered_map<PackedKey, std::uint32_t, PackedKeyHash> slots;
    std::vector<PackedKey> order;
    std::vector<Acc> accs;
    for (auto& part : parts) {
      for (std::size_t g = 0; g < part.order.size(); ++g) {
        const PackedKey& key = part.order[g];
        const Acc* src = &part.accs[part.slots[key] * naggs];
        auto [it, inserted] =
            slots.try_emplace(key, static_cast<std::uint32_t>(order.size()));
        if (inserted) {
          order.push_back(key);
          accs.insert(accs.end(), src, src + naggs);
        } else {
          Acc* dst = &accs[it->second * naggs];
          for (std::size_t a = 0; a < naggs; ++a) {
            dst[a].sum += src[a].sum;
            dst[a].count += src[a].count;
            dst[a].min = std::min(dst[a].min, src[a].min);
            dst[a].max = std::max(dst[a].max, src[a].max);
          }
        }
      }
    }
    const std::size_t ngroups = order.size();
    std::vector<Column> cols;
    cols.reserve(kidx.size() + naggs);
    for (std::size_t k = 0; k < kidx.size(); ++k) {
      std::vector<std::int64_t> kv(ngroups);
      for (std::size_t g = 0; g < ngroups; ++g) kv[g] = order[g].v[k];
      cols.push_back(Column::Ints(std::move(kv)));
    }
    for (std::size_t a = 0; a < naggs; ++a) {
      std::vector<double> av(ngroups);
      for (std::size_t g = 0; g < ngroups; ++g) {
        const Acc& acc = accs[g * naggs + a];
        switch (aggs[a].op) {
          case AggOp::kSum:
            av[g] = acc.sum;
            break;
          case AggOp::kCount:
            // Counts are logical: each actual row stands for `scale` rows.
            av[g] = acc.count * in.scale();
            break;
          case AggOp::kAvg:
            av[g] = acc.sum / acc.count;
            break;
          case AggOp::kMin:
            av[g] = acc.min;
            break;
          case AggOp::kMax:
            av[g] = acc.max;
            break;
        }
      }
      cols.push_back(Column::Doubles(std::move(av)));
    }
    Rel result(db_, std::make_shared<const ColumnBatch>(
                        std::move(out_schema), std::move(cols), out_scale));
    double combined_bytes =
        std::min(SelfBytes(), result.logical_rows() * db_->sim().machines() *
                                  db_->TupleBytes(result.schema().size()));
    ChargeShuffle(combined_bytes);
    result.ChargeIo(result.SelfBytes() * 2.0);
    return result;
  }

  struct ChunkGroups {
    std::unordered_map<Tuple, std::vector<Acc>, TupleHash, TupleEq> groups;
    std::vector<Tuple> order;
  };
  const Table& tin = *EnsureTable();
  const auto& rows = tin.rows();
  const std::int64_t n = static_cast<std::int64_t>(rows.size());
  std::vector<ChunkGroups> parts(
      static_cast<std::size_t>(exec::NumChunks(n, kRowGrain)));
  exec::ParallelFor(n, kRowGrain, [&](const exec::Chunk& chunk) {
    auto& local = parts[static_cast<std::size_t>(chunk.index)];
    for (std::int64_t i = chunk.begin; i < chunk.end; ++i) {
      const auto& row = rows[static_cast<std::size_t>(i)];
      Tuple key = KeyOf(row, kidx);
      auto& accs = local.groups[key];
      if (accs.empty()) {
        accs.resize(aggs.size());
        local.order.push_back(std::move(key));
      }
      for (std::size_t a = 0; a < aggs.size(); ++a) {
        double v = aggs[a].op == AggOp::kCount ? 1.0 : AsDouble(row[aidx[a]]);
        accs[a].sum += v;
        accs[a].count += 1;
        accs[a].min = std::min(accs[a].min, v);
        accs[a].max = std::max(accs[a].max, v);
      }
    }
  });
  std::unordered_map<Tuple, std::vector<Acc>, TupleHash, TupleEq> groups;
  std::vector<Tuple> group_order;
  for (auto& part : parts) {
    for (auto& key : part.order) {
      auto& accs = part.groups[key];
      auto it = groups.find(key);
      if (it == groups.end()) {
        group_order.push_back(key);
        groups.emplace(std::move(key), std::move(accs));
      } else {
        for (std::size_t a = 0; a < aggs.size(); ++a) {
          it->second[a].sum += accs[a].sum;
          it->second[a].count += accs[a].count;
          it->second[a].min = std::min(it->second[a].min, accs[a].min);
          it->second[a].max = std::max(it->second[a].max, accs[a].max);
        }
      }
    }
  }

  Table out(std::move(out_schema), out_scale);
  out.Reserve(group_order.size());
  for (auto& key : group_order) {
    auto& accs = groups.find(key)->second;
    // The order list owns its copy of the key, so the output row can take
    // over its storage instead of deep-copying the Tuple.
    Tuple row = std::move(key);
    for (std::size_t a = 0; a < aggs.size(); ++a) {
      switch (aggs[a].op) {
        case AggOp::kSum:
          row.emplace_back(accs[a].sum);
          break;
        case AggOp::kCount:
          // Counts are logical: each actual row stands for `scale` rows.
          row.emplace_back(accs[a].count * tin.scale());
          break;
        case AggOp::kAvg:
          row.emplace_back(accs[a].sum / accs[a].count);
          break;
        case AggOp::kMin:
          row.emplace_back(accs[a].min);
          break;
        case AggOp::kMax:
          row.emplace_back(accs[a].max);
          break;
      }
    }
    out.Append(std::move(row));
  }
  Rel result(db_, std::make_shared<Table>(std::move(out)));
  // Shuffle the map-side-combined groups, then write the aggregate.
  double combined_bytes =
      std::min(SelfBytes(), result.logical_rows() * db_->sim().machines() *
                                db_->TupleBytes(result.schema().size()));
  ChargeShuffle(combined_bytes);
  result.ChargeIo(result.SelfBytes() * 2.0);
  return result;
}

Rel Rel::VgApply(VgFunction& vg, const std::vector<std::string>& group_cols,
                 double out_scale, double flops_per_out_tuple) const {
  // Stays serial: VG functions draw from the database's shared RNG stream,
  // whose consumption order is part of the deterministic contract.
  auto gidx = ResolveAll(schema(), group_cols);
  vg.BindSchema(schema());

  Table out(vg.output_schema(), out_scale);
  std::shared_ptr<const ColumnBatch> out_batch;
  if (UseColumnar() && CanPackKeys(*batch_, gidx)) {
    const ColumnBatch& in = *batch_;
    if (db_->vg_batch()) {
      // Columnar VG dispatch: every invocation group must be one
      // contiguous column span, groups in first-seen order, rows in
      // original order, so the function consumes the shared RNG exactly
      // as the per-group tuple loop below does. Inputs produced
      // group-major (member lists, doc-major word tables, an empty key
      // over the whole input) already satisfy that: one adjacent-key scan
      // verifies it — one hash insert per *group* rejects keys that
      // reappear in a later run — and the spans then alias the input
      // columns outright. Otherwise group-sort into fresh columns with
      // the same first-seen hash grouping the tuple path uses.
      const std::size_t n_rows = in.num_rows();
      std::vector<std::uint32_t> group_offsets{0};
      bool pre_grouped = true;
      {
        std::unordered_set<PackedKey, PackedKeyHash> seen;
        PackedKey prev{};
        for (std::size_t r = 0; r < n_rows; ++r) {
          PackedKey key = PackRowKey(in, gidx, r);
          if (r == 0 || !(key == prev)) {
            if (!seen.insert(key).second) {
              pre_grouped = false;
              break;
            }
            if (r != 0) group_offsets.push_back(static_cast<std::uint32_t>(r));
            prev = key;
          }
        }
      }
      ColumnBatch grouped;
      if (pre_grouped) {
        if (n_rows > 0) {
          group_offsets.push_back(static_cast<std::uint32_t>(n_rows));
        }
        std::vector<std::shared_ptr<const Column>> cols;
        cols.reserve(in.num_cols());
        for (std::size_t c = 0; c < in.num_cols(); ++c) {
          cols.push_back(in.col_ptr(c));
        }
        grouped = ColumnBatch(in.schema(), std::move(cols), in.scale());
      } else {
        std::unordered_map<PackedKey, std::uint32_t, PackedKeyHash> slots;
        std::vector<std::vector<std::uint32_t>> group_rows;
        for (std::size_t r = 0; r < n_rows; ++r) {
          auto [it, inserted] = slots.try_emplace(
              PackRowKey(in, gidx, r),
              static_cast<std::uint32_t>(group_rows.size()));
          if (inserted) group_rows.emplace_back();
          group_rows[it->second].push_back(static_cast<std::uint32_t>(r));
        }
        group_offsets.assign(group_rows.size() + 1, 0);
        for (std::size_t g = 0; g < group_rows.size(); ++g) {
          group_offsets[g + 1] =
              group_offsets[g] +
              static_cast<std::uint32_t>(group_rows[g].size());
        }
        grouped = ColumnBatch(in.schema(), GatherColumns(in, group_rows),
                              in.scale());
      }
      const std::size_t n_groups = group_offsets.size() - 1;
      const std::size_t hint =
          n_groups == 0 ? 0 : n_groups * vg.OutRowsHint(n_rows / n_groups);
      VgBatchOut vout;
      vout.rows.reserve(hint);
      vg.SampleBatch(grouped, group_offsets, db_->rng(), &vout);
      if (vout.columnar) {
        out_batch = std::make_shared<const ColumnBatch>(
            vg.output_schema(), std::move(vout.cols), out_scale);
      } else {
        // Fallback default went through Sample: adopt its rows wholesale.
        out.rows() = std::move(vout.rows);
      }
    } else {
      // Group row indices by packed key in first-seen order (an empty key
      // packs as n = 0, one group over the whole input — same as the row
      // engine's empty-Tuple key).
      std::unordered_map<PackedKey, std::uint32_t, PackedKeyHash> slots;
      std::vector<std::vector<std::uint32_t>> group_rows;
      for (std::size_t r = 0; r < in.num_rows(); ++r) {
        auto [it, inserted] = slots.try_emplace(
            PackRowKey(in, gidx, r),
            static_cast<std::uint32_t>(group_rows.size()));
        if (inserted) group_rows.emplace_back();
        group_rows[it->second].push_back(static_cast<std::uint32_t>(r));
      }
      const std::size_t n_groups = group_rows.size();
      out.Reserve(n_groups == 0
                      ? 0
                      : n_groups * vg.OutRowsHint(in.num_rows() / n_groups));
      std::vector<Tuple> params;
      for (const auto& rows_in_group : group_rows) {
        params.resize(rows_in_group.size());
        for (std::size_t j = 0; j < rows_in_group.size(); ++j) {
          in.MaterializeRow(rows_in_group[j], &params[j]);
        }
        vg.Sample(params, schema(), db_->rng(), &out.rows());
      }
    }
  } else {
    // Partition parameter rows into invocation groups (stable order).
    const Table& tin = *EnsureTable();
    std::unordered_map<Tuple, std::vector<Tuple>, TupleHash, TupleEq> groups;
    std::vector<Tuple> group_order;
    for (const auto& row : tin.rows()) {
      Tuple key = KeyOf(row, gidx);
      auto it = groups.find(key);
      if (it == groups.end()) {
        group_order.push_back(key);
        groups.emplace(std::move(key), std::vector<Tuple>{row});
      } else {
        it->second.push_back(row);
      }
    }
    out.Reserve(group_order.empty()
                    ? 0
                    : group_order.size() *
                          vg.OutRowsHint(tin.rows().size() /
                                         group_order.size()));
    for (const auto& key : group_order) {
      vg.Sample(groups[key], schema(), db_->rng(), &out.rows());
    }
  }
  // Parameter tuples in, sampled tuples out — each crosses the Java/C++
  // VG boundary; the function body itself runs at C++ speed. actual_rows
  // and out_scale are representation-independent, so the charges are the
  // same doubles whichever form the function emitted.
  const std::size_t actual_out =
      out_batch != nullptr ? out_batch->num_rows() : out.actual_rows();
  ChargeTuples(logical_rows(), db_->costs().vg_tuple_s);
  double logical_out = static_cast<double>(actual_out) * out_scale;
  ChargeTuples(logical_out, db_->costs().vg_tuple_s);
  db_->sim().ChargeParallelCpu(logical_out * flops_per_out_tuple *
                               sim::CppModel().flop_s);
  if (out_batch != nullptr) return Rel(db_, std::move(out_batch));
  return Rel(db_, std::make_shared<Table>(std::move(out)));
}

Rel Rel::Union(const Rel& other) const {
  MLBENCH_CHECK(schema().size() == other.schema().size());
  if (UseColumnar() && other.UseColumnar()) {
    const ColumnBatch& a = *batch_;
    const ColumnBatch& b = *other.batch_;
    if (b.num_rows() == 0) return Rel(db_, batch_);
    if (a.num_rows() == 0) {
      // Adopt the right side's columns under the left schema and scale
      // (Union keeps the left's, like the row engine).
      return Rel(db_, std::make_shared<const ColumnBatch>(
                          b.WithSchema(a.schema(), a.scale())));
    }
    bool types_match = true;
    for (std::size_t c = 0; c < a.num_cols(); ++c) {
      if (a.col(c).type != b.col(c).type) {
        types_match = false;
        break;
      }
    }
    if (types_match) {
      std::vector<Column> cols;
      cols.reserve(a.num_cols());
      for (std::size_t c = 0; c < a.num_cols(); ++c) {
        const Column& ca = a.col(c);
        const Column& cb = b.col(c);
        Column nc;
        nc.type = ca.type;
        if (ca.type == ColType::kInt) {
          nc.ints = ca.ints;
          nc.ints.insert(nc.ints.end(), cb.ints.begin(), cb.ints.end());
        } else {
          nc.doubles = ca.doubles;
          nc.doubles.insert(nc.doubles.end(), cb.doubles.begin(),
                            cb.doubles.end());
        }
        cols.push_back(std::move(nc));
      }
      return Rel(db_, std::make_shared<const ColumnBatch>(
                          a.schema(), std::move(cols), a.scale()));
    }
  }
  const Table& tin = *EnsureTable();
  Table out(tin.schema(), tin.scale());
  out.rows() = tin.rows();
  for (const auto& row : other.table().rows()) out.Append(row);
  return Rel(db_, std::make_shared<Table>(std::move(out)));
}

void Rel::Materialize(const std::string& name) const {
  ChargeIo(SelfBytes());
  ChargeTuples(logical_rows(), db_->costs().per_tuple_s);
  if (UseColumnar()) {
    db_->PutBatch(name, batch_, table_);
  } else {
    db_->Put(name, *table_);
  }
}

}  // namespace mlbench::reldb
