#include "reldb/rel.h"

#include <algorithm>
#include <limits>
#include <unordered_map>

#include "exec/parallel_for.h"

namespace mlbench::reldb {

namespace {

std::vector<std::size_t> ResolveAll(const Schema& schema,
                                    const std::vector<std::string>& cols) {
  std::vector<std::size_t> idx;
  idx.reserve(cols.size());
  for (const auto& c : cols) idx.push_back(schema.IndexOf(c));
  return idx;
}

/// Rows per host-parallel chunk of a tuple loop. Simulated charges are bulk
/// (outside the loops), so chunks only need their outputs stitched back in
/// chunk-index order to match the serial operator exactly. Test-sized
/// tables (hundreds of rows) stay in one chunk and run inline.
constexpr std::int64_t kRowGrain = 1024;

}  // namespace

Rel Rel::Scan(Database& db, const std::string& name) {
  auto t = db.Get(name);
  Rel r(&db, t);
  // Map phase reads the stored table from replicated storage.
  r.ChargeIo(r.TableBytes(*t));
  r.ChargeTuples(t->logical_rows(), db.costs().per_tuple_s);
  return r;
}

Rel Rel::FromTable(Database& db, Table table) {
  return Rel(&db, std::make_shared<Table>(std::move(table)));
}

void Rel::ChargeTuples(double logical, double per_tuple_s) const {
  db_->sim().ChargeParallelCpu(logical * per_tuple_s);
}

void Rel::ChargeIo(double bytes) const {
  // Storage scan/write is disk-bound: each machine streams its share.
  double per_machine = bytes / db_->sim().machines();
  db_->sim().ChargeCpuAllMachines(per_machine *
                                  db_->costs().materialize_byte_s);
}

void Rel::ChargeShuffle(double bytes) const {
  int m = db_->sim().machines();
  double per_machine = bytes / m * (1.0 - 1.0 / m);
  for (int i = 0; i < m; ++i) db_->sim().ChargeNetwork(i, per_machine);
}

Rel Rel::Filter(const std::function<bool(const Tuple&)>& pred) const {
  ChargeTuples(table_->logical_rows(), db_->costs().per_tuple_s);
  const auto& rows = table_->rows();
  const std::int64_t n = static_cast<std::int64_t>(rows.size());
  std::vector<std::vector<Tuple>> parts(
      static_cast<std::size_t>(exec::NumChunks(n, kRowGrain)));
  exec::ParallelFor(n, kRowGrain, [&](const exec::Chunk& chunk) {
    auto& out = parts[static_cast<std::size_t>(chunk.index)];
    for (std::int64_t i = chunk.begin; i < chunk.end; ++i) {
      const auto& row = rows[static_cast<std::size_t>(i)];
      if (pred(row)) out.push_back(row);
    }
  });
  Table out(table_->schema(), table_->scale());
  for (auto& part : parts) {
    for (auto& row : part) out.Append(std::move(row));
  }
  return Rel(db_, std::make_shared<Table>(std::move(out)));
}

Rel Rel::Project(Schema out_schema,
                 const std::function<Tuple(const Tuple&)>& fn) const {
  ChargeTuples(table_->logical_rows(), db_->costs().per_tuple_s);
  const auto& rows = table_->rows();
  const std::int64_t n = static_cast<std::int64_t>(rows.size());
  std::vector<std::vector<Tuple>> parts(
      static_cast<std::size_t>(exec::NumChunks(n, kRowGrain)));
  exec::ParallelFor(n, kRowGrain, [&](const exec::Chunk& chunk) {
    auto& out = parts[static_cast<std::size_t>(chunk.index)];
    out.reserve(static_cast<std::size_t>(chunk.end - chunk.begin));
    for (std::int64_t i = chunk.begin; i < chunk.end; ++i) {
      out.push_back(fn(rows[static_cast<std::size_t>(i)]));
    }
  });
  Table out(std::move(out_schema), table_->scale());
  for (auto& part : parts) {
    for (auto& row : part) out.Append(std::move(row));
  }
  return Rel(db_, std::make_shared<Table>(std::move(out)));
}

Rel Rel::HashJoin(const Rel& right, const std::vector<std::string>& left_keys,
                  const std::vector<std::string>& right_keys, double out_scale,
                  bool co_partitioned) const {
  if (!co_partitioned) {
    // Wide operator: one more MR job; both inputs shuffle by key and the
    // output is materialized for the next job.
    db_->ChargeExtraJob();
    ChargeShuffle(TableBytes(*table_) + TableBytes(right.table()));
  }
  ChargeTuples(table_->logical_rows() + right.logical_rows(),
               db_->costs().join_tuple_s);

  auto lidx = ResolveAll(schema(), left_keys);
  auto ridx = ResolveAll(right.schema(), right_keys);
  MLBENCH_CHECK(lidx.size() == ridx.size());

  // Output schema: all left columns, then right's non-key columns.
  std::vector<std::string> out_cols = schema().columns();
  std::vector<std::size_t> right_keep;
  for (std::size_t c = 0; c < right.schema().size(); ++c) {
    if (std::find(ridx.begin(), ridx.end(), c) == ridx.end()) {
      right_keep.push_back(c);
      out_cols.push_back(right.schema().name(c));
    }
  }
  Table out(Schema(std::move(out_cols)), out_scale);

  std::unordered_map<Tuple, std::vector<const Tuple*>, TupleHash, TupleEq>
      build;
  for (const auto& row : table_->rows()) {
    build[KeyOf(row, lidx)].push_back(&row);
  }
  // Probe side fans out across the host pool: the build map is read-only
  // here, and per-chunk outputs concatenate in chunk order, matching the
  // serial probe's row order exactly.
  const auto& rrows = right.table().rows();
  const std::int64_t n = static_cast<std::int64_t>(rrows.size());
  std::vector<std::vector<Tuple>> parts(
      static_cast<std::size_t>(exec::NumChunks(n, kRowGrain)));
  exec::ParallelFor(n, kRowGrain, [&](const exec::Chunk& chunk) {
    auto& local = parts[static_cast<std::size_t>(chunk.index)];
    for (std::int64_t i = chunk.begin; i < chunk.end; ++i) {
      const auto& rrow = rrows[static_cast<std::size_t>(i)];
      auto it = build.find(KeyOf(rrow, ridx));
      if (it == build.end()) continue;
      for (const Tuple* lrow : it->second) {
        Tuple joined = *lrow;
        for (std::size_t c : right_keep) joined.push_back(rrow[c]);
        local.push_back(std::move(joined));
      }
    }
  });
  for (auto& part : parts) {
    for (auto& row : part) out.Append(std::move(row));
  }
  Rel result(db_, std::make_shared<Table>(std::move(out)));
  if (!co_partitioned) {
    result.ChargeIo(result.TableBytes(result.table()) * 2.0);  // write+read
  }
  return result;
}

Rel Rel::GroupBy(const std::vector<std::string>& keys,
                 const std::vector<Agg>& aggs, double out_scale) const {
  db_->ChargeExtraJob();
  ChargeTuples(table_->logical_rows(), db_->costs().group_by_tuple_s);

  auto kidx = ResolveAll(schema(), keys);
  std::vector<std::size_t> aidx;
  for (const auto& a : aggs) {
    aidx.push_back(a.op == AggOp::kCount ? 0 : schema().IndexOf(a.col));
  }

  struct Acc {
    double sum = 0;
    double count = 0;
    double min = std::numeric_limits<double>::infinity();
    double max = -std::numeric_limits<double>::infinity();
  };
  // Each chunk aggregates its row range into a private map (recording key
  // first-occurrence order); chunk partials then fold in chunk-index
  // order. The chunking is a pure function of the row count, so both the
  // accumulators and the output's key order are identical at any thread
  // count.
  struct ChunkGroups {
    std::unordered_map<Tuple, std::vector<Acc>, TupleHash, TupleEq> groups;
    std::vector<Tuple> order;
  };
  const auto& rows = table_->rows();
  const std::int64_t n = static_cast<std::int64_t>(rows.size());
  std::vector<ChunkGroups> parts(
      static_cast<std::size_t>(exec::NumChunks(n, kRowGrain)));
  exec::ParallelFor(n, kRowGrain, [&](const exec::Chunk& chunk) {
    auto& local = parts[static_cast<std::size_t>(chunk.index)];
    for (std::int64_t i = chunk.begin; i < chunk.end; ++i) {
      const auto& row = rows[static_cast<std::size_t>(i)];
      Tuple key = KeyOf(row, kidx);
      auto& accs = local.groups[key];
      if (accs.empty()) {
        accs.resize(aggs.size());
        local.order.push_back(std::move(key));
      }
      for (std::size_t a = 0; a < aggs.size(); ++a) {
        double v = aggs[a].op == AggOp::kCount ? 1.0 : AsDouble(row[aidx[a]]);
        accs[a].sum += v;
        accs[a].count += 1;
        accs[a].min = std::min(accs[a].min, v);
        accs[a].max = std::max(accs[a].max, v);
      }
    }
  });
  std::unordered_map<Tuple, std::vector<Acc>, TupleHash, TupleEq> groups;
  std::vector<Tuple> group_order;
  for (auto& part : parts) {
    for (auto& key : part.order) {
      auto& accs = part.groups[key];
      auto it = groups.find(key);
      if (it == groups.end()) {
        group_order.push_back(key);
        groups.emplace(std::move(key), std::move(accs));
      } else {
        for (std::size_t a = 0; a < aggs.size(); ++a) {
          it->second[a].sum += accs[a].sum;
          it->second[a].count += accs[a].count;
          it->second[a].min = std::min(it->second[a].min, accs[a].min);
          it->second[a].max = std::max(it->second[a].max, accs[a].max);
        }
      }
    }
  }

  std::vector<std::string> out_cols = keys;
  for (const auto& a : aggs) out_cols.push_back(a.out_name);
  Table out(Schema(std::move(out_cols)), out_scale);
  for (const auto& key : group_order) {
    auto& accs = groups[key];
    Tuple row = key;
    for (std::size_t a = 0; a < aggs.size(); ++a) {
      switch (aggs[a].op) {
        case AggOp::kSum:
          row.emplace_back(accs[a].sum);
          break;
        case AggOp::kCount:
          // Counts are logical: each actual row stands for `scale` rows.
          row.emplace_back(accs[a].count * table_->scale());
          break;
        case AggOp::kAvg:
          row.emplace_back(accs[a].sum / accs[a].count);
          break;
        case AggOp::kMin:
          row.emplace_back(accs[a].min);
          break;
        case AggOp::kMax:
          row.emplace_back(accs[a].max);
          break;
      }
    }
    out.Append(std::move(row));
  }
  Rel result(db_, std::make_shared<Table>(std::move(out)));
  // Shuffle the map-side-combined groups, then write the aggregate.
  double combined_bytes =
      std::min(TableBytes(*table_),
               result.table().logical_rows() * db_->sim().machines() *
                   db_->TupleBytes(result.schema().size()));
  ChargeShuffle(combined_bytes);
  result.ChargeIo(result.TableBytes(result.table()) * 2.0);
  return result;
}

Rel Rel::VgApply(VgFunction& vg, const std::vector<std::string>& group_cols,
                 double out_scale, double flops_per_out_tuple) const {
  // Stays serial: VG functions draw from the database's shared RNG stream,
  // whose consumption order is part of the deterministic contract.
  auto gidx = ResolveAll(schema(), group_cols);

  // Partition parameter rows into invocation groups (stable order).
  std::unordered_map<Tuple, std::vector<Tuple>, TupleHash, TupleEq> groups;
  std::vector<Tuple> group_order;
  for (const auto& row : table_->rows()) {
    Tuple key = KeyOf(row, gidx);
    auto it = groups.find(key);
    if (it == groups.end()) {
      group_order.push_back(key);
      groups.emplace(std::move(key), std::vector<Tuple>{row});
    } else {
      it->second.push_back(row);
    }
  }

  Table out(vg.output_schema(), out_scale);
  for (const auto& key : group_order) {
    vg.Sample(groups[key], schema(), db_->rng(), &out.rows());
  }
  // Parameter tuples in, sampled tuples out — each crosses the Java/C++
  // VG boundary; the function body itself runs at C++ speed.
  ChargeTuples(table_->logical_rows(), db_->costs().vg_tuple_s);
  double logical_out = static_cast<double>(out.actual_rows()) * out_scale;
  ChargeTuples(logical_out, db_->costs().vg_tuple_s);
  db_->sim().ChargeParallelCpu(logical_out * flops_per_out_tuple *
                               sim::CppModel().flop_s);
  return Rel(db_, std::make_shared<Table>(std::move(out)));
}

Rel Rel::Union(const Rel& other) const {
  MLBENCH_CHECK(schema().size() == other.schema().size());
  Table out(schema(), table_->scale());
  out.rows() = table_->rows();
  for (const auto& row : other.table().rows()) out.Append(row);
  return Rel(db_, std::make_shared<Table>(std::move(out)));
}

void Rel::Materialize(const std::string& name) const {
  ChargeIo(TableBytes(*table_));
  ChargeTuples(table_->logical_rows(), db_->costs().per_tuple_s);
  db_->Put(name, *table_);
}

}  // namespace mlbench::reldb
