#pragma once

#include <cmath>
#include <string>
#include <vector>

#include "reldb/vg_function.h"
#include "stats/distributions.h"

/// \file vg_library.h
/// SimSQL's library VG functions (paper Section 5.2: "the other VG
/// functions are all library functions"). Each consumes the parameter rows
/// of one invocation group and emits sampled rows. Parameter column indices
/// resolve once in BindSchema; Sample never does a name lookup.
///
/// Every function also implements the columnar SampleBatch surface: it
/// reads parameters straight from the group-sorted column spans and emits
/// typed output columns. Passthrough identifier columns copy the input
/// column's storage type, so converting the output back to rows
/// reproduces the tuple path's Value alternatives exactly; draws consume
/// the RNG in the identical per-group order.

namespace mlbench::reldb {

/// Dirichlet: rows (id, alpha) -> rows (out_id, prob), one invocation per
/// group (the paper's clus_prob initialization/update).
class DirichletVg : public VgFunction {
 public:
  std::string name() const override { return "Dirichlet"; }
  Schema output_schema() const override { return {"out_id", "prob"}; }
  void BindSchema(const Schema& schema) override {
    id_c_ = schema.IndexOf(id_col_);
    a_c_ = schema.IndexOf(alpha_col_);
  }
  void Sample(const std::vector<Tuple>& params, const Schema& schema,
              stats::Rng& rng, std::vector<Tuple>* out) override {
    (void)schema;
    linalg::Vector alpha(params.size());
    for (std::size_t i = 0; i < params.size(); ++i) {
      alpha[i] = AsDouble(params[i][a_c_]);
    }
    linalg::Vector draw = stats::SampleDirichlet(rng, alpha);
    for (std::size_t i = 0; i < params.size(); ++i) {
      out->push_back(Tuple{params[i][id_c_], draw[i]});
    }
  }
  void SampleBatch(const ColumnBatch& params,
                   const std::vector<std::uint32_t>& group_offsets,
                   stats::Rng& rng, VgBatchOut* out) override {
    const ColumnBatch::Column& idc = params.col(id_c_);
    const ColumnBatch::Column& ac = params.col(a_c_);
    const std::size_t n = params.num_rows();
    out->columnar = true;
    // One output row per parameter row, in row order: the id column
    // passes through verbatim.
    out->cols.push_back(idc);
    out->cols.push_back(ColumnBatch::Column::Sized(ColType::kDouble, n));
    std::vector<double>& prob = out->cols[1].doubles;
    for (std::size_t g = 0; g + 1 < group_offsets.size(); ++g) {
      const std::size_t lo = group_offsets[g];
      const std::size_t hi = group_offsets[g + 1];
      linalg::Vector alpha(hi - lo);
      for (std::size_t i = lo; i < hi; ++i) {
        alpha[i - lo] = ac.AsDoubleAt(i);
      }
      linalg::Vector draw = stats::SampleDirichlet(rng, alpha);
      for (std::size_t i = lo; i < hi; ++i) prob[i] = draw[i - lo];
    }
  }
  DirichletVg(std::string id_col, std::string alpha_col)
      : id_col_(std::move(id_col)), alpha_col_(std::move(alpha_col)) {}

 private:
  std::string id_col_, alpha_col_;
  std::size_t id_c_ = 0, a_c_ = 0;
};

/// Categorical: rows (id, weight) -> one row (out_id) holding the sampled
/// id; one invocation per group.
class CategoricalVg : public VgFunction {
 public:
  CategoricalVg(std::string id_col, std::string weight_col)
      : id_col_(std::move(id_col)), weight_col_(std::move(weight_col)) {}
  std::string name() const override { return "Categorical"; }
  Schema output_schema() const override { return {"out_id"}; }
  void BindSchema(const Schema& schema) override {
    id_c_ = schema.IndexOf(id_col_);
    w_c_ = schema.IndexOf(weight_col_);
  }
  void Sample(const std::vector<Tuple>& params, const Schema& schema,
              stats::Rng& rng, std::vector<Tuple>* out) override {
    (void)schema;
    linalg::Vector w(params.size());
    for (std::size_t i = 0; i < params.size(); ++i) {
      w[i] = AsDouble(params[i][w_c_]);
    }
    out->push_back(Tuple{params[stats::SampleCategorical(rng, w)][id_c_]});
  }
  std::size_t OutRowsHint(std::size_t) const override { return 1; }
  void SampleBatch(const ColumnBatch& params,
                   const std::vector<std::uint32_t>& group_offsets,
                   stats::Rng& rng, VgBatchOut* out) override {
    const ColumnBatch::Column& idc = params.col(id_c_);
    const ColumnBatch::Column& wc = params.col(w_c_);
    const std::size_t n_groups = group_offsets.size() - 1;
    out->columnar = true;
    out->cols.push_back(ColumnBatch::Column::Sized(idc.type, n_groups));
    for (std::size_t g = 0; g < n_groups; ++g) {
      const std::size_t lo = group_offsets[g];
      const std::size_t hi = group_offsets[g + 1];
      linalg::Vector w(hi - lo);
      for (std::size_t i = lo; i < hi; ++i) w[i - lo] = wc.AsDoubleAt(i);
      const std::size_t pick = lo + stats::SampleCategorical(rng, w);
      if (idc.type == ColType::kInt) {
        out->cols[0].ints[g] = idc.ints[pick];
      } else {
        out->cols[0].doubles[g] = idc.doubles[pick];
      }
    }
  }

 private:
  std::string id_col_, weight_col_;
  std::size_t id_c_ = 0, w_c_ = 0;
};

/// Normal: each row (id, mean, var) -> row (out_id, value); one draw per
/// parameter row.
class NormalVg : public VgFunction {
 public:
  NormalVg(std::string id_col, std::string mean_col, std::string var_col)
      : id_col_(std::move(id_col)),
        mean_col_(std::move(mean_col)),
        var_col_(std::move(var_col)) {}
  std::string name() const override { return "Normal"; }
  Schema output_schema() const override { return {"out_id", "value"}; }
  void BindSchema(const Schema& schema) override {
    id_c_ = schema.IndexOf(id_col_);
    m_c_ = schema.IndexOf(mean_col_);
    v_c_ = schema.IndexOf(var_col_);
  }
  void Sample(const std::vector<Tuple>& params, const Schema& schema,
              stats::Rng& rng, std::vector<Tuple>* out) override {
    (void)schema;
    for (const auto& row : params) {
      double draw = stats::SampleNormal(rng, AsDouble(row[m_c_]),
                                        std::sqrt(AsDouble(row[v_c_])));
      out->push_back(Tuple{row[id_c_], draw});
    }
  }
  void SampleBatch(const ColumnBatch& params,
                   const std::vector<std::uint32_t>& group_offsets,
                   stats::Rng& rng, VgBatchOut* out) override {
    // Draws are per-row and groups are contiguous in row order, so one
    // pass over the rows consumes the RNG exactly like the group loop.
    (void)group_offsets;
    const ColumnBatch::Column& idc = params.col(id_c_);
    const ColumnBatch::Column& mc = params.col(m_c_);
    const ColumnBatch::Column& vc = params.col(v_c_);
    const std::size_t n = params.num_rows();
    out->columnar = true;
    out->cols.push_back(idc);
    out->cols.push_back(ColumnBatch::Column::Sized(ColType::kDouble, n));
    std::vector<double>& value = out->cols[1].doubles;
    for (std::size_t r = 0; r < n; ++r) {
      value[r] = stats::SampleNormal(rng, mc.AsDoubleAt(r),
                                     std::sqrt(vc.AsDoubleAt(r)));
    }
  }

 private:
  std::string id_col_, mean_col_, var_col_;
  std::size_t id_c_ = 0, m_c_ = 0, v_c_ = 0;
};

/// InverseGamma: one row (shape, rate) -> one row (value).
class InverseGammaVg : public VgFunction {
 public:
  InverseGammaVg(std::string shape_col, std::string rate_col)
      : shape_col_(std::move(shape_col)), rate_col_(std::move(rate_col)) {}
  std::string name() const override { return "InvGamma"; }
  Schema output_schema() const override { return {"value"}; }
  void BindSchema(const Schema& schema) override {
    s_c_ = schema.IndexOf(shape_col_);
    r_c_ = schema.IndexOf(rate_col_);
  }
  void Sample(const std::vector<Tuple>& params, const Schema& schema,
              stats::Rng& rng, std::vector<Tuple>* out) override {
    (void)schema;
    for (const auto& row : params) {
      out->push_back(Tuple{stats::SampleInverseGamma(
          rng, AsDouble(row[s_c_]), AsDouble(row[r_c_]))});
    }
  }
  void SampleBatch(const ColumnBatch& params,
                   const std::vector<std::uint32_t>& group_offsets,
                   stats::Rng& rng, VgBatchOut* out) override {
    // Per-row draws over contiguous groups: one pass, same RNG order.
    (void)group_offsets;
    const ColumnBatch::Column& sc = params.col(s_c_);
    const ColumnBatch::Column& rc = params.col(r_c_);
    const std::size_t n = params.num_rows();
    out->columnar = true;
    out->cols.push_back(ColumnBatch::Column::Sized(ColType::kDouble, n));
    std::vector<double>& value = out->cols[0].doubles;
    for (std::size_t r = 0; r < n; ++r) {
      value[r] =
          stats::SampleInverseGamma(rng, sc.AsDoubleAt(r), rc.AsDoubleAt(r));
    }
  }

 private:
  std::string shape_col_, rate_col_;
  std::size_t s_c_ = 0, r_c_ = 0;
};

/// InverseGaussian: each row (id, mu, lambda) -> row (out_id, value)
/// (the Bayesian Lasso's tau update, paper Section 6.2).
class InverseGaussianVg : public VgFunction {
 public:
  InverseGaussianVg(std::string id_col, std::string mu_col,
                    std::string lambda_col)
      : id_col_(std::move(id_col)),
        mu_col_(std::move(mu_col)),
        lambda_col_(std::move(lambda_col)) {}
  std::string name() const override { return "InvGaussian"; }
  Schema output_schema() const override { return {"out_id", "value"}; }
  void BindSchema(const Schema& schema) override {
    id_c_ = schema.IndexOf(id_col_);
    m_c_ = schema.IndexOf(mu_col_);
    l_c_ = schema.IndexOf(lambda_col_);
  }
  void Sample(const std::vector<Tuple>& params, const Schema& schema,
              stats::Rng& rng, std::vector<Tuple>* out) override {
    (void)schema;
    for (const auto& row : params) {
      out->push_back(Tuple{row[id_c_],
                           stats::SampleInverseGaussian(
                               rng, AsDouble(row[m_c_]), AsDouble(row[l_c_]))});
    }
  }
  void SampleBatch(const ColumnBatch& params,
                   const std::vector<std::uint32_t>& group_offsets,
                   stats::Rng& rng, VgBatchOut* out) override {
    // Per-row draws over contiguous groups: one pass, same RNG order.
    (void)group_offsets;
    const ColumnBatch::Column& idc = params.col(id_c_);
    const ColumnBatch::Column& mc = params.col(m_c_);
    const ColumnBatch::Column& lc = params.col(l_c_);
    const std::size_t n = params.num_rows();
    out->columnar = true;
    out->cols.push_back(idc);
    out->cols.push_back(ColumnBatch::Column::Sized(ColType::kDouble, n));
    std::vector<double>& value = out->cols[1].doubles;
    for (std::size_t r = 0; r < n; ++r) {
      value[r] = stats::SampleInverseGaussian(rng, mc.AsDoubleAt(r),
                                              lc.AsDoubleAt(r));
    }
  }

 private:
  std::string id_col_, mu_col_, lambda_col_;
  std::size_t id_c_ = 0, m_c_ = 0, l_c_ = 0;
};

}  // namespace mlbench::reldb
