#include "reldb/expr_vm.h"

#include <cmath>
#include <limits>

#include "common/logging.h"

namespace mlbench::reldb {

namespace {

/// EvalRow register files up to this depth live on the stack; deeper
/// programs (property tests, not queries) spill to the heap.
constexpr std::size_t kInlineRegs = 24;

ExprOp BinOpcode(ScalarExpr::BinOp op) {
  switch (op) {
    case ScalarExpr::BinOp::kAdd:
      return ExprOp::kAdd;
    case ScalarExpr::BinOp::kSub:
      return ExprOp::kSub;
    case ScalarExpr::BinOp::kMul:
      return ExprOp::kMul;
    case ScalarExpr::BinOp::kDiv:
      return ExprOp::kDiv;
    case ScalarExpr::BinOp::kMax:
      return ExprOp::kMax;
  }
  return ExprOp::kAdd;
}

ExprOp CmpOpcode(ScalarExpr::CmpOp op) {
  switch (op) {
    case ScalarExpr::CmpOp::kEq:
      return ExprOp::kCmpEq;
    case ScalarExpr::CmpOp::kNe:
      return ExprOp::kCmpNe;
    case ScalarExpr::CmpOp::kLt:
      return ExprOp::kCmpLt;
    case ScalarExpr::CmpOp::kLe:
      return ExprOp::kCmpLe;
    case ScalarExpr::CmpOp::kGt:
      return ExprOp::kCmpGt;
    case ScalarExpr::CmpOp::kGe:
      return ExprOp::kCmpGe;
  }
  return ExprOp::kCmpEq;
}

ExprOp CallOpcode(ScalarExpr::Fn1 fn) {
  switch (fn) {
    case ScalarExpr::Fn1::kSqrt:
      return ExprOp::kSqrt;
    case ScalarExpr::Fn1::kExp:
      return ExprOp::kExp;
    case ScalarExpr::Fn1::kLog:
      return ExprOp::kLog;
    case ScalarExpr::Fn1::kAbs:
      return ExprOp::kAbs;
  }
  return ExprOp::kSqrt;
}

bool InSet(std::int64_t v, const std::vector<std::int64_t>& set) {
  for (std::int64_t want : set) {
    if (v == want) return true;
  }
  return false;
}

}  // namespace

void ExprProgram::CompileNode(const ScalarExpr& e, std::uint16_t dst) {
  if (static_cast<std::size_t>(dst) + 1 > num_regs_) {
    num_regs_ = static_cast<std::size_t>(dst) + 1;
  }
  switch (e.kind) {
    case ScalarExpr::Kind::kCol:
      MLBENCH_CHECK(e.col <= std::numeric_limits<std::uint16_t>::max());
      insns_.push_back({ExprOp::kLoadCol, dst,
                        static_cast<std::uint16_t>(e.col), 0, 0});
      return;
    case ScalarExpr::Kind::kConst:
      insns_.push_back({ExprOp::kLoadConst, dst, 0, 0, e.value});
      return;
    case ScalarExpr::Kind::kBin:
    case ScalarExpr::Kind::kCmp: {
      MLBENCH_CHECK(e.kids.size() == 2);
      MLBENCH_CHECK(dst < std::numeric_limits<std::uint16_t>::max());
      CompileNode(e.kids[0], dst);
      CompileNode(e.kids[1], static_cast<std::uint16_t>(dst + 1));
      ExprOp op = e.kind == ScalarExpr::Kind::kBin ? BinOpcode(e.bin)
                                                   : CmpOpcode(e.cmp);
      insns_.push_back(
          {op, dst, dst, static_cast<std::uint16_t>(dst + 1), 0});
      return;
    }
    case ScalarExpr::Kind::kCall:
      MLBENCH_CHECK(e.kids.size() == 1);
      CompileNode(e.kids[0], dst);
      insns_.push_back({CallOpcode(e.fn), dst, dst, 0, 0});
      return;
    case ScalarExpr::Kind::kIntIn: {
      MLBENCH_CHECK(e.col <= std::numeric_limits<std::uint16_t>::max());
      MLBENCH_CHECK(sets_.size() <
                    std::numeric_limits<std::uint16_t>::max());
      std::uint16_t set_index = static_cast<std::uint16_t>(sets_.size());
      sets_.push_back(e.set);
      insns_.push_back({ExprOp::kIntIn, dst,
                        static_cast<std::uint16_t>(e.col), set_index, 0});
      return;
    }
  }
  MLBENCH_CHECK_MSG(false, "unreachable ScalarExpr kind");
}

ExprProgram ExprProgram::Compile(const ScalarExpr& expr) {
  ExprProgram p;
  p.CompileNode(expr, 0);
  return p;
}

double ExprProgram::EvalRow(const Tuple& t) const {
  double inline_regs[kInlineRegs];
  std::vector<double> heap_regs;
  double* regs = inline_regs;
  if (num_regs_ > kInlineRegs) {
    heap_regs.resize(num_regs_);
    regs = heap_regs.data();
  }
  for (const ExprInsn& ins : insns_) {
    switch (ins.op) {
      case ExprOp::kLoadCol:
        regs[ins.dst] = AsDouble(t[ins.a]);
        break;
      case ExprOp::kLoadConst:
        regs[ins.dst] = ins.imm;
        break;
      case ExprOp::kAdd:
        regs[ins.dst] = regs[ins.a] + regs[ins.b];
        break;
      case ExprOp::kSub:
        regs[ins.dst] = regs[ins.a] - regs[ins.b];
        break;
      case ExprOp::kMul:
        regs[ins.dst] = regs[ins.a] * regs[ins.b];
        break;
      case ExprOp::kDiv:
        regs[ins.dst] = regs[ins.a] / regs[ins.b];
        break;
      case ExprOp::kMax:
        regs[ins.dst] = regs[ins.a] < regs[ins.b] ? regs[ins.b] : regs[ins.a];
        break;
      case ExprOp::kSqrt:
        regs[ins.dst] = std::sqrt(regs[ins.a]);
        break;
      case ExprOp::kExp:
        regs[ins.dst] = std::exp(regs[ins.a]);
        break;
      case ExprOp::kLog:
        regs[ins.dst] = std::log(regs[ins.a]);
        break;
      case ExprOp::kAbs:
        regs[ins.dst] = std::fabs(regs[ins.a]);
        break;
      case ExprOp::kCmpEq:
        regs[ins.dst] = regs[ins.a] == regs[ins.b] ? 1.0 : 0.0;
        break;
      case ExprOp::kCmpNe:
        regs[ins.dst] = regs[ins.a] != regs[ins.b] ? 1.0 : 0.0;
        break;
      case ExprOp::kCmpLt:
        regs[ins.dst] = regs[ins.a] < regs[ins.b] ? 1.0 : 0.0;
        break;
      case ExprOp::kCmpLe:
        regs[ins.dst] = regs[ins.a] <= regs[ins.b] ? 1.0 : 0.0;
        break;
      case ExprOp::kCmpGt:
        regs[ins.dst] = regs[ins.a] > regs[ins.b] ? 1.0 : 0.0;
        break;
      case ExprOp::kCmpGe:
        regs[ins.dst] = regs[ins.a] >= regs[ins.b] ? 1.0 : 0.0;
        break;
      case ExprOp::kIntIn:
        regs[ins.dst] = InSet(AsInt(t[ins.a]), sets_[ins.b]) ? 1.0 : 0.0;
        break;
    }
  }
  return regs[0];
}

namespace {

/// Applies `f` elementwise with the loop specialized to each operand
/// shape (vector/vector, vector/scalar, scalar/vector, scalar/scalar).
/// Every variant computes f(a_i, b_i) in row order, so the shape split is
/// pure loop strength reduction — results are bit-identical across
/// shapes, and constant subtrees fold to one scalar op per chunk.
template <typename F>
ExprProgram::RegRef BinLoop(ExprProgram::RegRef a, ExprProgram::RegRef b,
                            double* d, std::size_t len, F f) {
  if (a.vec == nullptr && b.vec == nullptr) {
    return {nullptr, f(a.scalar, b.scalar)};
  }
  if (a.vec == nullptr) {
    const double s = a.scalar;
    const double* y = b.vec;
    for (std::size_t i = 0; i < len; ++i) d[i] = f(s, y[i]);
  } else if (b.vec == nullptr) {
    const double* x = a.vec;
    const double s = b.scalar;
    for (std::size_t i = 0; i < len; ++i) d[i] = f(x[i], s);
  } else {
    const double* x = a.vec;
    const double* y = b.vec;
    for (std::size_t i = 0; i < len; ++i) d[i] = f(x[i], y[i]);
  }
  return {d, 0};
}

template <typename F>
ExprProgram::RegRef UnLoop(ExprProgram::RegRef a, double* d, std::size_t len,
                           F f) {
  if (a.vec == nullptr) return {nullptr, f(a.scalar)};
  const double* x = a.vec;
  for (std::size_t i = 0; i < len; ++i) d[i] = f(x[i]);
  return {d, 0};
}

bool IsCmpOp(ExprOp op) {
  switch (op) {
    case ExprOp::kCmpEq:
    case ExprOp::kCmpNe:
    case ExprOp::kCmpLt:
    case ExprOp::kCmpLe:
    case ExprOp::kCmpGt:
    case ExprOp::kCmpGe:
      return true;
    default:
      return false;
  }
}

/// Selection loop for a fused comparison tail: pushes begin + i when
/// pred(a_i, b_i), same truth value as materializing 1.0/0.0 and testing
/// != 0.0 would produce.
template <typename F>
void SelectLoop(ExprProgram::RegRef a, ExprProgram::RegRef b,
                std::int64_t begin, std::size_t len,
                std::vector<std::uint32_t>* keep, F pred) {
  for (std::size_t i = 0; i < len; ++i) {
    const double x = a.vec != nullptr ? a.vec[i] : a.scalar;
    const double y = b.vec != nullptr ? b.vec[i] : b.scalar;
    if (pred(x, y)) {
      keep->push_back(static_cast<std::uint32_t>(begin + static_cast<std::int64_t>(i)));
    }
  }
}

}  // namespace

void ExprProgram::ExecInsns(const ColumnBatch& in, std::int64_t begin,
                            std::int64_t end, std::size_t n_insns,
                            Scratch* scratch) const {
  const std::size_t len = static_cast<std::size_t>(end - begin);
  auto& regs = scratch->regs;
  auto& views = scratch->views;
  if (regs.size() < num_regs_) regs.resize(num_regs_);
  if (views.size() < num_regs_) views.resize(num_regs_);
  const std::size_t base = static_cast<std::size_t>(begin);
  // Owned buffers are sized lazily: a register that only ever views a
  // column or holds a scalar never allocates.
  auto owned = [&](std::uint16_t r) {
    if (regs[r].size() < len) regs[r].resize(len);
    return regs[r].data();
  };
  for (std::size_t k = 0; k < n_insns; ++k) {
    const ExprInsn& ins = insns_[k];
    switch (ins.op) {
      case ExprOp::kLoadCol: {
        const ColumnBatch::Column& c = in.col(ins.a);
        if (c.type == ColType::kInt) {
          const std::int64_t* s = c.ints.data() + base;
          double* d = owned(ins.dst);
          for (std::size_t i = 0; i < len; ++i) {
            d[i] = static_cast<double>(s[i]);
          }
          views[ins.dst] = {d, 0};
        } else {
          // Zero-copy: the register borrows the column's storage.
          views[ins.dst] = {c.doubles.data() + base, 0};
        }
        break;
      }
      case ExprOp::kLoadConst:
        views[ins.dst] = {nullptr, ins.imm};
        break;
      case ExprOp::kAdd:
        views[ins.dst] = BinLoop(views[ins.a], views[ins.b], owned(ins.dst),
                                 len, [](double x, double y) { return x + y; });
        break;
      case ExprOp::kSub:
        views[ins.dst] = BinLoop(views[ins.a], views[ins.b], owned(ins.dst),
                                 len, [](double x, double y) { return x - y; });
        break;
      case ExprOp::kMul:
        views[ins.dst] = BinLoop(views[ins.a], views[ins.b], owned(ins.dst),
                                 len, [](double x, double y) { return x * y; });
        break;
      case ExprOp::kDiv:
        views[ins.dst] = BinLoop(views[ins.a], views[ins.b], owned(ins.dst),
                                 len, [](double x, double y) { return x / y; });
        break;
      case ExprOp::kMax:
        views[ins.dst] =
            BinLoop(views[ins.a], views[ins.b], owned(ins.dst), len,
                    [](double x, double y) { return x < y ? y : x; });
        break;
      case ExprOp::kSqrt:
        views[ins.dst] = UnLoop(views[ins.a], owned(ins.dst), len,
                                [](double x) { return std::sqrt(x); });
        break;
      case ExprOp::kExp:
        views[ins.dst] = UnLoop(views[ins.a], owned(ins.dst), len,
                                [](double x) { return std::exp(x); });
        break;
      case ExprOp::kLog:
        views[ins.dst] = UnLoop(views[ins.a], owned(ins.dst), len,
                                [](double x) { return std::log(x); });
        break;
      case ExprOp::kAbs:
        views[ins.dst] = UnLoop(views[ins.a], owned(ins.dst), len,
                                [](double x) { return std::fabs(x); });
        break;
      case ExprOp::kCmpEq:
        views[ins.dst] =
            BinLoop(views[ins.a], views[ins.b], owned(ins.dst), len,
                    [](double x, double y) { return x == y ? 1.0 : 0.0; });
        break;
      case ExprOp::kCmpNe:
        views[ins.dst] =
            BinLoop(views[ins.a], views[ins.b], owned(ins.dst), len,
                    [](double x, double y) { return x != y ? 1.0 : 0.0; });
        break;
      case ExprOp::kCmpLt:
        views[ins.dst] =
            BinLoop(views[ins.a], views[ins.b], owned(ins.dst), len,
                    [](double x, double y) { return x < y ? 1.0 : 0.0; });
        break;
      case ExprOp::kCmpLe:
        views[ins.dst] =
            BinLoop(views[ins.a], views[ins.b], owned(ins.dst), len,
                    [](double x, double y) { return x <= y ? 1.0 : 0.0; });
        break;
      case ExprOp::kCmpGt:
        views[ins.dst] =
            BinLoop(views[ins.a], views[ins.b], owned(ins.dst), len,
                    [](double x, double y) { return x > y ? 1.0 : 0.0; });
        break;
      case ExprOp::kCmpGe:
        views[ins.dst] =
            BinLoop(views[ins.a], views[ins.b], owned(ins.dst), len,
                    [](double x, double y) { return x >= y ? 1.0 : 0.0; });
        break;
      case ExprOp::kIntIn: {
        const ColumnBatch::Column& c = in.col(ins.a);
        // The row interpreter's AsInt would abort on a double column; the
        // typed batch makes the same contract a compile-a-batch check.
        MLBENCH_CHECK_MSG(c.type == ColType::kInt,
                          "IntIn over a non-integer column");
        const std::int64_t* s = c.ints.data() + base;
        const auto& set = sets_[ins.b];
        double* d = owned(ins.dst);
        for (std::size_t i = 0; i < len; ++i) {
          d[i] = InSet(s[i], set) ? 1.0 : 0.0;
        }
        views[ins.dst] = {d, 0};
        break;
      }
    }
  }
}

void ExprProgram::EvalBatch(const ColumnBatch& in, std::int64_t begin,
                            std::int64_t end, double* out,
                            Scratch* scratch) const {
  const std::size_t len = static_cast<std::size_t>(end - begin);
  if (len == 0) return;
  ExecInsns(in, begin, end, insns_.size(), scratch);
  const RegRef res = scratch->views[0];
  if (res.vec == nullptr) {
    for (std::size_t i = 0; i < len; ++i) out[i] = res.scalar;
  } else {
    for (std::size_t i = 0; i < len; ++i) out[i] = res.vec[i];
  }
}

void ExprProgram::SelectBatch(const ColumnBatch& in, std::int64_t begin,
                              std::int64_t end,
                              std::vector<std::uint32_t>* keep,
                              Scratch* scratch) const {
  const std::size_t len = static_cast<std::size_t>(end - begin);
  if (len == 0) return;
  // Fused tail: a program ending in a comparison (every compiled
  // predicate) or set membership selects straight from the operand
  // streams — the 0/1 result column is never written.
  const ExprInsn& last = insns_.back();
  if (IsCmpOp(last.op) && last.dst == 0) {
    ExecInsns(in, begin, end, insns_.size() - 1, scratch);
    const RegRef a = scratch->views[last.a];
    const RegRef b = scratch->views[last.b];
    switch (last.op) {
      case ExprOp::kCmpEq:
        SelectLoop(a, b, begin, len, keep,
                   [](double x, double y) { return x == y; });
        return;
      case ExprOp::kCmpNe:
        SelectLoop(a, b, begin, len, keep,
                   [](double x, double y) { return x != y; });
        return;
      case ExprOp::kCmpLt:
        SelectLoop(a, b, begin, len, keep,
                   [](double x, double y) { return x < y; });
        return;
      case ExprOp::kCmpLe:
        SelectLoop(a, b, begin, len, keep,
                   [](double x, double y) { return x <= y; });
        return;
      case ExprOp::kCmpGt:
        SelectLoop(a, b, begin, len, keep,
                   [](double x, double y) { return x > y; });
        return;
      case ExprOp::kCmpGe:
        SelectLoop(a, b, begin, len, keep,
                   [](double x, double y) { return x >= y; });
        return;
      default:
        break;
    }
  }
  if (last.op == ExprOp::kIntIn && last.dst == 0) {
    const ColumnBatch::Column& c = in.col(last.a);
    MLBENCH_CHECK_MSG(c.type == ColType::kInt,
                      "IntIn over a non-integer column");
    ExecInsns(in, begin, end, insns_.size() - 1, scratch);
    const std::int64_t* s = c.ints.data() + static_cast<std::size_t>(begin);
    const auto& set = sets_[last.b];
    for (std::size_t i = 0; i < len; ++i) {
      if (InSet(s[i], set)) {
        keep->push_back(
            static_cast<std::uint32_t>(begin + static_cast<std::int64_t>(i)));
      }
    }
    return;
  }
  // General tail: evaluate fully, then test non-zero.
  ExecInsns(in, begin, end, insns_.size(), scratch);
  const RegRef res = scratch->views[0];
  if (res.vec == nullptr) {
    if (res.scalar != 0.0) {
      for (std::size_t i = 0; i < len; ++i) {
        keep->push_back(
            static_cast<std::uint32_t>(begin + static_cast<std::int64_t>(i)));
      }
    }
    return;
  }
  for (std::size_t i = 0; i < len; ++i) {
    if (res.vec[i] != 0.0) {
      keep->push_back(
          static_cast<std::uint32_t>(begin + static_cast<std::int64_t>(i)));
    }
  }
}

}  // namespace mlbench::reldb
