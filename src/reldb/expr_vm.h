#pragma once

#include <cstdint>
#include <vector>

#include "reldb/column_batch.h"
#include "reldb/value.h"

/// \file expr_vm.h
/// Compiled scalar expressions for the relational engine's hot paths.
///
/// SimSQL pays a per-tuple interpretation price for every WHERE predicate
/// and computed SELECT column; PR 3's columnar engine kept that cost shape
/// honest by materializing a row Tuple and making an indirect
/// std::function call per element. This file closes the interpreted-vs-
/// compiled gap on the host side: a ScalarExpr tree (column refs,
/// constants, + - * /, comparisons, max, sqrt/exp/log/abs, int-in-set)
/// compiles once per operator into a compact register bytecode, and the
/// evaluator fuses with the columnar batch loop — one opcode dispatch per
/// instruction per chunk, reading the typed column arrays directly and
/// writing selection vectors (filters) or output columns (projects) with
/// no per-row Tuple materialization.
///
/// Parity contract: every opcode applies the same IEEE operation in the
/// same order as the tree-walking interpreter, element by element, so the
/// compiled path is bit-identical to the interpreted path — results,
/// simulated charges, RNG streams, and selection orders — at any
/// MLBENCH_THREADS. The interpreter remains reachable via
/// MLBENCH_RELDB_INTERP=1 (see Database::DefaultExprVm) and is the parity
/// baseline for tests.

namespace mlbench::reldb {

/// A structured scalar expression over the columns of one relation.
/// Drivers and the SQL front end build these instead of opaque
/// std::function lambdas wherever the expression fits the vocabulary;
/// ExprProgram::Compile turns the tree into bytecode. Trees are plain
/// values: copy freely, compose with the static factories.
struct ScalarExpr {
  enum class Kind : std::uint8_t { kCol, kConst, kBin, kCmp, kCall, kIntIn };
  enum class BinOp : std::uint8_t { kAdd, kSub, kMul, kDiv, kMax };
  enum class CmpOp : std::uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };
  enum class Fn1 : std::uint8_t { kSqrt, kExp, kLog, kAbs };

  Kind kind = Kind::kConst;
  std::size_t col = 0;   ///< kCol / kIntIn: input column index
  double value = 0;      ///< kConst
  BinOp bin = BinOp::kAdd;
  CmpOp cmp = CmpOp::kEq;
  Fn1 fn = Fn1::kSqrt;
  std::vector<std::int64_t> set;  ///< kIntIn: membership values, in order
  std::vector<ScalarExpr> kids;

  static ScalarExpr Col(std::size_t idx) {
    ScalarExpr e;
    e.kind = Kind::kCol;
    e.col = idx;
    return e;
  }
  static ScalarExpr Const(double v) {
    ScalarExpr e;
    e.kind = Kind::kConst;
    e.value = v;
    return e;
  }
  static ScalarExpr Bin(BinOp op, ScalarExpr a, ScalarExpr b) {
    ScalarExpr e;
    e.kind = Kind::kBin;
    e.bin = op;
    e.kids.push_back(std::move(a));
    e.kids.push_back(std::move(b));
    return e;
  }
  static ScalarExpr Add(ScalarExpr a, ScalarExpr b) {
    return Bin(BinOp::kAdd, std::move(a), std::move(b));
  }
  static ScalarExpr Sub(ScalarExpr a, ScalarExpr b) {
    return Bin(BinOp::kSub, std::move(a), std::move(b));
  }
  static ScalarExpr Mul(ScalarExpr a, ScalarExpr b) {
    return Bin(BinOp::kMul, std::move(a), std::move(b));
  }
  static ScalarExpr Div(ScalarExpr a, ScalarExpr b) {
    return Bin(BinOp::kDiv, std::move(a), std::move(b));
  }
  /// std::max semantics with the operand order preserved: (a < b) ? b : a,
  /// so NaN handling matches a driver lambda that called std::max(a, b).
  static ScalarExpr Max(ScalarExpr a, ScalarExpr b) {
    return Bin(BinOp::kMax, std::move(a), std::move(b));
  }
  /// Comparison producing 1.0 (true) / 0.0 (false); the root of every
  /// compiled predicate.
  static ScalarExpr Compare(CmpOp op, ScalarExpr a, ScalarExpr b) {
    ScalarExpr e;
    e.kind = Kind::kCmp;
    e.cmp = op;
    e.kids.push_back(std::move(a));
    e.kids.push_back(std::move(b));
    return e;
  }
  static ScalarExpr Call(Fn1 f, ScalarExpr arg) {
    ScalarExpr e;
    e.kind = Kind::kCall;
    e.fn = f;
    e.kids.push_back(std::move(arg));
    return e;
  }
  /// 1.0 when integer column `idx` is one of `values` (tested in the given
  /// order with early exit, like the hand-written membership scans).
  static ScalarExpr IntIn(std::size_t idx, std::vector<std::int64_t> values) {
    ScalarExpr e;
    e.kind = Kind::kIntIn;
    e.col = idx;
    e.set = std::move(values);
    return e;
  }
};

/// One bytecode instruction of a compiled expression. The machine is a
/// register machine with stack-slot allocation: the node compiled into
/// register d places its left child in d and its right child in d + 1, so
/// register count equals the expression tree's operand-stack depth.
enum class ExprOp : std::uint8_t {
  kLoadCol,    // regs[dst] = column a (ints cast to double, AsDouble-style)
  kLoadConst,  // regs[dst] = imm
  kAdd,        // regs[dst] = regs[a] + regs[b]
  kSub,
  kMul,
  kDiv,
  kMax,     // (regs[a] < regs[b]) ? regs[b] : regs[a]
  kSqrt,    // regs[dst] = op(regs[a])
  kExp,
  kLog,
  kAbs,
  kCmpEq,   // regs[dst] = regs[a] OP regs[b] ? 1.0 : 0.0
  kCmpNe,
  kCmpLt,
  kCmpLe,
  kCmpGt,
  kCmpGe,
  kIntIn,   // regs[dst] = int column a in sets()[b] ? 1.0 : 0.0
};

struct ExprInsn {
  ExprOp op = ExprOp::kLoadConst;
  std::uint16_t dst = 0;
  std::uint16_t a = 0;  ///< source register, or column index for loads/kIntIn
  std::uint16_t b = 0;  ///< source register, or set index for kIntIn
  double imm = 0;       ///< kLoadConst payload
};

/// A compiled expression: bytecode plus the constant pool of int-in-set
/// membership lists. Programs are immutable after Compile and safe to
/// share across threads; per-thread evaluation state lives in Scratch.
class ExprProgram {
 public:
  /// Compiles a ScalarExpr tree. Aborts (programmer error) if the tree
  /// nests deeper than the 16-bit register file — far beyond any query.
  static ExprProgram Compile(const ScalarExpr& expr);

  const std::vector<ExprInsn>& insns() const { return insns_; }
  const std::vector<std::vector<std::int64_t>>& sets() const { return sets_; }
  std::size_t num_regs() const { return num_regs_; }

  /// Interprets the program over one row Tuple (the row-engine fallback
  /// and the MLBENCH_RELDB_INTERP parity baseline).
  double EvalRow(const Tuple& t) const;
  bool EvalRowPred(const Tuple& t) const { return EvalRow(t) != 0.0; }

  /// One vectorized register during batch evaluation: either a view (a
  /// double column's storage, borrowed zero-copy), an owned chunk-sized
  /// buffer in Scratch, or a broadcast scalar (constants never touch
  /// memory). The evaluator picks the loop variant per operand shape; the
  /// per-element arithmetic is identical in every variant, so the shapes
  /// are invisible to results.
  struct RegRef {
    const double* vec = nullptr;  ///< nullptr: broadcast scalar
    double scalar = 0;
  };

  /// Per-thread vectorized register file; reused across chunks by one
  /// evaluation loop, never shared between threads.
  struct Scratch {
    std::vector<std::vector<double>> regs;  ///< owned per-register buffers
    std::vector<RegRef> views;              ///< current shape of each register
  };

  /// Batch-fused evaluation of rows [begin, end) of `in`, writing the
  /// result of row i to out[i - begin]. One dispatch per instruction per
  /// call; per-element operations and order match EvalRow exactly.
  void EvalBatch(const ColumnBatch& in, std::int64_t begin, std::int64_t end,
                 double* out, Scratch* scratch) const;

  /// Batch-fused predicate: appends the indices of rows in [begin, end)
  /// whose value is non-zero to `keep`, in row order. When the program
  /// ends in a comparison or set-membership opcode (every compiled
  /// predicate does), the selection is fused with that final instruction
  /// — no 0/1 column is materialized.
  void SelectBatch(const ColumnBatch& in, std::int64_t begin, std::int64_t end,
                   std::vector<std::uint32_t>* keep, Scratch* scratch) const;

 private:
  /// Emits code computing `e` into register `dst`; updates num_regs_.
  void CompileNode(const ScalarExpr& e, std::uint16_t dst);

  /// Executes the first `n_insns` instructions over rows [begin, end),
  /// leaving each register's shape in scratch->views.
  void ExecInsns(const ColumnBatch& in, std::int64_t begin, std::int64_t end,
                 std::size_t n_insns, Scratch* scratch) const;

  std::vector<ExprInsn> insns_;
  std::vector<std::vector<std::int64_t>> sets_;
  std::size_t num_regs_ = 1;
};

}  // namespace mlbench::reldb
