#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "reldb/table.h"
#include "reldb/value.h"

/// \file column_batch.h
/// Columnar batch representation of a relation.
///
/// The row engine (table.h) pays SimSQL's per-tuple interpretation price
/// for real on the host: every Tuple is a heap-allocated
/// vector<variant<int64_t, double>>, and join/group-by hash tables key on
/// whole Tuples. A ColumnBatch stores the same relation as one typed
/// contiguous array per column (int64 or double, inferred on load), so
/// operators can run selection-vector filters, index-gather projects, and
/// joins/group-bys keyed on packed fixed-width keys with zero per-row
/// allocation. Conversion to/from the row Table is exact (values keep
/// their variant alternative bit-for-bit), which is what lets the columnar
/// engine promise bit-identical results to the row engine; a column that
/// mixes int and double values cannot be typed and signals the caller to
/// fall back to the row path.

namespace mlbench::reldb {

/// Storage type of one column.
enum class ColType : std::uint8_t { kInt, kDouble };

class ColumnBatch {
 public:
  /// One typed column: exactly one of the two arrays is active.
  struct Column {
    ColType type = ColType::kInt;
    std::vector<std::int64_t> ints;
    std::vector<double> doubles;

    static Column Ints(std::vector<std::int64_t> v) {
      Column c;
      c.type = ColType::kInt;
      c.ints = std::move(v);
      return c;
    }
    static Column Doubles(std::vector<double> v) {
      Column c;
      c.type = ColType::kDouble;
      c.doubles = std::move(v);
      return c;
    }
    /// An uninitialized column of `type` with n slots (for gather fills).
    static Column Sized(ColType type, std::size_t n) {
      Column c;
      c.type = type;
      if (type == ColType::kInt) {
        c.ints.resize(n);
      } else {
        c.doubles.resize(n);
      }
      return c;
    }

    std::size_t size() const {
      return type == ColType::kInt ? ints.size() : doubles.size();
    }
    Value At(std::size_t r) const {
      if (type == ColType::kInt) return ints[r];
      return doubles[r];
    }
    double AsDoubleAt(std::size_t r) const {
      return type == ColType::kInt ? static_cast<double>(ints[r])
                                   : doubles[r];
    }
  };

  ColumnBatch() = default;
  ColumnBatch(Schema schema, std::vector<Column> cols, double scale);
  ColumnBatch(Schema schema,
              std::vector<std::shared_ptr<const Column>> cols, double scale);

  /// Types each column off the rows and packs it contiguously. Returns
  /// nullopt when any column mixes int and double values — the caller must
  /// stay on the row path. Empty tables convert trivially (all columns
  /// default to kInt with zero rows).
  static std::optional<ColumnBatch> FromTable(const Table& t);

  /// Exact inverse of FromTable: rebuilds the row form, preserving each
  /// value's variant alternative.
  Table ToTable() const;

  const Schema& schema() const { return schema_; }
  double scale() const { return scale_; }
  std::size_t num_rows() const { return rows_; }
  std::size_t num_cols() const { return cols_.size(); }
  double logical_rows() const {
    return static_cast<double>(rows_) * scale_;
  }

  const Column& col(std::size_t c) const { return *cols_[c]; }
  std::shared_ptr<const Column> col_ptr(std::size_t c) const {
    return cols_[c];
  }

  /// Rebuilds row `r` into `*out`, reusing its storage.
  void MaterializeRow(std::size_t r, Tuple* out) const {
    out->resize(cols_.size());
    for (std::size_t c = 0; c < cols_.size(); ++c) {
      (*out)[c] = cols_[c]->At(r);
    }
  }

  /// Same columns under a new schema/scale (zero-copy rename).
  ColumnBatch WithSchema(Schema schema, double scale) const;

 private:
  Schema schema_;
  std::vector<std::shared_ptr<const Column>> cols_;
  std::size_t rows_ = 0;
  double scale_ = 1.0;
};

// ---------------------------------------------------------------------------
// Packed fixed-width keys
// ---------------------------------------------------------------------------
//
// Join and group-by keys over int columns pack into a flat fixed-width
// struct — a single int64_t payload for one-column keys — instead of a heap
// Tuple, eliminating the per-probe allocation and variant dispatch of
// TupleHash. Double key columns keep the row path: packing them bitwise
// would change key equality semantics (-0.0 vs 0.0, NaN), and every key in
// the paper's plans is an integer identifier anyway.

/// Widest key the packed path handles; wider keys fall back to row keying.
inline constexpr std::size_t kMaxPackedKeyCols = 4;

struct PackedKey {
  std::array<std::int64_t, kMaxPackedKeyCols> v{};
  std::uint32_t n = 0;

  friend bool operator==(const PackedKey& a, const PackedKey& b) {
    if (a.n != b.n) return false;
    for (std::uint32_t i = 0; i < a.n; ++i) {
      if (a.v[i] != b.v[i]) return false;
    }
    return true;
  }
};

struct PackedKeyHash {
  std::size_t operator()(const PackedKey& k) const {
    std::uint64_t h = 0x9E3779B97F4A7C15ULL ^ k.n;
    for (std::uint32_t i = 0; i < k.n; ++i) {
      // splitmix64 finalizer per component, folded like TupleHash.
      std::uint64_t x =
          static_cast<std::uint64_t>(k.v[i]) + 0x9E3779B97F4A7C15ULL;
      x ^= x >> 30;
      x *= 0xBF58476D1CE4E5B9ULL;
      x ^= x >> 27;
      x *= 0x94D049BB133111EBULL;
      x ^= x >> 31;
      h ^= x + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
    }
    return static_cast<std::size_t>(h);
  }
};

/// True iff the key columns `idx` of `batch` can use the packed path:
/// every key column is kInt and the key is at most kMaxPackedKeyCols wide.
inline bool CanPackKeys(const ColumnBatch& batch,
                        const std::vector<std::size_t>& idx) {
  if (idx.size() > kMaxPackedKeyCols) return false;
  for (std::size_t c : idx) {
    if (batch.col(c).type != ColType::kInt) return false;
  }
  return true;
}

/// Packs row `r`'s key columns; requires CanPackKeys.
inline PackedKey PackRowKey(const ColumnBatch& batch,
                            const std::vector<std::size_t>& idx,
                            std::size_t r) {
  PackedKey k;
  k.n = static_cast<std::uint32_t>(idx.size());
  for (std::size_t i = 0; i < idx.size(); ++i) {
    k.v[i] = batch.col(idx[i]).ints[r];
  }
  return k;
}

}  // namespace mlbench::reldb
