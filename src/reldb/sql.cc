#include "reldb/sql.h"

#include <cctype>
#include <cmath>
#include <functional>
#include <optional>
#include <utility>

#include "reldb/expr_vm.h"

namespace mlbench::reldb {

namespace {

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

struct Token {
  enum class Kind {
    kIdent,   // possibly qualified (a.b) or versioned (name[3])
    kNumber,
    kComma,
    kLParen,
    kRParen,
    kStar,
    kPlus,
    kMinus,
    kSlash,
    kDot,
    kCmp,  // = < > <= >= <>
    kHint,  // /*+ scale(N) */  (value in num)
    kEnd,
  };
  Kind kind = Kind::kEnd;
  std::string text;
  double num = 0;
};

class Lexer {
 public:
  explicit Lexer(const std::string& in) : in_(in) {}

  Result<std::vector<Token>> Run() {
    std::vector<Token> out;
    while (true) {
      SkipSpaceAndComments();
      if (pos_ >= in_.size() || in_[pos_] == ';') break;
      char c = in_[pos_];
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        out.push_back(Ident());
      } else if (std::isdigit(static_cast<unsigned char>(c)) ||
                 (c == '.' &&
                  pos_ + 1 < in_.size() &&
                  std::isdigit(static_cast<unsigned char>(in_[pos_ + 1])))) {
        out.push_back(Number());
      } else if (c == '/' && pos_ + 2 < in_.size() && in_[pos_ + 1] == '*' &&
                 in_[pos_ + 2] == '+') {
        MLBENCH_ASSIGN_OR_RETURN(Token t, Hint());
        out.push_back(std::move(t));
      } else {
        MLBENCH_ASSIGN_OR_RETURN(Token t, Symbol());
        out.push_back(std::move(t));
      }
    }
    out.push_back(Token{});
    return out;
  }

 private:
  void SkipSpaceAndComments() {
    while (pos_ < in_.size()) {
      char c = in_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '-' && pos_ + 1 < in_.size() && in_[pos_ + 1] == '-') {
        while (pos_ < in_.size() && in_[pos_] != '\n') ++pos_;
      } else if (c == '/' && pos_ + 1 < in_.size() && in_[pos_ + 1] == '*' &&
                 !(pos_ + 2 < in_.size() && in_[pos_ + 2] == '+')) {
        pos_ += 2;
        while (pos_ + 1 < in_.size() &&
               !(in_[pos_] == '*' && in_[pos_ + 1] == '/')) {
          ++pos_;
        }
        pos_ += 2;
      } else {
        break;
      }
    }
  }

  Token Ident() {
    Token t;
    t.kind = Token::Kind::kIdent;
    while (pos_ < in_.size() &&
           (std::isalnum(static_cast<unsigned char>(in_[pos_])) ||
            in_[pos_] == '_')) {
      t.text += in_[pos_++];
    }
    // Versioned-table suffix: name[3].
    if (pos_ < in_.size() && in_[pos_] == '[') {
      while (pos_ < in_.size() && in_[pos_] != ']') t.text += in_[pos_++];
      if (pos_ < in_.size()) t.text += in_[pos_++];
    }
    return t;
  }

  Token Number() {
    Token t;
    t.kind = Token::Kind::kNumber;
    std::size_t start = pos_;
    while (pos_ < in_.size() &&
           (std::isdigit(static_cast<unsigned char>(in_[pos_])) ||
            in_[pos_] == '.' || in_[pos_] == 'e' || in_[pos_] == 'E' ||
            ((in_[pos_] == '+' || in_[pos_] == '-') &&
             (in_[pos_ - 1] == 'e' || in_[pos_ - 1] == 'E')))) {
      ++pos_;
    }
    t.text = in_.substr(start, pos_ - start);
    t.num = std::stod(t.text);
    return t;
  }

  Result<Token> Hint() {
    // /*+ scale(123.0) */
    std::size_t end = in_.find("*/", pos_);
    if (end == std::string::npos) {
      return Status::InvalidArgument("unterminated hint comment");
    }
    std::string body = in_.substr(pos_ + 3, end - pos_ - 3);
    pos_ = end + 2;
    std::size_t lp = body.find('(');
    std::size_t rp = body.find(')');
    if (body.find("scale") == std::string::npos || lp == std::string::npos ||
        rp == std::string::npos) {
      return Status::InvalidArgument("unsupported hint: " + body);
    }
    Token t;
    t.kind = Token::Kind::kHint;
    t.num = std::stod(body.substr(lp + 1, rp - lp - 1));
    return t;
  }

  Result<Token> Symbol() {
    Token t;
    char c = in_[pos_++];
    switch (c) {
      case ',':
        t.kind = Token::Kind::kComma;
        return t;
      case '(':
        t.kind = Token::Kind::kLParen;
        return t;
      case ')':
        t.kind = Token::Kind::kRParen;
        return t;
      case '*':
        t.kind = Token::Kind::kStar;
        return t;
      case '+':
        t.kind = Token::Kind::kPlus;
        return t;
      case '-':
        t.kind = Token::Kind::kMinus;
        return t;
      case '/':
        t.kind = Token::Kind::kSlash;
        return t;
      case '.':
        t.kind = Token::Kind::kDot;
        return t;
      case '=':
        t.kind = Token::Kind::kCmp;
        t.text = "=";
        return t;
      case '<':
        t.kind = Token::Kind::kCmp;
        t.text = "<";
        if (pos_ < in_.size() && (in_[pos_] == '=' || in_[pos_] == '>')) {
          t.text += in_[pos_++];
        }
        return t;
      case '>':
        t.kind = Token::Kind::kCmp;
        t.text = ">";
        if (pos_ < in_.size() && in_[pos_] == '=') t.text += in_[pos_++];
        return t;
      default:
        return Status::InvalidArgument(std::string("unexpected character '") +
                                       c + "' in SQL");
    }
  }

  const std::string& in_;
  std::size_t pos_ = 0;
};

std::string Lower(std::string s) {
  for (auto& c : s) c = static_cast<char>(std::tolower(c));
  return s;
}

// ---------------------------------------------------------------------------
// AST
// ---------------------------------------------------------------------------

struct Expr {
  enum class Kind { kColumn, kNumber, kBinary, kFunc } kind = Kind::kNumber;
  std::string column;  // qualified ("t.col") or plain
  double num = 0;
  char op = 0;
  std::string func;
  std::vector<Expr> kids;
};

struct SelectItem {
  Expr expr;
  std::string alias;
  bool is_agg = false;
  AggOp agg = AggOp::kSum;
  bool count_star = false;
  // Post-aggregation arithmetic (SimSQL's "COUNT(*) + clus.pi_prior"):
  // the aggregate result is combined with a per-group expression whose
  // inputs are functionally dependent on the group keys.
  char post_op = 0;
  std::optional<Expr> post_expr;
};

struct TableRef {
  std::string name;
  std::string alias;
};

struct Pred {
  Expr lhs, rhs;
  std::string cmp;
};

struct SelectStmt {
  double scale_hint = -1;
  std::vector<SelectItem> items;
  std::vector<TableRef> from;
  std::vector<Pred> where;
  std::vector<std::string> group_by;
  // WITH alias AS VgName(subquery) [PER (cols)]
  bool has_vg = false;
  std::string vg_alias, vg_name;
  std::shared_ptr<SelectStmt> vg_input;
  std::vector<std::string> vg_per;
};

struct Statement {
  enum class Kind { kSelect, kCreateTable, kCreateView } kind = Kind::kSelect;
  std::string target;
  std::vector<std::string> target_cols;
  SelectStmt select;
};

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

class Parser {
 public:
  explicit Parser(std::vector<Token> toks) : toks_(std::move(toks)) {}

  Result<Statement> ParseStatement() {
    Statement stmt;
    if (IsKeyword("create")) {
      Next();
      bool view = IsKeyword("view");
      if (!view && !IsKeyword("table")) {
        return Status::InvalidArgument("expected TABLE or VIEW after CREATE");
      }
      Next();
      stmt.kind = view ? Statement::Kind::kCreateView
                       : Statement::Kind::kCreateTable;
      if (Cur().kind != Token::Kind::kIdent) {
        return Status::InvalidArgument("expected table name");
      }
      stmt.target = Cur().text;
      Next();
      if (Cur().kind == Token::Kind::kLParen) {
        Next();
        while (Cur().kind == Token::Kind::kIdent) {
          stmt.target_cols.push_back(Cur().text);
          Next();
          if (Cur().kind == Token::Kind::kComma) Next();
        }
        MLBENCH_RETURN_NOT_OK(Expect(Token::Kind::kRParen, ")"));
      }
      if (!IsKeyword("as")) {
        return Status::InvalidArgument("expected AS in CREATE ... AS");
      }
      Next();
    }
    MLBENCH_ASSIGN_OR_RETURN(stmt.select, ParseSelect());
    return stmt;
  }

 private:
  const Token& Cur() const { return toks_[pos_]; }
  void Next() { ++pos_; }
  bool IsKeyword(const std::string& kw) const {
    return Cur().kind == Token::Kind::kIdent && Lower(Cur().text) == kw;
  }
  Status Expect(Token::Kind kind, const std::string& what) {
    if (Cur().kind != kind) {
      return Status::InvalidArgument("expected " + what);
    }
    Next();
    return Status::OK();
  }

  Result<SelectStmt> ParseSelect() {
    SelectStmt s;
    if (IsKeyword("with")) {
      Next();
      s.has_vg = true;
      if (Cur().kind != Token::Kind::kIdent) {
        return Status::InvalidArgument("expected alias after WITH");
      }
      s.vg_alias = Cur().text;
      Next();
      if (!IsKeyword("as")) {
        return Status::InvalidArgument("expected AS in WITH clause");
      }
      Next();
      if (Cur().kind != Token::Kind::kIdent) {
        return Status::InvalidArgument("expected VG function name");
      }
      s.vg_name = Cur().text;
      Next();
      MLBENCH_RETURN_NOT_OK(Expect(Token::Kind::kLParen, "("));
      MLBENCH_ASSIGN_OR_RETURN(SelectStmt inner, ParseSelect());
      s.vg_input = std::make_shared<SelectStmt>(std::move(inner));
      MLBENCH_RETURN_NOT_OK(Expect(Token::Kind::kRParen, ")"));
      if (IsKeyword("per")) {
        Next();
        MLBENCH_RETURN_NOT_OK(Expect(Token::Kind::kLParen, "("));
        while (Cur().kind == Token::Kind::kIdent) {
          s.vg_per.push_back(Cur().text);
          Next();
          if (Cur().kind == Token::Kind::kComma) Next();
        }
        MLBENCH_RETURN_NOT_OK(Expect(Token::Kind::kRParen, ")"));
      }
    }
    if (!IsKeyword("select")) {
      return Status::InvalidArgument("expected SELECT");
    }
    Next();
    if (Cur().kind == Token::Kind::kHint) {
      s.scale_hint = Cur().num;
      Next();
    }
    // Select list.
    while (true) {
      MLBENCH_ASSIGN_OR_RETURN(SelectItem item, ParseSelectItem());
      s.items.push_back(std::move(item));
      if (Cur().kind != Token::Kind::kComma) break;
      Next();
    }
    if (!IsKeyword("from")) {
      return Status::InvalidArgument("expected FROM");
    }
    Next();
    while (true) {
      TableRef ref;
      if (Cur().kind != Token::Kind::kIdent) {
        return Status::InvalidArgument("expected table name in FROM");
      }
      ref.name = Cur().text;
      Next();
      if (Cur().kind == Token::Kind::kIdent && !IsKeyword("where") &&
          !IsKeyword("group") && !IsKeyword("from") && !IsKeyword("per") &&
          !IsKeyword("select")) {
        ref.alias = Cur().text;
        Next();
      } else {
        ref.alias = ref.name;
      }
      s.from.push_back(std::move(ref));
      if (Cur().kind != Token::Kind::kComma) break;
      Next();
    }
    if (IsKeyword("where")) {
      Next();
      while (true) {
        Pred p;
        MLBENCH_ASSIGN_OR_RETURN(p.lhs, ParseExpr());
        if (Cur().kind != Token::Kind::kCmp) {
          return Status::InvalidArgument("expected comparison in WHERE");
        }
        p.cmp = Cur().text;
        Next();
        MLBENCH_ASSIGN_OR_RETURN(p.rhs, ParseExpr());
        s.where.push_back(std::move(p));
        if (!IsKeyword("and")) break;
        Next();
      }
    }
    if (IsKeyword("group")) {
      Next();
      if (!IsKeyword("by")) {
        return Status::InvalidArgument("expected BY after GROUP");
      }
      Next();
      while (Cur().kind == Token::Kind::kIdent) {
        std::string col = Cur().text;
        Next();
        if (Cur().kind == Token::Kind::kDot) {
          Next();
          if (Cur().kind != Token::Kind::kIdent) {
            return Status::InvalidArgument("expected column after '.'");
          }
          col += "." + Cur().text;
          Next();
        }
        s.group_by.push_back(std::move(col));
        if (Cur().kind != Token::Kind::kComma) break;
        Next();
      }
    }
    return s;
  }

  Result<SelectItem> ParseSelectItem() {
    SelectItem item;
    static const std::map<std::string, AggOp> kAggs = {
        {"sum", AggOp::kSum},   {"count", AggOp::kCount},
        {"avg", AggOp::kAvg},   {"min", AggOp::kMin},
        {"max", AggOp::kMax}};
    if (Cur().kind == Token::Kind::kIdent &&
        kAggs.contains(Lower(Cur().text)) && Peek().kind ==
        Token::Kind::kLParen) {
      item.is_agg = true;
      item.agg = kAggs.at(Lower(Cur().text));
      Next();
      Next();  // (
      if (Cur().kind == Token::Kind::kStar) {
        item.count_star = true;
        Next();
      } else {
        MLBENCH_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      }
      MLBENCH_RETURN_NOT_OK(Expect(Token::Kind::kRParen, ")"));
      // Optional post-aggregation arithmetic.
      if (Cur().kind == Token::Kind::kPlus ||
          Cur().kind == Token::Kind::kMinus ||
          Cur().kind == Token::Kind::kStar ||
          Cur().kind == Token::Kind::kSlash) {
        switch (Cur().kind) {
          case Token::Kind::kPlus:
            item.post_op = '+';
            break;
          case Token::Kind::kMinus:
            item.post_op = '-';
            break;
          case Token::Kind::kStar:
            item.post_op = '*';
            break;
          default:
            item.post_op = '/';
            break;
        }
        Next();
        MLBENCH_ASSIGN_OR_RETURN(Expr post, ParseExpr());
        item.post_expr = std::move(post);
      }
    } else {
      MLBENCH_ASSIGN_OR_RETURN(item.expr, ParseExpr());
    }
    if (IsKeyword("as")) {
      Next();
      if (Cur().kind != Token::Kind::kIdent) {
        return Status::InvalidArgument("expected alias after AS");
      }
      item.alias = Cur().text;
      Next();
    }
    return item;
  }

  const Token& Peek() const {
    return pos_ + 1 < toks_.size() ? toks_[pos_ + 1] : toks_.back();
  }

  // expr := term (('+'|'-') term)* ; term := factor (('*'|'/') factor)*
  Result<Expr> ParseExpr() {
    MLBENCH_ASSIGN_OR_RETURN(Expr lhs, ParseTerm());
    while (Cur().kind == Token::Kind::kPlus ||
           Cur().kind == Token::Kind::kMinus) {
      char op = Cur().kind == Token::Kind::kPlus ? '+' : '-';
      Next();
      MLBENCH_ASSIGN_OR_RETURN(Expr rhs, ParseTerm());
      Expr bin;
      bin.kind = Expr::Kind::kBinary;
      bin.op = op;
      bin.kids.push_back(std::move(lhs));
      bin.kids.push_back(std::move(rhs));
      lhs = std::move(bin);
    }
    return lhs;
  }

  Result<Expr> ParseTerm() {
    MLBENCH_ASSIGN_OR_RETURN(Expr lhs, ParseFactor());
    while (Cur().kind == Token::Kind::kStar ||
           Cur().kind == Token::Kind::kSlash) {
      char op = Cur().kind == Token::Kind::kStar ? '*' : '/';
      Next();
      MLBENCH_ASSIGN_OR_RETURN(Expr rhs, ParseFactor());
      Expr bin;
      bin.kind = Expr::Kind::kBinary;
      bin.op = op;
      bin.kids.push_back(std::move(lhs));
      bin.kids.push_back(std::move(rhs));
      lhs = std::move(bin);
    }
    return lhs;
  }

  Result<Expr> ParseFactor() {
    Expr e;
    if (Cur().kind == Token::Kind::kNumber) {
      e.kind = Expr::Kind::kNumber;
      e.num = Cur().num;
      Next();
      return e;
    }
    if (Cur().kind == Token::Kind::kMinus) {
      Next();
      MLBENCH_ASSIGN_OR_RETURN(Expr inner, ParseFactor());
      Expr zero;
      zero.kind = Expr::Kind::kNumber;
      zero.num = 0;
      e.kind = Expr::Kind::kBinary;
      e.op = '-';
      e.kids.push_back(std::move(zero));
      e.kids.push_back(std::move(inner));
      return e;
    }
    if (Cur().kind == Token::Kind::kLParen) {
      Next();
      MLBENCH_ASSIGN_OR_RETURN(e, ParseExpr());
      MLBENCH_RETURN_NOT_OK(Expect(Token::Kind::kRParen, ")"));
      return e;
    }
    if (Cur().kind == Token::Kind::kIdent) {
      std::string name = Cur().text;
      Next();
      if (Cur().kind == Token::Kind::kLParen &&
          (Lower(name) == "sqrt" || Lower(name) == "exp" ||
           Lower(name) == "log" || Lower(name) == "abs")) {
        Next();
        e.kind = Expr::Kind::kFunc;
        e.func = Lower(name);
        MLBENCH_ASSIGN_OR_RETURN(Expr arg, ParseExpr());
        e.kids.push_back(std::move(arg));
        MLBENCH_RETURN_NOT_OK(Expect(Token::Kind::kRParen, ")"));
        return e;
      }
      if (Cur().kind == Token::Kind::kDot) {
        Next();
        if (Cur().kind != Token::Kind::kIdent) {
          return Status::InvalidArgument("expected column after '.'");
        }
        name += "." + Cur().text;
        Next();
      }
      e.kind = Expr::Kind::kColumn;
      e.column = name;
      return e;
    }
    return Status::InvalidArgument("unexpected token in expression");
  }

  std::vector<Token> toks_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Compiler / executor
// ---------------------------------------------------------------------------

/// Resolves a (possibly qualified) column reference against a schema whose
/// names are "alias.col".
Result<std::size_t> ResolveColumn(const Schema& schema,
                                  const std::string& ref) {
  std::optional<std::size_t> found;
  for (std::size_t i = 0; i < schema.size(); ++i) {
    const std::string& name = schema.name(i);
    bool match = name == ref;
    if (!match && ref.find('.') == std::string::npos) {
      // Unqualified: match the suffix after the alias.
      std::size_t dot = name.rfind('.');
      match = dot != std::string::npos && name.substr(dot + 1) == ref;
    }
    if (match) {
      if (found.has_value()) {
        return Status::InvalidArgument("ambiguous column: " + ref);
      }
      found = i;
    }
  }
  if (!found.has_value()) {
    return Status::InvalidArgument("unknown column: " + ref);
  }
  return *found;
}

/// Lowers an AST expression to a structured ScalarExpr over rows of
/// `schema`: column references resolve to indices, operators and function
/// names to opcodes — all at plan time, never per row. The result compiles
/// into the bytecode VM (expr_vm.h) inside Rel::Filter / ColExpr::Expr.
Result<ScalarExpr> LowerExpr(const Expr& e, const Schema& schema) {
  switch (e.kind) {
    case Expr::Kind::kNumber:
      return ScalarExpr::Const(e.num);
    case Expr::Kind::kColumn: {
      MLBENCH_ASSIGN_OR_RETURN(std::size_t idx,
                               ResolveColumn(schema, e.column));
      return ScalarExpr::Col(idx);
    }
    case Expr::Kind::kBinary: {
      MLBENCH_ASSIGN_OR_RETURN(ScalarExpr lhs, LowerExpr(e.kids[0], schema));
      MLBENCH_ASSIGN_OR_RETURN(ScalarExpr rhs, LowerExpr(e.kids[1], schema));
      switch (e.op) {
        case '+':
          return ScalarExpr::Add(std::move(lhs), std::move(rhs));
        case '-':
          return ScalarExpr::Sub(std::move(lhs), std::move(rhs));
        case '*':
          return ScalarExpr::Mul(std::move(lhs), std::move(rhs));
        default:
          return ScalarExpr::Div(std::move(lhs), std::move(rhs));
      }
    }
    case Expr::Kind::kFunc: {
      MLBENCH_ASSIGN_OR_RETURN(ScalarExpr arg, LowerExpr(e.kids[0], schema));
      ScalarExpr::Fn1 fn = ScalarExpr::Fn1::kAbs;
      if (e.func == "sqrt") fn = ScalarExpr::Fn1::kSqrt;
      if (e.func == "exp") fn = ScalarExpr::Fn1::kExp;
      if (e.func == "log") fn = ScalarExpr::Fn1::kLog;
      return ScalarExpr::Call(fn, std::move(arg));
    }
  }
  return Status::Internal("unreachable expression kind");
}

/// Lowers a WHERE predicate: both sides lower as expressions and the
/// comparison operator resolves to its opcode once, at plan time — there
/// is no per-row string comparison on either engine.
Result<ScalarExpr> LowerPred(const Pred& p, const Schema& schema) {
  MLBENCH_ASSIGN_OR_RETURN(ScalarExpr lhs, LowerExpr(p.lhs, schema));
  MLBENCH_ASSIGN_OR_RETURN(ScalarExpr rhs, LowerExpr(p.rhs, schema));
  ScalarExpr::CmpOp op;
  if (p.cmp == "=") {
    op = ScalarExpr::CmpOp::kEq;
  } else if (p.cmp == "<") {
    op = ScalarExpr::CmpOp::kLt;
  } else if (p.cmp == ">") {
    op = ScalarExpr::CmpOp::kGt;
  } else if (p.cmp == "<=") {
    op = ScalarExpr::CmpOp::kLe;
  } else if (p.cmp == ">=") {
    op = ScalarExpr::CmpOp::kGe;
  } else {  // <>
    op = ScalarExpr::CmpOp::kNe;
  }
  return ScalarExpr::Compare(op, std::move(lhs), std::move(rhs));
}

/// Column name an expression naturally carries (for output schemas).
std::string ExprName(const Expr& e, int ordinal) {
  if (e.kind == Expr::Kind::kColumn) {
    std::size_t dot = e.column.rfind('.');
    return dot == std::string::npos ? e.column : e.column.substr(dot + 1);
  }
  return "col" + std::to_string(ordinal);
}


class Evaluator {
 public:
  explicit Evaluator(SqlContext* ctx) : ctx_(ctx) {}

  Result<Rel> Eval(const SelectStmt& s) {
    Database& db = ctx_->db();

    // 1. WITH <alias> AS Vg(<subquery>): evaluate the parameter query and
    //    apply the VG; the result joins the FROM namespace under alias.
    std::optional<Rel> vg_rel;
    if (s.has_vg) {
      VgFunction* vg = ctx_->FindVg(s.vg_name);
      if (vg == nullptr) {
        return Status::NotFound("unregistered VG function: " + s.vg_name);
      }
      MLBENCH_ASSIGN_OR_RETURN(Rel input, Eval(*s.vg_input));
      double out_scale =
          s.scale_hint > 0 ? s.scale_hint
                           : (s.vg_per.empty() ? 1.0 : input.scale());
      Rel applied = input.VgApply(*vg, s.vg_per, out_scale);
      // Qualify the VG output columns with the alias.
      std::vector<std::string> cols;
      for (const auto& c : applied.schema().columns()) {
        cols.push_back(s.vg_alias + "." + c);
      }
      vg_rel = applied.Renamed(Schema(std::move(cols)));
    }

    // 2. FROM: scan each table (or bind the VG alias), qualify columns.
    if (s.from.empty()) {
      return Status::InvalidArgument("FROM clause is required");
    }
    std::optional<Rel> plan;
    std::vector<Pred> remaining = s.where;
    for (const auto& ref : s.from) {
      if (!(s.has_vg && ref.name == s.vg_alias) && !db.Exists(ref.name)) {
        return Status::NotFound("no such table: " + ref.name);
      }
      Rel next = [&]() -> Rel {
        if (s.has_vg && ref.name == s.vg_alias) return *vg_rel;
        Rel scan = Rel::Scan(db, ref.name);
        std::vector<std::string> cols;
        for (const auto& c : scan.schema().columns()) {
          cols.push_back(ref.alias + "." + c);
        }
        return scan.Renamed(Schema(std::move(cols)));
      }();
      if (!plan.has_value()) {
        plan = next;
        continue;
      }
      // Find equality predicates connecting `plan` and `next`.
      std::vector<std::string> lkeys, rkeys;
      std::vector<Pred> still;
      for (auto& p : remaining) {
        bool used = false;
        if (p.cmp == "=" && p.lhs.kind == Expr::Kind::kColumn &&
            p.rhs.kind == Expr::Kind::kColumn) {
          bool l_in_plan = ResolveColumn(plan->schema(), p.lhs.column).ok();
          bool r_in_next = ResolveColumn(next.schema(), p.rhs.column).ok();
          bool r_in_plan = ResolveColumn(plan->schema(), p.rhs.column).ok();
          bool l_in_next = ResolveColumn(next.schema(), p.lhs.column).ok();
          if (l_in_plan && r_in_next && !r_in_plan) {
            lkeys.push_back(p.lhs.column);
            rkeys.push_back(p.rhs.column);
            used = true;
          } else if (r_in_plan && l_in_next && !l_in_plan) {
            lkeys.push_back(p.rhs.column);
            rkeys.push_back(p.lhs.column);
            used = true;
          }
        }
        if (!used) still.push_back(std::move(p));
      }
      remaining = std::move(still);
      // Resolve the unqualified join keys to the qualified schema names
      // that HashJoin needs.
      std::vector<std::string> lq, rq;
      for (std::size_t i = 0; i < lkeys.size(); ++i) {
        MLBENCH_ASSIGN_OR_RETURN(std::size_t li,
                                 ResolveColumn(plan->schema(), lkeys[i]));
        MLBENCH_ASSIGN_OR_RETURN(std::size_t ri,
                                 ResolveColumn(next.schema(), rkeys[i]));
        lq.push_back(plan->schema().name(li));
        rq.push_back(next.schema().name(ri));
      }
      double out_scale = std::max(plan->scale(), next.scale());
      plan = plan->HashJoin(next, lq, rq, out_scale);
    }

    // 3. Residual WHERE predicates become compiled filters.
    for (const auto& p : remaining) {
      MLBENCH_ASSIGN_OR_RETURN(ScalarExpr pred,
                               LowerPred(p, plan->schema()));
      plan = plan->Filter(pred);
    }

    // 4. Aggregation or plain projection.
    bool any_agg = false;
    for (const auto& item : s.items) any_agg = any_agg || item.is_agg;
    if (!s.group_by.empty() || any_agg) {
      return EvalAggregate(s, *plan);
    }
    return EvalProjection(s, *plan);
  }

 private:
  Result<Rel> EvalProjection(const SelectStmt& s, const Rel& in) {
    // Structured project: column references pass through (preserving
    // integer values and, on the columnar engine, sharing their storage);
    // everything else compiles to a computed double column.
    std::vector<ColExpr> exprs;
    std::vector<std::string> names;
    for (std::size_t i = 0; i < s.items.size(); ++i) {
      const auto& item = s.items[i];
      names.push_back(item.alias.empty()
                          ? ExprName(item.expr, static_cast<int>(i))
                          : item.alias);
      if (item.expr.kind == Expr::Kind::kColumn) {
        auto idx = ResolveColumn(in.schema(), item.expr.column);
        if (idx.ok()) {
          exprs.push_back(ColExpr::Col(*idx));
          continue;
        }
      }
      MLBENCH_ASSIGN_OR_RETURN(ScalarExpr lowered,
                               LowerExpr(item.expr, in.schema()));
      exprs.push_back(ColExpr::Expr(lowered));
    }
    return in.Project(Schema(std::move(names)), exprs);
  }

  Result<Rel> EvalAggregate(const SelectStmt& s, const Rel& in) {
    // Pre-project: group keys first, then one computed column per
    // aggregated expression, preserving integer keys.
    std::vector<std::string> key_names;
    std::vector<int> key_idx;
    for (const auto& g : s.group_by) {
      MLBENCH_ASSIGN_OR_RETURN(std::size_t idx, ResolveColumn(in.schema(), g));
      key_idx.push_back(static_cast<int>(idx));
      std::size_t dot = in.schema().name(idx).rfind('.');
      key_names.push_back(dot == std::string::npos
                              ? in.schema().name(idx)
                              : in.schema().name(idx).substr(dot + 1));
    }
    std::vector<ScalarExpr> agg_evals;
    std::vector<Agg> aggs;
    std::vector<std::string> out_names = key_names;
    // Post-aggregation arithmetic: per output aggregate, an optional
    // (op, hidden-column index) pair; the hidden column carries the
    // group-dependent expression via a kMax aggregate (any row's value,
    // since it is functionally dependent on the keys).
    struct PostFix {
      std::size_t agg_index;
      char op;
      std::size_t hidden_index;
    };
    std::vector<PostFix> post_fixes;
    int agg_ordinal = 0;
    for (std::size_t i = 0; i < s.items.size(); ++i) {
      const auto& item = s.items[i];
      if (!item.is_agg) {
        // Non-aggregated items must be group keys; they are already in
        // the output via key_names.
        if (item.expr.kind != Expr::Kind::kColumn) {
          return Status::InvalidArgument(
              "non-aggregate select item must be a grouping column");
        }
        continue;
      }
      std::string agg_col = "_agg" + std::to_string(agg_ordinal++);
      std::string out_name =
          item.alias.empty() ? "agg" + std::to_string(i) : item.alias;
      if (item.count_star) {
        aggs.push_back({AggOp::kCount, "", out_name});
        agg_evals.push_back(ScalarExpr::Const(1.0));
      } else {
        MLBENCH_ASSIGN_OR_RETURN(ScalarExpr lowered,
                                 LowerExpr(item.expr, in.schema()));
        aggs.push_back({item.agg, agg_col, out_name});
        agg_evals.push_back(std::move(lowered));
      }
      out_names.push_back(out_name);
      if (item.post_expr.has_value()) {
        MLBENCH_ASSIGN_OR_RETURN(ScalarExpr post,
                                 LowerExpr(*item.post_expr, in.schema()));
        std::string hidden = "_agg" + std::to_string(agg_ordinal++);
        post_fixes.push_back(
            {aggs.size() - 1, item.post_op, aggs.size()});
        aggs.push_back({AggOp::kMax, hidden, hidden});
        agg_evals.push_back(std::move(post));
      }
    }
    // Build the pre-projection schema: keys, then _agg columns.
    std::vector<std::string> pre_names = key_names;
    for (int a = 0; a < agg_ordinal; ++a) {
      pre_names.push_back("_agg" + std::to_string(a));
    }
    // Map aggs' column names onto the projected _agg columns; count-star
    // entries keep their empty column.
    std::vector<ColExpr> pre_exprs;
    for (int k : key_idx) pre_exprs.push_back(ColExpr::Col(k));
    for (const auto& eval : agg_evals) pre_exprs.push_back(ColExpr::Expr(eval));
    Rel pre = in.Project(Schema(pre_names), pre_exprs);
    // Rewire count-star aggregates: they consumed an eval slot producing
    // 1.0, aggregate that column with kSum to keep actual/logical scaling
    // identical to kCount on the pre-projected relation.
    std::vector<Agg> final_aggs;
    int slot = 0;
    for (auto& a : aggs) {
      Agg fixed = a;
      fixed.col = "_agg" + std::to_string(slot++);
      if (a.op == AggOp::kCount) fixed.op = AggOp::kCount;
      final_aggs.push_back(fixed);
    }
    double out_scale = s.scale_hint > 0 ? s.scale_hint : 1.0;
    Rel grouped = pre.GroupBy(key_names, final_aggs, out_scale);
    if (post_fixes.empty()) return grouped;
    // Fold the hidden post-arithmetic columns into their aggregates and
    // drop them from the output.
    std::size_t n_keys = key_names.size();
    std::vector<std::string> final_names = key_names;
    std::vector<bool> hidden(final_aggs.size(), false);
    for (const auto& fix : post_fixes) hidden[fix.hidden_index] = true;
    for (std::size_t a = 0; a < final_aggs.size(); ++a) {
      if (!hidden[a]) final_names.push_back(final_aggs[a].out_name);
    }
    auto fixes = post_fixes;
    return grouped.Project(
        Schema(std::move(final_names)),
        [fixes, n_keys, hidden](const Tuple& t) {
          // Apply the arithmetic in place, then drop hidden columns.
          std::vector<double> vals;
          for (std::size_t a = n_keys; a < t.size(); ++a) {
            vals.push_back(AsDouble(t[a]));
          }
          for (const auto& fix : fixes) {
            double& v = vals[fix.agg_index];
            double w = vals[fix.hidden_index];
            switch (fix.op) {
              case '+':
                v += w;
                break;
              case '-':
                v -= w;
                break;
              case '*':
                v *= w;
                break;
              default:
                v /= w;
                break;
            }
          }
          Tuple out;
          for (std::size_t k = 0; k < n_keys; ++k) out.push_back(t[k]);
          for (std::size_t a = 0; a < vals.size(); ++a) {
            if (!hidden[a]) out.push_back(vals[a]);
          }
          return out;
        });
  }

  SqlContext* ctx_;
};

}  // namespace

Result<Table> SqlContext::Execute(const std::string& sql) {
  Lexer lexer(sql);
  MLBENCH_ASSIGN_OR_RETURN(std::vector<Token> toks, lexer.Run());
  Parser parser(std::move(toks));
  MLBENCH_ASSIGN_OR_RETURN(Statement stmt, parser.ParseStatement());

  db_->BeginQuery(stmt.kind == Statement::Kind::kSelect ? "sql select"
                                                        : "sql " + stmt.target);
  Evaluator evaluator(this);
  auto rel = evaluator.Eval(stmt.select);
  if (!rel.ok()) {
    db_->EndQuery();
    return rel.status();
  }

  Rel result = *rel;
  if (!stmt.target_cols.empty()) {
    if (stmt.target_cols.size() != result.schema().size()) {
      db_->EndQuery();
      return Status::InvalidArgument(
          "CREATE column list does not match the SELECT arity");
    }
    result = result.Renamed(Schema(stmt.target_cols));
  }
  if (stmt.kind != Statement::Kind::kSelect) {
    result.Materialize(stmt.target);
  }
  db_->EndQuery();
  return result.table();
}

std::string SqlContext::BindIteration(const std::string& sql_template,
                                      int i) {
  std::string out = sql_template;
  auto replace_all = [&out](const std::string& from, const std::string& to) {
    std::size_t pos = 0;
    while ((pos = out.find(from, pos)) != std::string::npos) {
      out.replace(pos, from.size(), to);
      pos += to.size();
    }
  };
  replace_all("[i-1]", "[" + std::to_string(i - 1) + "]");
  replace_all("[i+1]", "[" + std::to_string(i + 1) + "]");
  replace_all("[i]", "[" + std::to_string(i) + "]");
  return out;
}

}  // namespace mlbench::reldb
