#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/logging.h"

/// \file value.h
/// Tuple-oriented data model of the SimSQL-like relational engine (paper
/// Section 4.2). Everything a query touches is a flat tuple of scalar
/// values — including vectors and matrices, which relational execution
/// shreds into one tuple per entry. That representation is exactly the
/// behaviour the paper studies ("a 1,000 by 1,000 matrix is pushed through
/// the system as a set of one million tuples").

namespace mlbench::reldb {

/// A single column value. Identifiers are kInt, measures are kDouble.
using Value = std::variant<std::int64_t, double>;

inline std::int64_t AsInt(const Value& v) {
  MLBENCH_CHECK_MSG(std::holds_alternative<std::int64_t>(v),
                    "value is not an integer");
  return std::get<std::int64_t>(v);
}

inline double AsDouble(const Value& v) {
  if (std::holds_alternative<double>(v)) return std::get<double>(v);
  return static_cast<double>(std::get<std::int64_t>(v));
}

/// A row: one value per schema column.
using Tuple = std::vector<Value>;

/// Column names of a table, in tuple order.
class Schema {
 public:
  Schema() = default;
  Schema(std::initializer_list<std::string> cols) : cols_(cols) {}
  explicit Schema(std::vector<std::string> cols) : cols_(std::move(cols)) {}

  std::size_t size() const { return cols_.size(); }
  const std::string& name(std::size_t i) const { return cols_[i]; }
  const std::vector<std::string>& columns() const { return cols_; }

  /// Index of a column; aborts if absent (schema errors are programmer
  /// errors in plan construction).
  std::size_t IndexOf(const std::string& col) const {
    for (std::size_t i = 0; i < cols_.size(); ++i) {
      if (cols_[i] == col) return i;
    }
    MLBENCH_CHECK_MSG(false, ("no such column: " + col).c_str());
    return 0;
  }

  bool Has(const std::string& col) const {
    for (const auto& c : cols_) {
      if (c == col) return true;
    }
    return false;
  }

 private:
  std::vector<std::string> cols_;
};

/// Hash / equality over tuple keys (for join and group-by hash tables).
struct TupleHash {
  std::size_t operator()(const Tuple& t) const {
    std::size_t h = 0x9E3779B97F4A7C15ULL;
    for (const auto& v : t) {
      std::size_t hv =
          std::holds_alternative<std::int64_t>(v)
              ? std::hash<std::int64_t>{}(std::get<std::int64_t>(v))
              : std::hash<double>{}(std::get<double>(v));
      h ^= hv + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
    }
    return h;
  }
};

struct TupleEq {
  bool operator()(const Tuple& a, const Tuple& b) const { return a == b; }
};

/// Resolves every name in `cols` against `schema` once. Operators and VG
/// functions call this (or Schema::IndexOf) exactly once per operator, never
/// inside a per-row loop — IndexOf is a linear string scan.
inline std::vector<std::size_t> ResolveAll(const Schema& schema,
                                           const std::vector<std::string>& cols) {
  std::vector<std::size_t> idx;
  idx.reserve(cols.size());
  for (const auto& c : cols) idx.push_back(schema.IndexOf(c));
  return idx;
}

/// Extracts the named key columns of `row` as a Tuple.
inline Tuple KeyOf(const Tuple& row, const std::vector<std::size_t>& idx) {
  Tuple key;
  key.reserve(idx.size());
  for (std::size_t i : idx) key.push_back(row[i]);
  return key;
}

}  // namespace mlbench::reldb
