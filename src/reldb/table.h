#pragma once

#include <utility>
#include <vector>

#include "reldb/value.h"

/// \file table.h
/// A stored relation: schema + rows + logical scale.
///
/// Like the dataflow engine, the relational engine executes on laptop-scale
/// rows while accounting costs at paper scale: each actual row stands for
/// `scale` logical rows. The engine is disk-based (Hadoop MapReduce
/// underneath), so tables never charge cluster RAM — the robustness the
/// paper credits SimSQL with ("the only platform that never failed").

namespace mlbench::reldb {

class Table {
 public:
  Table() = default;
  Table(Schema schema, double scale = 1.0)
      : schema_(std::move(schema)), scale_(scale) {}

  const Schema& schema() const { return schema_; }
  double scale() const { return scale_; }
  void set_scale(double s) { scale_ = s; }

  std::vector<Tuple>& rows() { return rows_; }
  const std::vector<Tuple>& rows() const { return rows_; }

  std::size_t actual_rows() const { return rows_.size(); }
  /// Paper-scale cardinality.
  double logical_rows() const {
    return static_cast<double>(rows_.size()) * scale_;
  }

  void Append(Tuple t) { rows_.push_back(std::move(t)); }

  /// Pre-sizes the row storage; bulk-load paths call this once up front so
  /// Append never reallocates mid-load.
  void Reserve(std::size_t n) { rows_.reserve(n); }

 private:
  Schema schema_;
  std::vector<Tuple> rows_;
  double scale_ = 1.0;
};

}  // namespace mlbench::reldb
