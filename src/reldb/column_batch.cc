#include "reldb/column_batch.h"

#include "common/logging.h"

namespace mlbench::reldb {

ColumnBatch::ColumnBatch(Schema schema, std::vector<Column> cols,
                         double scale)
    : schema_(std::move(schema)), scale_(scale) {
  cols_.reserve(cols.size());
  for (auto& c : cols) {
    cols_.push_back(std::make_shared<const Column>(std::move(c)));
  }
  rows_ = cols_.empty() ? 0 : cols_[0]->size();
  for (const auto& c : cols_) MLBENCH_CHECK(c->size() == rows_);
}

ColumnBatch::ColumnBatch(Schema schema,
                         std::vector<std::shared_ptr<const Column>> cols,
                         double scale)
    : schema_(std::move(schema)), cols_(std::move(cols)), scale_(scale) {
  rows_ = cols_.empty() ? 0 : cols_[0]->size();
  for (const auto& c : cols_) MLBENCH_CHECK(c->size() == rows_);
}

std::optional<ColumnBatch> ColumnBatch::FromTable(const Table& t) {
  const std::size_t ncols = t.schema().size();
  const auto& rows = t.rows();
  std::vector<Column> cols(ncols);
  for (std::size_t c = 0; c < ncols; ++c) {
    if (rows.empty()) continue;  // empty tables keep the kInt default
    auto& col = cols[c];
    if (std::holds_alternative<std::int64_t>(rows[0][c])) {
      col.type = ColType::kInt;
      col.ints.reserve(rows.size());
      for (const auto& row : rows) {
        if (!std::holds_alternative<std::int64_t>(row[c])) {
          return std::nullopt;
        }
        col.ints.push_back(std::get<std::int64_t>(row[c]));
      }
    } else {
      col.type = ColType::kDouble;
      col.doubles.reserve(rows.size());
      for (const auto& row : rows) {
        if (!std::holds_alternative<double>(row[c])) return std::nullopt;
        col.doubles.push_back(std::get<double>(row[c]));
      }
    }
  }
  return ColumnBatch(t.schema(), std::move(cols), t.scale());
}

Table ColumnBatch::ToTable() const {
  Table t(schema_, scale_);
  t.Reserve(rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    Tuple row;
    row.reserve(cols_.size());
    for (const auto& c : cols_) row.push_back(c->At(r));
    t.Append(std::move(row));
  }
  return t;
}

ColumnBatch ColumnBatch::WithSchema(Schema schema, double scale) const {
  MLBENCH_CHECK(schema.size() == cols_.size());
  return ColumnBatch(std::move(schema), cols_, scale);
}

}  // namespace mlbench::reldb
