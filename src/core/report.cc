#include "core/report.h"

#include <cstdio>

#include "common/loc_counter.h"
#include "common/str_format.h"

namespace mlbench::core {

std::string FormatCell(const RunResult& r) {
  if (!r.ok()) {
    if (r.iteration_seconds.empty()) return "Fail";
    // Ran for a while, then died (e.g. the paper's Java LDA failing after
    // 18 iterations): show the average it achieved plus the failure point.
    return FormatDuration(r.avg_iteration_seconds()) + " Fail@iter" +
           std::to_string(r.iteration_seconds.size() + 1);
  }
  std::string s = FormatDuration(r.avg_iteration_seconds());
  if (r.init_seconds >= 0) {
    s += " (" + FormatDuration(r.init_seconds) + ")";
  }
  return s;
}

void PrintFigure(const std::string& title,
                 const std::vector<std::string>& columns,
                 const std::vector<ReportRow>& rows) {
  std::printf("\n%s\n", title.c_str());
  std::vector<std::string> header = {"implementation", "loc", "series"};
  for (const auto& c : columns) header.push_back(c);
  std::vector<std::vector<std::string>> cells;
  for (const auto& row : rows) {
    std::vector<std::string> paper_row = {
        row.name, row.lines_of_code > 0 ? std::to_string(row.lines_of_code)
                                        : "-",
        "paper"};
    for (const auto& p : row.paper) paper_row.push_back(p);
    cells.push_back(std::move(paper_row));
    std::vector<std::string> ours = {"", "", "ours"};
    for (const auto& m : row.measured) ours.push_back(FormatCell(m));
    cells.push_back(std::move(ours));
  }
  std::fputs(RenderTable(header, cells).c_str(), stdout);
  for (const auto& row : rows) {
    if (!row.note.empty()) {
      std::printf("  note [%s]: %s\n", row.name.c_str(), row.note.c_str());
    }
  }
  std::fflush(stdout);
}

int ImplementationLoc(const std::vector<std::string>& repo_relative_paths) {
  return CountLinesOfCode(repo_relative_paths);
}

}  // namespace mlbench::core
