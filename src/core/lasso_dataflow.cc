#include "core/lasso_dataflow.h"

#include <memory>
#include <utility>
#include <vector>

#include "core/workloads.h"
#include "dataflow/rdd.h"

namespace mlbench::core {

namespace {

using dataflow::Context;
using dataflow::OpCost;
using models::LassoHyper;
using models::LassoState;
using models::LassoSuffStats;
using models::Vector;

struct LabeledPoint {
  Vector x;
  double y;
};

}  // namespace

RunResult RunLassoDataflow(const LassoExperiment& exp,
                           models::LassoState* final_state) {
  sim::ClusterSim sim(exp.config.cluster());
  exp.config.ApplyNoise(&sim);
  exp.config.ApplyFaults(&sim);
  dataflow::ContextOptions opts;
  opts.evict_cache_on_pressure = exp.config.faults.evict_cache_on_pressure;
  opts.language = exp.language;
  opts.scale = exp.config.data.scale();
  opts.seed = exp.config.seed;
  Context ctx(&sim, opts);

  LassoDataGen gen(exp.config.seed, exp.p);
  const double p = static_cast<double>(exp.p);
  const double point_bytes =
      p * 8.0 + (exp.language == sim::Language::kPython ? 112.0 : 48.0);

  // ---- Initialization -------------------------------------------------------
  // data = lines.map(parseData).cache(); center the response.
  auto data = dataflow::Generate<LabeledPoint>(
      ctx, exp.config.data.actual_per_machine,
      [&gen](int part, long long i) {
        auto [x, y] = gen.Sample(part, i);
        return LabeledPoint{std::move(x), y};
      },
      point_bytes, /*parse_flops=*/2.0 * p);
  data.Cache();

  OpCost sum_cost;
  sum_cost.flops_per_record = 2.0;
  auto y_sum = data.Map([](const LabeledPoint& d) { return d.y; }, sum_cost, 8)
                   .Reduce([](double a, double b) { return a + b; });
  if (!y_sum.ok()) return RunResult::Fail(y_sum.status());
  auto n = data.CountActual();
  if (!n.ok()) return RunResult::Fail(n.status());
  double y_avg = *y_sum / static_cast<double>(*n);

  // XX / XY: per-point pair contributions through reduceByKey. The Python
  // code pays per-pair object handling -- the paper's 1.5-2 hour init.
  OpCost gram_cost;
  gram_cost.flops_per_record = models::GramAccumulateFlops(exp.p);
  gram_cost.linalg_calls_per_record = 2.0;
  gram_cost.elements_per_record = 4.0 * p * p;  // (i,j,x_i x_j) tuple churn
  gram_cost.dim = exp.p;
  // The map side accumulates per-partition partial Gram matrices (the
  // declared cost covers the per-pair Python object handling); the shuffle
  // moves the p^2 combined (i,j)-keyed partials per partition.
  LassoSuffStats stats;
  {
    auto acc = std::make_shared<LassoSuffStats>();
    auto marker = data.Map(
        [acc, y_avg](const LabeledPoint& d) {
          models::AccumulateLasso(d.x, d.y - y_avg, acc.get());
          return 0;
        },
        gram_cost, 8);
    auto forced = marker.CountActual();
    if (!forced.ok()) return RunResult::Fail(forced.status());
    stats = *acc;
    // Shuffle of the combined pair partials: p^2 entries per partition.
    double entry_bytes =
        exp.language == sim::Language::kPython ? 64.0 : 24.0;
    double shuffle_bytes_per_machine = p * p * entry_bytes;
    sim.BeginPhase("dataflow:gram shuffle");
    sim.ChargeFixed(2.0 * ctx.options().costs.job_launch_s);
    for (int m = 0; m < exp.config.machines; ++m) {
      sim.ChargeNetwork(m, shuffle_bytes_per_machine);
      sim.ChargeParallelCpuOnMachine(
          m, p * p * (ctx.lang().per_record_s +
                      entry_bytes * ctx.lang().per_serialized_byte_s));
    }
    sim.EndPhase();
  }
  if (!ctx.lifetime_status().ok()) {
    return RunResult::Fail(ctx.lifetime_status());
  }

  LassoHyper hyper{exp.p, 1.0};
  stats::Rng rng(exp.config.seed ^ 0x1A50);
  auto state = models::InitLasso(rng, hyper);
  if (!state.ok()) return RunResult::Fail(state.status());

  RunResult result;
  result.init_seconds = sim.elapsed_seconds();
  sim.ResetClock();

  // ---- Iterations -----------------------------------------------------------
  for (int iter = 0; iter < exp.config.iterations; ++iter) {
    if (Status hs = exp.config.IterationBoundary(iter); !hs.ok()) {
      return RunResult::Fail(std::move(hs), result.init_seconds);
    }
    double t0 = sim.elapsed_seconds();

    // Driver: tau and beta updates (local linalg at driver language cost).
    ctx.BeginJob("lasso:driver", exp.config.machines);
    for (std::size_t j = 0; j < exp.p; ++j) {
      state->inv_tau2[j] =
          models::SampleInvTau2(rng, hyper, state->sigma2, state->beta[j]);
    }
    auto beta = models::SampleBeta(rng, stats, state->inv_tau2, state->sigma2);
    if (!beta.ok()) {
      ctx.EndJob();
      return RunResult::Fail(beta.status(), result.init_seconds);
    }
    state->beta = *beta;
    // Driver-side cost: p InvGaussian draws + the p^3 solve.
    sim.ChargeCpu(0, ctx.lang().LinalgSeconds(
                         models::BetaUpdateFlops(exp.p), p + 6.0, exp.p,
                         2.0 * p * p));
    ctx.EndJob();

    // One distributed job: remain_sum = data.map(computeRemainSquare).sum()
    OpCost residual_cost;
    residual_cost.flops_per_record = 2.0 * p;
    residual_cost.linalg_calls_per_record = 2.0;
    residual_cost.dim = exp.p;
    auto beta_copy = std::make_shared<Vector>(state->beta);
    auto sq = data.Map(
        [beta_copy, y_avg](const LabeledPoint& d) {
          double r = (d.y - y_avg) - linalg::Dot(*beta_copy, d.x);
          return r * r;
        },
        residual_cost, 8);
    ctx.BeginJob("lasso:remain_sum", data.num_partitions());
    Status bc = ctx.BroadcastClosure(
        LassoModelBytes(exp.p,
                        exp.language == sim::Language::kPython ? 20.0 : 10.0));
    if (!bc.ok()) {
      ctx.EndJob();
      return RunResult::Fail(bc, result.init_seconds);
    }
    double sse = 0;
    {
      auto rows = sq.CollectNoJob();
      if (!rows.ok()) {
        ctx.EndJob();
        return RunResult::Fail(rows.status(), result.init_seconds);
      }
      for (double v : *rows) sse += v;
    }
    ctx.EndJob();
    // The chain runs at actual-sample scale (consistent with the Gram
    // statistics); logical scale affects simulated time only.

    state->sigma2 = models::SampleSigma2(rng, hyper, stats, state->beta,
                                         state->inv_tau2, sse);
    result.iteration_seconds.push_back(sim.elapsed_seconds() - t0);
    if (!ctx.fault_status().ok()) {
      return RunResult::Fail(ctx.fault_status(), result.init_seconds);
    }
  }

  if (final_state != nullptr) *final_state = *state;
  result.CaptureFaultStats(sim);
  result.status = Status::OK();
  return result;
}

}  // namespace mlbench::core
