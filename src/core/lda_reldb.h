#pragma once

#include "core/lda_experiment.h"
#include "models/lda.h"

/// \file lda_reldb.h
/// The SimSQL LDA of paper Section 8: the only platform that ran every
/// LDA configuration. Word-based, document-based, and super-vertex
/// variants mirror the HMM structure; in all of them the sampled topic
/// assignments come back as word-level tuples aggregated by GROUP BY, and
/// the 100-topic model tables are five times the HMM's.

namespace mlbench::core {

RunResult RunLdaRelDb(const LdaExperiment& exp,
                      models::LdaParams* final_model = nullptr);

}  // namespace mlbench::core
