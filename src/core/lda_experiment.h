#pragma once

#include "core/experiment.h"
#include "core/hmm_experiment.h"
#include "models/lda.h"

/// \file lda_experiment.h
/// Configuration shared by the LDA implementations (paper Section 8: the
/// HMM corpus -- 2.5 M documents/machine, ~210 words, 10,000-word
/// dictionary -- with T = 100 topics; the model and its statistics are
/// ~5x the HMM's, which is what pushes the non-SimSQL platforms over at
/// 100 machines).

namespace mlbench::core {

struct LdaExperiment {
  ExperimentConfig config;
  std::size_t topics = 100;
  std::size_t vocab = 10000;
  std::size_t mean_doc_len = 210;
  TextGranularity granularity = TextGranularity::kDocument;
  sim::Language language = sim::Language::kPython;
  double supers_per_machine = 160;

  LdaExperiment() {
    config.data.logical_per_machine = 2.5e6;  // documents
    config.data.actual_per_machine = 40;
  }

  double logical_words_per_machine() const {
    return config.data.logical_per_machine *
           static_cast<double>(mean_doc_len);
  }
};

/// Per-word topic-resampling cost (a T-way categorical per word).
inline WordCost LdaWordCost(sim::Language lang, TextGranularity gran,
                            std::size_t topics) {
  double t = static_cast<double>(topics);
  WordCost c;
  c.flops = 4.0 * t;
  switch (lang) {
    case sim::Language::kPython:
      // Document-at-a-time code is a pure-Python loop over T topics per
      // word; the super-vertex code batches words through NumPy and is
      // ~4x cheaper per word (the paper's 15:45 vs 3:56 hours).
      c.elements =
          (gran == TextGranularity::kSuperVertex ? 22.0 : 86.0) * t;
      break;
    case sim::Language::kJava:
      c.calls = gran == TextGranularity::kSuperVertex ? 0.1 : 0.45;
      c.elements = 3.0 * t;
      break;
    case sim::Language::kCpp:
      c.calls = gran == TextGranularity::kSuperVertex ? 2.0 : 1.0;
      break;
  }
  return c;
}

/// Serialized bytes of phi in each runtime's natural representation: raw
/// doubles for C++, a dict of NumPy rows for Python, nested boxed maps for
/// the Java (Mallet-style) code.
inline double LdaModelBytesFor(sim::Language lang, std::size_t topics,
                               std::size_t vocab) {
  double entries = static_cast<double>(topics) * vocab;
  switch (lang) {
    case sim::Language::kCpp:
      return entries * 8.0 + 4096;
    case sim::Language::kPython:
      return entries * 8.0 + topics * 300.0;  // dict of NumPy rows
    case sim::Language::kJava:
      return entries * 224.0;  // nested boxed HashMaps
  }
  return entries * 8.0;
}

}  // namespace mlbench::core
