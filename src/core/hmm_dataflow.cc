#include "core/hmm_dataflow.h"

#include <memory>
#include <utility>
#include <vector>

#include "core/workloads.h"
#include "dataflow/rdd.h"

namespace mlbench::core {

namespace {

using dataflow::Context;
using dataflow::OpCost;
using models::HmmCounts;
using models::HmmDocument;
using models::HmmParams;
using models::Vector;

struct WordRec {
  long long doc = 0;
  int pos = 0;
  std::uint32_t word = 0;
  std::uint8_t state = 0;
};

/// Sparse count payload shuffled to update Psi / delta.
struct CountVec {
  Vector v;
};

}  // namespace

RunResult RunHmmDataflow(const HmmExperiment& exp,
                         models::HmmParams* final_model) {
  sim::ClusterSim sim(exp.config.cluster());
  exp.config.ApplyNoise(&sim);
  exp.config.ApplyFaults(&sim);
  dataflow::ContextOptions opts;
  opts.evict_cache_on_pressure = exp.config.faults.evict_cache_on_pressure;
  opts.language = exp.language;
  opts.scale = exp.config.data.scale();  // per document
  opts.seed = exp.config.seed;

  CorpusGen gen(exp.config.seed, exp.vocab, exp.mean_doc_len);
  models::HmmHyper hyper{exp.states, exp.vocab, 1.0, 0.1};
  const double k = static_cast<double>(exp.states);
  const double words_per_doc = static_cast<double>(exp.mean_doc_len);
  // Python keeps tokens as boxed ints in lists (~24 B each); Java packs
  // int arrays with modest headers. One state byte per token, boxed too.
  const double token_bytes =
      exp.language == sim::Language::kPython ? 48.0 : 9.0;
  const double doc_bytes = words_per_doc * token_bytes + 96.0;

  stats::Rng rng(exp.config.seed ^ 0x4A31);

  if (exp.granularity == TextGranularity::kWord) {
    // Word-based: every (doc, pos, word, state) is an RDD record; the
    // state update needs each word joined with its neighbors' states.
    opts.scale = exp.config.data.scale() * words_per_doc;
    Context word_ctx(&sim, opts);
    long long words_act =
        exp.config.data.actual_per_machine *
        static_cast<long long>(exp.mean_doc_len);
    auto words = dataflow::Generate<std::pair<std::pair<long long, int>,
                                              WordRec>>(
        word_ctx, words_act,
        [&gen, &exp](int p, long long i) {
          long long doc = i / static_cast<long long>(exp.mean_doc_len);
          int pos = static_cast<int>(
              i % static_cast<long long>(exp.mean_doc_len));
          auto tokens = gen.Document(p, doc);
          WordRec w;
          w.doc = (static_cast<long long>(p) << 32) | doc;
          w.pos = pos;
          w.word = tokens[pos % tokens.size()];
          w.state = 0;
          return std::make_pair(std::make_pair(w.doc, pos), w);
        },
        exp.language == sim::Language::kPython ? 96.0 : 40.0);
    // Self-join of the assignment set with itself on (doc, pos+1): both
    // sides' values materialize in cogroup buffers.
    auto shifted = words.Map(
        [](const std::pair<std::pair<long long, int>, WordRec>& r) {
          auto key = r.first;
          key.second += 1;
          return std::make_pair(key, r.second);
        },
        OpCost{});
    auto joined = dataflow::Join(words, shifted, opts.scale);
    auto n = joined.CountActual();
    // The paper could not run this at benchmark scale.
    if (!n.ok()) return RunResult::Fail(n.status(), sim.elapsed_seconds());
    return RunResult::Fail(
        Status::Internal("word-based Spark HMM unexpectedly survived"));
  }

  // ---- Document-based / chunked initialization -----------------------------
  const bool super = exp.granularity == TextGranularity::kSuperVertex;
  const long long docs_per_chunk =
      super ? std::max<long long>(1, exp.config.data.actual_per_machine /
                                         static_cast<long long>(
                                             exp.supers_per_machine))
            : 1;
  const long long chunks_per_machine =
      exp.config.data.actual_per_machine / docs_per_chunk;
  opts.scale = exp.config.data.logical_per_machine /
               static_cast<double>(chunks_per_machine * docs_per_chunk);
  Context dctx(&sim, opts);

  using Chunk = std::shared_ptr<std::vector<HmmDocument>>;
  stats::Rng init_rng(exp.config.seed ^ 0x4A32);
  auto data = dataflow::Generate<std::pair<long long, Chunk>>(
      dctx, chunks_per_machine,
      [&gen, &exp, docs_per_chunk](int p, long long i) {
        auto chunk = std::make_shared<std::vector<HmmDocument>>();
        for (long long d = 0; d < docs_per_chunk; ++d) {
          HmmDocument doc;
          doc.words = gen.Document(p, i * docs_per_chunk + d);
          stats::Rng r = stats::Rng(0x4A33 ^ p).Split(
              static_cast<std::uint64_t>(i * docs_per_chunk + d) + 1);
          models::InitHmmStates(r, exp.states, &doc);
          chunk->push_back(std::move(doc));
        }
        return std::make_pair((static_cast<long long>(p) << 32) | i, chunk);
      },
      doc_bytes * static_cast<double>(docs_per_chunk),
      /*parse_flops=*/2.0 * words_per_doc * docs_per_chunk);
  data.Cache();
  auto forced = data.CountActual();
  if (!forced.ok()) return RunResult::Fail(forced.status());
  if (!dctx.lifetime_status().ok()) {
    return RunResult::Fail(dctx.lifetime_status());
  }

  HmmParams params = models::SampleHmmPrior(init_rng, hyper);

  RunResult result;
  result.init_seconds = sim.elapsed_seconds();
  sim.ResetClock();

  // ---- Iterations -----------------------------------------------------------
  WordCost wc = HmmWordCost(exp.language, exp.granularity, exp.states);
  OpCost per_chunk;
  double wpc = words_per_doc * static_cast<double>(docs_per_chunk);
  per_chunk.flops_per_record = wc.flops * wpc;
  per_chunk.linalg_calls_per_record = wc.calls * wpc;
  per_chunk.elements_per_record = wc.elements * wpc;
  const double model_entry_bytes =
      exp.language == sim::Language::kPython ? 60.0 : 40.0;
  const double model_bytes =
      (k * exp.vocab + k * k + k) * model_entry_bytes;
  const double count_bytes = model_entry_bytes;

  for (int iter = 0; iter < exp.config.iterations; ++iter) {
    if (Status hs = exp.config.IterationBoundary(iter); !hs.ok()) {
      return RunResult::Fail(std::move(hs), result.init_seconds);
    }
    double t0 = sim.elapsed_seconds();
    auto params_ptr = std::make_shared<HmmParams>(params);
    std::uint64_t iter_seed = exp.config.seed ^ (0x4A40u + iter);

    // Jobs 1+2: sample the h transition counts then delta; jobs 3+4 the
    // f/g counts then Psi. Both flatMap per-state count vectors keyed by
    // state id and reduceByKey them (combined map-side).
    auto counts = data.FlatMap(
        [params_ptr, iter, iter_seed, &hyper](
            const std::pair<long long, Chunk>& rec) {
          // Re-sample this chunk's states, then emit per-state counts.
          HmmCounts c(params_ptr->delta0.size(),
                      params_ptr->psi[0].size());
          stats::Rng r = stats::Rng(iter_seed).Split(
              static_cast<std::uint64_t>(rec.first) + 1);
          std::size_t expected = 0;
          for (const auto& doc : *rec.second) expected += doc.words.size();
          models::HmmSampler sampler;
          sampler.Prepare(*params_ptr, expected);
          for (auto& doc : *rec.second) {
            sampler.Resample(r, iter, &doc);
            models::AccumulateHmmCounts(doc, &c);
          }
          std::vector<std::pair<int, CountVec>> out;
          for (std::size_t s = 0; s < c.f.size(); ++s) {
            out.push_back({static_cast<int>(s), CountVec{c.f[s]}});
            out.push_back(
                {static_cast<int>(1000 + s), CountVec{c.h[s]}});
          }
          out.push_back({2000, CountVec{c.g}});
          (void)hyper;
          return out;
        },
        per_chunk, count_bytes * (exp.vocab + k) / (2.0 * k + 1.0));
    auto reduced = dataflow::ReduceByKey(
        counts,
        [](const CountVec& a, const CountVec& b) {
          CountVec m = a;
          m.v += b.v;
          return m;
        },
        OpCost{}, /*out_scale=*/1.0, /*reduce_flops=*/1.0);

    dctx.BeginJob("hmm:counts+model", data.num_partitions());
    Status bc = dctx.BroadcastClosure(model_bytes);
    if (!bc.ok()) {
      dctx.EndJob();
      return RunResult::Fail(bc, result.init_seconds);
    }
    auto rows = reduced.CollectNoJob();
    dctx.EndJob();
    if (!rows.ok()) return RunResult::Fail(rows.status(), result.init_seconds);

    // Driver: sample delta / Psi from the aggregated counts (two more
    // lightweight jobs in the paper's structure).
    dctx.BeginJob("hmm:sample_model", exp.config.machines);
    HmmCounts total(exp.states, exp.vocab);
    for (auto& [key, cv] : *rows) {
      if (key == 2000) {
        total.g += cv.v;
      } else if (key >= 1000) {
        total.h[key - 1000] += cv.v;
      } else {
        total.f[key] += cv.v;
      }
    }
    params = models::SampleHmmPosterior(rng, hyper, total);
    sim.ChargeCpu(0, dctx.lang().LinalgSeconds(
                         4.0 * k * exp.vocab, 2.0 * k, 1,
                         exp.language == sim::Language::kPython
                             ? k * exp.vocab
                             : 0));
    dctx.EndJob();

    // Job: self-transformation updating the cached states (the
    // re-sampling cost was charged in the flatMap; this pass re-caches).
    dctx.BeginJob("hmm:update_state", data.num_partitions());
    dctx.EndJob();

    result.iteration_seconds.push_back(sim.elapsed_seconds() - t0);
    if (!dctx.fault_status().ok()) {
      return RunResult::Fail(dctx.fault_status(), result.init_seconds);
    }
  }

  if (final_model != nullptr) *final_model = params;
  result.CaptureFaultStats(sim);
  result.status = Status::OK();
  return result;
}

}  // namespace mlbench::core
