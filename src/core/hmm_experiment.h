#pragma once

#include "core/experiment.h"
#include "models/hmm.h"
#include "sim/cost_profile.h"

/// \file hmm_experiment.h
/// Configuration shared by the HMM implementations (paper Section 7:
/// 2.5 M documents per machine, ~210 words each, 10,000-word dictionary,
/// K = 20 hidden states) and their per-word cost declarations.

namespace mlbench::core {

/// Which entity the platform manages individually (paper Section 7.5).
enum class TextGranularity { kWord, kDocument, kSuperVertex };

struct HmmExperiment {
  ExperimentConfig config;
  std::size_t states = 20;
  std::size_t vocab = 10000;
  std::size_t mean_doc_len = 210;
  TextGranularity granularity = TextGranularity::kDocument;
  sim::Language language = sim::Language::kPython;
  /// The paper groups "hundreds of thousands of data points" (words) per
  /// super vertex: ~6,250 documents, i.e. 400 supers per machine.
  double supers_per_machine = 400;

  HmmExperiment() {
    config.data.logical_per_machine = 2.5e6;  // documents
    config.data.actual_per_machine = 40;
  }

  double logical_words_per_machine() const {
    return config.data.logical_per_machine *
           static_cast<double>(mean_doc_len);
  }
};

/// Per-word state-resampling cost declarations, reflecting the paper's
/// codes (see EXPERIMENTS.md "cost declarations"):
///  - Python (Spark): a pure-Python loop over K states per word.
///  - Java naive (Giraph doc-based): Mallet-style per-word allocation.
///  - Java super (Giraph super): hand-coded with preallocated tables.
///  - C++ GraphLab: natural gsl_ran_discrete-per-word style.
///  - C++ SimSQL VG: one library call per word.
struct WordCost {
  double flops = 0;
  double calls = 0;
  double elements = 0;
};

inline WordCost HmmWordCost(sim::Language lang, TextGranularity gran,
                            std::size_t states) {
  double k = static_cast<double>(states);
  WordCost c;
  c.flops = 6.0 * k;
  switch (lang) {
    case sim::Language::kPython:
      // ~K interpreted loop bodies of ~120 operations each.
      c.elements = 120.0 * k;
      break;
    case sim::Language::kJava:
      c.calls = gran == TextGranularity::kSuperVertex ? 0.1 : 0.45;
      c.elements = 3.0 * k;
      break;
    case sim::Language::kCpp:
      c.calls = gran == TextGranularity::kSuperVertex ? 2.0 : 1.0;
      break;
  }
  return c;
}

}  // namespace mlbench::core
