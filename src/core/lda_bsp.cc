#include "core/lda_bsp.h"

#include <algorithm>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "bsp/engine.h"
#include "core/workloads.h"

namespace mlbench::core {

namespace {

using models::LdaCounts;
using models::LdaDocument;
using models::LdaParams;
using models::Vector;

/// Sparse count partial: key = topic * vocab + word.
using SparseCounts = std::vector<std::pair<std::uint32_t, float>>;

struct LdaMsg {
  std::shared_ptr<SparseCounts> counts;
};

struct VData {
  enum class Kind { kData, kTopic } kind = Kind::kData;
  std::vector<LdaDocument> docs;
  std::size_t t = 0;
  Vector phi;
};

using Engine = bsp::BspEngine<VData, LdaMsg>;

}  // namespace

RunResult RunLdaBsp(const LdaExperiment& exp,
                    models::LdaParams* final_model) {
  if (exp.granularity == TextGranularity::kWord) {
    return RunResult::Fail(
        Status::Unimplemented("word-based Giraph LDA not attempted (NA)"));
  }
  sim::ClusterSim sim(exp.config.cluster());
  exp.config.ApplyNoise(&sim);
  exp.config.ApplyFaults(&sim);
  Engine engine(&sim);
  engine.SetCheckpointInterval(exp.config.faults.checkpoint_interval);
  CorpusGen gen(exp.config.seed, exp.vocab, exp.mean_doc_len);
  models::LdaHyper hyper{exp.topics, exp.vocab, 0.5, 0.1};
  const int machines = exp.config.machines;
  const long long docs_act = exp.config.data.actual_per_machine;
  const double t = static_cast<double>(exp.topics);
  const double v = static_cast<double>(exp.vocab);
  const double words_per_doc = static_cast<double>(exp.mean_doc_len);
  const double model_bytes = t * v * 8.0 + 128.0;

  for (std::size_t tt = 0; tt < exp.topics; ++tt) {
    VData vd;
    vd.kind = VData::Kind::kTopic;
    vd.t = tt;
    engine.AddVertex(static_cast<bsp::VertexId>(tt), std::move(vd), 1.0,
                     (v + 1.0) * 8.0 + 64);
  }
  const bool super = exp.granularity == TextGranularity::kSuperVertex;
  double logical_vertices_per_machine =
      super ? exp.supers_per_machine : exp.config.data.logical_per_machine;
  double words_per_vertex =
      exp.logical_words_per_machine() / logical_vertices_per_machine;
  double docs_per_vertex =
      exp.config.data.logical_per_machine / logical_vertices_per_machine;
  // Tokens (4B) + z bytes (1B) + theta (T doubles) per document + header.
  double state_bytes =
      words_per_vertex * 5.0 + docs_per_vertex * (t * 8.0 + 24.0) + 72.0;
  long long actual_vertices = std::min<long long>(
      docs_act * machines,
      super ? static_cast<long long>(exp.supers_per_machine * machines)
            : docs_act * machines);
  double vertex_scale =
      logical_vertices_per_machine * machines / actual_vertices;

  std::vector<std::size_t> data_slots;
  for (long long s = 0; s < actual_vertices; ++s) {
    VData vd;
    vd.kind = VData::Kind::kData;
    data_slots.push_back(
        engine.AddVertex(static_cast<bsp::VertexId>(exp.topics + s),
                         std::move(vd), vertex_scale, state_bytes));
  }
  stats::Rng init_rng(exp.config.seed ^ 0x7DA5);
  for (long long j = 0; j < docs_act * machines; ++j) {
    int m = static_cast<int>(j / docs_act);
    LdaDocument doc;
    doc.words = gen.Document(m, j % docs_act);
    models::InitLdaDocument(init_rng, hyper, &doc);
    engine.vertex(data_slots[j % data_slots.size()])
        .data.docs.push_back(std::move(doc));
  }

  engine.SetCombiner([](const LdaMsg& a, const LdaMsg& b) {
    LdaMsg m = a;
    if (b.counts) {
      if (!m.counts) {
        m.counts = b.counts;
      } else {
        auto merged = std::make_shared<SparseCounts>(*m.counts);
        merged->insert(merged->end(), b.counts->begin(), b.counts->end());
        m.counts = merged;
      }
    }
    return m;
  });
  double count_msg_bytes = std::min(words_per_vertex, t * v) * 24.0 + 64.0;
  engine.SetMessageSize([count_msg_bytes](const LdaMsg& m) {
    return m.counts ? count_msg_bytes : 24.0;
  });

  Status boot = engine.Boot();
  if (!boot.ok()) return RunResult::Fail(boot);

  LdaParams params = models::SampleLdaPrior(init_rng, hyper);
  for (std::size_t tt = 0; tt < exp.topics; ++tt) {
    engine.vertex(tt).data.phi = params.phi[tt];
  }

  RunResult result;
  result.init_seconds = sim.elapsed_seconds();
  sim.ResetClock();

  WordCost wc =
      LdaWordCost(sim::Language::kJava, exp.granularity, exp.topics);
  // Giraph's LDA pays Mallet sparse-count handling per word on top of the
  // sampling loop (calibrated to the paper's 22:22 / 18:49 cells).
  wc.calls = exp.granularity == TextGranularity::kSuperVertex ? 0.85 : 1.0;

  for (int iter = 0; iter < exp.config.iterations; ++iter) {
    if (Status hs = exp.config.IterationBoundary(iter); !hs.ok()) {
      return RunResult::Fail(std::move(hs), result.init_seconds);
    }
    double t0 = sim.elapsed_seconds();
    std::uint64_t iter_seed = exp.config.seed ^ (0x7DD0u + iter);

    // S0: topic vertices re-draw phi_t from last superstep's partials and
    // publish their rows through worker aggregators.
    Status st = engine.RunSuperstep(
        [&](Engine::Vertex& vx, const std::vector<LdaMsg>& inbox,
            Engine::Context& ctx) {
          if (vx.data.kind != VData::Kind::kTopic) return;
          Vector row(exp.vocab);
          bool have = false;
          auto lo = static_cast<std::uint32_t>(vx.data.t * exp.vocab);
          auto hi = static_cast<std::uint32_t>((vx.data.t + 1) * exp.vocab);
          for (const auto& m : inbox) {
            if (!m.counts) continue;
            have = true;
            for (const auto& [key, count] : *m.counts) {
              if (key >= lo && key < hi) row[key - lo] += count;
            }
          }
          if (have) {
            stats::Rng srng =
                stats::Rng(iter_seed ^ 0x52u).Split(vx.data.t + 1);
            Vector conc = row;
            for (auto& c : conc) c += hyper.beta;
            vx.data.phi = stats::SampleDirichlet(srng, conc);
          }
          ctx.Aggregate("phi_" + std::to_string(vx.data.t),
                        std::vector<double>(vx.data.phi.begin(),
                                            vx.data.phi.end()),
                        model_bytes / t);
        },
        {}, "phi publish");
    if (!st.ok()) return RunResult::Fail(st, result.init_seconds);

    // S1: data vertices re-sample (z, theta) and send combined partials.
    bsp::ComputeCost cost;
    cost.flops_per_vertex = (wc.flops + 4.0 * t) * words_per_vertex;
    cost.linalg_calls_per_vertex =
        wc.calls * words_per_vertex + docs_per_vertex;
    cost.elements_per_vertex = wc.elements * words_per_vertex;
    cost.temp_bytes_per_vertex =
        super ? 24.0 * std::min(words_per_vertex, t * v)
              : (48.0 * words_per_doc + t * 8.0);
    st = engine.RunSuperstep(
        [&](Engine::Vertex& vx, const std::vector<LdaMsg>& inbox,
            Engine::Context& ctx) {
          (void)inbox;
          if (vx.data.kind != VData::Kind::kData) return;
          LdaParams local = params;
          for (std::size_t tt = 0; tt < exp.topics; ++tt) {
            const auto& row = ctx.GetAggregate("phi_" + std::to_string(tt));
            if (row.size() == exp.vocab) {
              local.phi[tt] = Vector(row);
            }
          }
          stats::Rng vrng = stats::Rng(iter_seed).Split(
              static_cast<std::uint64_t>(vx.id) + 1);
          std::unordered_map<std::uint32_t, float> sparse;
          std::size_t expected = 0;
          for (const auto& doc : vx.data.docs) expected += doc.words.size();
          models::LdaDocSampler sampler;
          sampler.Prepare(hyper, local, expected);
          for (auto& doc : vx.data.docs) {
            sampler.Resample(vrng, &doc, nullptr);
            for (std::size_t pos = 0; pos < doc.words.size(); ++pos) {
              sparse[static_cast<std::uint32_t>(
                  doc.topics[pos] * exp.vocab + doc.words[pos])] += 1.0f;
            }
          }
          LdaMsg msg;
          // mlint: allow(unordered-iter) — bucket order is erased by the
          // key sort below; the map is pure accumulation scratch
          msg.counts = std::make_shared<SparseCounts>(sparse.begin(),
                                                      sparse.end());
          std::sort(msg.counts->begin(), msg.counts->end(),
                    [](const auto& a, const auto& b) {
                      return a.first < b.first;
                    });
          for (std::size_t tt = 0; tt < exp.topics; ++tt) {
            ctx.Send(static_cast<bsp::VertexId>(tt), msg,
                     count_msg_bytes / t + 64.0);
          }
        },
        cost, "resample + counts");
    if (!st.ok()) return RunResult::Fail(st, result.init_seconds);

    result.iteration_seconds.push_back(sim.elapsed_seconds() - t0);
  }

  if (final_model != nullptr) {
    LdaCounts counts(exp.topics, exp.vocab);
    for (std::size_t d : data_slots) {
      for (const auto& doc : engine.vertex(d).data.docs) {
        for (std::size_t pos = 0; pos < doc.words.size(); ++pos) {
          counts.g[doc.topics[pos]][doc.words[pos]] += 1;
        }
      }
    }
    stats::Rng frng(exp.config.seed ^ 0x7DE0);
    *final_model = models::SampleLdaPosterior(frng, hyper, counts);
  }
  engine.Shutdown();
  result.CaptureFaultStats(sim);
  result.status = Status::OK();
  return result;
}

}  // namespace mlbench::core
