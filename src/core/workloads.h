#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "linalg/vector.h"
#include "models/imputation.h"
#include "stats/distributions.h"
#include "stats/rng.h"

/// \file workloads.h
/// Synthetic workload generators for the five benchmark tasks (paper
/// Sections 5-9). Generation is *indexed*: point j of partition p is a pure
/// function of (seed, p, j), so every platform implementation sees exactly
/// the same data without materializing the full paper-scale set.
///
/// Substitution note (DESIGN.md): the paper's text corpus concatenates
/// 20-newsgroups posts; we generate documents from a Zipf(1.0) unigram
/// distribution over the same 10,000-word dictionary with the same ~210
/// words/document. The benchmark treats documents as token soup with a
/// fixed dictionary, so the identical code paths are exercised.

namespace mlbench::core {

using linalg::Vector;

/// Ground-truth mixture used to synthesize GMM data (paper Section 5.5:
/// "a synthetic data set ... generated using a mixture of ten Gaussians").
class GmmDataGen {
 public:
  GmmDataGen(std::uint64_t seed, std::size_t k, std::size_t dim);

  /// The j-th point of partition p (deterministic).
  Vector Point(int partition, long long j) const;

  const std::vector<Vector>& true_means() const { return means_; }
  std::size_t dim() const { return dim_; }
  std::size_t k() const { return k_; }

 private:
  std::uint64_t seed_;
  std::size_t k_, dim_;
  std::vector<Vector> means_;
};

/// Sparse linear-regression data for the Bayesian Lasso (Section 6.5:
/// "10^3 regressor dimensions and a one-dimensional response").
class LassoDataGen {
 public:
  LassoDataGen(std::uint64_t seed, std::size_t p, std::size_t nonzeros = 20);

  /// The j-th (x, y) pair of partition p.
  std::pair<Vector, double> Sample(int partition, long long j) const;

  const Vector& true_beta() const { return beta_; }
  std::size_t p() const { return p_; }

 private:
  std::uint64_t seed_;
  std::size_t p_;
  Vector beta_;
};

/// Synthetic text corpus (Sections 7.5 / 8.1: 10,000-word dictionary,
/// average document length 210).
class CorpusGen {
 public:
  CorpusGen(std::uint64_t seed, std::size_t vocab = 10000,
            std::size_t mean_doc_len = 210, double zipf_s = 1.0);

  /// Word ids of document j of partition p.
  std::vector<std::uint32_t> Document(int partition, long long j) const;

  std::size_t vocab() const { return vocab_; }
  std::size_t mean_doc_len() const { return mean_doc_len_; }

 private:
  std::uint64_t seed_;
  std::size_t vocab_, mean_doc_len_;
  std::shared_ptr<stats::AliasTable> alias_;
};

/// Per-point censoring for the imputation task (Section 9.1: censor rate
/// p ~ Beta(1,1) per point, ~50% of values overall).
models::CensoredPoint CensorPoint(std::uint64_t seed, int partition,
                                  long long j, const Vector& x);

}  // namespace mlbench::core
