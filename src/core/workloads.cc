#include "core/workloads.h"

#include <cmath>

namespace mlbench::core {

namespace {

/// Stable stream for (seed, partition, index).
stats::Rng StreamFor(std::uint64_t seed, int partition, long long j) {
  return stats::Rng(seed)
      .Split(static_cast<std::uint64_t>(partition) + 1)
      .Split(static_cast<std::uint64_t>(j) + 1);
}

}  // namespace

GmmDataGen::GmmDataGen(std::uint64_t seed, std::size_t k, std::size_t dim)
    : seed_(seed), k_(k), dim_(dim) {
  stats::Rng rng = stats::Rng(seed).Split(0xC1);
  for (std::size_t c = 0; c < k; ++c) {
    Vector mu(dim);
    for (auto& v : mu) v = stats::SampleNormal(rng, 0.0, 8.0);
    means_.push_back(std::move(mu));
  }
}

Vector GmmDataGen::Point(int partition, long long j) const {
  stats::Rng rng = StreamFor(seed_, partition, j);
  std::size_t c = rng.NextBounded(k_);
  Vector x(dim_);
  for (std::size_t d = 0; d < dim_; ++d) {
    x[d] = stats::SampleNormal(rng, means_[c][d], 1.0);
  }
  return x;
}

LassoDataGen::LassoDataGen(std::uint64_t seed, std::size_t p,
                           std::size_t nonzeros)
    : seed_(seed), p_(p), beta_(p) {
  stats::Rng rng = stats::Rng(seed).Split(0xB2);
  for (std::size_t i = 0; i < nonzeros; ++i) {
    std::size_t idx = rng.NextBounded(p);
    beta_[idx] = stats::SampleNormal(rng, 0.0, 3.0);
  }
}

std::pair<Vector, double> LassoDataGen::Sample(int partition,
                                               long long j) const {
  stats::Rng rng = StreamFor(seed_, partition, j);
  Vector x(p_);
  double dot = 0;
  for (std::size_t i = 0; i < p_; ++i) {
    x[i] = stats::SampleNormal(rng, 0.0, 1.0);
    dot += x[i] * beta_[i];
  }
  return {std::move(x), stats::SampleNormal(rng, dot, 1.0)};
}

CorpusGen::CorpusGen(std::uint64_t seed, std::size_t vocab,
                     std::size_t mean_doc_len, double zipf_s)
    : seed_(seed), vocab_(vocab), mean_doc_len_(mean_doc_len) {
  alias_ = std::make_shared<stats::AliasTable>(
      stats::ZipfWeights(vocab, zipf_s));
}

std::vector<std::uint32_t> CorpusGen::Document(int partition,
                                               long long j) const {
  stats::Rng rng = StreamFor(seed_, partition, j);
  // Length: two concatenated "posts" of ~105 words each, +-20%.
  std::size_t len = static_cast<std::size_t>(
      static_cast<double>(mean_doc_len_) *
      (0.8 + 0.4 * rng.NextDouble()));
  std::vector<std::uint32_t> words(len);
  // Batched alias draws: same per-draw RNG consumption as calling
  // Sample(rng) in a loop, without the per-call overhead.
  alias_->SampleBatch(rng, words.data(), len);
  return words;
}

models::CensoredPoint CensorPoint(std::uint64_t seed, int partition,
                                  long long j, const Vector& x) {
  stats::Rng rng = StreamFor(seed ^ 0xCE25, partition, j);
  double p = stats::SampleBeta(rng, 1.0, 1.0);
  return models::Censor(rng, x, p, 0.0);
}

}  // namespace mlbench::core
