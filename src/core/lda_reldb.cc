#include "core/lda_reldb.h"

#include <memory>
#include <utility>
#include <vector>

#include "core/workloads.h"
#include "reldb/database.h"
#include "reldb/rel.h"
#include "reldb/vg_library.h"

namespace mlbench::core {

namespace {

using models::LdaCounts;
using models::LdaDocument;
using models::LdaParams;
using models::Vector;
using reldb::AggOp;
using reldb::AsInt;
using reldb::ColumnBatch;
using reldb::Database;
using reldb::Rel;
using reldb::Schema;
using reldb::Table;
using reldb::Tuple;

/// VG re-sampling one document group's topic assignments, emitting one
/// (doc, pos, word, topic) tuple per word.
class TopicVg : public reldb::VgFunction {
 public:
  TopicVg(std::shared_ptr<LdaParams> params, models::LdaHyper hyper,
          std::vector<LdaDocument>* docs)
      : params_(std::move(params)), hyper_(hyper), docs_(docs) {}
  std::string name() const override { return "lda_topics"; }
  Schema output_schema() const override {
    return {"doc_id", "pos", "word", "topic"};
  }
  void BindSchema(const Schema& schema) override {
    doc_c_ = schema.IndexOf("doc_id");
  }
  void Sample(const std::vector<Tuple>& group, const Schema& schema,
              stats::Rng& rng, std::vector<Tuple>* out) override {
    (void)schema;
    auto doc_id = static_cast<std::size_t>(AsInt(group[0][doc_c_]));
    LdaDocument& doc = (*docs_)[doc_id];
    if (!prepared_) {
      // The VG object is rebuilt each iteration with that iteration's
      // model, so the prepared tables stay valid for all its invocations.
      std::size_t expected = 0;
      for (const auto& d : *docs_) expected += d.words.size();
      sampler_.Prepare(hyper_, *params_, expected);
      prepared_ = true;
    }
    sampler_.Resample(rng, &doc, nullptr);
    for (std::size_t pos = 0; pos < doc.words.size(); ++pos) {
      out->push_back(Tuple{static_cast<std::int64_t>(doc_id),
                           static_cast<std::int64_t>(pos),
                           static_cast<std::int64_t>(doc.words[pos]),
                           static_cast<std::int64_t>(doc.topics[pos])});
    }
  }
  std::size_t OutRowsHint(std::size_t mean_group_rows) const override {
    if (docs_->empty()) return mean_group_rows;
    std::size_t words = 0;
    for (const auto& d : *docs_) words += d.words.size();
    return words / docs_->size() + 1;
  }
  void SampleBatch(const ColumnBatch& params,
                   const std::vector<std::uint32_t>& group_offsets,
                   stats::Rng& rng, reldb::VgBatchOut* out) override {
    const ColumnBatch::Column& dc = params.col(doc_c_);
    const std::size_t n_groups = group_offsets.size() - 1;
    std::vector<std::int64_t> doc_col, pos_col, word_col, topic_col;
    const std::size_t est = n_groups * OutRowsHint(0);
    doc_col.reserve(est);
    pos_col.reserve(est);
    word_col.reserve(est);
    topic_col.reserve(est);
    for (std::size_t g = 0; g < n_groups; ++g) {
      auto doc_id =
          static_cast<std::size_t>(AsInt(dc.At(group_offsets[g])));
      LdaDocument& doc = (*docs_)[doc_id];
      if (!prepared_) {
        std::size_t expected = 0;
        for (const auto& d : *docs_) expected += d.words.size();
        sampler_.Prepare(hyper_, *params_, expected);
        prepared_ = true;
      }
      sampler_.Resample(rng, &doc, nullptr);
      for (std::size_t pos = 0; pos < doc.words.size(); ++pos) {
        doc_col.push_back(static_cast<std::int64_t>(doc_id));
        pos_col.push_back(static_cast<std::int64_t>(pos));
        word_col.push_back(static_cast<std::int64_t>(doc.words[pos]));
        topic_col.push_back(static_cast<std::int64_t>(doc.topics[pos]));
      }
    }
    out->columnar = true;
    out->cols.push_back(ColumnBatch::Column::Ints(std::move(doc_col)));
    out->cols.push_back(ColumnBatch::Column::Ints(std::move(pos_col)));
    out->cols.push_back(ColumnBatch::Column::Ints(std::move(word_col)));
    out->cols.push_back(ColumnBatch::Column::Ints(std::move(topic_col)));
  }

 private:
  std::shared_ptr<LdaParams> params_;
  models::LdaHyper hyper_;
  std::vector<LdaDocument>* docs_;
  std::size_t doc_c_ = 0;
  // VG functions are invoked serially, so per-object scratch is safe.
  models::LdaDocSampler sampler_;
  bool prepared_ = false;
};

}  // namespace

RunResult RunLdaRelDb(const LdaExperiment& exp,
                      models::LdaParams* final_model) {
  sim::ClusterSim sim(exp.config.cluster());
  exp.config.ApplyNoise(&sim);
  exp.config.ApplyFaults(&sim);
  Database db(&sim, sim::RelDbCosts{}, exp.config.seed);
  CorpusGen gen(exp.config.seed, exp.vocab, exp.mean_doc_len);
  models::LdaHyper hyper{exp.topics, exp.vocab, 0.5, 0.1};

  const int machines = exp.config.machines;
  const long long docs_act = exp.config.data.actual_per_machine;
  const double doc_scale = exp.config.data.scale();
  const double word_scale = doc_scale;
  const double logical_words = exp.logical_words_per_machine() * machines;
  const double t = static_cast<double>(exp.topics);
  const bool word_based = exp.granularity == TextGranularity::kWord;

  std::vector<LdaDocument> docs;
  stats::Rng init_rng(exp.config.seed ^ 0x7DA3);
  {
    Table words(Schema{"doc_id", "pos", "word"}, word_scale);
    Table doc_ids(Schema{"doc_id"}, doc_scale);
    words.Reserve(static_cast<std::size_t>(machines) *
                  static_cast<std::size_t>(docs_act) * exp.mean_doc_len);
    doc_ids.Reserve(static_cast<std::size_t>(machines) *
                    static_cast<std::size_t>(docs_act));
    for (int m = 0; m < machines; ++m) {
      for (long long j = 0; j < docs_act; ++j) {
        LdaDocument doc;
        doc.words = gen.Document(m, j);
        models::InitLdaDocument(init_rng, hyper, &doc);
        auto id = static_cast<std::int64_t>(docs.size());
        for (std::size_t pos = 0; pos < doc.words.size(); ++pos) {
          words.Append(Tuple{id, static_cast<std::int64_t>(pos),
                             static_cast<std::int64_t>(doc.words[pos])});
        }
        doc_ids.Append(Tuple{id});
        docs.push_back(std::move(doc));
      }
    }
    db.BeginQuery("load corpus");
    Rel::FromTable(db, std::move(words)).Materialize("words");
    Rel::FromTable(db, std::move(doc_ids)).Materialize("docs");
    db.EndQuery();
  }
  // Initial assignments table; the word-based variant's initialization
  // runs the per-word parameterization joins once (its 11:23:22 init).
  db.BeginQuery("topics[0]");
  {
    Table st(Schema{"doc_id", "pos", "word", "topic"}, word_scale);
    st.Reserve(docs.size() * exp.mean_doc_len);
    for (std::size_t d = 0; d < docs.size(); ++d) {
      for (std::size_t pos = 0; pos < docs[d].words.size(); ++pos) {
        st.Append(Tuple{static_cast<std::int64_t>(d),
                        static_cast<std::int64_t>(pos),
                        static_cast<std::int64_t>(docs[d].words[pos]),
                        static_cast<std::int64_t>(docs[d].topics[pos])});
      }
    }
    auto rel = Rel::FromTable(db, std::move(st));
    if (word_based) {
      for (int j = 0; j < 5; ++j) {
        rel = rel.HashJoin(Rel::Scan(db, "words"), {"doc_id", "pos"},
                           {"doc_id", "pos"}, word_scale);
        rel = rel.Project(Schema{"doc_id", "pos", "word", "topic"},
                          {reldb::ColExpr::Col(0), reldb::ColExpr::Col(1),
                           reldb::ColExpr::Col(2), reldb::ColExpr::Col(3)});
      }
    }
    rel.Materialize(Database::Versioned("topics", 0));
  }
  db.EndQuery();

  LdaParams params = models::SampleLdaPrior(init_rng, hyper);

  RunResult result;
  result.init_seconds = sim.elapsed_seconds();
  sim.ResetClock();

  WordCost wc = LdaWordCost(sim::Language::kCpp, exp.granularity,
                            exp.topics);
  double word_flops = wc.flops + CppCallEquivalentFlops(wc.calls);

  for (int i = 1; i <= exp.config.iterations; ++i) {
    if (Status hs = exp.config.IterationBoundary(i - 1); !hs.ok()) {
      return RunResult::Fail(std::move(hs), result.init_seconds);
    }
    double t0 = sim.elapsed_seconds();
    auto params_ptr = std::make_shared<LdaParams>(params);

    // Query 1: topics[i].
    db.BeginQuery(Database::Versioned("topics", i));
    double model_bytes =
        models::LdaModelBytes(hyper, db.costs().tuple_bytes);
    for (int m = 0; m < machines; ++m) sim.ChargeNetwork(m, model_bytes);
    TopicVg vg(params_ptr, hyper, &docs);
    Rel source = Rel::Scan(db, Database::Versioned("topics", i - 1));
    if (word_based) {
      // Per-word parameterization: theta and phi rows join to every word.
      for (int j = 0; j < 3; ++j) {
        source = source.HashJoin(
            Rel::Scan(db, Database::Versioned("topics", i - 1)),
            {"doc_id", "pos"}, {"doc_id", "pos"}, word_scale);
        source = source.Project(Schema{"doc_id", "pos", "word", "topic"},
                                {reldb::ColExpr::Col(0), reldb::ColExpr::Col(1),
                                 reldb::ColExpr::Col(2),
                                 reldb::ColExpr::Col(3)});
      }
      source = source.HashJoin(Rel::Scan(db, "words"), {"doc_id", "pos"},
                               {"doc_id", "pos"}, word_scale);
      source = source.Project(Schema{"doc_id", "pos", "word", "topic"},
                              {reldb::ColExpr::Col(0), reldb::ColExpr::Col(1),
                               reldb::ColExpr::Col(2), reldb::ColExpr::Col(3)});
    } else if (exp.granularity == TextGranularity::kDocument) {
      source = source.HashJoin(Rel::Scan(db, "docs"), {"doc_id"},
                               {"doc_id"}, word_scale,
                               /*co_partitioned=*/true);
    }
    auto dedup = word_based ? source.FilterAll()
                            : source.FilterIntIn("pos", {0});
    auto topics_rel = dedup.VgApply(vg, {"doc_id"}, word_scale, word_flops);
    topics_rel.Materialize(Database::Versioned("topics", i));
    db.EndQuery();

    // Query 2: g(t, w) aggregation + per-document theta statistics
    // (f(j, t) is T x n_docs -- data-scaled output).
    db.BeginQuery("lda counts");
    auto tp_rel = Rel::Scan(db, Database::Versioned("topics", i));
    tp_rel.GroupBy({"topic", "word"}, {{AggOp::kCount, "", "g"}}, 1.0)
        .Materialize("g_agg");
    tp_rel.GroupBy({"doc_id", "topic"}, {{AggOp::kCount, "", "f"}},
                   word_scale)
        .Materialize("f_agg");
    db.EndQuery();

    // Query 3: phi update (T Dirichlet VG invocations over V-row groups)
    // and theta updates riding in the f_agg-parameterized VG (their cost
    // is word-cardinality and is charged by the aggregation above).
    db.BeginQuery("lda model update");
    LdaCounts counts(exp.topics, exp.vocab);
    for (const auto& doc : docs) {
      for (std::size_t pos = 0; pos < doc.words.size(); ++pos) {
        counts.g[doc.topics[pos]][doc.words[pos]] += 1;
      }
    }
    params = models::SampleLdaPosterior(db.rng(), hyper, counts);
    sim.ChargeParallelCpu(t * exp.vocab *
                          (db.costs().vg_tuple_s + db.costs().per_tuple_s));
    double model_rows_bytes = t * exp.vocab * db.TupleBytes(3);
    sim.ChargeCpuAllMachines(model_rows_bytes * 2.0 / machines *
                             db.costs().materialize_byte_s);
    // Theta tables: one row per (doc, topic) written back.
    sim.ChargeParallelCpu(exp.config.data.logical_per_machine * machines *
                          t * db.costs().per_tuple_s / 10.0);
    db.ChargeExtraJob();
    db.EndQuery();

    // VG parameterization joins: the word-based plan assembles ~5xt
    // model tuples per word, the document-based plan ~2.5xt (the
    // super-vertex payloads carry their own state). Calibrated against
    // the published word/document columns.
    {
      sim.BeginPhase("reldb:vg parameterization");
      double per_word_tuples =
          exp.granularity == TextGranularity::kWord ? 5.0 * t
          : exp.granularity == TextGranularity::kDocument ? 2.5 * t
                                                          : 0.0;
      sim.ChargeParallelCpu(logical_words * per_word_tuples *
                            (db.costs().join_tuple_s +
                             db.costs().group_by_tuple_s));
      sim.EndPhase();
    }
    db.DropVersionsBefore("topics", i);
    result.iteration_seconds.push_back(sim.elapsed_seconds() - t0);
    if (!db.fault_status().ok()) {
      return RunResult::Fail(db.fault_status(), result.init_seconds);
    }
    (void)logical_words;
  }

  if (final_model != nullptr) *final_model = params;
  result.CaptureFaultStats(sim);
  result.status = Status::OK();
  return result;
}

}  // namespace mlbench::core
