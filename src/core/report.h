#pragma once

#include <string>
#include <vector>

#include "core/experiment.h"

/// \file report.h
/// Table rendering for the benchmark binaries: each bench prints the
/// paper's figure next to our simulated reproduction, cell by cell, in the
/// paper's "MM:SS (init)" format with "Fail" entries.

namespace mlbench::core {

/// Formats a run the way the paper's tables do: "27:55 (13:55)", or
/// "Fail" with the failure class.
std::string FormatCell(const RunResult& r);

/// Formats the paper's published value for a cell (pass "Fail" or "NA"
/// through verbatim).
inline std::string PaperCell(const std::string& s) { return s; }

/// One row of a comparison table: an implementation plus its measured and
/// published cells, interleaved by the printer.
struct ReportRow {
  std::string name;
  int lines_of_code = 0;  ///< of our implementation (0 = not shown)
  std::vector<std::string> paper;     ///< published cells
  std::vector<RunResult> measured;    ///< our runs, same order
  std::string note;                   ///< footnote marker text
};

/// Prints a figure reproduction: header, then one paper row and one
/// measured row per implementation.
void PrintFigure(const std::string& title,
                 const std::vector<std::string>& columns,
                 const std::vector<ReportRow>& rows);

/// Counts non-blank non-comment lines of our implementation sources (for
/// the paper's lines-of-code column).
int ImplementationLoc(const std::vector<std::string>& repo_relative_paths);

}  // namespace mlbench::core
