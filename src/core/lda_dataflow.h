#pragma once

#include "core/lda_experiment.h"
#include "models/lda.h"

/// \file lda_dataflow.h
/// The Spark LDA of paper Section 8 (document-based and super-vertex,
/// Python or Java -- Fig. 4 and Fig. 6). One aggregation job per iteration
/// collects the per-topic word counts g(t, w); theta_j updates ride along
/// in the per-document transformation. The Java code ships phi in nested
/// boxed maps inside task closures, whose cached copies accumulate --
/// the paper's Java run "failed on 20 machines after 18 iterations".

namespace mlbench::core {

RunResult RunLdaDataflow(const LdaExperiment& exp,
                         models::LdaParams* final_model = nullptr);

}  // namespace mlbench::core
