#pragma once

#include "core/hmm_experiment.h"
#include "models/hmm.h"

/// \file hmm_bsp.h
/// The Giraph HMM of paper Section 7.4. Word-based: one vertex per word
/// position, messaging neighbors its state -- the per-machine vertex store
/// plus neighbor-state message buffers exceed worker RAM, so it fails as
/// in the paper. Document-based and super-vertex: data vertices re-sample
/// whole documents; per-state count messages combine on the way to the
/// state vertices, and the model returns through worker-level broadcast.

namespace mlbench::core {

RunResult RunHmmBsp(const HmmExperiment& exp,
                    models::HmmParams* final_model = nullptr);

}  // namespace mlbench::core
