#include "core/lda_dataflow.h"

#include <memory>
#include <utility>
#include <vector>

#include "core/workloads.h"
#include "dataflow/rdd.h"

namespace mlbench::core {

namespace {

using dataflow::Context;
using dataflow::OpCost;
using models::LdaCounts;
using models::LdaDocument;
using models::LdaParams;
using models::Vector;

struct CountVec {
  Vector v;
};

}  // namespace

RunResult RunLdaDataflow(const LdaExperiment& exp,
                         models::LdaParams* final_model) {
  if (exp.granularity == TextGranularity::kWord) {
    // Fig. 4(a) marks word-based Spark LDA "NA": with the word-based HMM
    // self-join already failing, the paper did not implement it.
    return RunResult::Fail(
        Status::Unimplemented("word-based Spark LDA not attempted (NA)"));
  }
  sim::ClusterSim sim(exp.config.cluster());
  exp.config.ApplyNoise(&sim);
  exp.config.ApplyFaults(&sim);
  dataflow::ContextOptions opts;
  opts.evict_cache_on_pressure = exp.config.faults.evict_cache_on_pressure;
  opts.language = exp.language;
  opts.seed = exp.config.seed;

  CorpusGen gen(exp.config.seed, exp.vocab, exp.mean_doc_len);
  models::LdaHyper hyper{exp.topics, exp.vocab, 0.5, 0.1};
  const double t = static_cast<double>(exp.topics);
  const double words_per_doc = static_cast<double>(exp.mean_doc_len);
  const bool python = exp.language == sim::Language::kPython;
  // Tokens + z assignments in the RDD cache, plus each document's theta.
  const double doc_bytes =
      words_per_doc * (python ? 15.0 : 5.0) + t * 8.0 + (python ? 196.0 : 96.0);

  const bool super = exp.granularity == TextGranularity::kSuperVertex;
  const long long docs_per_chunk =
      super ? std::max<long long>(1, exp.config.data.actual_per_machine /
                                         static_cast<long long>(
                                             exp.supers_per_machine))
            : 1;
  const long long chunks_per_machine =
      exp.config.data.actual_per_machine / docs_per_chunk;
  opts.scale = exp.config.data.logical_per_machine /
               static_cast<double>(chunks_per_machine * docs_per_chunk);
  Context ctx(&sim, opts);

  using Chunk = std::shared_ptr<std::vector<LdaDocument>>;
  auto data = dataflow::Generate<std::pair<long long, Chunk>>(
      ctx, chunks_per_machine,
      [&gen, &exp, &hyper, docs_per_chunk](int p, long long i) {
        auto chunk = std::make_shared<std::vector<LdaDocument>>();
        for (long long d = 0; d < docs_per_chunk; ++d) {
          LdaDocument doc;
          doc.words = gen.Document(p, i * docs_per_chunk + d);
          stats::Rng r = stats::Rng(0x7DA1 ^ p).Split(
              static_cast<std::uint64_t>(i * docs_per_chunk + d) + 1);
          models::InitLdaDocument(r, hyper, &doc);
          chunk->push_back(std::move(doc));
        }
        return std::make_pair((static_cast<long long>(p) << 32) | i, chunk);
      },
      doc_bytes * static_cast<double>(docs_per_chunk),
      /*parse_flops=*/2.0 * words_per_doc * docs_per_chunk);
  data.Cache();
  auto forced = data.CountActual();
  if (!forced.ok()) return RunResult::Fail(forced.status());
  if (!ctx.lifetime_status().ok()) {
    return RunResult::Fail(ctx.lifetime_status());
  }

  stats::Rng rng(exp.config.seed ^ 0x7DA2);
  LdaParams params = models::SampleLdaPrior(rng, hyper);

  RunResult result;
  result.init_seconds = sim.elapsed_seconds();
  sim.ResetClock();

  WordCost wc = LdaWordCost(exp.language, exp.granularity, exp.topics);
  OpCost per_chunk;
  double wpc = words_per_doc * static_cast<double>(docs_per_chunk);
  per_chunk.flops_per_record = (wc.flops + 4.0 * t) * wpc;
  per_chunk.linalg_calls_per_record = wc.calls * wpc + docs_per_chunk;
  per_chunk.elements_per_record = wc.elements * wpc;
  const double model_bytes =
      LdaModelBytesFor(exp.language, exp.topics, exp.vocab);
  const double count_bytes = python ? 60.0 : 40.0;

  for (int iter = 0; iter < exp.config.iterations; ++iter) {
    if (Status hs = exp.config.IterationBoundary(iter); !hs.ok()) {
      return RunResult::Fail(std::move(hs), result.init_seconds);
    }
    double t0 = sim.elapsed_seconds();
    auto params_ptr = std::make_shared<LdaParams>(params);
    std::uint64_t iter_seed = exp.config.seed ^ (0x7DB0u + iter);

    // Job 1 (+2): re-sample z and theta per document; flatMap the
    // per-topic word-count partials and reduceByKey them; collect and
    // sample phi on the driver.
    auto counts = data.FlatMap(
        [params_ptr, &hyper, iter_seed](
            const std::pair<long long, Chunk>& rec) {
          LdaCounts c(hyper.topics, hyper.vocab);
          stats::Rng r = stats::Rng(iter_seed).Split(
              static_cast<std::uint64_t>(rec.first) + 1);
          std::size_t expected = 0;
          for (const auto& doc : *rec.second) expected += doc.words.size();
          models::LdaDocSampler sampler;
          sampler.Prepare(hyper, *params_ptr, expected);
          for (auto& doc : *rec.second) {
            sampler.Resample(r, &doc, &c);
          }
          std::vector<std::pair<int, CountVec>> out;
          for (std::size_t tt = 0; tt < hyper.topics; ++tt) {
            out.push_back({static_cast<int>(tt), CountVec{c.g[tt]}});
          }
          return out;
        },
        per_chunk, count_bytes * exp.vocab / t);
    auto reduced = dataflow::ReduceByKey(
        counts,
        [](const CountVec& a, const CountVec& b) {
          CountVec m = a;
          m.v += b.v;
          return m;
        },
        OpCost{}, /*out_scale=*/1.0, /*reduce_flops=*/1.0);

    ctx.BeginJob("lda:resample+counts", data.num_partitions());
    Status bc = ctx.BroadcastClosure(model_bytes);
    if (!bc.ok()) {
      ctx.EndJob();
      result.status = bc;  // keep the completed iterations' timings
      return result;
    }
    auto rows = reduced.CollectNoJob();
    ctx.EndJob();
    if (!rows.ok()) {
      result.status = rows.status();
      return result;
    }

    ctx.BeginJob("lda:sample_phi", exp.config.machines);
    Status bc2 = ctx.BroadcastClosure(model_bytes);
    if (!bc2.ok()) {
      ctx.EndJob();
      result.status = bc2;
      return result;
    }
    LdaCounts total(exp.topics, exp.vocab);
    for (auto& [key, cv] : *rows) total.g[key] += cv.v;
    params = models::SampleLdaPosterior(rng, hyper, total);
    sim.ChargeCpu(0, ctx.lang().LinalgSeconds(
                         4.0 * t * exp.vocab, 2.0 * t, 1,
                         python ? t * exp.vocab : 0));
    ctx.EndJob();

    result.iteration_seconds.push_back(sim.elapsed_seconds() - t0);
    if (!ctx.fault_status().ok()) {
      return RunResult::Fail(ctx.fault_status(), result.init_seconds);
    }
  }

  if (final_model != nullptr) *final_model = params;
  result.CaptureFaultStats(sim);
  result.status = Status::OK();
  return result;
}

}  // namespace mlbench::core
