#include "core/hmm_reldb.h"

#include <memory>
#include <utility>
#include <vector>

#include "core/workloads.h"
#include "reldb/database.h"
#include "reldb/rel.h"
#include "reldb/vg_library.h"

namespace mlbench::core {

namespace {

using models::HmmCounts;
using models::HmmDocument;
using models::HmmParams;
using models::Vector;
using reldb::AggOp;
using reldb::AsDouble;
using reldb::AsInt;
using reldb::ColType;
using reldb::ColumnBatch;
using reldb::Database;
using reldb::Rel;
using reldb::Schema;
using reldb::Table;
using reldb::Tuple;

/// VG re-sampling the states of one invocation group (word, document, or
/// document group) and emitting one (doc, pos, word, state) tuple per word.
/// The current model binds at construction (broadcast join of the small
/// model tables).
class StateVg : public reldb::VgFunction {
 public:
  StateVg(std::shared_ptr<HmmParams> params,
          std::vector<HmmDocument>* docs, int iteration)
      : params_(std::move(params)), docs_(docs), iteration_(iteration) {}
  std::string name() const override { return "hmm_states"; }
  Schema output_schema() const override {
    return {"doc_id", "pos", "word", "state"};
  }
  void BindSchema(const Schema& schema) override {
    doc_c_ = schema.IndexOf("doc_id");
  }
  void Sample(const std::vector<Tuple>& group, const Schema& schema,
              stats::Rng& rng, std::vector<Tuple>* out) override {
    (void)schema;
    // Groups are keyed by doc_id: one re-sample per document regardless of
    // how many parameter rows the plan delivered.
    auto doc_id = static_cast<std::size_t>(AsInt(group[0][doc_c_]));
    HmmDocument& doc = (*docs_)[doc_id];
    if (!prepared_) {
      // The VG object is rebuilt each iteration with that iteration's
      // model, so the prepared tables stay valid for all its invocations.
      std::size_t expected = 0;
      for (const auto& d : *docs_) expected += d.words.size();
      sampler_.Prepare(*params_, expected);
      prepared_ = true;
    }
    sampler_.Resample(rng, iteration_, &doc);
    for (std::size_t pos = 0; pos < doc.words.size(); ++pos) {
      out->push_back(Tuple{static_cast<std::int64_t>(doc_id),
                           static_cast<std::int64_t>(pos),
                           static_cast<std::int64_t>(doc.words[pos]),
                           static_cast<std::int64_t>(doc.states[pos])});
    }
  }
  std::size_t OutRowsHint(std::size_t mean_group_rows) const override {
    if (docs_->empty()) return mean_group_rows;
    std::size_t words = 0;
    for (const auto& d : *docs_) words += d.words.size();
    return words / docs_->size() + 1;
  }
  void SampleBatch(const ColumnBatch& params,
                   const std::vector<std::uint32_t>& group_offsets,
                   stats::Rng& rng, reldb::VgBatchOut* out) override {
    const ColumnBatch::Column& dc = params.col(doc_c_);
    const std::size_t n_groups = group_offsets.size() - 1;
    std::vector<std::int64_t> doc_col, pos_col, word_col, state_col;
    const std::size_t est = n_groups * OutRowsHint(0);
    doc_col.reserve(est);
    pos_col.reserve(est);
    word_col.reserve(est);
    state_col.reserve(est);
    for (std::size_t g = 0; g < n_groups; ++g) {
      auto doc_id =
          static_cast<std::size_t>(AsInt(dc.At(group_offsets[g])));
      HmmDocument& doc = (*docs_)[doc_id];
      if (!prepared_) {
        std::size_t expected = 0;
        for (const auto& d : *docs_) expected += d.words.size();
        sampler_.Prepare(*params_, expected);
        prepared_ = true;
      }
      sampler_.Resample(rng, iteration_, &doc);
      for (std::size_t pos = 0; pos < doc.words.size(); ++pos) {
        doc_col.push_back(static_cast<std::int64_t>(doc_id));
        pos_col.push_back(static_cast<std::int64_t>(pos));
        word_col.push_back(static_cast<std::int64_t>(doc.words[pos]));
        state_col.push_back(static_cast<std::int64_t>(doc.states[pos]));
      }
    }
    out->columnar = true;
    out->cols.push_back(ColumnBatch::Column::Ints(std::move(doc_col)));
    out->cols.push_back(ColumnBatch::Column::Ints(std::move(pos_col)));
    out->cols.push_back(ColumnBatch::Column::Ints(std::move(word_col)));
    out->cols.push_back(ColumnBatch::Column::Ints(std::move(state_col)));
  }

 private:
  std::shared_ptr<HmmParams> params_;
  std::vector<HmmDocument>* docs_;
  int iteration_;
  std::size_t doc_c_ = 0;
  // VG functions are invoked serially, so per-object scratch is safe.
  models::HmmSampler sampler_;
  bool prepared_ = false;
};

}  // namespace

RunResult RunHmmRelDb(const HmmExperiment& exp,
                      models::HmmParams* final_model) {
  sim::ClusterSim sim(exp.config.cluster());
  exp.config.ApplyNoise(&sim);
  exp.config.ApplyFaults(&sim);
  Database db(&sim, sim::RelDbCosts{}, exp.config.seed);
  CorpusGen gen(exp.config.seed, exp.vocab, exp.mean_doc_len);
  models::HmmHyper hyper{exp.states, exp.vocab, 1.0, 0.1};

  const int machines = exp.config.machines;
  const long long docs_act = exp.config.data.actual_per_machine;
  const double doc_scale = exp.config.data.scale();
  const double word_scale = doc_scale;  // per stored word tuple
  const double logical_words =
      exp.logical_words_per_machine() * machines;
  const double k = static_cast<double>(exp.states);

  // ---- Load the corpus ------------------------------------------------------
  std::vector<HmmDocument> docs;
  stats::Rng init_rng(exp.config.seed ^ 0x4A35);
  Table words(Schema{"doc_id", "pos", "word"}, word_scale);
  Table doc_ids(Schema{"doc_id"}, doc_scale);
  words.Reserve(static_cast<std::size_t>(machines) *
                static_cast<std::size_t>(docs_act) * exp.mean_doc_len);
  doc_ids.Reserve(static_cast<std::size_t>(machines) *
                  static_cast<std::size_t>(docs_act));
  for (int m = 0; m < machines; ++m) {
    for (long long j = 0; j < docs_act; ++j) {
      HmmDocument doc;
      doc.words = gen.Document(m, j);
      models::InitHmmStates(init_rng, exp.states, &doc);
      auto id = static_cast<std::int64_t>(docs.size());
      for (std::size_t pos = 0; pos < doc.words.size(); ++pos) {
        words.Append(Tuple{id, static_cast<std::int64_t>(pos),
                           static_cast<std::int64_t>(doc.words[pos])});
      }
      doc_ids.Append(Tuple{id});
      docs.push_back(std::move(doc));
    }
  }
  db.BeginQuery("load corpus");
  Rel::FromTable(db, std::move(words)).Materialize("words");
  Rel::FromTable(db, std::move(doc_ids)).Materialize("docs");
  db.EndQuery();
  // Initial states[0] written out (the word-based init also pays the
  // six-table parameterization once, which dominated its 10:51:32 init).
  const bool word_based = exp.granularity == TextGranularity::kWord;
  db.BeginQuery("states[0]");
  {
    Table st(Schema{"doc_id", "pos", "word", "state"}, word_scale);
    st.Reserve(docs.size() * exp.mean_doc_len);
    for (std::size_t d = 0; d < docs.size(); ++d) {
      for (std::size_t pos = 0; pos < docs[d].words.size(); ++pos) {
        st.Append(Tuple{static_cast<std::int64_t>(d),
                        static_cast<std::int64_t>(pos),
                        static_cast<std::int64_t>(docs[d].words[pos]),
                        static_cast<std::int64_t>(docs[d].states[pos])});
      }
    }
    auto rel = Rel::FromTable(db, std::move(st));
    if (word_based) {
      // Initialization re-runs the join pipeline to seed prev/next ids.
      for (int j = 0; j < 5; ++j) {
        rel = rel.HashJoin(Rel::Scan(db, "words"), {"doc_id", "pos"},
                           {"doc_id", "pos"}, word_scale);
        rel = rel.Project(Schema{"doc_id", "pos", "word", "state"},
                          {reldb::ColExpr::Col(0), reldb::ColExpr::Col(1),
                           reldb::ColExpr::Col(2), reldb::ColExpr::Col(3)});
      }
    }
    rel.Materialize(Database::Versioned("states", 0));
  }
  db.EndQuery();

  HmmParams params = models::SampleHmmPrior(init_rng, hyper);

  RunResult result;
  result.init_seconds = sim.elapsed_seconds();
  sim.ResetClock();

  // ---- Iterations -----------------------------------------------------------
  WordCost wc = HmmWordCost(sim::Language::kCpp, exp.granularity,
                            exp.states);
  double word_flops = wc.flops + CppCallEquivalentFlops(wc.calls);

  for (int i = 1; i <= exp.config.iterations; ++i) {
    if (Status hs = exp.config.IterationBoundary(i - 1); !hs.ok()) {
      return RunResult::Fail(std::move(hs), result.init_seconds);
    }
    double t0 = sim.elapsed_seconds();
    auto params_ptr = std::make_shared<HmmParams>(params);

    // Query 1: states[i].
    db.BeginQuery(Database::Versioned("states", i));
    // Model tables broadcast-join into the VG parameterization.
    double model_bytes = models::HmmModelBytes(hyper, db.costs().tuple_bytes);
    for (int m = 0; m < machines; ++m) sim.ChargeNetwork(m, model_bytes);

    StateVg vg(params_ptr, &docs, i);
    Rel source = Rel::Scan(db, Database::Versioned("states", i - 1));
    if (word_based) {
      // The six-table join: previous/current/next state rows + the word
      // table + the two model tables, each a full shuffle join at word
      // cardinality (the paper's optimizer quirk needed the nextPos
      // column to even make these equi-joins).
      for (int j = 0; j < 3; ++j) {
        source = source.HashJoin(
            Rel::Scan(db, Database::Versioned("states", i - 1)),
            {"doc_id", "pos"}, {"doc_id", "pos"}, word_scale);
        source = source.Project(Schema{"doc_id", "pos", "word", "state"},
                                {reldb::ColExpr::Col(0), reldb::ColExpr::Col(1),
                                 reldb::ColExpr::Col(2),
                                 reldb::ColExpr::Col(3)});
      }
      source = source.HashJoin(Rel::Scan(db, "words"), {"doc_id", "pos"},
                               {"doc_id", "pos"}, word_scale);
      source = source.Project(Schema{"doc_id", "pos", "word", "state"},
                              {reldb::ColExpr::Col(0), reldb::ColExpr::Col(1),
                               reldb::ColExpr::Col(2), reldb::ColExpr::Col(3)});
    } else if (exp.granularity == TextGranularity::kDocument) {
      // Document parameterization: one co-partitioned join links each
      // document's rows to its document entry. (The super-vertex code
      // keeps the grouping inside the VG and skips even this join.)
      source = source.HashJoin(Rel::Scan(db, "docs"), {"doc_id"},
                               {"doc_id"}, word_scale,
                               /*co_partitioned=*/true);
    }
    // The VG consumes one parameter row per document (the documents'
    // contents are held natively) and emits word-level state tuples. The
    // non-word plans dedup to one row per doc; the word plan keeps a
    // same-cost pass-through filter (the paper's plan still scans here).
    auto dedup = word_based ? source.FilterAll()
                            : source.FilterIntIn("pos", {0});
    // Output is one tuple per word position in every variant.
    auto states_rel = dedup.VgApply(vg, {"doc_id"}, word_scale, word_flops);
    states_rel.Materialize(Database::Versioned("states", i));
    db.EndQuery();

    // Query 2: aggregate f / g / h with GROUP BYs over the state tuples
    // (every generated value is output and aggregated -- Section 7.6).
    db.BeginQuery("hmm counts");
    auto st_rel = Rel::Scan(db, Database::Versioned("states", i));
    st_rel.GroupBy({"state", "word"}, {{AggOp::kCount, "", "f"}}, 1.0)
        .Materialize("f_agg");
    st_rel.FilterIntIn("pos", {0})
        .GroupBy({"state"}, {{AggOp::kCount, "", "g"}}, 1.0)
        .Materialize("g_agg");
    // h: adjacent-position transition counting, charged as one more
    // word-cardinality aggregation job (a co-partitioned self-pairing
    // inside the documents followed by GROUP BY).
    sim.ChargeParallelCpu(logical_words *
                          (db.costs().join_tuple_s +
                           db.costs().group_by_tuple_s));
    db.ChargeExtraJob();
    db.EndQuery();

    // Query 3: model update (Dirichlet VGs over the aggregates).
    db.BeginQuery("hmm model update");
    // The true counts come from the natively held documents; cardinality
    // and cost follow the aggregate tables.
    HmmCounts counts(exp.states, exp.vocab);
    for (const auto& doc : docs) models::AccumulateHmmCounts(doc, &counts);
    params = models::SampleHmmPosterior(db.rng(), hyper, counts);
    sim.ChargeParallelCpu((k * exp.vocab + k * k + k) *
                          (db.costs().vg_tuple_s + db.costs().per_tuple_s));
    // New emits/trans tables written back.
    double model_rows_bytes =
        (k * exp.vocab + k * k + k) * db.TupleBytes(3);
    sim.ChargeCpuAllMachines(model_rows_bytes * 2.0 / machines *
                             db.costs().materialize_byte_s);
    db.ChargeExtraJob();
    db.EndQuery();

    // VG parameterization joins: the word-based plan assembles ~5xk
    // model tuples per word, the document-based plan ~2.5xk (the
    // super-vertex payloads carry their own state). Calibrated against
    // the published word/document columns.
    {
      sim.BeginPhase("reldb:vg parameterization");
      double per_word_tuples =
          exp.granularity == TextGranularity::kWord ? 5.0 * k
          : exp.granularity == TextGranularity::kDocument ? 2.5 * k
                                                          : 0.0;
      sim.ChargeParallelCpu(logical_words * per_word_tuples *
                            (db.costs().join_tuple_s +
                             db.costs().group_by_tuple_s));
      sim.EndPhase();
    }
    db.DropVersionsBefore("states", i);
    result.iteration_seconds.push_back(sim.elapsed_seconds() - t0);
    if (!db.fault_status().ok()) {
      return RunResult::Fail(db.fault_status(), result.init_seconds);
    }
  }

  if (final_model != nullptr) *final_model = params;
  result.CaptureFaultStats(sim);
  result.status = Status::OK();
  return result;
}

}  // namespace mlbench::core
