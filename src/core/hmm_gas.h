#pragma once

#include "core/hmm_experiment.h"
#include "models/hmm.h"

/// \file hmm_gas.h
/// The GraphLab HMM of paper Section 7.3: data (super) vertices hold many
/// documents; each of the K state vertices holds (Psi_s, delta_s). The
/// graph is complete bipartite. Each super vertex exports its partial
/// f/g/h counts (~10 MB, as the paper measures); the state vertices'
/// simultaneous gather of those views is what killed the 20- and
/// 100-machine runs (Section 7.6).

namespace mlbench::core {

RunResult RunHmmGas(const HmmExperiment& exp,
                    models::HmmParams* final_model = nullptr);

}  // namespace mlbench::core
