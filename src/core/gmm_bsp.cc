#include "core/gmm_bsp.h"

#include <memory>
#include <utility>
#include <vector>

#include "bsp/engine.h"
#include "core/workloads.h"
#include "models/imputation.h"

namespace mlbench::core {

namespace {

using models::GmmHyper;
using models::GmmParams;
using models::GmmSuffStats;
using models::Matrix;
using models::Vector;

/// Giraph message: model pieces (possibly appended by the combiner),
/// per-cluster statistics, or counts.
struct GmmMsg {
  enum class Kind { kModelPart, kStats, kCounts, kPi } kind = Kind::kStats;
  // Model parts: (cluster_id, pi_k, mu, sigma), appended under combining.
  struct ModelPart {
    std::size_t cid;
    double pi_k;
    Vector mu;
    Matrix sigma;
  };
  std::vector<ModelPart> parts;
  // Stats / counts.
  GmmSuffStats stats;
  Vector counts;
  Vector pi;
};

struct VData {
  enum class Kind { kData, kCluster, kMixture } kind = Kind::kData;
  std::vector<Vector> points;
  std::vector<std::size_t> members;
  std::vector<std::vector<bool>> masks;  // imputation censoring masks
  std::size_t cluster_id = 0;
  Vector mu;
  Matrix sigma;
  double pi_k = 0;
  Vector pi;
};

using Engine = bsp::BspEngine<VData, GmmMsg>;

double ModelPartBytes(std::size_t dim) {
  double d = static_cast<double>(dim);
  return (d * d + d + 2.0) * 8.0 + 40.0;
}

GmmMsg CombineMsgs(const GmmMsg& a, const GmmMsg& b) {
  GmmMsg out = a;
  switch (a.kind) {
    case GmmMsg::Kind::kModelPart:
      for (const auto& p : b.parts) out.parts.push_back(p);
      break;
    case GmmMsg::Kind::kStats:
      out.stats.Merge(b.stats);
      break;
    case GmmMsg::Kind::kCounts:
      if (out.counts.empty()) {
        out.counts = b.counts;
      } else if (!b.counts.empty()) {
        out.counts += b.counts;
      }
      break;
    case GmmMsg::Kind::kPi:
      break;
  }
  return out;
}

}  // namespace

RunResult RunGmmBsp(const GmmExperiment& exp, models::GmmParams* final_model) {
  sim::ClusterSim sim(exp.config.cluster());
  exp.config.ApplyNoise(&sim);
  exp.config.ApplyFaults(&sim);
  Engine engine(&sim);
  engine.SetCheckpointInterval(exp.config.faults.checkpoint_interval);
  GmmDataGen gen(exp.config.seed, exp.k, exp.dim);
  const double d = static_cast<double>(exp.dim);
  const long long n_act = exp.config.data.actual_per_machine;
  const int machines = exp.config.machines;
  const bool super = exp.super_vertex;

  // Vertex ids: clusters 0..k-1, mixture = k, data from k+1.
  const bsp::VertexId kMixtureId = static_cast<bsp::VertexId>(exp.k);

  for (std::size_t c = 0; c < exp.k; ++c) {
    VData vd;
    vd.kind = VData::Kind::kCluster;
    vd.cluster_id = c;
    engine.AddVertex(static_cast<bsp::VertexId>(c), std::move(vd), 1.0,
                     (d * d + d + 2.0) * 8.0 + 64);
  }
  {
    VData vd;
    vd.kind = VData::Kind::kMixture;
    engine.AddVertex(kMixtureId, std::move(vd), 1.0, exp.k * 8.0 + 64);
  }

  const double logical_points = exp.config.data.logical_per_machine;
  const double logical_vertices_per_machine =
      super ? exp.supers_per_machine : logical_points;
  long long actual_vertices =
      super ? std::min<long long>(
                  n_act * machines,
                  static_cast<long long>(exp.supers_per_machine * machines))
            : n_act * machines;
  const double vertex_scale =
      logical_vertices_per_machine * machines / actual_vertices;
  const double points_per_vertex =
      logical_points / logical_vertices_per_machine;
  const double data_state_bytes = points_per_vertex * (d + 1.0) * 8.0 + 72.0;

  std::vector<std::size_t> data_slots;
  for (long long v = 0; v < actual_vertices; ++v) {
    VData vd;
    vd.kind = VData::Kind::kData;
    data_slots.push_back(
        engine.AddVertex(static_cast<bsp::VertexId>(exp.k + 1 + v),
                         std::move(vd), vertex_scale, data_state_bytes));
  }
  long long total_points = n_act * machines;
  std::vector<Vector> all_points;
  for (long long j = 0; j < total_points; ++j) {
    int p = static_cast<int>(j / n_act);
    Vector x = gen.Point(p, j % n_act);
    auto& vd = engine.vertex(data_slots[j % data_slots.size()]).data;
    if (exp.imputation) {
      auto cp = CensorPoint(exp.config.seed, p, j % n_act, x);
      vd.masks.push_back(cp.missing);
      x = cp.x;
    }
    vd.points.push_back(x);
    vd.members.push_back(0);
    all_points.push_back(std::move(x));
  }

  engine.SetCombiner(CombineMsgs);
  engine.SetMessageSize([dim = exp.dim](const GmmMsg& m) {
    switch (m.kind) {
      case GmmMsg::Kind::kModelPart:
        return ModelPartBytes(dim) * static_cast<double>(m.parts.size());
      case GmmMsg::Kind::kStats:
        return (static_cast<double>(dim) * dim + dim + 2.0) * 8.0 + 40.0;
      case GmmMsg::Kind::kCounts:
      case GmmMsg::Kind::kPi:
        return static_cast<double>(m.counts.size() + m.pi.size()) * 8.0 +
               40.0;
    }
    return 64.0;
  });
  // The naive code only ran with Giraph's out-of-core messaging (the model
  // broadcast produces one message per logical data vertex).
  if (!super) engine.SetOutOfCoreMessages(true);

  Status boot = engine.Boot();
  if (!boot.ok()) return RunResult::Fail(boot);

  // ---- Initialization: hyper moments via one aggregation superstep --------
  GmmHyper hyper = models::EmpiricalHyper(exp.k, all_points);
  all_points.clear();
  all_points.shrink_to_fit();
  {
    bsp::ComputeCost cost;
    cost.flops_per_vertex = 4.0 * d * points_per_vertex;
    Status st = engine.RunSuperstep(
        [](Engine::Vertex& v, const std::vector<GmmMsg>&, Engine::Context& ctx) {
          if (v.data.kind == VData::Kind::kData) {
            ctx.Aggregate("moments", {1.0}, 16.0);
          }
        },
        cost, "hyper moments");
    if (!st.ok()) return RunResult::Fail(st);
  }
  stats::Rng rng(exp.config.seed ^ 0xB59);
  auto prior = models::SamplePrior(rng, hyper);
  if (!prior.ok()) return RunResult::Fail(prior.status());
  for (std::size_t c = 0; c < exp.k; ++c) {
    auto& vd = engine.vertex(c).data;
    vd.mu = prior->mu[c];
    vd.sigma = prior->sigma[c];
    vd.pi_k = prior->pi[c];
  }
  engine.vertex(exp.k).data.pi = prior->pi;

  RunResult result;
  result.init_seconds = sim.elapsed_seconds();
  sim.ResetClock();

  // ---- Iterations: three supersteps each -----------------------------------
  // S0: clusters broadcast <mu, Sigma, pi_k> to every data vertex.
  // S1: data vertices sample memberships, send combined stats per cluster.
  // S2: clusters resample (mu, Sigma), send counts to the mixture vertex;
  //     the mixture vertex's new pi reaches clusters in the next S0.
  const double count_scale =
      logical_points * machines / static_cast<double>(total_points);
  const double naive_temp_bytes =
      (PaperMembershipElements(exp.k, exp.dim) +
       (exp.imputation ? PaperImputeElements(exp.dim) : 0.0)) *
      8.0;  // Mallet temporaries

  for (int iter = 0; iter < exp.config.iterations; ++iter) {
    if (Status hs = exp.config.IterationBoundary(iter); !hs.ok()) {
      return RunResult::Fail(std::move(hs), result.init_seconds);
    }
    double t0 = sim.elapsed_seconds();
    std::uint64_t iter_seed = exp.config.seed ^ (0xBEEF + iter);

    // S0: model broadcast.
    bsp::ComputeCost bc_cost;
    Status st = engine.RunSuperstep(
        [&](Engine::Vertex& v, const std::vector<GmmMsg>& inbox,
            Engine::Context& ctx) {
          if (v.data.kind == VData::Kind::kMixture) return;
          if (v.data.kind == VData::Kind::kCluster) {
            // Read pi from the mixture vertex's message (iteration > 0).
            for (const auto& m : inbox) {
              if (m.kind == GmmMsg::Kind::kPi && !m.pi.empty()) {
                v.data.pi_k = m.pi[v.data.cluster_id];
              }
            }
            GmmMsg msg;
            msg.kind = GmmMsg::Kind::kModelPart;
            msg.parts.push_back({v.data.cluster_id, v.data.pi_k, v.data.mu,
                                 v.data.sigma});
            for (std::size_t s = 0; s < data_slots.size(); ++s) {
              const auto& dst = engine.vertex(data_slots[s]);
              ctx.SendReplicated(dst.id, msg, ModelPartBytes(exp.dim),
                                 dst.scale);
            }
          }
        },
        bc_cost, "broadcast model");
    if (!st.ok()) return RunResult::Fail(st, result.init_seconds);

    // S1: membership sampling + stats messages.
    bsp::ComputeCost sample_cost;
    sample_cost.flops_per_vertex =
        (PaperMembershipFlops(exp.k, exp.dim) +
         models::SuffStatFlops(exp.dim)) *
        points_per_vertex;
    sample_cost.linalg_calls_per_vertex =
        PaperMembershipCalls(exp.k) * points_per_vertex;
    sample_cost.elements_per_vertex =
        PaperMembershipElements(exp.k, exp.dim) * points_per_vertex;
    if (exp.imputation) {
      sample_cost.flops_per_vertex +=
          PaperImputeFlops(exp.dim) * points_per_vertex;
      sample_cost.linalg_calls_per_vertex +=
          PaperImputeCalls(sim::Language::kJava) * points_per_vertex;
      sample_cost.elements_per_vertex +=
          PaperImputeElements(exp.dim) * points_per_vertex;
    }
    sample_cost.dim = exp.dim;
    // The super-vertex code processes its points in sequence with reused
    // buffers; the naive code allocates fresh Mallet temporaries and a
    // fresh message per point.
    sample_cost.temp_bytes_per_vertex =
        super ? 64.0 * points_per_vertex : naive_temp_bytes;
    st = engine.RunSuperstep(
        [&](Engine::Vertex& v, const std::vector<GmmMsg>& inbox,
            Engine::Context& ctx) {
          if (v.data.kind != VData::Kind::kData) return;
          GmmParams params;
          params.pi = Vector(exp.k, 1.0 / static_cast<double>(exp.k));
          params.mu.assign(exp.k, Vector(exp.dim));
          params.sigma.assign(exp.k, Matrix::Identity(exp.dim));
          for (const auto& m : inbox) {
            for (const auto& part : m.parts) {
              params.pi[part.cid] = std::max(part.pi_k, 1e-12);
              params.mu[part.cid] = part.mu;
              params.sigma[part.cid] = part.sigma;
            }
          }
          auto sampler = models::GmmMembershipSampler::Build(params);
          stats::Rng vrng = stats::Rng(iter_seed).Split(
              static_cast<std::uint64_t>(v.id) + 1);
          std::vector<GmmSuffStats> stats(exp.k, GmmSuffStats(exp.dim));
          models::GmmMembershipSampler::Scratch scratch;
          if (sampler.ok() && v.data.masks.empty()) {
            // Hot path: fused membership draws over the whole point block.
            std::vector<std::size_t> members;
            sampler->SampleBlock(vrng, v.data.points, &scratch, &members);
            for (std::size_t j = 0; j < v.data.points.size(); ++j) {
              v.data.members[j] = members[j];
              stats[members[j]].Add(v.data.points[j]);
            }
          } else {
            for (std::size_t j = 0; j < v.data.points.size(); ++j) {
              std::size_t c =
                  sampler.ok()
                      ? sampler->Sample(vrng, v.data.points[j], &scratch)
                      : vrng.NextBounded(exp.k);
              v.data.members[j] = c;
              if (!v.data.masks.empty()) {
                models::CensoredPoint cp;
                cp.x = v.data.points[j];
                cp.missing = v.data.masks[j];
                Status ist = models::ImputeMissing(vrng, params.mu[c],
                                                   params.sigma[c], &cp);
                if (ist.ok()) v.data.points[j] = cp.x;
              }
              stats[c].Add(v.data.points[j]);
            }
          }
          for (std::size_t c = 0; c < exp.k; ++c) {
            if (stats[c].n == 0 && !super) continue;
            GmmMsg msg;
            msg.kind = GmmMsg::Kind::kStats;
            msg.stats = std::move(stats[c]);
            ctx.Send(static_cast<bsp::VertexId>(c), std::move(msg),
                     (d * d + d + 2.0) * 8.0 + 40.0);
          }
        },
        sample_cost, "sample memberships");
    if (!st.ok()) return RunResult::Fail(st, result.init_seconds);

    // S2: cluster posterior draws + counts to the mixture vertex; the
    // mixture vertex re-draws pi from last iteration's counts.
    bsp::ComputeCost update_cost;
    update_cost.flops_per_vertex = models::ClusterUpdateFlops(exp.dim);
    update_cost.linalg_calls_per_vertex = 6.0;
    update_cost.dim = exp.dim;
    st = engine.RunSuperstep(
        [&](Engine::Vertex& v, const std::vector<GmmMsg>& inbox,
            Engine::Context& ctx) {
          if (v.data.kind == VData::Kind::kCluster) {
            GmmSuffStats total(exp.dim);
            for (const auto& m : inbox) total.Merge(m.stats);
            // Scale actual statistics counts to logical counts for pi.
            stats::Rng crng = stats::Rng(iter_seed ^ 0xC1u)
                                  .Split(v.data.cluster_id + 1);
            auto post = models::SampleClusterPosterior(crng, hyper, total);
            if (post.ok()) {
              v.data.mu = post->first;
              v.data.sigma = post->second;
            }
            GmmMsg counts;
            counts.kind = GmmMsg::Kind::kCounts;
            counts.counts = Vector(exp.k);
            counts.counts[v.data.cluster_id] = total.n * count_scale;
            ctx.Send(kMixtureId, std::move(counts), exp.k * 8.0 + 40.0);
          } else if (v.data.kind == VData::Kind::kMixture) {
            // Consume the previous iteration's counts.
            std::vector<double> counts(exp.k, 0.0);
            for (const auto& m : inbox) {
              for (std::size_t c = 0;
                   c < exp.k && c < m.counts.size(); ++c) {
                counts[c] += m.counts[c];
              }
            }
            stats::Rng mrng(iter_seed ^ 0xD1u);
            v.data.pi = models::SampleMixingProportions(mrng, hyper, counts);
            GmmMsg pi_msg;
            pi_msg.kind = GmmMsg::Kind::kPi;
            pi_msg.pi = v.data.pi;
            for (std::size_t c = 0; c < exp.k; ++c) {
              ctx.Send(static_cast<bsp::VertexId>(c), pi_msg,
                       exp.k * 8.0 + 40.0);
            }
          }
        },
        update_cost, "update model");
    if (!st.ok()) return RunResult::Fail(st, result.init_seconds);

    result.iteration_seconds.push_back(sim.elapsed_seconds() - t0);
  }

  if (final_model != nullptr) {
    GmmParams params;
    params.pi = Vector(exp.k);
    params.mu.assign(exp.k, Vector(exp.dim));
    params.sigma.assign(exp.k, Matrix(exp.dim, exp.dim));
    for (std::size_t c = 0; c < exp.k; ++c) {
      const auto& vd = engine.vertex(c).data;
      params.mu[c] = vd.mu;
      params.sigma[c] = vd.sigma;
      params.pi[c] = std::max(vd.pi_k, 1e-12);
    }
    double total = params.pi.Sum();
    params.pi /= total > 0 ? total : 1.0;
    *final_model = params;
  }
  engine.Shutdown();
  result.peak_machine_bytes = sim.peak_bytes();
  result.CaptureFaultStats(sim);
  result.status = Status::OK();
  return result;
}

}  // namespace mlbench::core
