#pragma once

#include "core/lda_experiment.h"
#include "models/lda.h"

/// \file lda_bsp.h
/// The Giraph LDA of paper Section 8: document or super-vertex data
/// vertices plus 100 topic vertices; the model returns through worker
/// aggregators and the count partials combine toward the topic vertices.
/// The five-fold larger model statistics (vs. the HMM) push the
/// 100-machine configuration's heap over -- Giraph LDA "failed to run at
/// all on 100 machines".

namespace mlbench::core {

RunResult RunLdaBsp(const LdaExperiment& exp,
                    models::LdaParams* final_model = nullptr);

}  // namespace mlbench::core
