#pragma once

#include "core/hmm_experiment.h"
#include "models/hmm.h"

/// \file hmm_dataflow.h
/// The Spark HMM of paper Section 7.1. The document-based code keeps a
/// cached RDD of (doc, words+states), runs two aggregation jobs per
/// iteration (transition counts h and emission counts f/g) and one
/// self-transformation re-sampling the states. The word-based variant
/// needs a self-join of the state-assignment set with itself, which the
/// paper "could not get Spark to perform without failing" -- our engine
/// fails it in the join's cogroup buffers.

namespace mlbench::core {

RunResult RunHmmDataflow(const HmmExperiment& exp,
                         models::HmmParams* final_model = nullptr);

}  // namespace mlbench::core
