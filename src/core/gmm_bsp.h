#pragma once

#include "core/gmm_experiment.h"
#include "models/gmm.h"

/// \file gmm_bsp.h
/// The Giraph GMM implementation of paper Section 5.4: cluster vertices
/// broadcast the model to the data vertices each iteration (out-of-core
/// messaging keeps the naive code alive at the price of disk passes), data
/// vertices sample memberships and send combined sufficient statistics
/// back, and the mixture-proportion vertex re-draws pi. The naive code's
/// Mallet temporaries kill it by allocation churn at 100 dimensions; at
/// 100 machines the per-peer buffers push the heap over.

namespace mlbench::core {

RunResult RunGmmBsp(const GmmExperiment& exp,
                    models::GmmParams* final_model = nullptr);

}  // namespace mlbench::core
