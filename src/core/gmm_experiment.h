#pragma once

#include "core/experiment.h"
#include "models/gmm.h"
#include "sim/cost_profile.h"

/// \file gmm_experiment.h
/// Configuration shared by the four GMM benchmark implementations
/// (paper Section 5) and the per-point cost declarations of the paper's
/// actual codes.

namespace mlbench::core {

struct GmmExperiment {
  ExperimentConfig config;
  std::size_t dim = 10;
  std::size_t k = 10;
  /// Groups data points into super vertices / chunked records (Fig. 1(c)).
  bool super_vertex = false;
  /// Dataflow implementation language (Fig. 1(a) Python vs. 1(b) Java).
  sim::Language language = sim::Language::kPython;
  /// Logical super vertices per machine (the paper used 8,000 over 100
  /// machines for GraphLab).
  double supers_per_machine = 80;
  /// Gaussian imputation mode (paper Section 9): each point's censored
  /// coordinates are re-drawn from its cluster's conditional normal every
  /// iteration, so the data set itself changes between iterations.
  bool imputation = false;
};

/// Per-point FLOPs of the conditional-normal imputation step.
inline double PaperImputeFlops(std::size_t dim) {
  double d = static_cast<double>(dim);
  return 2.0 * d * d * d + 6.0 * d * d;
}

/// Extra linalg calls of the imputation step (block partition, inverse,
/// conditional draw). The Python code's fancy-indexing slices cost many
/// more kernel invocations than the C++/Java versions.
inline double PaperImputeCalls(sim::Language lang = sim::Language::kCpp) {
  switch (lang) {
    case sim::Language::kPython:
      return 25.0;
    case sim::Language::kJava:
      return 6.0;
    case sim::Language::kCpp:
      return 8.0;
  }
  return 8.0;
}
inline double PaperImputeElements(std::size_t dim) {
  return 6.0 * static_cast<double>(dim) * static_cast<double>(dim);
}

/// Per-point FLOPs of the paper's membership codes, which re-derive each
/// component's inverse covariance per point (sample_mem calls PyGSL /
/// Mallet density routines on the raw covariance).
inline double PaperMembershipFlops(std::size_t k, std::size_t dim) {
  double d = static_cast<double>(dim);
  return static_cast<double>(k) * (d * d * d + 3.0 * d * d);
}

/// Per-point language-boundary elements (operands + temporaries).
inline double PaperMembershipElements(std::size_t k, std::size_t dim) {
  double d = static_cast<double>(dim);
  return static_cast<double>(k) * (d * d + d) * 2.0;
}

/// Per-point linalg kernel invocations (density + sampling helpers).
inline double PaperMembershipCalls(std::size_t k) {
  return 3.0 * static_cast<double>(k) + 2.0;
}

/// Per-point flop-equivalents of the paper's naive per-point density code
/// at C++ cost (inversion per component + GSL call overhead).
inline double PaperMembershipCppFlops(std::size_t k, std::size_t dim) {
  return PaperMembershipFlops(k, dim) +
         CppCallEquivalentFlops(PaperMembershipCalls(k));
}

/// Per-point flop-equivalents of a hand-optimized C++ membership step
/// (cached Cholesky factors, one categorical draw).
inline double CachedMembershipCppFlops(std::size_t k, std::size_t dim) {
  double d = static_cast<double>(dim);
  return static_cast<double>(k) * 2.0 * d * d + CppCallEquivalentFlops(1.0);
}

/// Serialized bytes of the full GMM model (pi, mu, Sigma), with a
/// per-entry representation overhead factor.
inline double GmmModelBytes(std::size_t k, std::size_t dim,
                            double bytes_per_entry = 8.0) {
  double d = static_cast<double>(dim);
  return static_cast<double>(k) * (d * d + d + 1.0) * bytes_per_entry;
}

}  // namespace mlbench::core
