#pragma once

#include "core/lda_experiment.h"
#include "models/lda.h"

/// \file lda_gas.h
/// The GraphLab LDA of paper Section 8 (super-vertex): like the HMM graph
/// but with 100 topic vertices and ~5x larger exported count views -- it
/// ran only at 5 machines (39:27) and failed at 20 and 100.

namespace mlbench::core {

RunResult RunLdaGas(const LdaExperiment& exp,
                    models::LdaParams* final_model = nullptr);

}  // namespace mlbench::core
