#pragma once

#include "core/hmm_experiment.h"
#include "models/hmm.h"

/// \file hmm_reldb.h
/// The SimSQL HMM of paper Section 7.2. The word-based code stores one
/// tuple per word position in states[i] and re-parameterizes the
/// Categorical VG function through a six-table join per iteration (the
/// paper's 8+ hours). The document-based code hands each document's rows
/// to one VG invocation; the super-vertex code hands a group of documents
/// to one invocation -- but in all variants every sampled state comes back
/// as a tuple that must be aggregated with GROUP BYs (Section 7.6).

namespace mlbench::core {

RunResult RunHmmRelDb(const HmmExperiment& exp,
                      models::HmmParams* final_model = nullptr);

}  // namespace mlbench::core
