#include "core/gmm_gas.h"

#include <memory>
#include <utility>
#include <vector>

#include "core/workloads.h"
#include "models/imputation.h"
#include "gas/engine.h"
#include "gas/graph.h"

namespace mlbench::core {

namespace {

using models::GmmHyper;
using models::GmmParams;
using models::GmmSuffStats;
using models::Matrix;
using models::Vector;

/// Vertex payload: one of data / cluster / mixture-proportion.
struct VData {
  enum class Kind { kData, kCluster, kMixture } kind = Kind::kData;
  // Data vertex: the grouped points and their memberships (a naive vertex
  // holds exactly one point).
  std::vector<Vector> points;
  std::vector<std::size_t> members;
  std::vector<std::vector<bool>> masks;  // imputation censoring masks
  // Per-cluster statistics exported after an apply (what the paper's super
  // vertex exports as <k, n_k, mu_k, Sigma_k> tuples).
  std::vector<GmmSuffStats> stats;
  // Cluster vertex state.
  std::size_t cluster_id = 0;
  Vector mu;
  Matrix sigma;
  // Mixture vertex state.
  Vector pi;
};

/// Gather value: model pieces flowing to data vertices, statistics flowing
/// to cluster vertices, counts flowing to the mixture vertex.
struct Gathered {
  std::vector<std::pair<std::size_t, std::pair<Vector, Matrix>>> model;
  Vector pi;
  GmmSuffStats stats;
  Vector counts;
  // Batched-gather borrow slots: elements of a CSR span reference the
  // neighbor's exported state instead of copying it. Safe because the
  // engine consumes a vertex's gathered values within that vertex's own
  // turn (no other vertex mutates in between), and the fold reads all
  // span elements after the accumulator const (engine.h mutates only the
  // accumulator it moves out of the span's first element, which for the
  // additive stats stays an owned copy).
  std::vector<std::pair<std::size_t, const VData*>> model_src;
  const GmmSuffStats* stats_src = nullptr;
  const std::vector<GmmSuffStats>* counts_src = nullptr;
};

class GmmProgram : public gas::GasProgram<VData, Gathered> {
 public:
  GmmProgram(const GmmHyper& hyper, std::uint64_t seed, int iteration,
             double flops_per_point)
      : hyper_(hyper),
        seed_(seed),
        iteration_(iteration),
        flops_per_point_(flops_per_point) {}

  Gathered Gather(const gas::Graph<VData>::Vertex& center,
                  const gas::Graph<VData>::Vertex& nbr) override {
    Gathered g;
    switch (center.data.kind) {
      case VData::Kind::kData:
        // Data vertices pull the model.
        if (nbr.data.kind == VData::Kind::kCluster) {
          g.model.push_back({nbr.data.cluster_id,
                             {nbr.data.mu, nbr.data.sigma}});
        } else if (nbr.data.kind == VData::Kind::kMixture) {
          g.pi = nbr.data.pi;
        }
        break;
      case VData::Kind::kCluster:
        // Cluster vertices pull their per-cluster statistics.
        if (nbr.data.kind == VData::Kind::kData &&
            !nbr.data.stats.empty()) {
          g.stats = nbr.data.stats[center.data.cluster_id];
        }
        break;
      case VData::Kind::kMixture:
        if (nbr.data.kind == VData::Kind::kData &&
            !nbr.data.stats.empty()) {
          g.counts = Vector(hyper_.k);
          for (std::size_t c = 0; c < hyper_.k; ++c) {
            g.counts[c] = nbr.data.stats[c].n;
          }
        }
        break;
    }
    return g;
  }

  // Batched gather over one CSR span. Model pieces and pi fold by
  // placement (push_back concatenation / last-writer overwrite), so the
  // data-vertex case collapses a whole chunk into its first element —
  // edge order preserved, later elements stay Merge identities. The
  // cluster and mixture cases carry additive statistics and must stay
  // per-edge to keep the global fold's FP association (see engine.h), but
  // the engine fold only mutates the accumulator it moves out of the
  // span's first element and reads the rest const — so later elements
  // borrow the neighbor's exported stats instead of copying a dim x dim
  // sufficient-stat block (or building a length-k count vector) per edge.
  void GatherBatch(const gas::Graph<VData>::Vertex& center,
                   const gas::Graph<VData>& graph,
                   const std::size_t* neighbors, std::size_t count,
                   Gathered* out) override {
    switch (center.data.kind) {
      case VData::Kind::kData: {
        Gathered& g = out[0];
        for (std::size_t j = 0; j < count; ++j) {
          const auto& nbr = graph.vertex(neighbors[j]);
          if (nbr.data.kind == VData::Kind::kCluster) {
            g.model_src.push_back({nbr.data.cluster_id, &nbr.data});
          } else if (nbr.data.kind == VData::Kind::kMixture &&
                     !nbr.data.pi.empty()) {
            // Same last-non-empty-wins rule the Merge fold applies.
            g.pi = nbr.data.pi;
          }
        }
        break;
      }
      case VData::Kind::kCluster: {
        bool first = true;
        for (std::size_t j = 0; j < count; ++j) {
          const auto& nbr = graph.vertex(neighbors[j]);
          if (nbr.data.kind == VData::Kind::kData &&
              !nbr.data.stats.empty()) {
            if (first) {
              // The span's first element seeds the fold accumulator,
              // which later merges mutate: it must be an owned copy.
              out[j].stats = nbr.data.stats[center.data.cluster_id];
              first = false;
            } else {
              out[j].stats_src = &nbr.data.stats[center.data.cluster_id];
            }
          }
        }
        break;
      }
      case VData::Kind::kMixture: {
        bool first = true;
        for (std::size_t j = 0; j < count; ++j) {
          const auto& nbr = graph.vertex(neighbors[j]);
          if (nbr.data.kind == VData::Kind::kData &&
              !nbr.data.stats.empty()) {
            if (first) {
              out[j].counts = Vector(hyper_.k);
              for (std::size_t c = 0; c < hyper_.k; ++c) {
                out[j].counts[c] = nbr.data.stats[c].n;
              }
              first = false;
            } else {
              out[j].counts_src = &nbr.data.stats;
            }
          }
        }
        break;
      }
    }
  }

  Gathered Merge(Gathered a, const Gathered& b) override {
    for (const auto& m : b.model) a.model.push_back(m);
    for (const auto& m : b.model_src) a.model_src.push_back(m);
    if (!b.pi.empty()) a.pi = b.pi;
    // Borrowed stats carry the same numbers the scalar gather would have
    // copied; the fold arithmetic and its order are unchanged.
    a.stats.Merge(b.stats_src != nullptr ? *b.stats_src : b.stats);
    if (b.counts_src != nullptr) {
      if (a.counts.empty()) a.counts = Vector(hyper_.k);
      for (std::size_t c = 0; c < hyper_.k; ++c) {
        a.counts[c] += (*b.counts_src)[c].n;
      }
    } else if (!b.counts.empty()) {
      if (a.counts.empty()) {
        a.counts = b.counts;
      } else {
        a.counts += b.counts;
      }
    }
    return a;
  }

  void Apply(gas::Graph<VData>::Vertex& v, const Gathered& g) override {
    stats::Rng rng = stats::Rng(seed_ ^ (0xA700 + iteration_))
                         .Split(static_cast<std::uint64_t>(v.id) + 1);
    switch (v.data.kind) {
      case VData::Kind::kData: {
        // Rebuild the gathered model view and resample memberships.
        GmmParams params;
        params.pi = g.pi.empty() ? Vector(hyper_.k, 1.0 / hyper_.k) : g.pi;
        params.mu.assign(hyper_.k, Vector(hyper_.dim));
        params.sigma.assign(hyper_.k, Matrix::Identity(hyper_.dim));
        for (const auto& [cid, ms] : g.model) {
          params.mu[cid] = ms.first;
          params.sigma[cid] = ms.second;
        }
        // Borrowed rows carry the same values the scalar gather copied;
        // distinct cluster ids make the assignment order immaterial.
        for (const auto& [cid, src] : g.model_src) {
          params.mu[cid] = src->mu;
          params.sigma[cid] = src->sigma;
        }
        auto sampler = models::GmmMembershipSampler::Build(params);
        v.data.stats.assign(hyper_.k, GmmSuffStats(hyper_.dim));
        models::GmmMembershipSampler::Scratch scratch;
        for (std::size_t j = 0; j < v.data.points.size(); ++j) {
          std::size_t c = sampler.ok()
                              ? sampler->Sample(rng, v.data.points[j],
                                                &scratch)
                              : rng.NextBounded(hyper_.k);
          v.data.members[j] = c;
          if (!v.data.masks.empty()) {
            models::CensoredPoint cp;
            cp.x = v.data.points[j];
            cp.missing = v.data.masks[j];
            Status st =
                models::ImputeMissing(rng, params.mu[c], params.sigma[c],
                                      &cp);
            if (st.ok()) v.data.points[j] = cp.x;
          }
          v.data.stats[c].Add(v.data.points[j]);
        }
        break;
      }
      case VData::Kind::kCluster: {
        auto post = models::SampleClusterPosterior(rng, hyper_, g.stats);
        if (post.ok()) {
          v.data.mu = post->first;
          v.data.sigma = post->second;
        }
        break;
      }
      case VData::Kind::kMixture: {
        std::vector<double> counts(hyper_.k, 0.0);
        for (std::size_t c = 0; c < hyper_.k && !g.counts.empty(); ++c) {
          // Scale actual counts up to logical counts.
          counts[c] = g.counts[c] * count_scale_;
        }
        v.data.pi = models::SampleMixingProportions(rng, hyper_, counts);
        break;
      }
    }
  }

  double GatherFlopsPerEdge() const override {
    // Data-side edges carry the per-point density work; spread the declared
    // per-point cost over the K+1 model edges (each counted twice by the
    // undirected sweep).
    return flops_per_point_ / (2.0 * (hyper_.k + 1.0));
  }

  void set_count_scale(double s) { count_scale_ = s; }

 private:
  GmmHyper hyper_;
  std::uint64_t seed_;
  int iteration_;
  double flops_per_point_;
  double count_scale_ = 1.0;
};

}  // namespace

RunResult RunGmmGas(const GmmExperiment& exp,
                    models::GmmParams* final_model) {
  sim::ClusterSim sim(exp.config.cluster());
  exp.config.ApplyNoise(&sim);
  exp.config.ApplyFaults(&sim);
  GmmDataGen gen(exp.config.seed, exp.k, exp.dim);
  const double d = static_cast<double>(exp.dim);
  const long long n_act = exp.config.data.actual_per_machine;
  const int machines = exp.config.machines;

  // ---- Build the graph -----------------------------------------------------
  gas::Graph<VData> graph;
  // Cluster vertices + mixture vertex first (ids 0..k).
  std::vector<std::size_t> cluster_slots;
  for (std::size_t c = 0; c < exp.k; ++c) {
    VData vd;
    vd.kind = VData::Kind::kCluster;
    vd.cluster_id = c;
    cluster_slots.push_back(graph.AddVertex(
        static_cast<gas::VertexId>(c), std::move(vd), 1.0,
        /*state=*/(d * d + d) * 8.0 + 64,
        /*export=*/(d * d + d + 1.0) * 8.0 + 64));
  }
  VData mix;
  mix.kind = VData::Kind::kMixture;
  std::size_t mix_slot =
      graph.AddVertex(static_cast<gas::VertexId>(exp.k), std::move(mix), 1.0,
                      exp.k * 8.0 + 64, exp.k * 8.0 + 64);

  // Data vertices: naive = one point per logical vertex; super vertex =
  // supers_per_machine per machine.
  const bool super = exp.super_vertex;
  const double logical_points = exp.config.data.logical_per_machine;
  const double logical_vertices_per_machine =
      super ? exp.supers_per_machine : logical_points;
  long long actual_vertices =
      super ? std::min<long long>(n_act * machines,
                                  static_cast<long long>(
                                      exp.supers_per_machine * machines))
            : n_act * machines;
  double vertex_scale =
      logical_vertices_per_machine * machines / actual_vertices;
  double points_per_vertex_logical =
      logical_points * machines /
      (logical_vertices_per_machine * machines);
  // Per logical vertex: its points, memberships, and (super) the exported
  // per-cluster aggregate tuples.
  double data_state_bytes =
      points_per_vertex_logical * (d + 1.0) * 8.0 + 64;
  double data_export_bytes =
      super ? exp.k * (d * d + d + 2.0) * 8.0 + 64
            : (d * d + d + 1.0) * 8.0 + 64;

  std::vector<std::size_t> data_slots;
  for (long long v = 0; v < actual_vertices; ++v) {
    VData vd;
    vd.kind = VData::Kind::kData;
    data_slots.push_back(graph.AddVertex(
        static_cast<gas::VertexId>(exp.k + 1 + v), std::move(vd),
        vertex_scale, data_state_bytes, data_export_bytes));
  }
  // Distribute the actual points over the actual data vertices.
  long long total_points = n_act * machines;
  for (long long j = 0; j < total_points; ++j) {
    int p = static_cast<int>(j / n_act);
    auto& vd = graph.vertex(data_slots[j % data_slots.size()]).data;
    Vector x = gen.Point(p, j % n_act);
    if (exp.imputation) {
      auto cp = CensorPoint(exp.config.seed, p, j % n_act, x);
      vd.masks.push_back(cp.missing);
      x = cp.x;
    }
    vd.points.push_back(std::move(x));
    vd.members.push_back(0);
  }
  for (std::size_t slot : data_slots) {
    auto& vd = graph.vertex(slot).data;
    vd.stats.assign(exp.k, GmmSuffStats(exp.dim));
    for (std::size_t c : cluster_slots) graph.AddEdge(slot, c);
    graph.AddEdge(slot, mix_slot);
  }

  // ---- Initialization -------------------------------------------------------
  gas::GasEngine<VData> engine(&sim, &graph);
  engine.SetSnapshotInterval(exp.config.faults.snapshot_interval);
  Status boot = engine.Boot();
  if (!boot.ok()) return RunResult::Fail(boot);

  // Hyperparameters via map_reduce_vertices; prior draw via
  // transform_vertices on the model vertices.
  std::vector<Vector> all_points;
  engine.MapReduceVertices<int>(
      [&all_points](const gas::Graph<VData>::Vertex& v) {
        if (v.data.kind == VData::Kind::kData) {
          for (const auto& x : v.data.points) all_points.push_back(x);
        }
        return 0;
      },
      [](int a, int b) { return a + b; }, 0,
      /*flops_per_vertex=*/4.0 * d * points_per_vertex_logical,
      "hyper moments");
  GmmHyper hyper = models::EmpiricalHyper(exp.k, all_points);
  all_points.clear();
  all_points.shrink_to_fit();

  stats::Rng init_rng(exp.config.seed ^ 0x6A5);
  auto prior = models::SamplePrior(init_rng, hyper);
  if (!prior.ok()) return RunResult::Fail(prior.status());
  engine.TransformVertices(
      [&](gas::Graph<VData>::Vertex& v) {
        if (v.data.kind == VData::Kind::kCluster) {
          v.data.mu = prior->mu[v.data.cluster_id];
          v.data.sigma = prior->sigma[v.data.cluster_id];
        } else if (v.data.kind == VData::Kind::kMixture) {
          v.data.pi = prior->pi;
        }
      },
      0, "init model");

  RunResult result;
  result.init_seconds = sim.elapsed_seconds();
  sim.ResetClock();

  // ---- Iterations: one gather-apply-scatter sweep each ---------------------
  double flops_per_point = PaperMembershipCppFlops(exp.k, exp.dim) +
                           models::SuffStatFlops(exp.dim);
  if (exp.imputation) {
    flops_per_point += PaperImputeFlops(exp.dim) +
                       CppCallEquivalentFlops(PaperImputeCalls());
  }
  for (int iter = 0; iter < exp.config.iterations; ++iter) {
    if (Status hs = exp.config.IterationBoundary(iter); !hs.ok()) {
      return RunResult::Fail(std::move(hs), result.init_seconds);
    }
    double t0 = sim.elapsed_seconds();
    GmmProgram program(hyper, exp.config.seed, iter,
                       flops_per_point * points_per_vertex_logical);
    program.set_count_scale(logical_points * machines /
                            static_cast<double>(total_points));
    Status st = engine.RunSweep<Gathered>(program, "gmm iteration");
    if (!st.ok()) return RunResult::Fail(st, result.init_seconds);
    result.iteration_seconds.push_back(sim.elapsed_seconds() - t0);
  }

  if (final_model != nullptr) {
    GmmParams params;
    params.pi = graph.vertex(mix_slot).data.pi;
    params.mu.assign(exp.k, Vector(exp.dim));
    params.sigma.assign(exp.k, Matrix(exp.dim, exp.dim));
    for (std::size_t c : cluster_slots) {
      const auto& vd = graph.vertex(c).data;
      params.mu[vd.cluster_id] = vd.mu;
      params.sigma[vd.cluster_id] = vd.sigma;
    }
    *final_model = params;
  }
  result.peak_machine_bytes = sim.peak_bytes();
  result.CaptureFaultStats(sim);
  result.status = Status::OK();
  return result;
}

}  // namespace mlbench::core
