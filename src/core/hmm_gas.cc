#include "core/hmm_gas.h"

#include <memory>
#include <utility>
#include <vector>

#include "core/workloads.h"
#include "gas/engine.h"

namespace mlbench::core {

namespace {

using models::HmmCounts;
using models::HmmDocument;
using models::HmmParams;
using models::Vector;

struct VData {
  enum class Kind { kData, kState } kind = Kind::kData;
  // Data super vertex.
  std::vector<HmmDocument> docs;
  std::shared_ptr<HmmCounts> partial;  ///< exported f/g/h partials
  // State vertex s.
  std::size_t s = 0;
  Vector psi;
  Vector delta;
  double delta0 = 0;
};

struct Gathered {
  std::shared_ptr<HmmParams> model;   // data vertices gather the model
  std::shared_ptr<HmmCounts> counts;  // state vertices gather the counts
};

class HmmProgram : public gas::GasProgram<VData, Gathered> {
 public:
  HmmProgram(const models::HmmHyper& hyper, std::uint64_t seed,
             int iteration, double flops_per_word, double words_per_super)
      : hyper_(hyper), seed_(seed), iteration_(iteration),
        flops_per_word_(flops_per_word), words_per_super_(words_per_super) {}

  Gathered Gather(const gas::Graph<VData>::Vertex& center,
                  const gas::Graph<VData>::Vertex& nbr) override {
    Gathered g;
    if (center.data.kind == VData::Kind::kData &&
        nbr.data.kind == VData::Kind::kState) {
      g.model = std::make_shared<HmmParams>();
      g.model->delta0 = Vector(hyper_.states);
      g.model->delta.assign(hyper_.states, Vector(hyper_.states));
      g.model->psi.assign(hyper_.states, Vector(hyper_.vocab));
      g.model->psi[nbr.data.s] = nbr.data.psi;
      g.model->delta[nbr.data.s] = nbr.data.delta;
      g.model->delta0[nbr.data.s] = nbr.data.delta0;
    } else if (center.data.kind == VData::Kind::kState &&
               nbr.data.kind == VData::Kind::kData && nbr.data.partial) {
      g.counts = std::make_shared<HmmCounts>(hyper_.states, hyper_.vocab);
      g.counts->Merge(*nbr.data.partial);
    }
    return g;
  }

  // Batched gather over one CSR span. A data vertex's per-edge gathers
  // each allocate a full K x V HmmParams only for the fold to copy single
  // rows out of them; the batch builds one model per chunk directly, in
  // edge order and under the same row-copy rule as Merge. A state
  // vertex's gathers are additive counts and must stay per-edge, but the
  // engine fold only mutates the accumulator it moves out of the span's
  // first element and reads the rest const — so later elements share the
  // neighbor's exported partial instead of copying K x V counts per edge.
  void GatherBatch(const gas::Graph<VData>::Vertex& center,
                   const gas::Graph<VData>& graph,
                   const std::size_t* neighbors, std::size_t count,
                   Gathered* out) override {
    if (center.data.kind == VData::Kind::kData) {
      std::shared_ptr<HmmParams> model;
      for (std::size_t j = 0; j < count; ++j) {
        const auto& nbr = graph.vertex(neighbors[j]);
        if (nbr.data.kind != VData::Kind::kState) continue;
        if (!model) {
          // First state neighbor: taken wholesale, like the fold keeping
          // the first gathered model.
          model = std::make_shared<HmmParams>();
          model->delta0 = Vector(hyper_.states);
          model->delta.assign(hyper_.states, Vector(hyper_.states));
          model->psi.assign(hyper_.states, Vector(hyper_.vocab));
          model->psi[nbr.data.s] = nbr.data.psi;
          model->delta[nbr.data.s] = nbr.data.delta;
          model->delta0[nbr.data.s] = nbr.data.delta0;
        } else if (!nbr.data.psi.empty() && nbr.data.psi.Sum() != 0) {
          // Same row-copy rule the Merge fold applies.
          model->psi[nbr.data.s] = nbr.data.psi;
          model->delta[nbr.data.s] = nbr.data.delta;
          model->delta0[nbr.data.s] = nbr.data.delta0;
        }
      }
      out[0].model = std::move(model);
    } else {
      bool first = true;
      for (std::size_t j = 0; j < count; ++j) {
        const auto& nbr = graph.vertex(neighbors[j]);
        if (nbr.data.kind != VData::Kind::kData || !nbr.data.partial) {
          continue;
        }
        if (first) {
          // The span's first counts element seeds the fold accumulator,
          // which later merges mutate: it must be a fresh copy.
          // Zero-init + Merge reproduces the scalar gather bit-for-bit
          // (0 + x is x for these non-negative counts).
          out[j].counts =
              std::make_shared<HmmCounts>(hyper_.states, hyper_.vocab);
          out[j].counts->Merge(*nbr.data.partial);
          first = false;
        } else {
          out[j].counts = nbr.data.partial;
        }
      }
    }
  }

  Gathered Merge(Gathered a, const Gathered& b) override {
    if (b.model) {
      if (!a.model) {
        a.model = b.model;
      } else {
        for (std::size_t s = 0; s < hyper_.states; ++s) {
          if (!b.model->psi[s].empty() && b.model->psi[s].Sum() != 0) {
            a.model->psi[s] = b.model->psi[s];
            a.model->delta[s] = b.model->delta[s];
            a.model->delta0[s] = b.model->delta0[s];
          }
        }
      }
    }
    if (b.counts) {
      if (!a.counts) {
        a.counts = b.counts;
      } else {
        a.counts->Merge(*b.counts);
      }
    }
    return a;
  }

  void Apply(gas::Graph<VData>::Vertex& v, const Gathered& g) override {
    stats::Rng rng = stats::Rng(seed_ ^ (0x4A50u + iteration_))
                         .Split(static_cast<std::uint64_t>(v.id) + 1);
    if (v.data.kind == VData::Kind::kData && g.model) {
      v.data.partial =
          std::make_shared<HmmCounts>(hyper_.states, hyper_.vocab);
      std::size_t expected = 0;
      for (const auto& doc : v.data.docs) expected += doc.words.size();
      models::HmmSampler sampler;
      sampler.Prepare(*g.model, expected);
      for (auto& doc : v.data.docs) {
        sampler.Resample(rng, iteration_, &doc);
        models::AccumulateHmmCounts(doc, v.data.partial.get());
      }
    } else if (v.data.kind == VData::Kind::kState && g.counts) {
      // Sample this state's Psi_s / delta_s rows (counts are actual-scale;
      // the chain statistics are consistent across platforms).
      Vector f_conc = g.counts->f[v.data.s];
      for (auto& c : f_conc) c += hyper_.beta;
      v.data.psi = stats::SampleDirichlet(rng, f_conc);
      Vector h_conc = g.counts->h[v.data.s];
      for (auto& c : h_conc) c += hyper_.alpha;
      v.data.delta = stats::SampleDirichlet(rng, h_conc);
      v.data.delta0 = (g.counts->g[v.data.s] + hyper_.alpha);
    }
  }

  double GatherFlopsPerEdge() const override {
    // Per data-state edge share of the super's word-resampling work (each
    // undirected edge is visited from both sides).
    return flops_per_word_ * words_per_super_ /
           (2.0 * static_cast<double>(hyper_.states));
  }

 private:
  models::HmmHyper hyper_;
  std::uint64_t seed_;
  int iteration_;
  double flops_per_word_;
  double words_per_super_;
};

}  // namespace

RunResult RunHmmGas(const HmmExperiment& exp,
                    models::HmmParams* final_model) {
  sim::ClusterSim sim(exp.config.cluster());
  exp.config.ApplyNoise(&sim);
  exp.config.ApplyFaults(&sim);
  CorpusGen gen(exp.config.seed, exp.vocab, exp.mean_doc_len);
  models::HmmHyper hyper{exp.states, exp.vocab, 1.0, 0.1};
  const int machines = exp.config.machines;
  const long long docs_act = exp.config.data.actual_per_machine;
  const double k = static_cast<double>(exp.states);
  const double v = static_cast<double>(exp.vocab);
  const double words_per_doc = static_cast<double>(exp.mean_doc_len);

  gas::Graph<VData> graph;
  std::vector<std::size_t> state_slots;
  for (std::size_t s = 0; s < exp.states; ++s) {
    VData vd;
    vd.kind = VData::Kind::kState;
    vd.s = s;
    state_slots.push_back(graph.AddVertex(
        static_cast<gas::VertexId>(s), std::move(vd), 1.0,
        (v + k + 1.0) * 8.0 + 64, (v + k + 1.0) * 8.0 + 64));
  }
  long long supers_act = std::min<long long>(
      docs_act * machines,
      static_cast<long long>(exp.supers_per_machine * machines));
  double super_scale =
      exp.supers_per_machine * machines / static_cast<double>(supers_act);
  double docs_per_super =
      exp.config.data.logical_per_machine / exp.supers_per_machine;
  double words_per_super = docs_per_super * words_per_doc;
  // Exported partial counts: the paper measures ~10 MB per super vertex
  // (f counts dominate: up to K x V entries as <word, state, count>
  // triples of ~48 bytes each in GraphLab's serialized view form).
  double export_bytes = std::min(words_per_super, k * v) * 48.0 + k * k * 8.0;

  std::vector<std::size_t> data_slots;
  stats::Rng init_rng(exp.config.seed ^ 0x4A36);
  for (long long s = 0; s < supers_act; ++s) {
    VData vd;
    vd.kind = VData::Kind::kData;
    data_slots.push_back(graph.AddVertex(
        static_cast<gas::VertexId>(exp.states + s), std::move(vd),
        super_scale, words_per_super * 5.0 + 96.0, export_bytes));
  }
  for (long long j = 0; j < docs_act * machines; ++j) {
    int m = static_cast<int>(j / docs_act);
    HmmDocument doc;
    doc.words = gen.Document(m, j % docs_act);
    models::InitHmmStates(init_rng, exp.states, &doc);
    graph.vertex(data_slots[j % data_slots.size()])
        .data.docs.push_back(std::move(doc));
  }
  for (std::size_t d : data_slots) {
    for (std::size_t s : state_slots) graph.AddEdge(d, s);
  }

  gas::GasEngine<VData> engine(&sim, &graph);
  engine.SetSnapshotInterval(exp.config.faults.snapshot_interval);
  Status boot = engine.Boot();
  if (!boot.ok()) return RunResult::Fail(boot);

  HmmParams params = models::SampleHmmPrior(init_rng, hyper);
  engine.TransformVertices(
      [&](gas::Graph<VData>::Vertex& vx) {
        if (vx.data.kind == VData::Kind::kState) {
          vx.data.psi = params.psi[vx.data.s];
          vx.data.delta = params.delta[vx.data.s];
          vx.data.delta0 = params.delta0[vx.data.s];
        }
      },
      0, "init model");

  RunResult result;
  result.init_seconds = sim.elapsed_seconds();
  sim.ResetClock();

  WordCost wc =
      HmmWordCost(sim::Language::kCpp, exp.granularity, exp.states);
  // Natural per-word gsl discrete sampling (~3 calls/word; calibrated to
  // the paper's 20:39 cell).
  double word_flops = wc.flops + CppCallEquivalentFlops(3.0);

  for (int iter = 0; iter < exp.config.iterations; ++iter) {
    if (Status hs = exp.config.IterationBoundary(iter); !hs.ok()) {
      return RunResult::Fail(std::move(hs), result.init_seconds);
    }
    double t0 = sim.elapsed_seconds();
    HmmProgram program(hyper, exp.config.seed, iter, word_flops,
                       words_per_super);
    Status st = engine.RunSweep<Gathered>(program, "hmm iteration");
    if (!st.ok()) return RunResult::Fail(st, result.init_seconds);
    result.iteration_seconds.push_back(sim.elapsed_seconds() - t0);
  }

  if (final_model != nullptr) {
    HmmParams out = params;
    for (std::size_t s : state_slots) {
      const auto& vd = graph.vertex(s).data;
      out.psi[vd.s] = vd.psi;
      out.delta[vd.s] = vd.delta;
      out.delta0[vd.s] = vd.delta0;
    }
    double total = out.delta0.Sum();
    if (total > 0) out.delta0 /= total;
    *final_model = out;
  }
  result.CaptureFaultStats(sim);
  result.status = Status::OK();
  return result;
}

}  // namespace mlbench::core
