#include "core/hmm_bsp.h"

#include <memory>
#include <utility>
#include <vector>

#include "bsp/engine.h"
#include "core/workloads.h"

namespace mlbench::core {

namespace {

using models::HmmCounts;
using models::HmmDocument;
using models::HmmParams;
using models::Vector;

struct HmmMsg {
  /// Model rows flowing to data vertices (appended by the combiner) or
  /// count partials flowing to state vertices (merged by the combiner).
  std::shared_ptr<HmmParams> model;
  std::shared_ptr<HmmCounts> counts;
};

struct VData {
  enum class Kind { kData, kState } kind = Kind::kData;
  std::vector<HmmDocument> docs;
  std::size_t s = 0;
  Vector psi;
  Vector delta;
  double g_count = 0;
};

using Engine = bsp::BspEngine<VData, HmmMsg>;

}  // namespace

RunResult RunHmmBsp(const HmmExperiment& exp,
                    models::HmmParams* final_model) {
  sim::ClusterSim sim(exp.config.cluster());
  exp.config.ApplyNoise(&sim);
  exp.config.ApplyFaults(&sim);
  Engine engine(&sim);
  engine.SetCheckpointInterval(exp.config.faults.checkpoint_interval);
  CorpusGen gen(exp.config.seed, exp.vocab, exp.mean_doc_len);
  models::HmmHyper hyper{exp.states, exp.vocab, 1.0, 0.1};
  const int machines = exp.config.machines;
  const long long docs_act = exp.config.data.actual_per_machine;
  const double k = static_cast<double>(exp.states);
  const double v = static_cast<double>(exp.vocab);
  const double words_per_doc = static_cast<double>(exp.mean_doc_len);
  const double model_bytes = (k * v + k * k + k) * 8.0 + 128.0;

  // State vertices 0..K-1, data vertices after.
  for (std::size_t s = 0; s < exp.states; ++s) {
    VData vd;
    vd.kind = VData::Kind::kState;
    vd.s = s;
    engine.AddVertex(static_cast<bsp::VertexId>(s), std::move(vd), 1.0,
                     (v + k + 1.0) * 8.0 + 64);
  }

  const bool word_based = exp.granularity == TextGranularity::kWord;
  const bool super = exp.granularity == TextGranularity::kSuperVertex;
  double logical_vertices_per_machine;
  double state_bytes;
  double words_per_vertex;
  if (word_based) {
    logical_vertices_per_machine = exp.logical_words_per_machine();
    // One Java object per word vertex: ids, word, state, two edges.
    state_bytes = 96.0;
    words_per_vertex = 1.0;
  } else if (super) {
    logical_vertices_per_machine = exp.supers_per_machine;
    words_per_vertex = exp.logical_words_per_machine() /
                       exp.supers_per_machine;
    state_bytes = words_per_vertex * 5.0 + 96.0;
  } else {
    logical_vertices_per_machine = exp.config.data.logical_per_machine;
    words_per_vertex = words_per_doc;
    state_bytes = words_per_doc * 5.0 + 72.0;
  }
  long long actual_vertices = std::min<long long>(
      docs_act * machines,
      super ? static_cast<long long>(exp.supers_per_machine * machines)
            : docs_act * machines);
  double vertex_scale =
      logical_vertices_per_machine * machines / actual_vertices;

  std::vector<std::size_t> data_slots;
  for (long long s = 0; s < actual_vertices; ++s) {
    VData vd;
    vd.kind = VData::Kind::kData;
    data_slots.push_back(
        engine.AddVertex(static_cast<bsp::VertexId>(exp.states + s),
                         std::move(vd), vertex_scale, state_bytes));
  }
  stats::Rng init_rng(exp.config.seed ^ 0x4A37);
  for (long long j = 0; j < docs_act * machines; ++j) {
    int m = static_cast<int>(j / docs_act);
    HmmDocument doc;
    doc.words = gen.Document(m, j % docs_act);
    models::InitHmmStates(init_rng, exp.states, &doc);
    engine.vertex(data_slots[j % data_slots.size()])
        .data.docs.push_back(std::move(doc));
  }

  engine.SetCombiner([](const HmmMsg& a, const HmmMsg& b) {
    HmmMsg m = a;
    if (b.model) m.model = b.model;  // identical broadcast content
    if (b.counts) {
      if (!m.counts) {
        m.counts = b.counts;
      } else {
        auto merged = std::make_shared<HmmCounts>(*m.counts);
        merged->Merge(*b.counts);
        m.counts = merged;
      }
    }
    return m;
  });
  engine.SetMessageSize([&](const HmmMsg& m) {
    if (m.model) return model_bytes;
    if (m.counts) return std::min(words_per_vertex, k * v) * 24.0 + 64.0;
    return 24.0;  // word-based neighbor state message
  });

  Status boot = engine.Boot();
  if (!boot.ok()) return RunResult::Fail(boot);

  HmmParams params = models::SampleHmmPrior(init_rng, hyper);
  for (std::size_t s = 0; s < exp.states; ++s) {
    auto& vd = engine.vertex(s).data;
    vd.psi = params.psi[s];
    vd.delta = params.delta[s];
  }

  RunResult result;
  result.init_seconds = sim.elapsed_seconds();
  sim.ResetClock();

  WordCost wc =
      HmmWordCost(sim::Language::kJava, exp.granularity, exp.states);

  for (int iter = 0; iter < exp.config.iterations; ++iter) {
    if (Status hs = exp.config.IterationBoundary(iter); !hs.ok()) {
      return RunResult::Fail(std::move(hs), result.init_seconds);
    }
    double t0 = sim.elapsed_seconds();
    std::uint64_t iter_seed = exp.config.seed ^ (0x4A60u + iter);

    if (word_based) {
      // Each word vertex messages its state to both neighbors and its
      // count pairs to its state vertex: the per-machine vertex store plus
      // these buffers exceed worker RAM.
      bsp::ComputeCost cost;
      cost.flops_per_vertex = wc.flops;
      cost.linalg_calls_per_vertex = wc.calls;
      cost.elements_per_vertex = wc.elements;
      Status st = engine.RunSuperstep(
          [&](Engine::Vertex& vx, const std::vector<HmmMsg>&,
              Engine::Context& ctx) {
            if (vx.data.kind != VData::Kind::kData) return;
            // Neighbor-state messages: two per logical word vertex.
            ctx.SendReplicated(vx.id, HmmMsg{}, 24.0, 2.0 * vx.scale);
          },
          cost, "word states");
      if (!st.ok()) return RunResult::Fail(st, result.init_seconds);
      st = engine.RunSuperstep(
          [](Engine::Vertex&, const std::vector<HmmMsg>&, Engine::Context&) {
          },
          {}, "word states consume");
      if (!st.ok()) return RunResult::Fail(st, result.init_seconds);
      return RunResult::Fail(
          Status::Internal("word-based Giraph HMM unexpectedly survived"),
          result.init_seconds);
    }

    // S0: state vertices re-draw their rows from last superstep's count
    // partials and publish them through worker-level aggregators
    // ("Giraph's combiner and aggregator facilities wherever possible",
    // Section 5.4) -- one model copy per worker, not per vertex.
    Status st = engine.RunSuperstep(
        [&](Engine::Vertex& vx, const std::vector<HmmMsg>& inbox,
            Engine::Context& ctx) {
          if (vx.data.kind != VData::Kind::kState) return;
          HmmCounts total(exp.states, exp.vocab);
          bool have = false;
          for (const auto& m : inbox) {
            if (m.counts) {
              total.Merge(*m.counts);
              have = true;
            }
          }
          if (have) {
            stats::Rng srng =
                stats::Rng(iter_seed ^ 0x51u).Split(vx.data.s + 1);
            Vector f_conc = total.f[vx.data.s];
            for (auto& c : f_conc) c += hyper.beta;
            vx.data.psi = stats::SampleDirichlet(srng, f_conc);
            Vector h_conc = total.h[vx.data.s];
            for (auto& c : h_conc) c += hyper.alpha;
            vx.data.delta = stats::SampleDirichlet(srng, h_conc);
          }
          std::vector<double> row(vx.data.psi.begin(), vx.data.psi.end());
          row.insert(row.end(), vx.data.delta.begin(), vx.data.delta.end());
          ctx.Aggregate("model_" + std::to_string(vx.data.s), row,
                        model_bytes / k);
        },
        {}, "model publish");
    if (!st.ok()) return RunResult::Fail(st, result.init_seconds);

    // S1: data vertices re-sample and send combined count partials.
    bsp::ComputeCost cost;
    cost.flops_per_vertex = wc.flops * words_per_vertex;
    cost.linalg_calls_per_vertex = wc.calls * words_per_vertex;
    cost.elements_per_vertex = wc.elements * words_per_vertex;
    cost.temp_bytes_per_vertex =
        super ? 24.0 * std::min(words_per_vertex, k * v)
              : 48.0 * words_per_doc;
    st = engine.RunSuperstep(
        [&](Engine::Vertex& vx, const std::vector<HmmMsg>& inbox,
            Engine::Context& ctx) {
          (void)inbox;
          if (vx.data.kind != VData::Kind::kData) return;
          HmmParams local = params;
          for (std::size_t s = 0; s < exp.states; ++s) {
            const auto& row =
                ctx.GetAggregate("model_" + std::to_string(s));
            if (row.size() >= exp.vocab + exp.states) {
              local.psi[s] =
                  Vector(std::vector<double>(row.begin(),
                                             row.begin() + exp.vocab));
              local.delta[s] = Vector(std::vector<double>(
                  row.begin() + exp.vocab, row.end()));
            }
          }
          stats::Rng vrng = stats::Rng(iter_seed).Split(
              static_cast<std::uint64_t>(vx.id) + 1);
          auto counts = std::make_shared<HmmCounts>(exp.states, exp.vocab);
          std::size_t expected = 0;
          for (const auto& doc : vx.data.docs) expected += doc.words.size();
          models::HmmSampler sampler;
          sampler.Prepare(local, expected);
          for (auto& doc : vx.data.docs) {
            sampler.Resample(vrng, iter, &doc);
            models::AccumulateHmmCounts(doc, counts.get());
          }
          HmmMsg msg;
          msg.counts = counts;
          // One combined partial reaches each state vertex.
          for (std::size_t s = 0; s < exp.states; ++s) {
            ctx.Send(static_cast<bsp::VertexId>(s), msg,
                     std::min(words_per_vertex, k * v) * 24.0 / k + 64.0);
          }
        },
        cost, "resample + counts");
    if (!st.ok()) return RunResult::Fail(st, result.init_seconds);

    result.iteration_seconds.push_back(sim.elapsed_seconds() - t0);
  }

  // Final fold of the last counts into the returned model.
  if (final_model != nullptr) {
    HmmCounts counts(exp.states, exp.vocab);
    for (std::size_t d : data_slots) {
      for (const auto& doc : engine.vertex(d).data.docs) {
        models::AccumulateHmmCounts(doc, &counts);
      }
    }
    stats::Rng frng(exp.config.seed ^ 0x4A70);
    *final_model = models::SampleHmmPosterior(frng, hyper, counts);
  }
  engine.Shutdown();
  result.CaptureFaultStats(sim);
  result.status = Status::OK();
  return result;
}

}  // namespace mlbench::core
