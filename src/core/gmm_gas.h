#pragma once

#include "core/gmm_experiment.h"
#include "models/gmm.h"

/// \file gmm_gas.h
/// The GraphLab GMM implementation of paper Section 5.3: data vertices,
/// cluster vertices, and a mixture-proportion vertex forming a complete
/// bipartite graph, updated by gather-apply-scatter. The naive code
/// materializes one model view per (logical) data vertex during gather and
/// dies exactly as the paper describes; the super-vertex code (Section 5.6
/// "GraphLab, Giraph and Super Vertex Codes") groups hundreds of thousands
/// of points per vertex and runs fast.

namespace mlbench::core {

RunResult RunGmmGas(const GmmExperiment& exp,
                    models::GmmParams* final_model = nullptr);

}  // namespace mlbench::core
