#pragma once

#include "core/lasso_experiment.h"
#include "models/lasso.h"

/// \file lasso_dataflow.h
/// The Spark Bayesian Lasso of paper Section 6.1: the Gram matrix X^T X
/// and X^T y are computed once by flatMap + reduceByKey over per-point
/// pair contributions (the dominant initialization cost), then each
/// iteration runs one MapReduce job computing sum (y - beta.x)^2 while the
/// rest of the Gibbs loop runs on the driver.

namespace mlbench::core {

RunResult RunLassoDataflow(const LassoExperiment& exp,
                           models::LassoState* final_state = nullptr);

}  // namespace mlbench::core
