#include "core/lda_gas.h"

#include <algorithm>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/workloads.h"
#include "gas/engine.h"

namespace mlbench::core {

namespace {

using models::LdaCounts;
using models::LdaDocument;
using models::LdaParams;
using models::Vector;

/// Sparse per-super count partial: key = topic * vocab + word.
using SparseCounts = std::vector<std::pair<std::uint32_t, float>>;

struct VData {
  enum class Kind { kData, kTopic } kind = Kind::kData;
  std::vector<LdaDocument> docs;
  std::shared_ptr<SparseCounts> partial;
  std::size_t t = 0;
  Vector phi;
};

struct Gathered {
  std::shared_ptr<LdaParams> model;
  Vector row;  // this topic's g(t, .) partial
};

class LdaProgram : public gas::GasProgram<VData, Gathered> {
 public:
  LdaProgram(const models::LdaHyper& hyper, std::uint64_t seed,
             int iteration, double flops_per_word, double words_per_super)
      : hyper_(hyper), seed_(seed), iteration_(iteration),
        flops_per_word_(flops_per_word), words_per_super_(words_per_super) {}

  Gathered Gather(const gas::Graph<VData>::Vertex& center,
                  const gas::Graph<VData>::Vertex& nbr) override {
    Gathered g;
    if (center.data.kind == VData::Kind::kData &&
        nbr.data.kind == VData::Kind::kTopic) {
      g.model = std::make_shared<LdaParams>();
      g.model->phi.assign(hyper_.topics, Vector());
      g.model->phi[nbr.data.t] = nbr.data.phi;
    } else if (center.data.kind == VData::Kind::kTopic &&
               nbr.data.kind == VData::Kind::kData && nbr.data.partial) {
      g.row = Vector(hyper_.vocab);
      auto lo = static_cast<std::uint32_t>(center.data.t * hyper_.vocab);
      auto hi = static_cast<std::uint32_t>((center.data.t + 1) * hyper_.vocab);
      for (const auto& [key, count] : *nbr.data.partial) {
        if (key >= lo && key < hi) g.row[key - lo] += count;
      }
    }
    return g;
  }

  // Batched gather over one CSR span. A data vertex's model rows fold by
  // placement, so the chunk collapses into one LdaParams in its first
  // element (edge order and the fold's non-empty row rule preserved). A
  // topic vertex's row partials are additive and stay per-edge so the
  // global fold keeps its FP association.
  void GatherBatch(const gas::Graph<VData>::Vertex& center,
                   const gas::Graph<VData>& graph,
                   const std::size_t* neighbors, std::size_t count,
                   Gathered* out) override {
    if (center.data.kind == VData::Kind::kData) {
      std::shared_ptr<LdaParams> model;
      for (std::size_t j = 0; j < count; ++j) {
        const auto& nbr = graph.vertex(neighbors[j]);
        if (nbr.data.kind != VData::Kind::kTopic) continue;
        if (!model) {
          // First topic neighbor: taken wholesale, like the fold keeping
          // the first gathered model.
          model = std::make_shared<LdaParams>();
          model->phi.assign(hyper_.topics, Vector());
          model->phi[nbr.data.t] = nbr.data.phi;
        } else if (!nbr.data.phi.empty()) {
          // Same non-empty row rule the Merge fold applies.
          model->phi[nbr.data.t] = nbr.data.phi;
        }
      }
      out[0].model = std::move(model);
    } else {
      for (std::size_t j = 0; j < count; ++j) {
        const auto& nbr = graph.vertex(neighbors[j]);
        if (nbr.data.kind != VData::Kind::kData || !nbr.data.partial) {
          continue;
        }
        out[j].row = Vector(hyper_.vocab);
        auto lo = static_cast<std::uint32_t>(center.data.t * hyper_.vocab);
        auto hi =
            static_cast<std::uint32_t>((center.data.t + 1) * hyper_.vocab);
        for (const auto& [key, count_f] : *nbr.data.partial) {
          if (key >= lo && key < hi) out[j].row[key - lo] += count_f;
        }
      }
    }
  }

  Gathered Merge(Gathered a, const Gathered& b) override {
    if (b.model) {
      if (!a.model) {
        a.model = b.model;
      } else {
        for (std::size_t t = 0; t < hyper_.topics; ++t) {
          if (!b.model->phi[t].empty()) a.model->phi[t] = b.model->phi[t];
        }
      }
    }
    if (!b.row.empty()) {
      if (a.row.empty()) {
        a.row = b.row;
      } else {
        a.row += b.row;
      }
    }
    return a;
  }

  void Apply(gas::Graph<VData>::Vertex& v, const Gathered& g) override {
    stats::Rng rng = stats::Rng(seed_ ^ (0x7DC0u + iteration_))
                         .Split(static_cast<std::uint64_t>(v.id) + 1);
    if (v.data.kind == VData::Kind::kData && g.model) {
      LdaParams local = *g.model;
      for (auto& row : local.phi) {
        if (row.empty()) row = Vector(hyper_.vocab, 1.0 / hyper_.vocab);
      }
      std::unordered_map<std::uint32_t, float> sparse;
      std::size_t expected = 0;
      for (const auto& doc : v.data.docs) expected += doc.words.size();
      models::LdaDocSampler sampler;
      sampler.Prepare(hyper_, local, expected);
      for (auto& doc : v.data.docs) {
        sampler.Resample(rng, &doc, nullptr);
        for (std::size_t pos = 0; pos < doc.words.size(); ++pos) {
          sparse[static_cast<std::uint32_t>(doc.topics[pos] * hyper_.vocab +
                                            doc.words[pos])] += 1.0f;
        }
      }
      // mlint: allow(unordered-iter) — bucket order is erased by the key
      // sort below; the map is pure accumulation scratch
      v.data.partial = std::make_shared<SparseCounts>(sparse.begin(),
                                                      sparse.end());
      std::sort(v.data.partial->begin(), v.data.partial->end(),
                [](const auto& a, const auto& b) {
                  return a.first < b.first;
                });
    } else if (v.data.kind == VData::Kind::kTopic && !g.row.empty()) {
      Vector conc = g.row;
      for (auto& c : conc) c += hyper_.beta;
      v.data.phi = stats::SampleDirichlet(rng, conc);
    }
  }

  double GatherFlopsPerEdge() const override {
    return flops_per_word_ * words_per_super_ /
           (2.0 * static_cast<double>(hyper_.topics));
  }

 private:
  models::LdaHyper hyper_;
  std::uint64_t seed_;
  int iteration_;
  double flops_per_word_;
  double words_per_super_;
};

}  // namespace

RunResult RunLdaGas(const LdaExperiment& exp,
                    models::LdaParams* final_model) {
  sim::ClusterSim sim(exp.config.cluster());
  exp.config.ApplyNoise(&sim);
  exp.config.ApplyFaults(&sim);
  CorpusGen gen(exp.config.seed, exp.vocab, exp.mean_doc_len);
  models::LdaHyper hyper{exp.topics, exp.vocab, 0.5, 0.1};
  const int machines = exp.config.machines;
  const long long docs_act = exp.config.data.actual_per_machine;
  const double t = static_cast<double>(exp.topics);
  const double v = static_cast<double>(exp.vocab);
  const double words_per_doc = static_cast<double>(exp.mean_doc_len);

  gas::Graph<VData> graph;
  std::vector<std::size_t> topic_slots;
  for (std::size_t tt = 0; tt < exp.topics; ++tt) {
    VData vd;
    vd.kind = VData::Kind::kTopic;
    vd.t = tt;
    topic_slots.push_back(graph.AddVertex(
        static_cast<gas::VertexId>(tt), std::move(vd), 1.0,
        (v + 1.0) * 8.0 + 64, (v + 1.0) * 8.0 + 64));
  }
  long long supers_act = std::min<long long>(
      docs_act * machines,
      static_cast<long long>(exp.supers_per_machine * machines));
  double super_scale =
      exp.supers_per_machine * machines / static_cast<double>(supers_act);
  double docs_per_super =
      exp.config.data.logical_per_machine / exp.supers_per_machine;
  double words_per_super = docs_per_super * words_per_doc;
  // ~5x the HMM's exported view: up to T x V count entries, plus the
  // per-document theta statistics the topic update needs.
  double export_bytes = std::min(words_per_super, t * v) * 48.0 +
                        docs_per_super * t * 8.0 * 0.1;

  std::vector<std::size_t> data_slots;
  stats::Rng init_rng(exp.config.seed ^ 0x7DA4);
  for (long long s = 0; s < supers_act; ++s) {
    VData vd;
    vd.kind = VData::Kind::kData;
    data_slots.push_back(graph.AddVertex(
        static_cast<gas::VertexId>(exp.topics + s), std::move(vd),
        super_scale, words_per_super * 5.0 + docs_per_super * t * 8.0 + 96,
        export_bytes));
  }
  for (long long j = 0; j < docs_act * machines; ++j) {
    int m = static_cast<int>(j / docs_act);
    LdaDocument doc;
    doc.words = gen.Document(m, j % docs_act);
    models::InitLdaDocument(init_rng, hyper, &doc);
    graph.vertex(data_slots[j % data_slots.size()])
        .data.docs.push_back(std::move(doc));
  }
  for (std::size_t d : data_slots) {
    for (std::size_t s : topic_slots) graph.AddEdge(d, s);
  }

  gas::GasEngine<VData> engine(&sim, &graph);
  engine.SetSnapshotInterval(exp.config.faults.snapshot_interval);
  Status boot = engine.Boot();
  if (!boot.ok()) return RunResult::Fail(boot);

  LdaParams params = models::SampleLdaPrior(init_rng, hyper);
  engine.TransformVertices(
      [&](gas::Graph<VData>::Vertex& vx) {
        if (vx.data.kind == VData::Kind::kTopic) {
          vx.data.phi = params.phi[vx.data.t];
        }
      },
      0, "init model");

  RunResult result;
  result.init_seconds = sim.elapsed_seconds();
  sim.ResetClock();

  WordCost wc = LdaWordCost(sim::Language::kCpp, exp.granularity,
                            exp.topics);
  // The "small and elegant" GraphLab code rebuilds a gsl_ran_discrete
  // table per word (~6 gsl calls; calibrated to the paper's 39:27 cell).
  double word_flops = wc.flops + CppCallEquivalentFlops(6.0);

  for (int iter = 0; iter < exp.config.iterations; ++iter) {
    if (Status hs = exp.config.IterationBoundary(iter); !hs.ok()) {
      return RunResult::Fail(std::move(hs), result.init_seconds);
    }
    double t0 = sim.elapsed_seconds();
    LdaProgram program(hyper, exp.config.seed, iter, word_flops,
                       words_per_super);
    Status st = engine.RunSweep<Gathered>(program, "lda iteration");
    if (!st.ok()) return RunResult::Fail(st, result.init_seconds);
    result.iteration_seconds.push_back(sim.elapsed_seconds() - t0);
  }

  if (final_model != nullptr) {
    LdaParams out = params;
    for (std::size_t s : topic_slots) {
      const auto& vd = graph.vertex(s).data;
      if (!vd.phi.empty()) out.phi[vd.t] = vd.phi;
    }
    *final_model = out;
  }
  result.CaptureFaultStats(sim);
  result.status = Status::OK();
  return result;
}

}  // namespace mlbench::core
