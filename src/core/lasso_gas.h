#pragma once

#include "core/lasso_experiment.h"
#include "models/lasso.h"

/// \file lasso_gas.h
/// The GraphLab Bayesian Lasso of paper Section 6.3 (super-vertex based,
/// as published): data super vertices hold (X_i, y_i) blocks, model
/// vertices hold 1/tau_j^2, and a center vertex holds (beta, sigma^2).
/// Invariant statistics (Gram matrix, X^T y) come from two
/// map_reduce_vertices passes before the chain starts.

namespace mlbench::core {

RunResult RunLassoGas(const LassoExperiment& exp,
                      models::LassoState* final_state = nullptr);

}  // namespace mlbench::core
