#include "core/lasso_bsp.h"

#include <memory>
#include <utility>
#include <vector>

#include "bsp/engine.h"
#include "core/workloads.h"

namespace mlbench::core {

namespace {

using models::LassoHyper;
using models::LassoState;
using models::LassoSuffStats;
using models::Vector;

struct LassoMsg {
  Vector payload;  // beta broadcast or partial sums
  double scalar = 0;
};

struct VData {
  enum class Kind { kData, kDim, kModel } kind = Kind::kData;
  std::vector<Vector> xs;
  std::vector<double> ys;
  std::size_t j = 0;
  std::shared_ptr<LassoState> state;
};

using Engine = bsp::BspEngine<VData, LassoMsg>;

}  // namespace

RunResult RunLassoBsp(const LassoExperiment& exp,
                      models::LassoState* final_state) {
  sim::ClusterSim sim(exp.config.cluster());
  exp.config.ApplyNoise(&sim);
  exp.config.ApplyFaults(&sim);
  Engine engine(&sim);
  engine.SetCheckpointInterval(exp.config.faults.checkpoint_interval);
  LassoDataGen gen(exp.config.seed, exp.p);
  const double p = static_cast<double>(exp.p);
  const long long n_act = exp.config.data.actual_per_machine;
  const int machines = exp.config.machines;
  const double n_logical = exp.config.data.logical_per_machine * machines;

  // Model vertex 0, dimensional vertices 1..p, data vertices after.
  const bsp::VertexId kModelId = 0;
  auto model_state = std::make_shared<LassoState>();
  {
    VData vd;
    vd.kind = VData::Kind::kModel;
    vd.state = model_state;
    engine.AddVertex(kModelId, std::move(vd), 1.0,
                     (2.0 * p + 2.0) * 8.0 + 64);
  }
  for (std::size_t j = 0; j < exp.p; ++j) {
    VData vd;
    vd.kind = VData::Kind::kDim;
    vd.j = j;
    engine.AddVertex(static_cast<bsp::VertexId>(1 + j), std::move(vd), 1.0,
                     p * 8.0 + 64);  // holds its Gram row
  }
  const bool super = exp.super_vertex;
  const double logical_vertices_per_machine =
      super ? exp.supers_per_machine : exp.config.data.logical_per_machine;
  long long actual_vertices =
      super ? std::min<long long>(
                  n_act * machines,
                  static_cast<long long>(exp.supers_per_machine * machines))
            : n_act * machines;
  double vertex_scale =
      logical_vertices_per_machine * machines / actual_vertices;
  double points_per_vertex =
      exp.config.data.logical_per_machine / logical_vertices_per_machine;
  std::vector<std::size_t> data_slots;
  for (long long v = 0; v < actual_vertices; ++v) {
    VData vd;
    vd.kind = VData::Kind::kData;
    data_slots.push_back(engine.AddVertex(
        static_cast<bsp::VertexId>(1 + exp.p + v), std::move(vd),
        vertex_scale, points_per_vertex * (p + 1.0) * 8.0 + 72));
  }
  LassoSuffStats stats;
  double y_avg = 0;
  {
    long long total_points = n_act * machines;
    std::vector<std::pair<Vector, double>> pts;
    double y_sum = 0;
    for (long long j = 0; j < total_points; ++j) {
      int m = static_cast<int>(j / n_act);
      auto [x, y] = gen.Sample(m, j % n_act);
      y_sum += y;
      auto& vd = engine.vertex(data_slots[j % data_slots.size()]).data;
      vd.xs.push_back(x);
      vd.ys.push_back(y);
      pts.emplace_back(std::move(x), y);
    }
    y_avg = y_sum / static_cast<double>(total_points);
    for (auto& [x, y] : pts) models::AccumulateLasso(x, y - y_avg, &stats);
  }

  engine.SetCombiner([](const LassoMsg& a, const LassoMsg& b) {
    LassoMsg m = a;
    if (!b.payload.empty()) {
      if (m.payload.empty()) {
        m.payload = b.payload;
      } else {
        m.payload += b.payload;
      }
    }
    m.scalar += b.scalar;
    return m;
  });

  Status boot = engine.Boot();
  if (!boot.ok()) return RunResult::Fail(boot);

  // ---- Initialization: Gram matrix collection ------------------------------
  // Naive: every data vertex materializes x x^T (p^2 doubles = 8 MB of
  // short-lived JVM objects) and messages the dimensional vertices. Super:
  // blocks compute partials in place with reused buffers.
  {
    bsp::ComputeCost cost;
    cost.flops_per_vertex =
        models::GramAccumulateFlops(exp.p) * points_per_vertex;
    cost.dim = 1;  // streaming accumulation, not a factorization kernel
    // Naive: a fresh 8 MB x x^T message object per logical point. Super:
    // one reused p x p buffer per block.
    cost.temp_bytes_per_vertex =
        super ? p * p * 8.0 : p * p * 8.0 * points_per_vertex;
    Status st = engine.RunSuperstep(
        [&](Engine::Vertex& v, const std::vector<LassoMsg>&,
            Engine::Context& ctx) {
          if (v.data.kind != VData::Kind::kData) return;
          // Ship the combined Gram partial row-block to the dimensional
          // vertices (one combined message per machine after combining).
          LassoMsg msg;
          msg.scalar = 1;
          ctx.Send(1, std::move(msg), p * 8.0 + 32.0);
        },
        cost, "gram collection");
    if (!st.ok()) return RunResult::Fail(st);
  }

  LassoHyper hyper{exp.p, 1.0};
  stats::Rng rng(exp.config.seed ^ 0x1A53);
  auto init = models::InitLasso(rng, hyper);
  if (!init.ok()) return RunResult::Fail(init.status());
  *model_state = std::move(*init);

  RunResult result;
  result.init_seconds = sim.elapsed_seconds();
  sim.ResetClock();

  // ---- Iterations: two supersteps each --------------------------------------
  // S0: model vertex broadcasts beta to data vertices.
  // S1: data vertices send combined residual partials; the model vertex
  //     consumes them next S0 and re-draws (tau, beta, sigma^2).
  // The chain runs at actual-sample scale, matching the Gram statistics.
  double sse_scale = 1.0;
  (void)n_logical;
  for (int iter = 0; iter < exp.config.iterations; ++iter) {
    if (Status hs = exp.config.IterationBoundary(iter); !hs.ok()) {
      return RunResult::Fail(std::move(hs), result.init_seconds);
    }
    double t0 = sim.elapsed_seconds();
    std::uint64_t iter_seed = exp.config.seed ^ (0x1A54u + iter);

    bsp::ComputeCost model_cost;
    model_cost.flops_per_vertex = 0;  // charged on the model vertex below
    Status st = engine.RunSuperstep(
        [&](Engine::Vertex& v, const std::vector<LassoMsg>& inbox,
            Engine::Context& ctx) {
          if (v.data.kind != VData::Kind::kModel) return;
          auto& stt = *v.data.state;
          double sse = 0;
          for (const auto& m : inbox) sse += m.scalar;
          sse *= sse_scale;
          stats::Rng mrng(iter_seed);
          if (iter > 0 || sse > 0) {
            stt.sigma2 = models::SampleSigma2(mrng, hyper, stats, stt.beta,
                                              stt.inv_tau2, sse);
          }
          for (std::size_t j = 0; j < exp.p; ++j) {
            stt.inv_tau2[j] = models::SampleInvTau2(mrng, hyper, stt.sigma2,
                                                    stt.beta[j]);
          }
          auto beta = models::SampleBeta(mrng, stats, stt.inv_tau2,
                                         stt.sigma2);
          if (beta.ok()) stt.beta = *beta;
          LassoMsg msg;
          msg.payload = stt.beta;
          for (std::size_t s = 0; s < data_slots.size(); ++s) {
            const auto& dst = engine.vertex(data_slots[s]);
            ctx.SendReplicated(dst.id, msg, p * 8.0 + 32.0, dst.scale);
          }
        },
        model_cost, "model update + broadcast");
    if (!st.ok()) return RunResult::Fail(st, result.init_seconds);
    // The model vertex's tau draws + p^3 solve run single-threaded on its
    // machine at Java speed.
    sim.BeginPhase("bsp:lasso model linalg");
    sim.ChargeCpu(0, sim::JavaModel().LinalgSeconds(
                         models::BetaUpdateFlops(exp.p), p + 6.0, exp.p,
                         2.0 * p));
    sim.EndPhase();

    bsp::ComputeCost resid_cost;
    resid_cost.flops_per_vertex = 2.0 * p * points_per_vertex;
    resid_cost.linalg_calls_per_vertex = points_per_vertex;
    resid_cost.dim = exp.p;
    st = engine.RunSuperstep(
        [&](Engine::Vertex& v, const std::vector<LassoMsg>& inbox,
            Engine::Context& ctx) {
          if (v.data.kind != VData::Kind::kData) return;
          Vector beta;
          for (const auto& m : inbox) {
            if (!m.payload.empty()) beta = m.payload;
          }
          if (beta.empty()) beta = Vector(exp.p);
          double sse = 0;
          for (std::size_t r = 0; r < v.data.xs.size(); ++r) {
            double resid =
                (v.data.ys[r] - y_avg) - linalg::Dot(beta, v.data.xs[r]);
            sse += resid * resid;
          }
          LassoMsg msg;
          msg.scalar = sse;
          ctx.Send(kModelId, std::move(msg), 16.0);
        },
        resid_cost, "residual partials");
    if (!st.ok()) return RunResult::Fail(st, result.init_seconds);

    result.iteration_seconds.push_back(sim.elapsed_seconds() - t0);
  }

  if (final_state != nullptr) *final_state = *model_state;
  result.CaptureFaultStats(sim);
  result.status = Status::OK();
  return result;
}

}  // namespace mlbench::core
