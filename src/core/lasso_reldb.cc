#include "core/lasso_reldb.h"

#include <memory>
#include <utility>
#include <vector>

#include "core/workloads.h"
#include "reldb/database.h"
#include "reldb/rel.h"
#include "reldb/vg_library.h"

namespace mlbench::core {

namespace {

using models::LassoHyper;
using models::LassoState;
using models::LassoSuffStats;
using models::Vector;
using reldb::AggOp;
using reldb::AsDouble;
using reldb::AsInt;
using reldb::Database;
using reldb::Rel;
using reldb::Schema;
using reldb::Table;
using reldb::Tuple;

/// VG drawing the full beta vector from the Gram rows + tau rows bound at
/// construction (SimSQL assembles A = X^T X + D_tau^-1 with set-oriented
/// aggregates and hands it to the VG).
class BetaVg : public reldb::VgFunction {
 public:
  BetaVg(const LassoSuffStats* stats, const Vector* inv_tau2, double sigma2,
         std::uint64_t seed)
      : stats_(stats), inv_tau2_(inv_tau2), sigma2_(sigma2), seed_(seed) {}
  std::string name() const override { return "lasso_beta"; }
  Schema output_schema() const override { return {"rigid", "beta"}; }
  void Sample(const std::vector<Tuple>& params, const Schema&,
              stats::Rng&, std::vector<Tuple>* out) override {
    (void)params;
    stats::Rng rng(seed_);
    auto beta = models::SampleBeta(rng, *stats_, *inv_tau2_, sigma2_);
    MLBENCH_CHECK_MSG(beta.ok(), beta.status().ToString().c_str());
    for (std::size_t j = 0; j < beta->size(); ++j) {
      out->push_back(Tuple{static_cast<std::int64_t>(j), (*beta)[j]});
    }
  }
  std::size_t OutRowsHint(std::size_t) const override {
    return inv_tau2_->size();
  }
  void SampleBatch(const reldb::ColumnBatch& params,
                   const std::vector<std::uint32_t>& group_offsets,
                   stats::Rng&, reldb::VgBatchOut* out) override {
    (void)params;
    std::vector<std::int64_t> rigid;
    std::vector<double> beta_col;
    // Like the tuple path, each invocation group re-seeds its own RNG and
    // ignores both the parameter rows and the shared stream.
    for (std::size_t g = 0; g + 1 < group_offsets.size(); ++g) {
      stats::Rng rng(seed_);
      auto beta = models::SampleBeta(rng, *stats_, *inv_tau2_, sigma2_);
      MLBENCH_CHECK_MSG(beta.ok(), beta.status().ToString().c_str());
      for (std::size_t j = 0; j < beta->size(); ++j) {
        rigid.push_back(static_cast<std::int64_t>(j));
        beta_col.push_back((*beta)[j]);
      }
    }
    out->columnar = true;
    out->cols.push_back(
        reldb::ColumnBatch::Column::Ints(std::move(rigid)));
    out->cols.push_back(
        reldb::ColumnBatch::Column::Doubles(std::move(beta_col)));
  }

 private:
  const LassoSuffStats* stats_;
  const Vector* inv_tau2_;
  double sigma2_;
  std::uint64_t seed_;
};

}  // namespace

RunResult RunLassoRelDb(const LassoExperiment& exp,
                        models::LassoState* final_state) {
  sim::ClusterSim sim(exp.config.cluster());
  exp.config.ApplyNoise(&sim);
  exp.config.ApplyFaults(&sim);
  Database db(&sim, sim::RelDbCosts{}, exp.config.seed);
  LassoDataGen gen(exp.config.seed, exp.p);

  const double p = static_cast<double>(exp.p);
  const double scale = exp.config.data.scale();
  const long long n_act = exp.config.data.actual_per_machine;
  const int machines = exp.config.machines;
  const double n_logical =
      exp.config.data.logical_per_machine * machines;

  // ---- Load data ------------------------------------------------------------
  // data(data_id, dim_id, data_val) is the stored, tuple-shredded form;
  // we keep the dense points on the side for the native VG computations.
  std::vector<std::pair<Vector, double>> points;
  for (int m = 0; m < machines; ++m) {
    for (long long j = 0; j < n_act; ++j) points.push_back(gen.Sample(m, j));
  }
  {
    Table data(Schema{"data_id", "dim_id", "data_val"}, scale);
    // Stored row count is n x p; keep the actual table to one row per
    // point per 16 dims to bound host memory, scaling the remainder.
    const std::size_t dim_stride = exp.p >= 64 ? 16 : 1;
    data.set_scale(scale * static_cast<double>(dim_stride));
    data.Reserve(points.size() * ((exp.p + dim_stride - 1) / dim_stride));
    for (std::size_t j = 0; j < points.size(); ++j) {
      for (std::size_t dd = 0; dd < exp.p; dd += dim_stride) {
        data.Append(Tuple{static_cast<std::int64_t>(j),
                          static_cast<std::int64_t>(dd),
                          points[j].first[dd]});
      }
    }
    db.BeginQuery("load data");
    Rel::FromTable(db, std::move(data)).Materialize("data");
    db.EndQuery();
  }

  // ---- Materialized views (the paper's slow initialization) ---------------
  // Gram matrix: one group per (d1, d2) entry -- n x p^2 logical tuples
  // through the aggregate. The native accumulation below computes the
  // actual values; the simulated charge covers the logical plan.
  LassoSuffStats stats;
  double y_sum = 0;
  for (const auto& [x, y] : points) y_sum += y;
  double y_avg = y_sum / static_cast<double>(points.size());
  for (const auto& [x, y] : points) {
    models::AccumulateLasso(x, y - y_avg, &stats);
  }
  db.BeginQuery("gram matrix view");
  {
    double gram_tuples = n_logical * p * p;
    db.ChargeExtraJob();
    sim.ChargeParallelCpu(gram_tuples * db.costs().group_by_tuple_s);
    // Map-side combined output: p^2 entries per machine shuffle + final
    // p^2-row view written back.
    double out_bytes = p * p * db.TupleBytes(3);
    for (int m = 0; m < machines; ++m) {
      sim.ChargeNetwork(m, out_bytes);
    }
    sim.ChargeCpuAllMachines(out_bytes * 2.0 / machines *
                             db.costs().materialize_byte_s);
  }
  db.EndQuery();
  db.BeginQuery("centered response + moment views");
  Rel::Scan(db, "data")
      .GroupBy({"dim_id"}, {{AggOp::kSum, "data_val", "xty"}}, 1.0)
      .Materialize("xty_view");
  db.EndQuery();

  LassoHyper hyper{exp.p, 1.0};
  stats::Rng rng(exp.config.seed ^ 0x1A51);
  auto state = models::InitLasso(rng, hyper);
  if (!state.ok()) return RunResult::Fail(state.status());

  // prior / sigma / beta tables.
  db.Put("prior", [] {
    Table t(Schema{"lambda"}, 1.0);
    t.Append(Tuple{1.0});
    return t;
  }());

  RunResult result;
  result.init_seconds = sim.elapsed_seconds();
  sim.ResetClock();

  // ---- Iterations -----------------------------------------------------------
  for (int i = 1; i <= exp.config.iterations; ++i) {
    if (Status hs = exp.config.IterationBoundary(i - 1); !hs.ok()) {
      return RunResult::Fail(std::move(hs), result.init_seconds);
    }
    double t0 = sim.elapsed_seconds();

    // tau[i]: one InvGaussian draw per regressor (paper's CREATE TABLE
    // tau[i] with the beta[i-1] |x| sigma[i-1] |x| prior join).
    Table beta_t(Schema{"rigid", "bet"}, 1.0);
    beta_t.Reserve(exp.p);
    for (std::size_t j = 0; j < exp.p; ++j) {
      beta_t.Append(Tuple{static_cast<std::int64_t>(j), state->beta[j]});
    }
    db.Put(Database::Versioned("beta", i - 1), std::move(beta_t));
    db.BeginQuery(Database::Versioned("tau", i));
    reldb::InverseGaussianVg ig_vg("rigid", "mu", "lambda2");
    double sigma2 = state->sigma2;
    auto tau =
        Rel::Scan(db, Database::Versioned("beta", i - 1))
            .HashJoin(Rel::Scan(db, "prior"), {}, {}, 1.0)
            // mu = sqrt(lambda^2 * sigma2 / max(beta^2, 1e-12)); the Max
            // node keeps std::max's operand order for NaN parity.
            .Project(
                Schema{"rigid", "mu", "lambda2"},
                {reldb::ColExpr::Col(0),
                 reldb::ColExpr::Expr(reldb::ScalarExpr::Call(
                     reldb::ScalarExpr::Fn1::kSqrt,
                     reldb::ScalarExpr::Div(
                         reldb::ScalarExpr::Mul(
                             reldb::ScalarExpr::Mul(reldb::ScalarExpr::Col(2),
                                                    reldb::ScalarExpr::Col(2)),
                             reldb::ScalarExpr::Const(sigma2)),
                         reldb::ScalarExpr::Max(
                             reldb::ScalarExpr::Mul(reldb::ScalarExpr::Col(1),
                                                    reldb::ScalarExpr::Col(1)),
                             reldb::ScalarExpr::Const(1e-12))))),
                 reldb::ColExpr::Expr(reldb::ScalarExpr::Mul(
                     reldb::ScalarExpr::Col(2), reldb::ScalarExpr::Col(2)))})
            .VgApply(ig_vg, {"rigid"}, 1.0, 60.0);
    tau.Materialize(Database::Versioned("tau", i));
    db.EndQuery();
    for (const auto& row : db.Get(Database::Versioned("tau", i))->rows()) {
      state->inv_tau2[static_cast<std::size_t>(AsInt(row[0]))] =
          1.0 / std::max(AsDouble(row[1]), 1e-12);
    }

    // beta[i]: assemble A = X^T X + D_tau^-1 from the p^2-row Gram view
    // (set-oriented aggregates) and draw through the VG.
    db.BeginQuery(Database::Versioned("beta", i));
    db.ChargeExtraJob();  // gram |x| tau join + aggregate assembly
    sim.ChargeParallelCpu(p * p *
                          (db.costs().join_tuple_s +
                           db.costs().group_by_tuple_s));
    sim.ChargeParallelCpu(p * p * db.costs().vg_tuple_s);  // VG params in
    BetaVg beta_vg(&stats, &state->inv_tau2, state->sigma2,
                   exp.config.seed ^ (0xBE7A + i));
    Table seed_t(Schema{"one"}, 1.0);
    seed_t.Append(Tuple{std::int64_t{1}});
    auto beta_rel = Rel::FromTable(db, std::move(seed_t))
                        .VgApply(beta_vg, {}, 1.0,
                                 models::BetaUpdateFlops(exp.p) / p);
    beta_rel.Materialize(Database::Versioned("beta", i));
    db.EndQuery();
    for (const auto& row : db.Get(Database::Versioned("beta", i))->rows()) {
      state->beta[static_cast<std::size_t>(AsInt(row[0]))] = AsDouble(row[1]);
    }

    // sigma[i]: the SSE pass over the data (scan + join with beta).
    db.BeginQuery(Database::Versioned("sigma", i));
    auto sse_rel = Rel::Scan(db, "data").HashJoin(
        Rel::Scan(db, Database::Versioned("beta", i)), {"dim_id"}, {"rigid"},
        scale, /*co_partitioned=*/false);
    sse_rel.GroupBy({"data_id"}, {{AggOp::kSum, "data_val", "bx"}}, scale);
    double sse = models::ResidualSumOfSquares(stats, state->beta);
    state->sigma2 = models::SampleSigma2(rng, hyper, stats, state->beta,
                                         state->inv_tau2, sse);
    db.EndQuery();

    db.DropVersionsBefore("beta", i - 1);
    db.DropVersionsBefore("tau", i);
    db.DropVersionsBefore("sigma", i);
    result.iteration_seconds.push_back(sim.elapsed_seconds() - t0);
    if (!db.fault_status().ok()) {
      return RunResult::Fail(db.fault_status(), result.init_seconds);
    }
  }

  if (final_state != nullptr) *final_state = *state;
  result.CaptureFaultStats(sim);
  result.status = Status::OK();
  return result;
}

}  // namespace mlbench::core
