#pragma once

#include "core/lasso_experiment.h"
#include "models/lasso.h"

/// \file lasso_bsp.h
/// The Giraph Bayesian Lasso of paper Section 6.4: data vertices,
/// dimensional vertices (one per regressor, collecting rows of the Gram
/// matrix), and a model vertex holding (beta, sigma^2, tau). The naive
/// code materializes an 8 MB x^T x message per data vertex during
/// initialization -- hundreds of GB of JVM garbage per machine -- and
/// could not be run at any cluster size (Fig. 2); the super-vertex code
/// computes block partials in place and runs comfortably.

namespace mlbench::core {

RunResult RunLassoBsp(const LassoExperiment& exp,
                      models::LassoState* final_state = nullptr);

}  // namespace mlbench::core
