#pragma once

#include "core/gmm_experiment.h"
#include "models/gmm.h"

/// \file gmm_dataflow.h
/// The Spark GMM implementation of paper Section 5.1: a cached point RDD,
/// one reduceByKey job computing per-component sufficient statistics, a
/// driver-side model update, and a collectAsMap'd model shipped back in
/// task closures. Runs in Python or Java mode (Fig. 1(a) vs 1(b)); the
/// super-vertex variant (Fig. 1(c)) batches points into chunked records.

namespace mlbench::core {

/// Runs the experiment; fills `final_model` (if given) with the last
/// model draw for validation.
RunResult RunGmmDataflow(const GmmExperiment& exp,
                         models::GmmParams* final_model = nullptr);

}  // namespace mlbench::core
