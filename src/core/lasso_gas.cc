#include "core/lasso_gas.h"

#include <memory>
#include <utility>
#include <vector>

#include "core/workloads.h"
#include "gas/engine.h"

namespace mlbench::core {

namespace {

using models::LassoHyper;
using models::LassoState;
using models::LassoSuffStats;
using models::Vector;

struct VData {
  enum class Kind { kData, kModel, kCenter } kind = Kind::kData;
  // Data super vertex: the block X_i, y_i and its residual partial.
  std::vector<Vector> xs;
  std::vector<double> ys;
  double sse_partial = 0;
  // Model vertex j.
  std::size_t j = 0;
  double inv_tau2 = 1.0;
  // Center vertex.
  std::shared_ptr<LassoState> state;
};

struct Gathered {
  Vector beta;  // from the center (data + model vertices gather this)
  double sigma2 = 1.0;
  bool has_center = false;
  Vector inv_tau2;  // center gathers tau (indexed by j)
  double sse = 0;   // center gathers residual partials
};

class LassoProgram : public gas::GasProgram<VData, Gathered> {
 public:
  LassoProgram(const LassoHyper& hyper, const LassoSuffStats* stats,
               std::uint64_t seed, int iteration, double y_avg)
      : hyper_(hyper), stats_(stats), seed_(seed), iteration_(iteration),
        y_avg_(y_avg) {}

  Gathered Gather(const gas::Graph<VData>::Vertex& center,
                  const gas::Graph<VData>::Vertex& nbr) override {
    Gathered g;
    g.inv_tau2 = Vector(hyper_.p);
    if (center.data.kind == VData::Kind::kCenter) {
      if (nbr.data.kind == VData::Kind::kModel) {
        g.inv_tau2[nbr.data.j] = nbr.data.inv_tau2;
      } else if (nbr.data.kind == VData::Kind::kData) {
        g.sse = nbr.data.sse_partial;
      }
    } else if (nbr.data.kind == VData::Kind::kCenter) {
      g.beta = nbr.data.state->beta;
      g.sigma2 = nbr.data.state->sigma2;
      g.has_center = true;
    }
    return g;
  }

  // Batched gather over one CSR span. The scalar path allocates a length-p
  // inv_tau2 vector per *edge* only for the fold to add one-hot scatters
  // and zeros elementwise; the batch allocates one per chunk and scatters
  // the chunk's model contributions into it directly — each position is
  // written at most once across the whole neighborhood (model j appears on
  // exactly one edge), and 0 + x is bitwise x for these non-negative
  // precisions, so the fold result is unchanged. Residual partials are
  // additive and stay per-edge; later elements' inv_tau2 stay empty (a
  // Merge identity). Center-view placement (beta/sigma2) follows the same
  // last-wins overwrite rule as the fold.
  void GatherBatch(const gas::Graph<VData>::Vertex& center,
                   const gas::Graph<VData>& graph,
                   const std::size_t* neighbors, std::size_t count,
                   Gathered* out) override {
    out[0].inv_tau2 = Vector(hyper_.p);
    if (center.data.kind == VData::Kind::kCenter) {
      for (std::size_t j = 0; j < count; ++j) {
        const auto& nbr = graph.vertex(neighbors[j]);
        if (nbr.data.kind == VData::Kind::kModel) {
          out[0].inv_tau2[nbr.data.j] = nbr.data.inv_tau2;
        } else if (nbr.data.kind == VData::Kind::kData) {
          out[j].sse = nbr.data.sse_partial;
        }
      }
    } else {
      for (std::size_t j = 0; j < count; ++j) {
        const auto& nbr = graph.vertex(neighbors[j]);
        if (nbr.data.kind == VData::Kind::kCenter) {
          out[0].beta = nbr.data.state->beta;
          out[0].sigma2 = nbr.data.state->sigma2;
          out[0].has_center = true;
        }
      }
    }
  }

  Gathered Merge(Gathered a, const Gathered& b) override {
    if (b.has_center) {
      a.beta = b.beta;
      a.sigma2 = b.sigma2;
      a.has_center = true;
    }
    if (!b.inv_tau2.empty()) {
      if (a.inv_tau2.empty()) {
        a.inv_tau2 = b.inv_tau2;
      } else {
        a.inv_tau2 += b.inv_tau2;
      }
    }
    a.sse += b.sse;
    return a;
  }

  void Apply(gas::Graph<VData>::Vertex& v, const Gathered& g) override {
    stats::Rng rng = stats::Rng(seed_ ^ (0x1A60u + iteration_))
                         .Split(static_cast<std::uint64_t>(v.id) + 1);
    switch (v.data.kind) {
      case VData::Kind::kData: {
        // Residual partial under the gathered beta.
        double sse = 0;
        for (std::size_t r = 0; r < v.data.xs.size(); ++r) {
          double resid = (v.data.ys[r] - y_avg_) -
                         linalg::Dot(g.beta, v.data.xs[r]);
          sse += resid * resid;
        }
        v.data.sse_partial = sse;
        break;
      }
      case VData::Kind::kModel: {
        v.data.inv_tau2 = models::SampleInvTau2(
            rng, hyper_, g.sigma2, g.beta.empty() ? 1.0 : g.beta[v.data.j]);
        break;
      }
      case VData::Kind::kCenter: {
        auto& st = *v.data.state;
        if (!g.inv_tau2.empty()) st.inv_tau2 = g.inv_tau2;
        for (auto& t : st.inv_tau2) t = std::max(t, 1e-12);
        auto beta = models::SampleBeta(rng, *stats_, st.inv_tau2, st.sigma2);
        if (beta.ok()) st.beta = *beta;
        st.sigma2 = models::SampleSigma2(rng, hyper_, *stats_, st.beta,
                                         st.inv_tau2, g.sse * sse_scale_);
        break;
      }
    }
  }

  double GatherFlopsPerEdge() const override { return 4.0; }
  double ApplyFlopsPerVertex() const override { return 16.0; }
  void set_sse_scale(double s) { sse_scale_ = s; }

 private:
  LassoHyper hyper_;
  const LassoSuffStats* stats_;
  std::uint64_t seed_;
  int iteration_;
  double y_avg_;
  double sse_scale_ = 1.0;
};

}  // namespace

RunResult RunLassoGas(const LassoExperiment& exp,
                      models::LassoState* final_state) {
  sim::ClusterSim sim(exp.config.cluster());
  exp.config.ApplyNoise(&sim);
  exp.config.ApplyFaults(&sim);
  LassoDataGen gen(exp.config.seed, exp.p);
  const double p = static_cast<double>(exp.p);
  const long long n_act = exp.config.data.actual_per_machine;
  const int machines = exp.config.machines;
  const double n_logical = exp.config.data.logical_per_machine * machines;

  gas::Graph<VData> graph;
  // Center vertex (id 0), model vertices (1..p), data supers after.
  std::shared_ptr<LassoState> center_state;
  VData center;
  center.kind = VData::Kind::kCenter;
  center.state = std::make_shared<LassoState>();
  center_state = center.state;
  std::size_t center_slot = graph.AddVertex(
      0, std::move(center), 1.0, (2.0 * p + 2.0) * 8.0 + 64,
      (p + 1.0) * 8.0 + 64);
  std::vector<std::size_t> model_slots;
  for (std::size_t j = 0; j < exp.p; ++j) {
    VData vd;
    vd.kind = VData::Kind::kModel;
    vd.j = j;
    model_slots.push_back(graph.AddVertex(static_cast<gas::VertexId>(1 + j),
                                          std::move(vd), 1.0, 72, 48));
    graph.AddEdge(center_slot, model_slots.back());
  }

  long long supers_act = std::min<long long>(
      n_act * machines,
      static_cast<long long>(exp.supers_per_machine * machines));
  double super_scale =
      exp.supers_per_machine * machines / static_cast<double>(supers_act);
  double points_per_super = n_logical / (exp.supers_per_machine * machines);
  std::vector<std::size_t> data_slots;
  for (long long s = 0; s < supers_act; ++s) {
    VData vd;
    vd.kind = VData::Kind::kData;
    data_slots.push_back(graph.AddVertex(
        static_cast<gas::VertexId>(1 + exp.p + s), std::move(vd), super_scale,
        points_per_super * (p + 1.0) * 8.0 + 64, 16.0 + 48.0));
    graph.AddEdge(center_slot, data_slots.back());
  }
  double y_sum = 0;
  long long total_points = n_act * machines;
  LassoSuffStats stats;
  {
    std::vector<std::pair<Vector, double>> pts;
    for (long long j = 0; j < total_points; ++j) {
      int m = static_cast<int>(j / n_act);
      auto [x, y] = gen.Sample(m, j % n_act);
      y_sum += y;
      auto& vd = graph.vertex(data_slots[j % data_slots.size()]).data;
      vd.xs.push_back(x);
      vd.ys.push_back(y);
      pts.emplace_back(std::move(x), y);
    }
    double y_avg = y_sum / static_cast<double>(total_points);
    for (auto& [x, y] : pts) models::AccumulateLasso(x, y - y_avg, &stats);
  }
  double y_avg = y_sum / static_cast<double>(total_points);

  gas::GasEngine<VData> engine(&sim, &graph);
  engine.SetSnapshotInterval(exp.config.faults.snapshot_interval);
  Status boot = engine.Boot();
  if (!boot.ok()) return RunResult::Fail(boot);

  // Two map_reduce_vertices passes for the invariant statistics: each
  // super multiplies its block locally (fast C++ matrix math), partials
  // are summed centrally (paper Section 6.3).
  engine.MapReduceVertices<int>(
      [](const gas::Graph<VData>::Vertex&) { return 0; },
      [](int a, int b) { return a + b; }, 0,
      /*flops_per_vertex=*/points_per_super *
          models::GramAccumulateFlops(exp.p),
      "gram matrix");
  engine.MapReduceVertices<int>(
      [](const gas::Graph<VData>::Vertex&) { return 0; },
      [](int a, int b) { return a + b; }, 0,
      /*flops_per_vertex=*/points_per_super * 4.0 * p, "xty + center");

  LassoHyper hyper{exp.p, 1.0};
  stats::Rng rng(exp.config.seed ^ 0x1A52);
  auto init = models::InitLasso(rng, hyper);
  if (!init.ok()) return RunResult::Fail(init.status());
  *center_state = std::move(*init);
  for (std::size_t j = 0; j < exp.p; ++j) {
    graph.vertex(model_slots[j]).data.inv_tau2 = center_state->inv_tau2[j];
  }

  RunResult result;
  result.init_seconds = sim.elapsed_seconds();
  sim.ResetClock();

  for (int iter = 0; iter < exp.config.iterations; ++iter) {
    if (Status hs = exp.config.IterationBoundary(iter); !hs.ok()) {
      return RunResult::Fail(std::move(hs), result.init_seconds);
    }
    double t0 = sim.elapsed_seconds();
    LassoProgram program(hyper, &stats, exp.config.seed, iter, y_avg);
    // The chain runs at actual-sample scale, matching the Gram statistics.
    program.set_sse_scale(1.0);
    Status st = engine.RunSweep<Gathered>(program, "lasso iteration");
    if (!st.ok()) return RunResult::Fail(st, result.init_seconds);
    // Residual pass (parallel streaming) + the p x p solve, which runs
    // single-threaded at the center vertex and dominates the iteration.
    sim.BeginPhase("gas:lasso linalg");
    sim.ChargeParallelCpu(n_logical * 2.0 * p * sim::CppModel().flop_s);
    sim.ChargeCpu(graph.MachineOf(center_slot, machines),
                  sim::CppModel().LinalgSeconds(
                      models::BetaUpdateFlops(exp.p), p + 6.0, exp.p));
    sim.EndPhase();
    result.iteration_seconds.push_back(sim.elapsed_seconds() - t0);
  }

  if (final_state != nullptr) *final_state = *center_state;
  result.CaptureFaultStats(sim);
  result.status = Status::OK();
  return result;
}

}  // namespace mlbench::core
