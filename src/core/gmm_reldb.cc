#include "core/gmm_reldb.h"

#include <memory>
#include <utility>
#include <vector>

#include "core/workloads.h"
#include "models/imputation.h"
#include "reldb/database.h"
#include "reldb/rel.h"
#include "reldb/vg_library.h"

namespace mlbench::core {

namespace {

using models::GmmHyper;
using models::GmmParams;
using models::GmmSuffStats;
using models::Matrix;
using models::Vector;
using reldb::AggOp;
using reldb::AsDouble;
using reldb::AsInt;
using reldb::ColType;
using reldb::ColumnBatch;
using reldb::Database;
using reldb::Rel;
using reldb::Schema;
using reldb::Table;
using reldb::Tuple;
using reldb::VgBatchOut;

/// multinomial_membership: the one hand-written C++ VG function of the
/// paper's SimSQL GMM. Each invocation group is one data point's dimension
/// rows; the current model is bound at query construction (SimSQL
/// broadcast-joins the small model tables).
class MembershipVg : public reldb::VgFunction {
 public:
  MembershipVg(std::shared_ptr<models::GmmMembershipSampler> sampler,
               std::size_t dim,
               std::vector<models::CensoredPoint>* censored = nullptr,
               const GmmParams* params = nullptr)
      : sampler_(std::move(sampler)), dim_(dim), censored_(censored),
        params_(params) {}
  std::string name() const override { return "multinomial_membership"; }
  Schema output_schema() const override { return {"data_id", "clus_id"}; }
  void BindSchema(const Schema& schema) override {
    id_c_ = schema.IndexOf("data_id");
    dim_c_ = schema.IndexOf("dim_id");
    val_c_ = schema.IndexOf("data_val");
  }
  void Sample(const std::vector<Tuple>& params, const Schema& schema,
              stats::Rng& rng, std::vector<Tuple>* out) override {
    (void)schema;
    Vector x(dim_);
    for (const auto& row : params) {
      x[static_cast<std::size_t>(AsInt(row[dim_c_]))] = AsDouble(row[val_c_]);
    }
    auto id = static_cast<std::size_t>(AsInt(params[0][id_c_]));
    if (censored_ != nullptr) x = (*censored_)[id].x;
    std::size_t k = sampler_->Sample(rng, x, &scratch_);
    if (censored_ != nullptr && params_ != nullptr) {
      // Section 9's extra step: re-draw the censored coordinates from the
      // sampled component's conditional normal, in place.
      Status st = models::ImputeMissing(rng, params_->mu[k],
                                        params_->sigma[k],
                                        &(*censored_)[id]);
      (void)st;
    }
    out->push_back(Tuple{params[0][id_c_], static_cast<std::int64_t>(k)});
  }
  std::size_t OutRowsHint(std::size_t) const override { return 1; }
  void SampleBatch(const ColumnBatch& params,
                   const std::vector<std::uint32_t>& group_offsets,
                   stats::Rng& rng, VgBatchOut* out) override {
    const ColumnBatch::Column& idc = params.col(id_c_);
    const ColumnBatch::Column& dimc = params.col(dim_c_);
    const ColumnBatch::Column& valc = params.col(val_c_);
    const std::size_t n_groups = group_offsets.size() - 1;
    out->columnar = true;
    // One output row per group: the point's id (input storage type) and
    // the sampled cluster.
    out->cols.push_back(ColumnBatch::Column::Sized(idc.type, n_groups));
    out->cols.push_back(ColumnBatch::Column::Sized(ColType::kInt, n_groups));
    for (std::size_t g = 0; g < n_groups; ++g) {
      const std::size_t lo = group_offsets[g];
      const std::size_t hi = group_offsets[g + 1];
      // Fresh zero-initialized point per group, like the tuple path.
      Vector x(dim_);
      for (std::size_t i = lo; i < hi; ++i) {
        x[static_cast<std::size_t>(AsInt(dimc.At(i)))] = valc.AsDoubleAt(i);
      }
      auto id = static_cast<std::size_t>(AsInt(idc.At(lo)));
      if (censored_ != nullptr) x = (*censored_)[id].x;
      std::size_t k = sampler_->Sample(rng, x, &scratch_);
      if (censored_ != nullptr && params_ != nullptr) {
        Status st = models::ImputeMissing(rng, params_->mu[k],
                                          params_->sigma[k],
                                          &(*censored_)[id]);
        (void)st;
      }
      if (idc.type == ColType::kInt) {
        out->cols[0].ints[g] = idc.ints[lo];
      } else {
        out->cols[0].doubles[g] = idc.doubles[lo];
      }
      out->cols[1].ints[g] = static_cast<std::int64_t>(k);
    }
  }

 private:
  std::shared_ptr<models::GmmMembershipSampler> sampler_;
  std::size_t dim_;
  std::vector<models::CensoredPoint>* censored_;
  const GmmParams* params_;
  std::size_t id_c_ = 0, dim_c_ = 0, val_c_ = 0;
  // VG functions are invoked serially (VgApply loops over groups on one
  // thread), so per-object scratch is safe.
  models::GmmMembershipSampler::Scratch scratch_;
};

/// Library VG that draws each cluster's (mu, Sigma) from the conjugate
/// posterior given the aggregated statistics rows
/// (clus_id, d1, d2, sum_outer) joined with (clus_id, d, sum_x, n).
class ClusterPosteriorVg : public reldb::VgFunction {
 public:
  /// `count_scale` converts the logical COUNT(*) aggregates back to the
  /// actual-sample scale of the SUM aggregates so the sufficient
  /// statistics are consistent.
  ClusterPosteriorVg(GmmHyper hyper, double count_scale)
      : hyper_(std::move(hyper)), count_scale_(count_scale) {}
  std::string name() const override { return "gmm_cluster_posterior"; }
  /// kind 0 = mean entry (d1, value); kind 1 = covariance entry (d1, d2).
  Schema output_schema() const override {
    return {"clus_id", "kind", "d1", "d2", "val"};
  }
  void BindSchema(const Schema& schema) override {
    kind_c_ = schema.IndexOf("kind");
    d1_c_ = schema.IndexOf("d1");
    d2_c_ = schema.IndexOf("d2");
    val_c_ = schema.IndexOf("val");
    clus_c_ = schema.IndexOf("clus_id");
  }
  void Sample(const std::vector<Tuple>& params, const Schema& schema,
              stats::Rng& rng, std::vector<Tuple>* out) override {
    (void)schema;
    GmmSuffStats stats(hyper_.dim);
    for (const auto& row : params) {
      std::int64_t kind = AsInt(row[kind_c_]);
      auto d1 = static_cast<std::size_t>(AsInt(row[d1_c_]));
      auto d2 = static_cast<std::size_t>(AsInt(row[d2_c_]));
      double v = AsDouble(row[val_c_]);
      if (kind == 0) {
        stats.sum_x[d1] += v;
      } else if (kind == 1) {
        stats.sum_outer(d1, d2) += v;
      } else if (kind == 2) {
        stats.n += v / count_scale_;
      }  // kind 3: structural seed row ensuring every cluster has a group
    }
    auto post = models::SampleClusterPosterior(rng, hyper_, stats);
    std::pair<Vector, Matrix> draw = post.ok()
                                         ? std::move(*post)
                                         : FallbackDraw(post.status());
    const Tuple& any = params[0];
    for (std::size_t d = 0; d < hyper_.dim; ++d) {
      out->push_back(Tuple{any[clus_c_], std::int64_t{0},
                           static_cast<std::int64_t>(d), std::int64_t{0},
                           draw.first[d]});
    }
    for (std::size_t r = 0; r < hyper_.dim; ++r) {
      for (std::size_t c = 0; c < hyper_.dim; ++c) {
        out->push_back(Tuple{any[clus_c_], std::int64_t{1},
                             static_cast<std::int64_t>(r),
                             static_cast<std::int64_t>(c),
                             draw.second(r, c)});
      }
    }
  }

  /// First posterior-sampling failure across the query, if any. The VG
  /// interface has no status channel, so the driver polls this after the
  /// model-update query and converts a failure into a "Fail" cell instead
  /// of aborting the process (a degenerate subsample must not take down
  /// the whole experiment server).
  const Status& status() const { return status_; }
  std::size_t OutRowsHint(std::size_t) const override {
    return hyper_.dim + hyper_.dim * hyper_.dim;
  }
  void SampleBatch(const ColumnBatch& params,
                   const std::vector<std::uint32_t>& group_offsets,
                   stats::Rng& rng, VgBatchOut* out) override {
    const ColumnBatch::Column& kindc = params.col(kind_c_);
    const ColumnBatch::Column& d1c = params.col(d1_c_);
    const ColumnBatch::Column& d2c = params.col(d2_c_);
    const ColumnBatch::Column& valc = params.col(val_c_);
    const ColumnBatch::Column& clusc = params.col(clus_c_);
    const std::size_t n_groups = group_offsets.size() - 1;
    const std::size_t per = hyper_.dim + hyper_.dim * hyper_.dim;
    const std::size_t n_out = n_groups * per;
    out->columnar = true;
    out->cols.push_back(ColumnBatch::Column::Sized(clusc.type, n_out));
    out->cols.push_back(ColumnBatch::Column::Sized(ColType::kInt, n_out));
    out->cols.push_back(ColumnBatch::Column::Sized(ColType::kInt, n_out));
    out->cols.push_back(ColumnBatch::Column::Sized(ColType::kInt, n_out));
    out->cols.push_back(ColumnBatch::Column::Sized(ColType::kDouble, n_out));
    std::size_t w = 0;
    for (std::size_t g = 0; g < n_groups; ++g) {
      const std::size_t lo = group_offsets[g];
      const std::size_t hi = group_offsets[g + 1];
      GmmSuffStats stats(hyper_.dim);
      for (std::size_t i = lo; i < hi; ++i) {
        std::int64_t kind = AsInt(kindc.At(i));
        auto d1 = static_cast<std::size_t>(AsInt(d1c.At(i)));
        auto d2 = static_cast<std::size_t>(AsInt(d2c.At(i)));
        double v = valc.AsDoubleAt(i);
        if (kind == 0) {
          stats.sum_x[d1] += v;
        } else if (kind == 1) {
          stats.sum_outer(d1, d2) += v;
        } else if (kind == 2) {
          stats.n += v / count_scale_;
        }  // kind 3: structural seed row ensuring every cluster has a group
      }
      auto post = models::SampleClusterPosterior(rng, hyper_, stats);
      std::pair<Vector, Matrix> draw = post.ok()
                                           ? std::move(*post)
                                           : FallbackDraw(post.status());
      // Every output row of this group carries the group's clus_id value
      // (the tuple path re-emits params[0][clus_c_] verbatim).
      auto emit = [&](std::int64_t kind, std::size_t d1, std::size_t d2,
                      double val) {
        if (clusc.type == ColType::kInt) {
          out->cols[0].ints[w] = clusc.ints[lo];
        } else {
          out->cols[0].doubles[w] = clusc.doubles[lo];
        }
        out->cols[1].ints[w] = kind;
        out->cols[2].ints[w] = static_cast<std::int64_t>(d1);
        out->cols[3].ints[w] = static_cast<std::int64_t>(d2);
        out->cols[4].doubles[w] = val;
        ++w;
      };
      for (std::size_t d = 0; d < hyper_.dim; ++d) {
        emit(0, d, 0, draw.first[d]);
      }
      for (std::size_t r = 0; r < hyper_.dim; ++r) {
        for (std::size_t c = 0; c < hyper_.dim; ++c) {
          emit(1, r, c, draw.second(r, c));
        }
      }
    }
  }

 private:
  /// Deterministic positive-definite stand-in for a cluster whose
  /// sufficient statistics yielded a non-PD posterior scale (tiny or
  /// degenerate subsamples). The first failure is latched in status_ so
  /// the driver can fail the run cleanly after the query completes.
  std::pair<Vector, Matrix> FallbackDraw(const Status& st) {
    if (status_.ok()) status_ = st;
    return {hyper_.mu0, Matrix::Identity(hyper_.dim)};
  }

  GmmHyper hyper_;
  double count_scale_;
  Status status_ = Status::OK();
  std::size_t kind_c_ = 0, d1_c_ = 0, d2_c_ = 0, val_c_ = 0, clus_c_ = 0;
};

/// Super-vertex VG: one invocation per data group; re-samples every
/// member's cluster and emits *pre-aggregated* per-cluster statistics
/// (the optimization that makes SimSQL the fastest GMM in Fig. 1(c)).
class SuperVertexVg : public reldb::VgFunction {
 public:
  SuperVertexVg(std::shared_ptr<models::GmmMembershipSampler> sampler,
                const std::vector<std::vector<Vector>>* groups,
                std::size_t dim, std::size_t k)
      : sampler_(std::move(sampler)), groups_(groups), dim_(dim), k_(k) {}
  std::string name() const override { return "gmm_super_vertex"; }
  Schema output_schema() const override {
    return {"clus_id", "kind", "d1", "d2", "val"};
  }
  void BindSchema(const Schema& schema) override {
    gid_c_ = schema.IndexOf("group_id");
  }
  void Sample(const std::vector<Tuple>& params, const Schema& schema,
              stats::Rng& rng, std::vector<Tuple>* out) override {
    (void)schema;
    auto gid = static_cast<std::size_t>(AsInt(params[0][gid_c_]));
    std::vector<GmmSuffStats> stats(k_, GmmSuffStats(dim_));
    for (const auto& x : (*groups_)[gid]) {
      stats[sampler_->Sample(rng, x, &scratch_)].Add(x);
    }
    for (std::size_t c = 0; c < k_; ++c) {
      auto clus = static_cast<std::int64_t>(c);
      out->push_back(
          Tuple{clus, std::int64_t{2}, std::int64_t{0}, std::int64_t{0},
                stats[c].n});
      for (std::size_t d = 0; d < dim_; ++d) {
        out->push_back(Tuple{clus, std::int64_t{0},
                             static_cast<std::int64_t>(d), std::int64_t{0},
                             stats[c].sum_x[d]});
      }
      for (std::size_t r = 0; r < dim_; ++r) {
        for (std::size_t cc = 0; cc < dim_; ++cc) {
          out->push_back(Tuple{clus, std::int64_t{1},
                               static_cast<std::int64_t>(r),
                               static_cast<std::int64_t>(cc),
                               stats[c].sum_outer(r, cc)});
        }
      }
    }
  }
  std::size_t OutRowsHint(std::size_t) const override {
    return k_ * (1 + dim_ + dim_ * dim_);
  }
  void SampleBatch(const ColumnBatch& params,
                   const std::vector<std::uint32_t>& group_offsets,
                   stats::Rng& rng, VgBatchOut* out) override {
    const ColumnBatch::Column& gidc = params.col(gid_c_);
    const std::size_t n_groups = group_offsets.size() - 1;
    const std::size_t per = k_ * (1 + dim_ + dim_ * dim_);
    const std::size_t n_out = n_groups * per;
    out->columnar = true;
    // All five output columns are freshly generated int64/double values
    // (no passthrough), matching the tuple path's emitted alternatives.
    for (int c = 0; c < 4; ++c) {
      out->cols.push_back(ColumnBatch::Column::Sized(ColType::kInt, n_out));
    }
    out->cols.push_back(ColumnBatch::Column::Sized(ColType::kDouble, n_out));
    std::size_t w = 0;
    for (std::size_t g = 0; g < n_groups; ++g) {
      const std::size_t lo = group_offsets[g];
      auto gid = static_cast<std::size_t>(AsInt(gidc.At(lo)));
      std::vector<GmmSuffStats> stats(k_, GmmSuffStats(dim_));
      for (const auto& x : (*groups_)[gid]) {
        stats[sampler_->Sample(rng, x, &scratch_)].Add(x);
      }
      auto emit = [&](std::size_t clus, std::int64_t kind, std::size_t d1,
                      std::size_t d2, double val) {
        out->cols[0].ints[w] = static_cast<std::int64_t>(clus);
        out->cols[1].ints[w] = kind;
        out->cols[2].ints[w] = static_cast<std::int64_t>(d1);
        out->cols[3].ints[w] = static_cast<std::int64_t>(d2);
        out->cols[4].doubles[w] = val;
        ++w;
      };
      for (std::size_t c = 0; c < k_; ++c) {
        emit(c, 2, 0, 0, stats[c].n);
        for (std::size_t d = 0; d < dim_; ++d) {
          emit(c, 0, d, 0, stats[c].sum_x[d]);
        }
        for (std::size_t r = 0; r < dim_; ++r) {
          for (std::size_t cc = 0; cc < dim_; ++cc) {
            emit(c, 1, r, cc, stats[c].sum_outer(r, cc));
          }
        }
      }
    }
  }

 private:
  std::shared_ptr<models::GmmMembershipSampler> sampler_;
  const std::vector<std::vector<Vector>>* groups_;
  std::size_t dim_, k_;
  std::size_t gid_c_ = 0;
  models::GmmMembershipSampler::Scratch scratch_;
};

/// Reads the model tables back into a GmmParams (the broadcast join that
/// parameterizes the next iteration's VG functions).
GmmParams ReadModel(Database& db, int iteration, std::size_t k,
                    std::size_t dim) {
  GmmParams p;
  p.pi = Vector(k);
  p.mu.assign(k, Vector(dim));
  p.sigma.assign(k, Matrix(dim, dim));
  auto prob = db.Get(Database::Versioned("clus_prob", iteration));
  for (const auto& row : prob->rows()) {
    p.pi[static_cast<std::size_t>(AsInt(row[0]))] = AsDouble(row[1]);
  }
  auto model = db.Get(Database::Versioned("clus_model", iteration));
  for (const auto& row : model->rows()) {
    auto c = static_cast<std::size_t>(AsInt(row[0]));
    auto kind = AsInt(row[1]);
    auto d1 = static_cast<std::size_t>(AsInt(row[2]));
    auto d2 = static_cast<std::size_t>(AsInt(row[3]));
    if (kind == 0) {
      p.mu[c][d1] = AsDouble(row[4]);
    } else if (kind == 1) {
      p.sigma[c](d1, d2) = AsDouble(row[4]);
    }
  }
  return p;
}

/// Charges the broadcast join that ships the small model tables to every
/// machine at the start of a query.
void ChargeModelBroadcast(Database& db, std::size_t k, std::size_t dim) {
  double bytes = GmmModelBytes(k, dim, db.costs().tuple_bytes);
  for (int m = 0; m < db.sim().machines(); ++m) {
    db.sim().ChargeNetwork(m, bytes);
  }
}

}  // namespace

RunResult RunGmmRelDb(const GmmExperiment& exp,
                      models::GmmParams* final_model) {
  sim::ClusterSim sim(exp.config.cluster());
  exp.config.ApplyNoise(&sim);
  exp.config.ApplyFaults(&sim);
  Database db(&sim, sim::RelDbCosts{}, exp.config.seed);
  GmmDataGen gen(exp.config.seed, exp.k, exp.dim);

  const long long n_act = exp.config.data.actual_per_machine;
  const double scale = exp.config.data.scale();
  const int machines = exp.config.machines;
  const double d = static_cast<double>(exp.dim);

  // ---- Initialization -----------------------------------------------------
  // Load data(data_id, dim_id, data_val): d tuples per point. In
  // imputation mode the stored values are the censored data, refreshed
  // with the imputed draws every iteration.
  std::vector<models::CensoredPoint> censored;
  std::vector<Vector> points;
  Table data(Schema{"data_id", "dim_id", "data_val"}, scale);
  data.Reserve(static_cast<std::size_t>(machines) *
               static_cast<std::size_t>(n_act) * exp.dim);
  points.reserve(static_cast<std::size_t>(machines) *
                 static_cast<std::size_t>(n_act));
  for (int p = 0; p < machines; ++p) {
    for (long long j = 0; j < n_act; ++j) {
      Vector x = gen.Point(p, j);
      if (exp.imputation) {
        censored.push_back(CensorPoint(exp.config.seed, p, j, x));
        x = censored.back().x;
      }
      auto id = static_cast<std::int64_t>(p * n_act + j);
      for (std::size_t dd = 0; dd < exp.dim; ++dd) {
        data.Append(Tuple{id, static_cast<std::int64_t>(dd), x[dd]});
      }
      points.push_back(std::move(x));
    }
  }
  db.BeginQuery("load data");
  Rel::FromTable(db, std::move(data)).Materialize("data");
  db.EndQuery();

  // Hyperparameter views (mean_prior & friends), one aggregation query.
  db.BeginQuery("create hyper views");
  Rel::Scan(db, "data")
      .GroupBy({"dim_id"}, {{AggOp::kAvg, "data_val", "dim_val"}}, 1.0)
      .Materialize("mean_prior");
  Rel::Scan(db, "data")
      .Project(Schema{"dim_id", "sq"},
               {reldb::ColExpr::Col(1),
                reldb::ColExpr::Expr(reldb::ScalarExpr::Mul(
                    reldb::ScalarExpr::Col(2), reldb::ScalarExpr::Col(2)))})
      .GroupBy({"dim_id"}, {{AggOp::kAvg, "sq", "sq_val"}}, 1.0)
      .Materialize("sq_prior");
  db.EndQuery();

  GmmHyper hyper = models::EmpiricalHyper(exp.k, points);

  // cluster(clus_id, alpha) + initial random tables.
  Table cluster(Schema{"clus_id", "alpha"}, 1.0);
  cluster.Reserve(exp.k);
  for (std::size_t c = 0; c < exp.k; ++c) {
    cluster.Append(Tuple{static_cast<std::int64_t>(c), hyper.alpha});
  }
  db.BeginQuery("init model tables");
  Rel::FromTable(db, std::move(cluster)).Materialize("cluster");
  reldb::DirichletVg diri("clus_id", "alpha");
  Rel::Scan(db, "cluster")
      .VgApply(diri, {}, 1.0)
      .Renamed(Schema{"clus_id", "prob"})
      .Materialize(Database::Versioned("clus_prob", 0));
  // clus_model[0] from the prior.
  stats::Rng init_rng(exp.config.seed ^ 0x51);
  auto prior = models::SamplePrior(init_rng, hyper);
  if (!prior.ok()) return RunResult::Fail(prior.status());
  Table model0(Schema{"clus_id", "kind", "d1", "d2", "val"}, 1.0);
  model0.Reserve(exp.k * (exp.dim + exp.dim * exp.dim));
  for (std::size_t c = 0; c < exp.k; ++c) {
    for (std::size_t dd = 0; dd < exp.dim; ++dd) {
      model0.Append(Tuple{static_cast<std::int64_t>(c), std::int64_t{0},
                          static_cast<std::int64_t>(dd), std::int64_t{0},
                          prior->mu[c][dd]});
    }
    for (std::size_t r = 0; r < exp.dim; ++r) {
      for (std::size_t cc = 0; cc < exp.dim; ++cc) {
        model0.Append(Tuple{static_cast<std::int64_t>(c), std::int64_t{1},
                            static_cast<std::int64_t>(r),
                            static_cast<std::int64_t>(cc),
                            prior->sigma[c](r, cc)});
      }
    }
  }
  Rel::FromTable(db, std::move(model0))
      .Materialize(Database::Versioned("clus_model", 0));
  db.EndQuery();

  // Super-vertex groups live as opaque payload rows.
  std::vector<std::vector<Vector>> groups;
  if (exp.super_vertex) {
    auto supers_act = static_cast<std::size_t>(std::max(
        1.0, exp.supers_per_machine * machines / 10.0));
    supers_act = std::min(supers_act, points.size());
    groups.resize(supers_act);
    for (std::size_t j = 0; j < points.size(); ++j) {
      groups[j % supers_act].push_back(points[j]);
    }
    Table gt(Schema{"group_id", "payload_bytes"},
             exp.supers_per_machine * machines /
                 static_cast<double>(supers_act));
    gt.Reserve(supers_act);
    for (std::size_t g = 0; g < supers_act; ++g) {
      gt.Append(Tuple{static_cast<std::int64_t>(g),
                      static_cast<double>(groups[g].size()) * scale *
                          (d + 1.0) * 8.0});
    }
    db.BeginQuery("load groups");
    Rel::FromTable(db, std::move(gt)).Materialize("data_groups");
    db.EndQuery();
  }

  RunResult result;
  result.init_seconds = sim.elapsed_seconds();
  sim.ResetClock();

  // ---- Iterations ----------------------------------------------------------
  GmmParams params = std::move(*prior);
  // The word-at-a-time code evaluates densities naively per point (C++ VG
  // with per-call GSL overhead); the hand-coded super-vertex VG caches the
  // factorizations (the paper credits its speed to exactly this).
  double membership_flops = PaperMembershipCppFlops(exp.k, exp.dim);
  double super_flops = CachedMembershipCppFlops(exp.k, exp.dim);

  for (int i = 1; i <= exp.config.iterations; ++i) {
    if (Status hs = exp.config.IterationBoundary(i - 1); !hs.ok()) {
      return RunResult::Fail(std::move(hs), result.init_seconds);
    }
    double t0 = sim.elapsed_seconds();
    auto sampler_r = models::GmmMembershipSampler::Build(params);
    if (!sampler_r.ok()) {
      return RunResult::Fail(sampler_r.status(), result.init_seconds);
    }
    auto sampler = std::make_shared<models::GmmMembershipSampler>(
        std::move(*sampler_r));

    if (!exp.super_vertex) {
      // Query 1: membership[i] -- data grouped per point through the
      // multinomial_membership VG function, parameterized by the
      // (broadcast) model tables. The paper's version is a six-table
      // join; SimSQL runs it as a multi-job plan.
      // The paper's version parameterizes the VG through a six-table join
      // (data + the four model tables); SimSQL compiles it into a
      // multi-job plan whose extra jobs and join handling we charge, while
      // the small model tables broadcast-join.
      db.BeginQuery(Database::Versioned("membership", i));
      ChargeModelBroadcast(db, exp.k, exp.dim);
      db.ChargeExtraJob();  // join-plan stages beyond the first
      db.ChargeExtraJob();
      sim.ChargeParallelCpu(exp.config.data.logical_per_machine * machines *
                            d * 2.0 * db.costs().join_tuple_s);
      MembershipVg vg(sampler, exp.dim,
                      exp.imputation ? &censored : nullptr,
                      exp.imputation ? &params : nullptr);
      double vg_flops =
          membership_flops +
          (exp.imputation
               ? PaperImputeFlops(exp.dim) +
                     CppCallEquivalentFlops(PaperImputeCalls())
               : 0.0);
      auto membership =
          Rel::Scan(db, "data")
              .VgApply(vg, {"data_id"}, scale, vg_flops);
      membership.Materialize(Database::Versioned("membership", i));
      if (exp.imputation) {
        // The imputed data table is rewritten for the next iteration.
        auto fresh = db.Get("data");
        std::size_t row = 0;
        for (auto& tup : fresh->rows()) {
          auto id = static_cast<std::size_t>(AsInt(tup[0]));
          auto dd = static_cast<std::size_t>(AsInt(tup[1]));
          tup[2] = censored[id].x[dd];
          ++row;
        }
        Rel::Scan(db, "data").Materialize("data");
      }
      db.EndQuery();

      // Query 2: aggregate sufficient statistics. Means and counts from
      // data |x| membership; the covariance needs one tuple per
      // (point, d1, d2): a self-join on data_id then GROUP BY.
      db.BeginQuery("suff stats");
      // data and membership are both hashed on data_id: map-side join.
      auto joined = Rel::Scan(db, "data").HashJoin(
          Rel::Scan(db, Database::Versioned("membership", i)), {"data_id"},
          {"data_id"}, scale, /*co_partitioned=*/true);
      joined
          .GroupBy({"clus_id", "dim_id"},
                   {{AggOp::kSum, "data_val", "val"}}, 1.0)
          .Project(Schema{"clus_id", "kind", "d1", "d2", "val"},
                   {reldb::ColExpr::Col(0), reldb::ColExpr::Const(std::int64_t{0}),
                    reldb::ColExpr::Col(1), reldb::ColExpr::Const(std::int64_t{0}),
                    reldb::ColExpr::Col(2)})
          .Materialize("mean_agg");
      // One counted row per *point* (the join carries d rows per point).
      joined
          .FilterIntIn("dim_id", {0})
          .GroupBy({"clus_id"}, {{AggOp::kCount, "", "val"}}, 1.0)
          .Project(Schema{"clus_id", "kind", "d1", "d2", "val"},
                   {reldb::ColExpr::Col(0), reldb::ColExpr::Const(std::int64_t{2}),
                    reldb::ColExpr::Const(std::int64_t{0}),
                    reldb::ColExpr::Const(std::int64_t{0}),
                    reldb::ColExpr::Col(1)})
          .Materialize("count_agg");
      // (x - mu)(x - mu)^T aggregation: d^2 tuples per point.
      auto pairs = joined.HashJoin(Rel::Scan(db, "data"), {"data_id"},
                                   {"data_id"}, scale,
                                   /*co_partitioned=*/true);
      // pairs schema: data_id, dim_id, data_val, clus_id, dim_id2?, ...
      constexpr std::size_t val1 = 2, val2 = 5;
      pairs
          .Project(Schema{"clus_id", "d1", "d2", "prod"},
                   {reldb::ColExpr::Col(3), reldb::ColExpr::Col(1),
                    reldb::ColExpr::Col(4),
                    reldb::ColExpr::Expr(reldb::ScalarExpr::Mul(
                        reldb::ScalarExpr::Col(val1),
                        reldb::ScalarExpr::Col(val2)))})
          .GroupBy({"clus_id", "d1", "d2"}, {{AggOp::kSum, "prod", "val"}},
                   1.0)
          .Project(Schema{"clus_id", "kind", "d1", "d2", "val"},
                   {reldb::ColExpr::Col(0), reldb::ColExpr::Const(std::int64_t{1}),
                    reldb::ColExpr::Col(1), reldb::ColExpr::Col(2),
                    reldb::ColExpr::Col(3)})
          .Materialize("outer_agg");
      db.EndQuery();
    } else {
      // Super-vertex: one query; the VG invocation per group does the
      // sampling and pre-aggregation in C++, and also rewrites the group
      // payload (membership state) -- charged as the payload bytes
      // crossing the VG boundary.
      db.BeginQuery("super vertex sweep");
      ChargeModelBroadcast(db, exp.k, exp.dim);
      SuperVertexVg vg(sampler, &groups, exp.dim, exp.k);
      double work_per_out =
          exp.config.data.logical_per_machine * machines *
          (super_flops + models::SuffStatFlops(exp.dim)) /
          (exp.supers_per_machine * machines * exp.k * (d * d + d + 1.0));
      auto agg = Rel::Scan(db, "data_groups")
                     .VgApply(vg, {"group_id"},
                              exp.supers_per_machine * machines /
                                  static_cast<double>(groups.size()),
                              work_per_out);
      // Payload state rewrite (memberships stored back in the group
      // payloads): the payload bytes, not just the group id tuples,
      // cross storage.
      double payload_bytes = exp.config.data.logical_per_machine * machines *
                             (d + 1.0) * 8.0;
      Rel::Scan(db, "data_groups").Materialize("data_groups");
      sim.ChargeCpuAllMachines(payload_bytes * 2.0 / machines *
                               db.costs().materialize_byte_s);
      agg.GroupBy({"clus_id", "kind", "d1", "d2"},
                  {{AggOp::kSum, "val", "val"}}, 1.0)
          .Renamed(Schema{"clus_id", "kind", "d1", "d2", "val"})
          .Materialize("stats_agg");
      db.EndQuery();
    }

    // Query 3: model update VGs.
    db.BeginQuery("model update");
    GmmHyper hyper_copy = hyper;
    // Super-vertex stats are emitted at actual scale already; the tuple
    // plan's COUNT(*) aggregates are logical.
    ClusterPosteriorVg post_vg(hyper_copy, exp.super_vertex ? 1.0 : scale);
    // Structural seed rows keep clusters with zero members in the plan
    // (their posterior is the prior draw).
    auto seeds = Rel::Scan(db, "cluster")
                     .Project(Schema{"clus_id", "kind", "d1", "d2", "val"},
                              {reldb::ColExpr::Col(0),
                               reldb::ColExpr::Const(std::int64_t{3}),
                               reldb::ColExpr::Const(std::int64_t{0}),
                               reldb::ColExpr::Const(std::int64_t{0}),
                               reldb::ColExpr::Const(0.0)});
    Rel stats_in =
        (exp.super_vertex
             ? Rel::Scan(db, "stats_agg")
             : Rel::Scan(db, "mean_agg")
                   .Union(Rel::Scan(db, "outer_agg"))
                   .Union(Rel::Scan(db, "count_agg")))
            .Union(seeds);
    stats_in
        .VgApply(post_vg, {"clus_id"}, 1.0,
                 models::ClusterUpdateFlops(exp.dim) /
                     (d * d + d))
        .Materialize(Database::Versioned("clus_model", i));
    // clus_prob[i] exactly as the paper's recursive definition; seeds
    // contribute zero counts so every cluster reaches the Dirichlet.
    auto counts =
        stats_in.FilterIntIn("kind", {2, 3})
            .Project(Schema{"clus_id", "c"},
                     {reldb::ColExpr::Col(0), reldb::ColExpr::Col(4)})
            .GroupBy({"clus_id"}, {{AggOp::kSum, "c", "count_num"}}, 1.0);
    reldb::DirichletVg diri_i("clus_id", "diri_para");
    counts
        .HashJoin(Rel::Scan(db, "cluster"), {"clus_id"}, {"clus_id"}, 1.0)
        .Project(Schema{"clus_id", "diri_para"},
                 {reldb::ColExpr::Col(0),
                  reldb::ColExpr::Expr(reldb::ScalarExpr::Add(
                      reldb::ScalarExpr::Col(1), reldb::ScalarExpr::Col(2)))})
        .VgApply(diri_i, {}, 1.0)
        .Renamed(Schema{"clus_id", "prob"})
        .Materialize(Database::Versioned("clus_prob", i));
    db.EndQuery();

    db.DropVersionsBefore("membership", i);
    db.DropVersionsBefore("clus_model", i);
    db.DropVersionsBefore("clus_prob", i);

    params = ReadModel(db, i, exp.k, exp.dim);
    result.iteration_seconds.push_back(sim.elapsed_seconds() - t0);
    if (!post_vg.status().ok()) {
      return RunResult::Fail(post_vg.status(), result.init_seconds);
    }
    if (!db.fault_status().ok()) {
      return RunResult::Fail(db.fault_status(), result.init_seconds);
    }
  }

  if (final_model != nullptr) *final_model = params;
  result.peak_machine_bytes = sim.peak_bytes();
  result.CaptureFaultStats(sim);
  result.status = Status::OK();
  return result;
}

}  // namespace mlbench::core
