#pragma once

#include "core/experiment.h"
#include "models/lasso.h"
#include "sim/cost_profile.h"

/// \file lasso_experiment.h
/// Configuration shared by the Bayesian Lasso implementations (paper
/// Section 6: p = 1000 regressors, 10^5 points per machine).

namespace mlbench::core {

struct LassoExperiment {
  ExperimentConfig config;
  std::size_t p = 1000;
  /// Giraph ran only with the super-vertex construction (Fig. 2).
  bool super_vertex = false;
  sim::Language language = sim::Language::kPython;
  double supers_per_machine = 160;

  LassoExperiment() {
    config.data.logical_per_machine = 1e5;
    config.data.actual_per_machine = 300;
  }
};

/// Serialized bytes of the model state (beta + tau + sigma).
inline double LassoModelBytes(std::size_t p, double bytes_per_entry = 8.0) {
  return (2.0 * static_cast<double>(p) + 1.0) * bytes_per_entry;
}

}  // namespace mlbench::core
