#include "core/gmm_dataflow.h"

#include <utility>
#include <vector>

#include "core/workloads.h"
#include "dataflow/rdd.h"
#include "models/gmm.h"
#include "models/imputation.h"

namespace mlbench::core {

namespace {

using dataflow::Context;
using dataflow::OpCost;
using dataflow::Rdd;
using models::GmmHyper;
using models::GmmParams;
using models::GmmSuffStats;
using models::Vector;

/// A chunk of points handled as one record (the super-vertex variant
/// groups many points per record; the plain variant has one each).
struct PointChunk {
  long long base_index = 0;
  std::vector<Vector> points;
};

/// Map-side output of the sampling job: per-component aggregates.
struct Agg {
  GmmSuffStats stats;
};

/// Python object overhead per cached point record; NumPy arrays carry
/// ~96 bytes of object header on top of the raw doubles. Java uses
/// compact primitive arrays with ~48 bytes of header.
double PointRecordBytes(std::size_t dim, sim::Language lang) {
  double raw = 8.0 * static_cast<double>(dim);
  return raw + (lang == sim::Language::kPython ? 96.0 : 48.0);
}

/// Model representation shipped in task closures. The Python code holds a
/// dict of small NumPy arrays; the Java code (Mallet-based) holds boxed
/// collections at ~12 bytes per entry of overhead.
double ClosureModelBytes(const GmmExperiment& exp) {
  double per_entry = exp.language == sim::Language::kPython ? 12.0 : 12.0;
  return GmmModelBytes(exp.k, exp.dim, 8.0 + per_entry) + 4096.0;
}

}  // namespace

RunResult RunGmmDataflow(const GmmExperiment& exp,
                         models::GmmParams* final_model) {
  sim::ClusterSim sim(exp.config.cluster());
  exp.config.ApplyNoise(&sim);
  exp.config.ApplyFaults(&sim);
  dataflow::ContextOptions opts;
  opts.evict_cache_on_pressure = exp.config.faults.evict_cache_on_pressure;
  opts.language = exp.language;
  // One record = one chunk; the plain variant uses chunks of one point.
  const long long chunk =
      exp.super_vertex
          ? std::max<long long>(1, exp.config.data.actual_per_machine /
                                       static_cast<long long>(
                                           exp.supers_per_machine))
          : 1;
  const long long chunks_per_machine =
      exp.config.data.actual_per_machine / chunk;
  // Scale is per *point*; record-level quantities carry the chunk factor.
  opts.scale = exp.config.data.logical_per_machine /
               static_cast<double>(chunks_per_machine * chunk);
  opts.seed = exp.config.seed;
  Context ctx(&sim, opts);

  GmmDataGen gen(exp.config.seed, exp.k, exp.dim);

  // In imputation mode the data set changes every iteration, so it cannot
  // be cached (the paper's explanation for Spark's slowdown in Fig. 5);
  // the master copy of the evolving censored data lives here and each
  // evaluation re-reads it.
  auto censored =
      std::make_shared<std::vector<models::CensoredPoint>>();
  if (exp.imputation) {
    for (int p = 0; p < exp.config.machines; ++p) {
      for (long long j = 0; j < exp.config.data.actual_per_machine; ++j) {
        censored->push_back(
            CensorPoint(exp.config.seed, p, j, gen.Point(p, j)));
      }
    }
  }
  const long long n_per_machine = exp.config.data.actual_per_machine;

  // ---- Initialization (timed separately, paper's parenthesized column) ----
  // lines = sc.textFile(...); data = lines.map(parseLine).cache()
  const double record_bytes =
      PointRecordBytes(exp.dim, exp.language) * static_cast<double>(chunk);
  auto data = dataflow::Generate<PointChunk>(
      ctx, chunks_per_machine,
      [&gen, chunk, censored, n_per_machine,
       imputation = exp.imputation](int p, long long i) {
        PointChunk c;
        c.base_index = p * n_per_machine + i * chunk;
        for (long long q = 0; q < chunk; ++q) {
          c.points.push_back(
              imputation ? (*censored)[p * n_per_machine + i * chunk + q].x
                         : gen.Point(p, i * chunk + q));
        }
        return c;
      },
      record_bytes, /*parse_flops_per_record=*/10.0 * chunk);
  if (!exp.imputation) data.Cache();

  // num = data.count(); hyper mean / covariance via two reductions.
  auto count = data.CountActual();
  if (!count.ok()) return RunResult::Fail(count.status());
  // hyper_mean = data.reduce(add)/num; per-dimension variance likewise
  // (two reductions; only d-sized results reach the driver).
  OpCost scan_cost;
  scan_cost.flops_per_record = 2.0 * exp.dim * chunk;
  scan_cost.linalg_calls_per_record = 2.0 * chunk;
  scan_cost.dim = exp.dim;
  auto chunk_sum = data.Map(
      [dim = exp.dim](const PointChunk& c) {
        Vector s(dim);
        for (const auto& x : c.points) s += x;
        return s;
      },
      scan_cost, 8.0 * exp.dim);
  auto sum = chunk_sum.Reduce([](const Vector& a, const Vector& b) {
    return a + b;
  });
  if (!sum.ok()) return RunResult::Fail(sum.status());
  double n_actual = static_cast<double>(chunks_per_machine * chunk *
                                        exp.config.machines);
  Vector mean = *sum * (1.0 / n_actual);
  auto chunk_sq = data.Map(
      [dim = exp.dim, mean](const PointChunk& c) {
        Vector s(dim);
        for (const auto& x : c.points) {
          for (std::size_t i = 0; i < dim; ++i) {
            double dv = x[i] - mean[i];
            s[i] += dv * dv;
          }
        }
        return s;
      },
      scan_cost, 8.0 * exp.dim);
  auto sq = chunk_sq.Reduce([](const Vector& a, const Vector& b) {
    return a + b;
  });
  if (!sq.ok()) return RunResult::Fail(sq.status());
  Vector var = *sq * (1.0 / n_actual);

  GmmHyper hyper;
  hyper.k = exp.k;
  hyper.dim = exp.dim;
  hyper.alpha = 1.0;
  hyper.mu0 = mean;
  for (auto& v : var) v = std::max(v, 1e-6);
  hyper.psi = models::Matrix::Diagonal(var);
  Vector prec(exp.dim);
  for (std::size_t i = 0; i < exp.dim; ++i) prec[i] = 1.0 / var[i];
  hyper.lambda0 = models::Matrix::Diagonal(prec);
  hyper.v = static_cast<double>(exp.dim) + 2.0;

  // c_model = sc.parallelize(range(K)).map(... mvnrnd/invWishart ...)
  stats::Rng rng(exp.config.seed ^ 0x6A11);
  auto params_r = models::SamplePrior(rng, hyper);
  if (!params_r.ok()) return RunResult::Fail(params_r.status());
  GmmParams params = std::move(*params_r);

  if (!ctx.lifetime_status().ok()) {
    return RunResult::Fail(ctx.lifetime_status());
  }

  RunResult result;
  result.init_seconds = sim.elapsed_seconds();
  sim.ResetClock();

  // ---- Main loop: three jobs per iteration (paper Section 5.1) ----------
  OpCost sample_cost;
  sample_cost.flops_per_record =
      (PaperMembershipFlops(exp.k, exp.dim) + models::SuffStatFlops(exp.dim)) *
      chunk;
  sample_cost.linalg_calls_per_record = PaperMembershipCalls(exp.k) * chunk;
  sample_cost.elements_per_record =
      PaperMembershipElements(exp.k, exp.dim) * chunk;
  sample_cost.dim = exp.dim;
  if (exp.imputation) {
    sample_cost.flops_per_record += PaperImputeFlops(exp.dim) * chunk;
    sample_cost.linalg_calls_per_record +=
        PaperImputeCalls(exp.language) * chunk;
    sample_cost.elements_per_record += PaperImputeElements(exp.dim) * chunk;
  }
  const double agg_bytes =
      (exp.dim * exp.dim + exp.dim + 2.0) * 8.0 +
      (exp.language == sim::Language::kPython ? 160.0 : 48.0);

  for (int iter = 0; iter < exp.config.iterations; ++iter) {
    if (Status hs = exp.config.IterationBoundary(iter); !hs.ok()) {
      return RunResult::Fail(std::move(hs), result.init_seconds);
    }
    double t0 = sim.elapsed_seconds();
    auto sampler_r = models::GmmMembershipSampler::Build(params);
    if (!sampler_r.ok()) return RunResult::Fail(sampler_r.status());
    auto sampler = std::make_shared<models::GmmMembershipSampler>(
        std::move(*sampler_r));
    std::uint64_t iter_seed = exp.config.seed ^ (0xA0 + iter);

    // Job 1: c_agg = data.map(sample_mem).reduceByKey(add_triples); the
    // imputation variant re-draws each point's censored coordinates from
    // its sampled cluster first (Section 9's extra step).
    auto params_copy = std::make_shared<GmmParams>(params);
    auto pairs = data.FlatMap(
        [sampler, iter_seed, dim = exp.dim, censored, params_copy,
         imputation = exp.imputation](const PointChunk& c) {
          std::vector<std::pair<int, Agg>> out;
          stats::Rng point_rng =
              stats::Rng(iter_seed).Split(
                  static_cast<std::uint64_t>(c.base_index) + 1);
          models::GmmMembershipSampler::Scratch scratch;
          for (std::size_t q = 0; q < c.points.size(); ++q) {
            const auto& x = c.points[q];
            std::size_t k = sampler->Sample(point_rng, x, &scratch);
            if (imputation) {
              auto& cp = (*censored)[c.base_index + q];
              Status st = models::ImputeMissing(
                  point_rng, params_copy->mu[k], params_copy->sigma[k], &cp);
              (void)st;  // near-singular draws keep the previous value
            }
            Agg a;
            a.stats = GmmSuffStats(dim);
            a.stats.Add(imputation ? (*censored)[c.base_index + q].x : x);
            out.emplace_back(static_cast<int>(k), std::move(a));
          }
          return out;
        },
        sample_cost, agg_bytes);
    auto reduced = dataflow::ReduceByKey(
        pairs,
        [](const Agg& a, const Agg& b) {
          Agg m = a;
          m.stats.Merge(b.stats);
          return m;
        },
        OpCost{}, /*out_scale=*/1.0,
        /*reduce_flops_per_record=*/2.0 * exp.dim * exp.dim);

    ctx.BeginJob("gmm:sample+aggregate", data.num_partitions());
    Status bc = ctx.BroadcastClosure(ClosureModelBytes(exp));
    if (!bc.ok()) {
      ctx.EndJob();
      return RunResult::Fail(bc, result.init_seconds);
    }
    auto agg_rows = reduced.CollectNoJob();
    ctx.EndJob();
    if (!agg_rows.ok()) {
      return RunResult::Fail(agg_rows.status(), result.init_seconds);
    }

    // Job 2 (map-only in the paper): driver updates the model.
    ctx.BeginJob("gmm:update_model", exp.config.machines);
    std::vector<GmmSuffStats> stats(exp.k, GmmSuffStats(exp.dim));
    std::vector<double> counts(exp.k, 0.0);
    double logical_per_actual =
        exp.config.data.logical_per_machine /
        static_cast<double>(exp.config.data.actual_per_machine);
    for (auto& [k, agg] : *agg_rows) {
      counts[k] += agg.stats.n * logical_per_actual;
      stats[k].Merge(agg.stats);
    }
    for (std::size_t k = 0; k < exp.k; ++k) {
      auto post = models::SampleClusterPosterior(rng, hyper, stats[k]);
      if (!post.ok()) {
        ctx.EndJob();
        return RunResult::Fail(post.status(), result.init_seconds);
      }
      params.mu[k] = post->first;
      params.sigma[k] = post->second;
    }
    sim.ChargeParallelCpuOnMachine(
        0, exp.k * models::ClusterUpdateFlops(exp.dim) *
               ctx.lang().flop_s * 50.0);
    ctx.EndJob();

    // Job 3: collect counts, sample pi on the driver.
    ctx.BeginJob("gmm:update_pi", exp.config.machines);
    params.pi = models::SampleMixingProportions(rng, hyper, counts);
    ctx.EndJob();

    result.iteration_seconds.push_back(sim.elapsed_seconds() - t0);
    if (!ctx.fault_status().ok()) {
      return RunResult::Fail(ctx.fault_status(), result.init_seconds);
    }
  }

  if (final_model != nullptr) *final_model = params;
  result.peak_machine_bytes = sim.peak_bytes();
  result.CaptureFaultStats(sim);
  result.status = Status::OK();
  return result;
}

}  // namespace mlbench::core
