#pragma once

#include "core/gmm_experiment.h"
#include "models/gmm.h"

/// \file gmm_reldb.h
/// The SimSQL GMM implementation of paper Section 5.2: iteration-versioned
/// random tables (clus_means[i], clus_covas[i], clus_prob[i],
/// membership[i]) updated by recursive queries over the tuple-shredded
/// data table, with VG functions doing the sampling. The covariance
/// aggregation pushes one tuple per (point, dim1, dim2) through GROUP BY —
/// the cost the paper singles out at 100 dimensions. The super-vertex
/// variant packs points into group payloads whose VG invocation
/// pre-aggregates in C++ (the fastest GMM in Fig. 1(c)).

namespace mlbench::core {

RunResult RunGmmRelDb(const GmmExperiment& exp,
                      models::GmmParams* final_model = nullptr);

}  // namespace mlbench::core
