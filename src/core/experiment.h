#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "exec/cancel.h"
#include "sim/cluster_sim.h"
#include "sim/cost_profile.h"
#include "sim/faults.h"
#include "sim/machine.h"

/// \file experiment.h
/// Common experiment plumbing shared by every platform x model benchmark
/// implementation: cluster/scale configuration and the timing result the
/// paper's tables report (initialization time + average per-iteration time
/// over the first five iterations, or "Fail").

namespace mlbench::core {

/// Scale configuration: how many logical records the paper's run used per
/// machine and how many actual records this process executes per machine.
struct ScaleSpec {
  double logical_per_machine = 10e6;
  long long actual_per_machine = 2000;

  double scale() const {
    return logical_per_machine / static_cast<double>(actual_per_machine);
  }
};

/// One benchmark run's configuration.
struct ExperimentConfig {
  int machines = 5;
  ScaleSpec data;
  int iterations = 3;  ///< the paper averages the first five; 3 suffices
  std::uint64_t seed = 2014;
  /// EC2 day-to-day variance (Section 3.4): when noise_seed != 0, phase
  /// times get multiplicative noise of this relative magnitude.
  double noise_fraction = 0.08;
  std::uint64_t noise_seed = 0;

  sim::ClusterSpec cluster() const {
    return sim::Ec2M2XLargeCluster(machines);
  }

  /// Applies the configured run-to-run noise to a simulator.
  void ApplyNoise(sim::ClusterSim* sim) const {
    if (noise_seed != 0) sim->SetNoise(noise_fraction, noise_seed);
  }

  /// Fault schedule and recovery knobs (DESIGN.md §12). Defaults to the
  /// ambient MLBENCH_FAULT_* environment (disabled when unset); a
  /// disabled spec never touches the simulator, so runs stay
  /// bit-identical to a build without the fault subsystem.
  sim::FaultSpec faults = sim::FaultSpec::FromEnv();

  /// Installs the configured fault schedule on a simulator. Call after
  /// ApplyNoise, before any engine work.
  void ApplyFaults(sim::ClusterSim* sim) const {
    if (faults.Enabled()) sim->SetFaultInjector(faults.MakeInjector());
  }

  // ---- Session hooks (experiment server) -----------------------------------
  //
  // A long-running server gives every session its own ExperimentConfig, so
  // these fields are the session-scoped channel between a run and its
  // owner. Both default to "absent": a config with neither set executes
  // bit-identically to one predating the server layer.

  /// Cooperative cancellation, observed at iteration boundaries only (a
  /// cancelled run stops at a synchronisation point, never mid-iteration,
  /// so there is no torn model state). Not owned; may be null.
  const exec::CancelToken* cancel = nullptr;

  /// Progress notification, invoked with (completed_iterations, total)
  /// from the run's own thread at each iteration boundary. May be empty.
  std::function<void(int, int)> progress;

  /// Drivers call this at the top of every iteration: reports progress
  /// and returns the cancellation status (OK to continue). Non-OK means
  /// the driver must abandon the run and return RunResult::Fail with this
  /// status — the iteration boundary is the only cancellation point.
  Status IterationBoundary(int completed_iterations) const {
    if (cancel != nullptr && cancel->cancelled()) return cancel->status();
    if (progress) progress(completed_iterations, iterations);
    return Status::OK();
  }
};

/// Outcome of one run, in the shape of the paper's table cells.
struct RunResult {
  Status status;  ///< OK, or the failure that produced a "Fail" cell
  double init_seconds = -1;
  std::vector<double> iteration_seconds;
  /// Highest simulated per-machine residency observed during the run.
  double peak_machine_bytes = 0;
  /// Fault recovery accounting (all zero when injection is off): events
  /// the engine recovered from and the simulated seconds recovery cost.
  int recovery_events = 0;
  double recovery_seconds = 0;

  bool ok() const { return status.ok(); }

  /// Copies recovery accounting out of a simulator's fault injector (a
  /// no-op when no injector is installed).
  void CaptureFaultStats(const sim::ClusterSim& sim) {
    const sim::FaultInjector* inj = sim.faults();
    if (inj == nullptr) return;
    recovery_events = static_cast<int>(inj->recoveries().size());
    recovery_seconds = inj->total_recovery_seconds();
  }

  double avg_iteration_seconds() const {
    if (iteration_seconds.empty()) return -1;
    double s = 0;
    for (double t : iteration_seconds) s += t;
    return s / static_cast<double>(iteration_seconds.size());
  }

  /// A failed run with the failure recorded.
  static RunResult Fail(Status st, double init_seconds = -1) {
    RunResult r;
    r.status = std::move(st);
    r.init_seconds = init_seconds;
    return r;
  }
};

/// Converts linalg-call overhead into flop-equivalents at C++ (GSL) cost,
/// for cost hooks that only take a FLOP count (VG functions, GAS programs).
inline double CppCallEquivalentFlops(double calls) {
  sim::LanguageModel cpp = sim::CppModel();
  return calls * cpp.linalg_call_s / cpp.flop_s;
}

}  // namespace mlbench::core
