#pragma once

#include "core/lasso_experiment.h"
#include "models/lasso.h"

/// \file lasso_reldb.h
/// The SimSQL Bayesian Lasso of paper Section 6.2: three materialized
/// views (Gram matrix, centered response, moment vector) computed once --
/// the Gram matrix as an aggregate-GROUP BY with one group per matrix
/// entry, which is why initialization takes hours -- and three random
/// tables (beta[i], sigma[i], tau[i]) updated per iteration.

namespace mlbench::core {

RunResult RunLassoRelDb(const LassoExperiment& exp,
                        models::LassoState* final_state = nullptr);

}  // namespace mlbench::core
