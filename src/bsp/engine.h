#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/flat_index.h"
#include "common/logging.h"
#include "common/status.h"
#include "exec/parallel_for.h"
#include "sim/charge_ledger.h"
#include "sim/cluster_sim.h"
#include "sim/cost_profile.h"
#include "sim/faults.h"

/// \file engine.h
/// The Giraph-like bulk-synchronous-parallel engine (paper Section 4.4).
///
/// A computation is a sequence of supersteps. In each superstep every
/// vertex runs the same compute function: it reads the messages sent to it
/// in the previous superstep, updates its state, and sends messages for the
/// next superstep. Like Giraph 1.0 (Java on Hadoop), the engine supports
/// sender-side *combiners* and master-collected *aggregators* (the paper's
/// codes use both heavily), runs user code at JVM cost, and buffers
/// incoming messages in worker RAM — the memory profile behind Giraph's
/// failures on the largest problems.
///
/// Simulated per-machine residency during a superstep:
///   graph state + combined message buffers (+16 B/message overhead)
///   + per-peer connection buffers + JVM allocation churn
///     (declared per compute, scaled by gc_retention).

namespace mlbench::bsp {

using VertexId = std::int64_t;

/// Declared per-superstep numeric work of a compute function.
struct ComputeCost {
  /// Dense-linalg FLOPs per logical vertex.
  double flops_per_vertex = 0;
  /// Linalg kernel invocations per logical vertex.
  double linalg_calls_per_vertex = 0;
  /// Operand dimensionality (drives the Java cache penalty).
  std::size_t dim = 1;
  /// Scalars crossing the runtime boundary per logical vertex (boxing).
  double elements_per_vertex = 0;
  /// Short-lived JVM allocation per logical vertex (boxing, Mallet
  /// temporaries); a superstep whose total allocation on one machine
  /// exceeds BspCosts::max_superstep_alloc_bytes dies of GC pressure.
  double temp_bytes_per_vertex = 0;
};

template <typename VData, typename Msg>
class BspEngine {
 public:
  struct Vertex {
    VertexId id;
    VData data;
    double scale = 1.0;       ///< logical vertices per actual vertex
    double state_bytes = 64;  ///< resident bytes per logical vertex
  };

  struct PendingMsg {
    std::size_t dst_slot;
    Msg msg;
    double bytes;
    double logical;  ///< logical multiplicity (sender scale)
    int src_machine;
    bool replicated;  ///< one copy per logical recipient (broadcast)
  };

  /// One recorded Context::Aggregate call, replayed in vertex order.
  struct AggCall {
    std::string name;
    std::vector<double> value;
    double bytes;
    std::size_t sender;
  };

  /// Everything one ParallelFor chunk of the compute loop emits: messages,
  /// aggregator calls, and sim charges. Merged in chunk-index order after
  /// the loop, which reproduces the serial engine's state exactly.
  struct ChunkOutbox {
    std::vector<PendingMsg> pending;
    std::vector<AggCall> agg_calls;
    sim::ChargeLedger ledger;
  };

  /// Context handed to compute functions for sending messages and using
  /// aggregators. During the (possibly parallel) compute loop, emissions
  /// land in the chunk's outbox and are merged engine-side in vertex order
  /// afterwards, so results never depend on worker scheduling.
  class Context {
   public:
    /// Sends `m` (of `bytes` serialized bytes) to vertex `dst`, on behalf
    /// of all `sender.scale` logical copies of the sending vertex.
    void Send(VertexId dst, Msg m, double bytes) {
      outbox_->pending.push_back(
          engine_->MakePending(sender_, dst, std::move(m), bytes,
                               engine_->vertices_[sender_].scale,
                               /*replicated=*/false));
    }

    /// Sends `m` standing for `logical_copies` logical messages addressed
    /// to the logical copies of a scaled destination vertex (a model
    /// broadcast). Combiners may merge such messages' contents but cannot
    /// collapse the per-recipient replication.
    void SendReplicated(VertexId dst, Msg m, double bytes,
                        double logical_copies) {
      outbox_->pending.push_back(
          engine_->MakePending(sender_, dst, std::move(m), bytes,
                               logical_copies, /*replicated=*/true));
    }

    /// Adds `value` into the named aggregator (summed element-wise across
    /// all vertices; readable by everyone next superstep). `bytes` is the
    /// serialized size of one aggregator copy.
    void Aggregate(const std::string& name, const std::vector<double>& value,
                   double bytes) {
      outbox_->agg_calls.push_back(AggCall{name, value, bytes, sender_});
    }

    /// Reads an aggregator's value from the previous superstep.
    const std::vector<double>& GetAggregate(const std::string& name) const {
      return engine_->PreviousAggregate(name);
    }

    int superstep() const { return engine_->superstep_; }

   private:
    friend class BspEngine;
    Context(BspEngine* e, std::size_t sender, ChunkOutbox* outbox)
        : engine_(e), sender_(sender), outbox_(outbox) {}
    BspEngine* engine_;
    std::size_t sender_;
    ChunkOutbox* outbox_;
  };

  using ComputeFn =
      std::function<void(Vertex&, const std::vector<Msg>&, Context&)>;
  using CombinerFn = std::function<Msg(const Msg&, const Msg&)>;

  BspEngine(sim::ClusterSim* sim, sim::BspCosts costs = {},
            sim::Language lang = sim::Language::kJava)
      : sim_(sim), costs_(costs), lang_(sim::GetLanguageModel(lang)) {}

  sim::ClusterSim& sim() { return *sim_; }
  const sim::BspCosts& costs() const { return costs_; }

  /// Adds a vertex before Boot(). Returns its slot.
  std::size_t AddVertex(VertexId id, VData data, double scale,
                        double state_bytes) {
    Vertex v;
    v.id = id;
    v.data = std::move(data);
    v.scale = scale;
    v.state_bytes = state_bytes;
    slot_of_[id] = vertices_.size();
    vertices_.push_back(std::move(v));
    machine_of_.clear();  // placement cache rebuilt on next Boot
    return vertices_.size() - 1;
  }

  Vertex& vertex(std::size_t slot) { return vertices_[slot]; }
  const Vertex& vertex(std::size_t slot) const { return vertices_[slot]; }
  std::size_t size() const { return vertices_.size(); }

  /// Sets the message combiner (commutative, associative). Applied at the
  /// sender machine per destination vertex, Giraph-style.
  void SetCombiner(CombinerFn combine) { combiner_ = std::move(combine); }

  /// Sets a size function for messages, needed when a combiner *appends*
  /// rather than folds (the combined message's size is recomputed from its
  /// content instead of inheriting the first input's size).
  void SetMessageSize(std::function<double(const Msg&)> size_fn) {
    size_fn_ = std::move(size_fn);
  }

  /// Enables Giraph 1.0's out-of-core messaging: message payloads spill to
  /// local disk (keeping only a small in-heap index per message) at the
  /// price of disk I/O per superstep. The paper's naive codes needed heavy
  /// tuning of exactly this kind to run at all.
  void SetOutOfCoreMessages(bool on) { out_of_core_ = on; }

  /// Giraph-style checkpointing: every `n` supersteps each worker writes
  /// its partition (graph state) to DFS before compute, and a crash rolls
  /// back to the last checkpoint and replays the supersteps since. `n` <=
  /// 0 (the default) disables checkpoint writes — a crash then restarts
  /// the whole computation, Giraph's behavior with checkpointing off.
  void SetCheckpointInterval(int n) { checkpoint_interval_ = n; }

  /// Machine hosting a vertex slot (hash placement, as Giraph's default
  /// HashPartitioner). Boot() memoizes the placement per slot; the hash
  /// path only runs pre-Boot (or after a post-Boot AddVertex invalidated
  /// the cache).
  int MachineOf(std::size_t slot) const {
    if (slot < machine_of_.size()) return machine_of_[slot];
    std::uint64_t h = static_cast<std::uint64_t>(vertices_[slot].id) *
                      0x9E3779B97F4A7C15ULL;
    h ^= h >> 29;
    return static_cast<int>(h % static_cast<std::uint64_t>(sim_->machines()));
  }

  /// Launches the Hadoop job hosting the computation: charges the one-time
  /// job start and pins graph state + per-peer connection buffers.
  Status Boot() {
    // Memoize hash placement: MachineOf is consulted for every vertex in
    // every superstep (compute charge, residency, message routing), and
    // placement is immutable once the graph is loaded.
    machine_of_.resize(vertices_.size());
    for (std::size_t i = 0; i < vertices_.size(); ++i) {
      std::uint64_t h = static_cast<std::uint64_t>(vertices_[i].id) *
                        0x9E3779B97F4A7C15ULL;
      h ^= h >> 29;
      machine_of_[i] =
          static_cast<int>(h % static_cast<std::uint64_t>(sim_->machines()));
    }
    sim_->BeginPhase("bsp:boot");
    sim_->ChargeFixed(costs_.job_launch_s);
    Status st;
    for (std::size_t i = 0; i < vertices_.size() && st.ok(); ++i) {
      const auto& v = vertices_[i];
      st = sim_->Allocate(MachineOf(i), v.scale * v.state_bytes,
                          "BSP graph state");
    }
    if (st.ok()) {
      peer_bytes_ = costs_.peer_buffer_bytes * (sim_->machines() - 1);
      st = sim_->AllocateEverywhere(peer_bytes_, "BSP peer buffers");
    }
    sim_->EndPhase();
    if (!st.ok()) return st;
    inbox_.assign(vertices_.size(), {});
    next_inbox_.assign(vertices_.size(), {});
    inbox_meta_.assign(vertices_.size(), {});
    // Per-machine graph-state footprint, for checkpoint write / reload
    // charges during recovery.
    machine_state_bytes_.assign(static_cast<std::size_t>(sim_->machines()),
                                0.0);
    for (std::size_t i = 0; i < vertices_.size(); ++i) {
      const auto& v = vertices_[i];
      machine_state_bytes_[static_cast<std::size_t>(MachineOf(i))] +=
          v.scale * v.state_bytes;
    }
    wall_since_checkpoint_.clear();
    booted_ = true;
    return Status::OK();
  }

  void Shutdown() {
    if (!booted_) return;
    for (std::size_t i = 0; i < vertices_.size(); ++i) {
      const auto& v = vertices_[i];
      sim_->Free(MachineOf(i), v.scale * v.state_bytes);
    }
    sim_->FreeEverywhere(peer_bytes_);
    booted_ = false;
  }

  /// Runs one superstep: delivers last superstep's messages, executes
  /// `compute` on every vertex, and routes the new messages.
  Status RunSuperstep(const ComputeFn& compute, const ComputeCost& cost,
                      const std::string& name = "superstep") {
    MLBENCH_CHECK_MSG(booted_, "engine not booted");
    sim_->BeginPhase("bsp:" + name);
    sim_->ChargeFixed(costs_.superstep_barrier_s);

    // Checkpoint write: each worker flushes its partition to DFS and the
    // barrier waits for the slowest writer. Superstep 0's checkpoint
    // records the freshly loaded graph.
    if (checkpoint_interval_ > 0 &&
        superstep_ % checkpoint_interval_ == 0) {
      for (int m = 0; m < sim_->machines(); ++m) {
        sim_->ChargeCpu(m,
                        machine_state_bytes_[static_cast<std::size_t>(m)] /
                            sim_->spec().machine.disk_bytes_per_sec);
      }
      wall_since_checkpoint_.clear();
    }

    // Fault schedule for this superstep. Stragglers and send retries
    // stretch this phase; a crash pays a rollback-and-replay recovery
    // phase after the barrier (below). All queries are pure hashes of
    // (seed, superstep, machine), so fault handling is thread-invariant.
    sim::FaultInjector* inj = sim_->faults();
    const bool faults_on = inj != nullptr && inj->active();
    const std::int64_t unit = superstep_;
    int worst_crash = 0;
    int crash_machine = -1;
    if (faults_on) {
      const sim::FaultPlan& plan = inj->plan();
      const sim::RetryPolicy& retry = inj->retry();
      for (int m = 0; m < sim_->machines(); ++m) {
        if (int crashes = plan.CrashCountAt(unit, m); crashes > 0) {
          if (retry.Exhausted(crashes)) {
            sim_->EndPhase();
            return Status::Unavailable(
                "worker on machine " + std::to_string(m) + " failed " +
                std::to_string(crashes) + " attempts of superstep " +
                std::to_string(unit));
          }
          if (crashes > worst_crash) {
            worst_crash = crashes;
            crash_machine = m;
          }
        }
        if (double f = plan.StragglerFactorAt(unit, m); f > 1.0) {
          sim_->ScalePhaseCpu(m, f);
          inj->RecordRecovery(
              {sim::FaultKind::kStraggler, "bsp:superstep", unit, m, 0.0});
        }
        if (int sends = plan.SendFailureCountAt(unit, m); sends > 0) {
          if (retry.Exhausted(sends)) {
            sim_->EndPhase();
            return Status::Unavailable(
                "messages from machine " + std::to_string(m) + " failed " +
                std::to_string(sends) + " attempts in superstep " +
                std::to_string(unit));
          }
          sim_->ScalePhaseNet(m, 1.0 + static_cast<double>(sends));
          double backoff = retry.BackoffSeconds(sends);
          sim_->ChargeFixed(backoff);
          inj->RecordRecovery({sim::FaultKind::kSendFailure, "bsp:superstep",
                               unit, m, backoff});
        }
      }
    }

    // Residency: last superstep's combined message buffers (in heap, or a
    // spill index when out-of-core messaging is on) plus a JVM
    // allocation-churn check. The accumulators are member scratch (assign
    // keeps capacity) so steady-state supersteps don't allocate here.
    std::vector<double>& resident = resident_scratch_;
    std::vector<double>& spilled = spilled_scratch_;
    std::vector<double>& churn = churn_scratch_;
    resident.assign(static_cast<std::size_t>(sim_->machines()), 0.0);
    spilled.assign(static_cast<std::size_t>(sim_->machines()), 0.0);
    churn.assign(static_cast<std::size_t>(sim_->machines()), 0.0);
    for (std::size_t i = 0; i < vertices_.size(); ++i) {
      const auto& mb = inbox_meta_[i];
      int m = MachineOf(i);
      if (out_of_core_) {
        resident[m] += mb.logical_count * costs_.spill_index_bytes;
        spilled[m] += mb.total_bytes;
      } else {
        resident[m] += mb.total_bytes +
                       mb.logical_count * costs_.message_overhead_bytes;
      }
      churn[m] += vertices_[i].scale * cost.temp_bytes_per_vertex;
    }
    for (int m = 0; m < sim_->machines(); ++m) {
      if (churn[m] > costs_.max_superstep_alloc_bytes) {
        sim_->EndPhase();
        return Status::OutOfMemory(
            "JVM allocation churn of " + std::to_string(churn[m] / 1e9) +
            " GB/superstep on machine " + std::to_string(m) +
            " outruns collection");
      }
      if (spilled[m] > sim_->spec().machine.disk_capacity_bytes) {
        sim_->EndPhase();
        return Status::OutOfMemory("out-of-core message spill exceeds " +
                                   std::to_string(
                                       sim_->spec().machine.disk_capacity_bytes /
                                       1e9) +
                                   " GB of local disk");
      }
      // Spilled payloads are written and read back once per superstep.
      sim_->ChargeCpu(m, 2.0 * spilled[m] /
                             sim_->spec().machine.disk_bytes_per_sec);
    }
    for (int m = 0; m < sim_->machines(); ++m) {
      Status st = sim_->Allocate(m, resident[m], "superstep working set");
      if (!st.ok()) {
        for (int r = 0; r < m; ++r) sim_->Free(r, resident[r]);
        sim_->EndPhase();
        return st;
      }
    }

    // Swap in the inboxes and aggregators produced last superstep. The
    // inboxes double-buffer: the stale front buffer becomes the new back
    // buffer with its per-vertex message vectors cleared element-wise, so
    // their capacity survives and steady-state delivery stops allocating.
    inbox_.swap(next_inbox_);
    if (next_inbox_.size() < vertices_.size()) {
      next_inbox_.resize(vertices_.size());
    }
    for (auto& box : next_inbox_) box.clear();
    inbox_meta_.assign(vertices_.size(), {});
    prev_aggregates_ = std::move(next_aggregates_);
    next_aggregates_.clear();
    std::vector<std::vector<Msg>>& inboxes = inbox_;

    // Execute compute on every vertex; charge JVM record + declared flops.
    // The loop is chunked across the host pool: each chunk emits into its
    // own outbox (messages, aggregator calls, sim charges), and outboxes
    // commit below in chunk-index order — the exact serial sequence.
    static const std::vector<Msg> kEmpty;
    const std::int64_t n = static_cast<std::int64_t>(vertices_.size());
    // Grain policy: pure in the vertex count (GrainFor never consults the
    // thread count). The loop is grain-invariant — outboxes commit in
    // chunk-index order, which concatenates to plain vertex order whatever
    // the chunking — so adopting GrainFor cannot perturb results, charges
    // or message sequences (exec_test pins this with a parity test).
    const std::int64_t grain = exec::GrainFor(n, exec::CostHint::kNormal);
    // The outbox vector is engine state reused across supersteps: clearing
    // (instead of reconstructing) keeps each chunk's pending/agg vectors at
    // their high-water capacity, so steady-state supersteps allocate
    // nothing here.
    const std::size_t n_chunks =
        static_cast<std::size_t>(exec::NumChunks(n, grain));
    if (outbox_scratch_.size() < n_chunks) outbox_scratch_.resize(n_chunks);
    for (std::size_t c = 0; c < n_chunks; ++c) {
      outbox_scratch_[c].pending.clear();
      outbox_scratch_[c].agg_calls.clear();
      outbox_scratch_[c].ledger.Clear();
    }
    std::vector<ChunkOutbox>& outboxes = outbox_scratch_;
    exec::ParallelFor(n, grain, [&](const exec::Chunk& chunk) {
      ChunkOutbox& out = outboxes[static_cast<std::size_t>(chunk.index)];
      sim::ScopedLedger bind(&out.ledger);
      for (std::int64_t i = chunk.begin; i < chunk.end; ++i) {
        std::size_t s = static_cast<std::size_t>(i);
        auto& v = vertices_[s];
        Context ctx(this, s, &out);
        const auto& in = inboxes.size() > s ? inboxes[s] : kEmpty;
        compute(v, in, ctx);
        double logical = v.scale;
        sim_->ChargeParallelCpuOnMachine(
            MachineOf(s),
            logical * lang_.per_record_s +
                lang_.LinalgSeconds(logical * cost.flops_per_vertex,
                                    logical * cost.linalg_calls_per_vertex,
                                    cost.dim,
                                    logical * cost.elements_per_vertex));
      }
    });
    // Commit chunk effects in chunk-index order — the exact serial
    // sequence. Ledgers replay through one batched call (the checks hoist
    // out of the per-op loop); compute contexts can only charge CPU, so
    // the commit cannot fail.
    {
      exec::ScratchVec<sim::ChargeLedger*> ledger_lease;
      std::vector<sim::ChargeLedger*>& ledgers = ledger_lease.get();
      ledgers.resize(n_chunks);
      for (std::size_t c = 0; c < n_chunks; ++c) {
        ledgers[c] = &outboxes[c].ledger;
      }
      MLBENCH_CHECK(sim_->CommitLedgers(ledgers.data(), n_chunks).ok());
    }
    for (std::size_t c = 0; c < n_chunks; ++c) {
      for (auto& a : outboxes[c].agg_calls) {
        AggregateInto(a.name, a.value, a.bytes, a.sender);
      }
    }

    // Route pending messages straight out of the chunk outboxes (in chunk
    // = vertex order): combine per (sender machine, dst), then ship.
    Status st = FlushMessages(outboxes, n_chunks);

    for (int m = 0; m < sim_->machines(); ++m) sim_->Free(m, resident[m]);

    // Aggregators: every worker ships its partials to the master, which
    // rebroadcasts; tiny memory, real network.
    double agg_bytes = 0;
    for (auto& [name, agg] : next_aggregates_) agg_bytes += agg.bytes;
    sim_->ChargeNetworkAll(agg_bytes);

    double wall = sim_->EndPhase();
    wall_since_checkpoint_.push_back(wall);

    // Crash recovery: Giraph restarts the job from the last checkpoint —
    // workers relaunch, reload the checkpointed graph from DFS, and
    // replay every superstep since (this one included). With
    // checkpointing off that means replaying from superstep 0. The
    // replay is charged, never re-executed, so RNG streams and results
    // are untouched.
    if (faults_on && worst_crash > 0 && st.ok()) {
      const sim::RetryPolicy& retry = inj->retry();
      sim_->BeginPhase("bsp:recovery");
      sim_->ChargeFixed(retry.BackoffSeconds(worst_crash) +
                        costs_.job_launch_s);
      for (int m = 0; m < sim_->machines(); ++m) {
        sim_->ChargeCpu(m,
                        machine_state_bytes_[static_cast<std::size_t>(m)] /
                            sim_->spec().machine.disk_bytes_per_sec);
      }
      double replay = 0;
      for (double w : wall_since_checkpoint_) replay += w;
      sim_->ChargeFixed(replay * static_cast<double>(worst_crash));
      double rt = sim_->EndPhase();
      inj->RecordRecovery({sim::FaultKind::kCrash, "bsp:superstep", unit,
                           crash_machine, rt});
    }

    ++superstep_;
    return st;
  }

  /// Number of supersteps completed.
  int superstep() const { return superstep_; }

 private:
  friend class Context;

  struct Aggregate {
    std::vector<double> value;
    double bytes = 0;
  };

  struct InboxMeta {
    double logical_count = 0;
    double total_bytes = 0;
  };

  /// Builds a routed message. Only reads vertex placement and the (frozen
  /// during compute) slot map, so it is safe from concurrent chunks.
  PendingMsg MakePending(std::size_t sender, VertexId dst, Msg m, double bytes,
                         double logical, bool replicated) const {
    auto it = slot_of_.find(dst);
    MLBENCH_CHECK_MSG(it != slot_of_.end(), "message to unknown vertex");
    PendingMsg p;
    p.dst_slot = it->second;
    p.msg = std::move(m);
    p.bytes = bytes;
    p.logical = logical;
    p.src_machine = MachineOf(sender);
    p.replicated = replicated;
    return p;
  }

  void AggregateInto(const std::string& name, const std::vector<double>& v,
                     double bytes, std::size_t sender) {
    auto& agg = next_aggregates_[name];
    agg.bytes = bytes;
    double s = vertices_[sender].scale;
    if (agg.value.size() < v.size()) agg.value.resize(v.size(), 0.0);
    for (std::size_t i = 0; i < v.size(); ++i) agg.value[i] += v[i] * s;
  }

  const std::vector<double>& PreviousAggregate(const std::string& name) {
    static const std::vector<double> kEmpty;
    auto it = prev_aggregates_.find(name);
    return it == prev_aggregates_.end() ? kEmpty : it->second.value;
  }

  Status FlushMessages(std::vector<ChunkOutbox>& outboxes,
                       std::size_t n_chunks) {
    if (next_inbox_.size() < vertices_.size()) {
      next_inbox_.resize(vertices_.size());
    }
    if (inbox_meta_.size() < vertices_.size()) {
      inbox_meta_.resize(vertices_.size());
    }
    if (combiner_) {
      // Sender-side combine per (source machine, destination vertex). One
      // flat entry vector plus a generation-stamped open-addressing index
      // (FlatIndex), both reused across supersteps — no per-entry node
      // allocation, O(1) reset. Entries are delivered in first-seen order
      // — a pure function of the chunk-ordered pending sequence (which
      // concatenates to vertex order), so delivery is deterministic and
      // thread-count independent.
      combine_index_.Clear();
      combine_entries_.clear();
      for (std::size_t c = 0; c < n_chunks; ++c) {
        for (auto& p : outboxes[c].pending) {
          std::uint64_t key =
              (static_cast<std::uint64_t>(p.src_machine) << 48) |
              static_cast<std::uint64_t>(p.dst_slot);
          bool inserted = false;
          std::size_t* slot = combine_index_.FindOrInsert(key, &inserted);
          if (inserted) {
            *slot = combine_entries_.size();
            CombineEntry e;
            e.logical_in = p.logical;
            if (p.replicated) {
              e.has_replicate = true;
              e.replicate_out = p.logical;
            }
            e.msg = std::move(p);
            combine_entries_.push_back(std::move(e));
          } else {
            CombineEntry& e = combine_entries_[*slot];
            e.logical_in += p.logical;
            if (p.replicated) {
              e.has_replicate = true;
              e.replicate_out = std::max(e.replicate_out, p.logical);
            }
            e.msg.msg = combiner_(e.msg.msg, p.msg);
          }
        }
      }
      for (CombineEntry& e : combine_entries_) {
        // Folded messages collapse to one per (machine, dst); replicated
        // (broadcast) messages still deliver one copy per logical
        // recipient. Appending combiners grow the payload: recompute its
        // size if a size function was registered.
        PendingMsg& p = e.msg;
        if (size_fn_) p.bytes = size_fn_(p.msg);
        double shipped = e.has_replicate ? e.replicate_out : 1.0;
        ChargeMessage(p, e.logical_in, shipped);
        DeliverMessage(std::move(p), shipped);
      }
    } else {
      for (std::size_t c = 0; c < n_chunks; ++c) {
        for (auto& p : outboxes[c].pending) {
          ChargeMessage(p, p.logical, p.logical);
          DeliverMessage(std::move(p), p.logical);
        }
      }
    }
    return Status::OK();
  }

  void ChargeMessage(const PendingMsg& p, double handled_logical,
                     double shipped_logical) {
    // Handling every logical input message costs framework time at the
    // sender; only the shipped (post-combine) messages serialize + travel.
    sim_->ChargeParallelCpuOnMachine(p.src_machine,
                                     handled_logical * costs_.per_message_s);
    // Replicated (broadcast) messages cross the wire once per destination
    // worker and fan out to the logical recipients locally (the paper's
    // codes use a naming scheme / worker-level broadcast for this);
    // folded messages ship each logical copy.
    double wire = p.replicated ? p.bytes : shipped_logical * p.bytes;
    sim_->ChargeParallelCpuOnMachine(p.src_machine,
                                     wire * lang_.per_serialized_byte_s);
    if (MachineOf(p.dst_slot) != p.src_machine) {
      sim_->ChargeNetwork(p.src_machine, wire);
    }
  }

  void DeliverMessage(PendingMsg p, double shipped_logical) {
    auto& meta = inbox_meta_[p.dst_slot];
    meta.logical_count += shipped_logical;
    meta.total_bytes += shipped_logical * p.bytes;
    next_inbox_[p.dst_slot].push_back(std::move(p.msg));
  }

  sim::ClusterSim* sim_;
  sim::BspCosts costs_;
  sim::LanguageModel lang_;

  std::vector<Vertex> vertices_;
  std::unordered_map<VertexId, std::size_t> slot_of_;
  CombinerFn combiner_;
  std::function<double(const Msg&)> size_fn_;
  bool out_of_core_ = false;
  bool booted_ = false;
  double peer_bytes_ = 0;
  int superstep_ = 0;
  int checkpoint_interval_ = 0;
  /// Graph-state bytes per machine (checkpoint write / reload charges).
  std::vector<double> machine_state_bytes_;
  /// Wall time of each superstep since the last checkpoint: the replay
  /// bill a crash pays.
  std::vector<double> wall_since_checkpoint_;

  /// Message double-buffer: compute reads inbox_, delivery fills
  /// next_inbox_; RunSuperstep swaps them so inner vectors keep their
  /// capacity across supersteps.
  std::vector<std::vector<Msg>> inbox_;
  std::vector<std::vector<Msg>> next_inbox_;
  std::vector<InboxMeta> inbox_meta_;
  /// Ordered by name: EndSuperstep sums each aggregate's wire bytes while
  /// iterating, and that floating-point fold must not depend on hash
  /// bucket layout.
  std::map<std::string, Aggregate> prev_aggregates_;
  std::map<std::string, Aggregate> next_aggregates_;

  /// One combined message per (source machine, destination vertex), plus
  /// the bookkeeping FlushMessages needs to charge and deliver it.
  struct CombineEntry {
    PendingMsg msg;
    double logical_in = 0;
    double replicate_out = 0;
    bool has_replicate = false;
  };
  /// Reused combiner scratch (see FlushMessages).
  common::FlatIndex combine_index_;
  std::vector<CombineEntry> combine_entries_;
  /// Reused per-chunk compute outboxes (see RunSuperstep).
  std::vector<ChunkOutbox> outbox_scratch_;
  /// Hash-placement cache, filled by Boot (see MachineOf).
  std::vector<int> machine_of_;
  /// Residency accumulators reused across supersteps (see RunSuperstep).
  std::vector<double> resident_scratch_;
  std::vector<double> spilled_scratch_;
  std::vector<double> churn_scratch_;
};

}  // namespace mlbench::bsp
