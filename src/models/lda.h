#pragma once

#include <cstdint>
#include <vector>

#include "kernels/categorical.h"
#include "kernels/emission.h"
#include "linalg/vector.h"
#include "stats/rng.h"

/// \file lda.h
/// Non-collapsed latent Dirichlet allocation (paper Section 8). The paper
/// deliberately benchmarks the *non-collapsed* Gibbs sampler: topic
/// assignments z, per-document topic distributions theta_j, and per-topic
/// word distributions phi_t are all sampled explicitly, which keeps the
/// parallel updates exact (no collapsed-sampler correlation shortcuts).

namespace mlbench::models {

using linalg::Vector;

struct LdaHyper {
  std::size_t topics = 100;
  std::size_t vocab = 10000;
  double alpha = 0.5;  ///< Dirichlet prior on theta_j
  double beta = 0.1;   ///< Dirichlet prior on phi_t
};

/// Global topic-word model.
struct LdaParams {
  std::vector<Vector> phi;  ///< per-topic word rows (T x V)
};

/// A document: word ids, topic assignments, and its theta_j draw.
struct LdaDocument {
  std::vector<std::uint32_t> words;
  std::vector<std::uint8_t> topics;
  Vector theta;
};

/// Per-topic word counts g(t, w).
struct LdaCounts {
  std::vector<Vector> g;  ///< g[t][w]

  LdaCounts() = default;
  LdaCounts(std::size_t topics, std::size_t vocab)
      : g(topics, Vector(vocab)) {}
  LdaCounts& Merge(const LdaCounts& o) {
    if (g.empty()) {
      *this = o;
      return *this;
    }
    for (std::size_t t = 0; t < g.size(); ++t) g[t] += o.g[t];
    return *this;
  }
};

/// Draws phi from the prior.
LdaParams SampleLdaPrior(stats::Rng& rng, const LdaHyper& hyper);

/// Initializes a document: uniform theta and random topic assignments.
void InitLdaDocument(stats::Rng& rng, const LdaHyper& hyper,
                     LdaDocument* doc);

/// One document's Gibbs step: re-sample every z_jk given (theta_j, phi),
/// then theta_j given the new assignments. Accumulates g(t,w) into
/// `counts` for the global phi update. Reference implementation of the
/// fused LdaDocSampler below; kept as the parity baseline.
void ResampleLdaDocument(stats::Rng& rng, const LdaHyper& hyper,
                         const LdaParams& params, LdaDocument* doc,
                         LdaCounts* counts);

/// Per-iteration document sampler on the fused kernels: Prepare() once per
/// phi draw (caching phi transposed or via row pointers, by expected token
/// volume), then Resample per document with reusable buffers and no
/// per-document allocation. Draws (topics and theta) are bit-identical to
/// ResampleLdaDocument.
class LdaDocSampler {
 public:
  void Prepare(const LdaHyper& hyper, const LdaParams& params,
               std::size_t expected_tokens);

  void Resample(stats::Rng& rng, LdaDocument* doc, LdaCounts* counts);

 private:
  LdaHyper hyper_;
  kernels::EmissionTable phi_;
  kernels::CategoricalScratch cat_;
  std::vector<double> doc_topic_counts_;
  std::vector<double> conc_;
};

/// phi_t ~ Dirichlet(beta + g(t, .)).
LdaParams SampleLdaPosterior(stats::Rng& rng, const LdaHyper& hyper,
                             const LdaCounts& counts);

/// Joint log-likelihood contribution of a document under (theta, phi);
/// used by convergence tests.
double LdaDocLogLikelihood(const LdaDocument& doc, const LdaParams& params);

/// FLOPs to re-sample one word's topic (T weight evaluations).
double TopicUpdateFlops(std::size_t topics);

/// Bytes of the serialized phi model per copy.
double LdaModelBytes(const LdaHyper& hyper, double bytes_per_entry = 8.0);

}  // namespace mlbench::models
