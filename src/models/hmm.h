#pragma once

#include <cstdint>
#include <vector>

#include "kernels/hmm_forward.h"
#include "linalg/vector.h"
#include "stats/rng.h"

/// \file hmm.h
/// Hidden Markov model for text (paper Section 7): K hidden states over a
/// V-word dictionary, with per-state emission vectors Psi_s, transition
/// vectors delta_s, and a start-state vector delta_0. The sampler updates
/// every *other* state assignment per iteration (even positions on even
/// iterations, odd on odd), exactly as the paper specifies.

namespace mlbench::models {

using linalg::Vector;

struct HmmHyper {
  std::size_t states = 20;
  std::size_t vocab = 10000;
  double alpha = 1.0;  ///< Dirichlet prior on transitions / start state
  double beta = 0.1;   ///< Dirichlet prior on emissions
};

struct HmmParams {
  Vector delta0;               ///< start-state distribution (K)
  std::vector<Vector> delta;   ///< per-state transition rows (K x K)
  std::vector<Vector> psi;     ///< per-state emission rows (K x V)
};

/// Count statistics f(w,s), g(s), h(s,s') of Section 7.
struct HmmCounts {
  std::vector<Vector> f;  ///< emissions: f[s][w]
  Vector g;               ///< start states: g[s]
  std::vector<Vector> h;  ///< transitions: h[s][s']

  HmmCounts() = default;
  HmmCounts(std::size_t states, std::size_t vocab);
  HmmCounts& Merge(const HmmCounts& o);
};

/// A document: its word ids and current state assignments.
struct HmmDocument {
  std::vector<std::uint32_t> words;
  std::vector<std::uint8_t> states;
};

/// Draws the initial model from the prior.
HmmParams SampleHmmPrior(stats::Rng& rng, const HmmHyper& hyper);

/// Randomly initializes the state sequence of a document.
void InitHmmStates(stats::Rng& rng, std::size_t states, HmmDocument* doc);

/// Re-samples the parity-matching state assignments of one document for
/// iteration `iteration` (paper's alternating update), in place.
/// Reference implementation of the fused HmmSampler below; kept as the
/// parity baseline and for one-off calls.
void ResampleHmmStates(stats::Rng& rng, const HmmParams& params,
                       int iteration, HmmDocument* doc);

/// Per-iteration state sampler on the fused kernel: Prepare() once per
/// model draw (caching transitions flat and emissions transposed or via
/// row pointers, by expected token volume), then Resample per document.
/// Draws are bit-identical to ResampleHmmStates.
class HmmSampler {
 public:
  void Prepare(const HmmParams& params, std::size_t expected_tokens) {
    scratch_.Prepare(params.delta0, params.delta, params.psi,
                     expected_tokens);
  }

  void Resample(stats::Rng& rng, int iteration, HmmDocument* doc) {
    scratch_.ResampleStates(rng, iteration, doc->words, &doc->states);
  }

 private:
  kernels::HmmStateScratch scratch_;
};

/// Accumulates a document's counts into `counts`.
void AccumulateHmmCounts(const HmmDocument& doc, HmmCounts* counts);

/// Draws Psi, delta, delta0 from the accumulated counts.
HmmParams SampleHmmPosterior(stats::Rng& rng, const HmmHyper& hyper,
                             const HmmCounts& counts);

/// FLOPs to re-sample one word's state (K weight evaluations).
double StateUpdateFlops(std::size_t states);

/// Bytes of the serialized model (Psi + delta + delta0), per copy.
double HmmModelBytes(const HmmHyper& hyper, double bytes_per_entry = 8.0);

/// Bytes of one document's serialized count contribution before any
/// aggregation (sparse f entries + transitions).
double HmmDocCountBytes(std::size_t doc_words, double bytes_per_entry = 16.0);

}  // namespace mlbench::models
