#include "models/gmm.h"

#include <cmath>

#include "stats/distributions.h"

namespace mlbench::models {

void GmmSuffStats::Add(const Vector& x) {
  n += 1;
  sum_x += x;
  sum_outer += Matrix::Outer(x, x);
}

GmmSuffStats& GmmSuffStats::Merge(const GmmSuffStats& o) {
  if (o.sum_x.empty()) return *this;
  if (sum_x.empty()) {
    *this = o;
    return *this;
  }
  n += o.n;
  sum_x += o.sum_x;
  sum_outer += o.sum_outer;
  return *this;
}

GmmHyper EmpiricalHyper(std::size_t k, const std::vector<Vector>& data) {
  MLBENCH_CHECK(!data.empty());
  const std::size_t d = data[0].size();
  GmmHyper h;
  h.k = k;
  h.dim = d;
  h.alpha = 1.0;
  h.mu0 = Vector(d);
  for (const auto& x : data) h.mu0 += x;
  h.mu0 /= static_cast<double>(data.size());
  Vector var(d);
  for (const auto& x : data) {
    for (std::size_t i = 0; i < d; ++i) {
      double dv = x[i] - h.mu0[i];
      var[i] += dv * dv;
    }
  }
  var /= static_cast<double>(data.size());
  for (std::size_t i = 0; i < d; ++i) var[i] = std::max(var[i], 1e-6);
  h.psi = Matrix::Diagonal(var);
  Vector prec(d);
  for (std::size_t i = 0; i < d; ++i) prec[i] = 1.0 / var[i];
  h.lambda0 = Matrix::Diagonal(prec);
  h.v = static_cast<double>(d) + 2.0;
  return h;
}

Result<GmmParams> SamplePrior(stats::Rng& rng, const GmmHyper& hyper) {
  GmmParams p;
  p.pi = Vector(hyper.k, 1.0 / static_cast<double>(hyper.k));
  MLBENCH_ASSIGN_OR_RETURN(Matrix prior_cov, linalg::InverseSpd(hyper.lambda0));
  for (std::size_t k = 0; k < hyper.k; ++k) {
    MLBENCH_ASSIGN_OR_RETURN(
        Vector mu, stats::SampleMultivariateNormal(rng, hyper.mu0, prior_cov));
    MLBENCH_ASSIGN_OR_RETURN(
        Matrix sigma, stats::SampleInverseWishart(rng, hyper.v, hyper.psi));
    p.mu.push_back(std::move(mu));
    p.sigma.push_back(std::move(sigma));
  }
  return p;
}

Result<Vector> MembershipWeights(const Vector& x, const GmmParams& params) {
  const std::size_t k = params.pi.size();
  Vector logw(k);
  double max_lw = -1e300;
  for (std::size_t c = 0; c < k; ++c) {
    MLBENCH_ASSIGN_OR_RETURN(
        double lp,
        stats::MultivariateNormalLogPdf(x, params.mu[c], params.sigma[c]));
    logw[c] = std::log(std::max(params.pi[c], 1e-300)) + lp;
    max_lw = std::max(max_lw, logw[c]);
  }
  Vector w(k);
  for (std::size_t c = 0; c < k; ++c) w[c] = std::exp(logw[c] - max_lw);
  return w;
}

Result<std::size_t> SampleMembership(stats::Rng& rng, const Vector& x,
                                     const GmmParams& params) {
  MLBENCH_ASSIGN_OR_RETURN(Vector w, MembershipWeights(x, params));
  return stats::SampleCategorical(rng, w);
}

Result<GmmMembershipSampler> GmmMembershipSampler::Build(
    const GmmParams& params) {
  GmmMembershipSampler s;
  const std::size_t k = params.pi.size();
  s.mu_ = params.mu;
  s.log_pi_norm_ = Vector(k);
  for (std::size_t c = 0; c < k; ++c) {
    MLBENCH_ASSIGN_OR_RETURN(Matrix l, linalg::Cholesky(params.sigma[c]));
    double logdet = 0;
    for (std::size_t i = 0; i < l.rows(); ++i) logdet += std::log(l(i, i));
    s.log_pi_norm_[c] = std::log(std::max(params.pi[c], 1e-300)) - logdet;
    s.chol_.push_back(std::move(l));
  }
  return s;
}

Vector GmmMembershipSampler::Weights(const Vector& x) const {
  const std::size_t k = mu_.size();
  Vector logw(k);
  double max_lw = -1e300;
  for (std::size_t c = 0; c < k; ++c) {
    Vector y = linalg::ForwardSubstitute(chol_[c], x - mu_[c]);
    logw[c] = log_pi_norm_[c] - 0.5 * linalg::Dot(y, y);
    max_lw = std::max(max_lw, logw[c]);
  }
  Vector w(k);
  for (std::size_t c = 0; c < k; ++c) w[c] = std::exp(logw[c] - max_lw);
  return w;
}

std::size_t GmmMembershipSampler::Sample(stats::Rng& rng,
                                         const Vector& x) const {
  return stats::SampleCategorical(rng, Weights(x));
}

std::size_t GmmMembershipSampler::Sample(stats::Rng& rng, const Vector& x,
                                         Scratch* scratch) const {
  return kernels::FusedMvnMembership(rng, x, mu_, chol_, log_pi_norm_,
                                     scratch);
}

void GmmMembershipSampler::SampleBlock(stats::Rng& rng,
                                       const std::vector<Vector>& points,
                                       Scratch* scratch,
                                       std::vector<std::size_t>* out) const {
  out->resize(points.size());
  for (std::size_t j = 0; j < points.size(); ++j) {
    (*out)[j] = kernels::FusedMvnMembership(rng, points[j], mu_, chol_,
                                            log_pi_norm_, scratch);
  }
}

Result<std::pair<Vector, Matrix>> SampleClusterPosterior(
    stats::Rng& rng, const GmmHyper& hyper, const GmmSuffStats& stats) {
  const std::size_t d = hyper.dim;
  // Posterior precision of mu: Lambda0 + n * Sigma^-1 -- the paper's codes
  // use the conjugate normal update with the previous Sigma draw replaced
  // by the scatter-based estimate; we follow the papers' update equations:
  //   mu ~ Normal((Lambda0 + n Psi_hat^-1)^-1 (Lambda0 mu0 + Psi_hat^-1 sum_x),
  //               (Lambda0 + n Psi_hat^-1)^-1)
  //   Sigma ~ InvWishart(n + v, Psi + scatter(mu))
  // where Psi_hat is the current scatter estimate.
  GmmSuffStats s = stats;
  if (s.sum_x.empty()) s = GmmSuffStats(d);

  // Scatter estimate around the empirical component mean.
  Matrix sigma_hat = hyper.psi;
  Vector xbar = hyper.mu0;
  if (s.n > 0.5) {
    xbar = s.sum_x * (1.0 / s.n);
    sigma_hat = s.sum_outer * (1.0 / s.n) - Matrix::Outer(xbar, xbar);
    for (std::size_t i = 0; i < d; ++i) {
      sigma_hat(i, i) = std::max(sigma_hat(i, i), 1e-8);
    }
  }
  Result<Matrix> sigma_hat_inv = linalg::InverseSpd(sigma_hat);
  if (!sigma_hat_inv.ok()) sigma_hat_inv = linalg::InverseSpd(hyper.psi);
  MLBENCH_ASSIGN_OR_RETURN(Matrix prec_data, sigma_hat_inv);

  Matrix post_prec = hyper.lambda0 + prec_data * s.n;
  MLBENCH_ASSIGN_OR_RETURN(Matrix post_cov, linalg::InverseSpd(post_prec));
  Vector rhs = linalg::MatVec(hyper.lambda0, hyper.mu0) +
               linalg::MatVec(prec_data, s.sum_x);
  Vector post_mean = linalg::MatVec(post_cov, rhs);
  MLBENCH_ASSIGN_OR_RETURN(
      Vector mu, stats::SampleMultivariateNormal(rng, post_mean, post_cov));

  // Sigma | mu: InvWishart(n + v, Psi + sum_j (x_j - mu)(x_j - mu)^T).
  Matrix scatter = s.sum_outer - Matrix::Outer(mu, s.sum_x) -
                   Matrix::Outer(s.sum_x, mu) + Matrix::Outer(mu, mu) * s.n;
  Matrix scale = hyper.psi + scatter;
  // Symmetrize against roundoff before the Cholesky inside InvWishart.
  for (std::size_t r = 0; r < d; ++r) {
    for (std::size_t c = r + 1; c < d; ++c) {
      double avg = 0.5 * (scale(r, c) + scale(c, r));
      scale(r, c) = scale(c, r) = avg;
    }
  }
  MLBENCH_ASSIGN_OR_RETURN(
      Matrix sigma, stats::SampleInverseWishart(rng, s.n + hyper.v, scale));
  return std::make_pair(std::move(mu), std::move(sigma));
}

Vector SampleMixingProportions(stats::Rng& rng, const GmmHyper& hyper,
                               const std::vector<double>& counts) {
  Vector conc(counts.size());
  for (std::size_t k = 0; k < counts.size(); ++k) {
    conc[k] = hyper.alpha + counts[k];
  }
  return stats::SampleDirichlet(rng, conc);
}

double MembershipFlops(std::size_t k, std::size_t dim) {
  double d = static_cast<double>(dim);
  return static_cast<double>(k) * (2.0 * d * d + 6.0 * d);
}

double SuffStatFlops(std::size_t dim) {
  double d = static_cast<double>(dim);
  return 2.0 * d * d + d;
}

double ClusterUpdateFlops(std::size_t dim) {
  double d = static_cast<double>(dim);
  // A few Choleskys / inversions: c * d^3.
  return 4.0 * d * d * d;
}

}  // namespace mlbench::models
