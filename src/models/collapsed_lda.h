#pragma once

#include <cstdint>
#include <vector>

#include "kernels/lda_token.h"
#include "models/lda.h"
#include "stats/rng.h"

/// \file collapsed_lda.h
/// The *collapsed* LDA Gibbs sampler (theta and phi integrated out),
/// which the paper deliberately excludes from the benchmark: "It is very
/// challenging to parallelize the collapsed LDA Gibbs sampler correctly
/// because of the complex correlation structure that the collapsing
/// induces among the updates" (Section 8). We implement it as an
/// extension so the ablation bench can quantify that trade-off: the
/// collapsed chain mixes faster per sweep, while the "approximate
/// parallel" variant most distributed systems shipped updates stale
/// counts the way the paper is uncomfortable with.
///
/// The count state lives in kernels::CollapsedCounts (word-major flat
/// arrays + fused token kernel); draws are bit-identical to the original
/// row-major two-pass implementation, which tests/kernels_test.cc keeps
/// as the reference.

namespace mlbench::models {

/// Count state of the collapsed sampler.
class CollapsedLda {
 public:
  CollapsedLda(const LdaHyper& hyper, std::vector<LdaDocument> docs,
               std::uint64_t seed);

  /// One exact sequential Gibbs sweep over every token.
  void Sweep();

  /// One "approximate parallel" sweep: all tokens are re-sampled against a
  /// frozen snapshot of the global counts (the concurrent-update shortcut
  /// of parallel collapsed samplers), then the counts are rebuilt.
  void ApproximateParallelSweep();

  /// Joint log-likelihood proxy: sum over tokens of log p(w | z, counts).
  double TokenLogLikelihood() const;

  /// Posterior-mean estimate of phi from the current counts.
  LdaParams EstimatePhi() const;

  const std::vector<LdaDocument>& docs() const { return docs_; }

 private:
  void RebuildCounts();

  LdaHyper hyper_;
  std::vector<LdaDocument> docs_;
  stats::Rng rng_;
  kernels::CollapsedCounts counts_;
};

}  // namespace mlbench::models
