#include "models/lda.h"

#include <cmath>

#include "common/logging.h"
#include "stats/distributions.h"

namespace mlbench::models {

LdaParams SampleLdaPrior(stats::Rng& rng, const LdaHyper& hyper) {
  LdaParams p;
  Vector beta_v(hyper.vocab, hyper.beta);
  for (std::size_t t = 0; t < hyper.topics; ++t) {
    p.phi.push_back(stats::SampleDirichlet(rng, beta_v));
  }
  return p;
}

void InitLdaDocument(stats::Rng& rng, const LdaHyper& hyper,
                     LdaDocument* doc) {
  doc->topics.resize(doc->words.size());
  for (auto& t : doc->topics) {
    t = static_cast<std::uint8_t>(rng.NextBounded(hyper.topics));
  }
  doc->theta = Vector(hyper.topics, 1.0 / static_cast<double>(hyper.topics));
}

void ResampleLdaDocument(stats::Rng& rng, const LdaHyper& hyper,
                         const LdaParams& params, LdaDocument* doc,
                         LdaCounts* counts) {
  const std::size_t t_count = hyper.topics;
  Vector w(t_count);
  Vector doc_topic_counts(t_count);
  for (std::size_t pos = 0; pos < doc->words.size(); ++pos) {
    std::uint32_t word = doc->words[pos];
    for (std::size_t t = 0; t < t_count; ++t) {
      w[t] = doc->theta[t] * params.phi[t][word];
    }
    double total = w.Sum();
    std::size_t z = total > 0
                        ? stats::SampleCategorical(rng, w)
                        : rng.NextBounded(t_count);
    doc->topics[pos] = static_cast<std::uint8_t>(z);
    doc_topic_counts[z] += 1;
    if (counts != nullptr) counts->g[z][word] += 1;
  }
  // theta_j ~ Dirichlet(alpha + f(j, .)).
  Vector conc = doc_topic_counts;
  for (auto& v : conc) v += hyper.alpha;
  doc->theta = stats::SampleDirichlet(rng, conc);
}

void LdaDocSampler::Prepare(const LdaHyper& hyper, const LdaParams& params,
                            std::size_t expected_tokens) {
  hyper_ = hyper;
  phi_.Prepare(params.phi, expected_tokens);
}

void LdaDocSampler::Resample(stats::Rng& rng, LdaDocument* doc,
                             LdaCounts* counts) {
  const std::size_t t_count = hyper_.topics;
  double* cum = cat_.Ensure(t_count);
  doc_topic_counts_.assign(t_count, 0.0);
  const double* theta = doc->theta.data();
  const bool tr = phi_.transposed();
  const double* const* rows = tr ? nullptr : phi_.RowPointers();
  for (std::size_t pos = 0; pos < doc->words.size(); ++pos) {
    std::uint32_t word = doc->words[pos];
    // Fused weight + prefix-sum pass; additions in topic order, so the
    // total and scan match the reference two-pass code bit-for-bit.
    double acc = 0;
    if (tr) {
      const double* col = phi_.Column(word);
      for (std::size_t t = 0; t < t_count; ++t) {
        acc += theta[t] * col[t];
        cum[t] = acc;
      }
    } else {
      for (std::size_t t = 0; t < t_count; ++t) {
        acc += theta[t] * rows[t][word];
        cum[t] = acc;
      }
    }
    std::size_t z = acc > 0
                        ? kernels::SampleFromCumulative(rng, cum, t_count)
                        : rng.NextBounded(t_count);
    doc->topics[pos] = static_cast<std::uint8_t>(z);
    doc_topic_counts_[z] += 1;
    if (counts != nullptr) counts->g[z][word] += 1;
  }
  // theta_j ~ Dirichlet(alpha + f(j, .)), drawn in place.
  conc_.resize(t_count);
  for (std::size_t t = 0; t < t_count; ++t) {
    conc_[t] = doc_topic_counts_[t] + hyper_.alpha;
  }
  if (doc->theta.size() != t_count) doc->theta = Vector(t_count);
  stats::SampleDirichlet(rng, conc_.data(), t_count, doc->theta.data());
}

LdaParams SampleLdaPosterior(stats::Rng& rng, const LdaHyper& hyper,
                             const LdaCounts& counts) {
  MLBENCH_CHECK(counts.g.size() == hyper.topics);
  LdaParams p;
  for (std::size_t t = 0; t < hyper.topics; ++t) {
    Vector conc = counts.g[t];
    for (auto& v : conc) v += hyper.beta;
    p.phi.push_back(stats::SampleDirichlet(rng, conc));
  }
  return p;
}

double LdaDocLogLikelihood(const LdaDocument& doc, const LdaParams& params) {
  double ll = 0;
  for (std::size_t pos = 0; pos < doc.words.size(); ++pos) {
    double pw = 0;
    for (std::size_t t = 0; t < params.phi.size(); ++t) {
      pw += doc.theta[t] * params.phi[t][doc.words[pos]];
    }
    ll += std::log(std::max(pw, 1e-300));
  }
  return ll;
}

double TopicUpdateFlops(std::size_t topics) {
  return 4.0 * static_cast<double>(topics);
}

double LdaModelBytes(const LdaHyper& hyper, double bytes_per_entry) {
  return bytes_per_entry * static_cast<double>(hyper.topics) *
         static_cast<double>(hyper.vocab);
}

}  // namespace mlbench::models
