#include "models/collapsed_lda.h"

#include <cmath>

#include "common/logging.h"
#include "stats/distributions.h"

namespace mlbench::models {

CollapsedLda::CollapsedLda(const LdaHyper& hyper,
                           std::vector<LdaDocument> docs, std::uint64_t seed)
    : hyper_(hyper), docs_(std::move(docs)), rng_(seed) {
  for (auto& doc : docs_) {
    if (doc.topics.size() != doc.words.size()) {
      InitLdaDocument(rng_, hyper_, &doc);
    }
  }
  RebuildCounts();
}

void CollapsedLda::RebuildCounts() {
  n_tw_.assign(hyper_.topics, std::vector<double>(hyper_.vocab, 0.0));
  n_t_.assign(hyper_.topics, 0.0);
  n_dt_.assign(docs_.size(), std::vector<double>(hyper_.topics, 0.0));
  for (std::size_t d = 0; d < docs_.size(); ++d) {
    for (std::size_t pos = 0; pos < docs_[d].words.size(); ++pos) {
      std::size_t t = docs_[d].topics[pos];
      n_tw_[t][docs_[d].words[pos]] += 1;
      n_t_[t] += 1;
      n_dt_[d][t] += 1;
    }
  }
}

double CollapsedLda::TopicWeight(std::size_t doc, std::uint32_t word,
                                 std::size_t t) const {
  // Callers remove the token's own counts before evaluating.
  double v = static_cast<double>(hyper_.vocab);
  return (n_dt_[doc][t] + hyper_.alpha) *
         (n_tw_[t][word] + hyper_.beta) /
         (n_t_[t] + hyper_.beta * v);
}

void CollapsedLda::Sweep() {
  linalg::Vector w(hyper_.topics);
  for (std::size_t d = 0; d < docs_.size(); ++d) {
    auto& doc = docs_[d];
    for (std::size_t pos = 0; pos < doc.words.size(); ++pos) {
      std::uint32_t word = doc.words[pos];
      std::size_t old_t = doc.topics[pos];
      // Remove the token's own count, sample, re-add.
      n_tw_[old_t][word] -= 1;
      n_t_[old_t] -= 1;
      n_dt_[d][old_t] -= 1;
      for (std::size_t t = 0; t < hyper_.topics; ++t) {
        w[t] = TopicWeight(d, word, t);
      }
      std::size_t new_t = stats::SampleCategorical(rng_, w);
      doc.topics[pos] = static_cast<std::uint8_t>(new_t);
      n_tw_[new_t][word] += 1;
      n_t_[new_t] += 1;
      n_dt_[d][new_t] += 1;
    }
  }
}

void CollapsedLda::ApproximateParallelSweep() {
  // Every token samples against the sweep-start snapshot (ignoring
  // concurrent updates), then the counts rebuild -- the shortcut the
  // paper declines to benchmark as "aggressive (and somewhat
  // questionable)".
  auto n_tw_snap = n_tw_;
  auto n_t_snap = n_t_;
  auto n_dt_snap = n_dt_;
  linalg::Vector w(hyper_.topics);
  double v = static_cast<double>(hyper_.vocab);
  for (std::size_t d = 0; d < docs_.size(); ++d) {
    auto& doc = docs_[d];
    for (std::size_t pos = 0; pos < doc.words.size(); ++pos) {
      std::uint32_t word = doc.words[pos];
      std::size_t old_t = doc.topics[pos];
      for (std::size_t t = 0; t < hyper_.topics; ++t) {
        double excl = old_t == t ? 1.0 : 0.0;
        w[t] = (n_dt_snap[d][t] - excl + hyper_.alpha) *
               (n_tw_snap[t][word] - excl + hyper_.beta) /
               (n_t_snap[t] - excl + hyper_.beta * v);
      }
      doc.topics[pos] =
          static_cast<std::uint8_t>(stats::SampleCategorical(rng_, w));
    }
  }
  RebuildCounts();
}

double CollapsedLda::TokenLogLikelihood() const {
  double v = static_cast<double>(hyper_.vocab);
  double ll = 0;
  for (std::size_t d = 0; d < docs_.size(); ++d) {
    const auto& doc = docs_[d];
    double doc_total = 0;
    for (std::size_t t = 0; t < hyper_.topics; ++t) {
      doc_total += n_dt_[d][t] + hyper_.alpha;
    }
    for (std::size_t pos = 0; pos < doc.words.size(); ++pos) {
      std::uint32_t word = doc.words[pos];
      double pw = 0;
      for (std::size_t t = 0; t < hyper_.topics; ++t) {
        pw += (n_dt_[d][t] + hyper_.alpha) / doc_total *
              (n_tw_[t][word] + hyper_.beta) /
              (n_t_[t] + hyper_.beta * v);
      }
      ll += std::log(std::max(pw, 1e-300));
    }
  }
  return ll;
}

LdaParams CollapsedLda::EstimatePhi() const {
  LdaParams p;
  double v = static_cast<double>(hyper_.vocab);
  for (std::size_t t = 0; t < hyper_.topics; ++t) {
    linalg::Vector row(hyper_.vocab);
    for (std::size_t w = 0; w < hyper_.vocab; ++w) {
      row[w] = (n_tw_[t][w] + hyper_.beta) / (n_t_[t] + hyper_.beta * v);
    }
    p.phi.push_back(std::move(row));
  }
  return p;
}

}  // namespace mlbench::models
