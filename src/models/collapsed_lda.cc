#include "models/collapsed_lda.h"

#include <cmath>

#include "common/logging.h"
#include "stats/distributions.h"

namespace mlbench::models {

CollapsedLda::CollapsedLda(const LdaHyper& hyper,
                           std::vector<LdaDocument> docs, std::uint64_t seed)
    : hyper_(hyper), docs_(std::move(docs)), rng_(seed) {
  for (auto& doc : docs_) {
    if (doc.topics.size() != doc.words.size()) {
      InitLdaDocument(rng_, hyper_, &doc);
    }
  }
  RebuildCounts();
}

void CollapsedLda::RebuildCounts() {
  counts_.Reset(docs_.size(), hyper_.topics, hyper_.vocab, hyper_.alpha,
                hyper_.beta);
  for (std::size_t d = 0; d < docs_.size(); ++d) {
    for (std::size_t pos = 0; pos < docs_[d].words.size(); ++pos) {
      counts_.AddToken(d, docs_[d].words[pos], docs_[d].topics[pos]);
    }
  }
}

void CollapsedLda::Sweep() {
  for (std::size_t d = 0; d < docs_.size(); ++d) {
    auto& doc = docs_[d];
    counts_.BeginDoc(d);
    for (std::size_t pos = 0; pos < doc.words.size(); ++pos) {
      doc.topics[pos] = static_cast<std::uint8_t>(counts_.SampleTokenTopic(
          rng_, doc.words[pos], doc.topics[pos]));
    }
  }
}

void CollapsedLda::ApproximateParallelSweep() {
  // Every token samples against the sweep-start snapshot (ignoring
  // concurrent updates), then the counts rebuild -- the shortcut the
  // paper declines to benchmark as "aggressive (and somewhat
  // questionable)".
  kernels::CollapsedCounts snap = counts_;
  const std::size_t t_count = hyper_.topics;
  const double alpha = hyper_.alpha;
  const double beta = hyper_.beta;
  const double beta_v = snap.beta_v();
  const double* nt = snap.nt_data();
  for (std::size_t d = 0; d < docs_.size(); ++d) {
    auto& doc = docs_[d];
    const double* dt = snap.dt_row(d);
    for (std::size_t pos = 0; pos < doc.words.size(); ++pos) {
      const double* wt = snap.wt_row(doc.words[pos]);
      std::size_t old_t = doc.topics[pos];
      doc.topics[pos] = static_cast<std::uint8_t>(kernels::FusedCategorical(
          rng_, t_count, counts_.cat_scratch(), [&](std::size_t t) {
            double excl = old_t == t ? 1.0 : 0.0;
            return (dt[t] - excl + alpha) * (wt[t] - excl + beta) /
                   (nt[t] - excl + beta_v);
          }));
    }
  }
  RebuildCounts();
}

double CollapsedLda::TokenLogLikelihood() const {
  const std::size_t t_count = hyper_.topics;
  const double beta = hyper_.beta;
  const double beta_v = counts_.beta_v();
  const double* nt = counts_.nt_data();
  double ll = 0;
  // Per document, the word-independent factor (n_dt + alpha) / doc_total /
  // (n_t + beta*V) is hoisted out of the token loop; the remaining
  // per-token work is one fused dot against the contiguous word-major
  // count row. (Reassociates the per-topic products; likelihood path
  // only.)
  std::vector<double> coef(t_count);
  for (std::size_t d = 0; d < docs_.size(); ++d) {
    const auto& doc = docs_[d];
    const double* dt = counts_.dt_row(d);
    double doc_total = 0;
    for (std::size_t t = 0; t < t_count; ++t) {
      doc_total += dt[t] + hyper_.alpha;
    }
    for (std::size_t t = 0; t < t_count; ++t) {
      coef[t] = (dt[t] + hyper_.alpha) / doc_total / (nt[t] + beta_v);
    }
    for (std::size_t pos = 0; pos < doc.words.size(); ++pos) {
      const double* wt = counts_.wt_row(doc.words[pos]);
      double pw = 0;
      for (std::size_t t = 0; t < t_count; ++t) {
        pw += coef[t] * (wt[t] + beta);
      }
      ll += std::log(std::max(pw, 1e-300));
    }
  }
  return ll;
}

LdaParams CollapsedLda::EstimatePhi() const {
  LdaParams p;
  const double beta_v = counts_.beta_v();
  for (std::size_t t = 0; t < hyper_.topics; ++t) {
    linalg::Vector row(hyper_.vocab);
    double denom = counts_.nt(t) + beta_v;
    for (std::size_t w = 0; w < hyper_.vocab; ++w) {
      row[w] = (counts_.wt(t, static_cast<std::uint32_t>(w)) + hyper_.beta) /
               denom;
    }
    p.phi.push_back(std::move(row));
  }
  return p;
}

}  // namespace mlbench::models
