#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "models/gmm.h"
#include "stats/rng.h"

/// \file imputation.h
/// Gaussian missing-data imputation (paper Section 9): the GMM sampler
/// extended with one extra step that re-draws each data point's censored
/// coordinates from the conditional normal of its current cluster,
///   x1 | x2 ~ Normal(mu1 + S12 S22^-1 (x2 - mu2),
///                    S11 - S12 S22^-1 S21).

namespace mlbench::models {

/// A data point with a censoring mask (true = value is missing and is
/// currently imputed).
struct CensoredPoint {
  Vector x;
  std::vector<bool> missing;
};

/// Censors each coordinate of `x` independently with probability `p`
/// (the paper draws p ~ Beta(1,1) per point), replacing it with the
/// provided fill value.
CensoredPoint Censor(stats::Rng& rng, const Vector& x, double p,
                     double fill = 0.0);

/// Re-draws the missing coordinates of `point` from the conditional normal
/// of the component (mu, sigma), in place. Points with no missing (or no
/// observed) coordinates degenerate to the obvious cases.
Status ImputeMissing(stats::Rng& rng, const Vector& mu, const Matrix& sigma,
                     CensoredPoint* point);

/// FLOPs for one point's conditional-normal draw (block solve).
double ImputeFlops(std::size_t dim);

}  // namespace mlbench::models
