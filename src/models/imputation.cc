#include "models/imputation.h"

#include "stats/distributions.h"

namespace mlbench::models {

CensoredPoint Censor(stats::Rng& rng, const Vector& x, double p,
                     double fill) {
  CensoredPoint out;
  out.x = x;
  out.missing.resize(x.size(), false);
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (rng.NextDouble() < p) {
      out.missing[i] = true;
      out.x[i] = fill;
    }
  }
  return out;
}

Status ImputeMissing(stats::Rng& rng, const Vector& mu, const Matrix& sigma,
                     CensoredPoint* point) {
  const std::size_t d = mu.size();
  std::vector<std::size_t> mis, obs;
  for (std::size_t i = 0; i < d; ++i) {
    (point->missing[i] ? mis : obs).push_back(i);
  }
  if (mis.empty()) return Status::OK();

  if (obs.empty()) {
    // Fully censored: draw from the component marginal.
    MLBENCH_ASSIGN_OR_RETURN(Vector draw,
                             stats::SampleMultivariateNormal(rng, mu, sigma));
    point->x = draw;
    return Status::OK();
  }

  const std::size_t m = mis.size(), o = obs.size();
  Matrix s11(m, m), s12(m, o), s22(o, o);
  for (std::size_t r = 0; r < m; ++r) {
    for (std::size_t c = 0; c < m; ++c) s11(r, c) = sigma(mis[r], mis[c]);
    for (std::size_t c = 0; c < o; ++c) s12(r, c) = sigma(mis[r], obs[c]);
  }
  for (std::size_t r = 0; r < o; ++r) {
    for (std::size_t c = 0; c < o; ++c) s22(r, c) = sigma(obs[r], obs[c]);
  }
  Vector resid(o);
  for (std::size_t r = 0; r < o; ++r) {
    resid[r] = point->x[obs[r]] - mu[obs[r]];
  }

  // S22^-1 applied to the residual and to S21.
  MLBENCH_ASSIGN_OR_RETURN(Matrix s22_inv, linalg::InverseSpd(s22));
  Vector gain = linalg::MatVec(s12, linalg::MatVec(s22_inv, resid));
  Matrix cond_cov =
      s11 - linalg::MatMul(s12, linalg::MatMul(s22_inv, s12.Transposed()));
  // Symmetrize + jitter against roundoff.
  for (std::size_t r = 0; r < m; ++r) {
    for (std::size_t c = r + 1; c < m; ++c) {
      double avg = 0.5 * (cond_cov(r, c) + cond_cov(c, r));
      cond_cov(r, c) = cond_cov(c, r) = avg;
    }
    cond_cov(r, r) = std::max(cond_cov(r, r), 1e-10);
  }
  Vector cond_mean(m);
  for (std::size_t r = 0; r < m; ++r) cond_mean[r] = mu[mis[r]] + gain[r];
  MLBENCH_ASSIGN_OR_RETURN(
      Vector draw, stats::SampleMultivariateNormal(rng, cond_mean, cond_cov));
  for (std::size_t r = 0; r < m; ++r) point->x[mis[r]] = draw[r];
  return Status::OK();
}

double ImputeFlops(std::size_t dim) {
  double d = static_cast<double>(dim);
  return 2.0 * d * d * d + 4.0 * d * d;
}

}  // namespace mlbench::models
