#include "models/lasso.h"

#include <cmath>

#include "linalg/blocked.h"
#include "stats/distributions.h"

namespace mlbench::models {

void AccumulateLasso(const Vector& x, double y, LassoSuffStats* stats) {
  const std::size_t p = x.size();
  if (stats->xtx.rows() == 0) {
    stats->xtx = Matrix(p, p);
    stats->xty = Vector(p);
  }
  for (std::size_t i = 0; i < p; ++i) {
    if (x[i] == 0.0) continue;
    // Rank-1 row update: an elementwise axpy on row i of X^T X,
    // bit-identical to the scalar j-loop.
    linalg::blocked::AddScaled(stats->xtx.data() + i * p, x.data(), x[i], p);
    stats->xty[i] += x[i] * y;
  }
  stats->n += 1;
  stats->yty += y * y;
}

Result<LassoState> InitLasso(stats::Rng& rng, const LassoHyper& hyper) {
  LassoState s;
  s.beta = Vector(hyper.p);
  s.sigma2 = 1.0;
  s.inv_tau2 = Vector(hyper.p);
  for (std::size_t j = 0; j < hyper.p; ++j) {
    // tau_j^2 ~ Exponential(lambda^2 / 2) is the Park-Casella prior.
    double tau2 =
        stats::SampleExponential(rng, hyper.lambda * hyper.lambda / 2.0);
    s.inv_tau2[j] = 1.0 / std::max(tau2, 1e-12);
  }
  return s;
}

double SampleInvTau2(stats::Rng& rng, const LassoHyper& hyper, double sigma2,
                     double beta_j) {
  double b2 = std::max(beta_j * beta_j, 1e-12);
  double mu = std::sqrt(hyper.lambda * hyper.lambda * sigma2 / b2);
  return stats::SampleInverseGaussian(rng, mu, hyper.lambda * hyper.lambda);
}

Result<Vector> SampleBeta(stats::Rng& rng, const LassoSuffStats& stats,
                          const Vector& inv_tau2, double sigma2) {
  const std::size_t p = inv_tau2.size();
  Matrix a = stats.xtx;
  for (std::size_t j = 0; j < p; ++j) a(j, j) += inv_tau2[j];
  MLBENCH_ASSIGN_OR_RETURN(Matrix l, linalg::Cholesky(a));
  // Mean: A^-1 X^T y.
  Vector mean = linalg::BackSubstituteTransposed(
      l, linalg::ForwardSubstitute(l, stats.xty));
  // Draw: mean + sigma L^-T z  (covariance sigma^2 A^-1).
  Vector z(p);
  for (std::size_t j = 0; j < p; ++j) z[j] = stats::SampleStandardNormal(rng);
  Vector delta = linalg::BackSubstituteTransposed(l, z);
  for (std::size_t j = 0; j < p; ++j) {
    mean[j] += std::sqrt(sigma2) * delta[j];
  }
  return mean;
}

double SampleSigma2(stats::Rng& rng, const LassoHyper& hyper,
                    const LassoSuffStats& stats, const Vector& beta,
                    const Vector& inv_tau2, double sse) {
  double penalty = 0;
  for (std::size_t j = 0; j < hyper.p; ++j) {
    penalty += beta[j] * beta[j] * inv_tau2[j];
  }
  double shape = (1.0 + stats.n + static_cast<double>(hyper.p)) / 2.0;
  double rate = (2.0 + sse + penalty) / 2.0;
  return stats::SampleInverseGamma(rng, shape, rate);
}

double ResidualSumOfSquares(const LassoSuffStats& stats, const Vector& beta) {
  // sum (y - b.x)^2 = y^T y - 2 b^T X^T y + b^T X^T X b.
  double quad = linalg::QuadraticForm(stats.xtx, beta);
  return std::max(0.0, stats.yty - 2.0 * linalg::Dot(beta, stats.xty) + quad);
}

double BetaUpdateFlops(std::size_t p) {
  double pd = static_cast<double>(p);
  return pd * pd * pd / 3.0 + 4.0 * pd * pd;
}

double GramAccumulateFlops(std::size_t p) {
  double pd = static_cast<double>(p);
  return 2.0 * pd * pd + 2.0 * pd;
}

}  // namespace mlbench::models
