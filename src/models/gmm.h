#pragma once

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "kernels/gaussian.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"
#include "stats/rng.h"

/// \file gmm.h
/// Gaussian mixture model: priors, sufficient statistics, and the Gibbs
/// updates of paper Section 5. Every platform implementation (dataflow,
/// relational, GAS, BSP) calls into this shared math, so the chains agree
/// across platforms up to RNG stream differences — mirroring the paper's
/// setup where "each platform is running exactly the same MCMC simulation".

namespace mlbench::models {

using linalg::Matrix;
using linalg::Vector;

/// Conjugate prior: pi ~ Dirichlet(alpha), mu_k ~ Normal(mu0, lambda0^-1),
/// Sigma_k ~ InvWishart(v, psi).
struct GmmHyper {
  std::size_t k = 10;  ///< number of mixture components
  std::size_t dim = 10;
  double alpha = 1.0;
  Vector mu0;       ///< prior mean (empirical data mean)
  Matrix lambda0;   ///< prior precision of mu (empirical, diagonal)
  double v = 0;     ///< inverse-Wishart dof (dim + 2 in the paper's codes)
  Matrix psi;       ///< inverse-Wishart scale (empirical covariance)
};

/// Current model state theta^(i).
struct GmmParams {
  Vector pi;                   ///< mixing proportions (k)
  std::vector<Vector> mu;      ///< component means (k x dim)
  std::vector<Matrix> sigma;   ///< component covariances (k x dim x dim)
};

/// Per-component aggregates: n_k, sum_j c_jk x_j, sum_j c_jk x_j x_j^T.
struct GmmSuffStats {
  double n = 0;
  Vector sum_x;
  Matrix sum_outer;

  GmmSuffStats() = default;
  explicit GmmSuffStats(std::size_t dim) : sum_x(dim), sum_outer(dim, dim) {}

  void Add(const Vector& x);
  GmmSuffStats& Merge(const GmmSuffStats& o);
};

/// Computes the empirical hyperparameters the paper's codes use: mu0 = data
/// mean, psi/lambda0 from the per-dimension variance, v = dim + 2.
GmmHyper EmpiricalHyper(std::size_t k, const std::vector<Vector>& data);

/// Draws the initial model from the prior.
Result<GmmParams> SamplePrior(stats::Rng& rng, const GmmHyper& hyper);

/// Unnormalized membership weights p_j: pi_k * Normal(x | mu_k, Sigma_k),
/// computed in log space for stability.
Result<Vector> MembershipWeights(const Vector& x, const GmmParams& params);

/// Samples c_j given the current model.
Result<std::size_t> SampleMembership(stats::Rng& rng, const Vector& x,
                                     const GmmParams& params);

/// Per-iteration membership sampler with cached per-component Cholesky
/// factors: O(k d^2) per point instead of O(k d^3). Build once per
/// iteration, then call Sample for every point.
class GmmMembershipSampler {
 public:
  /// Reusable per-loop buffers for the fused membership kernel.
  using Scratch = kernels::MvnScratch;

  /// Factorizes every component covariance; fails if any is not SPD.
  static Result<GmmMembershipSampler> Build(const GmmParams& params);

  /// Draws the membership of one point (two-pass reference path; allocates
  /// temporaries per call).
  std::size_t Sample(stats::Rng& rng, const Vector& x) const;

  /// Fused, allocation-free membership draw against reusable scratch.
  /// Bit-identical index and RNG consumption to Sample(rng, x).
  std::size_t Sample(stats::Rng& rng, const Vector& x,
                     Scratch* scratch) const;

  /// Draws memberships for a contiguous block of points; identical to
  /// calling the scratch Sample per point in order.
  void SampleBlock(stats::Rng& rng, const std::vector<Vector>& points,
                   Scratch* scratch, std::vector<std::size_t>* out) const;

  /// Unnormalized membership weights of one point (log-space safe).
  Vector Weights(const Vector& x) const;

 private:
  GmmMembershipSampler() = default;
  std::vector<Vector> mu_;
  std::vector<Matrix> chol_;     ///< Cholesky factors of the covariances
  Vector log_pi_norm_;           ///< log pi_k - 0.5 log|Sigma_k| - const
};

/// Posterior draw of (mu_k, Sigma_k) from the component's aggregates
/// (the paper's Normal / InvWishart update equations).
Result<std::pair<Vector, Matrix>> SampleClusterPosterior(
    stats::Rng& rng, const GmmHyper& hyper, const GmmSuffStats& stats);

/// Posterior draw of pi from the component counts.
Vector SampleMixingProportions(stats::Rng& rng, const GmmHyper& hyper,
                               const std::vector<double>& counts);

// ---------------------------------------------------------------------------
// Declared FLOP counts (drive the simulated cost model)
// ---------------------------------------------------------------------------

/// FLOPs to evaluate the k membership densities for one point (one O(d^2)
/// quadratic form per component against a cached Cholesky factor).
double MembershipFlops(std::size_t k, std::size_t dim);

/// FLOPs to accumulate one point into sufficient statistics (outer
/// product + vector add).
double SuffStatFlops(std::size_t dim);

/// FLOPs for one component's posterior draw (Cholesky + solves).
double ClusterUpdateFlops(std::size_t dim);

}  // namespace mlbench::models
