#pragma once

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"
#include "stats/rng.h"

/// \file lasso.h
/// The Bayesian Lasso (Park & Casella 2008) Gibbs sampler of paper
/// Section 6: regression coefficients beta, noise variance sigma^2, and
/// per-coefficient auxiliary variances tau_j^2.

namespace mlbench::models {

using linalg::Matrix;
using linalg::Vector;

struct LassoHyper {
  std::size_t p = 1000;  ///< regressors
  double lambda = 1.0;   ///< Lasso regularization
};

struct LassoState {
  Vector beta;          ///< regression coefficients (p)
  double sigma2 = 1.0;  ///< noise variance
  Vector inv_tau2;      ///< 1 / tau_j^2 auxiliary variables (p)
};

/// Invariant statistics computed once at initialization: the Gram matrix
/// X^T X, the moment vector X^T y, and n (paper Section 6.1's
/// "materialized views").
struct LassoSuffStats {
  Matrix xtx;
  Vector xty;
  double n = 0;
  double yty = 0;  ///< sum of squared centered responses
};

/// Accumulates one (x, y) pair into the invariant statistics.
void AccumulateLasso(const Vector& x, double y, LassoSuffStats* stats);

/// Draws the initial state (tau from the prior, beta at ridge estimate).
Result<LassoState> InitLasso(stats::Rng& rng, const LassoHyper& hyper);

/// 1/tau_j^2 ~ InvGaussian(sqrt(lambda^2 sigma^2 / beta_j^2), lambda^2).
double SampleInvTau2(stats::Rng& rng, const LassoHyper& hyper, double sigma2,
                     double beta_j);

/// beta ~ Normal(A^-1 X^T y, sigma^2 A^-1), A = X^T X + D_tau^-1.
Result<Vector> SampleBeta(stats::Rng& rng, const LassoSuffStats& stats,
                          const Vector& inv_tau2, double sigma2);

/// sigma^2 ~ InvGamma((1+n+p)/2, (2 + SSE + sum beta_j^2/tau_j^2)/2).
double SampleSigma2(stats::Rng& rng, const LassoHyper& hyper,
                    const LassoSuffStats& stats, const Vector& beta,
                    const Vector& inv_tau2, double sse);

/// Sum of squared residuals sum (y - beta . x)^2 computed from the
/// invariant statistics (avoids a data pass; used by the platforms that
/// keep X^T X around). Exact because the model is linear.
double ResidualSumOfSquares(const LassoSuffStats& stats, const Vector& beta);

/// FLOPs for the per-iteration beta draw (Cholesky solve on p x p).
double BetaUpdateFlops(std::size_t p);
/// FLOPs to accumulate one data point into the Gram matrix.
double GramAccumulateFlops(std::size_t p);

}  // namespace mlbench::models
