#include "models/hmm.h"

#include "common/logging.h"
#include "stats/distributions.h"

namespace mlbench::models {

HmmCounts::HmmCounts(std::size_t states, std::size_t vocab)
    : f(states, Vector(vocab)), g(states), h(states, Vector(states)) {}

HmmCounts& HmmCounts::Merge(const HmmCounts& o) {
  if (f.empty()) {
    *this = o;
    return *this;
  }
  for (std::size_t s = 0; s < f.size(); ++s) {
    f[s] += o.f[s];
    h[s] += o.h[s];
  }
  g += o.g;
  return *this;
}

HmmParams SampleHmmPrior(stats::Rng& rng, const HmmHyper& hyper) {
  HmmParams p;
  Vector alpha_k(hyper.states, hyper.alpha);
  Vector beta_v(hyper.vocab, hyper.beta);
  p.delta0 = stats::SampleDirichlet(rng, alpha_k);
  for (std::size_t s = 0; s < hyper.states; ++s) {
    p.delta.push_back(stats::SampleDirichlet(rng, alpha_k));
    p.psi.push_back(stats::SampleDirichlet(rng, beta_v));
  }
  return p;
}

void InitHmmStates(stats::Rng& rng, std::size_t states, HmmDocument* doc) {
  doc->states.resize(doc->words.size());
  for (auto& s : doc->states) {
    s = static_cast<std::uint8_t>(rng.NextBounded(states));
  }
}

void ResampleHmmStates(stats::Rng& rng, const HmmParams& params,
                       int iteration, HmmDocument* doc) {
  const std::size_t k = params.delta0.size();
  const std::size_t n = doc->words.size();
  Vector w(k);
  for (std::size_t pos = 0; pos < n; ++pos) {
    // Paper: update position k when iteration and k have equal parity
    // (1-based); with 0-based positions the parity test flips.
    if ((static_cast<std::size_t>(iteration) + pos) % 2 != 1) continue;
    std::uint32_t word = doc->words[pos];
    for (std::size_t s = 0; s < k; ++s) {
      double weight = params.psi[s][word];
      weight *= pos == 0 ? params.delta0[s]
                         : params.delta[doc->states[pos - 1]][s];
      if (pos + 1 < n) weight *= params.delta[s][doc->states[pos + 1]];
      w[s] = weight;
    }
    double total = w.Sum();
    if (total <= 0) {
      doc->states[pos] = static_cast<std::uint8_t>(rng.NextBounded(k));
    } else {
      doc->states[pos] =
          static_cast<std::uint8_t>(stats::SampleCategorical(rng, w));
    }
  }
}

void AccumulateHmmCounts(const HmmDocument& doc, HmmCounts* counts) {
  MLBENCH_CHECK(!counts->f.empty());
  const std::size_t n = doc.words.size();
  if (n == 0) return;
  counts->g[doc.states[0]] += 1;
  for (std::size_t pos = 0; pos < n; ++pos) {
    counts->f[doc.states[pos]][doc.words[pos]] += 1;
    if (pos + 1 < n) counts->h[doc.states[pos]][doc.states[pos + 1]] += 1;
  }
}

HmmParams SampleHmmPosterior(stats::Rng& rng, const HmmHyper& hyper,
                             const HmmCounts& counts) {
  HmmParams p;
  Vector g_conc = counts.g;
  for (auto& v : g_conc) v += hyper.alpha;
  p.delta0 = stats::SampleDirichlet(rng, g_conc);
  for (std::size_t s = 0; s < hyper.states; ++s) {
    Vector h_conc = counts.h[s];
    for (auto& v : h_conc) v += hyper.alpha;
    p.delta.push_back(stats::SampleDirichlet(rng, h_conc));
    Vector f_conc = counts.f[s];
    for (auto& v : f_conc) v += hyper.beta;
    p.psi.push_back(stats::SampleDirichlet(rng, f_conc));
  }
  return p;
}

double StateUpdateFlops(std::size_t states) {
  return 6.0 * static_cast<double>(states);
}

double HmmModelBytes(const HmmHyper& hyper, double bytes_per_entry) {
  double k = static_cast<double>(hyper.states);
  double v = static_cast<double>(hyper.vocab);
  return bytes_per_entry * (k * v + k * k + k);
}

double HmmDocCountBytes(std::size_t doc_words, double bytes_per_entry) {
  return bytes_per_entry * 2.0 * static_cast<double>(doc_words);
}

}  // namespace mlbench::models
