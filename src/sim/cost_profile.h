#pragma once

#include <algorithm>
#include <cstddef>

/// \file cost_profile.h
/// Every calibration constant of the simulated-cluster cost model, in one
/// place. Engines convert *logical* work (element counts at paper scale)
/// into simulated seconds through these constants. They were calibrated
/// once against the published tables (see EXPERIMENTS.md, "Calibration");
/// nothing else in the codebase hard-codes a running time.
///
/// Units: seconds, bytes, FLOPs. All costs are per *logical* unit.

namespace mlbench::sim {

/// Implementation language of the user-visible layer of a platform.
/// The paper repeatedly measures the same algorithm across languages
/// (Spark Python vs. Spark Java, Mallet vs. GSL), so language cost is a
/// first-class concept.
enum class Language { kCpp, kJava, kPython };

const char* LanguageName(Language lang);

/// Per-language execution cost model.
struct LanguageModel {
  /// Cost of pushing one record through user code (lambda dispatch,
  /// boxing, interpreter loop overhead).
  double per_record_s;
  /// Cost of (de)serializing one byte at a framework boundary
  /// (JVM serialization, pickle + Py4J sockets).
  double per_serialized_byte_s;
  /// Cost of one floating-point operation inside a dense-linear-algebra
  /// kernel at small dimension (d ~ 10).
  double flop_s;
  /// Extra per-flop penalty that grows with operand dimension beyond
  /// `flop_dim_onset`, modeling cache-blind unblocked kernels. Mallet's
  /// boxed arrays miss from dimension zero; GSL and 2013-era reference-BLAS
  /// NumPy degrade once the operand spills the cache (~dim 256).
  double flop_dim_penalty_s;
  /// Dimension at which the penalty starts.
  double flop_dim_onset = 0;
  /// Fixed cost of invoking one linear-algebra kernel. For Python this is
  /// the PyGSL/NumPy call overhead including small-operand conversion; for
  /// Java it includes Mallet's per-call object allocation and GC share.
  double linalg_call_s;
  /// Cost per scalar element crossing the language/runtime boundary
  /// (Python object conversion, Java boxing). Dominates per-point costs
  /// for high-dimensional operands in the paper's Python codes.
  double per_element_s;

  /// Seconds for `flops` FLOPs across `calls` kernel invocations at
  /// dimensionality `dim`, moving `elements` scalars across the runtime
  /// boundary.
  double LinalgSeconds(double flops, double calls, std::size_t dim,
                       double elements = 0) const {
    double over = std::max(0.0, static_cast<double>(dim) - flop_dim_onset);
    return flops * (flop_s + flop_dim_penalty_s * over) +
           calls * linalg_call_s + elements * per_element_s;
  }
};

/// Calibrated language models (2013-era single core of an m2.4xlarge).
LanguageModel CppModel();
LanguageModel JavaModel();
LanguageModel PythonModel();
LanguageModel GetLanguageModel(Language lang);

// ---------------------------------------------------------------------------
// Platform-framework constants
// ---------------------------------------------------------------------------

/// Spark-style dataflow engine (Section 4.1).
struct DataflowCosts {
  /// Scheduler cost of launching one job (stage DAG submission).
  double job_launch_s = 1.7;
  /// Per-task dispatch cost; jobs run one task per partition.
  double per_task_s = 0.06;
  /// Reading one byte of a cached RDD partition.
  double cached_read_byte_s = 2.0e-10;
  /// Reading one byte from distributed storage (HDFS-style) at load time.
  double storage_read_byte_s = 1.0 / (90.0 * 1024 * 1024);
  /// Framework cost of moving one record through a shuffle boundary
  /// (hashing, buffering) -- on top of language serialization cost.
  double shuffle_record_s = 2.5e-7;
  /// Shuffle-fetch / RPC buffering per peer machine, resident for the
  /// application's lifetime. Grows the working set linearly with cluster
  /// size — part of why the paper's big-model Spark runs died at 100
  /// machines while small-model ones survived.
  double peer_buffer_bytes = 560.0 * 1024 * 1024;
  /// Fraction of each job's task-closure broadcast bytes that stays
  /// resident until application end (Spark 0.7/0.8 shipped the model
  /// inside task closures and never released the cached copies; the
  /// paper's Java LDA "failed on 20 machines after 18 iterations").
  double closure_residual_fraction = 0.8;
};

/// SimSQL-style relational engine (Section 4.2). SimSQL compiles SQL to
/// Hadoop MapReduce jobs; the engine itself is Java, VG functions are C++.
struct RelDbCosts {
  /// Hadoop job launch + scheduling + materialization overhead per compiled
  /// MR job. This constant dominates SimSQL's fixed per-iteration cost.
  double mr_job_launch_s = 27.0;
  /// Additional per-machine scheduling cost per job (task waves and
  /// stragglers grow with cluster size; the paper's SimSQL GMM slows from
  /// 27:55 at 5 machines to 35:54 at 100 on constant per-machine data).
  double mr_job_per_machine_s = 0.55;
  /// Pushing one tuple through one relational operator (Java runtime).
  double per_tuple_s = 5.5e-7;
  /// Hash-aggregate cost per input tuple (GROUP BY).
  double group_by_tuple_s = 9.0e-7;
  /// Hash-join cost per input tuple (build + probe amortized).
  double join_tuple_s = 8.0e-7;
  /// Per-tuple cost of crossing the Java/C++ VG-function boundary.
  double vg_tuple_s = 4.0e-7;
  /// Per-byte cost of writing a materialized table between jobs (HDFS,
  /// replicated) and reading it back in the next job.
  double materialize_byte_s = 1.0 / (55.0 * 1024 * 1024);
  /// Bytes of a materialized tuple (ids + value + framework overhead).
  double tuple_bytes = 48.0;
};

/// GraphLab-style GAS engine (Section 4.3). Native C++.
struct GasCosts {
  /// Engine sweep startup (scheduler activation) per full sweep over the
  /// active vertex set.
  double sweep_launch_s = 2.0;
  /// Graph ingest + finalize throughput per machine at boot (loading,
  /// edge construction, mirror setup). Dominates GraphLab's init column.
  double ingest_bytes_per_sec = 12.0 * 1024 * 1024;
  /// Framework cost per gather edge visited (locking, scheduling).
  double per_gather_edge_s = 2.2e-7;
  /// Framework cost per vertex apply.
  double per_apply_s = 3.0e-7;
  /// Fraction of gather views resident simultaneously. The paper observes
  /// GraphLab materializing one model copy per data vertex ("quickly
  /// exhausts the available memory"), i.e. near-total residency.
  double gather_residency = 0.85;
  /// Asynchronous execution keeps cores busy without barriers; effective
  /// utilization of the cluster's cores during a sweep.
  double async_core_utilization = 0.82;
  /// Cluster sizes above this failed to boot in the paper (footnote to
  /// Fig. 1(b): "Past 40 machines, GraphLab would not boot up at many
  /// cluster sizes"; the closest to 100 the authors got was 96).
  int max_bootable_machines = 96;
};

/// Giraph-style BSP engine (Section 4.4). Java on Hadoop.
struct BspCosts {
  /// One-time Hadoop job launch for the whole computation (Giraph runs as
  /// a single long-lived MR job, unlike SimSQL's job-per-query-stage).
  double job_launch_s = 16.0;
  /// Barrier + coordination cost per superstep.
  double superstep_barrier_s = 0.7;
  /// Framework cost per message routed (queueing, combiner lookup).
  double per_message_s = 4.5e-7;
  /// Bytes of framework overhead per buffered message.
  double message_overhead_bytes = 16.0;
  /// Netty send/receive buffering per peer worker connection. Grows the
  /// per-machine working set linearly with cluster size — one of the
  /// mechanisms behind Giraph's failures at 100 machines.
  double peer_buffer_bytes = 600.0 * 1024 * 1024;
  /// JVM allocation-rate death threshold: when a superstep's short-lived
  /// allocations on one machine exceed this, collection cannot keep up and
  /// the worker dies with OOM ("Fail" entries the paper attributes to
  /// memory, e.g. the naive Bayesian-Lasso code that materializes an 8 MB
  /// Gram-matrix message per data vertex).
  double max_superstep_alloc_bytes = 300.0e9;
  /// In-heap index bytes per spilled message when out-of-core messaging is
  /// enabled (Giraph 1.0's giraph.useOutOfCoreMessages).
  double spill_index_bytes = 64.0;
};

}  // namespace mlbench::sim
