#include "sim/cost_profile.h"

namespace mlbench::sim {

const char* LanguageName(Language lang) {
  switch (lang) {
    case Language::kCpp:
      return "C++";
    case Language::kJava:
      return "Java";
    case Language::kPython:
      return "Python";
  }
  return "?";
}

LanguageModel CppModel() {
  LanguageModel m;
  m.per_record_s = 8.0e-8;
  m.per_serialized_byte_s = 3.0e-10;
  m.flop_s = 1.0e-9;                // ~1 GFLOP/s unblocked GSL kernel
  m.flop_dim_penalty_s = 8.0e-11;   // spills the cache at high dimension
  m.flop_dim_onset = 256;
  m.linalg_call_s = 5.0e-6;         // gsl_* call incl. workspace allocation
  m.per_element_s = 0.0;            // native operands, no conversion
  return m;
}

LanguageModel JavaModel() {
  LanguageModel m;
  m.per_record_s = 2.5e-7;
  m.per_serialized_byte_s = 9.0e-10;
  m.flop_s = 9.0e-10;               // JIT-ed but unblocked (Mallet)
  m.flop_dim_penalty_s = 1.7e-10;   // cache misses grow with dimension
  m.linalg_call_s = 2.0e-5;         // Mallet per-call allocation + GC share
  m.per_element_s = 2.0e-9;         // autoboxing
  return m;
}

LanguageModel PythonModel() {
  LanguageModel m;
  m.per_record_s = 4.5e-6;          // interpreted lambda + dict handling
  m.per_serialized_byte_s = 7.0e-9; // pickle + Py4J socket
  m.flop_s = 5.0e-10;               // NumPy vectorized kernels
  m.flop_dim_penalty_s = 1.6e-10;   // 2013 reference-BLAS beyond the cache
  m.flop_dim_onset = 256;
  m.linalg_call_s = 3.5e-5;         // PyGSL/NumPy call incl. small-operand setup
  m.per_element_s = 1.0e-7;         // per-scalar Python object conversion
  return m;
}

LanguageModel GetLanguageModel(Language lang) {
  switch (lang) {
    case Language::kCpp:
      return CppModel();
    case Language::kJava:
      return JavaModel();
    case Language::kPython:
      return PythonModel();
  }
  return CppModel();
}

}  // namespace mlbench::sim
