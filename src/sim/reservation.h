#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "common/status.h"

/// \file reservation.h
/// Host-memory reservation ledger for the experiment server's admission
/// controller.
///
/// ClusterSim's per-machine ledger accounts *simulated* (paper-scale)
/// bytes; this ledger accounts the *host* RAM a run will actually touch
/// while executing its laptop-scale sample. The admission controller
/// reserves a run's estimated peak before starting it and releases the
/// reservation when the run finishes — on every path, including failures
/// and crash-recovery — so the server can promise that the sum of admitted
/// estimates never exceeds the host budget.
///
/// The ledger itself is deliberately single-threaded and pure: reserve /
/// release arithmetic with no clocks, no threads, no hidden state, so the
/// admission edge cases (exact fit, last-bytes races, release-on-failure)
/// are testable as plain value semantics. Callers that share a ledger
/// across threads (server::AdmissionController) provide their own
/// synchronisation.

namespace mlbench::sim {

class ReservationLedger {
 public:
  /// A ledger with `budget_bytes` of reservable capacity. Negative
  /// budgets clamp to zero.
  explicit ReservationLedger(double budget_bytes)
      : budget_bytes_(budget_bytes > 0 ? budget_bytes : 0) {}

  double budget_bytes() const { return budget_bytes_; }
  double reserved_bytes() const { return reserved_bytes_; }
  double available_bytes() const { return budget_bytes_ - reserved_bytes_; }
  /// Largest reserved_bytes() ever observed.
  double peak_reserved_bytes() const { return peak_reserved_bytes_; }
  /// Number of live (unreleased) reservations.
  std::size_t active() const { return live_.size(); }

  /// True when a reservation of `bytes` would fit right now. Exact-fit
  /// semantics: a request for precisely the remaining budget succeeds.
  bool Fits(double bytes) const {
    return bytes >= 0 && reserved_bytes_ + bytes <= budget_bytes_;
  }

  /// True when `bytes` can never be admitted, even with the ledger empty.
  bool NeverFits(double bytes) const { return bytes > budget_bytes_; }

  /// Reserves `bytes`, returning a ledger-unique id to release later.
  /// Fails with ResourceExhausted (naming `what`) when the reservation
  /// does not fit; fitting is exact — no headroom slack is applied.
  Result<std::int64_t> Reserve(double bytes, std::string_view what);

  /// Releases a reservation. Unknown (or already released) ids fail with
  /// NotFound — a double release is an accounting bug the caller must
  /// hear about, not silently absorb.
  Status Release(std::int64_t id);

 private:
  double budget_bytes_;
  double reserved_bytes_ = 0;
  double peak_reserved_bytes_ = 0;
  std::int64_t next_id_ = 1;
  std::map<std::int64_t, double> live_;
};

}  // namespace mlbench::sim
