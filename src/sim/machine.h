#pragma once

#include <cstddef>

/// \file machine.h
/// Hardware description of the simulated cluster.
///
/// The paper's fleet is Amazon EC2 m2.4xlarge: 8 virtual cores, 68 GB RAM,
/// two disks, interconnected at roughly gigabit speeds. These specs, not the
/// host running the benchmark, bound the simulated runs.

namespace mlbench::sim {

struct MachineSpec {
  int cores = 8;
  /// Usable RAM per machine. The paper's machines have 68 GB; we reserve a
  /// little for OS/JVM headroom.
  double ram_bytes = 64.0 * 1024 * 1024 * 1024;
  /// Sequential disk bandwidth (two spindles, 2012-era).
  double disk_bytes_per_sec = 180.0 * 1024 * 1024;
  /// Local scratch capacity (two 840 GB ephemeral disks).
  double disk_capacity_bytes = 1.6e12;
};

struct ClusterSpec {
  int machines = 5;
  MachineSpec machine;
  /// Per-machine bisection bandwidth (gigabit ethernet).
  double net_bytes_per_sec = 115.0 * 1024 * 1024;
  /// Per-transfer latency floor.
  double net_latency_s = 0.002;

  /// Total cores across the cluster.
  int total_cores() const { return machines * machine.cores; }
  /// Aggregate RAM across the cluster.
  double total_ram_bytes() const { return machines * machine.ram_bytes; }
};

/// The fleet used throughout the paper's evaluation (Section 3.4).
inline ClusterSpec Ec2M2XLargeCluster(int machines) {
  ClusterSpec spec;
  spec.machines = machines;
  return spec;
}

}  // namespace mlbench::sim
