#include "sim/charge_ledger.h"

#include <utility>

namespace mlbench::sim {

namespace {
thread_local ChargeLedger* g_bound = nullptr;
}  // namespace

ChargeLedger* ChargeLedger::Bound() { return g_bound; }

void ChargeLedger::LogTransientAlloc(int machine, double bytes,
                                     std::string_view what) {
  Log(OpKind::kAlloc, /*transient=*/true, machine, bytes, what);
}

void ChargeLedger::Splice(ChargeLedger&& other) {
  if (ops_.empty()) {
    // The label indices in other.ops_ stay valid only if the pools swap
    // wholesale; ours is empty of live entries, so adopt other's.
    ops_ = std::move(other.ops_);
    whats_.swap(other.whats_);
    whats_used_ = other.whats_used_;
  } else {
    ops_.reserve(ops_.size() + other.ops_.size());
    for (const Op& op : other.ops_) {
      Op copy = op;
      if (copy.what_idx >= 0) copy.what_idx = Intern(other.What(op));
      ops_.push_back(copy);
    }
  }
  other.Clear();
}

ScopedLedger::ScopedLedger(ChargeLedger* ledger) : prev_(g_bound) {
  g_bound = ledger;
}

ScopedLedger::~ScopedLedger() { g_bound = prev_; }

}  // namespace mlbench::sim
