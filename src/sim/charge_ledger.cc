#include "sim/charge_ledger.h"

#include <iterator>
#include <utility>

namespace mlbench::sim {

namespace {
thread_local ChargeLedger* g_bound = nullptr;
}  // namespace

ChargeLedger* ChargeLedger::Bound() { return g_bound; }

void ChargeLedger::LogTransientAlloc(int machine, double bytes,
                                     std::string_view what) {
  Op op;
  op.kind = OpKind::kAlloc;
  op.transient = true;
  op.machine = machine;
  op.a = bytes;
  op.what = std::string(what);
  ops_.push_back(std::move(op));
}

void ChargeLedger::Splice(ChargeLedger&& other) {
  if (ops_.empty()) {
    ops_ = std::move(other.ops_);
  } else {
    ops_.insert(ops_.end(), std::make_move_iterator(other.ops_.begin()),
                std::make_move_iterator(other.ops_.end()));
    other.ops_.clear();
  }
}

ScopedLedger::ScopedLedger(ChargeLedger* ledger) : prev_(g_bound) {
  g_bound = ledger;
}

ScopedLedger::~ScopedLedger() { g_bound = prev_; }

}  // namespace mlbench::sim
