#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

/// \file faults.h
/// Seeded, deterministic fault injection for the cluster simulator.
///
/// The paper's platforms differ as much in how they *fail* as in how fast
/// they run: Hadoop re-executes failed tasks and speculatively duplicates
/// stragglers, Spark recomputes lost cached partitions from lineage,
/// Giraph checkpoints supersteps, and GraphLab snapshots vertex state.
/// This header provides the shared fault schedule those recovery paths
/// consume.
///
/// Determinism contract (see DESIGN.md §12):
///  * Faults are scheduled in *simulated* coordinates — MapReduce job K,
///    superstep N, sweep S — never wall-clock or host time.
///  * Every query is a pure hash of (seed, kind, unit, machine). There is
///    no sequential RNG stream to perturb, so querying faults from engine
///    code cannot change any model's sample path, and the schedule is
///    identical at any MLBENCH_THREADS.
///  * An empty FaultPlan must leave every engine charge-, RNG- and
///    result-bit-identical to a build without fault support. Engines gate
///    all fault work behind FaultInjector::active().

namespace mlbench::sim {

enum class FaultKind : std::uint8_t {
  kCrash,        ///< machine fails mid-unit; platform-specific recovery
  kStraggler,    ///< machine computes slower by a multiplicative factor
  kSendFailure,  ///< outbound messages need retries before succeeding
};

const char* FaultKindName(FaultKind kind);

/// Pure uniform hash in [0, 1) of (seed, tag, unit) — the same SplitMix64
/// mixing the FaultPlan queries use, exposed for chaos schedules outside
/// the simulator (the experiment-server client drops connections and
/// slow-reads responses deterministically per request index). `tag`
/// namespaces independent schedules drawn from one seed.
double HashChance(std::uint64_t seed, std::uint64_t tag, std::int64_t unit);

/// Bounded-retry policy with exponential backoff, charged in simulated
/// seconds. Shared by all engines so recovery costs are comparable.
struct RetryPolicy {
  int max_retries = 3;
  double base_backoff_s = 1.0;
  double backoff_multiplier = 2.0;

  /// Total simulated backoff paid for `failures` consecutive failed
  /// attempts: sum of base * multiplier^i for i in [0, failures).
  double BackoffSeconds(int failures) const;

  /// True when `failures` consecutive failures exhaust the retry budget
  /// and the unit of work must be declared permanently failed.
  bool Exhausted(int failures) const { return failures > max_retries; }
};

/// Per-(unit, machine) fault probabilities for a seeded plan.
struct FaultRates {
  double crash = 0;             ///< P(machine crashes during a unit)
  double straggler = 0;         ///< P(machine straggles during a unit)
  double straggler_factor = 2.5;  ///< compute multiplier when straggling
  double send_failure = 0;      ///< P(machine's sends fail during a unit)

  bool empty() const {
    return crash <= 0 && straggler <= 0 && send_failure <= 0;
  }
};

/// A deterministic fault schedule. Either seeded (faults derived by pure
/// hashing from a seed and FaultRates) or explicit (tests pin exact
/// faults with the Add* methods), or both.
class FaultPlan {
 public:
  FaultPlan() = default;

  /// A plan whose queries are pure hashes of (seed, kind, unit, machine)
  /// compared against `rates`.
  static FaultPlan Seeded(std::uint64_t seed, FaultRates rates);

  /// Explicit injections, for tests and benches. `count` is the number of
  /// consecutive failed attempts (count > RetryPolicy::max_retries means
  /// the failure is permanent).
  void AddCrash(std::int64_t unit, int machine, int count = 1);
  void AddStraggler(std::int64_t unit, int machine, double factor);
  void AddSendFailure(std::int64_t unit, int machine, int count = 1);

  /// True when no seeded rates and no explicit faults are present. Empty
  /// plans are never consulted by engines.
  bool empty() const;

  // ---- Pure queries --------------------------------------------------------
  // Each is a deterministic function of (seed, kind, unit, machine) plus
  // the explicit maps; safe to call from any thread, any number of times.

  /// Number of consecutive crash attempts for `machine` in `unit`
  /// (0 = no crash). Values above RetryPolicy::max_retries mean the
  /// machine never comes back and the unit fails permanently.
  int CrashCountAt(std::int64_t unit, int machine) const;

  /// Compute-time multiplier for `machine` in `unit`; 1.0 = no straggle.
  double StragglerFactorAt(std::int64_t unit, int machine) const;

  /// Number of failed message-send attempts for `machine` in `unit`
  /// before a send succeeds (0 = clean network).
  int SendFailureCountAt(std::int64_t unit, int machine) const;

 private:
  bool seeded_ = false;
  std::uint64_t seed_ = 0;
  FaultRates rates_;
  std::map<std::pair<std::int64_t, int>, int> crashes_;
  std::map<std::pair<std::int64_t, int>, double> stragglers_;
  std::map<std::pair<std::int64_t, int>, int> send_failures_;
};

/// One recovery action an engine performed, for benches and tests.
/// Recorded from serial engine code only (unit boundaries), so the log
/// order is deterministic.
struct RecoveryEvent {
  FaultKind kind;
  std::string site;  ///< e.g. "reldb:job", "bsp:superstep", "gas:sweep"
  std::int64_t unit = 0;
  int machine = 0;
  double recovery_seconds = 0;  ///< simulated time charged to recover
};

/// Shared handle installed on a ClusterSim; engines consult plan() and
/// retry() at each unit boundary and log what they paid.
class FaultInjector {
 public:
  FaultInjector(FaultPlan plan, RetryPolicy retry)
      : plan_(std::move(plan)), retry_(retry) {}

  /// False for empty plans; engines skip all fault logic when inactive,
  /// preserving bit-parity with fault-free builds.
  bool active() const { return !plan_.empty(); }

  const FaultPlan& plan() const { return plan_; }
  const RetryPolicy& retry() const { return retry_; }

  void RecordRecovery(RecoveryEvent ev) {
    recoveries_.push_back(std::move(ev));
  }
  const std::vector<RecoveryEvent>& recoveries() const { return recoveries_; }

  /// Sum of simulated seconds spent recovering, across all events.
  double total_recovery_seconds() const;

 private:
  FaultPlan plan_;
  RetryPolicy retry_;
  std::vector<RecoveryEvent> recoveries_;
};

/// Config-level fault knobs, carried by core::ExperimentConfig and wired
/// to engine options by the drivers.
struct FaultSpec {
  std::uint64_t seed = 0;
  FaultRates rates;
  RetryPolicy retry;
  /// Giraph-style checkpoint every N supersteps (<= 0: engine default).
  int checkpoint_interval = 0;
  /// GraphLab-style snapshot every N sweeps (<= 0: engine default).
  int snapshot_interval = 0;
  /// Spark-style graceful degradation: evict / skip caching under memory
  /// pressure instead of failing the job with OutOfMemory.
  bool evict_cache_on_pressure = false;
  /// Server-side chaos knobs, consumed by the experiment-server *client*
  /// library (never by engines, so they do not affect Enabled() and can
  /// never perturb a simulator): probability that a request's connection
  /// is dropped mid-request, and that a response is read pathologically
  /// slowly. Both are deterministic per request index via HashChance.
  double conn_drop = 0;
  double slow_client = 0;
  /// Explicit faults merged on top of the seeded schedule (tests).
  FaultPlan explicit_plan;
  bool use_explicit_plan = false;

  bool Enabled() const { return !rates.empty() || use_explicit_plan; }

  /// Builds the plan/injector this spec describes; null when disabled.
  std::shared_ptr<FaultInjector> MakeInjector() const;

  /// Reads MLBENCH_FAULT_SEED, MLBENCH_FAULT_CRASH, MLBENCH_FAULT_STRAGGLER,
  /// MLBENCH_FAULT_SENDFAIL, MLBENCH_FAULT_CONNDROP,
  /// MLBENCH_FAULT_SLOWCLIENT, MLBENCH_CHECKPOINT_INTERVAL and
  /// MLBENCH_SNAPSHOT_INTERVAL. Faults (including the client-side chaos
  /// knobs) stay disabled unless MLBENCH_FAULT_SEED is set.
  static FaultSpec FromEnv();
};

}  // namespace mlbench::sim
