#include "sim/cluster_sim.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/str_format.h"
#include "stats/distributions.h"

namespace mlbench::sim {

ClusterSim::ClusterSim(ClusterSpec spec)
    : spec_(spec),
      used_bytes_(spec.machines, 0.0),
      phase_cpu_(spec.machines, 0.0),
      phase_net_(spec.machines, 0.0),
      noise_rng_(0) {
  MLBENCH_CHECK(spec.machines > 0);
}

Status ClusterSim::Allocate(int machine, double bytes, std::string_view what) {
  MLBENCH_CHECK(machine >= 0 && machine < spec_.machines);
  MLBENCH_CHECK(bytes >= 0);
  double next = used_bytes_[machine] + bytes;
  if (next > spec_.machine.ram_bytes) {
    return Status::OutOfMemory(
        std::string(what) + " needs " + FormatBytes(bytes) + " on machine " +
        std::to_string(machine) + " (used " +
        FormatBytes(used_bytes_[machine]) + " of " +
        FormatBytes(spec_.machine.ram_bytes) + ")");
  }
  used_bytes_[machine] = next;
  peak_bytes_ = std::max(peak_bytes_, next);
  return Status::OK();
}

Status ClusterSim::AllocateEverywhere(double bytes_per_machine,
                                      std::string_view what) {
  for (int m = 0; m < spec_.machines; ++m) {
    Status st = Allocate(m, bytes_per_machine, what);
    if (!st.ok()) {
      // Roll back the machines already charged so failed runs leave a
      // consistent ledger.
      for (int r = 0; r < m; ++r) Free(r, bytes_per_machine);
      return st;
    }
  }
  return Status::OK();
}

void ClusterSim::Free(int machine, double bytes) {
  MLBENCH_CHECK(machine >= 0 && machine < spec_.machines);
  used_bytes_[machine] = std::max(0.0, used_bytes_[machine] - bytes);
}

void ClusterSim::FreeEverywhere(double bytes_per_machine) {
  for (int m = 0; m < spec_.machines; ++m) Free(m, bytes_per_machine);
}

void ClusterSim::BeginPhase(std::string name) {
  MLBENCH_CHECK_MSG(!in_phase_, "phases must not nest");
  in_phase_ = true;
  phase_name_ = std::move(name);
  std::fill(phase_cpu_.begin(), phase_cpu_.end(), 0.0);
  std::fill(phase_net_.begin(), phase_net_.end(), 0.0);
  phase_fixed_ = 0;
}

void ClusterSim::ChargeCpu(int machine, double busy_seconds) {
  MLBENCH_CHECK(in_phase_);
  MLBENCH_CHECK(machine >= 0 && machine < spec_.machines);
  phase_cpu_[machine] += busy_seconds;
}

void ClusterSim::ChargeCpuAllMachines(double busy_seconds_each) {
  MLBENCH_CHECK(in_phase_);
  for (auto& c : phase_cpu_) c += busy_seconds_each;
}

void ClusterSim::ChargeParallelCpu(double total_core_seconds) {
  ChargeCpuAllMachines(total_core_seconds /
                       static_cast<double>(spec_.total_cores()));
}

void ClusterSim::ChargeParallelCpuOnMachine(int machine, double core_seconds) {
  ChargeCpu(machine, core_seconds / static_cast<double>(spec_.machine.cores));
}

void ClusterSim::ChargeNetwork(int machine, double bytes_out) {
  MLBENCH_CHECK(in_phase_);
  MLBENCH_CHECK(machine >= 0 && machine < spec_.machines);
  phase_net_[machine] += bytes_out;
}

void ClusterSim::ChargeNetworkAll(double bytes_out_each) {
  MLBENCH_CHECK(in_phase_);
  for (auto& n : phase_net_) n += bytes_out_each;
}

void ClusterSim::ChargeFixed(double seconds) {
  MLBENCH_CHECK(in_phase_);
  phase_fixed_ += seconds;
}

double ClusterSim::EndPhase() {
  MLBENCH_CHECK(in_phase_);
  in_phase_ = false;

  PhaseRecord rec;
  rec.name = std::move(phase_name_);
  rec.fixed_seconds = phase_fixed_;

  double worst = 0;
  bool any_network = false;
  for (int m = 0; m < spec_.machines; ++m) {
    double net_s = phase_net_[m] / spec_.net_bytes_per_sec;
    if (phase_net_[m] > 0) any_network = true;
    worst = std::max(worst, phase_cpu_[m] + net_s);
    rec.max_cpu_seconds = std::max(rec.max_cpu_seconds, phase_cpu_[m]);
    rec.network_seconds = std::max(rec.network_seconds, net_s);
  }
  double t = phase_fixed_ + worst + (any_network ? spec_.net_latency_s : 0.0);

  if (noise_stddev_ > 0) {
    double eps = stats::SampleNormal(noise_rng_, 0.0, noise_stddev_);
    t *= std::max(0.0, 1.0 + eps);
  }

  rec.seconds = t;
  history_.push_back(rec);
  elapsed_seconds_ += t;
  return t;
}

void ClusterSim::ResetClock() {
  MLBENCH_CHECK(!in_phase_);
  elapsed_seconds_ = 0;
}

void ClusterSim::SetNoise(double stddev_fraction, std::uint64_t seed) {
  noise_stddev_ = stddev_fraction;
  noise_rng_ = stats::Rng(seed);
}

}  // namespace mlbench::sim
