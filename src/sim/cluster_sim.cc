#include "sim/cluster_sim.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/logging.h"
#include "common/str_format.h"
#include "sim/faults.h"
#include "stats/distributions.h"

namespace mlbench::sim {

ClusterSim::ClusterSim(ClusterSpec spec)
    : spec_(spec),
      used_bytes_(spec.machines, 0.0),
      phase_cpu_(spec.machines, 0.0),
      phase_net_(spec.machines, 0.0),
      noise_rng_(0) {
  MLBENCH_CHECK(spec.machines > 0);
}

// Logs the call on the thread's bound ledger (if any) instead of applying
// it; see charge_ledger.h. Ops replay through these same methods (or the
// inlined fast path in ReplayLedger) from CommitLedger, at which point no
// ledger is bound. Recording is allocation-free in the steady state: Op is
// a POD and labels intern into the ledger's reusable string pool.
#define MLBENCH_LEDGER_OP(kind_, transient_, machine_, a_, what_)            \
  do {                                                                       \
    if (ChargeLedger* led_ = ChargeLedger::Bound()) {                        \
      led_->Log(ChargeLedger::OpKind::kind_, (transient_), (machine_), (a_), \
                (what_));                                                    \
    }                                                                        \
  } while (0)

Status ClusterSim::Allocate(int machine, double bytes, std::string_view what) {
  MLBENCH_CHECK(machine >= 0 && machine < spec_.machines);
  MLBENCH_CHECK(bytes >= 0);
  if (ChargeLedger::Bound()) {
    MLBENCH_LEDGER_OP(kAlloc, false, machine, bytes, what);
    return Status::OK();  // OOM, if any, surfaces from CommitLedger
  }
  double next = used_bytes_[machine] + bytes;
  if (next > spec_.machine.ram_bytes) {
    return Status::OutOfMemory(
        std::string(what) + " needs " + FormatBytes(bytes) + " on machine " +
        std::to_string(machine) + " (used " +
        FormatBytes(used_bytes_[machine]) + " of " +
        FormatBytes(spec_.machine.ram_bytes) + ")");
  }
  used_bytes_[machine] = next;
  peak_bytes_ = std::max(peak_bytes_, next);
  return Status::OK();
}

Status ClusterSim::AllocateSoft(int machine, double bytes,
                                std::string_view what, std::int64_t tag) {
  MLBENCH_CHECK(machine >= 0 && machine < spec_.machines);
  MLBENCH_CHECK(bytes >= 0);
  if (ChargeLedger* led = ChargeLedger::Bound()) {
    led->Log(ChargeLedger::OpKind::kAlloc, /*transient=*/false, machine, bytes,
             what);
    ChargeLedger::Op& op = led->ops_.back();
    op.soft = true;
    op.tag = tag;
    return Status::OK();  // failure, if any, reports via on_soft_fail
  }
  return Allocate(machine, bytes, what);
}

Status ClusterSim::AllocateEverywhere(double bytes_per_machine,
                                      std::string_view what) {
  // Logged as one op so replay preserves the roll-back-on-failure below.
  if (ChargeLedger::Bound()) {
    MLBENCH_LEDGER_OP(kAllocAll, false, 0, bytes_per_machine, what);
    return Status::OK();
  }
  for (int m = 0; m < spec_.machines; ++m) {
    Status st = Allocate(m, bytes_per_machine, what);
    if (!st.ok()) {
      // Roll back the machines already charged so failed runs leave a
      // consistent ledger.
      for (int r = 0; r < m; ++r) Free(r, bytes_per_machine);
      return st;
    }
  }
  return Status::OK();
}

void ClusterSim::Free(int machine, double bytes) {
  MLBENCH_CHECK(machine >= 0 && machine < spec_.machines);
  if (ChargeLedger::Bound()) {
    MLBENCH_LEDGER_OP(kFree, false, machine, bytes, "");
    return;
  }
  used_bytes_[machine] = std::max(0.0, used_bytes_[machine] - bytes);
}

void ClusterSim::FreeEverywhere(double bytes_per_machine) {
  if (ChargeLedger::Bound()) {
    MLBENCH_LEDGER_OP(kFreeAll, false, 0, bytes_per_machine, "");
    return;
  }
  for (int m = 0; m < spec_.machines; ++m) Free(m, bytes_per_machine);
}

void ClusterSim::BeginPhase(std::string name) {
  MLBENCH_CHECK_MSG(!in_phase_, "phases must not nest");
  in_phase_ = true;
  phase_name_ = std::move(name);
  std::fill(phase_cpu_.begin(), phase_cpu_.end(), 0.0);
  std::fill(phase_net_.begin(), phase_net_.end(), 0.0);
  phase_fixed_ = 0;
  if (phase_adjusted_) {
    std::fill(phase_cpu_scale_.begin(), phase_cpu_scale_.end(), 1.0);
    std::fill(phase_net_scale_.begin(), phase_net_scale_.end(), 1.0);
    phase_mirrors_.clear();
    phase_adjusted_ = false;
  }
}

void ClusterSim::ChargeCpu(int machine, double busy_seconds) {
  MLBENCH_CHECK(in_phase_);
  MLBENCH_CHECK(machine >= 0 && machine < spec_.machines);
  if (ChargeLedger::Bound()) {
    MLBENCH_LEDGER_OP(kCpu, false, machine, busy_seconds, "");
    return;
  }
  phase_cpu_[machine] += busy_seconds;
}

void ClusterSim::ChargeCpuAllMachines(double busy_seconds_each) {
  MLBENCH_CHECK(in_phase_);
  if (ChargeLedger::Bound()) {
    MLBENCH_LEDGER_OP(kCpuAll, false, 0, busy_seconds_each, "");
    return;
  }
  for (auto& c : phase_cpu_) c += busy_seconds_each;
}

void ClusterSim::ChargeParallelCpu(double total_core_seconds) {
  ChargeCpuAllMachines(total_core_seconds /
                       static_cast<double>(spec_.total_cores()));
}

void ClusterSim::ChargeParallelCpuOnMachine(int machine, double core_seconds) {
  ChargeCpu(machine, core_seconds / static_cast<double>(spec_.machine.cores));
}

void ClusterSim::ChargeNetwork(int machine, double bytes_out) {
  MLBENCH_CHECK(in_phase_);
  MLBENCH_CHECK(machine >= 0 && machine < spec_.machines);
  if (ChargeLedger::Bound()) {
    MLBENCH_LEDGER_OP(kNet, false, machine, bytes_out, "");
    return;
  }
  phase_net_[machine] += bytes_out;
}

void ClusterSim::ChargeNetworkAll(double bytes_out_each) {
  MLBENCH_CHECK(in_phase_);
  if (ChargeLedger::Bound()) {
    MLBENCH_LEDGER_OP(kNetAll, false, 0, bytes_out_each, "");
    return;
  }
  for (auto& n : phase_net_) n += bytes_out_each;
}

void ClusterSim::ChargeFixed(double seconds) {
  MLBENCH_CHECK(in_phase_);
  if (ChargeLedger::Bound()) {
    MLBENCH_LEDGER_OP(kFixed, false, 0, seconds, "");
    return;
  }
  phase_fixed_ += seconds;
}

double ClusterSim::EndPhase() {
  MLBENCH_CHECK(in_phase_);
  in_phase_ = false;

  PhaseRecord rec;
  rec.name = std::move(phase_name_);
  rec.fixed_seconds = phase_fixed_;

  double worst = 0;
  bool any_network = false;
  for (int m = 0; m < spec_.machines; ++m) {
    double cpu_m = phase_cpu_[m];
    double net_b = phase_net_[m];
    if (phase_adjusted_) {
      cpu_m *= phase_cpu_scale_[m];
      for (const PhaseMirror& mir : phase_mirrors_) {
        if (mir.dst == m) cpu_m += mir.fraction * phase_cpu_[mir.src];
      }
      net_b *= phase_net_scale_[m];
    }
    double net_s = net_b / spec_.net_bytes_per_sec;
    if (net_b > 0) any_network = true;
    worst = std::max(worst, cpu_m + net_s);
    rec.max_cpu_seconds = std::max(rec.max_cpu_seconds, cpu_m);
    rec.network_seconds = std::max(rec.network_seconds, net_s);
  }
  double t = phase_fixed_ + worst + (any_network ? spec_.net_latency_s : 0.0);

  if (noise_stddev_ > 0) {
    double eps = stats::SampleNormal(noise_rng_, 0.0, noise_stddev_);
    t *= std::max(0.0, 1.0 + eps);
  }

  rec.seconds = t;
  history_.push_back(rec);
  elapsed_seconds_ += t;
  return t;
}

void ClusterSim::ResetClock() {
  MLBENCH_CHECK(!in_phase_);
  elapsed_seconds_ = 0;
}

void ClusterSim::SetNoise(double stddev_fraction, std::uint64_t seed) {
  noise_stddev_ = stddev_fraction;
  noise_rng_ = stats::Rng(seed);
}

void ClusterSim::SetFaultInjector(std::shared_ptr<FaultInjector> faults) {
  faults_ = std::move(faults);
}

void ClusterSim::EnsurePhaseAdjust() {
  MLBENCH_CHECK(in_phase_);
  MLBENCH_CHECK_MSG(ChargeLedger::Bound() == nullptr,
                    "fault adjustments are serial-only");
  if (phase_adjusted_) return;
  phase_adjusted_ = true;
  phase_cpu_scale_.assign(static_cast<std::size_t>(spec_.machines), 1.0);
  phase_net_scale_.assign(static_cast<std::size_t>(spec_.machines), 1.0);
  phase_mirrors_.clear();
}

void ClusterSim::ScalePhaseCpu(int machine, double factor) {
  MLBENCH_CHECK(machine >= 0 && machine < spec_.machines);
  MLBENCH_CHECK(factor >= 0);
  EnsurePhaseAdjust();
  phase_cpu_scale_[machine] *= factor;
}

void ClusterSim::ScalePhaseNet(int machine, double factor) {
  MLBENCH_CHECK(machine >= 0 && machine < spec_.machines);
  MLBENCH_CHECK(factor >= 0);
  EnsurePhaseAdjust();
  phase_net_scale_[machine] *= factor;
}

void ClusterSim::MirrorPhaseCpu(int src, int dst, double fraction) {
  MLBENCH_CHECK(src >= 0 && src < spec_.machines);
  MLBENCH_CHECK(dst >= 0 && dst < spec_.machines);
  MLBENCH_CHECK(fraction >= 0);
  EnsurePhaseAdjust();
  phase_mirrors_.push_back(PhaseMirror{src, dst, fraction});
}

Status ClusterSim::ReplayLedger(ChargeLedger& ledger,
                                const TransientFn& on_transient,
                                const SoftFailFn& on_soft_fail) {
  // Hot path: ledgers are dominated by time charges (kCpu/kNet per chunk
  // element). Those replay as direct accumulator updates — the exact
  // arithmetic ChargeCpu et al. perform, with the per-call in_phase_ /
  // Bound() checks hoisted out of the loop (Bound() is null by
  // construction here, and in_phase_ cannot change mid-replay). Memory
  // ops go through the real methods, which carry the OOM semantics.
  using OpKind = ChargeLedger::OpKind;
  for (auto& op : ledger.ops_) {
    switch (op.kind) {
      case OpKind::kCpu:
        MLBENCH_CHECK(in_phase_);
        phase_cpu_[op.machine] += op.a;
        break;
      case OpKind::kCpuAll:
        MLBENCH_CHECK(in_phase_);
        for (auto& c : phase_cpu_) c += op.a;
        break;
      case OpKind::kNet:
        MLBENCH_CHECK(in_phase_);
        phase_net_[op.machine] += op.a;
        break;
      case OpKind::kNetAll:
        MLBENCH_CHECK(in_phase_);
        for (auto& n : phase_net_) n += op.a;
        break;
      case OpKind::kFixed:
        MLBENCH_CHECK(in_phase_);
        phase_fixed_ += op.a;
        break;
      case OpKind::kAlloc: {
        Status st = Allocate(op.machine, op.a, ledger.What(op));
        if (!st.ok()) {
          if (op.soft) {
            // Best-effort admission: the caller degrades (evicts or
            // drops the pending cache entry) and replay continues.
            if (on_soft_fail) on_soft_fail(op.tag, op.machine, op.a);
            break;
          }
          // The serial run dies at exactly this op; everything the chunk
          // logged after it would never have executed.
          ledger.Clear();
          return st;
        }
        if (op.transient && on_transient) on_transient(op.machine, op.a);
        break;
      }
      case OpKind::kAllocAll: {
        Status st = AllocateEverywhere(op.a, ledger.What(op));
        if (!st.ok()) {
          ledger.Clear();
          return st;
        }
        break;
      }
      case OpKind::kFree:
        Free(op.machine, op.a);
        break;
      case OpKind::kFreeAll:
        FreeEverywhere(op.a);
        break;
    }
  }
  ledger.Clear();
  return Status::OK();
}

Status ClusterSim::CommitLedger(ChargeLedger& ledger,
                                const TransientFn& on_transient,
                                const SoftFailFn& on_soft_fail) {
  if (ledger.ops_.empty()) return Status::OK();
  if (ChargeLedger* outer = ChargeLedger::Bound()) {
    // Nested parallel section: re-queue on the outer chunk's ledger. The
    // outer commit replays these ops (and fires on_transient) later.
    outer->Splice(std::move(ledger));
    return Status::OK();
  }
  return ReplayLedger(ledger, on_transient, on_soft_fail);
}

Status ClusterSim::CommitLedgers(ChargeLedger* const* ledgers,
                                 std::size_t count,
                                 const TransientFn& on_transient,
                                 const SoftFailFn& on_soft_fail) {
  if (ChargeLedger* outer = ChargeLedger::Bound()) {
    for (std::size_t i = 0; i < count; ++i) {
      if (!ledgers[i]->ops_.empty()) outer->Splice(std::move(*ledgers[i]));
    }
    return Status::OK();
  }
  for (std::size_t i = 0; i < count; ++i) {
    if (ledgers[i]->ops_.empty()) continue;
    Status st = ReplayLedger(*ledgers[i], on_transient, on_soft_fail);
    // Stop at the chunk where the serial run died; later chunks' ops
    // would never have executed. Their ledgers stay recorded but the
    // engine is abandoning the sweep anyway.
    if (!st.ok()) return st;
  }
  return Status::OK();
}

}  // namespace mlbench::sim
