#include "sim/faults.h"

#include <cmath>
#include <cstdlib>
#include <string>

namespace mlbench::sim {

namespace {

// SplitMix64 finalizer: a high-quality bijective mixer. Fault queries
// hash (seed, kind, unit, machine, attempt) through this instead of
// drawing from a sequential RNG, so querying the schedule can never
// perturb a model's sample path and is thread-count invariant.
std::uint64_t Mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Uniform double in [0, 1) from the top 53 bits of the mixed hash.
double HashUniform(std::uint64_t seed, FaultKind kind, std::int64_t unit,
                   int machine, int attempt) {
  std::uint64_t h = Mix(seed);
  h = Mix(h ^ (static_cast<std::uint64_t>(kind) + 1));
  h = Mix(h ^ static_cast<std::uint64_t>(unit));
  h = Mix(h ^ static_cast<std::uint64_t>(machine));
  h = Mix(h ^ static_cast<std::uint64_t>(attempt));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

// Consecutive failed attempts: attempt 0 fires with probability `rate`;
// each further attempt re-fails with the same probability (independent
// hash), capped so a pathological rate cannot loop forever.
int HashCount(std::uint64_t seed, FaultKind kind, std::int64_t unit,
              int machine, double rate) {
  if (rate <= 0) return 0;
  constexpr int kMaxAttempts = 16;
  int count = 0;
  while (count < kMaxAttempts &&
         HashUniform(seed, kind, unit, machine, count) < rate) {
    ++count;
  }
  return count;
}

double EnvDouble(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::strtod(v, nullptr);
}

int EnvInt(const char* name, int fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return static_cast<int>(std::strtol(v, nullptr, 10));
}

}  // namespace

double HashChance(std::uint64_t seed, std::uint64_t tag, std::int64_t unit) {
  std::uint64_t h = Mix(seed);
  h = Mix(h ^ (tag + 1));
  h = Mix(h ^ static_cast<std::uint64_t>(unit));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCrash:
      return "crash";
    case FaultKind::kStraggler:
      return "straggler";
    case FaultKind::kSendFailure:
      return "send-failure";
  }
  return "unknown";
}

double RetryPolicy::BackoffSeconds(int failures) const {
  double total = 0;
  double step = base_backoff_s;
  for (int i = 0; i < failures; ++i) {
    total += step;
    step *= backoff_multiplier;
  }
  return total;
}

FaultPlan FaultPlan::Seeded(std::uint64_t seed, FaultRates rates) {
  FaultPlan plan;
  plan.seeded_ = true;
  plan.seed_ = seed;
  plan.rates_ = rates;
  return plan;
}

void FaultPlan::AddCrash(std::int64_t unit, int machine, int count) {
  crashes_[{unit, machine}] = count;
}

void FaultPlan::AddStraggler(std::int64_t unit, int machine, double factor) {
  stragglers_[{unit, machine}] = factor;
}

void FaultPlan::AddSendFailure(std::int64_t unit, int machine, int count) {
  send_failures_[{unit, machine}] = count;
}

bool FaultPlan::empty() const {
  if (seeded_ && !rates_.empty()) return false;
  return crashes_.empty() && stragglers_.empty() && send_failures_.empty();
}

int FaultPlan::CrashCountAt(std::int64_t unit, int machine) const {
  auto it = crashes_.find({unit, machine});
  if (it != crashes_.end()) return it->second;
  if (!seeded_) return 0;
  return HashCount(seed_, FaultKind::kCrash, unit, machine, rates_.crash);
}

double FaultPlan::StragglerFactorAt(std::int64_t unit, int machine) const {
  auto it = stragglers_.find({unit, machine});
  if (it != stragglers_.end()) return it->second;
  if (!seeded_ || rates_.straggler <= 0) return 1.0;
  if (HashUniform(seed_, FaultKind::kStraggler, unit, machine, 0) <
      rates_.straggler) {
    return rates_.straggler_factor;
  }
  return 1.0;
}

int FaultPlan::SendFailureCountAt(std::int64_t unit, int machine) const {
  auto it = send_failures_.find({unit, machine});
  if (it != send_failures_.end()) return it->second;
  if (!seeded_) return 0;
  return HashCount(seed_, FaultKind::kSendFailure, unit, machine,
                   rates_.send_failure);
}

double FaultInjector::total_recovery_seconds() const {
  double total = 0;
  for (const auto& ev : recoveries_) total += ev.recovery_seconds;
  return total;
}

std::shared_ptr<FaultInjector> FaultSpec::MakeInjector() const {
  if (!Enabled()) return nullptr;
  FaultPlan plan = use_explicit_plan ? explicit_plan
                                     : FaultPlan::Seeded(seed, rates);
  return std::make_shared<FaultInjector>(std::move(plan), retry);
}

FaultSpec FaultSpec::FromEnv() {
  FaultSpec spec;
  const char* seed_env = std::getenv("MLBENCH_FAULT_SEED");
  spec.checkpoint_interval = EnvInt("MLBENCH_CHECKPOINT_INTERVAL", 0);
  spec.snapshot_interval = EnvInt("MLBENCH_SNAPSHOT_INTERVAL", 0);
  if (seed_env == nullptr || *seed_env == '\0') return spec;
  spec.seed = std::strtoull(seed_env, nullptr, 10);
  spec.rates.crash = EnvDouble("MLBENCH_FAULT_CRASH", 0.0);
  spec.rates.straggler = EnvDouble("MLBENCH_FAULT_STRAGGLER", 0.0);
  spec.rates.send_failure = EnvDouble("MLBENCH_FAULT_SENDFAIL", 0.0);
  spec.evict_cache_on_pressure = EnvInt("MLBENCH_FAULT_EVICT", 0) != 0;
  spec.conn_drop = EnvDouble("MLBENCH_FAULT_CONNDROP", 0.0);
  spec.slow_client = EnvDouble("MLBENCH_FAULT_SLOWCLIENT", 0.0);
  return spec;
}

}  // namespace mlbench::sim
