#include "sim/reservation.h"

#include "common/str_format.h"

namespace mlbench::sim {

Result<std::int64_t> ReservationLedger::Reserve(double bytes,
                                                std::string_view what) {
  if (bytes < 0) {
    return Status::InvalidArgument("negative reservation for " +
                                   std::string(what));
  }
  if (!Fits(bytes)) {
    return Status::ResourceExhausted(std::string(what) + ": " +
                                     FormatBytes(bytes) + " requested, " +
                                     FormatBytes(available_bytes()) + " of " +
                                     FormatBytes(budget_bytes_) +
                                     " available");
  }
  std::int64_t id = next_id_++;
  live_[id] = bytes;
  reserved_bytes_ += bytes;
  if (reserved_bytes_ > peak_reserved_bytes_) {
    peak_reserved_bytes_ = reserved_bytes_;
  }
  return id;
}

Status ReservationLedger::Release(std::int64_t id) {
  auto it = live_.find(id);
  if (it == live_.end()) {
    return Status::NotFound("reservation id " + std::to_string(id) +
                            " is not live (double release?)");
  }
  reserved_bytes_ -= it->second;
  if (reserved_bytes_ < 0) reserved_bytes_ = 0;  // float drift guard
  live_.erase(it);
  return Status::OK();
}

}  // namespace mlbench::sim
