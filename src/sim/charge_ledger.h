#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

/// \file charge_ledger.h
/// Thread-local charge capture for parallel engine loops.
///
/// ClusterSim is single-writer by design: phase accumulators, the memory
/// ledger and peak tracking all assume charges arrive in one deterministic
/// sequence. When an engine parallelises a sweep with exec::ParallelFor,
/// each chunk binds a ChargeLedger to its thread (ScopedLedger); every
/// ClusterSim mutation the chunk performs is then *recorded* instead of
/// applied. After the loop, the engine commits the ledgers in chunk-index
/// order (ClusterSim::CommitLedger), which replays the recorded ops through
/// the real methods. The sim therefore sees exactly the op sequence the
/// serial loop would have produced — same floating-point accumulation
/// order, same peak-memory trajectory, same OOM point — at any thread
/// count.
///
/// Recording is allocation-free in the steady state: an Op is a small
/// POD, and allocation labels are interned into a string pool whose
/// entries (and their capacity) survive Clear(), so a ledger reused
/// across supersteps stops allocating once it has seen its widest
/// superstep.
///
/// Allocation failures are deferred: a logged Allocate optimistically
/// returns OK, and the OutOfMemory surfaces from CommitLedger at the same
/// op where the serial run would have died (replay stops there; later ops
/// in that ledger are discarded, mirroring the serial early-return).
/// Ops marked `soft` (best-effort cache admissions) are the exception: a
/// failed soft allocation is skipped and reported to the commit's
/// soft-failure callback, and replay continues — caches degrade instead
/// of killing the run (see ClusterSim::AllocateSoft).

namespace mlbench::sim {

class ClusterSim;

class ChargeLedger {
 public:
  /// The ledger bound to the current thread, or nullptr.
  static ChargeLedger* Bound();

  bool empty() const { return ops_.empty(); }

  /// Drops all recorded ops. Keeps the op buffer's capacity and the
  /// interned label strings' buffers, so a ledger reused across loops
  /// reaches a zero-allocation steady state.
  void Clear() {
    ops_.clear();
    whats_used_ = 0;
  }

  /// Records an allocation that, when successfully committed, should be
  /// reported to CommitLedger's on_transient callback (dataflow uses this
  /// for job-scoped transients it must free at job end).
  void LogTransientAlloc(int machine, double bytes, std::string_view what);

  /// Appends another ledger's ops (used when a commit happens while an
  /// outer ledger is bound: the ops re-queue instead of touching the sim).
  void Splice(ChargeLedger&& other);

 private:
  friend class ClusterSim;
  friend class ScopedLedger;

  enum class OpKind : std::uint8_t {
    kCpu,       // ChargeCpu(machine, a)
    kCpuAll,    // ChargeCpuAllMachines(a)
    kNet,       // ChargeNetwork(machine, a)
    kNetAll,    // ChargeNetworkAll(a)
    kFixed,     // ChargeFixed(a)
    kAlloc,     // Allocate(machine, a, what)
    kAllocAll,  // AllocateEverywhere(a, what)
    kFree,      // Free(machine, a)
    kFreeAll,   // FreeEverywhere(a)
  };

  /// One recorded ClusterSim mutation. POD on purpose: pushing an Op must
  /// not allocate, so the allocation label lives in the ledger's string
  /// pool and the op holds its index (-1 = no label).
  struct Op {
    OpKind kind;
    bool transient = false;  // successful kAlloc reported to on_transient
    bool soft = false;       // failed kAlloc skipped + reported, not fatal
    int machine = 0;
    std::int32_t what_idx = -1;  // into whats_, only kAlloc / kAllocAll
    std::int64_t tag = 0;  // caller-defined id for soft-failure reporting
    double a = 0;
  };

  /// Records one op; `what` is interned iff non-empty.
  void Log(OpKind kind, bool transient, int machine, double a,
           std::string_view what) {
    Op op;
    op.kind = kind;
    op.transient = transient;
    op.machine = machine;
    op.a = a;
    if (!what.empty()) op.what_idx = Intern(what);
    ops_.push_back(op);
  }

  /// Copies `what` into the label pool, reusing a retired slot's buffer
  /// when one is available, and returns its index.
  std::int32_t Intern(std::string_view what) {
    if (whats_used_ < whats_.size()) {
      whats_[whats_used_].assign(what);
    } else {
      whats_.emplace_back(what);
    }
    return static_cast<std::int32_t>(whats_used_++);
  }

  std::string_view What(const Op& op) const {
    return op.what_idx >= 0 ? std::string_view(whats_[static_cast<std::size_t>(
                                  op.what_idx)])
                            : std::string_view();
  }

  std::vector<Op> ops_;
  /// Label pool for kAlloc/kAllocAll ops. Only the first whats_used_
  /// entries are live; Clear() retires entries without freeing their
  /// buffers so Intern can reuse the capacity.
  std::vector<std::string> whats_;
  std::size_t whats_used_ = 0;
};

/// RAII binding of a ledger to the current thread. Saves and restores the
/// previous binding, so nested parallel sections compose: an inner commit
/// that finds an outer ledger bound splices into it instead of mutating
/// the sim.
class ScopedLedger {
 public:
  explicit ScopedLedger(ChargeLedger* ledger);
  ~ScopedLedger();

  ScopedLedger(const ScopedLedger&) = delete;
  ScopedLedger& operator=(const ScopedLedger&) = delete;

 private:
  ChargeLedger* prev_;
};

}  // namespace mlbench::sim
