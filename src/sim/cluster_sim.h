#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "sim/charge_ledger.h"
#include "sim/machine.h"
#include "stats/rng.h"

/// \file cluster_sim.h
/// Deterministic simulator of the paper's EC2 fleet.
///
/// Engines execute the real algorithms on laptop-scale data while charging
/// this simulator for the *logical* (paper-scale) work: CPU busy-time per
/// machine, bytes shuffled, and bytes resident. The simulator turns those
/// charges into wall-clock time (per synchronisation phase: the slowest
/// machine plus network transfer) and enforces per-machine RAM, returning
/// Status::OutOfMemory exactly where the real platforms died.

namespace mlbench::sim {

class FaultInjector;

/// Completed phase, for reports and debugging.
struct PhaseRecord {
  std::string name;
  double seconds = 0;
  double max_cpu_seconds = 0;
  double network_seconds = 0;
  double fixed_seconds = 0;
};

class ClusterSim {
 public:
  explicit ClusterSim(ClusterSpec spec);

  const ClusterSpec& spec() const { return spec_; }
  int machines() const { return spec_.machines; }

  // ---- Memory ledger -------------------------------------------------------

  /// Records `bytes` of resident data on `machine`; fails with OutOfMemory
  /// (naming `what`) if the machine's RAM would be exceeded.
  Status Allocate(int machine, double bytes, std::string_view what);

  /// Allocate() on every machine (balanced partitioned data).
  Status AllocateEverywhere(double bytes_per_machine, std::string_view what);

  /// Releases `bytes` on `machine`; clamps at zero.
  void Free(int machine, double bytes);
  void FreeEverywhere(double bytes_per_machine);

  double used_bytes(int machine) const { return used_bytes_[machine]; }
  /// Largest per-machine residency observed over the run.
  double peak_bytes() const { return peak_bytes_; }

  /// Best-effort allocation for engine caches. With no ledger bound this
  /// is exactly Allocate (the caller handles the failure, e.g. by
  /// evicting). Under a bound ledger the op is logged as *soft*: at
  /// commit a failed soft allocation is skipped and reported to the
  /// on_soft_fail callback instead of aborting the replay.
  Status AllocateSoft(int machine, double bytes, std::string_view what,
                      std::int64_t tag);

  // ---- Time accounting -----------------------------------------------------
  //
  // Work is charged inside phases. A phase ends at a synchronisation point
  // (job end, superstep barrier, sweep end); its wall time is
  //   fixed + max_over_machines(cpu_busy_m + net_out_m / bandwidth) [+latency]

  /// Opens a phase. Phases must not nest.
  void BeginPhase(std::string name);

  /// Charges `busy_seconds` of wall busy-time on one machine. Callers decide
  /// how their parallelism divides work (see ChargeParallelCpu).
  void ChargeCpu(int machine, double busy_seconds);
  void ChargeCpuAllMachines(double busy_seconds_each);

  /// Distributes `total_core_seconds` of perfectly parallel work across all
  /// cores of the cluster.
  void ChargeParallelCpu(double total_core_seconds);

  /// Distributes `core_seconds` across the cores of a single machine.
  void ChargeParallelCpuOnMachine(int machine, double core_seconds);

  /// Charges bytes leaving `machine` during this phase's shuffle.
  void ChargeNetwork(int machine, double bytes_out);
  void ChargeNetworkAll(double bytes_out_each);

  /// Serial coordinator-side time (job launch, barrier, master work).
  void ChargeFixed(double seconds);

  /// Closes the phase, adds its wall time to the clock, returns it.
  double EndPhase();

  /// Simulated seconds elapsed since construction / last ResetClock().
  double elapsed_seconds() const { return elapsed_seconds_; }

  /// Restarts the clock (e.g. between initialization and iterations) without
  /// touching the memory ledger.
  void ResetClock();

  const std::vector<PhaseRecord>& history() const { return history_; }

  /// Enables multiplicative run-to-run noise on phase times, modeling EC2
  /// day-to-day variance (Section 3.4). Disabled (0) by default.
  void SetNoise(double stddev_fraction, std::uint64_t seed);

  // ---- Fault hooks ---------------------------------------------------------
  //
  // Engines consult the installed FaultInjector at unit boundaries (job,
  // superstep, sweep) and translate faults into the per-phase adjustments
  // below. All three adjusters are serial-only (never under a bound
  // ledger) and affect only the *current* phase; when none are applied
  // EndPhase's arithmetic is untouched, keeping fault-free runs
  // bit-identical to builds that never call them.

  /// Installs (or clears, with nullptr) the shared fault schedule.
  void SetFaultInjector(std::shared_ptr<FaultInjector> faults);
  /// The installed schedule, or nullptr. Engines must treat a null or
  /// inactive injector as "no faults".
  FaultInjector* faults() const { return faults_.get(); }

  /// Multiplies this phase's accumulated CPU busy-time on `machine` by
  /// `factor` at EndPhase (straggler slow-down, task re-execution).
  void ScalePhaseCpu(int machine, double factor);

  /// Multiplies this phase's accumulated network bytes out of `machine`
  /// by `factor` at EndPhase (message-send retries).
  void ScalePhaseNet(int machine, double factor);

  /// Adds `fraction` of `src`'s *base* (pre-scale) phase CPU to `dst` at
  /// EndPhase — speculative execution: a backup copy of src's work runs
  /// on dst.
  void MirrorPhaseCpu(int src, int dst, double fraction);

  // ---- Parallel charge capture ---------------------------------------------
  //
  // All mutating methods above check ChargeLedger::Bound(): when a ledger
  // is bound to the calling thread (engines bind one per ParallelFor
  // chunk), the call is recorded instead of applied, and Allocate returns
  // OK optimistically. Committing the ledgers in chunk-index order replays
  // the exact serial op sequence, keeping simulated times, peak memory and
  // OOM points bit-identical at any host thread count (see
  // charge_ledger.h).

  /// Invoked for each committed allocation that was logged with
  /// ChargeLedger::LogTransientAlloc, with (machine, bytes).
  using TransientFn = std::function<void(int, double)>;

  /// Invoked for each *soft* allocation (AllocateSoft) that failed during
  /// commit, with (tag, machine, bytes). The handler may evict and retry
  /// the allocation itself through Allocate; replay continues either way.
  using SoftFailFn = std::function<void(std::int64_t, int, double)>;

  /// Replays `ledger` through the real methods in recorded order and
  /// clears it. Stops at the first (non-soft) allocation failure and
  /// returns it, discarding the remaining ops (the serial run would have
  /// died at that exact op); failed soft allocations are skipped,
  /// reported to `on_soft_fail`, and replay continues. If a ledger is
  /// bound to the calling thread — i.e. this commit happens inside an
  /// outer parallel chunk — the ops are spliced into the bound ledger
  /// instead and OK is returned; transient and soft flags travel with the
  /// ops, so the outer commit's callbacks see them.
  Status CommitLedger(ChargeLedger& ledger,
                      const TransientFn& on_transient = nullptr,
                      const SoftFailFn& on_soft_fail = nullptr);

  /// Batched CommitLedger over `count` ledgers in array (= chunk-index)
  /// order: identical semantics and op sequence to committing each in a
  /// loop, with the per-call Bound()/phase checks hoisted to once per
  /// batch. Stops at the first fatal allocation failure.
  Status CommitLedgers(ChargeLedger* const* ledgers, std::size_t count,
                       const TransientFn& on_transient = nullptr,
                       const SoftFailFn& on_soft_fail = nullptr);

 private:
  /// CommitLedger's replay loop, after the Bound()-splice check: inlined
  /// accumulator updates for time ops, real methods for memory ops.
  Status ReplayLedger(ChargeLedger& ledger, const TransientFn& on_transient,
                      const SoftFailFn& on_soft_fail);

  ClusterSpec spec_;
  std::vector<double> used_bytes_;
  double peak_bytes_ = 0;

  bool in_phase_ = false;
  std::string phase_name_;
  std::vector<double> phase_cpu_;
  std::vector<double> phase_net_;
  double phase_fixed_ = 0;

  double elapsed_seconds_ = 0;
  std::vector<PhaseRecord> history_;

  double noise_stddev_ = 0;
  stats::Rng noise_rng_;

  std::shared_ptr<FaultInjector> faults_;
  // Per-phase fault adjustments, applied in EndPhase. `phase_adjusted_`
  // stays false for fault-free runs so their EndPhase arithmetic is
  // untouched bit-for-bit.
  struct PhaseMirror {
    int src;
    int dst;
    double fraction;
  };
  bool phase_adjusted_ = false;
  std::vector<double> phase_cpu_scale_;
  std::vector<double> phase_net_scale_;
  std::vector<PhaseMirror> phase_mirrors_;

  void EnsurePhaseAdjust();
};

}  // namespace mlbench::sim
