#pragma once

#include <cstddef>
#include <vector>

#include "kernels/categorical.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"
#include "stats/rng.h"

/// \file gaussian.h
/// Fused / batched Gaussian density kernels.
///
/// FusedMvnMembership is the hot loop of the GMM membership sampler: for
/// every component it evaluates the Mahalanobis form against a cached
/// Cholesky factor and then draws the membership, all against reusable
/// scratch buffers. The naive path allocates four Vectors per point
/// (difference, solve result, log-weights, weights); the fused path
/// allocates nothing in steady state and folds the exp-normalization into
/// the categorical prefix sum. The arithmetic replicates
/// linalg::ForwardSubstitute + linalg::Dot operation-for-operation, so
/// draws are bit-identical to the naive sampler.
///
/// BatchedNormalLogPdf hoists the -log(stddev) - 0.5*log(2*pi) term out of
/// the per-point loop. Hoisting reassociates the sum, so results agree
/// with stats::NormalLogPdf to ~1e-12, not bitwise — likelihood and
/// reporting paths only, never a path that feeds an RNG draw.

namespace mlbench::kernels {

/// Reusable buffers for fused multivariate-normal membership draws.
struct MvnScratch {
  std::vector<double> y;     ///< forward-substitution solve
  std::vector<double> logw;  ///< per-component log-weights
  CategoricalScratch cat;
};

/// Draws a component index with probability proportional to
///   pi_c * Normal(x | mu_c, Sigma_c),
/// given per-component Cholesky factors chol[c] of Sigma_c and
/// log_pi_norm[c] = log(max(pi_c, 1e-300)) - 0.5*log|Sigma_c|.
/// Bit-identical (index and RNG consumption) to the two-pass
/// GmmMembershipSampler::Weights + stats::SampleCategorical composition.
std::size_t FusedMvnMembership(stats::Rng& rng, const linalg::Vector& x,
                               const std::vector<linalg::Vector>& mu,
                               const std::vector<linalg::Matrix>& chol,
                               const linalg::Vector& log_pi_norm,
                               MvnScratch* scratch);

/// out[i] = log Normal(x[i] | mean, stddev^2) for a contiguous block, with
/// the normalization constant hoisted. Within 1e-12 of the scalar
/// stats::NormalLogPdf (reassociated; see file comment).
void BatchedNormalLogPdf(const double* x, std::size_t n, double mean,
                         double stddev, double* out);

}  // namespace mlbench::kernels
