#include "kernels/lda_token.h"

namespace mlbench::kernels {

LogTable::LogTable(double offset, std::size_t max_count)
    : offset_(offset), table_(max_count + 1) {
  for (std::size_t i = 0; i <= max_count; ++i) {
    table_[i] = std::log(static_cast<double>(i) + offset_);
  }
}

void CollapsedCounts::Reset(std::size_t docs, std::size_t topics,
                            std::size_t vocab, double alpha, double beta) {
  docs_ = docs;
  topics_ = topics;
  vocab_ = vocab;
  alpha_ = alpha;
  beta_ = beta;
  beta_v_ = beta * static_cast<double>(vocab);
  wt_.assign(vocab * topics, 0.0);
  nt_.assign(topics, 0.0);
  dt_.assign(docs * topics, 0.0);
  dt_alpha_.assign(topics, alpha);
  nt_denom_.assign(topics, beta_v_);
  current_doc_ = 0;
}

void CollapsedCounts::AddToken(std::size_t doc, std::uint32_t word,
                               std::size_t topic) {
  wt_[static_cast<std::size_t>(word) * topics_ + topic] += 1;
  nt_[topic] += 1;
  dt_[doc * topics_ + topic] += 1;
  nt_denom_[topic] = nt_[topic] + beta_v_;
}

void CollapsedCounts::RemoveToken(std::size_t doc, std::uint32_t word,
                                  std::size_t topic) {
  wt_[static_cast<std::size_t>(word) * topics_ + topic] -= 1;
  nt_[topic] -= 1;
  dt_[doc * topics_ + topic] -= 1;
  nt_denom_[topic] = nt_[topic] + beta_v_;
}

void CollapsedCounts::BeginDoc(std::size_t doc) {
  current_doc_ = doc;
  const double* dt = dt_.data() + doc * topics_;
  for (std::size_t t = 0; t < topics_; ++t) dt_alpha_[t] = dt[t] + alpha_;
}

std::size_t CollapsedCounts::SampleTokenTopic(stats::Rng& rng,
                                              std::uint32_t word,
                                              std::size_t old_topic) {
  double* dtc = dt_.data() + current_doc_ * topics_;
  double* wtw = wt_.data() + static_cast<std::size_t>(word) * topics_;

  // Remove the token's own counts; refresh the two affected caches by
  // recomputation (exact; see file comment).
  wtw[old_topic] -= 1;
  nt_[old_topic] -= 1;
  dtc[old_topic] -= 1;
  nt_denom_[old_topic] = nt_[old_topic] + beta_v_;
  dt_alpha_[old_topic] = dtc[old_topic] + alpha_;

  const double* da = dt_alpha_.data();
  const double* nd = nt_denom_.data();
  const double beta = beta_;
  std::size_t new_topic =
      FusedCategorical(rng, topics_, &cat_, [&](std::size_t t) {
        return da[t] * (wtw[t] + beta) / nd[t];
      });

  wtw[new_topic] += 1;
  nt_[new_topic] += 1;
  dtc[new_topic] += 1;
  nt_denom_[new_topic] = nt_[new_topic] + beta_v_;
  dt_alpha_[new_topic] = dtc[new_topic] + alpha_;
  return new_topic;
}

}  // namespace mlbench::kernels
