#pragma once

#include <cstdint>
#include <vector>

#include "kernels/categorical.h"
#include "kernels/emission.h"
#include "linalg/vector.h"
#include "stats/rng.h"

/// \file hmm_forward.h
/// Fused HMM state-resampling kernel (the paper's alternating-parity
/// update, Section 7). Prepare() caches the model in kernel layout:
///  * transitions as a flat row-major K x K (previous-state row is
///    contiguous) plus a transposed copy (next-state column contiguous);
///  * emissions through EmissionTable (transposed or row-pointer mode,
///    picked by expected token volume).
/// ResampleStates then evaluates each position's K weights, their prefix
/// sum, and the draw in a single fused pass, bit-identical to
/// models::ResampleHmmStates (same weight products in the same order, one
/// NextDouble per resampled position, NextBounded on a non-positive
/// total).

namespace mlbench::kernels {

class HmmStateScratch {
 public:
  /// Rebuild the cached layouts from the current model. `expected_tokens`
  /// is the number of token draws this scratch will serve before the next
  /// Prepare (drives the emission-transpose heuristic).
  void Prepare(const linalg::Vector& delta0,
               const std::vector<linalg::Vector>& delta,
               const std::vector<linalg::Vector>& psi,
               std::size_t expected_tokens);

  /// Re-samples the parity-matching positions of one state sequence in
  /// place, exactly as models::ResampleHmmStates does.
  void ResampleStates(stats::Rng& rng, int iteration,
                      const std::vector<std::uint32_t>& words,
                      std::vector<std::uint8_t>* states);

  bool transposed_emissions() const { return psi_.transposed(); }

 private:
  std::size_t k_ = 0;
  std::vector<double> delta0_;
  std::vector<double> delta_;    ///< row-major K x K: [prev * K + s]
  std::vector<double> delta_t_;  ///< transposed K x K: [next * K + s]
  EmissionTable psi_;
  CategoricalScratch cat_;
};

}  // namespace mlbench::kernels
