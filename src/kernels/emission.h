#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "linalg/vector.h"

/// \file emission.h
/// Cached view of a K x V emission matrix (K per-state rows over a
/// V-word dictionary) for per-token weight loops of the form
/// row_s[word], s = 0..K — a strided gather across K separate rows in the
/// models' natural layout.
///
/// Prepare() picks one of two modes deterministically:
///  * transposed: a V x K flat copy, so the per-token K-loop is one
///    contiguous run. Costs O(KV) per Prepare, so it is only chosen when
///    the table is expected to serve at least V token draws;
///  * row pointers: a K-entry array of row base pointers, which removes
///    the double indirection through std::vector<Vector> without any
///    copy. Chosen for short-lived tables (e.g. one document per call).
///
/// Both modes read the same double values, so consumers are bit-identical
/// either way.

namespace mlbench::kernels {

class EmissionTable {
 public:
  /// Caches `rows` (K vectors of equal length V). The rows must outlive
  /// this table in row-pointer mode.
  void Prepare(const std::vector<linalg::Vector>& rows,
               std::size_t expected_draws);

  bool transposed() const { return transposed_; }
  std::size_t states() const { return k_; }

  /// Transposed mode only: contiguous column {row_0[w], ..., row_{K-1}[w]}.
  const double* Column(std::uint32_t w) const {
    return flat_.data() + static_cast<std::size_t>(w) * k_;
  }

  /// Row-pointer mode only: base pointer of row s.
  const double* const* RowPointers() const { return row_ptrs_.data(); }

 private:
  std::size_t k_ = 0;
  std::size_t vocab_ = 0;
  bool transposed_ = false;
  std::vector<double> flat_;  ///< V x K transposed copy
  std::vector<const double*> row_ptrs_;
};

}  // namespace mlbench::kernels
