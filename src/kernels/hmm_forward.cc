#include "kernels/hmm_forward.h"

namespace mlbench::kernels {

void HmmStateScratch::Prepare(const linalg::Vector& delta0,
                              const std::vector<linalg::Vector>& delta,
                              const std::vector<linalg::Vector>& psi,
                              std::size_t expected_tokens) {
  k_ = delta0.size();
  delta0_.assign(delta0.data(), delta0.data() + k_);
  delta_.resize(k_ * k_);
  delta_t_.resize(k_ * k_);
  for (std::size_t s = 0; s < k_; ++s) {
    const double* row = delta[s].data();
    for (std::size_t t = 0; t < k_; ++t) {
      delta_[s * k_ + t] = row[t];
      delta_t_[t * k_ + s] = row[t];
    }
  }
  psi_.Prepare(psi, expected_tokens);
}

void HmmStateScratch::ResampleStates(stats::Rng& rng, int iteration,
                                     const std::vector<std::uint32_t>& words,
                                     std::vector<std::uint8_t>* states) {
  const std::size_t k = k_;
  const std::size_t n = words.size();
  double* cum = cat_.Ensure(k);
  const bool tr = psi_.transposed();
  const double* const* rows = tr ? nullptr : psi_.RowPointers();
  for (std::size_t pos = 0; pos < n; ++pos) {
    // Same parity rule as models::ResampleHmmStates.
    if ((static_cast<std::size_t>(iteration) + pos) % 2 != 1) continue;
    std::uint32_t word = words[pos];
    const double* trans =
        pos == 0 ? delta0_.data() : delta_.data() + (*states)[pos - 1] * k;
    const double* next_col =
        pos + 1 < n ? delta_t_.data() + (*states)[pos + 1] * k : nullptr;
    double acc = 0;
    if (tr) {
      const double* col = psi_.Column(word);
      for (std::size_t s = 0; s < k; ++s) {
        double weight = col[s];
        weight *= trans[s];
        if (next_col != nullptr) weight *= next_col[s];
        acc += weight;
        cum[s] = acc;
      }
    } else {
      for (std::size_t s = 0; s < k; ++s) {
        double weight = rows[s][word];
        weight *= trans[s];
        if (next_col != nullptr) weight *= next_col[s];
        acc += weight;
        cum[s] = acc;
      }
    }
    if (acc <= 0) {
      (*states)[pos] = static_cast<std::uint8_t>(rng.NextBounded(k));
    } else {
      (*states)[pos] =
          static_cast<std::uint8_t>(SampleFromCumulative(rng, cum, k));
    }
  }
}

}  // namespace mlbench::kernels
