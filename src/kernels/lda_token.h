#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "kernels/categorical.h"
#include "stats/rng.h"

/// \file lda_token.h
/// The collapsed-LDA token kernel: word-major count state plus a fused
/// remove-count -> weight -> draw -> re-add step for one token.
///
/// Layout: the topic-word counts are stored *word-major* (V x T flat), so
/// the per-token loop over topics reads one contiguous cache line run
/// instead of gathering one element from each of T separate rows. The
/// doc-topic counts are a flat D x T array.
///
/// Incremental weights: the counts themselves are integer-valued doubles
/// maintained by exact +/-1 updates. The smoothed terms (n_dt + alpha and
/// the denominator n_t + beta*V) are cached per-topic and refreshed by
/// *recomputation* whenever the underlying count changes — never by
/// incrementing the cached float — so every weight is bit-identical to
/// evaluating the textbook expression
///   (n_dt + alpha) * (n_tw + beta) / (n_t + beta*V)
/// from scratch. Only two cache entries change per token, which removes
/// two adds per topic from the inner loop.

namespace mlbench::kernels {

/// Precomputed log(i + offset) for the small-count range, falling back to
/// std::log beyond the table. Entries are computed with std::log, so
/// lookups are bit-identical to calling std::log directly. The collapsed
/// sampler itself stays in linear space (its weights are ratios, not
/// log-counts), so this table serves diagnostics and likelihood paths.
class LogTable {
 public:
  LogTable(double offset, std::size_t max_count);

  double Log(std::size_t count) const {
    return count < table_.size()
               ? table_[count]
               : std::log(static_cast<double>(count) + offset_);
  }
  double offset() const { return offset_; }

 private:
  double offset_;
  std::vector<double> table_;
};

/// Count state of the collapsed sampler in kernel layout.
class CollapsedCounts {
 public:
  /// Zeroes all counts for the given shape and hyperparameters.
  void Reset(std::size_t docs, std::size_t topics, std::size_t vocab,
             double alpha, double beta);

  /// Exact +1 / -1 count updates (used when (re)building from assignments).
  void AddToken(std::size_t doc, std::uint32_t word, std::size_t topic);
  void RemoveToken(std::size_t doc, std::uint32_t word, std::size_t topic);

  /// Enters document `doc`: caches the smoothed doc-topic terms. Must be
  /// called before SampleTokenTopic for tokens of that document.
  void BeginDoc(std::size_t doc);

  /// Fused Gibbs step for one token of the current document: removes the
  /// token's counts, draws the new topic (one RNG draw, bit-identical to
  /// the two-pass reference), re-adds the counts, and returns the topic.
  std::size_t SampleTokenTopic(stats::Rng& rng, std::uint32_t word,
                               std::size_t old_topic);

  std::size_t topics() const { return topics_; }
  std::size_t vocab() const { return vocab_; }
  double alpha() const { return alpha_; }
  double beta() const { return beta_; }
  double beta_v() const { return beta_v_; }

  /// Topic-word count n_tw(t, w); word-major storage.
  double wt(std::size_t t, std::uint32_t w) const {
    return wt_[static_cast<std::size_t>(w) * topics_ + t];
  }
  /// Per-topic total n_t(t).
  double nt(std::size_t t) const { return nt_[t]; }
  /// Doc-topic count n_dt(d, t).
  double dt(std::size_t d, std::size_t t) const {
    return dt_[d * topics_ + t];
  }
  /// Contiguous word-major row {n_tw(0, w), ..., n_tw(T-1, w)}.
  const double* wt_row(std::uint32_t w) const {
    return wt_.data() + static_cast<std::size_t>(w) * topics_;
  }
  const double* dt_row(std::size_t d) const {
    return dt_.data() + d * topics_;
  }
  const double* nt_data() const { return nt_.data(); }

  CategoricalScratch* cat_scratch() { return &cat_; }

 private:
  std::size_t docs_ = 0, topics_ = 0, vocab_ = 0;
  double alpha_ = 0, beta_ = 0, beta_v_ = 0;
  std::size_t current_doc_ = 0;
  std::vector<double> wt_;        ///< word-major topic-word counts (V x T)
  std::vector<double> nt_;        ///< per-topic totals (T)
  std::vector<double> dt_;        ///< doc-topic counts (D x T)
  std::vector<double> dt_alpha_;  ///< cached n_dt(current_doc, t) + alpha
  std::vector<double> nt_denom_;  ///< cached n_t(t) + beta*V
  CategoricalScratch cat_;
};

}  // namespace mlbench::kernels
