#include "kernels/emission.h"

namespace mlbench::kernels {

void EmissionTable::Prepare(const std::vector<linalg::Vector>& rows,
                            std::size_t expected_draws) {
  k_ = rows.size();
  vocab_ = k_ == 0 ? 0 : rows[0].size();
  transposed_ = expected_draws >= vocab_;
  if (transposed_) {
    flat_.resize(vocab_ * k_);
    for (std::size_t s = 0; s < k_; ++s) {
      const double* r = rows[s].data();
      double* out = flat_.data() + s;
      for (std::size_t w = 0; w < vocab_; ++w) out[w * k_] = r[w];
    }
  } else {
    row_ptrs_.resize(k_);
    for (std::size_t s = 0; s < k_; ++s) row_ptrs_[s] = rows[s].data();
  }
}

}  // namespace mlbench::kernels
