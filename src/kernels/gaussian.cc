#include "kernels/gaussian.h"

#include <cmath>
#include <numbers>

namespace mlbench::kernels {

std::size_t FusedMvnMembership(stats::Rng& rng, const linalg::Vector& x,
                               const std::vector<linalg::Vector>& mu,
                               const std::vector<linalg::Matrix>& chol,
                               const linalg::Vector& log_pi_norm,
                               MvnScratch* scratch) {
  const std::size_t k = mu.size();
  const std::size_t d = x.size();
  if (scratch->y.size() < 2 * d) scratch->y.resize(2 * d);
  if (scratch->logw.size() < k) scratch->logw.resize(k);
  double* y0 = scratch->y.data();
  double* y1 = y0 + d;
  double* logw = scratch->logw.data();
  const double* xs = x.data();

  // Forward substitution L y = (x - mu_c) with the subtraction folded into
  // each row's seed and Dot(y, y) folded into the same sweep. The per-row
  // arithmetic replicates linalg::ForwardSubstitute (seed, j<i updates in
  // order, divide) and the dot accumulates in i order like linalg::Dot, so
  // each component's log-weight is bit-identical to the two-pass path.
  //
  // Components are independent, so two are interleaved per pass: the row
  // divide has double-digit cycle latency and row i+1 depends on y[i], so
  // a single substitution stalls on its own divide chain. Pairing overlaps
  // the two chains without reordering any component's own operations.
  std::size_t c = 0;
  for (; c + 1 < k; c += 2) {
    const double* m0 = mu[c].data();
    const double* m1 = mu[c + 1].data();
    const double* l0 = chol[c].data();
    const double* l1 = chol[c + 1].data();
    double dot0 = 0, dot1 = 0;
    for (std::size_t i = 0; i < d; ++i) {
      const double* r0 = l0 + i * d;
      const double* r1 = l1 + i * d;
      double s0 = xs[i] - m0[i];
      double s1 = xs[i] - m1[i];
      for (std::size_t j = 0; j < i; ++j) {
        s0 -= r0[j] * y0[j];
        s1 -= r1[j] * y1[j];
      }
      double v0 = s0 / r0[i];
      double v1 = s1 / r1[i];
      y0[i] = v0;
      y1[i] = v1;
      dot0 += v0 * v0;
      dot1 += v1 * v1;
    }
    logw[c] = log_pi_norm[c] - 0.5 * dot0;
    logw[c + 1] = log_pi_norm[c + 1] - 0.5 * dot1;
  }
  for (; c < k; ++c) {
    const double* m = mu[c].data();
    const double* ld = chol[c].data();
    double dot = 0;
    for (std::size_t i = 0; i < d; ++i) {
      const double* lrow = ld + i * d;
      double s = xs[i] - m[i];
      for (std::size_t j = 0; j < i; ++j) s -= lrow[j] * y0[j];
      double yi = s / lrow[i];
      y0[i] = yi;
      dot += yi * yi;
    }
    logw[c] = log_pi_norm[c] - 0.5 * dot;
  }
  double max_lw = -1e300;
  for (std::size_t ci = 0; ci < k; ++ci) max_lw = std::max(max_lw, logw[ci]);
  // Fused exp-normalize + prefix sum + draw (one pass, one NextDouble).
  return FusedCategorical(rng, k, &scratch->cat, [&](std::size_t c) {
    return std::exp(logw[c] - max_lw);
  });
}

void BatchedNormalLogPdf(const double* x, std::size_t n, double mean,
                         double stddev, double* out) {
  const double inv_sd = 1.0 / stddev;
  const double c =
      -std::log(stddev) - 0.5 * std::log(2.0 * std::numbers::pi);
  for (std::size_t i = 0; i < n; ++i) {
    double z = (x[i] - mean) * inv_sd;
    out[i] = -0.5 * z * z + c;
  }
}

}  // namespace mlbench::kernels
