#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

#include "common/logging.h"
#include "stats/rng.h"

/// \file categorical.h
/// Fused categorical-draw kernels.
///
/// The naive sampler (stats::SampleCategorical) makes two passes over the
/// weight vector: one to total the weights, one to scan for the drawn
/// index — and every call site first fills a temporary Vector. The fused
/// kernel computes the weights, their running (inclusive) prefix sum, and
/// the draw in a single pass over a reusable scratch buffer.
///
/// Bit-identity contract: the prefix sums are accumulated in index order,
/// so cum[i] equals the naive scan's `acc` after step i bit-for-bit, and
/// `std::upper_bound` (first element > u) picks the same index as the
/// naive `u < acc` scan, including the clamp to n-1 when roundoff pushes
/// u past the total. Exactly one NextDouble is consumed, as before.

namespace mlbench::kernels {

/// Reusable buffer for allocation-free categorical draws. One scratch per
/// sampling loop; grows monotonically and is never shrunk.
struct CategoricalScratch {
  /// Returns a buffer of at least n doubles.
  double* Ensure(std::size_t n) {
    if (cum.size() < n) cum.resize(n);
    return cum.data();
  }

  std::vector<double> cum;
};

/// Draws an index from inclusive prefix sums cum[0..n): the same index the
/// naive linear scan returns for the underlying weights. The total
/// (cum[n-1]) must be positive. Consumes exactly one NextDouble.
inline std::size_t SampleFromCumulative(stats::Rng& rng, const double* cum,
                                        std::size_t n) {
  const double total = cum[n - 1];
  MLBENCH_CHECK_MSG(total > 0, "categorical weights must have positive sum");
  const double u = rng.NextDouble() * total;
  const double* it = std::upper_bound(cum, cum + n, u);
  std::size_t i = static_cast<std::size_t>(it - cum);
  return i < n ? i : n - 1;
}

/// Fused weight-evaluation + prefix-sum + draw: weight(i) is evaluated once
/// per index, in order, and the draw is bit-identical to
///   stats::SampleCategorical(rng, {weight(0), ..., weight(n-1)}).
template <typename WeightFn>
std::size_t FusedCategorical(stats::Rng& rng, std::size_t n,
                             CategoricalScratch* scratch, WeightFn&& weight) {
  double* cum = scratch->Ensure(n);
  double acc = 0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += weight(i);
    cum[i] = acc;
  }
  return SampleFromCumulative(rng, cum, n);
}

}  // namespace mlbench::kernels
