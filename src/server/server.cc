#include "server/server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <utility>

#include "exec/thread_pool.h"
#include "server/runner.h"

namespace mlbench::server {

namespace {

// Host bytes a SQL request's session database will touch: the synthetic
// table (3 values/row), its columnar copy, and hash-join/aggregate
// intermediates, with the same x1.5 headroom the experiment estimate uses.
double EstimateSqlHostBytes(std::int64_t rows) {
  return (static_cast<double>(rows) * 3.0 * 16.0 * 4.0 + 65536.0) * 1.5;
}

Status SendError(int fd, std::uint64_t id, const Status& st) {
  ErrorMsg msg;
  msg.id = id;
  msg.code = st.code();
  msg.message = st.message();
  return WriteFrame(fd, MsgType::kError, EncodeError(msg));
}

}  // namespace

Server::Server(ServerOptions opts)
    : opts_(opts),
      admission_(std::make_unique<AdmissionController>(opts.budget_bytes,
                                                       opts.max_queue)) {}

Server::~Server() {
  RequestDrain();
  CancelInflight();
  Join();
}

Status Server::Start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(opts_.port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    Status st = Status::Internal(std::string("bind: ") +
                                 std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) ==
      0) {
    port_ = ntohs(addr.sin_port);
  }
  if (::listen(listen_fd_, 128) < 0) {
    Status st = Status::Internal(std::string("listen: ") +
                                 std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  if (::pipe(wake_pipe_) != 0) {
    Status st = Status::Internal(std::string("pipe: ") +
                                 std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  // Warm the shared pool before any session can touch it: Global()'s
  // lazy construction is the one first-call race in an otherwise
  // concurrent-caller-safe pool.
  (void)exec::ThreadPool::Global();
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void Server::AcceptLoop() {
  for (;;) {
    pollfd fds[2];
    fds[0] = {listen_fd_, POLLIN, 0};
    fds[1] = {wake_pipe_[0], POLLIN, 0};
    int ready = ::poll(fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if ((fds[1].revents & POLLIN) != 0 || draining_.load()) return;
    if ((fds[0].revents & POLLIN) == 0) continue;
    sockaddr_in peer{};
    socklen_t len = sizeof(peer);
    int fd = ::accept(listen_fd_, reinterpret_cast<sockaddr*>(&peer), &len);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return;
    }
    // A client that stops reading must not wedge this session forever.
    if (opts_.send_timeout_ms > 0) {
      timeval tv{};
      tv.tv_sec = opts_.send_timeout_ms / 1000;
      tv.tv_usec = (opts_.send_timeout_ms % 1000) * 1000;
      ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    ReapFinishedSessions();
    std::lock_guard<std::mutex> lock(sessions_mu_);
    if (static_cast<int>(sessions_.size()) >= opts_.max_sessions) {
      // Refuse with a well-formed frame so the client can back off and
      // retry rather than guessing why the connection died.
      Status refused = SendError(
          fd, 0, Status::ResourceExhausted("too many concurrent sessions"));
      (void)refused;
      ::close(fd);
      std::lock_guard<std::mutex> counters_lock(counters_mu_);
      ++counters_.sessions_refused;
      continue;
    }
    auto session = std::make_unique<Session>();
    session->fd = fd;
    Session* raw = session.get();
    session->thread = std::thread([this, raw] { ServeSession(raw); });
    sessions_.push_back(std::move(session));
    {
      std::lock_guard<std::mutex> counters_lock(counters_mu_);
      ++counters_.sessions_accepted;
    }
  }
}

void Server::ReapFinishedSessions() {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    if ((*it)->done.load()) {
      (*it)->thread.join();
      it = sessions_.erase(it);
    } else {
      ++it;
    }
  }
}

void Server::ServeSession(Session* session) {
  for (;;) {
    Frame frame;
    Status st = ReadFrame(session->fd, &frame);
    if (!st.ok()) {
      // NotFound("eof") is the clean goodbye; anything else is a torn or
      // malformed stream (or a dead peer) and ends the session too.
      if (st.code() != StatusCode::kNotFound) {
        std::lock_guard<std::mutex> lock(counters_mu_);
        ++counters_.protocol_errors;
      }
      break;
    }
    {
      std::lock_guard<std::mutex> lock(counters_mu_);
      ++counters_.requests;
    }
    if (!ServeOne(session, frame)) break;
  }
  // Teardown: close exactly once, under the registry lock so a racing
  // RequestDrain() never shutdown()s a recycled descriptor.
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    ::close(session->fd);
    session->fd = -1;
  }
  session->done.store(true);
}

void Server::CountResponse(const Status& st, bool is_error_frame) {
  std::lock_guard<std::mutex> lock(counters_mu_);
  if (is_error_frame) {
    ++counters_.errors_sent;
  } else if (st.ok()) {
    ++counters_.results_ok;
  } else {
    ++counters_.results_failed;
  }
}

bool Server::ServeOne(Session* session, const Frame& frame) {
  const int fd = session->fd;
  switch (frame.type) {
    case MsgType::kPing:
      return WriteFrame(fd, MsgType::kPong, frame.payload).ok();

    case MsgType::kExperiment: {
      auto req = ParseExperimentRequest(frame.payload);
      if (!req.ok()) {
        CountResponse(req.status(), /*is_error_frame=*/true);
        return SendError(fd, 0, req.status()).ok();
      }
      auto estimate = EstimateHostPeakBytes(*req);
      if (!estimate.ok()) {
        CountResponse(estimate.status(), /*is_error_frame=*/true);
        return SendError(fd, req->id, estimate.status()).ok();
      }
      auto ticket = admission_->Admit(
          *estimate, req->deadline_ms,
          req->workload + "/" + req->platform + "#" +
              std::to_string(req->id));
      if (!ticket.ok()) {
        CountResponse(ticket.status(), /*is_error_frame=*/true);
        return SendError(fd, req->id, ticket.status()).ok();
      }
      std::function<void(int, int)> progress;
      if (req->want_progress) {
        const std::uint64_t id = req->id;
        progress = [this, session, fd, id](int done, int total) {
          ProgressMsg p;
          p.id = id;
          p.iteration = done;
          p.total = total;
          if (!WriteFrame(fd, MsgType::kProgress, EncodeProgress(p)).ok()) {
            // The client is gone; stop the run at its next boundary
            // instead of burning the pool on an unwanted result.
            session->cancel.Cancel(
                Status::Unavailable("client connection lost"));
          }
        };
      }
      RunOutcome outcome =
          ExecuteExperiment(*req, &session->cancel, std::move(progress));
      double queue_ms = ticket->queue_ms();
      ticket->Release();  // free the bytes before blocking on the client
      if (!outcome.result.ok() && session->cancel.cancelled()) {
        // Cancellation (drain or lost client), not a simulated outcome.
        CountResponse(outcome.result.status, /*is_error_frame=*/true);
        return SendError(fd, req->id, outcome.result.status).ok();
      }
      ResultMsg msg;
      msg.id = req->id;
      msg.code = outcome.result.status.code();
      msg.message = outcome.result.status.message();
      msg.init_seconds = outcome.result.init_seconds;
      msg.iteration_seconds = outcome.result.iteration_seconds;
      msg.peak_machine_bytes = outcome.result.peak_machine_bytes;
      msg.digest = outcome.digest;
      msg.queue_ms = queue_ms;
      CountResponse(outcome.result.status, /*is_error_frame=*/false);
      return WriteFrame(fd, MsgType::kResult, EncodeResult(msg)).ok();
    }

    case MsgType::kSql: {
      auto req = ParseSqlRequest(frame.payload);
      if (!req.ok()) {
        CountResponse(req.status(), /*is_error_frame=*/true);
        return SendError(fd, 0, req.status()).ok();
      }
      auto ticket =
          admission_->Admit(EstimateSqlHostBytes(req->rows),
                            req->deadline_ms,
                            "sql#" + std::to_string(req->id));
      if (!ticket.ok()) {
        CountResponse(ticket.status(), /*is_error_frame=*/true);
        return SendError(fd, req->id, ticket.status()).ok();
      }
      SqlOutcome outcome = ExecuteSql(*req);
      double queue_ms = ticket->queue_ms();
      ticket->Release();
      if (!outcome.status.ok()) {
        CountResponse(outcome.status, /*is_error_frame=*/true);
        return SendError(fd, req->id, outcome.status).ok();
      }
      ResultMsg msg;
      msg.id = req->id;
      msg.code = StatusCode::kOk;
      msg.result_rows = outcome.result_rows;
      msg.digest = outcome.digest;
      msg.queue_ms = queue_ms;
      CountResponse(outcome.status, /*is_error_frame=*/false);
      return WriteFrame(fd, MsgType::kResult, EncodeResult(msg)).ok();
    }

    default: {
      // A response-type frame from a client is a protocol violation.
      std::lock_guard<std::mutex> lock(counters_mu_);
      ++counters_.protocol_errors;
      return false;
    }
  }
}

void Server::RequestDrain() {
  bool was = draining_.exchange(true);
  admission_->Shutdown();
  if (!was && wake_pipe_[1] >= 0) {
    // Unblocks the poll()ing accept loop; the listening socket itself is
    // closed in Join after the loop exits.
    char byte = 1;
    ssize_t n = ::write(wake_pipe_[1], &byte, 1);
    (void)n;
  }
  // Half-close every session's read side: a session blocked waiting for
  // its client's next request sees EOF and winds down cleanly, while a
  // session mid-run keeps its write side to flush the pending response —
  // this is what "graceful" means here: no torn output, ever.
  std::lock_guard<std::mutex> lock(sessions_mu_);
  for (const auto& session : sessions_) {
    if (session->fd >= 0) ::shutdown(session->fd, SHUT_RD);
  }
}

void Server::CancelInflight() {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  for (const auto& session : sessions_) {
    session->cancel.Cancel(
        Status::Unavailable("server shutting down (hard stop)"));
  }
}

void Server::Join() {
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  for (int& fd : wake_pipe_) {
    if (fd >= 0) {
      ::close(fd);
      fd = -1;
    }
  }
  for (;;) {
    std::unique_ptr<Session> victim;
    {
      std::lock_guard<std::mutex> lock(sessions_mu_);
      if (sessions_.empty()) break;
      victim = std::move(sessions_.back());
      sessions_.pop_back();
    }
    victim->thread.join();
  }
}

void Server::Stop() {
  RequestDrain();
  Join();
}

ServerCounters Server::counters() const {
  std::lock_guard<std::mutex> lock(counters_mu_);
  return counters_;
}

}  // namespace mlbench::server
