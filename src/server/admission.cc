#include "server/admission.h"

#include <algorithm>

#include "common/str_format.h"

namespace mlbench::server {

Ticket& Ticket::operator=(Ticket&& o) noexcept {
  if (this != &o) {
    Release();
    controller_ = o.controller_;
    reservation_id_ = o.reservation_id_;
    queue_ms_ = o.queue_ms_;
    o.controller_ = nullptr;
    o.reservation_id_ = 0;
  }
  return *this;
}

void Ticket::Release() {
  if (controller_ != nullptr) {
    controller_->ReleaseReservation(reservation_id_);
    controller_ = nullptr;
    reservation_id_ = 0;
  }
}

AdmissionController::AdmissionController(double budget_bytes,
                                         std::size_t max_queue)
    : ledger_(budget_bytes), max_queue_(max_queue) {}

Result<Ticket> AdmissionController::Admit(double bytes,
                                          std::int64_t deadline_ms,
                                          std::string_view what) {
  using Clock = std::chrono::steady_clock;
  const Clock::time_point arrival = Clock::now();
  const bool has_deadline = deadline_ms > 0;
  const Clock::time_point deadline =
      arrival + std::chrono::milliseconds(has_deadline ? deadline_ms : 0);

  std::unique_lock<std::mutex> lock(mu_);
  if (shutdown_) {
    return Status::ResourceExhausted("server is shutting down");
  }
  if (ledger_.NeverFits(bytes)) {
    ++stats_.rejected_never_fits;
    return Status::ResourceExhausted(
        std::string(what) + ": " + FormatBytes(bytes) +
        " exceeds the whole host budget of " +
        FormatBytes(ledger_.budget_bytes()));
  }

  auto queue_ms = [&arrival] {
    return std::chrono::duration<double, std::milli>(Clock::now() - arrival)
        .count();
  };

  // Fast path: capacity available and nobody queued ahead of us.
  if (waiters_.empty() && ledger_.Fits(bytes)) {
    auto id = ledger_.Reserve(bytes, what);
    if (id.ok()) {
      ++stats_.admitted;
      stats_.peak_reserved_bytes = std::max(stats_.peak_reserved_bytes,
                                            ledger_.reserved_bytes());
      return Ticket(this, *id, queue_ms());
    }
  }

  // Queue (bounded). A full queue is the overload signal: shed now, with
  // a retryable code, instead of accumulating unbounded latency.
  if (waiters_.size() >= max_queue_) {
    ++stats_.shed_queue_full;
    return Status::ResourceExhausted(
        std::string(what) + ": admission queue full (" +
        std::to_string(max_queue_) + " waiters); load shed");
  }
  const std::uint64_t my_turn = next_waiter_++;
  waiters_.push_back(my_turn);
  stats_.peak_queue_depth = std::max(
      stats_.peak_queue_depth, static_cast<std::int64_t>(waiters_.size()));

  auto remove_me = [&] {
    waiters_.erase(std::find(waiters_.begin(), waiters_.end(), my_turn));
    // Our departure may unblock the new front (FIFO head-of-line).
    cv_.notify_all();
  };

  for (;;) {
    if (shutdown_) {
      remove_me();
      return Status::ResourceExhausted("server is shutting down");
    }
    // Strict FIFO: only the front waiter may take capacity.
    if (waiters_.front() == my_turn && ledger_.Fits(bytes)) {
      auto id = ledger_.Reserve(bytes, what);
      if (id.ok()) {
        remove_me();
        ++stats_.admitted;
        ++stats_.admitted_after_wait;
        stats_.peak_reserved_bytes = std::max(stats_.peak_reserved_bytes,
                                              ledger_.reserved_bytes());
        return Ticket(this, *id, queue_ms());
      }
    }
    if (has_deadline) {
      if (cv_.wait_until(lock, deadline) == std::cv_status::timeout &&
          Clock::now() >= deadline) {
        // Re-check one last time under the lock: capacity may have freed
        // concurrently with the timeout.
        if (waiters_.front() == my_turn && ledger_.Fits(bytes)) continue;
        remove_me();
        ++stats_.shed_deadline;
        return Status::DeadlineExceeded(
            std::string(what) + ": deadline of " +
            std::to_string(deadline_ms) + " ms passed while queued");
      }
    } else {
      cv_.wait(lock);
    }
  }
}

void AdmissionController::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
}

void AdmissionController::ReleaseReservation(std::int64_t id) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    // NotFound here would mean a Ticket double-release, which the Ticket
    // API makes impossible; crash loudly in debug, ignore in release.
    Status st = ledger_.Release(id);
    (void)st;
  }
  cv_.notify_all();
}

AdmissionStats AdmissionController::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

double AdmissionController::budget_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ledger_.budget_bytes();
}

double AdmissionController::reserved_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ledger_.reserved_bytes();
}

std::size_t AdmissionController::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return waiters_.size();
}

}  // namespace mlbench::server
