#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "server/protocol.h"
#include "sim/faults.h"

/// \file client.h
/// Blocking client for the experiment server, with reconnect + retry.
///
/// Retry model: transport failures (dead connection, torn frame, send
/// timeout) and retryable server responses (ResourceExhausted load sheds)
/// are retried up to sim::RetryPolicy::max_retries times with that
/// policy's exponential backoff — the same policy type the simulated
/// platforms use for their recovery paths, here applied to real wall
/// time. DeadlineExceeded and InvalidArgument are terminal: the deadline
/// has already passed / the request will never parse better.
///
/// Chaos mode: with MLBENCH_FAULT_SEED set, the FaultSpec conn_drop /
/// slow_client knobs make this client deterministically misbehave — drop
/// the connection right after sending request #i, or read response #i
/// only after a stall — per the pure hash sim::HashChance(seed, tag, i).
/// This exercises the server's teardown and SO_SNDTIMEO paths from tests
/// without any nondeterministic packet games.

namespace mlbench::server {

struct ClientOptions {
  int port = 0;
  sim::RetryPolicy retry{/*max_retries=*/4, /*base_backoff_s=*/0.02,
                         /*backoff_multiplier=*/2.0};
  /// Chaos knobs, typically FaultSpec::FromEnv(): seed gates, conn_drop /
  /// slow_client rates drive the deterministic misbehaviour schedule.
  sim::FaultSpec chaos;
  /// Stall length for a slow_client read, milliseconds.
  int slow_read_ms = 50;
};

/// Retry / chaos accounting across a client's lifetime.
struct ClientStats {
  std::int64_t requests = 0;
  std::int64_t retries = 0;
  std::int64_t reconnects = 0;
  std::int64_t chaos_conn_drops = 0;
  std::int64_t chaos_slow_reads = 0;
  std::int64_t sheds_seen = 0;     ///< ResourceExhausted responses
  std::int64_t deadlines_seen = 0; ///< DeadlineExceeded responses
};

class Client {
 public:
  explicit Client(ClientOptions opts);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects (or reconnects) to 127.0.0.1:port.
  Status Connect();
  void Close();
  bool connected() const { return fd_ >= 0; }

  Status Ping();

  /// Sends the request and reads frames until its terminal response.
  /// kProgress frames are appended to `progress` when non-null. A
  /// returned error Status carries the server's (or transport's) code.
  Result<ResultMsg> RunExperiment(const ExperimentRequest& req,
                                  std::vector<ProgressMsg>* progress =
                                      nullptr);
  Result<ResultMsg> RunSql(const SqlRequest& req);

  const ClientStats& stats() const { return stats_; }

 private:
  Result<ResultMsg> Roundtrip(MsgType type, const std::string& payload,
                              std::uint64_t id,
                              std::vector<ProgressMsg>* progress);
  Result<ResultMsg> OneAttempt(MsgType type, const std::string& payload,
                               std::uint64_t id,
                               std::vector<ProgressMsg>* progress,
                               std::int64_t chaos_unit);
  static bool Retryable(const Status& st);

  ClientOptions opts_;
  int fd_ = -1;
  std::int64_t request_index_ = 0;  ///< chaos schedule unit
  ClientStats stats_;
};

}  // namespace mlbench::server
