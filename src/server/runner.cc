#include "server/runner.h"

#include <cstring>
#include <string>
#include <utility>
#include <variant>

#include "core/gmm_bsp.h"
#include "core/gmm_dataflow.h"
#include "core/gmm_gas.h"
#include "core/gmm_reldb.h"
#include "core/hmm_bsp.h"
#include "core/hmm_dataflow.h"
#include "core/hmm_gas.h"
#include "core/hmm_reldb.h"
#include "core/lasso_bsp.h"
#include "core/lasso_dataflow.h"
#include "core/lasso_gas.h"
#include "core/lasso_reldb.h"
#include "core/lda_bsp.h"
#include "core/lda_dataflow.h"
#include "core/lda_gas.h"
#include "core/lda_reldb.h"
#include "reldb/sql.h"
#include "sim/faults.h"

namespace mlbench::server {

namespace {

enum class Workload { kGmm, kLasso, kHmm, kLda, kImputation };
enum class Platform { kDataflow, kRelDb, kGas, kBsp };

Result<Workload> ParseWorkload(const std::string& name) {
  if (name == "gmm") return Workload::kGmm;
  if (name == "lasso") return Workload::kLasso;
  if (name == "hmm") return Workload::kHmm;
  if (name == "lda") return Workload::kLda;
  if (name == "imputation") return Workload::kImputation;
  return Status::InvalidArgument("unknown workload: " + name);
}

Result<Platform> ParsePlatform(const std::string& name) {
  if (name == "dataflow") return Platform::kDataflow;
  if (name == "reldb") return Platform::kRelDb;
  if (name == "gas") return Platform::kGas;
  if (name == "bsp") return Platform::kBsp;
  return Status::InvalidArgument("unknown platform: " + name);
}

// Server-side defaults for actual executed records per machine — smaller
// than the bench binaries' (a server multiplexes many runs), same
// logical scale, so results stay paper-shaped.
long long DefaultActualPerMachine(Workload w) {
  switch (w) {
    case Workload::kGmm:
    case Workload::kImputation:
      return 500;
    case Workload::kLasso:
      return 150;
    case Workload::kHmm:
    case Workload::kLda:
      return 20;
  }
  return 500;
}

// Applies the request's shared knobs onto a config.
void ApplyConfig(const ExperimentRequest& req, Workload w,
                 const exec::CancelToken* cancel,
                 std::function<void(int, int)> progress,
                 core::ExperimentConfig* config) {
  config->machines = req.machines;
  config->iterations = req.iterations;
  config->seed = req.seed;
  config->data.actual_per_machine = req.actual_per_machine > 0
                                        ? req.actual_per_machine
                                        : DefaultActualPerMachine(w);
  config->cancel = cancel;
  config->progress = std::move(progress);
}

}  // namespace

std::uint64_t DigestBytes(std::uint64_t h, const void* data, std::size_t n) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;  // FNV-1a 64 prime
  }
  return h;
}

std::uint64_t DigestF64(std::uint64_t h, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return DigestBytes(h, &bits, sizeof(bits));
}

namespace {

std::uint64_t DigestVector(std::uint64_t h, const linalg::Vector& v) {
  for (double x : v) h = DigestF64(h, x);
  return h;
}

std::uint64_t DigestRunResult(std::uint64_t h, const core::RunResult& r) {
  std::uint8_t code = static_cast<std::uint8_t>(r.status.code());
  h = DigestBytes(h, &code, 1);
  h = DigestF64(h, r.init_seconds);
  for (double t : r.iteration_seconds) h = DigestF64(h, t);
  h = DigestF64(h, r.peak_machine_bytes);
  return h;
}

// ---- Per-workload dispatch -------------------------------------------------

RunOutcome RunGmmCell(const ExperimentRequest& req, Workload w,
                      Platform platform, const exec::CancelToken* cancel,
                      std::function<void(int, int)> progress) {
  core::GmmExperiment exp;
  ApplyConfig(req, w, cancel, std::move(progress), &exp.config);
  exp.config.data.logical_per_machine = 10e6;
  exp.imputation = w == Workload::kImputation;
  models::GmmParams model;
  RunOutcome out;
  switch (platform) {
    case Platform::kDataflow:
      out.result = core::RunGmmDataflow(exp, &model);
      break;
    case Platform::kRelDb:
      exp.language = sim::Language::kJava;
      out.result = core::RunGmmRelDb(exp, &model);
      break;
    case Platform::kGas:
      exp.language = sim::Language::kCpp;
      exp.super_vertex = true;  // naive GraphLab GMM is a paper "Fail"
      out.result = core::RunGmmGas(exp, &model);
      break;
    case Platform::kBsp:
      exp.language = sim::Language::kJava;
      out.result = core::RunGmmBsp(exp, &model);
      break;
  }
  std::uint64_t h = DigestRunResult(kDigestSeed, out.result);
  h = DigestVector(h, model.pi);
  for (const auto& mu : model.mu) h = DigestVector(h, mu);
  for (const auto& sigma : model.sigma) {
    h = DigestBytes(h, sigma.data(),
                    sigma.rows() * sigma.cols() * sizeof(double));
  }
  out.digest = h;
  return out;
}

RunOutcome RunLassoCell(const ExperimentRequest& req, Platform platform,
                        const exec::CancelToken* cancel,
                        std::function<void(int, int)> progress) {
  core::LassoExperiment exp;
  ApplyConfig(req, Workload::kLasso, cancel, std::move(progress),
              &exp.config);
  models::LassoState state;
  RunOutcome out;
  switch (platform) {
    case Platform::kDataflow:
      out.result = core::RunLassoDataflow(exp, &state);
      break;
    case Platform::kRelDb:
      exp.language = sim::Language::kJava;
      out.result = core::RunLassoRelDb(exp, &state);
      break;
    case Platform::kGas:
      exp.language = sim::Language::kCpp;
      out.result = core::RunLassoGas(exp, &state);
      break;
    case Platform::kBsp:
      exp.language = sim::Language::kJava;
      exp.super_vertex = true;  // Giraph ran only with super vertices
      out.result = core::RunLassoBsp(exp, &state);
      break;
  }
  std::uint64_t h = DigestRunResult(kDigestSeed, out.result);
  h = DigestVector(h, state.beta);
  h = DigestF64(h, state.sigma2);
  h = DigestVector(h, state.inv_tau2);
  out.digest = h;
  return out;
}

RunOutcome RunHmmCell(const ExperimentRequest& req, Platform platform,
                      const exec::CancelToken* cancel,
                      std::function<void(int, int)> progress) {
  core::HmmExperiment exp;
  ApplyConfig(req, Workload::kHmm, cancel, std::move(progress), &exp.config);
  models::HmmParams model;
  RunOutcome out;
  switch (platform) {
    case Platform::kDataflow:
      out.result = core::RunHmmDataflow(exp, &model);
      break;
    case Platform::kRelDb:
      exp.language = sim::Language::kJava;
      out.result = core::RunHmmRelDb(exp, &model);
      break;
    case Platform::kGas:
      exp.language = sim::Language::kCpp;
      exp.granularity = core::TextGranularity::kSuperVertex;
      out.result = core::RunHmmGas(exp, &model);
      break;
    case Platform::kBsp:
      exp.language = sim::Language::kJava;
      out.result = core::RunHmmBsp(exp, &model);
      break;
  }
  std::uint64_t h = DigestRunResult(kDigestSeed, out.result);
  h = DigestVector(h, model.delta0);
  for (const auto& row : model.delta) h = DigestVector(h, row);
  for (const auto& row : model.psi) h = DigestVector(h, row);
  out.digest = h;
  return out;
}

RunOutcome RunLdaCell(const ExperimentRequest& req, Platform platform,
                      const exec::CancelToken* cancel,
                      std::function<void(int, int)> progress) {
  core::LdaExperiment exp;
  ApplyConfig(req, Workload::kLda, cancel, std::move(progress), &exp.config);
  models::LdaParams model;
  RunOutcome out;
  switch (platform) {
    case Platform::kDataflow:
      out.result = core::RunLdaDataflow(exp, &model);
      break;
    case Platform::kRelDb:
      exp.language = sim::Language::kJava;
      out.result = core::RunLdaRelDb(exp, &model);
      break;
    case Platform::kGas:
      exp.language = sim::Language::kCpp;
      exp.granularity = core::TextGranularity::kSuperVertex;
      out.result = core::RunLdaGas(exp, &model);
      break;
    case Platform::kBsp:
      exp.language = sim::Language::kJava;
      out.result = core::RunLdaBsp(exp, &model);
      break;
  }
  std::uint64_t h = DigestRunResult(kDigestSeed, out.result);
  for (const auto& row : model.phi) h = DigestVector(h, row);
  out.digest = h;
  return out;
}

}  // namespace

Status ValidateExperiment(const ExperimentRequest& req) {
  auto w = ParseWorkload(req.workload);
  if (!w.ok()) return w.status();
  auto p = ParsePlatform(req.platform);
  if (!p.ok()) return p.status();
  if (req.machines < 1 || req.machines > 1000) {
    return Status::InvalidArgument("machines out of range [1, 1000]: " +
                                   std::to_string(req.machines));
  }
  if (req.iterations < 1 || req.iterations > 100) {
    return Status::InvalidArgument("iterations out of range [1, 100]: " +
                                   std::to_string(req.iterations));
  }
  if (req.actual_per_machine < 0 || req.actual_per_machine > 1000000) {
    return Status::InvalidArgument("actual_per_machine out of range");
  }
  if (req.deadline_ms < 0) {
    return Status::InvalidArgument("negative deadline_ms");
  }
  return Status::OK();
}

Result<double> EstimateHostPeakBytes(const ExperimentRequest& req) {
  if (Status st = ValidateExperiment(req); !st.ok()) return st;
  Workload w = *ParseWorkload(req.workload);
  long long per_machine = req.actual_per_machine > 0
                              ? req.actual_per_machine
                              : DefaultActualPerMachine(w);
  double points = static_cast<double>(req.machines) *
                  static_cast<double>(per_machine);
  double point_bytes = 0;
  double model_bytes = 0;
  switch (w) {
    case Workload::kGmm:
      point_bytes = 10 * 8.0;  // one 10-d double vector per point
      model_bytes = 10.0 * (10.0 * 10.0 + 10.0 + 1.0) * 8.0;
      break;
    case Workload::kImputation:
      // Censored points carry the raw vector plus a mask and a per-point
      // redraw buffer.
      point_bytes = 10 * 8.0 * 3.0;
      model_bytes = 10.0 * (10.0 * 10.0 + 10.0 + 1.0) * 8.0;
      break;
    case Workload::kLasso:
      point_bytes = 1000 * 8.0 + 8.0;  // a p=1000 regressor row + response
      model_bytes = (2.0 * 1000.0 + 1.0) * 8.0 + 1000.0 * 1000.0 * 8.0;
      break;
    case Workload::kHmm:
      // ~210 words x (id + state assignment) per document.
      point_bytes = 210.0 * (4.0 + 1.0) * 2.0;
      model_bytes = 20.0 * 10000.0 * 8.0 + 20.0 * 20.0 * 8.0;
      break;
    case Workload::kLda:
      point_bytes = 210.0 * (4.0 + 1.0) * 2.0;
      model_bytes = 100.0 * 10000.0 * 8.0;
      break;
  }
  // The simulator replays each machine's partition through shared buffers,
  // so the host working set is data + model (+ per-machine ledger state),
  // not machines x model. 1.5x headroom for engine temporaries.
  double estimate =
      (points * point_bytes + model_bytes +
       static_cast<double>(req.machines) * 4096.0) * 1.5;
  return estimate;
}

RunOutcome ExecuteExperiment(const ExperimentRequest& req,
                             const exec::CancelToken* cancel,
                             std::function<void(int, int)> progress) {
  auto w = ParseWorkload(req.workload);
  auto p = ParsePlatform(req.platform);
  if (!w.ok() || !p.ok()) {
    RunOutcome out;
    out.result =
        core::RunResult::Fail(!w.ok() ? w.status() : p.status());
    return out;
  }
  switch (*w) {
    case Workload::kGmm:
    case Workload::kImputation:
      return RunGmmCell(req, *w, *p, cancel, std::move(progress));
    case Workload::kLasso:
      return RunLassoCell(req, *p, cancel, std::move(progress));
    case Workload::kHmm:
      return RunHmmCell(req, *p, cancel, std::move(progress));
    case Workload::kLda:
      return RunLdaCell(req, *p, cancel, std::move(progress));
  }
  RunOutcome out;
  out.result = core::RunResult::Fail(
      Status::Internal("unreachable workload dispatch"));
  return out;
}

SqlOutcome ExecuteSql(const SqlRequest& req) {
  SqlOutcome out;
  if (req.rows < 1 || req.rows > 1000000) {
    out.status = Status::InvalidArgument("rows out of range [1, 1e6]");
    return out;
  }
  // Fresh per-request state: the database, its simulator, and the seeded
  // synthetic table are all rebuilt from the request, so two identical
  // requests return identical tables no matter what ran in between.
  sim::ClusterSim sim(sim::Ec2M2XLargeCluster(3));
  reldb::Database db(&sim, {}, req.seed);
  reldb::Table data(reldb::Schema{"id", "grp", "val"}, 1.0);
  for (std::int64_t i = 0; i < req.rows; ++i) {
    data.Append(reldb::Tuple{
        i, i % 8,
        sim::HashChance(req.seed, /*tag=*/0x51, i) * 100.0});
  }
  db.Put("data", std::move(data));
  reldb::SqlContext ctx(&db);
  auto table = ctx.Execute(req.sql);
  if (!table.ok()) {
    out.status = table.status();
    return out;
  }
  out.status = Status::OK();
  out.result_rows = static_cast<std::int64_t>(table->actual_rows());
  std::uint64_t h = kDigestSeed;
  for (const auto& row : table->rows()) {
    for (const auto& value : row) {
      if (const std::int64_t* iv = std::get_if<std::int64_t>(&value)) {
        std::uint8_t tag = 0;
        h = DigestBytes(h, &tag, 1);
        h = DigestBytes(h, iv, sizeof(*iv));
      } else {
        std::uint8_t tag = 1;
        h = DigestBytes(h, &tag, 1);
        h = DigestF64(h, std::get<double>(value));
      }
    }
  }
  out.digest = h;
  return out;
}

}  // namespace mlbench::server
