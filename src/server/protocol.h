#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

/// \file protocol.h
/// Wire protocol of the mlbench experiment server.
///
/// Framing: every message is one frame —
///
///   uint32 (little-endian)  length of everything after this word
///   uint8                   message type (MsgType)
///   bytes                   payload (length - 1 bytes)
///
/// A frame longer than kMaxFrameBytes, or with an unknown type byte, is
/// malformed and fatal to the connection: the peer cannot resynchronise a
/// length-prefixed stream after a corrupt header, so both sides close.
///
/// Payloads are "key=value\n" lines (keys are [a-z_]+, values never
/// contain newlines), optionally followed by a "--\n" separator and a raw
/// body (SQL text). Doubles travel as C hexfloats ("0x1.8p+3"), which
/// round-trip bit-exactly through strtod — the determinism acceptance
/// check literally compares these bits — and u64 digests as hex. Unknown
/// keys are ignored, so either side can add fields without breaking the
/// other.
///
/// Conversation shape: a client sends one request frame at a time on a
/// connection and reads frames until it sees the terminal kResult or
/// kError for that request; kProgress frames may arrive in between. The
/// server never interleaves responses of different requests on one
/// connection (sessions are single-threaded).

namespace mlbench::server {

enum class MsgType : std::uint8_t {
  // Requests.
  kExperiment = 1,  ///< run one model x platform experiment
  kSql = 2,         ///< run one SQL statement on a session-local database
  kPing = 3,        ///< liveness probe
  // Responses.
  kProgress = 10,  ///< iteration heartbeat (streamed during a run)
  kResult = 11,    ///< terminal: the run's outcome
  kError = 12,     ///< terminal: the request failed before/while running
  kPong = 13,      ///< reply to kPing
};

/// True for type bytes this protocol version understands.
bool KnownMsgType(std::uint8_t t);

/// Hard ceiling on frame length (type byte + payload). Anything larger is
/// a malformed or hostile peer.
inline constexpr std::size_t kMaxFrameBytes = 1 << 20;

struct Frame {
  MsgType type = MsgType::kPing;
  std::string payload;
};

/// Appends one encoded frame to `buf`.
void AppendFrame(std::string* buf, MsgType type, std::string_view payload);

/// Decodes the first frame of `buf`. Returns the bytes consumed and fills
/// `out`; 0 means the buffer does not yet hold a complete frame (read
/// more). Malformed frames (oversized length, unknown type) fail with
/// InvalidArgument.
Result<std::size_t> DecodeFrame(std::string_view buf, Frame* out);

// ---- Messages --------------------------------------------------------------

/// One experiment to run: a (workload, platform) cell of the paper's
/// tables plus the scale/seed knobs the one-shot drivers take.
struct ExperimentRequest {
  std::uint64_t id = 0;         ///< client-chosen, echoed on every response
  std::string workload;         ///< gmm | lasso | hmm | lda | imputation
  std::string platform;         ///< dataflow | reldb | gas | bsp
  int machines = 5;
  int iterations = 3;
  std::uint64_t seed = 2014;
  long long actual_per_machine = 0;  ///< 0 = server-side default
  /// Admission deadline in milliseconds from arrival; 0 = wait forever.
  /// A request still queued when its deadline passes is shed with
  /// DeadlineExceeded instead of waiting unboundedly.
  std::int64_t deadline_ms = 0;
  bool want_progress = false;  ///< stream kProgress per iteration
};

/// One SQL statement over a session-local deterministic database of
/// `rows` synthetic rows (table `data(id, grp, val)` seeded from `seed`).
struct SqlRequest {
  std::uint64_t id = 0;
  std::uint64_t seed = 2014;
  std::int64_t rows = 64;
  std::int64_t deadline_ms = 0;
  std::string sql;
};

struct ProgressMsg {
  std::uint64_t id = 0;
  int iteration = 0;  ///< completed iterations
  int total = 0;
};

/// Terminal success response. `digest` is the 64-bit FNV-1a hash of the
/// run's result bits (timings + model parameters), the unit of the
/// bit-identical-under-concurrency guarantee.
struct ResultMsg {
  std::uint64_t id = 0;
  StatusCode code = StatusCode::kOk;
  std::string message;
  double init_seconds = -1;
  std::vector<double> iteration_seconds;
  double peak_machine_bytes = 0;
  std::uint64_t digest = 0;
  std::int64_t result_rows = 0;  ///< SQL only: rows in the result table
  double queue_ms = 0;  ///< wall ms the request waited for admission
};

/// Terminal failure response (shed, rejected, cancelled, or failed).
struct ErrorMsg {
  std::uint64_t id = 0;
  StatusCode code = StatusCode::kInternal;
  std::string message;
};

std::string EncodeExperimentRequest(const ExperimentRequest& req);
Result<ExperimentRequest> ParseExperimentRequest(std::string_view payload);

std::string EncodeSqlRequest(const SqlRequest& req);
Result<SqlRequest> ParseSqlRequest(std::string_view payload);

std::string EncodeProgress(const ProgressMsg& msg);
Result<ProgressMsg> ParseProgress(std::string_view payload);

std::string EncodeResult(const ResultMsg& msg);
Result<ResultMsg> ParseResult(std::string_view payload);

std::string EncodeError(const ErrorMsg& msg);
Result<ErrorMsg> ParseError(std::string_view payload);

// ---- Blocking socket I/O ---------------------------------------------------

/// Writes one complete frame to `fd`, looping over partial writes and
/// EINTR so the stream never carries a torn frame. Fails with Unavailable
/// on a closed/reset peer and DeadlineExceeded on a send timeout
/// (SO_SNDTIMEO), in which case the connection must be torn down.
Status WriteFrame(int fd, MsgType type, std::string_view payload);

/// Reads one complete frame. A clean EOF before any byte fails with
/// NotFound("eof") — the peer is done; EOF mid-frame or a malformed
/// header fails with InvalidArgument; a recv timeout (SO_RCVTIMEO) with
/// DeadlineExceeded.
Status ReadFrame(int fd, Frame* out);

}  // namespace mlbench::server
