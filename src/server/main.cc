// mlbench_server: the concurrent experiment server (DESIGN.md §15).
//
// Serves experiment and SQL requests over the length-prefixed loopback
// protocol (server/protocol.h), with admission control against a host
// memory budget and graceful drain on SIGINT/SIGTERM: the first signal
// stops accepting and lets in-flight runs finish and flush (no torn
// output, ever); a second signal additionally cancels in-flight runs at
// their next iteration boundary (still answering each with a well-formed
// terminal frame).
//
// Usage:
//   mlbench_server [--port N] [--budget-mb M] [--max-queue Q]
//                  [--max-sessions S] [--send-timeout-ms T]
// Prints "mlbench_server listening on port N" once ready (scripts parse
// this line to learn an ephemeral port).

#include <errno.h>
#include <signal.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
// mlint: allow(raw-thread) — signal watcher beside the drain (src/server/)
#include <thread>

#include "server/server.h"

namespace {

// Self-pipe: the handler only writes one byte; all real work happens on
// the main thread, so the signal path is async-signal-safe.
int g_signal_pipe[2] = {-1, -1};

void OnSignal(int) {
  char byte = 1;
  ssize_t n = ::write(g_signal_pipe[1], &byte, 1);
  (void)n;
}

double ArgDouble(int argc, char** argv, const char* flag, double fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) {
      return std::strtod(argv[i + 1], nullptr);
    }
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  mlbench::server::ServerOptions opts;
  opts.port = static_cast<int>(ArgDouble(argc, argv, "--port", 0));
  opts.budget_bytes =
      ArgDouble(argc, argv, "--budget-mb", 1536.0) * 1024.0 * 1024.0;
  opts.max_queue = static_cast<std::size_t>(
      ArgDouble(argc, argv, "--max-queue", 64));
  opts.max_sessions =
      static_cast<int>(ArgDouble(argc, argv, "--max-sessions", 64));
  opts.send_timeout_ms =
      static_cast<int>(ArgDouble(argc, argv, "--send-timeout-ms", 10000));

  if (::pipe(g_signal_pipe) != 0) {
    std::fprintf(stderr, "pipe: %s\n", std::strerror(errno));
    return 1;
  }
  struct sigaction sa{};
  sa.sa_handler = OnSignal;
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);
  ::signal(SIGPIPE, SIG_IGN);

  mlbench::server::Server server(opts);
  if (mlbench::Status st = server.Start(); !st.ok()) {
    std::fprintf(stderr, "mlbench_server: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("mlbench_server listening on port %d\n", server.port());
  std::fflush(stdout);

  // First signal: graceful drain. While the drain flushes, a watcher
  // thread keeps reading the pipe so a second signal still hard-stops
  // in-flight runs at their next iteration boundary.
  for (;;) {
    char byte;
    ssize_t n = ::read(g_signal_pipe[0], &byte, 1);
    if (n < 0 && errno == EINTR) continue;
    break;
  }
  std::fprintf(stderr,
               "mlbench_server: draining (signal again for hard stop)\n");
  server.RequestDrain();
  std::thread watcher([&server] {
    for (;;) {
      char byte;
      ssize_t n = ::read(g_signal_pipe[0], &byte, 1);
      if (n < 0 && errno == EINTR) continue;
      if (n > 0) {
        std::fprintf(stderr, "mlbench_server: hard stop\n");
        server.CancelInflight();
      }
      return;
    }
  });
  server.Join();
  // Unblock the watcher (EOF on the pipe) if no second signal came.
  ::close(g_signal_pipe[1]);
  watcher.join();
  mlbench::server::ServerCounters c = server.counters();
  mlbench::server::AdmissionStats a = server.admission_stats();
  std::printf(
      "mlbench_server: drained cleanly. sessions=%lld refused=%lld "
      "requests=%lld ok=%lld failed=%lld errors=%lld protocol_errors=%lld "
      "admitted=%lld queued=%lld shed_queue=%lld shed_deadline=%lld "
      "rejected=%lld\n",
      static_cast<long long>(c.sessions_accepted),
      static_cast<long long>(c.sessions_refused),
      static_cast<long long>(c.requests),
      static_cast<long long>(c.results_ok),
      static_cast<long long>(c.results_failed),
      static_cast<long long>(c.errors_sent),
      static_cast<long long>(c.protocol_errors),
      static_cast<long long>(a.admitted),
      static_cast<long long>(a.admitted_after_wait),
      static_cast<long long>(a.shed_queue_full),
      static_cast<long long>(a.shed_deadline),
      static_cast<long long>(a.rejected_never_fits));
  return 0;
}
