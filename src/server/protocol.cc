#include "server/protocol.h"

#include <errno.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <sstream>

namespace mlbench::server {

namespace {

// ---- key=value payload helpers --------------------------------------------

void PutStr(std::string* out, std::string_view key, std::string_view value) {
  out->append(key);
  out->push_back('=');
  out->append(value);
  out->push_back('\n');
}

void PutU64(std::string* out, std::string_view key, std::uint64_t v) {
  PutStr(out, key, std::to_string(v));
}

void PutI64(std::string* out, std::string_view key, std::int64_t v) {
  PutStr(out, key, std::to_string(v));
}

// Hexfloat: bit-exact round trip through strtod, locale-independent.
void PutF64(std::string* out, std::string_view key, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%a", v);
  PutStr(out, key, buf);
}

void PutHex64(std::string* out, std::string_view key, std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  PutStr(out, key, buf);
}

// Splits a payload into its key=value map and (for kSql) the raw body
// after the "--" separator line. Unknown keys are kept — callers ignore
// what they do not understand. Lines without '=' before the separator are
// malformed.
struct ParsedPayload {
  std::map<std::string, std::string, std::less<>> fields;
  std::string body;
};

Result<ParsedPayload> SplitPayload(std::string_view payload) {
  ParsedPayload out;
  std::size_t pos = 0;
  while (pos < payload.size()) {
    std::size_t eol = payload.find('\n', pos);
    if (eol == std::string_view::npos) eol = payload.size();
    std::string_view line = payload.substr(pos, eol - pos);
    pos = eol + 1;
    if (line == "--") {
      // Everything after the separator is the raw body, verbatim.
      if (pos <= payload.size()) {
        out.body.assign(payload.substr(pos));
      }
      return out;
    }
    if (line.empty()) continue;
    std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      return Status::InvalidArgument("malformed payload line: " +
                                     std::string(line));
    }
    out.fields.emplace(std::string(line.substr(0, eq)),
                       std::string(line.substr(eq + 1)));
  }
  return out;
}

const std::string* Find(const ParsedPayload& p, std::string_view key) {
  auto it = p.fields.find(key);
  return it == p.fields.end() ? nullptr : &it->second;
}

std::uint64_t GetU64(const ParsedPayload& p, std::string_view key,
                     std::uint64_t fallback) {
  const std::string* v = Find(p, key);
  return v == nullptr ? fallback : std::strtoull(v->c_str(), nullptr, 10);
}

std::int64_t GetI64(const ParsedPayload& p, std::string_view key,
                    std::int64_t fallback) {
  const std::string* v = Find(p, key);
  return v == nullptr ? fallback : std::strtoll(v->c_str(), nullptr, 10);
}

double GetF64(const ParsedPayload& p, std::string_view key, double fallback) {
  const std::string* v = Find(p, key);
  return v == nullptr ? fallback : std::strtod(v->c_str(), nullptr);
}

std::string GetStr(const ParsedPayload& p, std::string_view key) {
  const std::string* v = Find(p, key);
  return v == nullptr ? std::string() : *v;
}

std::uint64_t GetHex64(const ParsedPayload& p, std::string_view key) {
  const std::string* v = Find(p, key);
  return v == nullptr ? 0 : std::strtoull(v->c_str(), nullptr, 16);
}

}  // namespace

bool KnownMsgType(std::uint8_t t) {
  switch (static_cast<MsgType>(t)) {
    case MsgType::kExperiment:
    case MsgType::kSql:
    case MsgType::kPing:
    case MsgType::kProgress:
    case MsgType::kResult:
    case MsgType::kError:
    case MsgType::kPong:
      return true;
  }
  return false;
}

void AppendFrame(std::string* buf, MsgType type, std::string_view payload) {
  std::uint32_t len = static_cast<std::uint32_t>(payload.size() + 1);
  char hdr[5];
  hdr[0] = static_cast<char>(len & 0xff);
  hdr[1] = static_cast<char>((len >> 8) & 0xff);
  hdr[2] = static_cast<char>((len >> 16) & 0xff);
  hdr[3] = static_cast<char>((len >> 24) & 0xff);
  hdr[4] = static_cast<char>(type);
  buf->append(hdr, sizeof(hdr));
  buf->append(payload);
}

Result<std::size_t> DecodeFrame(std::string_view buf, Frame* out) {
  if (buf.size() < 5) return std::size_t{0};
  std::uint32_t len = static_cast<std::uint8_t>(buf[0]) |
                      (static_cast<std::uint32_t>(
                           static_cast<std::uint8_t>(buf[1]))
                       << 8) |
                      (static_cast<std::uint32_t>(
                           static_cast<std::uint8_t>(buf[2]))
                       << 16) |
                      (static_cast<std::uint32_t>(
                           static_cast<std::uint8_t>(buf[3]))
                       << 24);
  if (len == 0 || len > kMaxFrameBytes) {
    return Status::InvalidArgument("malformed frame: length " +
                                   std::to_string(len));
  }
  if (buf.size() < 4 + static_cast<std::size_t>(len)) return std::size_t{0};
  std::uint8_t type = static_cast<std::uint8_t>(buf[4]);
  if (!KnownMsgType(type)) {
    return Status::InvalidArgument("malformed frame: unknown type " +
                                   std::to_string(type));
  }
  out->type = static_cast<MsgType>(type);
  out->payload.assign(buf.substr(5, len - 1));
  return static_cast<std::size_t>(4 + len);
}

// ---- Message encoders / parsers --------------------------------------------

std::string EncodeExperimentRequest(const ExperimentRequest& req) {
  std::string out;
  PutU64(&out, "id", req.id);
  PutStr(&out, "workload", req.workload);
  PutStr(&out, "platform", req.platform);
  PutI64(&out, "machines", req.machines);
  PutI64(&out, "iterations", req.iterations);
  PutU64(&out, "seed", req.seed);
  PutI64(&out, "actual_per_machine", req.actual_per_machine);
  PutI64(&out, "deadline_ms", req.deadline_ms);
  PutI64(&out, "want_progress", req.want_progress ? 1 : 0);
  return out;
}

Result<ExperimentRequest> ParseExperimentRequest(std::string_view payload) {
  auto parsed = SplitPayload(payload);
  if (!parsed.ok()) return parsed.status();
  const ParsedPayload& p = *parsed;
  ExperimentRequest req;
  req.id = GetU64(p, "id", 0);
  req.workload = GetStr(p, "workload");
  req.platform = GetStr(p, "platform");
  req.machines = static_cast<int>(GetI64(p, "machines", req.machines));
  req.iterations = static_cast<int>(GetI64(p, "iterations", req.iterations));
  req.seed = GetU64(p, "seed", req.seed);
  req.actual_per_machine = GetI64(p, "actual_per_machine", 0);
  req.deadline_ms = GetI64(p, "deadline_ms", 0);
  req.want_progress = GetI64(p, "want_progress", 0) != 0;
  if (req.workload.empty()) {
    return Status::InvalidArgument("experiment request missing workload");
  }
  if (req.platform.empty()) {
    return Status::InvalidArgument("experiment request missing platform");
  }
  return req;
}

std::string EncodeSqlRequest(const SqlRequest& req) {
  std::string out;
  PutU64(&out, "id", req.id);
  PutU64(&out, "seed", req.seed);
  PutI64(&out, "rows", req.rows);
  PutI64(&out, "deadline_ms", req.deadline_ms);
  out.append("--\n");
  out.append(req.sql);
  return out;
}

Result<SqlRequest> ParseSqlRequest(std::string_view payload) {
  auto parsed = SplitPayload(payload);
  if (!parsed.ok()) return parsed.status();
  const ParsedPayload& p = *parsed;
  SqlRequest req;
  req.id = GetU64(p, "id", 0);
  req.seed = GetU64(p, "seed", req.seed);
  req.rows = GetI64(p, "rows", req.rows);
  req.deadline_ms = GetI64(p, "deadline_ms", 0);
  req.sql = p.body;
  if (req.sql.empty()) {
    return Status::InvalidArgument("sql request has empty statement");
  }
  return req;
}

std::string EncodeProgress(const ProgressMsg& msg) {
  std::string out;
  PutU64(&out, "id", msg.id);
  PutI64(&out, "iteration", msg.iteration);
  PutI64(&out, "total", msg.total);
  return out;
}

Result<ProgressMsg> ParseProgress(std::string_view payload) {
  auto parsed = SplitPayload(payload);
  if (!parsed.ok()) return parsed.status();
  const ParsedPayload& p = *parsed;
  ProgressMsg msg;
  msg.id = GetU64(p, "id", 0);
  msg.iteration = static_cast<int>(GetI64(p, "iteration", 0));
  msg.total = static_cast<int>(GetI64(p, "total", 0));
  return msg;
}

std::string EncodeResult(const ResultMsg& msg) {
  std::string out;
  PutU64(&out, "id", msg.id);
  PutStr(&out, "code", StatusCodeName(msg.code));
  PutStr(&out, "message", msg.message);
  PutF64(&out, "init_seconds", msg.init_seconds);
  {
    std::string iters;
    char buf[64];
    for (std::size_t i = 0; i < msg.iteration_seconds.size(); ++i) {
      std::snprintf(buf, sizeof(buf), "%a", msg.iteration_seconds[i]);
      if (i > 0) iters.push_back(',');
      iters.append(buf);
    }
    PutStr(&out, "iteration_seconds", iters);
  }
  PutF64(&out, "peak_machine_bytes", msg.peak_machine_bytes);
  PutHex64(&out, "digest", msg.digest);
  PutI64(&out, "result_rows", msg.result_rows);
  PutF64(&out, "queue_ms", msg.queue_ms);
  return out;
}

Result<ResultMsg> ParseResult(std::string_view payload) {
  auto parsed = SplitPayload(payload);
  if (!parsed.ok()) return parsed.status();
  const ParsedPayload& p = *parsed;
  ResultMsg msg;
  msg.id = GetU64(p, "id", 0);
  msg.code = StatusCodeFromName(GetStr(p, "code"));
  msg.message = GetStr(p, "message");
  msg.init_seconds = GetF64(p, "init_seconds", -1);
  if (const std::string* iters = Find(p, "iteration_seconds");
      iters != nullptr && !iters->empty()) {
    std::stringstream ss(*iters);
    std::string item;
    while (std::getline(ss, item, ',')) {
      msg.iteration_seconds.push_back(std::strtod(item.c_str(), nullptr));
    }
  }
  msg.peak_machine_bytes = GetF64(p, "peak_machine_bytes", 0);
  msg.digest = GetHex64(p, "digest");
  msg.result_rows = GetI64(p, "result_rows", 0);
  msg.queue_ms = GetF64(p, "queue_ms", 0);
  return msg;
}

std::string EncodeError(const ErrorMsg& msg) {
  std::string out;
  PutU64(&out, "id", msg.id);
  PutStr(&out, "code", StatusCodeName(msg.code));
  PutStr(&out, "message", msg.message);
  return out;
}

Result<ErrorMsg> ParseError(std::string_view payload) {
  auto parsed = SplitPayload(payload);
  if (!parsed.ok()) return parsed.status();
  const ParsedPayload& p = *parsed;
  ErrorMsg msg;
  msg.id = GetU64(p, "id", 0);
  msg.code = StatusCodeFromName(GetStr(p, "code"));
  msg.message = GetStr(p, "message");
  return msg;
}

// ---- Blocking socket I/O ---------------------------------------------------

namespace {

// Full-write loop: either the whole buffer reaches the kernel or the
// connection is declared dead. Partial frames are never left behind.
Status WriteAll(int fd, const char* data, std::size_t n) {
  std::size_t off = 0;
  while (off < n) {
    ssize_t w = ::send(fd, data + off, n - off, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::DeadlineExceeded("send timeout (slow client?)");
      }
      return Status::Unavailable(std::string("send failed: ") +
                                 std::strerror(errno));
    }
    off += static_cast<std::size_t>(w);
  }
  return Status::OK();
}

Status ReadAll(int fd, char* data, std::size_t n, bool eof_ok_at_start) {
  std::size_t off = 0;
  while (off < n) {
    ssize_t r = ::recv(fd, data + off, n - off, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::DeadlineExceeded("recv timeout");
      }
      return Status::Unavailable(std::string("recv failed: ") +
                                 std::strerror(errno));
    }
    if (r == 0) {
      if (off == 0 && eof_ok_at_start) return Status::NotFound("eof");
      return Status::InvalidArgument("eof mid-frame (torn stream)");
    }
    off += static_cast<std::size_t>(r);
  }
  return Status::OK();
}

}  // namespace

Status WriteFrame(int fd, MsgType type, std::string_view payload) {
  std::string buf;
  buf.reserve(payload.size() + 5);
  AppendFrame(&buf, type, payload);
  return WriteAll(fd, buf.data(), buf.size());
}

Status ReadFrame(int fd, Frame* out) {
  char hdr[5];
  if (Status st = ReadAll(fd, hdr, 4, /*eof_ok_at_start=*/true); !st.ok()) {
    return st;
  }
  std::uint32_t len = static_cast<std::uint8_t>(hdr[0]) |
                      (static_cast<std::uint32_t>(
                           static_cast<std::uint8_t>(hdr[1]))
                       << 8) |
                      (static_cast<std::uint32_t>(
                           static_cast<std::uint8_t>(hdr[2]))
                       << 16) |
                      (static_cast<std::uint32_t>(
                           static_cast<std::uint8_t>(hdr[3]))
                       << 24);
  if (len == 0 || len > kMaxFrameBytes) {
    return Status::InvalidArgument("malformed frame: length " +
                                   std::to_string(len));
  }
  if (Status st = ReadAll(fd, hdr + 4, 1, /*eof_ok_at_start=*/false);
      !st.ok()) {
    return st;
  }
  std::uint8_t type = static_cast<std::uint8_t>(hdr[4]);
  if (!KnownMsgType(type)) {
    return Status::InvalidArgument("malformed frame: unknown type " +
                                   std::to_string(type));
  }
  out->type = static_cast<MsgType>(type);
  out->payload.resize(len - 1);
  if (len > 1) {
    if (Status st =
            ReadAll(fd, out->payload.data(), len - 1, /*eof_ok_at_start=*/false);
        !st.ok()) {
      return st;
    }
  }
  return Status::OK();
}

}  // namespace mlbench::server
