#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "exec/cancel.h"
#include "server/admission.h"
#include "server/protocol.h"

/// \file server.h
/// The concurrent experiment server (DESIGN.md §15).
///
/// One accept thread plus one thread per connection ("session"). A
/// session reads one request frame at a time and serves it to completion
/// before reading the next; experiments execute *on the session thread*
/// and parallelise through the shared exec::ThreadPool::Global() via
/// ParallelFor's caller-participation, so N concurrent sessions share one
/// pool rather than spawning N pools.
///
/// Robustness contract:
///  * Admission: every experiment/SQL request reserves its estimated peak
///    host bytes in the AdmissionController before running. Requests that
///    can never fit are rejected (ResourceExhausted); requests that do not
///    fit *now* queue FIFO up to a bound, past which they are shed; queued
///    requests whose deadline passes are shed with DeadlineExceeded.
///  * Isolation: a session shares no mutable state with other sessions —
///    each run builds its own config/simulator/RNG from the request, so
///    results are bit-identical to serial one-shot runs (the loadgen
///    --verify mode asserts this digest-for-digest).
///  * Graceful drain: RequestDrain() stops accepting, sheds the admission
///    queue, and lets in-flight requests finish and their responses flush
///    — a client never sees a torn frame. CancelInflight() additionally
///    cancels running experiments at their next iteration boundary.
///  * Teardown: session sockets and admission reservations are released
///    on every exit path (RAII tickets; sessions are reaped as they
///    finish, not accumulated until shutdown).

namespace mlbench::server {

struct ServerOptions {
  /// Loopback only by design: this is a benchmark harness, not an
  /// internet-facing daemon.
  int port = 0;  ///< 0 = kernel-assigned; read back via port()
  /// Reservable host RAM for the admission ledger.
  double budget_bytes = 1.5e9;
  /// Admission waiters beyond this are shed immediately.
  std::size_t max_queue = 64;
  /// Concurrent sessions beyond this are refused at accept.
  int max_sessions = 64;
  /// SO_SNDTIMEO for session sockets: a client that stops reading cannot
  /// wedge a session thread forever (its connection is torn down).
  int send_timeout_ms = 10000;
};

/// Request/response counters, snapshot via Server::counters().
struct ServerCounters {
  std::int64_t sessions_accepted = 0;
  std::int64_t sessions_refused = 0;
  std::int64_t requests = 0;
  std::int64_t results_ok = 0;
  std::int64_t results_failed = 0;  ///< engine "Fail" cells (still kResult)
  std::int64_t errors_sent = 0;     ///< kError responses (shed/reject/...)
  std::int64_t protocol_errors = 0; ///< malformed frames (connection dropped)
};

class Server {
 public:
  explicit Server(ServerOptions opts);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, warms the global thread pool (its lazy first-touch
  /// construction must not race N sessions), and starts the accept loop.
  Status Start();

  /// The bound port (after Start), for ephemeral-port tests.
  int port() const { return port_; }

  /// Stops accepting and sheds all queued admissions; in-flight requests
  /// run to completion and flush their responses. Idempotent.
  void RequestDrain();

  /// Cancels in-flight experiments at their next iteration boundary
  /// (their sessions still send a well-formed terminal response).
  void CancelInflight();

  /// Blocks until the accept loop and every session thread have exited.
  /// Only returns promptly after RequestDrain(): sessions otherwise
  /// serve until their clients hang up.
  void Join();

  /// RequestDrain() + Join().
  void Stop();

  AdmissionStats admission_stats() const { return admission_->stats(); }
  ServerCounters counters() const;

 private:
  struct Session {
    int fd = -1;
    std::thread thread;
    exec::CancelToken cancel;
    std::atomic<bool> done{false};
  };

  void AcceptLoop();
  void ServeSession(Session* session);
  /// Joins and erases finished sessions (called from the accept loop and
  /// Join) so a long-lived server does not accumulate dead threads.
  void ReapFinishedSessions();
  /// Serve one request frame; false ends the session (EOF / fatal error).
  bool ServeOne(Session* session, const Frame& frame);
  void CountResponse(const Status& st, bool is_error_frame);

  ServerOptions opts_;
  int port_ = 0;
  int listen_fd_ = -1;
  /// Wakes the poll()ing accept loop on drain (shutdown() on a *listening*
  /// socket does not reliably unblock accept() on Linux).
  int wake_pipe_[2] = {-1, -1};
  std::atomic<bool> draining_{false};
  std::unique_ptr<AdmissionController> admission_;
  std::thread accept_thread_;

  mutable std::mutex sessions_mu_;
  std::vector<std::unique_ptr<Session>> sessions_;

  mutable std::mutex counters_mu_;
  ServerCounters counters_;
};

}  // namespace mlbench::server
