#include "server/client.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <thread>

namespace mlbench::server {

namespace {

// Chaos schedule tags: independent hash streams from one seed.
constexpr std::uint64_t kConnDropTag = 0xd309;
constexpr std::uint64_t kSlowReadTag = 0x510e;

void SleepMs(double ms) {
  if (ms <= 0) return;
  std::this_thread::sleep_for(
      std::chrono::duration<double, std::milli>(ms));
}

}  // namespace

Client::Client(ClientOptions opts) : opts_(opts) {}

Client::~Client() { Close(); }

Status Client::Connect() {
  Close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(opts_.port));
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status st = Status::Unavailable(std::string("connect: ") +
                                    std::strerror(errno));
    Close();
    return st;
  }
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Status::OK();
}

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status Client::Ping() {
  if (!connected()) {
    MLBENCH_RETURN_NOT_OK(Connect());
  }
  MLBENCH_RETURN_NOT_OK(WriteFrame(fd_, MsgType::kPing, "ping"));
  Frame frame;
  MLBENCH_RETURN_NOT_OK(ReadFrame(fd_, &frame));
  if (frame.type != MsgType::kPong) {
    return Status::Internal("expected kPong");
  }
  return Status::OK();
}

bool Client::Retryable(const Status& st) {
  switch (st.code()) {
    case StatusCode::kUnavailable:        // dead connection / server drop
    case StatusCode::kResourceExhausted:  // load shed: back off and retry
    case StatusCode::kNotFound:           // eof where a frame was due
      return true;
    default:
      return false;
  }
}

Result<ResultMsg> Client::RunExperiment(const ExperimentRequest& req,
                                        std::vector<ProgressMsg>* progress) {
  return Roundtrip(MsgType::kExperiment, EncodeExperimentRequest(req),
                   req.id, progress);
}

Result<ResultMsg> Client::RunSql(const SqlRequest& req) {
  return Roundtrip(MsgType::kSql, EncodeSqlRequest(req), req.id, nullptr);
}

Result<ResultMsg> Client::Roundtrip(MsgType type, const std::string& payload,
                                    std::uint64_t id,
                                    std::vector<ProgressMsg>* progress) {
  ++stats_.requests;
  const std::int64_t chaos_unit = request_index_++;
  Status last = Status::OK();
  for (int attempt = 0; attempt <= opts_.retry.max_retries; ++attempt) {
    if (attempt > 0) {
      ++stats_.retries;
      // Incremental backoff for this attempt (BackoffSeconds is the
      // cumulative total for n failures).
      double sleep_s = opts_.retry.BackoffSeconds(attempt) -
                       opts_.retry.BackoffSeconds(attempt - 1);
      SleepMs(sleep_s * 1000.0);
    }
    auto res = OneAttempt(type, payload, id, progress, chaos_unit);
    if (res.ok()) return res;
    last = res.status();
    if (last.IsResourceExhausted()) ++stats_.sheds_seen;
    if (last.IsDeadlineExceeded()) ++stats_.deadlines_seen;
    if (!Retryable(last)) return last;
    Close();  // stale stream state after any failure: always reconnect
  }
  return last;
}

Result<ResultMsg> Client::OneAttempt(MsgType type, const std::string& payload,
                                     std::uint64_t id,
                                     std::vector<ProgressMsg>* progress,
                                     std::int64_t chaos_unit) {
  if (!connected()) {
    ++stats_.reconnects;
    MLBENCH_RETURN_NOT_OK(Connect());
  }
  const sim::FaultSpec& chaos = opts_.chaos;
  const bool drop =
      chaos.conn_drop > 0 &&
      sim::HashChance(chaos.seed, kConnDropTag, chaos_unit) < chaos.conn_drop;
  const bool slow =
      chaos.slow_client > 0 &&
      sim::HashChance(chaos.seed, kSlowReadTag, chaos_unit) <
          chaos.slow_client;

  MLBENCH_RETURN_NOT_OK(WriteFrame(fd_, type, payload));
  if (drop) {
    // Deterministic misbehaviour: vanish right after sending, leaving the
    // server to discover the dead peer on its response write. The retry
    // loop reconnects and resends.
    ++stats_.chaos_conn_drops;
    Close();
    return Status::Unavailable("chaos: connection dropped after send");
  }
  for (;;) {
    if (slow) {
      ++stats_.chaos_slow_reads;
      SleepMs(opts_.slow_read_ms);
    }
    Frame frame;
    MLBENCH_RETURN_NOT_OK(ReadFrame(fd_, &frame));
    switch (frame.type) {
      case MsgType::kProgress: {
        auto p = ParseProgress(frame.payload);
        if (!p.ok()) return p.status();
        if (progress != nullptr) progress->push_back(*p);
        continue;  // keep reading for the terminal frame
      }
      case MsgType::kResult: {
        auto r = ParseResult(frame.payload);
        if (!r.ok()) return r.status();
        if (r->id != id) {
          return Status::Internal("response id mismatch");
        }
        return r;
      }
      case MsgType::kError: {
        auto e = ParseError(frame.payload);
        if (!e.ok()) return e.status();
        return Status(e->code, e->message);
      }
      default:
        return Status::Internal("unexpected frame type in response");
    }
  }
}

}  // namespace mlbench::server
