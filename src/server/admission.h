#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>

#include "common/status.h"
#include "sim/reservation.h"

/// \file admission.h
/// Thread-safe admission control over a sim::ReservationLedger.
///
/// Sessions call Admit() with a run's estimated peak host bytes before
/// executing it. The controller either
///   * reserves immediately (capacity available and no earlier waiter —
///     admission is strictly FIFO, so a small request can never starve a
///     large one by sneaking past it),
///   * queues the session until capacity frees (bounded queue; a full
///     queue is overload and the request is shed with ResourceExhausted),
///   * sheds the request with DeadlineExceeded when its deadline passes
///     while still queued,
///   * or rejects outright with ResourceExhausted when the request could
///     never fit even on an idle server.
///
/// The returned Ticket releases its reservation on destruction — RAII, so
/// every exit path of a session (clean result, engine failure, protocol
/// error, session teardown during drain) returns the bytes exactly once.
///
/// This class lives in src/server/ (not src/sim/) deliberately: it is
/// host-side concurrency plumbing, and mlint's raw-thread rule keeps
/// synchronisation primitives out of simulator/engine code. The arithmetic
/// it guards — exact-fit reserve/release — stays in the pure, serially
/// testable sim::ReservationLedger.

namespace mlbench::server {

class AdmissionController;

/// RAII handle for one admitted reservation. Move-only.
class Ticket {
 public:
  Ticket() = default;
  Ticket(Ticket&& o) noexcept { *this = std::move(o); }
  Ticket& operator=(Ticket&& o) noexcept;
  ~Ticket() { Release(); }

  Ticket(const Ticket&) = delete;
  Ticket& operator=(const Ticket&) = delete;

  bool admitted() const { return controller_ != nullptr; }
  /// Wall milliseconds the request waited in the admission queue.
  double queue_ms() const { return queue_ms_; }

  /// Returns the reservation early (idempotent; destructor calls it too).
  void Release();

 private:
  friend class AdmissionController;
  Ticket(AdmissionController* c, std::int64_t id, double ms)
      : controller_(c), reservation_id_(id), queue_ms_(ms) {}

  AdmissionController* controller_ = nullptr;
  std::int64_t reservation_id_ = 0;
  double queue_ms_ = 0;
};

/// Counters for observability and the loadgen report. Snapshot via
/// AdmissionController::stats().
struct AdmissionStats {
  std::int64_t admitted = 0;
  std::int64_t admitted_after_wait = 0;  ///< of admitted: had to queue
  std::int64_t rejected_never_fits = 0;  ///< larger than the whole budget
  std::int64_t shed_queue_full = 0;      ///< bounded queue overflowed
  std::int64_t shed_deadline = 0;        ///< deadline passed while queued
  double peak_reserved_bytes = 0;
  std::int64_t peak_queue_depth = 0;
};

class AdmissionController {
 public:
  /// `budget_bytes`: reservable host RAM. `max_queue`: waiters beyond
  /// this are shed immediately (overload signal instead of unbounded
  /// latency).
  AdmissionController(double budget_bytes, std::size_t max_queue);

  /// Blocks until `bytes` are reserved, the deadline expires, the queue
  /// overflows, or the controller shuts down. `deadline_ms` <= 0 waits
  /// forever. Returns a live Ticket, or:
  ///   ResourceExhausted — never fits, queue full, or shutting down;
  ///   DeadlineExceeded  — deadline passed while waiting.
  Result<Ticket> Admit(double bytes, std::int64_t deadline_ms,
                       std::string_view what);

  /// Wakes all waiters with ResourceExhausted("shutting down") and makes
  /// future Admit calls fail the same way. Live tickets stay valid.
  void Shutdown();

  AdmissionStats stats() const;
  double budget_bytes() const;
  double reserved_bytes() const;
  std::size_t queue_depth() const;

 private:
  friend class Ticket;
  void ReleaseReservation(std::int64_t id);

  mutable std::mutex mu_;
  std::condition_variable cv_;
  sim::ReservationLedger ledger_;
  std::size_t max_queue_;
  bool shutdown_ = false;
  /// FIFO order of waiting Admit calls: a waiter may only reserve when it
  /// is the front of this queue, which makes queue-then-admit ordering a
  /// deterministic function of arrival order.
  std::deque<std::uint64_t> waiters_;
  std::uint64_t next_waiter_ = 1;
  AdmissionStats stats_;
};

}  // namespace mlbench::server
