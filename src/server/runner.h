#pragma once

#include <cstdint>
#include <functional>

#include "core/experiment.h"
#include "exec/cancel.h"
#include "server/protocol.h"

/// \file runner.h
/// Executes one protocol request inside a session, fully isolated: every
/// call builds its own ExperimentConfig / ClusterSim / Database / Rng from
/// the request alone, so a run's result bits are a pure function of the
/// request — the same request returns the same digest whether it runs
/// serially in a one-shot bench binary or interleaved with 15 other
/// sessions on the shared host pool.

namespace mlbench::server {

/// Checks a request before admission: known workload/platform, positive
/// scale knobs, bounded iteration count.
Status ValidateExperiment(const ExperimentRequest& req);

/// Deterministic estimate of the request's peak *host* RAM (generated
/// data + model state + working set), the quantity the admission ledger
/// reserves before the run may start. Intentionally conservative (x1.5
/// headroom): over-estimating queues runs that would have fit;
/// under-estimating overcommits the host, which is the failure the ledger
/// exists to prevent. Fails with InvalidArgument on unknown workloads.
Result<double> EstimateHostPeakBytes(const ExperimentRequest& req);

struct RunOutcome {
  core::RunResult result;
  /// FNV-1a 64 over the run's result bits: status code, init/iteration
  /// seconds, peak simulated bytes, and every double of the final model
  /// state. Two runs agree on the digest iff they are bit-identical.
  std::uint64_t digest = 0;
};

/// Runs the requested (workload x platform) cell. `cancel` (may be null)
/// is polled at iteration boundaries; `progress` (may be empty) is
/// invoked from the calling thread at each boundary.
RunOutcome ExecuteExperiment(const ExperimentRequest& req,
                             const exec::CancelToken* cancel,
                             std::function<void(int, int)> progress);

struct SqlOutcome {
  Status status;
  std::int64_t result_rows = 0;
  std::uint64_t digest = 0;  ///< FNV-1a over the result table's values
};

/// Executes one SQL statement against a fresh session-local database
/// seeded from the request: table `data(id, grp, val)` with `rows`
/// deterministic synthetic rows.
SqlOutcome ExecuteSql(const SqlRequest& req);

// Exposed for tests: the digest accumulator (FNV-1a 64, offset basis).
inline constexpr std::uint64_t kDigestSeed = 0xcbf29ce484222325ULL;
std::uint64_t DigestBytes(std::uint64_t h, const void* data, std::size_t n);
std::uint64_t DigestF64(std::uint64_t h, double v);

}  // namespace mlbench::server
