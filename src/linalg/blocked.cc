#include "linalg/blocked.h"

namespace mlbench::linalg::blocked {

void AddScaled(double* dst, const double* src, double a, std::size_t n) {
  // Elementwise: the compiler may vectorize freely without changing any
  // individual dst[i] += a * src[i] result.
  for (std::size_t i = 0; i < n; ++i) dst[i] += a * src[i];
}

void Add(double* dst, const double* src, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] += src[i];
}

void Sub(double* dst, const double* src, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] -= src[i];
}

void Scale(double* dst, double a, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] *= a;
}

void RowReduce(const double* m, std::size_t rows, std::size_t cols,
               double* out) {
  for (std::size_t r = 0; r < rows; ++r) {
    Add(out, m + r * cols, cols);
  }
}

double Dot(const double* a, const double* b, std::size_t n) {
  double s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    s0 += a[i] * b[i];
    s1 += a[i + 1] * b[i + 1];
    s2 += a[i + 2] * b[i + 2];
    s3 += a[i + 3] * b[i + 3];
  }
  for (; i < n; ++i) s0 += a[i] * b[i];
  return (s0 + s1) + (s2 + s3);
}

double Sum(const double* a, std::size_t n) {
  double s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    s0 += a[i];
    s1 += a[i + 1];
    s2 += a[i + 2];
    s3 += a[i + 3];
  }
  for (; i < n; ++i) s0 += a[i];
  return (s0 + s1) + (s2 + s3);
}

}  // namespace mlbench::linalg::blocked
