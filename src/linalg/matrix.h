#pragma once

#include <cstddef>
#include <vector>

#include "common/logging.h"
#include "common/status.h"
#include "linalg/vector.h"

/// \file matrix.h
/// Dense row-major matrix with the factorizations the samplers need.
///
/// Sizes in this benchmark top out around 1000x1000 (the Bayesian Lasso Gram
/// matrix), so straightforward O(n^3) kernels are appropriate and keep the
/// code auditable.

namespace mlbench::linalg {

class Matrix {
 public:
  Matrix() = default;
  /// Zero matrix of shape rows x cols.
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  /// Identity matrix of dimension n.
  static Matrix Identity(std::size_t n);
  /// Diagonal matrix from vector d.
  static Matrix Diagonal(const Vector& d);
  /// Outer product x y^T.
  static Matrix Outer(const Vector& x, const Vector& y);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  Matrix& operator+=(const Matrix& o);
  Matrix& operator-=(const Matrix& o);
  Matrix& operator*=(double s);

  Matrix Transposed() const;
  double Trace() const;
  /// Extracts row r as a Vector.
  Vector Row(std::size_t r) const;
  /// Extracts column c as a Vector.
  Vector Col(std::size_t c) const;
  /// Extracts the rectangular block [r0,r0+nr) x [c0,c0+nc).
  Matrix Block(std::size_t r0, std::size_t c0, std::size_t nr,
               std::size_t nc) const;

  /// Maximum absolute entry, for tolerance checks.
  double MaxAbs() const;

  friend bool operator==(const Matrix& a, const Matrix& b) {
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.data_ == b.data_;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

Matrix operator+(Matrix a, const Matrix& b);
Matrix operator-(Matrix a, const Matrix& b);
Matrix operator*(Matrix a, double s);
Matrix operator*(double s, Matrix a);

/// Dense matrix product; inner dimensions must agree.
Matrix MatMul(const Matrix& a, const Matrix& b);
/// Matrix-vector product a * x.
Vector MatVec(const Matrix& a, const Vector& x);
/// x^T a x for square a.
double QuadraticForm(const Matrix& a, const Vector& x);

/// Cholesky factor L (lower triangular, a = L L^T) of an SPD matrix.
/// Fails with InvalidArgument if the matrix is not (numerically) SPD.
Result<Matrix> Cholesky(const Matrix& a);

/// Solves a x = b for SPD a via Cholesky.
Result<Vector> SolveSpd(const Matrix& a, const Vector& b);

/// Inverse of an SPD matrix via Cholesky.
Result<Matrix> InverseSpd(const Matrix& a);

/// log |a| for SPD a.
Result<double> LogDetSpd(const Matrix& a);

/// Solves L y = b by forward substitution for lower-triangular L.
Vector ForwardSubstitute(const Matrix& l, const Vector& b);
/// Solves L^T x = y by back substitution for lower-triangular L.
Vector BackSubstituteTransposed(const Matrix& l, const Vector& y);

}  // namespace mlbench::linalg
