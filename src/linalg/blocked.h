#pragma once

#include <cstddef>

/// \file blocked.h
/// Blocked / unrolled primitives shared by the hot-path kernels
/// (mlbench::kernels), Matrix, and the model samplers.
///
/// Two families, with different floating-point contracts:
///
///  * Elementwise ops (AddScaled, Add, Sub, Scale, RowReduce): every output
///    element is computed by exactly the ops of the naive loop, so results
///    are bit-identical to scalar code. Safe anywhere, including paths that
///    feed sampler draws.
///
///  * Reassociating reductions (Dot, Sum): four-accumulator unrolls that
///    change the summation order. NOT bit-compatible with the sequential
///    linalg::Dot / Vector::Sum; use only in likelihood / reporting paths
///    where a few ulps of difference cannot perturb an RNG draw.

namespace mlbench::linalg::blocked {

/// dst[i] += a * src[i]. Bit-identical to the scalar loop.
void AddScaled(double* dst, const double* src, double a, std::size_t n);

/// dst[i] += src[i]. Bit-identical to the scalar loop.
void Add(double* dst, const double* src, std::size_t n);

/// dst[i] -= src[i]. Bit-identical to the scalar loop.
void Sub(double* dst, const double* src, std::size_t n);

/// dst[i] *= a. Bit-identical to the scalar loop.
void Scale(double* dst, double a, std::size_t n);

/// out[j] += sum over rows r of m[r * cols + j], accumulating row by row
/// in ascending r — the same per-element op sequence as the naive
/// row-outer / column-inner double loop, so results are bit-identical.
void RowReduce(const double* m, std::size_t rows, std::size_t cols,
               double* out);

/// Four-accumulator dot product. Reassociates; see file comment.
double Dot(const double* a, const double* b, std::size_t n);

/// Four-accumulator sum. Reassociates; see file comment.
double Sum(const double* a, std::size_t n);

}  // namespace mlbench::linalg::blocked
