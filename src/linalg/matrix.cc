#include "linalg/matrix.h"

#include <cmath>

#include "linalg/blocked.h"

namespace mlbench::linalg {

Matrix Matrix::Identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::Diagonal(const Vector& d) {
  Matrix m(d.size(), d.size());
  for (std::size_t i = 0; i < d.size(); ++i) m(i, i) = d[i];
  return m;
}

Matrix Matrix::Outer(const Vector& x, const Vector& y) {
  Matrix m(x.size(), y.size());
  for (std::size_t r = 0; r < x.size(); ++r) {
    for (std::size_t c = 0; c < y.size(); ++c) m(r, c) = x[r] * y[c];
  }
  return m;
}

Matrix& Matrix::operator+=(const Matrix& o) {
  MLBENCH_CHECK(rows_ == o.rows_ && cols_ == o.cols_);
  blocked::Add(data_.data(), o.data_.data(), data_.size());
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& o) {
  MLBENCH_CHECK(rows_ == o.rows_ && cols_ == o.cols_);
  blocked::Sub(data_.data(), o.data_.data(), data_.size());
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  blocked::Scale(data_.data(), s, data_.size());
  return *this;
}

Matrix Matrix::Transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  }
  return t;
}

double Matrix::Trace() const {
  MLBENCH_CHECK(rows_ == cols_);
  double s = 0;
  for (std::size_t i = 0; i < rows_; ++i) s += (*this)(i, i);
  return s;
}

Vector Matrix::Row(std::size_t r) const {
  Vector v(cols_);
  for (std::size_t c = 0; c < cols_; ++c) v[c] = (*this)(r, c);
  return v;
}

Vector Matrix::Col(std::size_t c) const {
  Vector v(rows_);
  for (std::size_t r = 0; r < rows_; ++r) v[r] = (*this)(r, c);
  return v;
}

Matrix Matrix::Block(std::size_t r0, std::size_t c0, std::size_t nr,
                     std::size_t nc) const {
  MLBENCH_CHECK(r0 + nr <= rows_ && c0 + nc <= cols_);
  Matrix b(nr, nc);
  for (std::size_t r = 0; r < nr; ++r) {
    for (std::size_t c = 0; c < nc; ++c) b(r, c) = (*this)(r0 + r, c0 + c);
  }
  return b;
}

double Matrix::MaxAbs() const {
  double m = 0;
  for (double v : data_) m = std::max(m, std::fabs(v));
  return m;
}

Matrix operator+(Matrix a, const Matrix& b) {
  a += b;
  return a;
}
Matrix operator-(Matrix a, const Matrix& b) {
  a -= b;
  return a;
}
Matrix operator*(Matrix a, double s) {
  a *= s;
  return a;
}
Matrix operator*(double s, Matrix a) {
  a *= s;
  return a;
}

Matrix MatMul(const Matrix& a, const Matrix& b) {
  MLBENCH_CHECK(a.cols() == b.rows());
  Matrix c(a.rows(), b.cols());
  const std::size_t n = b.cols();
  for (std::size_t i = 0; i < a.rows(); ++i) {
    double* crow = c.data() + i * n;
    for (std::size_t k = 0; k < a.cols(); ++k) {
      double aik = a(i, k);
      if (aik == 0.0) continue;
      // ikj order: the inner update is an elementwise axpy on row i of c,
      // bit-identical to the scalar j-loop.
      blocked::AddScaled(crow, b.data() + k * n, aik, n);
    }
  }
  return c;
}

Vector MatVec(const Matrix& a, const Vector& x) {
  MLBENCH_CHECK(a.cols() == x.size());
  Vector y(a.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    double s = 0;
    for (std::size_t j = 0; j < a.cols(); ++j) s += a(i, j) * x[j];
    y[i] = s;
  }
  return y;
}

double QuadraticForm(const Matrix& a, const Vector& x) {
  MLBENCH_CHECK(a.rows() == a.cols() && a.rows() == x.size());
  return Dot(x, MatVec(a, x));
}

Result<Matrix> Cholesky(const Matrix& a) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("Cholesky requires a square matrix");
  }
  const std::size_t n = a.rows();
  Matrix l(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    double d = a(j, j);
    for (std::size_t k = 0; k < j; ++k) d -= l(j, k) * l(j, k);
    if (d <= 0.0 || !std::isfinite(d)) {
      return Status::InvalidArgument("matrix is not positive definite");
    }
    l(j, j) = std::sqrt(d);
    for (std::size_t i = j + 1; i < n; ++i) {
      double s = a(i, j);
      for (std::size_t k = 0; k < j; ++k) s -= l(i, k) * l(j, k);
      l(i, j) = s / l(j, j);
    }
  }
  return l;
}

Vector ForwardSubstitute(const Matrix& l, const Vector& b) {
  const std::size_t n = l.rows();
  MLBENCH_CHECK(b.size() == n);
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (std::size_t k = 0; k < i; ++k) s -= l(i, k) * y[k];
    y[i] = s / l(i, i);
  }
  return y;
}

Vector BackSubstituteTransposed(const Matrix& l, const Vector& y) {
  const std::size_t n = l.rows();
  MLBENCH_CHECK(y.size() == n);
  Vector x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double s = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) s -= l(k, ii) * x[k];
    x[ii] = s / l(ii, ii);
  }
  return x;
}

Result<Vector> SolveSpd(const Matrix& a, const Vector& b) {
  MLBENCH_ASSIGN_OR_RETURN(Matrix l, Cholesky(a));
  return BackSubstituteTransposed(l, ForwardSubstitute(l, b));
}

Result<Matrix> InverseSpd(const Matrix& a) {
  MLBENCH_ASSIGN_OR_RETURN(Matrix l, Cholesky(a));
  const std::size_t n = a.rows();
  Matrix inv(n, n);
  for (std::size_t c = 0; c < n; ++c) {
    Vector e(n);
    e[c] = 1.0;
    Vector x = BackSubstituteTransposed(l, ForwardSubstitute(l, e));
    for (std::size_t r = 0; r < n; ++r) inv(r, c) = x[r];
  }
  return inv;
}

Result<double> LogDetSpd(const Matrix& a) {
  MLBENCH_ASSIGN_OR_RETURN(Matrix l, Cholesky(a));
  double s = 0;
  for (std::size_t i = 0; i < a.rows(); ++i) s += std::log(l(i, i));
  return 2.0 * s;
}

}  // namespace mlbench::linalg
