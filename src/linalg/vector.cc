#include "linalg/vector.h"

#include <cmath>

#include "linalg/blocked.h"

namespace mlbench::linalg {

Vector& Vector::operator+=(const Vector& o) {
  MLBENCH_CHECK(size() == o.size());
  blocked::Add(data_.data(), o.data_.data(), size());
  return *this;
}

Vector& Vector::operator-=(const Vector& o) {
  MLBENCH_CHECK(size() == o.size());
  blocked::Sub(data_.data(), o.data_.data(), size());
  return *this;
}

Vector& Vector::operator*=(double s) {
  blocked::Scale(data_.data(), s, data_.size());
  return *this;
}

Vector& Vector::operator/=(double s) {
  for (auto& v : data_) v /= s;
  return *this;
}

double Vector::Norm() const { return std::sqrt(Dot(*this, *this)); }

double Vector::Sum() const {
  double s = 0;
  for (double v : data_) s += v;
  return s;
}

void Vector::Fill(double v) {
  for (auto& x : data_) x = v;
}

Vector operator+(Vector a, const Vector& b) {
  a += b;
  return a;
}
Vector operator-(Vector a, const Vector& b) {
  a -= b;
  return a;
}
Vector operator*(Vector a, double s) {
  a *= s;
  return a;
}
Vector operator*(double s, Vector a) {
  a *= s;
  return a;
}

double Dot(const Vector& a, const Vector& b) {
  MLBENCH_CHECK(a.size() == b.size());
  double s = 0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double SquaredDistance(const Vector& a, const Vector& b) {
  MLBENCH_CHECK(a.size() == b.size());
  double s = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    double d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

}  // namespace mlbench::linalg
