#pragma once

#include <cstddef>
#include <initializer_list>
#include <vector>

#include "common/logging.h"

/// \file vector.h
/// A small dense double vector used throughout the samplers.
///
/// This is deliberately a thin, owning, contiguous container: the models in
/// the benchmark work with dimensionalities of 10-1000, so simplicity and
/// cache-friendliness beat expression templates.

namespace mlbench::linalg {

class Vector {
 public:
  Vector() = default;
  /// Zero vector of dimension n.
  explicit Vector(std::size_t n) : data_(n, 0.0) {}
  Vector(std::size_t n, double fill) : data_(n, fill) {}
  Vector(std::initializer_list<double> init) : data_(init) {}
  explicit Vector(std::vector<double> data) : data_(std::move(data)) {}

  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& operator[](std::size_t i) { return data_[i]; }
  double operator[](std::size_t i) const { return data_[i]; }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  auto begin() { return data_.begin(); }
  auto end() { return data_.end(); }
  auto begin() const { return data_.begin(); }
  auto end() const { return data_.end(); }

  const std::vector<double>& raw() const { return data_; }

  Vector& operator+=(const Vector& o);
  Vector& operator-=(const Vector& o);
  Vector& operator*=(double s);
  Vector& operator/=(double s);

  /// Euclidean norm.
  double Norm() const;
  /// Sum of entries.
  double Sum() const;
  /// Fills every entry with `v`.
  void Fill(double v);

  friend bool operator==(const Vector& a, const Vector& b) {
    return a.data_ == b.data_;
  }

 private:
  std::vector<double> data_;
};

Vector operator+(Vector a, const Vector& b);
Vector operator-(Vector a, const Vector& b);
Vector operator*(Vector a, double s);
Vector operator*(double s, Vector a);

/// Dot product; dimensions must agree.
double Dot(const Vector& a, const Vector& b);

/// Squared Euclidean distance between a and b.
double SquaredDistance(const Vector& a, const Vector& b);

}  // namespace mlbench::linalg
