#include "common/str_format.h"

#include <cmath>
#include <cstdio>

namespace mlbench {

std::string FormatDuration(double seconds) {
  if (seconds < 0 || !std::isfinite(seconds)) return "-";
  auto total = static_cast<std::uint64_t>(seconds + 0.5);
  std::uint64_t h = total / 3600;
  std::uint64_t m = (total % 3600) / 60;
  std::uint64_t s = total % 60;
  char buf[32];
  if (h > 0) {
    std::snprintf(buf, sizeof(buf), "%llu:%02llu:%02llu",
                  static_cast<unsigned long long>(h),
                  static_cast<unsigned long long>(m),
                  static_cast<unsigned long long>(s));
  } else {
    std::snprintf(buf, sizeof(buf), "%llu:%02llu",
                  static_cast<unsigned long long>(m),
                  static_cast<unsigned long long>(s));
  }
  return buf;
}

std::string FormatBytes(double bytes) {
  static const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB", "PiB"};
  int unit = 0;
  while (bytes >= 1024.0 && unit < 5) {
    bytes /= 1024.0;
    ++unit;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f %s", bytes, kUnits[unit]);
  return buf;
}

std::string FormatCount(std::uint64_t n) {
  std::string digits = std::to_string(n);
  std::string out;
  int since_sep = static_cast<int>(digits.size()) % 3;
  if (since_sep == 0) since_sep = 3;
  for (char c : digits) {
    if (since_sep == 0) {
      out += ',';
      since_sep = 3;
    }
    out += c;
    --since_sep;
  }
  return out;
}

std::string PadLeft(const std::string& s, std::size_t width) {
  if (s.size() >= width) return s;
  return std::string(width - s.size(), ' ') + s;
}

std::string PadRight(const std::string& s, std::size_t width) {
  if (s.size() >= width) return s;
  return s + std::string(width - s.size(), ' ');
}

std::string RenderTable(const std::vector<std::string>& header,
                        const std::vector<std::vector<std::string>>& rows) {
  std::vector<std::size_t> widths(header.size());
  for (std::size_t c = 0; c < header.size(); ++c) widths[c] = header[c].size();
  for (const auto& row : rows) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::string out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      out += (c == 0 ? "" : "  ");
      out += c == 0 ? PadRight(cell, widths[c]) : PadLeft(cell, widths[c]);
    }
    out += '\n';
  };
  emit_row(header);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c == 0 ? 0 : 2);
  }
  out += std::string(total, '-');
  out += '\n';
  for (const auto& row : rows) emit_row(row);
  return out;
}

}  // namespace mlbench
