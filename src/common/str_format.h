#pragma once

#include <cstdint>
#include <string>
#include <vector>

/// \file str_format.h
/// Small formatting helpers used by benchmark reporting.

namespace mlbench {

/// Formats a duration in seconds as the paper's table format:
/// "MM:SS" when under an hour, "HH:MM:SS" otherwise (e.g. 27:55, 1:51:12).
/// Negative durations format as "-".
std::string FormatDuration(double seconds);

/// Formats a byte count with a binary-unit suffix, e.g. "68.0 GiB".
std::string FormatBytes(double bytes);

/// Formats a count with thousands separators, e.g. "1,000,000,000".
std::string FormatCount(std::uint64_t n);

/// Left- or right-pads `s` with spaces to at least `width` characters.
std::string PadLeft(const std::string& s, std::size_t width);
std::string PadRight(const std::string& s, std::size_t width);

/// Renders rows as a fixed-width ASCII table with a header underline.
/// Every row must have the same number of cells as `header`.
std::string RenderTable(const std::vector<std::string>& header,
                        const std::vector<std::vector<std::string>>& rows);

}  // namespace mlbench
