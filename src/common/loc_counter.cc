#include "common/loc_counter.h"

#include <fstream>

namespace mlbench {

namespace {

bool IsCodeLine(const std::string& line) {
  std::size_t i = line.find_first_not_of(" \t\r");
  if (i == std::string::npos) return false;
  if (line.compare(i, 2, "//") == 0) return false;
  if (line[i] == '*' || line.compare(i, 2, "/*") == 0) return false;
  return true;
}

}  // namespace

int CountLinesOfCode(const std::vector<std::string>& relative_paths) {
#ifdef MLBENCH_SOURCE_DIR
  const std::string root = MLBENCH_SOURCE_DIR;
#else
  const std::string root = ".";
#endif
  int total = 0;
  for (const auto& rel : relative_paths) {
    std::ifstream in(root + "/" + rel);
    if (!in) continue;
    std::string line;
    while (std::getline(in, line)) {
      if (IsCodeLine(line)) ++total;
    }
  }
  return total;
}

}  // namespace mlbench
