#pragma once

#include <cstdio>
#include <cstdlib>

/// \file logging.h
/// Minimal check macros. MLBENCH_CHECK is for programmer errors (invariant
/// violations); recoverable conditions go through Status instead.

#define MLBENCH_CHECK(cond)                                              \
  do {                                                                   \
    if (!(cond)) {                                                       \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", __FILE__,      \
                   __LINE__, #cond);                                     \
      std::abort();                                                      \
    }                                                                    \
  } while (0)

#define MLBENCH_CHECK_MSG(cond, msg)                                     \
  do {                                                                   \
    if (!(cond)) {                                                       \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s (%s)\n", __FILE__, \
                   __LINE__, #cond, msg);                                \
      std::abort();                                                      \
    }                                                                    \
  } while (0)
