#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <variant>

/// \file status.h
/// Error handling primitives for the mlbench libraries.
///
/// Library code reports recoverable failures through Status / Result<T>
/// rather than exceptions, following the Arrow/RocksDB idiom. A failed
/// engine run (e.g. a simulated out-of-memory) is an expected outcome of a
/// benchmark and must propagate as a value, never as a crash.

namespace mlbench {

/// Machine-readable category of a Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfMemory,        ///< simulated cluster exhausted per-machine RAM
  kFailedPrecondition,
  kNotFound,
  kUnimplemented,
  kInternal,
  kUnavailable,        ///< simulated machine failed permanently (retries spent)
  kResourceExhausted,  ///< admitting the request would overcommit host RAM,
                       ///< or the admission queue is full (load shed)
  kDeadlineExceeded,   ///< request deadline passed before (or during) its run
};

/// Returns a stable human-readable name for a StatusCode ("OutOfMemory", ...).
const char* StatusCodeName(StatusCode code);

/// Inverse of StatusCodeName, for wire formats that ship codes by name
/// (the experiment server protocol). Unknown names map to kInternal.
StatusCode StatusCodeFromName(std::string_view name);

/// A success-or-error outcome carrying a code and a message.
///
/// [[nodiscard]]: every Status a function returns encodes an outcome the
/// caller must act on — a silently dropped simulated OOM or machine
/// failure would corrupt the benchmark numbers it feeds. The mlint
/// `ignored-status` rule enforces the same contract on call sites the
/// compiler cannot see (see DESIGN.md §11).
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfMemory(std::string msg) {
    return Status(StatusCode::kOutOfMemory, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  [[nodiscard]] bool ok() const { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return msg_; }

  /// "OK" or "<CodeName>: <message>".
  [[nodiscard]] std::string ToString() const;

  [[nodiscard]] bool IsOutOfMemory() const {
    return code_ == StatusCode::kOutOfMemory;
  }
  [[nodiscard]] bool IsUnavailable() const {
    return code_ == StatusCode::kUnavailable;
  }
  [[nodiscard]] bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  [[nodiscard]] bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_;
  std::string msg_;
};

/// A value-or-Status sum type, analogous to arrow::Result.
///
/// Accessing the value of a failed Result aborts; callers must check ok().
template <typename T>
class Result {
 public:
  /// Implicit from value (success).
  Result(T value) : v_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  /// Implicit from non-OK status (failure). An OK status is a logic error.
  Result(Status st) : v_(std::move(st)) {}   // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool ok() const { return std::holds_alternative<T>(v_); }

  [[nodiscard]] const Status& status() const {
    static const Status kOk = Status::OK();
    if (ok()) return kOk;
    return std::get<Status>(v_);
  }

  [[nodiscard]] T& value() & { return std::get<T>(v_); }
  [[nodiscard]] const T& value() const& { return std::get<T>(v_); }
  [[nodiscard]] T&& value() && { return std::get<T>(std::move(v_)); }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  /// Returns the value, or `fallback` if this Result holds an error.
  [[nodiscard]] T ValueOr(T fallback) const {
    return ok() ? std::get<T>(v_) : std::move(fallback);
  }

 private:
  std::variant<T, Status> v_;
};

}  // namespace mlbench

/// Propagates a non-OK Status from an expression, RocksDB-style.
#define MLBENCH_RETURN_NOT_OK(expr)                \
  do {                                             \
    ::mlbench::Status _st = (expr);                \
    if (!_st.ok()) return _st;                     \
  } while (0)

/// Assigns the value of a Result expression or propagates its Status.
#define MLBENCH_ASSIGN_OR_RETURN(lhs, expr)        \
  auto MLBENCH_CONCAT_(_res, __LINE__) = (expr);   \
  if (!MLBENCH_CONCAT_(_res, __LINE__).ok())       \
    return MLBENCH_CONCAT_(_res, __LINE__).status(); \
  lhs = std::move(MLBENCH_CONCAT_(_res, __LINE__)).value()

#define MLBENCH_CONCAT_(a, b) MLBENCH_CONCAT_IMPL_(a, b)
#define MLBENCH_CONCAT_IMPL_(a, b) a##b
