#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

/// \file flat_index.h
/// Open-addressing uint64 -> size_t index with O(1) generation clear.
///
/// Built for hot loops that rebuild a key->slot map every iteration (the
/// BSP combiner does this once per superstep): a node-based unordered_map
/// pays one allocation per insert and a bucket walk per clear, every
/// round. FlatIndex stores slots in one flat array, probes linearly, and
/// "clears" by bumping a generation stamp — stale slots are simply
/// ignored — so the steady state neither allocates nor touches memory to
/// reset.
///
/// Determinism: lookup results depend only on the key sequence, never on
/// iteration order (the table is not iterable), so replacing a hash map
/// with FlatIndex cannot perturb any engine's commit order.

namespace mlbench::common {

class FlatIndex {
 public:
  /// Drops every entry. O(1): bumps the generation stamp.
  void Clear() {
    if (++gen_ == 0) {
      // Stamp wrapped (after ~4B clears): ground every slot once so no
      // stale slot can alias the restarted generation.
      for (Slot& s : slots_) s.gen = 0;
      gen_ = 1;
    }
    live_ = 0;
  }

  std::size_t size() const { return live_; }

  /// Finds `key`'s value slot, inserting (value-initialized to 0) if
  /// absent; `*inserted` reports which happened. The returned pointer is
  /// valid until the next FindOrInsert or Clear.
  std::size_t* FindOrInsert(std::uint64_t key, bool* inserted) {
    if (slots_.empty() || live_ + (live_ >> 2) >= slots_.size()) Grow();
    for (std::size_t i = Hash(key) & mask_;; i = (i + 1) & mask_) {
      Slot& s = slots_[i];
      if (s.gen != gen_) {
        s.gen = gen_;
        s.key = key;
        s.value = 0;
        ++live_;
        *inserted = true;
        return &s.value;
      }
      if (s.key == key) {
        *inserted = false;
        return &s.value;
      }
    }
  }

  /// Returns the value slot for `key`, or nullptr if absent.
  const std::size_t* Find(std::uint64_t key) const {
    if (slots_.empty()) return nullptr;
    for (std::size_t i = Hash(key) & mask_;; i = (i + 1) & mask_) {
      const Slot& s = slots_[i];
      if (s.gen != gen_) return nullptr;
      if (s.key == key) return &s.value;
    }
  }

  /// Pre-sizes the table for `n` live entries without rehash churn.
  void Reserve(std::size_t n) {
    std::size_t want = 16;
    while (want < n * 2) want <<= 1;
    if (want > slots_.size()) Rehash(want);
  }

 private:
  struct Slot {
    std::uint64_t key = 0;
    std::size_t value = 0;
    std::uint32_t gen = 0;  ///< live iff equal to the index's gen_
  };

  static std::uint64_t Hash(std::uint64_t x) {
    // splitmix64 finalizer: full-avalanche, so linear probing behaves
    // even for the engines' structured (machine << 48 | slot) keys.
    x += 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return x ^ (x >> 31);
  }

  void Grow() { Rehash(slots_.empty() ? 16 : slots_.size() * 2); }

  void Rehash(std::size_t new_size) {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(new_size, Slot{});
    mask_ = new_size - 1;
    std::uint32_t old_gen = gen_;
    gen_ = 1;
    live_ = 0;
    for (const Slot& s : old) {
      if (s.gen != old_gen) continue;
      bool inserted = false;
      *FindOrInsert(s.key, &inserted) = s.value;
    }
  }

  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  std::size_t live_ = 0;
  std::uint32_t gen_ = 1;
};

}  // namespace mlbench::common
