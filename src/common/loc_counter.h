#pragma once

#include <string>
#include <vector>

/// \file loc_counter.h
/// Counts lines of code in repository source files, used to regenerate the
/// "lines of code" columns of the paper's tables for *our* implementations.

namespace mlbench {

/// Counts non-blank, non-comment-only lines across the given files.
///
/// Paths are relative to the repository root (compiled in via
/// MLBENCH_SOURCE_DIR). Missing files count as zero so benches degrade
/// gracefully when run from an installed tree.
int CountLinesOfCode(const std::vector<std::string>& relative_paths);

}  // namespace mlbench
