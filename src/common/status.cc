#include "common/status.h"

namespace mlbench {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfMemory:
      return "OutOfMemory";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string s = StatusCodeName(code_);
  if (!msg_.empty()) {
    s += ": ";
    s += msg_;
  }
  return s;
}

}  // namespace mlbench
