#include "common/status.h"

namespace mlbench {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfMemory:
      return "OutOfMemory";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}

StatusCode StatusCodeFromName(std::string_view name) {
  static constexpr StatusCode kAll[] = {
      StatusCode::kOk,           StatusCode::kInvalidArgument,
      StatusCode::kOutOfMemory,  StatusCode::kFailedPrecondition,
      StatusCode::kNotFound,     StatusCode::kUnimplemented,
      StatusCode::kInternal,     StatusCode::kUnavailable,
      StatusCode::kResourceExhausted, StatusCode::kDeadlineExceeded,
  };
  for (StatusCode c : kAll) {
    if (name == StatusCodeName(c)) return c;
  }
  return StatusCode::kInternal;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string s = StatusCodeName(code_);
  if (!msg_.empty()) {
    s += ": ";
    s += msg_;
  }
  return s;
}

}  // namespace mlbench
