#include "exec/thread_pool.h"

#include <cstdlib>
#include <memory>
#include <string>

namespace mlbench::exec {

#ifndef MLBENCH_DEFAULT_THREADS
#define MLBENCH_DEFAULT_THREADS 0  // 0 = follow hardware_concurrency()
#endif

ThreadPool::ThreadPool(int threads) : threads_(threads < 1 ? 1 : threads) {
  workers_.reserve(static_cast<std::size_t>(threads_ - 1));
  for (int i = 0; i < threads_ - 1; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  job_available_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Participate(Job* job) {
  for (;;) {
    std::int64_t chunk = job->next.fetch_add(1, std::memory_order_relaxed);
    if (chunk >= job->num_chunks) return;
    (*job->fn)(chunk);
  }
}

void ThreadPool::WorkerLoop() {
  std::uint64_t seen_seq = 0;
  for (;;) {
    Job* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      job_available_.wait(lock, [&] {
        return stopping_ || (job_ != nullptr && job_seq_ != seen_seq);
      });
      if (stopping_) return;
      seen_seq = job_seq_;
      job = job_;
      // Register under the lock: Run() cannot observe completion until
      // this worker has deregistered, so `job` stays alive throughout.
      job->active += 1;
    }
    Participate(job);
    {
      std::lock_guard<std::mutex> lock(mu_);
      job->active -= 1;
    }
    job_finished_.notify_all();
  }
}

void ThreadPool::Run(std::int64_t num_chunks,
                     const std::function<void(std::int64_t)>& fn) {
  if (num_chunks <= 0) return;
  if (threads_ == 1 || num_chunks == 1) {
    for (std::int64_t c = 0; c < num_chunks; ++c) fn(c);
    return;
  }
  Job job;
  job.num_chunks = num_chunks;
  job.fn = &fn;
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = &job;
    ++job_seq_;
  }
  job_available_.notify_all();
  Participate(&job);
  // The cursor is exhausted: every chunk has been claimed, and the chunks
  // this thread claimed have finished. Retract the job so no new worker
  // registers, then wait for registered workers to drain their chunks.
  {
    std::unique_lock<std::mutex> lock(mu_);
    job_ = nullptr;
    job_finished_.wait(lock, [&] { return job.active == 0; });
  }
}

namespace {

std::unique_ptr<ThreadPool>& GlobalSlot() {
  static std::unique_ptr<ThreadPool> pool;
  return pool;
}

}  // namespace

int ThreadPool::DefaultThreads() {
  if (const char* env = std::getenv("MLBENCH_THREADS")) {
    int n = std::atoi(env);
    if (n >= 1) return n;
  }
  if (MLBENCH_DEFAULT_THREADS >= 1) return MLBENCH_DEFAULT_THREADS;
  unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? static_cast<int>(hw) : 1;
}

ThreadPool& ThreadPool::Global() {
  auto& slot = GlobalSlot();
  if (!slot) slot = std::make_unique<ThreadPool>(DefaultThreads());
  return *slot;
}

void ThreadPool::SetGlobalThreads(int threads) {
  GlobalSlot() = std::make_unique<ThreadPool>(threads);
}

}  // namespace mlbench::exec
