#include "exec/thread_pool.h"

#include <chrono>
#include <cstdlib>
#include <string>

namespace mlbench::exec {

#ifndef MLBENCH_DEFAULT_THREADS
#define MLBENCH_DEFAULT_THREADS 0  // 0 = follow hardware_concurrency()
#endif

namespace {

/// Polite busy-wait hint: tells the core we are spinning so a hyper-twin
/// (or, on a loaded host, the thread we are waiting for) gets the pipeline.
inline void CpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  std::this_thread::yield();
#endif
}

/// How long a worker that just executed chunks keeps spinning for the next
/// Run before parking. Tuned for the back-to-back ParallelFor pattern the
/// engines produce (one Run every few microseconds during a sweep): long
/// enough to bridge consecutive Runs, short enough (~1-2us) that a pool
/// going idle parks almost immediately.
constexpr int kWorkerSpinIters = 4096;

/// Caller-side spin before falling back to a futex wait on job completion.
/// The tail it covers is another thread finishing its last claimed chunk,
/// which for engine grains is microseconds at most.
constexpr int kCallerSpinIters = 8192;

}  // namespace

ThreadPool::ThreadPool(int threads) : threads_(threads < 1 ? 1 : threads) {
  int workers = threads_ - 1;
  if (workers > 0) {
    slots_ = std::make_unique<WorkerSlot[]>(static_cast<std::size_t>(workers));
    workers_.reserve(static_cast<std::size_t>(workers));
    for (int i = 0; i < workers; ++i) {
      workers_.emplace_back([this, i] { WorkerLoop(i); });
    }
  }
}

ThreadPool::~ThreadPool() {
  stopping_.store(true, std::memory_order_release);
  // Bump the sequence so spinning workers notice, and kick parked ones.
  seq_.fetch_add(1, std::memory_order_seq_cst);
  seq_.notify_all();
  for (auto& w : workers_) w.join();
}

std::int64_t ThreadPool::ClaimChunks(Job* job) {
  std::int64_t claimed = 0;
  for (;;) {
    std::int64_t c = job->next.fetch_add(1, std::memory_order_relaxed);
    if (c >= job->num_chunks) return claimed;
    job->fn(job->ctx, c);
    ++claimed;
  }
}

void ThreadPool::WorkerLoop(int slot) {
  WorkerSlot& me = slots_[slot];
  std::uint64_t seen = 0;
  // Whether the previous wake actually yielded chunks. Only then is a
  // brief spin worth it (back-to-back Runs); a fruitless wake means the
  // caller drained the job alone — e.g. a single-core host, where a
  // spinning worker would only steal cycles from the caller — so the
  // worker re-parks immediately.
  bool had_work = false;
  for (;;) {
    std::uint64_t s = seq_.load(std::memory_order_acquire);
    if (s == seen) {
      if (had_work) {
        for (int i = 0; i < kWorkerSpinIters && s == seen; ++i) {
          CpuRelax();
          s = seq_.load(std::memory_order_acquire);
        }
        if (s == seen) had_work = false;  // spin expired: park next pass
        continue;
      }
      parks_.fetch_add(1, std::memory_order_relaxed);
      parked_.fetch_add(1, std::memory_order_seq_cst);
      // Dekker re-check against Run(): either we see the bump here, or
      // Run's parked_ load (after its bump) sees us and notifies.
      if (seq_.load(std::memory_order_seq_cst) == seen) {
        seq_.wait(seen, std::memory_order_seq_cst);
      }
      parked_.fetch_sub(1, std::memory_order_relaxed);
      continue;
    }
    seen = s;
    if (stopping_.load(std::memory_order_acquire)) return;

    Job* job = job_.load(std::memory_order_acquire);
    if (job == nullptr) {
      had_work = false;
      continue;
    }
    // Hazard acquisition: publish intent, then confirm the job is still
    // current. If the re-check fails the job may already be retracted
    // (and its stack frame dying), so back off without touching it.
    me.hazard.store(job, std::memory_order_seq_cst);
    if (job_.load(std::memory_order_seq_cst) != job) {
      me.hazard.store(nullptr, std::memory_order_release);
      had_work = false;
      continue;
    }
    std::int64_t claimed = ClaimChunks(job);
    if (claimed > 0) {
      me.chunks.fetch_add(static_cast<std::uint64_t>(claimed),
                          std::memory_order_relaxed);
      std::int64_t finished =
          job->done.fetch_add(claimed, std::memory_order_seq_cst) + claimed;
      if (finished == job->num_chunks &&
          job->caller_waiting.load(std::memory_order_seq_cst) != 0) {
        // Touching job->done here is safe: the caller cannot destroy the
        // job until our hazard slot (still set) releases it below.
        job->done.notify_all();
      }
    }
    me.hazard.store(nullptr, std::memory_order_release);
    had_work = claimed > 0;
  }
}

void ThreadPool::Run(std::int64_t num_chunks, RunFn fn, void* ctx) {
  if (num_chunks <= 0) return;
  if (threads_ == 1 || num_chunks == 1) {
    serial_runs_.fetch_add(1, std::memory_order_relaxed);
    for (std::int64_t c = 0; c < num_chunks; ++c) fn(ctx, c);
    return;
  }
  parallel_runs_.fetch_add(1, std::memory_order_relaxed);
  using Clock = std::chrono::steady_clock;
  const bool timing = timing_.load(std::memory_order_relaxed);
  Clock::time_point t0;
  if (timing) t0 = Clock::now();

  Job job;
  job.num_chunks = num_chunks;
  job.fn = fn;
  job.ctx = ctx;
  job_.store(&job, std::memory_order_release);
  seq_.fetch_add(1, std::memory_order_seq_cst);
  if (parked_.load(std::memory_order_seq_cst) > 0) {
    notifies_.fetch_add(1, std::memory_order_relaxed);
    seq_.notify_all();
  }
  std::uint64_t publish_ns = 0;
  Clock::time_point t1;
  if (timing) {
    t1 = Clock::now();
    publish_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
  }

  std::int64_t claimed = ClaimChunks(&job);
  if (timing) t1 = Clock::now();
  std::int64_t done;
  if (claimed > 0) {
    caller_chunks_.fetch_add(static_cast<std::uint64_t>(claimed),
                             std::memory_order_relaxed);
    done = job.done.fetch_add(claimed, std::memory_order_seq_cst) + claimed;
  } else {
    done = job.done.load(std::memory_order_acquire);
  }
  if (done != num_chunks) {
    for (int i = 0; i < kCallerSpinIters && done != num_chunks; ++i) {
      CpuRelax();
      done = job.done.load(std::memory_order_acquire);
    }
    if (done != num_chunks) {
      // Declare the wait, then futex-sleep on `done`. The seq_cst store
      // pairs with the workers' seq_cst done/caller_waiting accesses:
      // either a worker's final increment sees the flag and notifies, or
      // we see the final count and never sleep.
      job.caller_waiting.store(1, std::memory_order_seq_cst);
      for (;;) {
        std::int64_t d = job.done.load(std::memory_order_seq_cst);
        if (d == num_chunks) break;
        job.done.wait(d, std::memory_order_seq_cst);
      }
    }
  }
  // Retract the job so no late worker adopts it. CAS, not a plain store: a
  // nested Run may have republished job_ since, and clobbering its pointer
  // would strand that job's workers.
  Job* expected = &job;
  job_.compare_exchange_strong(expected, nullptr, std::memory_order_acq_rel,
                               std::memory_order_relaxed);
  // Quiesce: a worker between hazard-store and re-check may still hold a
  // pointer to our (stack-allocated) job. Wait for every slot to release
  // it; this is at most the tail of one hazard protocol round, since all
  // chunks are already done.
  int workers = threads_ - 1;
  for (int i = 0; i < workers; ++i) {
    while (slots_[i].hazard.load(std::memory_order_seq_cst) == &job) {
      CpuRelax();
    }
  }
  if (timing) {
    auto t2 = Clock::now();
    dispatch_ns_.fetch_add(
        publish_ns +
            static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(t2 - t1)
                    .count()),
        std::memory_order_relaxed);
  }
}

DispatchStats ThreadPool::Stats() const {
  DispatchStats s;
  s.parallel_runs = parallel_runs_.load(std::memory_order_relaxed);
  s.serial_runs = serial_runs_.load(std::memory_order_relaxed);
  s.notifies = notifies_.load(std::memory_order_relaxed);
  s.parks = parks_.load(std::memory_order_relaxed);
  s.caller_chunks = caller_chunks_.load(std::memory_order_relaxed);
  s.dispatch_ns = dispatch_ns_.load(std::memory_order_relaxed);
  int workers = threads_ - 1;
  s.worker_chunks.resize(static_cast<std::size_t>(workers > 0 ? workers : 0));
  for (int i = 0; i < workers; ++i) {
    s.worker_chunks[static_cast<std::size_t>(i)] =
        slots_[i].chunks.load(std::memory_order_relaxed);
  }
  return s;
}

void ThreadPool::ResetStats() {
  parallel_runs_.store(0, std::memory_order_relaxed);
  serial_runs_.store(0, std::memory_order_relaxed);
  notifies_.store(0, std::memory_order_relaxed);
  parks_.store(0, std::memory_order_relaxed);
  caller_chunks_.store(0, std::memory_order_relaxed);
  dispatch_ns_.store(0, std::memory_order_relaxed);
  for (int i = 0; i < threads_ - 1; ++i) {
    slots_[i].chunks.store(0, std::memory_order_relaxed);
  }
}

namespace {

std::unique_ptr<ThreadPool>& GlobalSlot() {
  static std::unique_ptr<ThreadPool> pool;
  return pool;
}

}  // namespace

int ThreadPool::DefaultThreads() {
  if (const char* env = std::getenv("MLBENCH_THREADS")) {
    int n = std::atoi(env);
    if (n >= 1) return n;
  }
  if (MLBENCH_DEFAULT_THREADS >= 1) return MLBENCH_DEFAULT_THREADS;
  unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? static_cast<int>(hw) : 1;
}

ThreadPool& ThreadPool::Global() {
  auto& slot = GlobalSlot();
  if (!slot) slot = std::make_unique<ThreadPool>(DefaultThreads());
  return *slot;
}

void ThreadPool::SetGlobalThreads(int threads) {
  GlobalSlot() = std::make_unique<ThreadPool>(threads);
}

}  // namespace mlbench::exec
