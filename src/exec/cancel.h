#pragma once

#include <atomic>
#include <mutex>
#include <string>
#include <utility>

#include "common/status.h"

/// \file cancel.h
/// Cooperative cancellation for long-running engine work.
///
/// A CancelToken is owned by whoever can abort a run (the experiment
/// server's session, a deadline watchdog) and observed by the run itself.
/// Cancellation is *cooperative and deterministic*: drivers poll the token
/// only at iteration boundaries (via ExperimentConfig::IterationBoundary),
/// so a cancelled run always stops at a well-defined synchronisation point
/// with no torn model state, and a run that is never cancelled executes
/// bit-identically to one with no token attached.
///
/// The token lives in src/exec/ because it is a host-concurrency
/// primitive: Cancel() may be called from a different thread than the one
/// executing the run (mlint's raw-thread rule allowlists this directory).

namespace mlbench::exec {

/// Thread-safe one-shot cancellation flag carrying the Status the
/// cancelled run should report (e.g. DeadlineExceeded vs Unavailable).
class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Requests cancellation with the given non-OK status. The first call
  /// wins; later calls are ignored so the reported reason is stable.
  void Cancel(Status reason) {
    std::lock_guard<std::mutex> lock(mu_);
    if (cancelled_.load(std::memory_order_relaxed)) return;
    reason_ = std::move(reason);
    cancelled_.store(true, std::memory_order_release);
  }

  /// Cheap check (one relaxed atomic load) for hot polling sites.
  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

  /// OK while the token is live; the Cancel() reason afterwards.
  Status status() const {
    if (!cancelled()) return Status::OK();
    std::lock_guard<std::mutex> lock(mu_);
    return reason_;
  }

 private:
  std::atomic<bool> cancelled_{false};
  mutable std::mutex mu_;  ///< guards reason_ against a racing Cancel()
  Status reason_ = Status::OK();
};

}  // namespace mlbench::exec
