#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

/// \file thread_pool.h
/// Host-side worker pool for mlbench engines.
///
/// This is *host* parallelism, not simulated parallelism: the ClusterSim
/// still charges the paper's per-machine costs exactly as before. The pool
/// only spreads the real (laptop-scale) per-vertex / per-partition /
/// per-tuple work across host cores, so bigger actual scales fit in the
/// same wall-clock budget.
///
/// Work distribution is chunk-claiming: a job exposes `num_chunks` units of
/// work behind an atomic cursor, and every participating thread (workers
/// *and* the submitting caller) repeatedly claims the next unclaimed chunk
/// until none remain. Idle workers steal whatever chunks are left, so load
/// balances like classic work stealing without per-thread deques. The
/// caller always participates, which also makes nested parallel sections
/// safe: an inner ParallelFor issued from a worker simply runs on the
/// threads that reach it, and degenerates to serial execution when every
/// worker is busy.
///
/// Determinism contract: the pool never influences *what* is computed, only
/// *when*. Chunk boundaries are a pure function of (range, grain) — see
/// parallel_for.h — and all commit steps happen in chunk-index order on the
/// calling thread.

namespace mlbench::exec {

class ThreadPool {
 public:
  /// A pool with `threads` total execution contexts (the submitting caller
  /// counts as one, so `threads - 1` background workers are spawned).
  /// `threads <= 1` means fully serial: no workers, Run executes inline.
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total execution contexts (caller + workers), >= 1.
  int threads() const { return threads_; }

  /// Runs `fn(chunk_index)` for every chunk_index in [0, num_chunks),
  /// each exactly once, across the caller and the pool's workers. Blocks
  /// until all chunks have finished. `fn` must be safe to invoke
  /// concurrently with itself on distinct chunk indices.
  void Run(std::int64_t num_chunks,
           const std::function<void(std::int64_t)>& fn);

  /// The process-wide pool used by ParallelFor / ParallelReduce. Sized on
  /// first use from, in priority order: SetGlobalThreads() if it was
  /// called, the MLBENCH_THREADS environment variable, the
  /// MLBENCH_DEFAULT_THREADS compile-time option, hardware_concurrency().
  static ThreadPool& Global();

  /// Re-sizes the global pool (tests and benchmarks use this to pin the
  /// thread count). Not safe to call while a Run is in flight.
  static void SetGlobalThreads(int threads);

  /// The thread count Global() would use absent SetGlobalThreads().
  static int DefaultThreads();

 private:
  struct Job {
    std::int64_t num_chunks = 0;
    std::atomic<std::int64_t> next{0};
    int active = 0;  ///< workers currently inside the job, guarded by mu_
    const std::function<void(std::int64_t)>* fn = nullptr;
  };

  void WorkerLoop();
  /// Claims and runs chunks of `job` until the cursor is exhausted.
  static void Participate(Job* job);

  int threads_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable job_available_;
  std::condition_variable job_finished_;
  Job* job_ = nullptr;          ///< current job, guarded by mu_
  std::uint64_t job_seq_ = 0;   ///< bumped per job so workers spot new work
  bool stopping_ = false;
};

}  // namespace mlbench::exec
