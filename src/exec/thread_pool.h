#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

/// \file thread_pool.h
/// Host-side worker pool for mlbench engines.
///
/// This is *host* parallelism, not simulated parallelism: the ClusterSim
/// still charges the paper's per-machine costs exactly as before. The pool
/// only spreads the real (laptop-scale) per-vertex / per-partition /
/// per-tuple work across host cores, so bigger actual scales fit in the
/// same wall-clock budget.
///
/// Work distribution is chunk-claiming: a job exposes `num_chunks` units of
/// work behind an atomic cursor, and every participating thread (workers
/// *and* the submitting caller) repeatedly claims the next unclaimed chunk
/// until none remain. Idle workers steal whatever chunks are left, so load
/// balances like classic work stealing without per-thread deques. The
/// caller always participates, which also makes nested parallel sections
/// safe: an inner ParallelFor issued from a worker simply runs on the
/// threads that reach it, and degenerates to serial execution when every
/// worker is busy.
///
/// Dispatch is lock-free: Run() publishes the job through an atomic
/// pointer and broadcasts a job-sequence bump; workers notice the bump by
/// spinning briefly (when the pool is hot with back-to-back Runs) or by a
/// futex wait on the sequence word (when it has gone idle). Job pointers
/// live on the caller's stack, so workers acquire them through a
/// hazard-slot protocol: store the candidate pointer into the worker's
/// hazard slot, then re-check the published pointer; the caller retracts
/// the job and waits for every hazard slot to release it before returning.
/// No mutex or condition_variable is involved anywhere on the dispatch
/// path, and a Run that finds the pool warm costs nanoseconds, not a
/// contended wake/sleep round-trip.
///
/// Determinism contract: the pool never influences *what* is computed, only
/// *when*. Chunk boundaries are a pure function of (range, grain) — see
/// parallel_for.h — and all commit steps happen in chunk-index order on the
/// calling thread.

namespace mlbench::exec {

/// Snapshot of the pool's dispatch overhead counters (see ThreadPool::Stats).
/// Counters accumulate since construction or the last ResetStats().
struct DispatchStats {
  std::uint64_t parallel_runs = 0;  ///< Runs that engaged the dispatch path
  std::uint64_t serial_runs = 0;    ///< Runs taken by the inline fast path
  std::uint64_t notifies = 0;       ///< futex broadcasts to parked workers
  std::uint64_t parks = 0;          ///< worker park (futex wait) events
  std::uint64_t caller_chunks = 0;  ///< chunks executed by submitting callers
  /// Caller-side dispatch overhead: publish/wake plus join/quiesce time,
  /// excluding the caller's own chunk execution. Only accumulated while
  /// SetDispatchTiming(true) is in effect (the clock reads cost more than
  /// the dispatch itself, so benches opt in).
  std::uint64_t dispatch_ns = 0;
  /// Chunks executed by each background worker, in worker index order.
  std::vector<std::uint64_t> worker_chunks;

  std::uint64_t worker_chunks_total() const {
    std::uint64_t total = 0;
    for (std::uint64_t c : worker_chunks) total += c;
    return total;
  }
};

class ThreadPool {
 public:
  /// Chunk body: `fn(ctx, chunk_index)`. A plain function pointer (not
  /// std::function) so ParallelFor can dispatch templated bodies with zero
  /// allocation and zero type-erasure overhead.
  using RunFn = void (*)(void*, std::int64_t);

  /// A pool with `threads` total execution contexts (the submitting caller
  /// counts as one, so `threads - 1` background workers are spawned).
  /// `threads <= 1` means fully serial: no workers, Run executes inline.
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total execution contexts (caller + workers), >= 1.
  int threads() const { return threads_; }

  /// Runs `fn(ctx, chunk_index)` for every chunk_index in [0, num_chunks),
  /// each exactly once, across the caller and the pool's workers. Blocks
  /// until all chunks have finished. `fn` must be safe to invoke
  /// concurrently with itself on distinct chunk indices.
  void Run(std::int64_t num_chunks, RunFn fn, void* ctx);

  /// Convenience overload for callers that already hold a std::function
  /// (tests, non-hot-path code). The hot path is the RunFn overload.
  void Run(std::int64_t num_chunks,
           const std::function<void(std::int64_t)>& fn) {
    Run(
        num_chunks,
        [](void* ctx, std::int64_t c) {
          (*static_cast<const std::function<void(std::int64_t)>*>(ctx))(c);
        },
        const_cast<void*>(static_cast<const void*>(&fn)));
  }

  /// Dispatch overhead counters accumulated so far. Safe to call between
  /// Runs; concurrent with a Run the totals are approximate.
  DispatchStats Stats() const;
  /// Zeroes every counter.
  void ResetStats();
  /// Enables per-Run dispatch wall-time measurement (off by default: two
  /// steady_clock reads per Run would dominate the dispatch cost itself).
  void SetDispatchTiming(bool enabled) {
    timing_.store(enabled, std::memory_order_relaxed);
  }

  /// The process-wide pool used by ParallelFor / ParallelReduce. Sized on
  /// first use from, in priority order: SetGlobalThreads() if it was
  /// called, the MLBENCH_THREADS environment variable, the
  /// MLBENCH_DEFAULT_THREADS compile-time option, hardware_concurrency().
  static ThreadPool& Global();

  /// Re-sizes the global pool (tests and benchmarks use this to pin the
  /// thread count). Not safe to call while a Run is in flight.
  static void SetGlobalThreads(int threads);

  /// The thread count Global() would use absent SetGlobalThreads().
  static int DefaultThreads();

 private:
  struct Job {
    std::int64_t num_chunks = 0;
    RunFn fn = nullptr;
    void* ctx = nullptr;
    /// Claim cursor: fetch_add hands out chunk indices.
    alignas(64) std::atomic<std::int64_t> next{0};
    /// Chunks finished (batched per participant). done == num_chunks is
    /// the completion signal the caller waits on.
    alignas(64) std::atomic<std::int64_t> done{0};
    /// Dekker flag paired with `done`: workers only pay the futex notify
    /// when the caller has declared it is (or is about to be) waiting.
    std::atomic<int> caller_waiting{0};
  };

  /// Per-worker state, cacheline-padded so hazard publication and chunk
  /// counting never false-share across workers.
  struct alignas(64) WorkerSlot {
    /// Hazard pointer: the job this worker may be touching. The caller
    /// must not destroy a job while any slot still points at it.
    std::atomic<Job*> hazard{nullptr};
    /// Chunks this worker has executed (stats; single-writer).
    std::atomic<std::uint64_t> chunks{0};
  };

  void WorkerLoop(int slot);
  /// Claims and runs chunks of `job` until the cursor is exhausted;
  /// returns the number of chunks this thread executed. Does not touch
  /// `job->done` — callers batch-add the count themselves.
  static std::int64_t ClaimChunks(Job* job);

  int threads_;
  std::vector<std::thread> workers_;
  std::unique_ptr<WorkerSlot[]> slots_;

  /// Published job pointer (null when no job is being dispatched). Nested
  /// Runs overwrite it; the retract is a CAS so an outer Run never
  /// clobbers an inner publication.
  alignas(64) std::atomic<Job*> job_{nullptr};
  /// Job sequence: bumped on every publication (and on shutdown). Workers
  /// futex-wait on this word when parked.
  alignas(64) std::atomic<std::uint64_t> seq_{0};
  /// Number of workers currently inside a futex wait (Dekker-paired with
  /// the seq_ bump so a Run only pays notify_all when someone is parked).
  alignas(64) std::atomic<int> parked_{0};
  std::atomic<bool> stopping_{false};

  // Stats (relaxed; batched per Run, not per chunk).
  alignas(64) std::atomic<std::uint64_t> parallel_runs_{0};
  std::atomic<std::uint64_t> serial_runs_{0};
  std::atomic<std::uint64_t> notifies_{0};
  std::atomic<std::uint64_t> parks_{0};
  std::atomic<std::uint64_t> caller_chunks_{0};
  std::atomic<std::uint64_t> dispatch_ns_{0};
  std::atomic<bool> timing_{false};
};

}  // namespace mlbench::exec
