#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "exec/thread_pool.h"

/// \file parallel_for.h
/// Deterministic parallel loops over index ranges.
///
/// The determinism contract (see DESIGN.md, "Host execution model"):
///   1. Chunk boundaries are a pure function of (n, grain) — never of the
///      thread count or of scheduling. Chunk c covers
///      [c * grain, min((c + 1) * grain, n)).
///   2. Every chunk therefore maps to a stable identity: chunk index for
///      scratch/output slots, and (via Rng::Split) a stable RNG substream.
///   3. Anything order-sensitive (floating-point folds, sim charges,
///      message emission) is produced into per-chunk storage and committed
///      *in chunk-index order* on the calling thread after the loop.
/// Under these rules results are bit-identical at any MLBENCH_THREADS.
///
/// Grain selection: GrainFor(n, hint) is itself a pure function of the
/// range and the cost class — never of the thread count — so loops that
/// adopt it keep property (1). Loops whose goldens, RNG substreams or
/// ledger op-logs key on a historical chunk structure must keep their
/// frozen grain constants instead (the engines comment each such site).
///
/// Allocation: ParallelFor never type-erases the body (the pool takes a
/// plain function pointer plus a context pointer), and ParallelReduce
/// leases its partials storage from a thread-local pool (ScratchVec), so
/// the steady state of an engine sweep performs no heap allocation in
/// this layer.

namespace mlbench::exec {

/// A half-open index range assigned to one chunk.
struct Chunk {
  std::int64_t index;  ///< chunk number in [0, NumChunks(n, grain))
  std::int64_t begin;
  std::int64_t end;
};

/// Number of chunks a range of n items splits into at the given grain.
inline std::int64_t NumChunks(std::int64_t n, std::int64_t grain) {
  if (n <= 0) return 0;
  if (grain < 1) grain = 1;
  return (n + grain - 1) / grain;
}

/// The c-th chunk of [0, n) at the given grain.
inline Chunk ChunkAt(std::int64_t n, std::int64_t grain, std::int64_t c) {
  if (grain < 1) grain = 1;
  std::int64_t begin = c * grain;
  std::int64_t end = begin + grain < n ? begin + grain : n;
  return Chunk{c, begin, end};
}

/// Per-item cost class for GrainFor. The classes only need to be right to
/// an order of magnitude; they pick how many items it takes to amortize
/// one dispatch and how small a chunk is worth handing out.
enum class CostHint {
  kCheap,   ///< a few ns/item: selection-vector filters, column copies
  kNormal,  ///< tens of ns/item: hash probes, per-vertex message handling
  kHeavy,   ///< microseconds+/item: whole partitions, model-block updates
};

/// Ceiling on chunks handed out per Run. A fixed constant (never derived
/// from the thread count!) so chunk boundaries stay a pure function of
/// (n, hint); 64 chunks keeps claim traffic trivial while still giving
/// any plausible host enough slack for load balancing.
inline constexpr std::int64_t kMaxChunksPerRun = 64;

/// Deterministic grain for a loop of `n` items of the given cost class.
/// Pure in (n, hint): the same range always chunks the same way, at any
/// thread count, so adopting it preserves the determinism contract. Below
/// the class's serial cutoff the whole range becomes one chunk, which
/// ParallelFor runs inline — ranges too small to amortize a dispatch
/// never pay for one.
inline std::int64_t GrainFor(std::int64_t n, CostHint hint) {
  std::int64_t serial_below;
  std::int64_t min_grain;
  switch (hint) {
    case CostHint::kCheap:
      serial_below = 16384;
      min_grain = 4096;
      break;
    case CostHint::kNormal:
      serial_below = 2048;
      min_grain = 256;
      break;
    case CostHint::kHeavy:
    default:
      serial_below = 2;
      min_grain = 1;
      break;
  }
  if (n < serial_below) return n > 1 ? n : 1;
  std::int64_t grain = (n + kMaxChunksPerRun - 1) / kMaxChunksPerRun;
  return grain > min_grain ? grain : min_grain;
}

namespace detail {

/// Thread-local freelist backing ScratchVec<T>. Checkout semantics (the
/// lease removes the vector from the list) make nested leases safe: an
/// inner ParallelReduce on the same thread simply checks out a different
/// vector.
template <typename T>
std::vector<std::unique_ptr<std::vector<T>>>& ScratchFreelist() {
  thread_local std::vector<std::unique_ptr<std::vector<T>>> freelist;
  return freelist;
}

inline constexpr std::size_t kScratchFreelistCap = 8;

}  // namespace detail

/// RAII lease of a reusable std::vector<T> from a thread-local pool.
/// Contents on checkout are unspecified (whatever the previous lease left,
/// with its capacity intact — that is the point); size it yourself and
/// treat existing elements as dirty. Returned to the pool on destruction
/// without shrinking, so steady-state reuse performs no allocation.
template <typename T>
class ScratchVec {
 public:
  ScratchVec() {
    auto& freelist = detail::ScratchFreelist<T>();
    if (freelist.empty()) {
      vec_ = std::make_unique<std::vector<T>>();
    } else {
      vec_ = std::move(freelist.back());
      freelist.pop_back();
    }
  }
  ~ScratchVec() {
    auto& freelist = detail::ScratchFreelist<T>();
    if (freelist.size() < detail::kScratchFreelistCap) {
      freelist.push_back(std::move(vec_));
    }
  }

  ScratchVec(const ScratchVec&) = delete;
  ScratchVec& operator=(const ScratchVec&) = delete;

  std::vector<T>& get() { return *vec_; }
  std::vector<T>& operator*() { return *vec_; }
  std::vector<T>* operator->() { return vec_.get(); }

 private:
  std::unique_ptr<std::vector<T>> vec_;
};

/// Runs `fn(chunk)` once per chunk of [0, n), spread across the global
/// pool. Blocks until every chunk has run. `fn` must tolerate concurrent
/// invocation on distinct chunks; use the chunk index for any per-chunk
/// output slot so results can be committed in index order afterwards.
/// The body is dispatched as a raw function pointer + context — no
/// std::function, no allocation.
template <typename Fn>
void ParallelFor(std::int64_t n, std::int64_t grain, Fn&& fn) {
  std::int64_t chunks = NumChunks(n, grain);
  if (chunks == 0) return;
  if (chunks == 1) {
    fn(ChunkAt(n, grain, 0));
    return;
  }
  struct Ctx {
    Fn* fn;
    std::int64_t n;
    std::int64_t grain;
  } ctx{std::addressof(fn), n, grain};
  ThreadPool::Global().Run(
      chunks,
      [](void* raw, std::int64_t c) {
        auto* context = static_cast<Ctx*>(raw);
        (*context->fn)(ChunkAt(context->n, context->grain, c));
      },
      &ctx);
}

/// Parallel map + ordered fold. `map(chunk)` runs concurrently and returns
/// a per-chunk partial of type T; `reduce(acc, partial)` folds the partials
/// into `init` strictly in chunk-index order on the calling thread, so
/// floating-point results are bit-identical at any thread count. Partials
/// storage is leased from the calling thread's scratch pool: the steady
/// state allocates nothing.
template <typename T, typename Map, typename Reduce>
T ParallelReduce(std::int64_t n, std::int64_t grain, T init, Map&& map,
                 Reduce&& reduce) {
  std::int64_t chunks = NumChunks(n, grain);
  if (chunks == 0) return init;
  if (chunks == 1) {
    return reduce(std::move(init), map(ChunkAt(n, grain, 0)));
  }
  ScratchVec<T> lease;
  std::vector<T>& partials = lease.get();
  partials.resize(static_cast<std::size_t>(chunks));
  ParallelFor(n, grain, [&](const Chunk& chunk) {
    partials[static_cast<std::size_t>(chunk.index)] = map(chunk);
  });
  T acc = std::move(init);
  for (auto& partial : partials) {
    acc = reduce(std::move(acc), std::move(partial));
  }
  return acc;
}

}  // namespace mlbench::exec
