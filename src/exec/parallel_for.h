#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "exec/thread_pool.h"

/// \file parallel_for.h
/// Deterministic parallel loops over index ranges.
///
/// The determinism contract (see DESIGN.md, "Host execution model"):
///   1. Chunk boundaries are a pure function of (n, grain) — never of the
///      thread count or of scheduling. Chunk c covers
///      [c * grain, min((c + 1) * grain, n)).
///   2. Every chunk therefore maps to a stable identity: chunk index for
///      scratch/output slots, and (via Rng::Split) a stable RNG substream.
///   3. Anything order-sensitive (floating-point folds, sim charges,
///      message emission) is produced into per-chunk storage and committed
///      *in chunk-index order* on the calling thread after the loop.
/// Under these rules results are bit-identical at any MLBENCH_THREADS.

namespace mlbench::exec {

/// A half-open index range assigned to one chunk.
struct Chunk {
  std::int64_t index;  ///< chunk number in [0, NumChunks(n, grain))
  std::int64_t begin;
  std::int64_t end;
};

/// Number of chunks a range of n items splits into at the given grain.
inline std::int64_t NumChunks(std::int64_t n, std::int64_t grain) {
  if (n <= 0) return 0;
  if (grain < 1) grain = 1;
  return (n + grain - 1) / grain;
}

/// The c-th chunk of [0, n) at the given grain.
inline Chunk ChunkAt(std::int64_t n, std::int64_t grain, std::int64_t c) {
  if (grain < 1) grain = 1;
  std::int64_t begin = c * grain;
  std::int64_t end = begin + grain < n ? begin + grain : n;
  return Chunk{c, begin, end};
}

/// Runs `fn(chunk)` once per chunk of [0, n), spread across the global
/// pool. Blocks until every chunk has run. `fn` must tolerate concurrent
/// invocation on distinct chunks; use the chunk index for any per-chunk
/// output slot so results can be committed in index order afterwards.
template <typename Fn>
void ParallelFor(std::int64_t n, std::int64_t grain, Fn&& fn) {
  std::int64_t chunks = NumChunks(n, grain);
  if (chunks == 0) return;
  if (chunks == 1) {
    fn(ChunkAt(n, grain, 0));
    return;
  }
  const std::function<void(std::int64_t)> body = [&](std::int64_t c) {
    fn(ChunkAt(n, grain, c));
  };
  ThreadPool::Global().Run(chunks, body);
}

/// Parallel map + ordered fold. `map(chunk)` runs concurrently and returns
/// a per-chunk partial of type T; `reduce(acc, partial)` folds the partials
/// into `init` strictly in chunk-index order on the calling thread, so
/// floating-point results are bit-identical at any thread count.
template <typename T, typename Map, typename Reduce>
T ParallelReduce(std::int64_t n, std::int64_t grain, T init, Map&& map,
                 Reduce&& reduce) {
  std::int64_t chunks = NumChunks(n, grain);
  if (chunks == 0) return init;
  std::vector<T> partials(static_cast<std::size_t>(chunks));
  ParallelFor(n, grain, [&](const Chunk& chunk) {
    partials[static_cast<std::size_t>(chunk.index)] = map(chunk);
  });
  T acc = std::move(init);
  for (auto& partial : partials) acc = reduce(std::move(acc), std::move(partial));
  return acc;
}

}  // namespace mlbench::exec
